//! Plain-text report rendering: the tables and series the paper's figures
//! plot, printed as aligned text so benches and examples can emit them
//! directly — plus the structured telemetry/audit section of a live
//! Pretium run.

use pretium_core::{Auditor, PoolTelemetry, Telemetry};
use pretium_lp::SessionStats;
use std::fmt::Write as _;

/// A named series of `(x, y)` points (one line in a figure).
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    pub name: String,
    pub points: Vec<(f64, f64)>,
}

impl Series {
    pub fn new(name: &str, points: Vec<(f64, f64)>) -> Self {
        Series { name: name.to_string(), points }
    }
}

/// Render a figure as a table: first column is x, one column per series.
pub fn render_figure(title: &str, x_label: &str, series: &[Series]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = write!(out, "{:>12}", x_label);
    for s in series {
        let _ = write!(out, " {:>14}", truncate(&s.name, 14));
    }
    let _ = writeln!(out);
    let xs: Vec<f64> =
        series.first().map(|s| s.points.iter().map(|p| p.0).collect()).unwrap_or_default();
    for (i, x) in xs.iter().enumerate() {
        let _ = write!(out, "{x:>12.3}");
        for s in series {
            match s.points.get(i) {
                Some(&(_, y)) => {
                    let _ = write!(out, " {y:>14.4}");
                }
                None => {
                    let _ = write!(out, " {:>14}", "-");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// Render a simple two-column table.
pub fn render_table(title: &str, rows: &[(String, String)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let width = rows.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
    for (k, v) in rows {
        let _ = writeln!(out, "  {k:<width$}  {v}");
    }
    out
}

/// Render the structured telemetry section of a run: per-module call
/// counts and timings, admission counters, and — when auditing was on —
/// the invariant-sweep summary followed by the first recorded violations.
pub fn render_telemetry(title: &str, telemetry: &Telemetry, audit: Option<&Auditor>) -> String {
    let mut rows = telemetry.rows();
    if let Some(aud) = audit {
        rows.extend(aud.summary_rows());
    }
    let mut out = render_table(title, &rows);
    if let Some(aud) = audit {
        let shown = aud.violations().len().min(20);
        for v in aud.violations().iter().take(shown) {
            let _ = writeln!(out, "  ! {v}");
        }
        let total = aud.total_violations() as usize;
        if total > shown {
            let _ = writeln!(out, "  ! ... and {} more", total - shown);
        }
    }
    out
}

/// Render the parallel engine's pool counters: worker count, per-cell
/// wall-clock distribution, steal traffic, and occupancy.
pub fn render_pool(title: &str, pool: &PoolTelemetry) -> String {
    render_table(title, &pool.rows())
}

/// Render a run's LP solver counters: solves by restart class, simplex
/// iterations, pricing-scan work, and Bland's-rule fallback pivots.
pub fn render_lp(title: &str, stats: &SessionStats) -> String {
    render_table(title, &stats.rows())
}

/// Render an ASCII sparkline-style CDF/series plot (terminal friendly).
pub fn render_ascii_plot(
    title: &str,
    points: &[(f64, f64)],
    width: usize,
    height: usize,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    if points.is_empty() || width == 0 || height == 0 {
        return out;
    }
    let (xmin, xmax) =
        points.iter().fold((f64::MAX, f64::MIN), |(lo, hi), &(x, _)| (lo.min(x), hi.max(x)));
    let (ymin, ymax) =
        points.iter().fold((f64::MAX, f64::MIN), |(lo, hi), &(_, y)| (lo.min(y), hi.max(y)));
    let xspan = (xmax - xmin).max(1e-12);
    let yspan = (ymax - ymin).max(1e-12);
    let mut grid = vec![vec![b' '; width]; height];
    for &(x, y) in points {
        let col = (((x - xmin) / xspan) * (width - 1) as f64).round() as usize;
        let row = (((y - ymin) / yspan) * (height - 1) as f64).round() as usize;
        grid[height - 1 - row][col] = b'*';
    }
    for row in grid {
        let _ = writeln!(out, "  |{}", String::from_utf8_lossy(&row));
    }
    let _ = writeln!(out, "   x: [{xmin:.3}, {xmax:.3}]  y: [{ymin:.3}, {ymax:.3}]");
    out
}

fn truncate(s: &str, n: usize) -> &str {
    if s.len() <= n {
        s
    } else {
        &s[..n]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_renders_aligned_columns() {
        let series = vec![
            Series::new("Pretium", vec![(0.5, 0.8), (1.0, 0.75)]),
            Series::new("RegionOracle", vec![(0.5, 0.2), (1.0, 0.15)]),
        ];
        let s = render_figure("Fig 6", "load", &series);
        assert!(s.contains("Pretium"));
        assert!(s.contains("0.500"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    fn missing_points_render_dash() {
        let series = vec![
            Series::new("a", vec![(1.0, 2.0), (2.0, 3.0)]),
            Series::new("b", vec![(1.0, 2.0)]),
        ];
        let s = render_figure("f", "x", &series);
        assert!(s.contains('-'));
    }

    #[test]
    fn table_renders() {
        let s = render_table("T", &[("key".into(), "value".into())]);
        assert!(s.contains("key"));
        assert!(s.contains("value"));
    }

    #[test]
    fn ascii_plot_bounds() {
        let pts: Vec<(f64, f64)> = (0..20).map(|i| (i as f64, (i * i) as f64)).collect();
        let s = render_ascii_plot("p", &pts, 40, 10);
        assert!(s.contains('*'));
        assert!(s.contains("x: [0.000, 19.000]"));
    }

    #[test]
    fn ascii_plot_empty_safe() {
        let s = render_ascii_plot("p", &[], 10, 5);
        assert_eq!(s, "p\n");
    }
}
