//! Path computation: Dijkstra shortest paths and Yen's k-shortest loopless
//! paths.
//!
//! Each Pretium request carries a set of admissible routes `R_i` (§3.1).
//! In practice these are the k shortest paths between the endpoints; the
//! [`PathSet`] cache computes and stores them per node pair.

use crate::graph::{EdgeId, Network, NodeId};
use rand::{DetHashMap as HashMap, DetHashSet as HashSet};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::{Arc, Mutex};

/// A loop-free directed path, stored as its edge sequence.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Path {
    edges: Vec<EdgeId>,
}

impl Path {
    /// Build from edges, validating contiguity against the network.
    ///
    /// # Panics
    /// Panics if the edges do not form a contiguous path.
    pub fn new(net: &Network, edges: Vec<EdgeId>) -> Self {
        assert!(!edges.is_empty(), "a path needs at least one edge");
        for w in edges.windows(2) {
            assert_eq!(net.edge(w[0]).to, net.edge(w[1]).from, "path edges are not contiguous");
        }
        Path { edges }
    }

    pub fn edges(&self) -> &[EdgeId] {
        &self.edges
    }

    pub fn len(&self) -> usize {
        self.edges.len()
    }

    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    pub fn source(&self, net: &Network) -> NodeId {
        net.edge(self.edges[0]).from
    }

    pub fn target(&self, net: &Network) -> NodeId {
        net.edge(*self.edges.last().unwrap()).to
    }

    /// Whether the path uses edge `e`.
    pub fn contains(&self, e: EdgeId) -> bool {
        self.edges.contains(&e)
    }

    /// Bottleneck: the minimum over edges of `f(edge)`.
    pub fn bottleneck(&self, mut f: impl FnMut(EdgeId) -> f64) -> f64 {
        self.edges.iter().map(|&e| f(e)).fold(f64::INFINITY, f64::min)
    }

    /// Sum over edges of `f(edge)` (e.g. a price).
    pub fn total(&self, mut f: impl FnMut(EdgeId) -> f64) -> f64 {
        self.edges.iter().map(|&e| f(e)).sum()
    }
}

#[derive(PartialEq)]
struct HeapEntry {
    dist: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on distance.
        other.dist.partial_cmp(&self.dist).unwrap_or(Ordering::Equal)
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Dijkstra shortest path from `src` to `dst` under a non-negative edge
/// weight function, skipping banned edges/nodes (used by Yen's algorithm).
/// Returns the edge sequence, or `None` if unreachable.
pub fn shortest_path_filtered(
    net: &Network,
    src: NodeId,
    dst: NodeId,
    weight: &impl Fn(EdgeId) -> f64,
    banned_edges: &HashSet<EdgeId>,
    banned_nodes: &HashSet<NodeId>,
) -> Option<Vec<EdgeId>> {
    let n = net.num_nodes();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev: Vec<Option<EdgeId>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    dist[src.index()] = 0.0;
    heap.push(HeapEntry { dist: 0.0, node: src });
    while let Some(HeapEntry { dist: d, node }) = heap.pop() {
        if node == dst {
            break;
        }
        if d > dist[node.index()] {
            continue;
        }
        for &e in net.out_edges(node) {
            if banned_edges.contains(&e) {
                continue;
            }
            let edge = net.edge(e);
            if banned_nodes.contains(&edge.to) {
                continue;
            }
            let w = weight(e);
            debug_assert!(w >= 0.0, "negative edge weight");
            let nd = d + w;
            if nd < dist[edge.to.index()] {
                dist[edge.to.index()] = nd;
                prev[edge.to.index()] = Some(e);
                heap.push(HeapEntry { dist: nd, node: edge.to });
            }
        }
    }
    if dist[dst.index()].is_infinite() {
        return None;
    }
    // Reconstruct.
    let mut edges = Vec::new();
    let mut cur = dst;
    while cur != src {
        let e = prev[cur.index()]?;
        edges.push(e);
        cur = net.edge(e).from;
    }
    edges.reverse();
    Some(edges)
}

/// Dijkstra shortest path with no filtering.
pub fn shortest_path(
    net: &Network,
    src: NodeId,
    dst: NodeId,
    weight: &impl Fn(EdgeId) -> f64,
) -> Option<Vec<EdgeId>> {
    shortest_path_filtered(net, src, dst, weight, &HashSet::default(), &HashSet::default())
}

/// Yen's algorithm: up to `k` shortest loopless paths from `src` to `dst`.
/// Paths are returned in non-decreasing weight order.
pub fn k_shortest_paths(
    net: &Network,
    src: NodeId,
    dst: NodeId,
    k: usize,
    weight: &impl Fn(EdgeId) -> f64,
) -> Vec<Path> {
    k_shortest_paths_capped(net, src, dst, k, None, weight)
}

/// [`k_shortest_paths`] with an optional hop cap: paths longer than
/// `max_hops` edges are never returned, which bounds the `(path, timestep)`
/// column universe the colgen scheduler prices over on dense topologies.
/// `None` is uncapped.
///
/// When the weight-shortest path exceeds the cap, the hop-count-shortest
/// path seeds the search instead (it has the fewest edges any path can
/// have, so if it still exceeds the cap no admissible path exists and the
/// result is empty). Spur candidates over the cap are discarded, so with
/// non-uniform weights the capped result is the best admissible set Yen's
/// deviation tree reaches, not necessarily the k weight-cheapest capped
/// paths — the cap is a universe bound, not an exact constrained search.
pub fn k_shortest_paths_capped(
    net: &Network,
    src: NodeId,
    dst: NodeId,
    k: usize,
    max_hops: Option<usize>,
    weight: &impl Fn(EdgeId) -> f64,
) -> Vec<Path> {
    assert!(k >= 1, "k must be at least 1");
    let cap = max_hops.unwrap_or(usize::MAX);
    assert!(cap >= 1, "max_hops must allow at least one edge");
    let first = match shortest_path(net, src, dst, weight) {
        Some(p) if p.len() <= cap => p,
        // The weight-shortest path is too long (or the pair is
        // disconnected): fall back to the fewest-hop path, which decides
        // admissibility exactly.
        _ => match shortest_path(net, src, dst, &|_| 1.0) {
            Some(p) if p.len() <= cap => p,
            _ => return Vec::new(),
        },
    };
    let path_cost = |edges: &[EdgeId]| -> f64 { edges.iter().map(|&e| weight(e)).sum() };
    let mut found: Vec<Vec<EdgeId>> = vec![first];
    // Candidate pool: (cost, path); keep sorted by cost on extraction.
    let mut candidates: Vec<(f64, Vec<EdgeId>)> = Vec::new();
    let mut seen: HashSet<Vec<EdgeId>> = found.iter().cloned().collect();

    while found.len() < k {
        // Spur generation deviates from the most recent accepted path; an
        // empty `found` (nothing admissible was ever accepted) means there
        // is nothing to deviate from.
        let Some(last) = found.last().cloned() else {
            break;
        };
        // Spur from every node of the previous path.
        for i in 0..last.len() {
            let root = &last[..i];
            let spur_node = if i == 0 { src } else { net.edge(last[i - 1]).to };
            let mut banned_edges = HashSet::default();
            // Ban the next edge of every found path sharing this root.
            for p in &found {
                if p.len() > i && p[..i] == *root {
                    banned_edges.insert(p[i]);
                }
            }
            // Ban root nodes to keep the path loopless.
            let mut banned_nodes = HashSet::default();
            banned_nodes.insert(src);
            for &e in root {
                banned_nodes.insert(net.edge(e).to);
            }
            banned_nodes.remove(&spur_node);
            if let Some(spur) =
                shortest_path_filtered(net, spur_node, dst, weight, &banned_edges, &banned_nodes)
            {
                let mut total: Vec<EdgeId> = root.to_vec();
                total.extend(spur);
                if total.len() <= cap && seen.insert(total.clone()) {
                    candidates.push((path_cost(&total), total));
                }
            }
        }
        if candidates.is_empty() {
            break;
        }
        // Pop the cheapest candidate.
        let best = candidates
            .iter()
            .enumerate()
            .min_by(|a, b| a.1 .0.partial_cmp(&b.1 .0).unwrap())
            .map(|(i, _)| i)
            .unwrap();
        let (_, path) = candidates.swap_remove(best);
        found.push(path);
    }
    found.into_iter().map(|edges| Path::new(net, edges)).collect()
}

/// Cache of k-shortest paths per `(src, dst)` pair. Entries are stored
/// behind `Arc` so [`SharedPathSet`] can hand them out without holding its
/// lock or copying the path vectors.
#[derive(Debug, Clone, Default)]
pub struct PathSet {
    k: usize,
    cache: HashMap<(NodeId, NodeId), Arc<Vec<Path>>>,
}

impl PathSet {
    /// Create a cache that computes up to `k` paths per pair (hop-count
    /// weighted).
    pub fn new(k: usize) -> Self {
        assert!(k >= 1);
        PathSet { k, cache: HashMap::default() }
    }

    /// Paths for `(src, dst)`, computed on first access.
    pub fn paths(&mut self, net: &Network, src: NodeId, dst: NodeId) -> &[Path] {
        self.entry(net, src, dst)
    }

    /// Like [`PathSet::paths`], but returns a shared handle to the entry
    /// (an `Arc` clone, no path copying).
    pub fn paths_shared(&mut self, net: &Network, src: NodeId, dst: NodeId) -> Arc<Vec<Path>> {
        Arc::clone(self.entry(net, src, dst))
    }

    fn entry(&mut self, net: &Network, src: NodeId, dst: NodeId) -> &Arc<Vec<Path>> {
        self.cache
            .entry((src, dst))
            .or_insert_with(|| Arc::new(k_shortest_paths(net, src, dst, self.k, &|_| 1.0)))
    }

    /// Precompute all pairs (used by experiment setup so later calls are
    /// allocation-free).
    pub fn precompute_all(&mut self, net: &Network) {
        let nodes: Vec<NodeId> = net.node_ids().collect();
        for &s in &nodes {
            for &d in &nodes {
                if s != d {
                    self.paths(net, s, d);
                }
            }
        }
    }

    pub fn k(&self) -> usize {
        self.k
    }
}

/// A [`PathSet`] shareable across threads: one interior-mutability cache
/// handed (behind `Arc`) to every admission snapshot, so concurrent quote
/// workers and the live system fill a single cache instead of cloning it
/// per snapshot.
///
/// Path values are a pure function of `(net, src, dst, k)`, so the lock
/// only serializes *when* an entry is computed, never *what* it contains —
/// sharing is invisible to results.
#[derive(Debug, Default)]
pub struct SharedPathSet {
    inner: Mutex<PathSet>,
}

impl SharedPathSet {
    /// Create a shared cache that computes up to `k` paths per pair.
    pub fn new(k: usize) -> Self {
        SharedPathSet { inner: Mutex::new(PathSet::new(k)) }
    }

    /// Paths for `(src, dst)`, computed under the lock on first access.
    pub fn paths(&self, net: &Network, src: NodeId, dst: NodeId) -> Arc<Vec<Path>> {
        self.lock().paths_shared(net, src, dst)
    }

    /// Precompute all pairs so later lookups never compute under the lock.
    pub fn precompute_all(&self, net: &Network) {
        self.lock().precompute_all(net);
    }

    pub fn k(&self) -> usize {
        self.lock().k()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, PathSet> {
        // Path computation cannot panic mid-insert in a way that corrupts
        // the map; recover from poisoning instead of propagating it.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::LinkCost;
    use crate::graph::Region;

    /// Diamond: A->B->D, A->C->D plus direct A->D.
    fn diamond() -> (Network, NodeId, NodeId) {
        let mut net = Network::new();
        let a = net.add_node("A", Region::NorthAmerica);
        let b = net.add_node("B", Region::NorthAmerica);
        let c = net.add_node("C", Region::NorthAmerica);
        let d = net.add_node("D", Region::NorthAmerica);
        net.add_edge(a, b, 10.0, LinkCost::owned());
        net.add_edge(b, d, 10.0, LinkCost::owned());
        net.add_edge(a, c, 10.0, LinkCost::owned());
        net.add_edge(c, d, 10.0, LinkCost::owned());
        net.add_edge(a, d, 10.0, LinkCost::owned());
        (net, a, d)
    }

    #[test]
    fn dijkstra_finds_direct_edge() {
        let (net, a, d) = diamond();
        let p = shortest_path(&net, a, d, &|_| 1.0).unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(net.edge(p[0]).to, d);
    }

    #[test]
    fn dijkstra_respects_weights() {
        let (net, a, d) = diamond();
        // Make the direct edge very expensive.
        let direct = net.find_edge(a, d).unwrap();
        let w = move |e: EdgeId| if e == direct { 100.0 } else { 1.0 };
        let p = shortest_path(&net, a, d, &w).unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn unreachable_returns_none() {
        let mut net = Network::new();
        let a = net.add_node("A", Region::NorthAmerica);
        let b = net.add_node("B", Region::NorthAmerica);
        let c = net.add_node("C", Region::NorthAmerica);
        net.add_edge(a, b, 1.0, LinkCost::owned());
        assert!(shortest_path(&net, a, c, &|_| 1.0).is_none());
    }

    #[test]
    fn yen_finds_all_three_diamond_paths() {
        let (net, a, d) = diamond();
        let paths = k_shortest_paths(&net, a, d, 5, &|_| 1.0);
        assert_eq!(paths.len(), 3);
        assert_eq!(paths[0].len(), 1); // direct first
        assert_eq!(paths[1].len(), 2);
        assert_eq!(paths[2].len(), 2);
        // All distinct and loopless.
        let set: HashSet<_> = paths.iter().map(|p| p.edges().to_vec()).collect();
        assert_eq!(set.len(), 3);
        for p in &paths {
            assert_eq!(p.source(&net), a);
            assert_eq!(p.target(&net), d);
        }
    }

    #[test]
    fn yen_returns_fewer_when_fewer_exist() {
        let mut net = Network::new();
        let a = net.add_node("A", Region::NorthAmerica);
        let b = net.add_node("B", Region::NorthAmerica);
        net.add_edge(a, b, 1.0, LinkCost::owned());
        let paths = k_shortest_paths(&net, a, b, 4, &|_| 1.0);
        assert_eq!(paths.len(), 1);
    }

    #[test]
    fn yen_orders_by_cost() {
        let (net, a, d) = diamond();
        let paths = k_shortest_paths(&net, a, d, 3, &|_| 1.0);
        let costs: Vec<f64> = paths.iter().map(|p| p.total(|_| 1.0)).collect();
        assert!(costs.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn hop_cap_bounds_returned_paths() {
        let (net, a, d) = diamond();
        // Cap at 1 hop: only the direct edge qualifies.
        let paths = k_shortest_paths_capped(&net, a, d, 5, Some(1), &|_| 1.0);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].len(), 1);
        // Cap at 2 admits all three diamond paths; None is uncapped.
        assert_eq!(k_shortest_paths_capped(&net, a, d, 5, Some(2), &|_| 1.0).len(), 3);
        assert_eq!(k_shortest_paths_capped(&net, a, d, 5, None, &|_| 1.0).len(), 3);
    }

    #[test]
    fn hop_cap_reseeds_from_fewest_hop_path() {
        let (net, a, d) = diamond();
        // Make the direct edge so expensive the weight-shortest path is the
        // 2-hop route; a 1-hop cap must still find the direct path.
        let direct = net.find_edge(a, d).unwrap();
        let w = move |e: EdgeId| if e == direct { 100.0 } else { 1.0 };
        let paths = k_shortest_paths_capped(&net, a, d, 3, Some(1), &w);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].edges(), [direct]);
    }

    #[test]
    fn hop_cap_on_disconnected_pair_is_empty() {
        let mut net = Network::new();
        let a = net.add_node("A", Region::NorthAmerica);
        let b = net.add_node("B", Region::NorthAmerica);
        let c = net.add_node("C", Region::NorthAmerica);
        net.add_edge(a, b, 1.0, LinkCost::owned());
        assert!(k_shortest_paths_capped(&net, a, c, 3, Some(4), &|_| 1.0).is_empty());
        assert!(k_shortest_paths_capped(&net, a, c, 3, None, &|_| 1.0).is_empty());
    }

    #[test]
    fn path_helpers() {
        let (net, a, d) = diamond();
        let edges = shortest_path(&net, a, d, &|_| 1.0).unwrap();
        let p = Path::new(&net, edges);
        assert_eq!(p.bottleneck(|e| net.edge(e).capacity), 10.0);
        assert_eq!(p.total(|_| 2.5), 2.5);
        assert!(p.contains(p.edges()[0]));
    }

    #[test]
    #[should_panic(expected = "contiguous")]
    fn non_contiguous_path_rejected() {
        let (net, a, d) = diamond();
        let ab = net.find_edge(a, NodeId(1)).unwrap();
        let cd = net.find_edge(NodeId(2), d).unwrap();
        Path::new(&net, vec![ab, cd]);
    }

    #[test]
    fn pathset_caches() {
        let (net, a, d) = diamond();
        let mut ps = PathSet::new(2);
        let n1 = ps.paths(&net, a, d).len();
        let n2 = ps.paths(&net, a, d).len();
        assert_eq!(n1, 2);
        assert_eq!(n1, n2);
    }
}
