//! # pretium-core — the paper's primary contribution
//!
//! The Pretium framework from "Dynamic Pricing and Traffic Engineering for
//! Timely Inter-Datacenter Transfers" (SIGCOMM 2016): online price quotes
//! with service guarantees, LP-based schedule adjustment with percentile
//! cost proxies, and dual-based price recomputation.
//!
//! Module map (mirrors Figure 3 of the paper):
//!
//! * [`state`] — the shared network state: per-(link, timestep) prices,
//!   reservations, high-pri set-asides, the short-term price bump.
//! * [`menu`] — RA price menus (§4.1): convex piecewise-linear price
//!   schedules over the cheapest (path, timestep) slots, the guarantee
//!   bound `x̄`, and the Theorem 5.2 user response.
//! * [`contract`] — accepted transfers: purchase, guarantee, payment, and
//!   the marginal price `λ` used as the value proxy downstream.
//! * [`schedule`] — the multi-timestep scheduling LP (Equation 2) with
//!   lazy capacity rows and lazily-attached percentile cost encodings.
//! * [`topk`] — Theorem 4.2: O(kT) sorting-network encoding of
//!   sum-of-top-k, plus the O(T) CVaR alternative.
//! * [`admission`] — the concurrent RA front end: epoch-published
//!   [`AdmissionSnapshot`]s for pure parallel quoting, [`QuoteTicket`]s,
//!   and the deterministic [`Sequencer`] that applies accepts in order.
//! * [`pretium`] — the orchestrating façade: `snapshot` / `admit_one`
//!   (RA), `run_sam` (§4.2), `run_pc` (§4.3), `execute_step`.
//! * [`config`] — tunables, with paper defaults.
//! * [`incentives`] — §5: empirical deviation analysis (can customers gain
//!   by misreporting?).
//! * [`audit`] — the network-state invariant auditor: sweeps shared-state
//!   invariants (no oversubscription, plans backed by reservations, finite
//!   money, price floors, guarantee coverage, ledgered degradation) after
//!   each module checkpoint.
//! * [`degradation`] — §4.4 graceful degradation: the shed-then-relax
//!   fallback policy and the violation ledger of waived guarantees.
//! * [`telemetry`] — per-module counters and wall-clock timings.

pub mod admission;
pub mod audit;
pub mod config;
pub mod contract;
pub mod degradation;
pub mod incentives;
pub mod menu;
pub mod pretium;
pub mod schedule;
pub mod state;
pub mod telemetry;
pub mod topk;

pub use admission::{AdmissionSnapshot, QuoteTicket, Sequencer};
pub use audit::{AuditContext, AuditPoint, Auditor, Invariant, Violation};
pub use config::{ColumnGen, PretiumConfig, ReferenceWindow};
pub use contract::{Contract, ContractId, RequestParams};
pub use degradation::{DegradationKind, DegradationPolicy, LedgerEntry, ViolationLedger};
pub use menu::{build_menu, PriceMenu};
pub use pretium::{initial_price, price_floor, Pretium};
pub use schedule::{Job, LocalizedOutcome, ScheduleProblem, ScheduleSession, ScheduleSolution};
pub use state::{NetworkState, PriceBump};
pub use telemetry::{ModuleStats, PoolTelemetry, Telemetry};
pub use topk::{topk_upper_bound, TopkEncoding};
