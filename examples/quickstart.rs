//! Quickstart: stand up a Pretium instance on a small WAN, submit a few
//! transfer requests, watch the three modules (RA / SAM / PC) do their
//! jobs, and print the survey + price-sheet tables the paper motivates
//! the design with.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pretium::core::{Pretium, PretiumConfig, RequestParams};
use pretium::net::{topology, TimeGrid, UsageTracker};
use pretium::workload::{survey, RequestId};

fn main() {
    // The paper's motivation tables.
    println!("{}", survey::format_table1());
    println!("Table 2: cloud WAN price sheet ($/GB, as of 2016-01-25)");
    for (provider, intra, inter) in survey::table2::PRICE_SHEET {
        println!("  {provider:<12} intra {intra:.2}  inter {inter:.2}");
    }
    println!();

    // A ~16-node WAN over three regions, 30-minute timesteps, 2 days.
    let net = topology::default_eval(42);
    let grid = TimeGrid::coarse_default();
    let horizon = grid.steps_per_window * 2;
    println!(
        "WAN: {} datacenters, {} directed links ({} percentile-billed)",
        net.num_nodes(),
        net.num_edges(),
        net.percentile_edges().len()
    );
    let mut system = Pretium::new(net.clone(), grid, horizon, PretiumConfig::default());
    let mut usage = UsageTracker::new(net.num_edges(), horizon);

    // Three customers with different values and deadlines.
    let asks = [
        // (src, dst, demand, value/unit, start, deadline)
        (0u32, 9u32, 60.0, 2.0, 0usize, 10usize),
        (3, 12, 25.0, 0.4, 0, 40),
        (5, 1, 80.0, 5.0, 2, 6),
    ];
    for (i, &(src, dst, demand, value, start, deadline)) in asks.iter().enumerate() {
        let params = RequestParams {
            id: RequestId(i as u64),
            src: pretium::net::NodeId(src),
            dst: pretium::net::NodeId(dst),
            demand,
            arrival: start,
            start,
            deadline,
        };
        // The Theorem 5.2 user response: buy while marginal price <= value.
        let mut units = 0.0;
        let (menu, admitted) = system.admit_one(&params, |menu| {
            units = menu.optimal_purchase(value, demand);
            units
        });
        println!(
            "request {i}: {src}->{dst}, {demand} units by t={deadline}; \
             x̄={:.1}, cheapest marginal price {:.3}",
            menu.capacity_bound(),
            menu.marginal(0.0),
        );
        match admitted {
            Some(id) => {
                let c = system.contract(id);
                println!(
                    "  accepted {units:.1} units: guaranteed {:.1}, payment {:.2}, λ={:.3}",
                    c.guaranteed, c.payment, c.lambda
                );
            }
            None => println!("  customer walked away (marginal price above value)"),
        }
    }

    // Run the clock: SAM every step, PC at the window boundary.
    for t in 0..horizon {
        if grid.step_in_window(t) == 0 && t > 0 {
            system.run_pc(t).expect("price computation");
            println!("t={t}: price computer updated link prices from dual values");
        }
        system.run_sam(t, &usage).expect("schedule adjustment");
        system.execute_step(t, &mut usage);
    }

    println!("\nfinal contract states:");
    for c in system.contracts() {
        println!(
            "  {:?}: delivered {:.1}/{:.1} (guarantee {} — {})",
            c.params.id,
            c.delivered,
            c.purchased,
            c.guaranteed,
            if c.guarantee_met() { "met" } else { "MISSED" }
        );
    }
    let violations = usage.capacity_violations(&net, 1e-6);
    println!(
        "capacity violations: {} | total payments: {:.2}",
        violations.len(),
        system.total_payments()
    );
}
