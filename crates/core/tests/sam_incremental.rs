//! Property test for incremental SAM re-optimization (DESIGN.md §16): a
//! localized re-solve — untouched job blocks frozen at their current plan,
//! only the affected blocks re-optimized against residual capacities —
//! must agree with a full re-solve of the same session state, across
//! randomized accept/fault sequences that also exercise the §4.4
//! shed/relax degradation paths.
//!
//! Two claims are enforced at every step of every sequence:
//!
//! * **Equality**: the localized solution's objective, per-job deliveries
//!   and shortfalls match a full re-solve of an identical cloned session
//!   within the certification tolerance.
//! * **Bit-exactness of frozen blocks** (exact mode): when the localized
//!   fast path certifies, every job outside the affected set reports a
//!   delivery that is *bitwise* identical to its previous plan — frozen
//!   means frozen, not "re-derived to within float noise".

use pretium_core::{Job, ScheduleProblem, ScheduleSession, TopkEncoding};
use pretium_lp::SolveOptions;
use pretium_net::{EdgeId, LinkCost, Network, NodeId, Path, TimeGrid, Timestep};
use rand::rngs::StdRng;
use rand::{DetHashSet, Rng, SeedableRng};

const HORIZON: usize = 12;
const STEPS: usize = 10;
const BASE_CAP: f64 = 10.0;
const SHORT_TOL: f64 = 1e-6;

/// A chain A→B→C→D (edges 0..3 shared by overlapping paths) plus a
/// disjoint pair E→F (edge 3) that gives the localized path independent
/// blocks to freeze.
fn chain_plus_island() -> (Network, Vec<NodeId>) {
    let mut net = Network::new();
    let a = net.add_node("A", pretium_net::Region::NorthAmerica);
    let b = net.add_node("B", pretium_net::Region::NorthAmerica);
    let c = net.add_node("C", pretium_net::Region::Europe);
    let d = net.add_node("D", pretium_net::Region::Europe);
    let e = net.add_node("E", pretium_net::Region::Asia);
    let f = net.add_node("F", pretium_net::Region::Asia);
    net.add_edge(a, b, BASE_CAP, LinkCost::owned());
    net.add_edge(b, c, BASE_CAP, LinkCost::owned());
    net.add_edge(c, d, BASE_CAP, LinkCost::owned());
    net.add_edge(e, f, BASE_CAP, LinkCost::owned());
    (net, vec![a, b, c, d, e, f])
}

/// Candidate single-path routes over the chain and the island.
fn route_pool(net: &Network, n: &[NodeId]) -> Vec<Vec<Path>> {
    let e0 = net.find_edge(n[0], n[1]).unwrap();
    let e1 = net.find_edge(n[1], n[2]).unwrap();
    let e2 = net.find_edge(n[2], n[3]).unwrap();
    let e3 = net.find_edge(n[4], n[5]).unwrap();
    vec![
        vec![Path::new(net, vec![e0])],
        vec![Path::new(net, vec![e1])],
        vec![Path::new(net, vec![e2])],
        vec![Path::new(net, vec![e0, e1])],
        vec![Path::new(net, vec![e1, e2])],
        vec![Path::new(net, vec![e3])],
    ]
}

struct Coverage {
    certified_localized: usize,
    fallbacks: usize,
    relaxes: usize,
}

/// Drive one randomized accept/fault sequence, comparing the localized
/// solve against a full re-solve of a cloned session at every step.
fn run_sequence(seed: u64, tol: f64, exact: bool) -> Coverage {
    let (net, nodes) = chain_plus_island();
    let grid = TimeGrid::new(6, 30);
    let routes = route_pool(&net, &nodes);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut factors: Vec<f64> = vec![1.0; net.num_edges()];
    let mut cov = Coverage { certified_localized: 0, fallbacks: 0, relaxes: 0 };

    // Seed jobs so the first (always-full) solve has work to do.
    let mut jobs = vec![
        Job::new(0, routes[0].clone(), 0, 5, 1.7, 4.0, 20.0),
        Job::new(1, routes[5].clone(), 0, 5, 1.1, 4.0, 20.0),
    ];
    let cap_of = |factors: &[f64]| {
        let f = factors.to_vec();
        move |e: EdgeId, _t: Timestep| BASE_CAP * f[e.index()]
    };
    let no_realized = |_: EdgeId, _: Timestep| 0.0;
    let opts = SolveOptions::default();
    let cap = cap_of(&factors);
    let problem = ScheduleProblem {
        net: &net,
        grid: &grid,
        from: 0,
        to: HORIZON,
        jobs: &jobs,
        capacity: &cap,
        realized: &no_realized,
        topk: TopkEncoding::CVar,
        cost_scale: 1.0,
    };
    let mut sess = ScheduleSession::new(&problem);
    let first = sess.solve_step_with(&net, &cap, &no_realized, &opts).unwrap();
    let mut prev_flows = first.flows.clone();
    drop(cap);

    // The externally mirrored affected set: jobs mutated since the last
    // adopted solve. Kept in lockstep with the session's internal dirty
    // set so the bit-exactness claim can name the frozen jobs.
    let mut external_dirty: DetHashSet<usize> = DetHashSet::default();
    let mut next_key = jobs.len();

    for t in 1..=STEPS {
        sess.advance_to(t);
        let mut touched: DetHashSet<EdgeId> = DetHashSet::default();

        // Accepts: 0-2 new jobs arriving at t.
        for _ in 0..rng.gen_range(0..3u32) {
            let r = rng.gen_range(0..routes.len());
            let deadline = (t + rng.gen_range(2..6usize)).min(HORIZON - 1);
            let weight = rng.gen_range(0.4..3.0);
            let max_units = rng.gen_range(3.0..14.0);
            let min_units =
                if rng.gen_bool(0.5) { max_units * rng.gen_range(0.2..0.8) } else { 0.0 };
            let job =
                Job::new(next_key, routes[r].clone(), t, deadline, weight, min_units, max_units);
            next_key += 1;
            jobs.push(job.clone());
            let j = sess.add_job(job);
            external_dirty.insert(j);
        }
        // Scripted mid-sequence crunch: a severe fault on the C→D edge
        // paired with a latecomer whose guarantee cannot fit the residual
        // capacity — deterministically forces the §4.4 shed/relax chain.
        if t == 4 {
            let e2 = net.find_edge(nodes[2], nodes[3]).unwrap();
            factors[e2.index()] = 0.1;
            touched.insert(e2);
            let job =
                Job::new(next_key, routes[2].clone(), t, (t + 3).min(HORIZON - 1), 2.0, 8.0, 12.0);
            next_key += 1;
            jobs.push(job.clone());
            let j = sess.add_job(job);
            external_dirty.insert(j);
        }
        // Faults and repairs: move one edge's capacity, report it touched.
        if rng.gen_bool(0.6) {
            let e = EdgeId(rng.gen_range(0..net.num_edges() as u32));
            factors[e.index()] = if rng.gen_bool(0.35) {
                rng.gen_range(0.15..0.6) // severe: provokes shortfalls
            } else if rng.gen_bool(0.5) {
                rng.gen_range(0.6..1.0)
            } else {
                1.0 // repair
            };
            touched.insert(e);
        }

        let cap = cap_of(&factors);
        // The reference: a clone of the very same session state, solved
        // with the full lazy loop.
        let mut reference = sess.clone();
        let full = reference.solve_step_with(&net, &cap, &no_realized, &opts).unwrap();
        let loc =
            sess.solve_step_localized(&net, &cap, &no_realized, &touched, tol, &opts).unwrap();

        // Equality: localized result vs full re-solve, within the
        // certification tolerance (both certified-fast-path and fallback
        // steps must agree — a fallback *is* a full solve).
        let obj_tol = 1e-6 * (1.0 + full.objective.abs());
        assert!(
            (loc.solution.objective - full.objective).abs() <= obj_tol,
            "seed {seed} t {t}: objective localized {} vs full {}",
            loc.solution.objective,
            full.objective
        );
        for j in 0..loc.solution.delivered.len() {
            assert!(
                (loc.solution.delivered[j] - full.delivered[j]).abs() <= 1e-5,
                "seed {seed} t {t} job {j}: delivered localized {} vs full {}",
                loc.solution.delivered[j],
                full.delivered[j]
            );
            assert!(
                (loc.solution.shortfall[j] - full.shortfall[j]).abs() <= 1e-5,
                "seed {seed} t {t} job {j}: shortfall localized {} vs full {}",
                loc.solution.shortfall[j],
                full.shortfall[j]
            );
        }

        if loc.certified && !loc.used_full {
            cov.certified_localized += 1;
            // Bit-exactness (exact mode): every job that was neither
            // mutated nor crossed by a touched edge kept its remaining
            // `(path, step, units)` plan bit-for-bit — its block really
            // was frozen, not re-derived. (Compared on the future slice:
            // `extract` drops steps already executed by `advance_to`.)
            if exact {
                for (j, job) in jobs.iter().enumerate() {
                    let frozen = j < prev_flows.len()
                        && !external_dirty.contains(&j)
                        && !job.paths.iter().any(|p| p.edges().iter().any(|e| touched.contains(e)));
                    if !frozen {
                        continue;
                    }
                    let prev: Vec<(usize, Timestep, u64)> = prev_flows[j]
                        .iter()
                        .filter(|&&(_, ft, _)| ft >= t)
                        .map(|&(pi, ft, u)| (pi, ft, u.to_bits()))
                        .collect();
                    let now: Vec<(usize, Timestep, u64)> = loc.solution.flows[j]
                        .iter()
                        .map(|&(pi, ft, u)| (pi, ft, u.to_bits()))
                        .collect();
                    assert_eq!(now, prev, "seed {seed} t {t} job {j}: frozen block drifted");
                }
            }
        } else {
            cov.fallbacks += 1;
        }
        external_dirty.clear();
        let mut sol = loc.solution;

        // §4.4 degradation: uncoverable guarantees are shed (several
        // short) or relaxed (one short), then the LP re-solves warm —
        // mirroring `Pretium::run_sam`'s fallback chain.
        let mut handled: DetHashSet<usize> = DetHashSet::default();
        while sol.max_shortfall() > SHORT_TOL {
            let short: Vec<(usize, f64)> = sol
                .shortfall
                .iter()
                .enumerate()
                .filter(|&(j, &s)| s > SHORT_TOL && !handled.contains(&j))
                .map(|(j, &s)| (j, s))
                .collect();
            if short.is_empty() {
                break;
            }
            let (j, units) = if short.len() > 1 {
                let &(j, _) = short
                    .iter()
                    .min_by(|a, b| {
                        jobs[a.0].weight.partial_cmp(&jobs[b.0].weight).unwrap().then(a.0.cmp(&b.0))
                    })
                    .unwrap();
                (j, jobs[j].min_units) // shed the whole guarantee
            } else {
                short[0] // relax by exactly the shortfall
            };
            handled.insert(j);
            let waived = sess.relax_guarantee(j, units);
            jobs[j].min_units = (jobs[j].min_units - waived).max(0.0);
            cov.relaxes += 1;
            if waived <= 0.0 {
                continue;
            }
            sol = sess.solve_step_with(&net, &cap, &no_realized, &opts).unwrap();
        }
        prev_flows = sol.flows.clone();
    }
    cov
}

#[test]
fn incremental_matches_full_exact_mode() {
    let mut certified = 0;
    let mut fallbacks = 0;
    let mut relaxes = 0;
    for seed in [11, 23, 57] {
        let cov = run_sequence(seed, 1e-7, true);
        certified += cov.certified_localized;
        fallbacks += cov.fallbacks;
        relaxes += cov.relaxes;
    }
    // The sequences must actually exercise all three regimes, or the
    // equality assertions above proved nothing.
    assert!(certified >= 3, "only {certified} certified localized steps across seeds");
    assert!(fallbacks >= 2, "only {fallbacks} full-fallback steps across seeds");
    assert!(relaxes >= 1, "degradation path never taken across seeds");
}

#[test]
fn incremental_matches_full_certified_tolerance_mode() {
    // A looser certificate (the `Certified { tol }` config) accepts more
    // localized steps; equality with the full re-solve must still hold at
    // the comparison tolerances above.
    let mut certified = 0;
    for seed in [11, 23, 57] {
        certified += run_sequence(seed, 1e-4, false).certified_localized;
    }
    assert!(certified >= 3, "only {certified} certified localized steps across seeds");
}
