//! # pretium-lp — a self-contained LP solver with exact duals
//!
//! This crate replaces the commercial solver (Gurobi) used in the Pretium
//! paper ("Dynamic Pricing and Traffic Engineering for Timely
//! Inter-Datacenter Transfers", SIGCOMM 2016). Pretium's price computer
//! sets link prices to the **dual values** of capacity constraints, so the
//! solver must return exact basic duals — which the revised simplex method
//! provides naturally.
//!
//! ## What's inside
//!
//! * [`Model`] — incremental LP builder (variables with bounds, linear
//!   rows, max/min objective) with operator-overloaded [`LinExpr`]s.
//! * [`simplex`] — bounded-variable revised simplex: dense `LU` basis
//!   factorization with a product-form eta file, crash basis, two phases,
//!   Dantzig pricing with a Bland's-rule anti-cycling fallback.
//! * [`lazy`] — violated-row generation: solve with a subset of rows and
//!   add capacity rows only when a tentative optimum violates them. The
//!   schedule LPs in Pretium have `|E|·T` capacity rows of which only a few
//!   percent ever bind; this keeps basis sizes small.
//! * [`validate`] — independent optimality checks (primal feasibility,
//!   dual feasibility, complementary slackness) used heavily in tests.
//!
//! ## Example
//!
//! ```
//! use pretium_lp::{Model, Sense, Cmp};
//!
//! // max 3x + 2y  s.t.  x + y <= 4,  x + 3y <= 6,  x,y >= 0
//! let mut m = Model::new(Sense::Maximize);
//! let x = m.add_nonneg("x", 3.0);
//! let y = m.add_nonneg("y", 2.0);
//! let r1 = m.add_row("r1", x + y, Cmp::Le, 4.0);
//! let _r2 = m.add_row("r2", 1.0 * x + 3.0 * y, Cmp::Le, 6.0);
//! let sol = m.solve().unwrap();
//! assert!((sol.objective() - 12.0).abs() < 1e-7);
//! assert!((sol.value(x) - 4.0).abs() < 1e-7);
//! // Binding row r1 carries the shadow price of capacity.
//! assert!(sol.dual(r1) > 0.0);
//! ```

pub mod expr;
pub mod lazy;
pub mod model;
pub mod simplex;
pub mod solution;
pub mod validate;

pub use expr::{LinExpr, Term, Var};
pub use lazy::{solve_with_rows, RowGen, RowRequest};
pub use model::{Cmp, Model, RowId, Sense};
pub use simplex::SimplexOptions;
pub use solution::{Solution, SolveError, Status};
