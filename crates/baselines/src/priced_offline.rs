//! Shared machinery for the fixed-price oracle baselines (RegionOracle and
//! PeakOracle).
//!
//! Both schemes charge a posted per-unit price that depends only on coarse
//! request attributes (region pair, or time of day). Customers self-select:
//! a request participates only where the price does not exceed its value.
//! Admitted requests are then scheduled offline to move the maximum number
//! of units net of percentile costs (§6.1). Being *oracles*, both schemes
//! pick their price levels by exhaustively searching a candidate grid and
//! keeping the prices with the highest realized welfare in hindsight.

use crate::outcome::Outcome;
use pretium_core::{schedule, Job, ScheduleProblem, TopkEncoding};
use pretium_lp::SolveError;
use pretium_net::{EdgeId, Network, PathSet, TimeGrid, Timestep};
use pretium_workload::Request;

/// Knobs shared by the priced offline oracles.
#[derive(Debug, Clone)]
pub struct PricedOfflineConfig {
    pub k_paths: usize,
    pub highpri_fraction: f64,
    pub topk: TopkEncoding,
    pub cost_scale: f64,
    /// Number of price candidates per level in the oracle grid search.
    pub grid_points: usize,
}

impl Default for PricedOfflineConfig {
    fn default() -> Self {
        PricedOfflineConfig {
            k_paths: 3,
            highpri_fraction: 0.10,
            topk: TopkEncoding::CVar,
            cost_scale: 1.0,
            grid_points: 4,
        }
    }
}

/// Candidate per-unit prices: quantiles of the observed value distribution
/// (plus zero). An oracle searching these cannot miss the revenue-relevant
/// range.
pub fn price_candidates(requests: &[Request], n: usize) -> Vec<f64> {
    let mut values: Vec<f64> = requests.iter().map(|r| r.value).collect();
    values.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mut out = vec![0.0];
    if values.is_empty() {
        return out;
    }
    for i in 1..=n {
        let q = i as f64 / n as f64;
        let idx = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len()) - 1;
        let v = values[idx];
        if out.last().map(|&l| (l - v).abs() > 1e-12).unwrap_or(true) {
            out.push(v);
        }
    }
    out
}

/// Schedule the given requests under a posted price: request `i`
/// participates at timestep `t` iff `price_of(i, t) <= v_i`, pays
/// `price_of(i, t)` per unit actually moved at `t`, and the scheduler
/// maximizes moved units minus proxied percentile costs.
///
/// Returns `None` when no request can participate at all.
pub fn run_posted_price(
    net: &Network,
    grid: &TimeGrid,
    horizon: usize,
    requests: &[Request],
    cfg: &PricedOfflineConfig,
    scheme: &str,
    price_of: impl Fn(&Request, Timestep) -> f64,
) -> Result<Option<Outcome>, SolveError> {
    let mut paths = PathSet::new(cfg.k_paths);
    let mut jobs = Vec::new();
    let mut job_req = Vec::new();
    for (i, r) in requests.iter().enumerate() {
        let p = paths.paths(net, r.src, r.dst).to_vec();
        if p.is_empty() {
            continue;
        }
        let deadline = r.deadline.min(horizon - 1);
        let affordable: Vec<Timestep> =
            (r.start..=deadline).filter(|&t| price_of(r, t) <= r.value + 1e-12).collect();
        if affordable.is_empty() {
            continue;
        }
        // Scheduler weight = 1 per unit: the §6.1 baselines "transfer the
        // maximum amount of bytes before the deadlines while accounting for
        // the 95th percentile costs". Posted prices are the ONLY value
        // filter these schemes have — the byte-maximizing scheduler itself
        // is value-blind, which is precisely why they underperform when
        // low-value traffic clears the posted price but not the true cost.
        let jitter = 1.0 + (r.id.index() % 97) as f64 * 1e-6;
        jobs.push(
            Job::new(i, p, r.start, deadline, jitter, 0.0, r.demand).with_allowed_steps(affordable),
        );
        job_req.push(i);
    }
    if jobs.is_empty() {
        return Ok(None);
    }
    let frac = 1.0 - cfg.highpri_fraction;
    let capacity = move |e: EdgeId, _t: Timestep| net.edge(e).capacity * frac;
    let zero = |_: EdgeId, _: Timestep| 0.0;
    let problem = ScheduleProblem {
        net,
        grid,
        from: 0,
        to: horizon,
        jobs: &jobs,
        capacity: &capacity,
        realized: &zero,
        topk: cfg.topk,
        cost_scale: cfg.cost_scale,
    };
    let sol = schedule::solve(&problem)?;
    let mut out = Outcome::new(scheme, requests.len(), net.num_edges(), horizon);
    for (j, &ri) in job_req.iter().enumerate() {
        let r = &requests[ri];
        out.delivered[ri] = sol.delivered[j];
        out.admitted[ri] = sol.delivered[j] > 1e-9;
        for &(pi, t, units) in &sol.flows[j] {
            out.payments[ri] += units * price_of(r, t);
            for &e in jobs[j].paths[pi].edges() {
                out.usage.record(e, t, units);
            }
        }
    }
    Ok(Some(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pretium_net::{LinkCost, Region};
    use pretium_workload::{RequestId, RequestKind};

    fn req(id: u64, value: f64, demand: f64, start: usize, deadline: usize) -> Request {
        Request {
            id: RequestId(id),
            src: pretium_net::NodeId(0),
            dst: pretium_net::NodeId(1),
            demand,
            value,
            arrival: start,
            start,
            deadline,
            kind: RequestKind::Byte,
        }
    }

    #[test]
    fn candidates_are_value_quantiles() {
        let requests: Vec<Request> = (0..10).map(|i| req(i, (i + 1) as f64, 1.0, 0, 1)).collect();
        let c = price_candidates(&requests, 5);
        assert_eq!(c[0], 0.0);
        assert!(c.contains(&10.0), "{c:?}");
        assert!(c.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn posted_price_filters_low_values() {
        let mut net = Network::new();
        let a = net.add_node("A", Region::NorthAmerica);
        let b = net.add_node("B", Region::Europe);
        net.add_edge(a, b, 10.0, LinkCost::owned());
        let grid = TimeGrid::new(2, 30);
        let requests = vec![req(0, 5.0, 5.0, 0, 1), req(1, 1.0, 5.0, 0, 1)];
        let cfg = PricedOfflineConfig { highpri_fraction: 0.0, ..Default::default() };
        let out =
            run_posted_price(&net, &grid, 2, &requests, &cfg, "t", |_, _| 2.0).unwrap().unwrap();
        assert!((out.delivered[0] - 5.0).abs() < 1e-6);
        assert_eq!(out.delivered[1], 0.0, "value 1 < price 2 must be excluded");
        assert!((out.payments[0] - 10.0).abs() < 1e-6);
        assert!(!out.admitted[1]);
    }

    #[test]
    fn time_varying_price_restricts_steps() {
        let mut net = Network::new();
        let a = net.add_node("A", Region::NorthAmerica);
        let b = net.add_node("B", Region::Europe);
        net.add_edge(a, b, 10.0, LinkCost::owned());
        let grid = TimeGrid::new(4, 30);
        // Price 3 at steps 0-1 (peak), 0.5 at steps 2-3.
        let price = |_r: &Request, t: Timestep| if t < 2 { 3.0 } else { 0.5 };
        let requests = vec![req(0, 1.0, 30.0, 0, 3)];
        let cfg = PricedOfflineConfig { highpri_fraction: 0.0, ..Default::default() };
        let out = run_posted_price(&net, &grid, 4, &requests, &cfg, "t", price).unwrap().unwrap();
        // Only off-peak steps affordable: 2 × 10 = 20 units at 0.5.
        assert!((out.delivered[0] - 20.0).abs() < 1e-6, "{:?}", out.delivered);
        assert!((out.payments[0] - 10.0).abs() < 1e-6);
        for t in 0..2 {
            assert_eq!(out.usage.at(EdgeId(0), t), 0.0, "peak step {t} must be empty");
        }
    }

    #[test]
    fn none_when_everyone_priced_out() {
        let mut net = Network::new();
        let a = net.add_node("A", Region::NorthAmerica);
        let b = net.add_node("B", Region::Europe);
        net.add_edge(a, b, 10.0, LinkCost::owned());
        let grid = TimeGrid::new(2, 30);
        let requests = vec![req(0, 1.0, 5.0, 0, 1)];
        let cfg = PricedOfflineConfig::default();
        let out = run_posted_price(&net, &grid, 2, &requests, &cfg, "t", |_, _| 100.0).unwrap();
        assert!(out.is_none());
    }
}
