//! # pretium-sim — discrete-time replay simulator and experiments
//!
//! Glue between the Pretium system, the baselines, and the synthetic
//! workload:
//!
//! * [`scenario`] — seeded world generation (topology + trace + requests)
//!   so every scheme replays identical inputs.
//! * [`faults`] — seeded fault schedules (link failures, degradations,
//!   surges, solver pressure) replayed against a live run (§4.4).
//! * [`runner`] — the online Pretium replay loop (each step's arrivals
//!   quoted off one admission snapshot — on the [`par`] pool when
//!   `ra_jobs` > 1 — then sequenced deterministically; SAM per timestep,
//!   PC per window) and the Figure 11 ablation variants.
//! * [`experiments`] — one regenerator per table/figure of §6.
//! * [`incentives`] — the §5 misreporting study.
//! * [`report`] — plain-text rendering of figures/tables.

pub mod experiments;
pub mod faults;
pub mod incentives;
pub mod par;
pub mod registry;
pub mod report;
pub mod runner;
pub mod scenario;

pub use experiments::{compare_schemes, compare_schemes_jobs, Comparison};
pub use faults::{FaultEvent, FaultPlan, FaultPlanConfig};
pub use incentives::{analyze_deviations, Deviation, DeviationReport};
pub use par::{default_jobs, run_cells, Cell};
pub use registry::{registry, Experiment, ExperimentResult, Sweep};
pub use report::{render_ascii_plot, render_figure, render_table, Series};
pub use runner::{run_pretium, run_pretium_faulted, PretiumRun, Variant};
pub use scenario::{Scenario, ScenarioConfig};
