//! Table 4: runtimes of the three Pretium modules (RA per request, SAM per
//! timestep, PC per window) measured on the default evaluation scale.

use pretium_bench::{black_box, Harness};
use pretium_core::{Pretium, PretiumConfig, RequestParams};
use pretium_net::UsageTracker;
use pretium_sim::ScenarioConfig;

/// Warm a Pretium instance to mid-simulation state (half the requests
/// admitted, SAM executed, first window done).
fn warmed() -> (Pretium, UsageTracker, pretium_sim::Scenario, usize) {
    let scenario = ScenarioConfig::evaluation(rand::DEFAULT_SEED, 1.0).build();
    let mut system = Pretium::new(
        scenario.net.clone(),
        scenario.grid,
        scenario.horizon,
        PretiumConfig::default(),
    );
    let mut usage = UsageTracker::new(scenario.net.num_edges(), scenario.horizon);
    let mid = scenario.horizon / 2;
    let mut next = 0;
    for t in 0..mid {
        if scenario.grid.step_in_window(t) == 0 && t > 0 {
            system.run_pc(t).unwrap();
        }
        while next < scenario.requests.len() && scenario.requests[next].arrival == t {
            let r = &scenario.requests[next];
            let params = RequestParams::from(r);
            system.admit_one(&params, |menu| menu.optimal_purchase(r.value, r.demand));
            next += 1;
        }
        system.run_sam(t, &usage).unwrap();
        system.execute_step(t, &mut usage);
    }
    (system, usage, scenario, mid)
}

fn main() {
    let mut h = Harness::new().sample_size(10);
    let (mut system, usage, scenario, mid) = warmed();

    // RA: quote a representative mid-simulation request off a published
    // admission snapshot (the quoting surface since the sequencer API).
    let probe =
        scenario.requests.iter().find(|r| r.arrival >= mid).expect("request in second half");
    let params = RequestParams::from(probe);
    let snap = system.snapshot();
    h.bench_function("table4_ra_quote", |b| {
        b.iter(|| black_box(snap.quote(&params).capacity_bound()));
    });
    system.absorb_quotes(&snap);
    drop(snap);

    // SAM: one full re-optimization at the midpoint.
    h.bench_function("table4_sam_step", |b| {
        b.iter(|| {
            system.run_sam(mid, &usage).unwrap();
        });
    });

    // PC: one full price recomputation at the second window boundary.
    let boundary = scenario.grid.window_start(1);
    h.bench_function("table4_pc_window", |b| {
        b.iter(|| {
            system.run_pc(boundary.max(scenario.grid.steps_per_window)).unwrap();
        });
    });
}
