//! Audited replay: run the full Pretium loop over an evaluation-scale
//! scenario with the network-state invariant auditor enabled, then print
//! the per-module telemetry and the audit summary.
//!
//! The auditor sweeps the shared `NetworkState` after every RA accept,
//! SAM re-optimization, PC price update, and executed step, checking
//! that no link is oversubscribed, every contract's plan is backed by
//! reservations, payments and marginal prices stay finite, prices
//! respect their floors once PC has run, and active guarantees remain
//! coverable. A clean run exits 0; any recorded violation exits 1.
//!
//! ```text
//! cargo run --release --example audited_run
//! ```

use pretium::core::PretiumConfig;
use pretium::sim::runner::{run_pretium, Variant};
use pretium::sim::scenario::ScenarioConfig;

fn main() {
    let scenario = ScenarioConfig::evaluation(rand::DEFAULT_SEED, 1.0).build();
    println!(
        "audited replay: {} datacenters, {} links, {} requests over {} steps",
        scenario.net.num_nodes(),
        scenario.net.num_edges(),
        scenario.requests.len(),
        scenario.horizon
    );

    // Auditing is always on in debug builds; the flag turns it on for the
    // release builds this example is meant to run as.
    let cfg = PretiumConfig { audit: true, ..Default::default() };

    let run = run_pretium(&scenario, cfg, Variant::Full).expect("LP solve failed");
    let admitted = run.outcome.admitted.iter().filter(|&&a| a).count();
    let delivered: f64 = run.outcome.delivered.iter().sum();
    println!(
        "admitted {admitted}/{} requests, delivered {delivered:.1} units\n",
        scenario.requests.len()
    );

    println!("{}", run.telemetry_report("Telemetry (measured pass)"));

    let aud = run.audit().expect("auditing was enabled");
    if aud.is_clean() {
        println!("audit: CLEAN ({} sweeps, 0 violations)", aud.checks());
    } else {
        println!("audit: {} violation(s) over {} sweeps", aud.total_violations(), aud.checks());
        std::process::exit(1);
    }
}
