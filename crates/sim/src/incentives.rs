//! Empirical incentive analysis (§5).
//!
//! Theorem 5.1 proves truthfulness under a technical condition; the paper
//! complements it by *sampling users and simulating deviations*: fewer than
//! 26% of admitted requests could gain by misreporting, and the average
//! gain (conditional on gaining) was below 6%. This module reproduces that
//! experiment: for a sample of requests, re-run the entire simulation with
//! one request's parameters misreported and compare the customer's
//! realized utility (value of units delivered *within the true window*
//! minus payment).

use crate::runner::{run_pretium, Variant};
use crate::scenario::Scenario;
use pretium_core::PretiumConfig;
use pretium_lp::SolveError;
use pretium_workload::{Request, RequestId};

/// A strategic misreport.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Deviation {
    /// Report a deadline `k` steps later than the truth (hoping for a
    /// cheaper quote while still finishing in time).
    LaterDeadline(usize),
    /// Report a deadline `k` steps earlier (hoping for better service).
    TighterDeadline(usize),
    /// Split the request into two half-demand requests.
    Split,
}

impl Deviation {
    pub fn label(self) -> String {
        match self {
            Deviation::LaterDeadline(k) => format!("deadline+{k}"),
            Deviation::TighterDeadline(k) => format!("deadline-{k}"),
            Deviation::Split => "split".to_string(),
        }
    }

    /// Apply the deviation to request `r`; returns the misreported
    /// request(s), or `None` when the deviation is not applicable.
    fn apply(self, r: &Request, horizon: usize) -> Option<Vec<Request>> {
        match self {
            Deviation::LaterDeadline(k) => {
                let deadline = r.deadline + k;
                if deadline >= horizon {
                    return None;
                }
                Some(vec![Request { deadline, ..r.clone() }])
            }
            Deviation::TighterDeadline(k) => {
                if r.deadline < r.start + k {
                    return None;
                }
                Some(vec![Request { deadline: r.deadline - k, ..r.clone() }])
            }
            Deviation::Split => {
                let mut a = r.clone();
                let mut b = r.clone();
                a.demand /= 2.0;
                b.demand -= a.demand;
                b.id = RequestId(u64::MAX); // re-assigned below
                Some(vec![a, b])
            }
        }
    }
}

/// Outcome of the deviation study.
#[derive(Debug, Clone)]
pub struct DeviationReport {
    /// Requests sampled (admitted requests only).
    pub sampled: usize,
    /// Deviations simulated.
    pub simulated: usize,
    /// Requests for which *some* deviation strictly increased utility.
    pub gainers: usize,
    /// Mean relative gain among gainers (fraction of truthful utility).
    pub avg_gain: f64,
    /// Largest relative gain observed.
    pub max_gain: f64,
    /// Per-deviation stats: `(label, attempts, gainers, mean gain)`.
    pub per_deviation: Vec<(String, usize, usize, f64)>,
}

impl DeviationReport {
    /// Fraction of sampled users that could benefit at all.
    pub fn gainer_fraction(&self) -> f64 {
        if self.sampled == 0 {
            0.0
        } else {
            self.gainers as f64 / self.sampled as f64
        }
    }
}

/// Utility of request `ri` in a run: value × units delivered within the
/// **true** window, minus the payment. `indices` lists the positions of the
/// (possibly split) misreported request in the modified request vector.
fn utility(
    scenario_requests: &[Request],
    outcome: &pretium_baselines::Outcome,
    delivery_log: &[Vec<(usize, f64)>],
    contract_of_request: &[Option<usize>],
    indices: &[usize],
    true_value: f64,
    true_deadline: usize,
) -> f64 {
    let mut util = 0.0;
    for &i in indices {
        let within: f64 = match contract_of_request[i] {
            Some(ci) => {
                delivery_log[ci].iter().filter(|&&(t, _)| t <= true_deadline).map(|&(_, d)| d).sum()
            }
            None => 0.0,
        };
        util += true_value * within - outcome.payments[i];
        let _ = scenario_requests;
    }
    util
}

/// Run the §5 deviation study: for the first `sample` admitted requests,
/// try each deviation in `deviations` and measure realized utility.
pub fn analyze_deviations(
    scenario: &Scenario,
    cfg: &PretiumConfig,
    deviations: &[Deviation],
    sample: usize,
) -> Result<DeviationReport, SolveError> {
    let base = run_pretium(scenario, cfg.clone(), Variant::Full)?;
    let truthful_requests = &scenario.requests;
    // Sampled users: admitted requests, in arrival order.
    let sampled: Vec<usize> =
        (0..truthful_requests.len()).filter(|&i| base.outcome.admitted[i]).take(sample).collect();

    let mut per_dev: Vec<(String, usize, usize, f64)> =
        deviations.iter().map(|d| (d.label(), 0usize, 0usize, 0.0f64)).collect();
    let mut gainers = 0usize;
    let mut gains: Vec<f64> = Vec::new();
    let mut simulated = 0usize;

    for &ri in &sampled {
        let truth = &truthful_requests[ri];
        let base_util = utility(
            truthful_requests,
            &base.outcome,
            &base.delivery_log,
            &base.contract_of_request,
            &[ri],
            truth.value,
            truth.deadline,
        );
        let mut best_gain: f64 = 0.0;
        for (di, &dev) in deviations.iter().enumerate() {
            let Some(reported) = dev.apply(truth, scenario.horizon) else {
                continue;
            };
            // Build the modified world: replace request ri.
            let mut requests: Vec<Request> = Vec::with_capacity(truthful_requests.len() + 1);
            let mut indices = Vec::new();
            for (i, r) in truthful_requests.iter().enumerate() {
                if i == ri {
                    for rep in &reported {
                        indices.push(requests.len());
                        requests.push(rep.clone());
                    }
                } else {
                    requests.push(r.clone());
                }
            }
            for (i, r) in requests.iter_mut().enumerate() {
                r.id = RequestId(i as u64);
            }
            let modified = Scenario { requests, ..scenario.clone() };
            let run = run_pretium(&modified, cfg.clone(), Variant::Full)?;
            simulated += 1;
            let dev_util = utility(
                &modified.requests,
                &run.outcome,
                &run.delivery_log,
                &run.contract_of_request,
                &indices,
                truth.value,
                truth.deadline,
            );
            per_dev[di].1 += 1;
            let gain = dev_util - base_util;
            let rel = gain / base_util.abs().max(1e-9);
            if gain > 1e-6 {
                per_dev[di].2 += 1;
                per_dev[di].3 += rel;
            }
            best_gain = best_gain.max(rel);
        }
        if best_gain > 1e-6 {
            gainers += 1;
            gains.push(best_gain);
        }
    }
    for d in &mut per_dev {
        if d.2 > 0 {
            d.3 /= d.2 as f64;
        }
    }
    let avg_gain =
        if gains.is_empty() { 0.0 } else { gains.iter().sum::<f64>() / gains.len() as f64 };
    let max_gain = gains.iter().cloned().fold(0.0, f64::max);
    Ok(DeviationReport {
        sampled: sampled.len(),
        simulated,
        gainers,
        avg_gain,
        max_gain,
        per_deviation: per_dev,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioConfig;

    #[test]
    fn deviations_apply_correctly() {
        let sc = ScenarioConfig::tiny(3).build();
        let r = &sc.requests[0];
        if let Some(v) = Deviation::Split.apply(r, sc.horizon) {
            assert_eq!(v.len(), 2);
            assert!((v[0].demand + v[1].demand - r.demand).abs() < 1e-12);
        }
        if r.deadline + 2 < sc.horizon {
            let v = Deviation::LaterDeadline(2).apply(r, sc.horizon).unwrap();
            assert_eq!(v[0].deadline, r.deadline + 2);
        }
        assert!(Deviation::LaterDeadline(sc.horizon).apply(r, sc.horizon).is_none());
    }

    #[test]
    fn small_study_reports_bounded_gains() {
        let sc = ScenarioConfig::tiny(13).build();
        let report = analyze_deviations(
            &sc,
            &PretiumConfig::default(),
            &[Deviation::LaterDeadline(2), Deviation::Split],
            3,
        )
        .unwrap();
        assert!(report.sampled <= 3);
        assert!(report.gainer_fraction() <= 1.0);
        assert!(report.simulated >= report.sampled, "each sample tries >= 1 deviation");
        // The paper's qualitative claim: gains are modest. We only assert
        // the metric is finite and non-pathological here (exact numbers are
        // exercised by the incentives experiment binary).
        assert!(report.avg_gain.is_finite());
    }

    #[test]
    fn tighter_deadline_never_helps_price() {
        // Direct check of the Theorem 5.1 monotonicity ingredient at the
        // menu level: a shorter window can only raise the quoted price.
        let sc = ScenarioConfig::tiny(17).build();
        let mut system = pretium_core::Pretium::new(
            sc.net.clone(),
            sc.grid,
            sc.horizon,
            PretiumConfig::default(),
        );
        let mut checked = 0;
        for r in sc.requests.iter().take(10) {
            if r.deadline <= r.start + 1 {
                continue;
            }
            let truth = pretium_core::RequestParams::from(r);
            let mut tight = truth.clone();
            tight.deadline -= 1;
            let snap = system.snapshot();
            let menu_truth = snap.quote(&truth);
            let menu_tight = snap.quote(&tight);
            // Monotonicity is guaranteed for the guaranteed range (<= x̄ of
            // the tighter menu); beyond that, prices are best-effort
            // extrapolations.
            let xbar = menu_tight.capacity_bound();
            for x in [r.demand * 0.5, r.demand] {
                if x > xbar {
                    continue;
                }
                assert!(
                    menu_tight.price(x) >= menu_truth.price(x) - 1e-9,
                    "tighter deadline got cheaper: {} < {}",
                    menu_tight.price(x),
                    menu_truth.price(x)
                );
            }
            checked += 1;
        }
        assert!(checked > 0);
    }
}
