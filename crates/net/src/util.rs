//! Link utilization accounting.
//!
//! [`UsageTracker`] records the volume carried by every edge at every
//! timestep and derives the statistics the paper reports: per-window
//! percentile costs, utilization CDFs (Figures 1 and 10), and the
//! 90th/10th-percentile spread that motivates dynamic pricing.

use crate::cost::LinkCost;
use crate::graph::{EdgeId, Network};
use crate::percentile;
use crate::time::{TimeGrid, Timestep};

/// Per-edge, per-timestep carried volume.
#[derive(Debug, Clone)]
pub struct UsageTracker {
    /// `usage[edge][t]` = volume carried.
    usage: Vec<Vec<f64>>,
    horizon: usize,
}

impl UsageTracker {
    /// Track `num_edges` edges over `horizon` timesteps.
    pub fn new(num_edges: usize, horizon: usize) -> Self {
        UsageTracker { usage: vec![vec![0.0; horizon]; num_edges], horizon }
    }

    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// Add `amount` to edge `e` at timestep `t`.
    ///
    /// # Panics
    /// Panics on a negative amount or out-of-range indices.
    pub fn record(&mut self, e: EdgeId, t: Timestep, amount: f64) {
        assert!(amount >= 0.0, "negative usage");
        self.usage[e.index()][t] += amount;
    }

    /// Raw usage series of an edge.
    pub fn series(&self, e: EdgeId) -> &[f64] {
        &self.usage[e.index()]
    }

    /// Usage of an edge at one timestep.
    pub fn at(&self, e: EdgeId, t: Timestep) -> f64 {
        self.usage[e.index()][t]
    }

    /// Total volume carried by edge `e` over `[from, to)` (clamped to the
    /// horizon). Used by the fault reports to compare traffic on a link
    /// before, during, and after an injected outage.
    pub fn volume_on(&self, e: EdgeId, from: Timestep, to: Timestep) -> f64 {
        let to = to.min(self.horizon);
        if from >= to {
            return 0.0;
        }
        self.usage[e.index()][from..to].iter().sum()
    }

    /// Usage slice for a window.
    pub fn window(&self, e: EdgeId, grid: &TimeGrid, w: usize) -> &[f64] {
        let r = grid.window_range(w);
        &self.usage[e.index()][r.start..r.end.min(self.horizon)]
    }

    /// Number of whole/partial windows covered by the horizon.
    pub fn num_windows(&self, grid: &TimeGrid) -> usize {
        self.horizon.div_ceil(grid.steps_per_window)
    }

    /// Total operating cost over all windows using the **true** (non-convex)
    /// 95th-percentile billing rule.
    pub fn total_cost(&self, net: &Network, grid: &TimeGrid) -> f64 {
        self.cost_with(net, grid, |cost, usage| cost.window_cost(usage))
    }

    /// Total operating cost under the sum-of-top-k proxy (what the LPs
    /// optimize).
    pub fn total_proxy_cost(&self, net: &Network, grid: &TimeGrid) -> f64 {
        self.cost_with(net, grid, |cost, usage| cost.proxy_window_cost(usage))
    }

    fn cost_with(
        &self,
        net: &Network,
        grid: &TimeGrid,
        f: impl Fn(&LinkCost, &[f64]) -> f64,
    ) -> f64 {
        let mut total = 0.0;
        for e in net.edge_ids() {
            let cost = &net.edge(e).cost;
            if !cost.is_percentile() {
                continue;
            }
            for w in 0..self.num_windows(grid) {
                total += f(cost, self.window(e, grid, w));
            }
        }
        total
    }

    /// Utilization series of an edge (usage / capacity), clamped at ≥ 0.
    pub fn utilization(&self, net: &Network, e: EdgeId) -> Vec<f64> {
        let cap = net.edge(e).capacity;
        self.usage[e.index()].iter().map(|&u| u / cap).collect()
    }

    /// Figure 1: per-edge ratio of 90th to 10th percentile utilization.
    /// Edges with a 10th percentile below `floor` (as a fraction of
    /// capacity) are reported against the floor to avoid division blowups.
    pub fn p90_over_p10_ratios(&self, net: &Network, floor: f64) -> Vec<f64> {
        net.edge_ids()
            .map(|e| {
                let u = self.utilization(net, e);
                let p90 = percentile::percentile(&u, 0.90);
                let p10 = percentile::percentile(&u, 0.10).max(floor);
                p90 / p10
            })
            .collect()
    }

    /// Figure 10: per-edge 90th-percentile utilization.
    pub fn p90_utilizations(&self, net: &Network) -> Vec<f64> {
        net.edge_ids().map(|e| percentile::percentile(&self.utilization(net, e), 0.90)).collect()
    }

    /// Peak (maximum) utilization per edge.
    pub fn peak_utilizations(&self, net: &Network) -> Vec<f64> {
        net.edge_ids()
            .map(|e| self.utilization(net, e).into_iter().fold(0.0f64, f64::max))
            .collect()
    }

    /// Verify no edge exceeds its capacity by more than `tol` (fraction of
    /// capacity); returns offending `(edge, timestep, usage)` triples.
    pub fn capacity_violations(&self, net: &Network, tol: f64) -> Vec<(EdgeId, Timestep, f64)> {
        let mut out = Vec::new();
        for e in net.edge_ids() {
            let cap = net.edge(e).capacity;
            for (t, &u) in self.usage[e.index()].iter().enumerate() {
                if u > cap * (1.0 + tol) {
                    out.push((e, t, u));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Region;

    fn net_one_pct_edge() -> (Network, EdgeId) {
        let mut net = Network::new();
        let a = net.add_node("A", Region::NorthAmerica);
        let b = net.add_node("B", Region::Europe);
        let e = net.add_edge(a, b, 10.0, LinkCost::percentile(2.0));
        (net, e)
    }

    #[test]
    fn record_accumulates() {
        let (_, e) = net_one_pct_edge();
        let mut u = UsageTracker::new(1, 4);
        u.record(e, 1, 2.0);
        u.record(e, 1, 3.0);
        assert_eq!(u.at(e, 1), 5.0);
        assert_eq!(u.series(e), &[0.0, 5.0, 0.0, 0.0]);
    }

    #[test]
    fn true_cost_uses_95th_percentile() {
        let (net, e) = net_one_pct_edge();
        let grid = TimeGrid::new(100, 30);
        let mut u = UsageTracker::new(1, 100);
        for t in 0..100 {
            u.record(e, t, (t + 1) as f64 / 10.0);
        }
        // 95th percentile of 0.1..10.0 is 9.5; unit cost 2.0 -> 19.0.
        assert!((u.total_cost(&net, &grid) - 19.0).abs() < 1e-9);
        // Proxy: mean of top 10 values (9.1..=10.0 avg 9.55) * 2 = 19.1.
        assert!((u.total_proxy_cost(&net, &grid) - 19.1).abs() < 1e-9);
    }

    #[test]
    fn owned_edges_cost_nothing() {
        let mut net = Network::new();
        let a = net.add_node("A", Region::NorthAmerica);
        let b = net.add_node("B", Region::NorthAmerica);
        let e = net.add_edge(a, b, 10.0, LinkCost::owned());
        let grid = TimeGrid::new(4, 30);
        let mut u = UsageTracker::new(1, 4);
        u.record(e, 0, 10.0);
        assert_eq!(u.total_cost(&net, &grid), 0.0);
    }

    #[test]
    fn multi_window_costs_sum() {
        let (net, e) = net_one_pct_edge();
        let grid = TimeGrid::new(2, 30);
        let mut u = UsageTracker::new(1, 4);
        // Window 0: [4, 0] -> p95 = 4. Window 1: [0, 6] -> p95 = 6.
        u.record(e, 0, 4.0);
        u.record(e, 3, 6.0);
        assert!((u.total_cost(&net, &grid) - 2.0 * (4.0 + 6.0)).abs() < 1e-9);
    }

    #[test]
    fn volume_on_sums_range_and_clamps() {
        let (_, e) = net_one_pct_edge();
        let mut u = UsageTracker::new(1, 4);
        u.record(e, 0, 1.0);
        u.record(e, 1, 2.0);
        u.record(e, 3, 4.0);
        assert_eq!(u.volume_on(e, 0, 2), 3.0);
        assert_eq!(u.volume_on(e, 1, 100), 6.0); // clamped to horizon
        assert_eq!(u.volume_on(e, 2, 2), 0.0); // empty range
    }

    #[test]
    fn violations_detected() {
        let (net, e) = net_one_pct_edge();
        let mut u = UsageTracker::new(1, 3);
        u.record(e, 2, 10.5);
        let v = u.capacity_violations(&net, 0.01);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].0, e);
        assert_eq!(v[0].1, 2);
        assert!(u.capacity_violations(&net, 0.10).is_empty());
    }

    #[test]
    fn ratio_floor_prevents_blowup() {
        let (net, e) = net_one_pct_edge();
        let mut u = UsageTracker::new(1, 10);
        u.record(e, 9, 10.0); // single spike, p10 = 0
        let r = u.p90_over_p10_ratios(&net, 0.01);
        assert!(r[0].is_finite());
        assert!(r[0] <= 100.0);
    }
}
