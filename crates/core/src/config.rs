//! Pretium configuration knobs.

use crate::degradation::DegradationPolicy;
use crate::state::PriceBump;
use crate::topk::TopkEncoding;
use pretium_lp::Pricing;

/// Which past window the price computer projects forward (§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReferenceWindow {
    /// The window that just ended.
    Previous,
    /// `n` windows back (e.g. the same window yesterday when windows are
    /// shorter than a day).
    WindowsBack(usize),
}

/// Incremental SAM re-optimization mode (DESIGN.md §16).
///
/// When a SAM step follows a *localized* change — a few accepts, a fault
/// with a known touched-edge set — the schedule session can freeze every
/// untouched job block at its current plan and re-solve only the affected
/// blocks against residual capacities, adopting the composite only when its
/// KKT certificate holds. `Off` keeps the full (warm-started) re-solve on
/// every step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IncrementalSam {
    /// Always re-solve the full LP (warm-started).
    Off,
    /// Localized solves certified at the solver's own feasibility
    /// tolerance — the composite is the exact LP optimum or it is
    /// discarded.
    Exact,
    /// Localized solves certified at an explicit tolerance (looser than
    /// `Exact` trades a little optimality slack for fewer fallbacks).
    Certified {
        /// Max reduced-cost / feasibility violation accepted.
        tol: f64,
    },
}

impl IncrementalSam {
    /// The certification tolerance this mode demands (solver feasibility
    /// tolerance for `Exact`).
    pub fn tol(self) -> f64 {
        match self {
            // Matches SimplexOptions::default().feas_tol; solve_restricted
            // takes the max of the two anyway.
            IncrementalSam::Off | IncrementalSam::Exact => 1e-7,
            IncrementalSam::Certified { tol } => tol,
        }
    }
}

/// Column-generation mode for the SAM scheduling LP (DESIGN.md §17).
///
/// `Off` materializes every `(path, timestep)` flow variable when a job is
/// added — the reference behavior every recorded experiment uses. `On`
/// builds a *restricted master*: each job seeds only its shortest
/// `seed_paths` paths, and absent columns are appended only when the
/// restricted optimum's duals give them favorable reduced cost. Columns
/// generated in one SAM step persist (warm) into the next.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ColumnGen {
    /// Materialize the full `(path, timestep)` column universe up front.
    #[default]
    Off,
    /// Lazy column generation over the Yen k-shortest-path set.
    On {
        /// Pricing-round budget per SAM step; `0` selects 50. When the
        /// budget runs out, the restricted-master optimum is adopted as is
        /// (budget-truncated rather than certified over the universe).
        max_rounds: u32,
        /// Paths seeded per job (shortest first); `0` selects 1.
        seed_paths: usize,
    },
}

impl ColumnGen {
    /// `On` with the default budget and seed width.
    pub fn on() -> Self {
        ColumnGen::On { max_rounds: 0, seed_paths: 0 }
    }

    /// The pricing-round budget this mode grants per SAM step.
    pub fn max_rounds(self) -> u32 {
        match self {
            ColumnGen::Off => 0,
            ColumnGen::On { max_rounds: 0, .. } => 50,
            ColumnGen::On { max_rounds, .. } => max_rounds,
        }
    }

    /// Paths seeded per job (shortest first).
    pub fn seed_paths(self) -> usize {
        match self {
            ColumnGen::Off => usize::MAX,
            ColumnGen::On { seed_paths: 0, .. } => 1,
            ColumnGen::On { seed_paths, .. } => seed_paths,
        }
    }
}

/// All tunables of a Pretium instance. Defaults follow the paper where it
/// states values, and DESIGN.md §8 where it does not.
#[derive(Debug, Clone)]
pub struct PretiumConfig {
    /// Admissible routes per request (k-shortest paths).
    pub k_paths: usize,
    /// Fraction of every link reserved for high-pri traffic (§4.4).
    pub highpri_fraction: f64,
    /// Short-term congestion price bump (§4.1; paper: double the last 20%).
    pub bump: PriceBump,
    /// Top-k cost encoding for the scheduling LPs.
    pub topk: TopkEncoding,
    /// Multiplier on link costs (Figure 12 sweeps this).
    pub cost_scale: f64,
    /// Run SAM every `sam_every` timesteps (1 = every step, as in §4.2).
    pub sam_every: usize,
    /// RA quote workers per arrival batch. 1 (the default) quotes each
    /// batch serially on the caller's thread; >1 fans quotes out over a
    /// work-stealing pool. Results are bit-identical either way — the
    /// sequencer, not thread timing, fixes admission order.
    pub ra_jobs: usize,
    /// Disable SAM entirely (the Pretium-NoSAM ablation of Figure 11).
    pub sam_enabled: bool,
    /// Windows of history the price computer optimizes over (the paper's
    /// period `T`, at least one window).
    pub lookback_windows: usize,
    /// Which past window supplies the projected prices.
    pub reference: ReferenceWindow,
    /// Price floor for owned links (per unit). Percentile links use
    /// `max(this, C_e / k)` so quotes never fall below marginal cost.
    pub price_floor: f64,
    /// Initial price scale at cold start (multiplies each link's floor).
    pub initial_price_scale: f64,
    /// Run the network-state invariant auditor after every RA accept, SAM
    /// re-optimization, PC price update, and executed step. Debug/test
    /// builds audit unconditionally; this flag turns auditing on in
    /// release builds too (e.g. for an audited evaluation replay).
    pub audit: bool,
    /// Fallback policy when faults make the guarantee LP uncoverable
    /// (§4.4): shed lowest-λ guarantees first, then relax the last one,
    /// booking every waiver in the violation ledger.
    pub degradation: DegradationPolicy,
    /// Simplex pricing strategy for every LP Pretium solves (RA quotes,
    /// SAM re-optimization, PC dual pricing). Deterministic given the
    /// model, so any choice preserves the cross-`--jobs` replay contract.
    pub pricing: Pricing,
    /// Incremental SAM re-optimization on localized changes (DESIGN.md
    /// §16). Off by default: the full warm re-solve is the reference
    /// behavior, and every recorded experiment uses it unless stated.
    pub incremental_sam: IncrementalSam,
    /// Drift guard for incremental SAM: force a full re-solve every this
    /// many SAM steps even when every intervening step certified (mirrors
    /// the PR-5 repricing guard cadence). 0 disables the cadence (certify
    /// only).
    pub sam_full_every: usize,
    /// Column generation for the SAM scheduling LP (DESIGN.md §17). Off by
    /// default: full materialization is the reference behavior, and every
    /// recorded experiment uses it unless stated. PC and the offline
    /// baselines always solve fully materialized regardless of this knob.
    pub colgen: ColumnGen,
    /// Forrest–Tomlin updates the LP basis factorization accumulates
    /// before refactorizing, for every LP Pretium solves. `0` (the
    /// default) inherits the solver default
    /// ([`pretium_lp::DEFAULT_MAX_ETAS`]). Any setting preserves the
    /// cross-`--jobs` replay contract; different settings change refactor
    /// cadence and hence floating-point roundoff, so objectives agree
    /// across settings only to solver tolerance (see the determinism
    /// suite's documented contract), not bit-exactly.
    pub max_etas: usize,
    /// Worker threads for the deterministic parallel-pricing layer, for
    /// every LP Pretium solves *and* the colgen oracle's job-block pricing.
    /// 1 (the default) runs the exact serial path; >1 fans candidate
    /// scoring out over a work-stealing pool in fixed, size-derived
    /// sections reduced in section order, so — unlike [`Self::max_etas`] —
    /// any setting is **bit-identical** to serial (DESIGN.md §19).
    pub pricing_jobs: usize,
}

impl Default for PretiumConfig {
    fn default() -> Self {
        PretiumConfig {
            k_paths: 3,
            highpri_fraction: 0.10,
            bump: PriceBump::default(),
            topk: TopkEncoding::CVar,
            cost_scale: 1.0,
            sam_every: 1,
            ra_jobs: 1,
            sam_enabled: true,
            lookback_windows: 1,
            reference: ReferenceWindow::Previous,
            price_floor: 0.05,
            initial_price_scale: 1.0,
            audit: false,
            degradation: DegradationPolicy::ShedThenRelax,
            pricing: Pricing::default(),
            incremental_sam: IncrementalSam::Off,
            sam_full_every: 16,
            colgen: ColumnGen::Off,
            max_etas: 0,
            pricing_jobs: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_constants() {
        let c = PretiumConfig::default();
        assert_eq!(c.bump.threshold, 0.8);
        assert_eq!(c.bump.factor, 2.0);
        assert_eq!(c.sam_every, 1);
        assert!(c.sam_enabled);
        // Release-build auditing is opt-in (debug builds always audit).
        assert!(!c.audit);
        assert_eq!(c.degradation, DegradationPolicy::ShedThenRelax);
        assert_eq!(c.pricing, Pricing::PartialDevex);
        // Incremental SAM is opt-in; the drift guard defaults to a full
        // re-solve every 16 steps when it is on.
        assert_eq!(c.incremental_sam, IncrementalSam::Off);
        assert_eq!(c.sam_full_every, 16);
        assert_eq!(IncrementalSam::Certified { tol: 1e-6 }.tol(), 1e-6);
        assert_eq!(IncrementalSam::Exact.tol(), 1e-7);
        // Colgen is opt-in; On defaults to 50 pricing rounds and a
        // single-path seed.
        assert_eq!(c.colgen, ColumnGen::Off);
        // Pricing parallelism defaults to the serial path; >1 is opt-in
        // and bit-identical by the section-ordered reduction contract.
        assert_eq!(c.pricing_jobs, 1);
        assert_eq!(ColumnGen::on().max_rounds(), 50);
        assert_eq!(ColumnGen::on().seed_paths(), 1);
        assert_eq!(ColumnGen::On { max_rounds: 7, seed_paths: 2 }.max_rounds(), 7);
        assert_eq!(ColumnGen::On { max_rounds: 7, seed_paths: 2 }.seed_paths(), 2);
    }

    #[test]
    fn clone_roundtrip() {
        let c = PretiumConfig::default();
        let back = c.clone();
        assert_eq!(c.k_paths, back.k_paths);
        assert_eq!(c.reference, back.reference);
    }
}
