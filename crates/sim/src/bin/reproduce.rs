//! Regenerate every table and figure of the paper's evaluation (§6).
//!
//! ```text
//! cargo run --release -p pretium-sim --bin reproduce            # everything
//! cargo run --release -p pretium-sim --bin reproduce -- fig6 fig8   # a subset
//! cargo run --release -p pretium-sim --bin reproduce -- --seed 11
//! ```
//!
//! Output is plain text: one block per figure with the same rows/series the
//! paper plots. EXPERIMENTS.md records a captured run next to the paper's
//! reported numbers.

use pretium_sim::experiments::{self, ModuleRuntimes, LOAD_FACTORS};
use pretium_sim::{
    analyze_deviations, render_figure, render_table, Deviation, ScenarioConfig, Series,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed = experiments::DEFAULT_SEED;
    let mut wanted: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                seed = it.next().and_then(|s| s.parse().ok()).expect("--seed needs an integer");
            }
            other => wanted.push(other.to_string()),
        }
    }
    let all = wanted.is_empty();
    let want = |name: &str| all || wanted.iter().any(|w| w == name);

    if want("table1") {
        println!("{}", pretium_workload::survey::format_table1());
    }
    if want("fig1") {
        let cdf = experiments::fig1_utilization_ratio_cdf(seed);
        let series = vec![Series::new("CDF", cdf)];
        println!(
            "{}",
            render_figure("Figure 1: CDF of p90/p10 link-utilization ratio", "ratio", &series)
        );
    }
    if want("fig2") {
        println!("Figure 2: see `cargo run --release --example paper_example`\n");
    }
    if want("fig5") {
        let fits = experiments::fig5_topk_proxy(seed);
        let rows: Vec<(String, String)> = fits
            .iter()
            .map(|f| {
                (
                    f.distribution.clone(),
                    format!(
                        "pearson={:.4} slope={:.3} intercept={:.3}",
                        f.pearson, f.slope, f.intercept
                    ),
                )
            })
            .collect();
        println!("{}", render_table("Figure 5: z_e (top-10% mean) vs y_e (95th pct)", &rows));
    }
    if want("fig6") {
        let series = experiments::fig6_welfare(seed, &LOAD_FACTORS).unwrap();
        println!("{}", render_figure("Figure 6: welfare relative to OPT", "load", &series));
    }
    if want("fig7") || want("fig7a") {
        let (prices, util) = experiments::fig7a_price_and_utilization(seed).unwrap();
        let series = vec![
            Series::new("price", prices.iter().enumerate().map(|(t, &p)| (t as f64, p)).collect()),
            Series::new(
                "utilization",
                util.iter().enumerate().map(|(t, &u)| (t as f64, u)).collect(),
            ),
        ];
        println!(
            "{}",
            render_figure(
                "Figure 7a: price & utilization over time (busiest pct link)",
                "t",
                &series
            )
        );
    }
    if want("fig7") || want("fig7b") {
        let (_, series) = experiments::fig7b_value_buckets(seed).unwrap();
        println!(
            "{}",
            render_figure(
                "Figure 7b: value captured per value bucket (rel. OPT)",
                "bucket<=",
                &series
            )
        );
    }
    if want("fig7") || want("fig7c") {
        let pts = experiments::fig7c_price_vs_value(seed).unwrap();
        println!(
            "{}",
            pretium_sim::render_ascii_plot(
                "Figure 7c: admission price vs request value",
                &pts,
                60,
                14
            )
        );
    }
    if want("fig8") {
        let series = experiments::fig8_profit(seed, &LOAD_FACTORS).unwrap();
        println!("{}", render_figure("Figure 8: profit relative to RegionOracle", "load", &series));
    }
    if want("fig9") {
        let series = experiments::fig9_completion(seed, &LOAD_FACTORS).unwrap();
        println!("{}", render_figure("Figure 9: fraction of requests completed", "load", &series));
    }
    if want("fig10") {
        let series = experiments::fig10_p90_utilization_cdf(seed).unwrap();
        println!(
            "{}",
            render_figure("Figure 10: CDF of per-link p90 utilization", "p90 util", &series)
        );
    }
    if want("fig11") {
        let series = experiments::fig11_ablations(seed, &LOAD_FACTORS).unwrap();
        println!("{}", render_figure("Figure 11: Pretium ablations (rel. OPT)", "load", &series));
    }
    if want("fig12") {
        let series = experiments::fig12_link_cost(seed, &[1.0, 1.4, 1.8, 2.2]).unwrap();
        println!(
            "{}",
            render_figure("Figure 12: welfare vs mean link cost (load 1)", "cost scale", &series)
        );
    }
    if want("fig13") || want("fig14") {
        let rows = experiments::fig13_14_value_distributions(seed, &[1.0, 2.0, 4.0]).unwrap();
        let table: Vec<(String, String)> = rows
            .iter()
            .map(|r| {
                (
                    format!("{} mu/sigma={}", r.distribution, r.mean_over_std),
                    format!(
                        "Pretium={:.3} Region={:.3} profit_ratio={:.2}",
                        r.pretium_welfare, r.region_welfare, r.profit_ratio
                    ),
                )
            })
            .collect();
        println!(
            "{}",
            render_table("Figures 13/14: value-distribution sensitivity (rel. OPT)", &table)
        );
    }
    if want("table4") {
        let rt = experiments::table4_runtimes(seed, 2.0).unwrap();
        let rows = vec![
            (
                "RA (per request)".to_string(),
                format!(
                    "median {:.4}s  p95 {:.4}s",
                    ModuleRuntimes::median(&rt.ra),
                    ModuleRuntimes::p95(&rt.ra)
                ),
            ),
            (
                "SAM (per timestep)".to_string(),
                format!(
                    "median {:.4}s  p95 {:.4}s",
                    ModuleRuntimes::median(&rt.sam),
                    ModuleRuntimes::p95(&rt.sam)
                ),
            ),
            (
                "PC (per window)".to_string(),
                format!(
                    "median {:.4}s  p95 {:.4}s",
                    ModuleRuntimes::median(&rt.pc),
                    ModuleRuntimes::p95(&rt.pc)
                ),
            ),
        ];
        println!("{}", render_table("Table 4: module runtimes", &rows));
    }
    if want("incentives") {
        let sc = ScenarioConfig::evaluation(seed, 1.0).build();
        let report = analyze_deviations(
            &sc,
            &pretium_core::PretiumConfig::default(),
            &[Deviation::LaterDeadline(2), Deviation::TighterDeadline(1), Deviation::Split],
            12,
        )
        .unwrap();
        let rows = vec![
            ("sampled users".to_string(), report.sampled.to_string()),
            ("simulated deviations".to_string(), report.simulated.to_string()),
            (
                "could gain (paper: <26%)".to_string(),
                format!("{} ({:.0}%)", report.gainers, 100.0 * report.gainer_fraction()),
            ),
            (
                "avg gain when gaining (paper: <6%)".to_string(),
                format!("{:.1}%", 100.0 * report.avg_gain),
            ),
            ("max gain".to_string(), format!("{:.1}%", 100.0 * report.max_gain)),
        ];
        println!("{}", render_table("Section 5: deviation study", &rows));
    }
}
