//! # pretium-sim — discrete-time replay simulator and experiments
//!
//! Glue between the Pretium system, the baselines, and the synthetic
//! workload:
//!
//! * [`scenario`] — seeded world generation (topology + trace + requests)
//!   so every scheme replays identical inputs.
//! * [`runner`] — the online Pretium replay loop (RA at arrivals, SAM per
//!   timestep, PC per window) and the Figure 11 ablation variants.
//! * [`experiments`] — one regenerator per table/figure of §6.
//! * [`incentives`] — the §5 misreporting study.
//! * [`report`] — plain-text rendering of figures/tables.

pub mod experiments;
pub mod incentives;
pub mod par;
pub mod registry;
pub mod report;
pub mod runner;
pub mod scenario;

pub use experiments::{compare_schemes, compare_schemes_jobs, Comparison};
pub use incentives::{analyze_deviations, Deviation, DeviationReport};
pub use par::{default_jobs, run_cells, Cell};
pub use registry::{registry, Experiment, ExperimentResult, Sweep};
pub use report::{render_ascii_plot, render_figure, render_table, Series};
pub use runner::{run_pretium, PretiumRun, Variant};
pub use scenario::{Scenario, ScenarioConfig};
