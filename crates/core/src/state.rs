//! The shared network-state datastructure (§4, Figure 3).
//!
//! All three Pretium modules read and write one state object: per-link,
//! per-timestep **internal prices** `P_{e,t}`, the **planned reservations**
//! of every accepted request, and the capacity **set aside for high-pri
//! traffic**. Prices are maintained for the whole simulation horizon;
//! the price computer fills future windows by carrying the reference
//! window's prices forward (§4.3).

use pretium_net::{EdgeId, Network, TimeGrid, Timestep};

/// Relative float tolerance for reservation-vs-capacity comparisons, shared
/// by [`NetworkState::reserve`]'s overbooking assert and the
/// [`crate::audit::Auditor`]'s independent re-check so the two can never
/// disagree about what counts as oversubscribed.
pub const RESERVE_REL_TOL: f64 = 1e-6;

/// Short-term congestion pricing rule (§4.1): once a link-timestep's
/// reserved fraction crosses `threshold`, the remaining capacity is priced
/// at `factor ×` the base price. Functionally equivalent to splitting each
/// link into two parallel links with different prices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PriceBump {
    /// Utilization fraction beyond which the bump applies (paper: 0.8).
    pub threshold: f64,
    /// Price multiplier for capacity beyond the threshold (paper: 2.0).
    pub factor: f64,
}

impl Default for PriceBump {
    fn default() -> Self {
        PriceBump { threshold: 0.8, factor: 2.0 }
    }
}

impl PriceBump {
    /// No short-term adjustment (used by the ablation experiments).
    pub fn disabled() -> Self {
        PriceBump { threshold: 1.0, factor: 1.0 }
    }
}

/// Central state shared by RA, SAM and PC.
#[derive(Debug, Clone)]
pub struct NetworkState {
    grid: TimeGrid,
    horizon: usize,
    /// Base internal price per unit, `[edge][t]`.
    prices: Vec<Vec<f64>>,
    /// Capacity reserved by accepted requests, `[edge][t]`.
    reserved: Vec<Vec<f64>>,
    /// Capacity set aside for high-pri traffic, `[edge][t]`.
    highpri: Vec<Vec<f64>>,
    /// Surviving capacity fraction under faults, `[edge][t]` (§4.4):
    /// `1.0` = healthy, `0.0` = failed. Multiplies the sellable capacity,
    /// so every consumer — menus, the scheduling LPs, the auditor, and the
    /// overbooking assert — sees the *degraded* capacity automatically.
    health: Vec<Vec<f64>>,
    /// Total capacity per edge (cached from the network).
    capacity: Vec<f64>,
    pub bump: PriceBump,
}

impl NetworkState {
    /// Fresh state with all prices at `initial_price(e)` and a constant
    /// `highpri_fraction` of every link reserved for high-pri traffic.
    pub fn new(
        net: &Network,
        grid: TimeGrid,
        horizon: usize,
        highpri_fraction: f64,
        bump: PriceBump,
        initial_price: impl Fn(EdgeId) -> f64,
    ) -> Self {
        assert!((0.0..1.0).contains(&highpri_fraction), "high-pri fraction in [0,1)");
        let ne = net.num_edges();
        let capacity: Vec<f64> = net.edge_ids().map(|e| net.edge(e).capacity).collect();
        NetworkState {
            grid,
            horizon,
            prices: net.edge_ids().map(|e| vec![initial_price(e).max(0.0); horizon]).collect(),
            reserved: vec![vec![0.0; horizon]; ne],
            highpri: capacity.iter().map(|&c| vec![c * highpri_fraction; horizon]).collect(),
            health: vec![vec![1.0; horizon]; ne],
            capacity,
            bump,
        }
    }

    pub fn grid(&self) -> &TimeGrid {
        &self.grid
    }

    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// Base price of `(e, t)`.
    pub fn price(&self, e: EdgeId, t: Timestep) -> f64 {
        self.prices[e.index()][t]
    }

    /// Overwrite the base price of `(e, t)`.
    pub fn set_price(&mut self, e: EdgeId, t: Timestep, p: f64) {
        assert!(p >= 0.0 && p.is_finite(), "price must be finite and >= 0");
        self.prices[e.index()][t] = p;
    }

    /// Capacity currently sellable at `(e, t)`: degraded total minus
    /// high-pri set-aside minus reservations. Never negative.
    pub fn available(&self, e: EdgeId, t: Timestep) -> f64 {
        (self.sellable_capacity(e, t) - self.reserved[e.index()][t]).max(0.0)
    }

    /// Capacity usable by Pretium at `(e, t)` (total minus high-pri, scaled
    /// by the fault health factor), ignoring reservations — the `c_{e,t}`
    /// of the scheduling LPs.
    pub fn sellable_capacity(&self, e: EdgeId, t: Timestep) -> f64 {
        let i = e.index();
        (self.capacity[i] - self.highpri[i][t]).max(0.0) * self.health[i][t]
    }

    /// Reserved volume at `(e, t)`.
    pub fn reserved(&self, e: EdgeId, t: Timestep) -> f64 {
        self.reserved[e.index()][t]
    }

    /// Reserve `amount` on `(e, t)`.
    ///
    /// # Panics
    /// Panics if the reservation exceeds the sellable capacity by more than
    /// a small tolerance (callers must check availability first).
    pub fn reserve(&mut self, e: EdgeId, t: Timestep, amount: f64) {
        assert!(amount >= 0.0, "negative reservation");
        let i = e.index();
        self.reserved[i][t] += amount;
        let cap = self.sellable_capacity(e, t);
        assert!(
            self.reserved[i][t] <= cap * (1.0 + RESERVE_REL_TOL) + 1e-9,
            "overbooked {e} at t={t}: reserved {} > sellable {cap}",
            self.reserved[i][t]
        );
    }

    /// Release a previous reservation (used when SAM re-plans).
    pub fn release(&mut self, e: EdgeId, t: Timestep, amount: f64) {
        assert!(amount >= 0.0, "negative release");
        let i = e.index();
        self.reserved[i][t] = (self.reserved[i][t] - amount).max(0.0);
    }

    /// Clear all reservations at timesteps `>= from` (SAM rebuilds them).
    pub fn clear_reservations_from(&mut self, from: Timestep) {
        for series in &mut self.reserved {
            for v in series.iter_mut().skip(from) {
                *v = 0.0;
            }
        }
    }

    /// Marginal price of the *next* unit on `(e, t)` given current
    /// reservations: the base price, bumped if utilization of the sellable
    /// capacity has crossed the bump threshold.
    pub fn marginal_price(&self, e: EdgeId, t: Timestep) -> f64 {
        let base = self.price(e, t);
        let cap = self.sellable_capacity(e, t);
        if cap <= 0.0 {
            return base * self.bump.factor;
        }
        let fill = self.reserved[e.index()][t] / cap;
        if fill >= self.bump.threshold {
            base * self.bump.factor
        } else {
            base
        }
    }

    /// Units still sellable at the *current* marginal price of `(e, t)`
    /// before the price changes (segment boundary or exhaustion).
    pub fn available_at_marginal(&self, e: EdgeId, t: Timestep) -> f64 {
        let cap = self.sellable_capacity(e, t);
        let used = self.reserved[e.index()][t];
        let boundary = cap * self.bump.threshold;
        if used < boundary {
            boundary - used
        } else {
            (cap - used).max(0.0)
        }
    }

    /// Update the high-pri set-aside at `(e, t)` (fault injection and
    /// high-pri volume surprises, §4.4).
    pub fn set_highpri(&mut self, e: EdgeId, t: Timestep, amount: f64) {
        assert!(amount >= 0.0 && amount <= self.capacity[e.index()] + 1e-9);
        self.highpri[e.index()][t] = amount;
    }

    /// High-pri set-aside at `(e, t)`.
    pub fn highpri(&self, e: EdgeId, t: Timestep) -> f64 {
        self.highpri[e.index()][t]
    }

    /// Set the surviving-capacity fraction of `(e, t)` (§4.4 faults):
    /// `0.0` = link down, `1.0` = fully recovered.
    pub fn set_health(&mut self, e: EdgeId, t: Timestep, h: f64) {
        assert!((0.0..=1.0).contains(&h), "health must be in [0, 1]");
        self.health[e.index()][t] = h;
    }

    /// Surviving-capacity fraction of `(e, t)`.
    pub fn health(&self, e: EdgeId, t: Timestep) -> f64 {
        self.health[e.index()][t]
    }

    /// True when any link is degraded at `t` (health below 1).
    pub fn faulted_at(&self, t: Timestep) -> bool {
        self.health.iter().any(|series| series[t] < 1.0)
    }

    /// Price series of one edge (for Figure 7a).
    pub fn price_series(&self, e: EdgeId) -> &[f64] {
        &self.prices[e.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pretium_net::{topology, TimeGrid};

    fn state() -> (pretium_net::Network, NetworkState) {
        let net = topology::default_eval(3);
        let grid = TimeGrid::coarse_default();
        let st = NetworkState::new(&net, grid, 96, 0.1, PriceBump::default(), |_| 1.0);
        (net, st)
    }

    #[test]
    fn availability_accounts_for_highpri() {
        let (net, st) = state();
        let e = net.edge_ids().next().unwrap();
        let cap = net.edge(e).capacity;
        assert!((st.available(e, 0) - cap * 0.9).abs() < 1e-9);
        assert!((st.sellable_capacity(e, 0) - cap * 0.9).abs() < 1e-9);
    }

    #[test]
    fn reserve_and_release_roundtrip() {
        let (net, mut st) = state();
        let e = net.edge_ids().next().unwrap();
        let avail = st.available(e, 5);
        st.reserve(e, 5, 3.0);
        assert!((st.available(e, 5) - (avail - 3.0)).abs() < 1e-9);
        st.release(e, 5, 3.0);
        assert!((st.available(e, 5) - avail).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "overbooked")]
    fn overbooking_panics() {
        let (net, mut st) = state();
        let e = net.edge_ids().next().unwrap();
        st.reserve(e, 0, st.sellable_capacity(e, 0) * 1.5);
    }

    #[test]
    fn bump_applies_past_threshold() {
        let (net, mut st) = state();
        let e = net.edge_ids().next().unwrap();
        st.set_price(e, 2, 1.5);
        assert_eq!(st.marginal_price(e, 2), 1.5);
        // Fill beyond 80%.
        let cap = st.sellable_capacity(e, 2);
        st.reserve(e, 2, cap * 0.85);
        assert_eq!(st.marginal_price(e, 2), 3.0);
    }

    #[test]
    fn available_at_marginal_tracks_segments() {
        let (net, mut st) = state();
        let e = net.edge_ids().next().unwrap();
        let cap = st.sellable_capacity(e, 0);
        assert!((st.available_at_marginal(e, 0) - cap * 0.8).abs() < 1e-9);
        st.reserve(e, 0, cap * 0.8);
        assert!((st.available_at_marginal(e, 0) - cap * 0.2).abs() < 1e-9);
        st.reserve(e, 0, cap * 0.2);
        assert_eq!(st.available_at_marginal(e, 0), 0.0);
    }

    #[test]
    fn clear_reservations_from_cutoff() {
        let (net, mut st) = state();
        let e = net.edge_ids().next().unwrap();
        st.reserve(e, 3, 1.0);
        st.reserve(e, 8, 1.0);
        st.clear_reservations_from(5);
        assert_eq!(st.reserved(e, 3), 1.0);
        assert_eq!(st.reserved(e, 8), 0.0);
    }

    #[test]
    fn health_scales_sellable_capacity_and_availability() {
        let (net, mut st) = state();
        let e = net.edge_ids().next().unwrap();
        let healthy = st.sellable_capacity(e, 4);
        assert!(!st.faulted_at(4));
        st.set_health(e, 4, 0.25);
        assert!(st.faulted_at(4));
        assert!((st.sellable_capacity(e, 4) - healthy * 0.25).abs() < 1e-9);
        assert!((st.available(e, 4) - healthy * 0.25).abs() < 1e-9);
        st.set_health(e, 4, 1.0);
        assert!((st.sellable_capacity(e, 4) - healthy).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "overbooked")]
    fn reserve_respects_degraded_capacity() {
        let (net, mut st) = state();
        let e = net.edge_ids().next().unwrap();
        let cap = st.sellable_capacity(e, 0);
        st.set_health(e, 0, 0.5);
        // Would fit the healthy link, but not the degraded one.
        st.reserve(e, 0, cap * 0.8);
    }

    #[test]
    fn disabled_bump_never_raises() {
        let (net, mut st) = state();
        st.bump = PriceBump::disabled();
        let e = net.edge_ids().next().unwrap();
        let cap = st.sellable_capacity(e, 0);
        st.reserve(e, 0, cap * 0.99);
        assert_eq!(st.marginal_price(e, 0), st.price(e, 0));
    }
}
