//! FTRAN/BTRAN solve kernels over the sparse LU factors.
//!
//! The factored basis is `P·B·Q = L·R₁·R₂·…·R_K·U` where `P`/`Q` are the
//! row/position-to-slot permutations, `L` is unit lower triangular in
//! slot order (static between refactorizations), each `R_k` is a
//! Forrest–Tomlin *row eta* `I + Σ_j r_j·e_t·e_{k_j}ᵀ`, and `U` is upper
//! triangular with respect to the *current* pivot order `perm` (rotated
//! by every update). Both kernels work in slot space on the reusable
//! `z` buffer, which is fully overwritten on every call — steady-state
//! solves perform no allocation.

use super::Factorization;

/// One Forrest–Tomlin update: the row of `U` at `slot` (rotated to the
/// end of the pivot order) was eliminated against the listed pivots.
#[derive(Debug, Clone)]
pub(super) struct RowEta {
    /// Slot whose row was eliminated.
    pub slot: u32,
    /// `(slot, multiplier)` elimination terms, in pivot order.
    pub terms: Vec<(u32, f64)>,
}

/// Solve `B·w = a` with a dense right-hand side in original row
/// coordinates; `out` is dense, indexed by basis position.
///
/// Applies `B⁻¹ = U⁻¹·R_K⁻¹·…·R₁⁻¹·L⁻¹` left to right.
pub(super) fn ftran_dense(f: &mut Factorization, a: &[f64], out: &mut Vec<f64>) {
    let m = f.m;
    let mut z = std::mem::take(&mut f.z);
    z.resize(m, 0.0);
    for (s, zs) in z.iter_mut().enumerate() {
        *zs = a[f.row_of_slot[s] as usize];
    }
    // L forward (unit diagonal), slots in elimination order.
    for k in 0..m {
        let zk = z[k];
        if zk != 0.0 {
            for &(s, l) in &f.lcols[k] {
                z[s as usize] -= l * zk;
            }
        }
    }
    // Row etas, oldest first: R⁻¹ = I − Σ r·e_t·e_kᵀ.
    for e in &f.etas {
        let mut acc = z[e.slot as usize];
        for &(k, r) in &e.terms {
            acc -= r * z[k as usize];
        }
        z[e.slot as usize] = acc;
    }
    // U backward, column-oriented over the current pivot order.
    for i in (0..m).rev() {
        let s = f.perm[i] as usize;
        let x = z[s] / f.udiag[s];
        z[s] = x;
        if x != 0.0 {
            for &(j, u) in &f.ucols[s] {
                z[j as usize] -= u * x;
            }
        }
    }
    out.clear();
    out.resize(m, 0.0);
    for (s, &zs) in z.iter().enumerate() {
        out[f.pos_of_slot[s] as usize] = zs;
    }
    f.z = z;
}

/// Solve `yᵀ·B = cᵀ` where `c` is dense, indexed by basis position; `out`
/// is dense, indexed by original row.
///
/// Applies `B⁻ᵀ = L⁻ᵀ·R₁⁻ᵀ·…·R_K⁻ᵀ·U⁻ᵀ` — the same factors transposed,
/// in the opposite order.
pub(super) fn btran(f: &mut Factorization, c: &[f64], out: &mut Vec<f64>) {
    let m = f.m;
    let mut z = std::mem::take(&mut f.z);
    z.resize(m, 0.0);
    for (s, zs) in z.iter_mut().enumerate() {
        *zs = c[f.pos_of_slot[s] as usize];
    }
    // Uᵀ forward in pivot order: the column list of slot s is exactly row
    // s of the transpose.
    for i in 0..m {
        let s = f.perm[i] as usize;
        let mut acc = z[s];
        for &(j, u) in &f.ucols[s] {
            acc -= u * z[j as usize];
        }
        z[s] = acc / f.udiag[s];
    }
    // Row-eta transposes, newest first: R⁻ᵀ = I − Σ r·e_k·e_tᵀ.
    for e in f.etas.iter().rev() {
        let zt = z[e.slot as usize];
        if zt != 0.0 {
            for &(k, r) in &e.terms {
                z[k as usize] -= r * zt;
            }
        }
    }
    // Lᵀ backward, dot-product form.
    for k in (0..m).rev() {
        let mut acc = z[k];
        for &(s, l) in &f.lcols[k] {
            acc -= l * z[s as usize];
        }
        z[k] = acc;
    }
    out.clear();
    out.resize(m, 0.0);
    for (s, &zs) in z.iter().enumerate() {
        out[f.row_of_slot[s] as usize] = zs;
    }
    f.z = z;
}
