//! Synthetic traffic-matrix time series.
//!
//! The paper replays a month-long NetFlow trace from a production inter-DC
//! WAN; that trace is proprietary, so this module generates a statistical
//! stand-in with the properties the evaluation actually relies on (§2, §6.1
//! and Figure 1):
//!
//! * strong diurnal periodicity with per-pair phase offsets (datacenters in
//!   different time zones peak at different hours);
//! * heavy per-pair heterogeneity (a few elephant pairs dominate — the
//!   paper notes inter-DC traffic multiplexes far fewer flows than the
//!   Internet);
//! * short-term variation: multiplicative noise plus occasional flash
//!   crowds, so the 90th/10th-percentile utilization ratio spread of
//!   Figure 1 is reproduced.

use pretium_net::{Network, NodeId, TimeGrid, Timestep};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::values::lognormal;

/// Parameters of the synthetic trace generator.
#[derive(Debug, Clone)]
pub struct TrafficConfig {
    /// Number of timesteps to generate.
    pub horizon: usize,
    /// Fraction of (src, dst) pairs that exchange traffic at all.
    pub pair_activity: f64,
    /// Mean per-active-pair demand per timestep (volume units).
    pub base_rate: f64,
    /// Lognormal sigma of per-pair base rates (heterogeneity; ~1.0 gives a
    /// heavy-tailed pair-size distribution).
    pub heterogeneity: f64,
    /// Relative amplitude of the diurnal sinusoid in `[0, 1)`.
    pub diurnal_amplitude: f64,
    /// Multiplicative noise sigma per (pair, timestep).
    pub noise: f64,
    /// Expected number of flash crowds per pair per window.
    pub flash_crowd_rate: f64,
    /// Demand multiplier during a flash crowd.
    pub flash_crowd_magnitude: f64,
    /// Flash crowd duration in timesteps.
    pub flash_crowd_duration: usize,
    pub seed: u64,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            horizon: 96,
            pair_activity: 0.25,
            base_rate: 2.0,
            heterogeneity: 1.0,
            diurnal_amplitude: 0.6,
            noise: 0.25,
            flash_crowd_rate: 0.15,
            flash_crowd_magnitude: 4.0,
            flash_crowd_duration: 3,
            seed: 1,
        }
    }
}

/// A demand time series for one (src, dst) pair.
#[derive(Debug, Clone)]
pub struct PairSeries {
    pub src: NodeId,
    pub dst: NodeId,
    /// Demand per timestep.
    pub demand: Vec<f64>,
}

impl PairSeries {
    pub fn total(&self) -> f64 {
        self.demand.iter().sum()
    }
}

/// The full synthetic trace: one series per active pair.
#[derive(Debug, Clone)]
pub struct TrafficTrace {
    pub horizon: usize,
    pub pairs: Vec<PairSeries>,
}

impl TrafficTrace {
    /// Total demand entering the network at timestep `t`.
    pub fn total_at(&self, t: Timestep) -> f64 {
        self.pairs.iter().map(|p| p.demand[t]).sum()
    }

    /// Total demand over the whole trace.
    pub fn total(&self) -> f64 {
        self.pairs.iter().map(|p| p.total()).sum()
    }

    /// Scale every demand by `factor` (the paper's load factor, §6.1).
    pub fn scaled(&self, factor: f64) -> TrafficTrace {
        assert!(factor > 0.0);
        TrafficTrace {
            horizon: self.horizon,
            pairs: self
                .pairs
                .iter()
                .map(|p| PairSeries {
                    src: p.src,
                    dst: p.dst,
                    demand: p.demand.iter().map(|d| d * factor).collect(),
                })
                .collect(),
        }
    }
}

/// Generate a synthetic trace over the node pairs of `net`.
pub fn generate_trace(net: &Network, grid: &TimeGrid, cfg: &TrafficConfig) -> TrafficTrace {
    assert!(cfg.horizon > 0, "horizon must be positive");
    assert!((0.0..1.0).contains(&cfg.diurnal_amplitude), "amplitude must be in [0, 1)");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut pairs = Vec::new();
    let nodes: Vec<NodeId> = net.node_ids().collect();
    for &src in &nodes {
        for &dst in &nodes {
            if src == dst || !rng.gen_bool(cfg.pair_activity.clamp(0.0, 1.0)) {
                continue;
            }
            // Heavy-tailed per-pair scale, normalized so the mean over
            // pairs stays ≈ base_rate: E[lognormal(mu, s)] = exp(mu + s²/2).
            let mu = cfg.base_rate.ln() - cfg.heterogeneity * cfg.heterogeneity / 2.0;
            let scale = lognormal(&mut rng, mu, cfg.heterogeneity);
            let phase: f64 = rng.gen_range(0.0..1.0);
            // Pre-draw flash crowd intervals.
            let windows = cfg.horizon.div_ceil(grid.steps_per_window);
            let mut crowd = vec![1.0f64; cfg.horizon];
            for w in 0..windows {
                if rng.gen_bool((cfg.flash_crowd_rate).clamp(0.0, 1.0)) {
                    let start =
                        grid.window_start(w) + rng.gen_range(0..grid.steps_per_window.max(1));
                    let end = (start + cfg.flash_crowd_duration).min(cfg.horizon);
                    crowd[start..end].fill(cfg.flash_crowd_magnitude);
                }
            }
            let demand: Vec<f64> = (0..cfg.horizon)
                .map(|t| {
                    let diurnal = 1.0
                        + cfg.diurnal_amplitude
                            * (2.0 * std::f64::consts::PI * (grid.day_fraction(t) - phase)).sin();
                    let noise = lognormal(&mut rng, -cfg.noise * cfg.noise / 2.0, cfg.noise);
                    (scale * diurnal * noise * crowd[t]).max(0.0)
                })
                .collect();
            pairs.push(PairSeries { src, dst, demand });
        }
    }
    TrafficTrace { horizon: cfg.horizon, pairs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pretium_net::topology;

    fn setup() -> (Network, TimeGrid) {
        (topology::default_eval(3), TimeGrid::coarse_default())
    }

    #[test]
    fn trace_has_requested_horizon_and_activity() {
        let (net, grid) = setup();
        let cfg = TrafficConfig { horizon: 96, ..Default::default() };
        let trace = generate_trace(&net, &grid, &cfg);
        assert!(!trace.pairs.is_empty());
        for p in &trace.pairs {
            assert_eq!(p.demand.len(), 96);
            assert!(p.demand.iter().all(|&d| d >= 0.0 && d.is_finite()));
        }
        let n = net.num_nodes();
        let max_pairs = n * (n - 1);
        let frac = trace.pairs.len() as f64 / max_pairs as f64;
        assert!((frac - 0.25).abs() < 0.15, "activity fraction {frac}");
    }

    #[test]
    fn deterministic_per_seed() {
        let (net, grid) = setup();
        let cfg = TrafficConfig::default();
        let a = generate_trace(&net, &grid, &cfg);
        let b = generate_trace(&net, &grid, &cfg);
        assert_eq!(a.pairs.len(), b.pairs.len());
        assert!((a.total() - b.total()).abs() < 1e-9);
    }

    #[test]
    fn diurnal_pattern_visible() {
        // With zero noise and no flash crowds, each pair's series must have
        // a clear min/max spread matching the amplitude.
        let (net, grid) = setup();
        let cfg = TrafficConfig {
            horizon: 48,
            noise: 0.0,
            flash_crowd_rate: 0.0,
            diurnal_amplitude: 0.5,
            heterogeneity: 0.0,
            ..Default::default()
        };
        let trace = generate_trace(&net, &grid, &cfg);
        for p in &trace.pairs {
            let max = p.demand.iter().cloned().fold(f64::MIN, f64::max);
            let min = p.demand.iter().cloned().fold(f64::MAX, f64::min);
            let ratio = max / min;
            assert!(ratio > 2.0 && ratio < 4.0, "ratio {ratio}"); // 1.5/0.5 = 3±discretization
        }
    }

    #[test]
    fn flash_crowds_create_spikes() {
        let (net, grid) = setup();
        let base = TrafficConfig {
            horizon: 96,
            noise: 0.0,
            heterogeneity: 0.0,
            diurnal_amplitude: 0.0,
            flash_crowd_rate: 0.9,
            flash_crowd_magnitude: 10.0,
            ..Default::default()
        };
        let trace = generate_trace(&net, &grid, &base);
        let spiked = trace
            .pairs
            .iter()
            .filter(|p| {
                let max = p.demand.iter().cloned().fold(f64::MIN, f64::max);
                let median = {
                    let mut v = p.demand.clone();
                    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
                    v[v.len() / 2]
                };
                max > 5.0 * median
            })
            .count();
        assert!(spiked * 2 > trace.pairs.len(), "{spiked}/{} pairs spiked", trace.pairs.len());
    }

    #[test]
    fn scaling_multiplies_total() {
        let (net, grid) = setup();
        let trace = generate_trace(&net, &grid, &TrafficConfig::default());
        let scaled = trace.scaled(2.5);
        assert!((scaled.total() - 2.5 * trace.total()).abs() < 1e-6 * trace.total());
    }

    #[test]
    fn mean_rate_tracks_base_rate() {
        let (net, grid) = setup();
        let cfg = TrafficConfig {
            horizon: 480,
            base_rate: 3.0,
            flash_crowd_rate: 0.0,
            seed: 11,
            ..Default::default()
        };
        let trace = generate_trace(&net, &grid, &cfg);
        let per_pair_step = trace.total() / (trace.pairs.len() * cfg.horizon) as f64;
        // Lognormal heterogeneity across ~60 pairs: loose bounds.
        assert!(per_pair_step > 1.0 && per_pair_step < 9.0, "per-pair-step {per_pair_step}");
    }
}
