//! Pricing-strategy comparison on SAM-shaped LPs: Dantzig full rescan vs
//! Devex (incremental reduced costs) vs the default partial Devex with a
//! cyclic candidate list, on cold solves of three schedule-shaped models
//! up to the size a SAM window re-optimization reaches.
//!
//! Reports wall-clock, simplex iterations, and pricing-scan work per
//! strategy, prints the headline `wall` / `iterations` ratios on the
//! largest model, and writes `BENCH_lp_pricing.json` at the workspace
//! root. Target from the pricing redesign: partial Devex >= 1.5x
//! wall-clock or >= 2x fewer iterations than Dantzig on the large model.
//!
//! Set `LP_PRICING_SMOKE=1` for the CI smoke mode: tiny sizes, few
//! samples, an iteration-count regression assertion, and no JSON (so a
//! smoke run never clobbers recorded numbers).

use pretium_bench::{black_box, Harness};
use pretium_lp::{
    Cmp, LinExpr, Model, Pricing, Sense, SimplexOptions, SolveOptions, SolverSession,
};

/// Deterministic xorshift64* stream in `[0, 1)` (no registry access, so
/// the workspace carries its own tiny generator).
struct Gen(u64);

impl Gen {
    fn new(seed: u64) -> Self {
        Gen(seed.wrapping_mul(0x9E3779B97F4A7C15) | 1)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64)
    }

    fn index(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

const STRATEGIES: [(Pricing, &str); 3] = [
    (Pricing::Dantzig, "dantzig"),
    (Pricing::Devex, "devex"),
    (Pricing::PartialDevex, "partial_devex"),
];

fn opts_for(pricing: Pricing) -> SolveOptions {
    SolveOptions {
        simplex: Some(SimplexOptions { pricing, ..SimplexOptions::default() }),
        ..SolveOptions::default()
    }
}

/// One size class of the schedule-shaped family SAM produces:
/// per-(job, path, timestep) flow variables, per-(link, step) capacity
/// rows over overlapping path supports, a demand cap per job, and a
/// guarantee floor softened by a penalized shortfall variable.
fn schedule_lp(jobs: usize, paths: usize, steps: usize, links: usize, seed: u64) -> Model {
    let mut g = Gen::new(seed);
    let mut m = Model::new(Sense::Maximize);
    let mut x = vec![vec![Vec::with_capacity(steps); paths]; jobs];
    let weights: Vec<f64> = (0..jobs).map(|_| g.range(0.5, 3.0)).collect();
    for (j, wj) in weights.iter().enumerate() {
        for (p, xp) in x[j].iter_mut().enumerate() {
            let cost = g.range(0.0, 0.4);
            for t in 0..steps {
                xp.push(m.add_var(&format!("x_{j}_{p}_{t}"), 0.0, f64::INFINITY, wj - cost));
            }
        }
    }
    let mut crossing = vec![vec![Vec::new(); steps]; links];
    for (j, xj) in x.iter().enumerate() {
        for (p, xp) in xj.iter().enumerate() {
            let l1 = (j + p) % links;
            let l2 = (j + p + 1 + g.index(links - 1)) % links;
            for (t, &v) in xp.iter().enumerate() {
                crossing[l1][t].push(v);
                if l2 != l1 {
                    crossing[l2][t].push(v);
                }
            }
        }
    }
    for (l, per_step) in crossing.iter().enumerate() {
        for (t, vars) in per_step.iter().enumerate() {
            if vars.is_empty() {
                continue;
            }
            let mut e = LinExpr::new();
            for &v in vars {
                e.add_term(1.0, v);
            }
            m.add_row(&format!("cap_{l}_{t}"), e, Cmp::Le, g.range(1.0, 6.0));
        }
    }
    for (j, xj) in x.iter().enumerate() {
        let mut total = LinExpr::new();
        for xp in xj {
            for &v in xp {
                total.add_term(1.0, v);
            }
        }
        let demand = g.range(2.0, 8.0);
        m.add_row(&format!("dem_{j}"), total.clone(), Cmp::Le, demand);
        let s = m.add_var(&format!("short_{j}"), 0.0, f64::INFINITY, -10.0 * weights[j]);
        total.add_term(1.0, s);
        m.add_row(&format!("guar_{j}"), total, Cmp::Ge, demand * g.range(0.2, 0.8));
    }
    m
}

struct Record {
    model: &'static str,
    strategy: &'static str,
    vars: usize,
    rows: usize,
    iterations: u64,
    pricing_scans: u64,
    wall_secs: f64,
}

fn main() {
    let smoke = std::env::var_os("LP_PRICING_SMOKE").is_some();
    // (name, jobs, paths, steps, links): the large point matches a SAM
    // window re-optimization at evaluation scale (~60 active jobs, 3
    // paths each, a 16-step horizon).
    let sizes: &[(&str, usize, usize, usize, usize)] = if smoke {
        &[("smoke", 6, 2, 4, 4)]
    } else {
        &[("small", 8, 2, 8, 6), ("medium", 24, 3, 12, 10), ("large", 60, 3, 16, 14)]
    };
    let mut h = Harness::new().sample_size(if smoke { 3 } else { 10 });
    let mut records: Vec<Record> = Vec::new();

    for &(name, jobs, paths, steps, links) in sizes {
        let m = schedule_lp(jobs, paths, steps, links, 0xA11CE);
        let mut objectives = Vec::new();
        for (pricing, pname) in STRATEGIES {
            // Counters come from one deterministic cold solve; wall-clock
            // from the harness over the same solve.
            let sol = SolverSession::new(m.clone())
                .solve(&opts_for(pricing))
                .unwrap_or_else(|e| panic!("{name}/{pname}: {e}"));
            objectives.push(sol.objective());
            let bench_name = format!("lp_pricing/{name}/{pname}");
            h.bench_function(&bench_name, |b| {
                b.iter(|| {
                    let mut sess = SolverSession::new(m.clone());
                    black_box(sess.solve(&opts_for(pricing)).unwrap().objective())
                });
            });
            let wall = h.get(&bench_name).map(|r| r.median().as_secs_f64()).unwrap_or(0.0);
            records.push(Record {
                model: name,
                strategy: pname,
                vars: m.num_vars(),
                rows: m.num_rows(),
                iterations: sol.iterations(),
                pricing_scans: sol.pricing_scans(),
                wall_secs: wall,
            });
        }
        // All strategies must land on the same optimum — a bench that
        // compares speeds of different answers measures nothing.
        let base = objectives[0];
        for (&obj, (_, pname)) in objectives.iter().zip(STRATEGIES.iter()).skip(1) {
            assert!(
                (obj - base).abs() <= 1e-6 * (1.0 + base.abs()),
                "{name}: {pname} found {obj}, dantzig found {base}"
            );
        }
    }

    // Headline: partial Devex vs Dantzig on the largest model.
    let largest = sizes.last().unwrap().0;
    let pick = |strategy: &str| {
        records
            .iter()
            .find(|r| r.model == largest && r.strategy == strategy)
            .expect("record exists")
    };
    let dantzig = pick("dantzig");
    let partial = pick("partial_devex");
    let wall_ratio = dantzig.wall_secs / partial.wall_secs.max(1e-12);
    let iter_ratio = dantzig.iterations as f64 / partial.iterations.max(1) as f64;
    let scan_ratio = dantzig.pricing_scans as f64 / partial.pricing_scans.max(1) as f64;
    println!(
        "lp_pricing {largest}: partial_devex vs dantzig -> {wall_ratio:.2}x wall, \
         {iter_ratio:.2}x iterations, {scan_ratio:.2}x pricing scans"
    );
    println!("BENCH\tlp_pricing_wall_ratio\t{wall_ratio:.3}");
    println!("BENCH\tlp_pricing_iteration_ratio\t{iter_ratio:.3}");

    if smoke {
        // Regression guard for CI: the smoke model is fixed and the solver
        // deterministic, so iteration counts only move when the algorithm
        // does. Bounds carry ~2x headroom over the recorded counts.
        for r in &records {
            let cap = match r.strategy {
                "dantzig" => 200,
                _ => 250,
            };
            assert!(
                r.iterations <= cap,
                "{}/{}: {} iterations exceeds regression cap {}",
                r.model,
                r.strategy,
                r.iterations,
                cap
            );
        }
        println!("lp_pricing smoke: iteration caps hold");
        return;
    }

    // Hand-formatted JSON (the workspace builds offline, without serde).
    let mut rows = String::new();
    for (i, r) in records.iter().enumerate() {
        let sep = if i + 1 == records.len() { "" } else { "," };
        rows.push_str(&format!(
            "    {{ \"model\": \"{}\", \"strategy\": \"{}\", \"vars\": {}, \"rows\": {}, \
             \"iterations\": {}, \"pricing_scans\": {}, \"wall_secs\": {:.6} }}{sep}\n",
            r.model, r.strategy, r.vars, r.rows, r.iterations, r.pricing_scans, r.wall_secs
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"lp_pricing\",\n  \"largest_model\": \"{largest}\",\n  \
         \"wall_ratio_dantzig_over_partial\": {wall_ratio:.3},\n  \
         \"iteration_ratio_dantzig_over_partial\": {iter_ratio:.3},\n  \
         \"scan_ratio_dantzig_over_partial\": {scan_ratio:.3},\n  \"results\": [\n{rows}  ]\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_lp_pricing.json");
    std::fs::write(path, json).expect("write BENCH_lp_pricing.json");
    println!("wrote {path}");
}
