//! Deterministic parallel pricing: wall-clock across `pricing_jobs` on
//! colgen-scale schedule-shaped LPs, plus the per-phase pricing wall split
//! (serial-path vs fanned-out invocations) the solver now records.
//!
//! The contract under measurement is DESIGN.md §19: candidate scoring
//! fans out over fixed, size-derived sections reduced in section order,
//! so every job count must produce bitwise the same solve — the bench
//! asserts that before it reports a single number. Target on multi-core
//! hardware: >= 2x pricing-phase speedup at 4 workers on the large model.
//! On the 1-core container that records the honest numbers below, expect
//! <= 1.0x (the fan-out only adds scheduling overhead when every section
//! runs on the same core) — the recorded JSON documents the machine's
//! core count so the numbers read in context.
//!
//! Set `PRICING_PAR_SMOKE=1` for the CI smoke mode: one small model, a
//! bit-identity assertion across jobs in {1, 2, 4}, and a jobs=1 overhead
//! guard. The pre-change serial pricing loops are preserved verbatim as
//! the `jobs <= 1` branch — the only addition on that path is two
//! wall-clock stamps per pricing invocation — so the guard measures the
//! serial solve twice and requires the two medians to agree within 5%:
//! any systematic overhead beyond measurement noise would break it. No
//! JSON is written in smoke mode (a smoke run never clobbers recorded
//! numbers).

use pretium_bench::{black_box, Harness};
use pretium_lp::{
    Cmp, LinExpr, Model, Sense, SimplexOptions, SolveOptions, SolverSession, SolverTuning,
};

/// Deterministic xorshift64* stream in `[0, 1)`.
struct Gen(u64);

impl Gen {
    fn new(seed: u64) -> Self {
        Gen(seed.wrapping_mul(0x9E3779B97F4A7C15) | 1)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64)
    }

    fn index(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

const JOB_COUNTS: [usize; 3] = [1, 2, 4];

fn opts_for(pricing_jobs: usize) -> SolveOptions {
    SolveOptions {
        simplex: Some(SimplexOptions::default()),
        tuning: SolverTuning { pricing_jobs, ..SolverTuning::default() },
        ..SolveOptions::default()
    }
}

/// The schedule-shaped family at the width column generation reaches once
/// the restricted master has priced its universe in: per-(job, path,
/// timestep) flow variables, overlapping capacity rows, demand caps, and
/// softened guarantee floors.
fn schedule_lp(jobs: usize, paths: usize, steps: usize, links: usize, seed: u64) -> Model {
    let mut g = Gen::new(seed);
    let mut m = Model::new(Sense::Maximize);
    let mut x = vec![vec![Vec::with_capacity(steps); paths]; jobs];
    let weights: Vec<f64> = (0..jobs).map(|_| g.range(0.5, 3.0)).collect();
    for (j, wj) in weights.iter().enumerate() {
        for (p, xp) in x[j].iter_mut().enumerate() {
            let cost = g.range(0.0, 0.4);
            for t in 0..steps {
                xp.push(m.add_var(&format!("x_{j}_{p}_{t}"), 0.0, f64::INFINITY, wj - cost));
            }
        }
    }
    let mut crossing = vec![vec![Vec::new(); steps]; links];
    for (j, xj) in x.iter().enumerate() {
        for (p, xp) in xj.iter().enumerate() {
            let l1 = (j + p) % links;
            let l2 = (j + p + 1 + g.index(links - 1)) % links;
            for (t, &v) in xp.iter().enumerate() {
                crossing[l1][t].push(v);
                if l2 != l1 {
                    crossing[l2][t].push(v);
                }
            }
        }
    }
    for (l, per_step) in crossing.iter().enumerate() {
        for (t, vars) in per_step.iter().enumerate() {
            if vars.is_empty() {
                continue;
            }
            let mut e = LinExpr::new();
            for &v in vars {
                e.add_term(1.0, v);
            }
            m.add_row(&format!("cap_{l}_{t}"), e, Cmp::Le, g.range(1.0, 6.0));
        }
    }
    for (j, xj) in x.iter().enumerate() {
        let mut total = LinExpr::new();
        for xp in xj {
            for &v in xp {
                total.add_term(1.0, v);
            }
        }
        let demand = g.range(2.0, 8.0);
        m.add_row(&format!("dem_{j}"), total.clone(), Cmp::Le, demand);
        let s = m.add_var(&format!("short_{j}"), 0.0, f64::INFINITY, -10.0 * weights[j]);
        total.add_term(1.0, s);
        m.add_row(&format!("guar_{j}"), total, Cmp::Ge, demand * g.range(0.2, 0.8));
    }
    m
}

struct Record {
    model: &'static str,
    jobs: usize,
    vars: usize,
    rows: usize,
    iterations: u64,
    par_sections: u64,
    par_steals: u64,
    wall_secs: f64,
    pricing_serial_secs: f64,
    pricing_par_secs: f64,
}

fn main() {
    let smoke = std::env::var_os("PRICING_PAR_SMOKE").is_some();
    // (name, jobs, paths, steps, links). The non-smoke sizes match the
    // colgen bench's restricted-master widths; the smoke model is the
    // smallest that still exceeds the sectioning minimum (so the fan-out
    // genuinely engages rather than short-circuiting to serial).
    let sizes: &[(&str, usize, usize, usize, usize)] = if smoke {
        &[("smoke", 24, 3, 7, 8)]
    } else {
        &[("medium", 24, 3, 12, 10), ("large", 60, 3, 16, 14)]
    };
    let mut h = Harness::new().sample_size(if smoke { 5 } else { 10 });
    let mut records: Vec<Record> = Vec::new();

    for &(name, jobs, paths, steps, links) in sizes {
        let m = schedule_lp(jobs, paths, steps, links, 0xA11CE);
        // Bit-identity gate: every job count must reproduce the serial
        // solve exactly — objective, primal values, and duals to the bit.
        // A bench that compares speeds of different answers measures
        // nothing, and for this layer "different" is a correctness bug.
        let reference = SolverSession::new(m.clone()).solve(&opts_for(1)).expect("serial solve");
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
        assert_eq!(reference.pricing_par_sections(), 0, "jobs=1 must take the serial path");
        for &pj in &JOB_COUNTS[1..] {
            let sol = SolverSession::new(m.clone())
                .solve(&opts_for(pj))
                .unwrap_or_else(|e| panic!("{name}/jobs={pj}: {e}"));
            assert_eq!(
                reference.objective().to_bits(),
                sol.objective().to_bits(),
                "{name}: objective diverged at pricing_jobs={pj}"
            );
            assert_eq!(
                bits(reference.values()),
                bits(sol.values()),
                "{name}: values diverged at pricing_jobs={pj}"
            );
            assert_eq!(
                bits(reference.duals()),
                bits(sol.duals()),
                "{name}: duals diverged at pricing_jobs={pj}"
            );
            assert!(
                sol.pricing_par_sections() > 0,
                "{name}: pricing_jobs={pj} never fanned out (model too narrow?)"
            );
        }

        for &pj in &JOB_COUNTS {
            let sol = SolverSession::new(m.clone()).solve(&opts_for(pj)).expect("counter solve");
            let bench_name = format!("parallel_pricing/{name}/jobs{pj}");
            h.bench_function(&bench_name, |b| {
                b.iter(|| {
                    let mut sess = SolverSession::new(m.clone());
                    black_box(sess.solve(&opts_for(pj)).unwrap().objective())
                });
            });
            let wall = h.get(&bench_name).map(|r| r.median().as_secs_f64()).unwrap_or(0.0);
            records.push(Record {
                model: name,
                jobs: pj,
                vars: m.num_vars(),
                rows: m.num_rows(),
                iterations: sol.iterations(),
                par_sections: sol.pricing_par_sections(),
                par_steals: sol.pricing_par_steals(),
                wall_secs: wall,
                pricing_serial_secs: sol.pricing_serial_nanos() as f64 / 1e9,
                pricing_par_secs: sol.pricing_par_nanos() as f64 / 1e9,
            });
        }
    }

    // Headline: jobs=1 vs jobs=4 on the largest model (full-solve wall and
    // the pricing-phase wall the counters isolate).
    let largest = sizes.last().unwrap().0;
    let pick = |pj: usize| {
        records.iter().find(|r| r.model == largest && r.jobs == pj).expect("record exists")
    };
    let (serial, par4) = (pick(1), pick(4));
    let wall_speedup = serial.wall_secs / par4.wall_secs.max(1e-12);
    let serial_pricing = serial.pricing_serial_secs + serial.pricing_par_secs;
    let par4_pricing = par4.pricing_serial_secs + par4.pricing_par_secs;
    let pricing_speedup = serial_pricing / par4_pricing.max(1e-12);
    println!(
        "parallel_pricing {largest}: jobs=4 vs jobs=1 -> {wall_speedup:.2}x wall, \
         {pricing_speedup:.2}x pricing phase ({} sections, {} steals at jobs=4; \
         target >= 2x pricing on multi-core, <= 1.0x expected on 1 core)",
        par4.par_sections, par4.par_steals
    );
    println!("BENCH\tparallel_pricing_wall_speedup\t{wall_speedup:.3}");
    println!("BENCH\tparallel_pricing_phase_speedup\t{pricing_speedup:.3}");

    if smoke {
        // Overhead guard: the serial branch is the pre-change pricing loop
        // verbatim (its only addition is two wall-clock stamps per pricing
        // invocation), so two independent measurements of the jobs=1 solve
        // must agree within 5% — systematic overhead beyond noise breaks
        // this. Compare per-sample minima, not medians: scheduler noise
        // only ever adds time, so the minimum is the robust estimator on
        // a loaded CI core.
        let m = schedule_lp(sizes[0].1, sizes[0].2, sizes[0].3, sizes[0].4, 0xA11CE);
        let mut ho = Harness::new().sample_size(11);
        for pass in ["a", "b"] {
            let bench_name = format!("parallel_pricing/overhead/{pass}");
            ho.bench_function(&bench_name, |b| {
                b.iter(|| {
                    let mut sess = SolverSession::new(m.clone());
                    black_box(sess.solve(&opts_for(1)).unwrap().objective())
                });
            });
        }
        let wall = |pass: &str| {
            ho.get(&format!("parallel_pricing/overhead/{pass}"))
                .map(|r| r.samples.iter().min().expect("samples").as_secs_f64())
                .expect("overhead record")
        };
        let (a, b) = (wall("a"), wall("b"));
        let drift = (a - b).abs() / a.min(b).max(1e-12);
        assert!(
            drift <= 0.05,
            "jobs=1 overhead guard: serial minima drifted {:.1}% (a={a:.6}s, b={b:.6}s)",
            drift * 100.0
        );
        println!(
            "parallel_pricing smoke: bit-identity holds across jobs {:?}, \
             serial overhead drift {:.2}% (cap 5%)",
            JOB_COUNTS,
            drift * 100.0
        );
        return;
    }

    // Hand-formatted JSON (the workspace builds offline, without serde).
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut rows = String::new();
    for (i, r) in records.iter().enumerate() {
        let sep = if i + 1 == records.len() { "" } else { "," };
        rows.push_str(&format!(
            "    {{ \"model\": \"{}\", \"pricing_jobs\": {}, \"vars\": {}, \"rows\": {}, \
             \"iterations\": {}, \"par_sections\": {}, \"par_steals\": {}, \
             \"wall_secs\": {:.6}, \"pricing_serial_secs\": {:.6}, \
             \"pricing_par_secs\": {:.6} }}{sep}\n",
            r.model,
            r.jobs,
            r.vars,
            r.rows,
            r.iterations,
            r.par_sections,
            r.par_steals,
            r.wall_secs,
            r.pricing_serial_secs,
            r.pricing_par_secs
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"parallel_pricing\",\n  \"cores\": {cores},\n  \
         \"largest_model\": \"{largest}\",\n  \
         \"wall_speedup_jobs4_over_jobs1\": {wall_speedup:.3},\n  \
         \"pricing_phase_speedup_jobs4_over_jobs1\": {pricing_speedup:.3},\n  \
         \"target\": \"pricing phase >= 2x at 4 workers on multi-core; <= 1.0x expected on 1 core\",\n  \
         \"results\": [\n{rows}  ]\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_parallel_pricing.json");
    std::fs::write(path, json).expect("write BENCH_parallel_pricing.json");
    println!("wrote {path}");
}
