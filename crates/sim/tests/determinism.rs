//! Determinism contract of the parallel evaluation engine.
//!
//! Cell results are pure functions of the cell spec (config + derived
//! seed); the worker count only changes wall-clock. These tests pin that
//! contract: running the same experiment serially, with `--jobs 1`, and
//! with `--jobs 8` must produce bit-identical outputs.

use pretium_core::{ColumnGen, PretiumConfig};
use pretium_sim::registry::{registry_at, run_experiments, Scale};
use pretium_sim::{
    compare_schemes, compare_schemes_jobs, run_pretium, Comparison, ScenarioConfig, Variant,
};

/// Every float the schemes produce, flattened so `Vec<f64>` equality is a
/// bitwise comparison of the full comparison result.
fn fingerprint(c: &Comparison) -> Vec<f64> {
    let mut fp = Vec::new();
    for o in [&c.opt, &c.pretium.outcome, &c.no_prices, &c.region.outcome, &c.peak.outcome, &c.vcg]
    {
        fp.extend_from_slice(&o.delivered);
        fp.extend_from_slice(&o.payments);
        fp.extend(o.admitted.iter().map(|&a| a as u8 as f64));
        fp.push(c.welfare(o));
    }
    fp.push(c.region.intra_price);
    fp.push(c.region.inter_price);
    fp
}

#[test]
fn compare_schemes_is_bit_identical_across_job_counts() {
    let cfg = ScenarioConfig::tiny(rand::DEFAULT_SEED);
    let serial = compare_schemes(&cfg).expect("serial run");
    let one = compare_schemes_jobs(&cfg, 1).expect("jobs=1 run");
    let eight = compare_schemes_jobs(&cfg, 8).expect("jobs=8 run");
    let want = fingerprint(&serial);
    assert!(!want.is_empty());
    assert_eq!(want, fingerprint(&one), "jobs=1 diverged from serial");
    assert_eq!(want, fingerprint(&eight), "jobs=8 diverged from serial");
}

#[test]
fn registry_experiments_are_bit_identical_across_job_counts() {
    // Two sweep experiments — a relative-welfare figure and the value
    // distribution table — exercised through the same registry path
    // `reproduce` uses, at tiny scale so debug-mode test time stays low.
    let selected: Vec<_> = registry_at(Scale::Tiny)
        .into_iter()
        .filter(|e| e.name() == "fig6" || e.name() == "fig13")
        .collect();
    assert_eq!(selected.len(), 2, "expected both registry experiments");

    let (one, _) = run_experiments(&selected, rand::DEFAULT_SEED, 1).expect("jobs=1 run");
    let (eight, _) = run_experiments(&selected, rand::DEFAULT_SEED, 8).expect("jobs=8 run");
    assert_eq!(one.len(), 2);
    for ((name_a, res_a), (name_b, res_b)) in one.iter().zip(eight.iter()) {
        assert_eq!(name_a, name_b);
        assert_eq!(res_a, res_b, "experiment `{name_a}` diverged between jobs=1 and jobs=8");
        assert_eq!(res_a.render(), res_b.render());
    }
}

#[test]
fn faulted_robustness_cells_are_bit_identical_across_job_counts() {
    // The availability sweep injects faults mid-run (capacity loss, surge
    // admissions, SAM fallback waivers, PC freezes) — every one of those
    // paths must stay a pure function of the cell spec. A serial run and
    // pooled runs at 1 and 8 workers must agree bitwise.
    let selected: Vec<_> =
        registry_at(Scale::Tiny).into_iter().filter(|e| e.name() == "robustness").collect();
    assert_eq!(selected.len(), 1, "robustness experiment registered");
    let exp = &selected[0];

    // Serial: run the cells inline, no worker pool at all.
    let cells = exp.cells(rand::DEFAULT_SEED);
    let serial_outs: Vec<_> = cells.iter().map(|c| exp.run_cell(c).expect("serial cell")).collect();
    let serial = exp.merge(&cells, serial_outs);

    let (one, _) = run_experiments(&selected, rand::DEFAULT_SEED, 1).expect("jobs=1 run");
    let (eight, _) = run_experiments(&selected, rand::DEFAULT_SEED, 8).expect("jobs=8 run");
    assert_eq!(one.len(), 1);
    assert_eq!(one[0].1, serial, "jobs=1 diverged from serial");
    assert_eq!(eight[0].1, serial, "jobs=8 diverged from serial");
    assert_eq!(one[0].1.render(), serial.render());

    // The faulted points must actually differ from the healthy baseline —
    // otherwise this test pins a no-op.
    let series = serial.series().expect("robustness is a figure");
    let welfare = &series[0].points;
    assert!(
        welfare[1..].iter().any(|&(_, y)| (y - 1.0).abs() > 1e-12),
        "fault injection changed nothing: {welfare:?}"
    );
}

/// Evaluation-scale bitwise guard (slow; run with `--ignored --release`).
///
/// This caught a real bug during development: `std`'s per-thread
/// `RandomState` made hash-map iteration order — and through it LP row
/// construction and float accumulation — depend on which worker a cell
/// landed on, producing ULP-level divergence between job counts. All
/// workspace maps on the numeric path now use `rand::DetHashMap`.
#[test]
#[ignore = "evaluation-scale; seconds in release, minutes in debug"]
fn evaluation_scale_fig6_is_bit_identical_across_job_counts() {
    let fig6: Vec<_> =
        registry_at(Scale::Evaluation).into_iter().filter(|e| e.name() == "fig6").collect();
    let (one, _) = run_experiments(&fig6, rand::DEFAULT_SEED, 1).expect("jobs=1 run");
    let (four, _) = run_experiments(&fig6, rand::DEFAULT_SEED, 4).expect("jobs=4 run");
    assert_eq!(one, four);
}

#[test]
fn colgen_runs_are_bit_identical_across_job_counts() {
    // Lazy column generation (DESIGN.md §17) rides inside each SAM solve;
    // the worker count must stay a pure wall-clock knob there too. A full
    // scenario replay with the restricted master at `ra_jobs` 1 and 8 must
    // produce bit-identical deliveries, payments, admissions, and LP
    // counters — and must actually price columns in, or this test pins the
    // full-materialization path under a different flag.
    let sc = ScenarioConfig::tiny(rand::DEFAULT_SEED).build();
    let mk = |ra_jobs: usize| {
        let cfg = PretiumConfig { ra_jobs, colgen: ColumnGen::on(), ..PretiumConfig::default() };
        run_pretium(&sc, cfg, Variant::Full).expect("colgen run")
    };
    let one = mk(1);
    let eight = mk(8);
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
    assert_eq!(
        bits(&one.outcome.delivered),
        bits(&eight.outcome.delivered),
        "deliveries diverged between ra_jobs=1 and ra_jobs=8"
    );
    assert_eq!(bits(&one.outcome.payments), bits(&eight.outcome.payments));
    assert_eq!(one.outcome.admitted, eight.outcome.admitted);
    assert_eq!(one.lp_stats, eight.lp_stats, "LP restart counters diverged");
    assert!(
        one.telemetry().lp_columns_generated > 0,
        "restricted master never priced a column in the tiny scenario"
    );
    assert_eq!(one.telemetry().lp_columns_generated, eight.telemetry().lp_columns_generated);
    assert_eq!(one.telemetry().lp_colgen_rounds, eight.telemetry().lp_colgen_rounds);
}

#[test]
fn parallel_pricing_is_bit_identical_across_job_counts() {
    // The deterministic parallel-pricing layer (DESIGN.md §19) fans the
    // simplex's reprice/Devex/section sweeps AND the colgen oracle's
    // job-block pricing out over the sectioned pool. Unlike `max_etas`,
    // `pricing_jobs` must be a pure wall-clock knob at the bit level:
    // sections are fixed and size-derived, reductions run in section
    // order, so jobs ∈ {1, 2, 8} composed with colgen and the sparse-LU
    // kernel must produce bit-identical deliveries, payments, admissions,
    // and deterministic LP counters.
    //
    // The tiny scenario's restricted masters stay under the 256-column
    // sectioning minimum (the fan-out would short-circuit to serial and
    // the test would pin the serial path three times), so widen it just
    // past that threshold: longer windows and denser demand.
    let mut wide = ScenarioConfig::tiny(rand::DEFAULT_SEED);
    wide.steps_per_window = 16;
    wide.traffic.pair_activity = 0.5;
    wide.requests.requests_per_pair_window = 3.0;
    wide.requests.max_window = 12;
    let sc = wide.build();
    let mk = |pricing_jobs: usize| {
        let cfg =
            PretiumConfig { pricing_jobs, colgen: ColumnGen::on(), ..PretiumConfig::default() };
        run_pretium(&sc, cfg, Variant::Full).expect("parallel-pricing run")
    };
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
    let one = mk(1);
    let two = mk(2);
    let eight = mk(8);
    for (label, run) in [("2", &two), ("8", &eight)] {
        assert_eq!(
            bits(&one.outcome.delivered),
            bits(&run.outcome.delivered),
            "deliveries diverged between pricing_jobs=1 and pricing_jobs={label}"
        );
        assert_eq!(bits(&one.outcome.payments), bits(&run.outcome.payments));
        assert_eq!(one.outcome.admitted, run.outcome.admitted);
    }
    // Deterministic LP counters (iterations, scans, refactors, sections;
    // `SessionStats` equality excludes the timing-dependent steal and
    // wall-clock fields) must agree between the two *parallel* runs: both
    // split identical ranges into identical sections. The serial run
    // spawns no sections, so it is compared on outputs above, not here.
    assert_eq!(two.lp_stats, eight.lp_stats, "LP counters diverged between parallel job counts");
    // The parallel layer must have actually run — sections prove the
    // fan-out happened, or this test pins the serial path three times.
    assert!(
        two.lp_stats.pricing_par_sections > 0,
        "pricing_jobs=2 never fanned out: {:?}",
        two.lp_stats
    );
    assert_eq!(one.lp_stats.pricing_par_sections, 0, "serial run spawned sections");
}

#[test]
fn sparse_lu_cadence_is_deterministic_and_tolerance_bounded() {
    // The sparse-LU kernel's refactor cadence (`max_etas`) changes which
    // floating-point path each solve takes, so two contracts apply:
    //
    // 1. **Within a cadence**: the worker count stays a pure wall-clock
    //    knob — `ra_jobs` 1 vs 8 must agree bitwise, including the new
    //    factorization counters (refactors, FT updates, fill-in nnz).
    // 2. **Across cadences**: objectives are NOT bit-identical (different
    //    roundoff), but every delivered/payment total must agree within
    //    `CADENCE_TOL = 1e-6` relative — the solver certifies optima to
    //    `opt_tol = 1e-8` on O(1)-scaled reduced costs, and tiny-scenario
    //    totals are O(100), so 1e-6 relative bounds the optimum gap with
    //    margin. A violation means a cadence-dependent *logic* change, not
    //    roundoff.
    const CADENCE_TOL: f64 = 1e-6;
    let sc = ScenarioConfig::tiny(rand::DEFAULT_SEED).build();
    let mk = |ra_jobs: usize, max_etas: usize| {
        let cfg = PretiumConfig {
            ra_jobs,
            max_etas,
            colgen: ColumnGen::on(),
            ..PretiumConfig::default()
        };
        run_pretium(&sc, cfg, Variant::Full).expect("sparse-lu run")
    };
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();

    // Contract 1: bitwise across job counts, per cadence.
    let mut per_cadence = Vec::new();
    for &max_etas in &[1usize, 8, 0] {
        let one = mk(1, max_etas);
        let eight = mk(8, max_etas);
        assert_eq!(
            bits(&one.outcome.delivered),
            bits(&eight.outcome.delivered),
            "deliveries diverged across ra_jobs at max_etas={max_etas}"
        );
        assert_eq!(bits(&one.outcome.payments), bits(&eight.outcome.payments));
        assert_eq!(one.outcome.admitted, eight.outcome.admitted);
        assert_eq!(one.lp_stats, eight.lp_stats, "factor counters diverged at {max_etas}");
        per_cadence.push((max_etas, one));
    }

    // The cadences genuinely differ in kernel behavior (else this test
    // pins three identical runs): tighter cadence ⇒ at least as many
    // refactorizations, and the default accumulates real FT updates.
    let stats = |i: usize| per_cadence[i].1.lp_stats;
    assert!(
        stats(0).refactors > stats(2).refactors,
        "max_etas=1 should refactorize more than the default: {:?} vs {:?}",
        stats(0),
        stats(2)
    );
    assert!(stats(2).ft_updates > 0, "default cadence applied no FT updates");
    assert!(stats(2).refactors > 0 && stats(2).factor_nnz >= stats(2).basis_nnz);

    // Contract 2: across cadences, totals agree to CADENCE_TOL relative.
    let (_, base) = &per_cadence[2];
    for (max_etas, run) in &per_cadence[..2] {
        for (d, b) in run.outcome.delivered.iter().zip(&base.outcome.delivered) {
            assert!(
                (d - b).abs() <= CADENCE_TOL * (1.0 + b.abs()),
                "delivery gap {} at max_etas={max_etas}",
                (d - b).abs()
            );
        }
        for (p, b) in run.outcome.payments.iter().zip(&base.outcome.payments) {
            assert!(
                (p - b).abs() <= CADENCE_TOL * (1.0 + b.abs()),
                "payment gap {} at max_etas={max_etas}",
                (p - b).abs()
            );
        }
        assert_eq!(run.outcome.admitted, base.outcome.admitted, "admissions flipped");
    }
}

#[test]
fn reseeding_changes_the_world_but_stays_deterministic() {
    // Guard against the engine accidentally hashing worker identity or
    // completion order into the seed: a different run seed must change
    // results, while the same seed must reproduce them exactly.
    let a = compare_schemes_jobs(&ScenarioConfig::tiny(7), 8).expect("seed 7");
    let b = compare_schemes_jobs(&ScenarioConfig::tiny(7), 8).expect("seed 7 again");
    let c = compare_schemes_jobs(&ScenarioConfig::tiny(11), 8).expect("seed 11");
    assert_eq!(fingerprint(&a), fingerprint(&b));
    assert_ne!(fingerprint(&a), fingerprint(&c));
}
