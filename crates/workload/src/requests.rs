//! Transfer requests and their generation from a traffic trace (§3.1, §6.1).
//!
//! A request asks the WAN to move `demand` units from `src` to `dst`
//! within `[start, deadline]` (timesteps, inclusive). The customer's value
//! per unit (`value`) is private — the provider never sees it; only the
//! oracular baselines and the welfare metric may read it.

use crate::tm::TrafficTrace;
use crate::values::ValueDist;
use pretium_net::{NodeId, TimeGrid, Timestep};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Identifier of a request, dense from 0 in arrival order.
///
/// Wide on purpose: synthetic traffic (fault-injected surges) claims ids
/// above [`u32::MAX`], so organic ids can grow to the paper-scale ~1M-plus
/// range — and far beyond — with no risk of colliding with the surge
/// namespace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId(pub u64);

impl RequestId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Byte transfer vs constant-rate lease (§4.4: rate requests are handled
/// as one byte request per timestep of the lease).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RequestKind {
    /// Move `demand` units any time within the window.
    Byte,
    /// Sustain `rate` units per timestep for the whole window; `demand`
    /// equals `rate × window length`.
    Rate { rate: f64 },
}

/// One customer transfer request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    pub id: RequestId,
    pub src: NodeId,
    pub dst: NodeId,
    /// Total units to move (`d_i`).
    pub demand: f64,
    /// Private value per unit (`v_i`). The provider must not read this.
    pub value: f64,
    /// When the request is submitted (`a_i`).
    pub arrival: Timestep,
    /// First timestep data may move (`t¹_i ≥ a_i`).
    pub start: Timestep,
    /// Last timestep data may move (`t²_i`, inclusive).
    pub deadline: Timestep,
    pub kind: RequestKind,
}

impl Request {
    /// Timesteps during which this request may transfer (inclusive range).
    pub fn active_range(&self) -> std::ops::RangeInclusive<Timestep> {
        self.start..=self.deadline
    }

    /// Number of timesteps available.
    pub fn window_len(&self) -> usize {
        self.deadline - self.start + 1
    }

    /// Slack beyond the minimum: a request needing its whole window has
    /// laxity 0 only when demand == capacity×len; here laxity is just the
    /// window length in steps (used by generators/tests).
    pub fn is_active_at(&self, t: Timestep) -> bool {
        t >= self.start && t <= self.deadline
    }

    /// Total value if fully served.
    pub fn total_value(&self) -> f64 {
        self.value * self.demand
    }
}

/// Parameters mapping a traffic trace to discrete requests.
#[derive(Debug, Clone)]
pub struct RequestConfig {
    /// Mean number of requests a pair's per-window volume is split into.
    pub requests_per_pair_window: f64,
    /// Deadline laxity: window length is `ceil(minimum_steps × laxity)`
    /// where `laxity` is drawn uniformly from this range. A laxity of 1
    /// means "exactly as long as a single-step transfer"; the paper's
    /// survey says 60% of transfers have strict (tight) deadlines.
    pub laxity_tight: (f64, f64),
    pub laxity_loose: (f64, f64),
    /// Fraction of requests with tight deadlines (Table 1: 60%).
    pub tight_fraction: f64,
    /// Minimum / maximum window length in steps.
    pub min_window: usize,
    pub max_window: usize,
    /// Distribution of per-unit values.
    pub value_dist: ValueDist,
    /// Fraction of requests that are rate leases instead of byte transfers.
    pub rate_fraction: f64,
    pub seed: u64,
}

impl Default for RequestConfig {
    fn default() -> Self {
        RequestConfig {
            requests_per_pair_window: 2.0,
            laxity_tight: (1.0, 2.0),
            laxity_loose: (2.0, 6.0),
            tight_fraction: 0.60,
            min_window: 2,
            max_window: 24,
            value_dist: ValueDist::Normal { mean: 1.0, std: 0.5, floor: 0.01 },
            rate_fraction: 0.0,
            seed: 7,
        }
    }
}

/// Convert a traffic trace into a request stream that mimics it: per pair
/// and window, the pair's volume is split into ~`requests_per_pair_window`
/// requests whose arrivals are sampled proportionally to the pair's demand
/// curve (so request load follows the diurnal shape).
pub fn generate_requests(
    trace: &TrafficTrace,
    grid: &TimeGrid,
    cfg: &RequestConfig,
) -> Vec<Request> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut out: Vec<Request> = Vec::new();
    let windows = trace.horizon.div_ceil(grid.steps_per_window);
    for pair in &trace.pairs {
        for w in 0..windows {
            let range = grid.window_range(w);
            let lo = range.start;
            let hi = range.end.min(trace.horizon);
            let volume: f64 = pair.demand[lo..hi].iter().sum();
            if volume <= 0.0 {
                continue;
            }
            // Number of requests: 1 + Poisson-ish around the mean.
            let n = sample_count(&mut rng, cfg.requests_per_pair_window);
            // Split volume into n random shares (stick-breaking).
            let mut shares = vec![0.0f64; n];
            for s in shares.iter_mut() {
                *s = rng.gen_range(0.2..1.0);
            }
            let total_share: f64 = shares.iter().sum();
            for share in shares {
                let demand = volume * share / total_share;
                // Arrival sampled proportional to the demand curve.
                let arrival = weighted_step(&mut rng, &pair.demand[lo..hi]) + lo;
                let tight = rng.gen_bool(cfg.tight_fraction.clamp(0.0, 1.0));
                let (llo, lhi) = if tight { cfg.laxity_tight } else { cfg.laxity_loose };
                let laxity = rng.gen_range(llo..=lhi);
                let len = ((cfg.min_window as f64 * laxity).ceil() as usize)
                    .clamp(cfg.min_window, cfg.max_window);
                let start = arrival;
                let deadline = (start + len - 1).min(trace.horizon - 1);
                let value = cfg.value_dist.sample(&mut rng);
                let kind = if rng.gen_bool(cfg.rate_fraction.clamp(0.0, 1.0)) {
                    RequestKind::Rate { rate: demand / (deadline - start + 1) as f64 }
                } else {
                    RequestKind::Byte
                };
                out.push(Request {
                    id: RequestId(0), // assigned after sorting
                    src: pair.src,
                    dst: pair.dst,
                    demand,
                    value,
                    arrival,
                    start,
                    deadline,
                    kind,
                });
            }
        }
    }
    // Arrival order defines request ids.
    out.sort_by_key(|r| (r.arrival, r.src, r.dst));
    for (i, r) in out.iter_mut().enumerate() {
        r.id = RequestId(i as u64);
    }
    out
}

/// `1 + Poisson(mean - 1)`-ish count via exponential gaps (always ≥ 1).
fn sample_count(rng: &mut StdRng, mean: f64) -> usize {
    let mean = mean.max(1.0);
    let mut n = 1usize;
    let mut acc = 0.0;
    loop {
        let u: f64 = 1.0 - rng.gen::<f64>();
        acc += -u.ln();
        if acc >= mean - 1.0 || n >= 64 {
            return n;
        }
        n += 1;
    }
}

/// Sample an index proportionally to the weights (all ≥ 0, not all zero).
fn weighted_step(rng: &mut StdRng, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return 0;
    }
    let mut target = rng.gen_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if target < w {
            return i;
        }
        target -= w;
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tm::{generate_trace, TrafficConfig};
    use pretium_net::topology;

    fn requests_with(cfg: RequestConfig) -> (TrafficTrace, Vec<Request>, TimeGrid) {
        let net = topology::default_eval(3);
        let grid = TimeGrid::coarse_default();
        let trace =
            generate_trace(&net, &grid, &TrafficConfig { horizon: 96, ..Default::default() });
        let reqs = generate_requests(&trace, &grid, &cfg);
        (trace, reqs, grid)
    }

    #[test]
    fn volume_is_conserved() {
        let (trace, reqs, _) = requests_with(RequestConfig::default());
        let req_total: f64 = reqs.iter().map(|r| r.demand).sum();
        assert!(
            (req_total - trace.total()).abs() < 1e-6 * trace.total(),
            "requests {req_total} vs trace {}",
            trace.total()
        );
    }

    #[test]
    fn ids_dense_and_arrival_sorted() {
        let (_, reqs, _) = requests_with(RequestConfig::default());
        for (i, r) in reqs.iter().enumerate() {
            assert_eq!(r.id.index(), i);
        }
        assert!(reqs.windows(2).all(|w| w[0].arrival <= w[1].arrival));
    }

    #[test]
    fn windows_are_well_formed() {
        let (trace, reqs, _) = requests_with(RequestConfig::default());
        for r in &reqs {
            assert!(r.start >= r.arrival);
            assert!(r.deadline >= r.start);
            assert!(r.deadline < trace.horizon);
            assert!(r.demand > 0.0);
            assert!(r.value >= 0.0);
        }
    }

    #[test]
    fn tight_fraction_shapes_window_lengths() {
        let tight =
            RequestConfig { tight_fraction: 1.0, laxity_tight: (1.0, 1.0), ..Default::default() };
        let loose =
            RequestConfig { tight_fraction: 0.0, laxity_loose: (6.0, 6.0), ..Default::default() };
        let (_, rt, _) = requests_with(tight);
        let (_, rl, _) = requests_with(loose);
        let mean_t: f64 = rt.iter().map(|r| r.window_len() as f64).sum::<f64>() / rt.len() as f64;
        let mean_l: f64 = rl.iter().map(|r| r.window_len() as f64).sum::<f64>() / rl.len() as f64;
        assert!(mean_l > 2.0 * mean_t, "tight {mean_t} loose {mean_l}");
    }

    #[test]
    fn rate_requests_generated_when_configured() {
        let cfg = RequestConfig { rate_fraction: 1.0, ..Default::default() };
        let (_, reqs, _) = requests_with(cfg);
        assert!(!reqs.is_empty());
        for r in &reqs {
            match r.kind {
                RequestKind::Rate { rate } => {
                    assert!((rate * r.window_len() as f64 - r.demand).abs() < 1e-9 * r.demand);
                }
                RequestKind::Byte => panic!("expected rate request"),
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let (_, a, _) = requests_with(RequestConfig::default());
        let (_, b, _) = requests_with(RequestConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn active_range_helpers() {
        let r = Request {
            id: RequestId(0),
            src: NodeId(0),
            dst: NodeId(1),
            demand: 1.0,
            value: 1.0,
            arrival: 3,
            start: 4,
            deadline: 7,
            kind: RequestKind::Byte,
        };
        assert_eq!(r.window_len(), 4);
        assert!(r.is_active_at(4) && r.is_active_at(7));
        assert!(!r.is_active_at(3) && !r.is_active_at(8));
        assert_eq!(r.total_value(), 1.0);
    }
}
