//! Persistent solver sessions with warm-started re-optimization.
//!
//! A [`SolverSession`] owns a [`Model`] together with the basis of its last
//! solve. Incremental mutations (`set_rhs`, `set_bounds`, `set_obj`,
//! `add_row`, `add_var`) go through the session so it can track which
//! mutation classes occurred, and every re-solve picks the cheapest restart
//! that is still correct:
//!
//! * **objective-only changes** leave the basis primal feasible — primal
//!   simplex continues from it directly ([`Restart::WarmPrimal`]);
//! * **RHS / bound changes** leave the basis dual feasible — the dual
//!   simplex repairs primal feasibility ([`Restart::WarmDual`]); this is the
//!   SAM-timestep case, where capacities and executed amounts move between
//!   re-optimizations;
//! * **appended rows** seat their slack in the basis (duals of existing rows
//!   are unchanged, so dual feasibility survives) and restart dual — the
//!   lazy capacity-row case;
//! * **appended variables** rest at a bound; if that disturbs feasibility
//!   the dual/primal repair machinery handles it.
//!
//! Anything the warm path cannot absorb falls back to a full cold solve, so
//! a session solve always returns the same certified optimum a fresh
//! [`Model::solve`] would — warm starting is purely a performance property
//! (the property tests assert primal, dual, and objective agreement to
//! 1e-7).
//!
//! ```
//! use pretium_lp::{Cmp, Restart, SolveOptions, SolverSession, Model, Sense};
//!
//! let mut m = Model::new(Sense::Maximize);
//! let x = m.add_nonneg("x", 3.0);
//! let y = m.add_nonneg("y", 2.0);
//! let cap = m.add_row("cap", x + y, Cmp::Le, 4.0);
//! let _r2 = m.add_row("r2", 1.0 * x + 3.0 * y, Cmp::Le, 6.0);
//! let mut session = SolverSession::new(m);
//! let first = session.solve(&SolveOptions::default()).unwrap();
//! assert!((first.objective() - 12.0).abs() < 1e-7);
//!
//! // Capacity changes re-optimize from the saved basis, not from scratch.
//! session.set_rhs(cap, 7.0);
//! let second = session.solve(&SolveOptions::default()).unwrap();
//! assert!((second.objective() - 18.0).abs() < 1e-7);
//! assert_eq!(session.last_restart(), Some(Restart::WarmDual));
//! ```

use crate::expr::{LinExpr, Var};
use crate::lazy::{LazyOutcome, RowGen};
use crate::model::{Cmp, Model, RowId};
use crate::simplex::{solve_model_session, Restart, SimplexOptions, WarmBasis};
use crate::solution::{Solution, SolveError};

/// Options for one [`SolverSession::solve`] call.
#[derive(Debug, Clone, Default)]
pub struct SolveOptions {
    /// Simplex parameter override; `None` uses the model's stored options.
    pub simplex: Option<SimplexOptions>,
    /// Discard the saved basis and solve from scratch.
    pub force_cold: bool,
    /// Round cap for [`SolverSession::solve_lazy`]; `0` selects the default
    /// of 50 rounds.
    pub max_rounds: u32,
}

impl SolveOptions {
    /// Options that cap the simplex at `max` iterations (fault injection /
    /// degraded-compute modelling, §4.4). The solver returns
    /// [`SolveError::IterationLimit`] instead of running to optimality when
    /// the cap is hit, so callers can degrade gracefully.
    pub fn with_iteration_limit(max: u64) -> Self {
        SolveOptions {
            simplex: Some(SimplexOptions { max_iterations: max, ..SimplexOptions::default() }),
            ..SolveOptions::default()
        }
    }
}

/// Which mutation classes are pending since the last solve.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Mutations {
    /// Objective coefficients or offset changed.
    pub obj: bool,
    /// A row right-hand side changed.
    pub rhs: bool,
    /// Variable bounds changed.
    pub bounds: bool,
    /// Rows appended since the last solve.
    pub added_rows: u32,
    /// Variables appended since the last solve.
    pub added_vars: u32,
    /// Coefficients retrofitted into rows since the last solve.
    pub new_terms: u32,
}

impl Mutations {
    /// True when nothing changed since the last solve.
    pub fn is_clean(&self) -> bool {
        *self == Mutations::default()
    }
}

/// Restart counters accumulated over the session's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Total solves (lazy rounds count individually).
    pub solves: u64,
    /// Solves that ran from a crash basis.
    pub cold_starts: u64,
    /// Warm restarts that needed only primal phase 2.
    pub warm_primal: u64,
    /// Warm restarts that ran the dual simplex first.
    pub warm_dual: u64,
    /// Total simplex iterations across all solves.
    pub iterations: u64,
    /// Total pricing work across all solves: columns examined by entering
    /// selection plus columns touched by incremental pivot-row updates.
    pub pricing_scans: u64,
    /// Iterations priced under the Bland's-rule anti-cycling fallback.
    pub bland_pivots: u64,
}

impl SessionStats {
    fn record(&mut self, restart: Restart, solution: &Solution) {
        self.solves += 1;
        self.iterations += solution.iterations();
        self.pricing_scans += solution.pricing_scans();
        self.bland_pivots += solution.bland_pivots();
        match restart {
            Restart::Cold => self.cold_starts += 1,
            Restart::WarmPrimal => self.warm_primal += 1,
            Restart::WarmDual => self.warm_dual += 1,
        }
    }

    /// Fraction of solves that reused the previous basis.
    pub fn warm_fraction(&self) -> f64 {
        if self.solves == 0 {
            return 0.0;
        }
        (self.warm_primal + self.warm_dual) as f64 / self.solves as f64
    }

    /// Fold another counter set into this one (aggregating stats across
    /// several sessions, e.g. one per SAM window).
    pub fn merge(&mut self, other: SessionStats) {
        self.solves += other.solves;
        self.cold_starts += other.cold_starts;
        self.warm_primal += other.warm_primal;
        self.warm_dual += other.warm_dual;
        self.iterations += other.iterations;
        self.pricing_scans += other.pricing_scans;
        self.bland_pivots += other.bland_pivots;
    }

    /// Labelled counter rows for table rendering (`(label, value)`), in a
    /// stable order.
    pub fn rows(&self) -> Vec<(String, String)> {
        vec![
            ("lp solves".into(), self.solves.to_string()),
            ("cold starts".into(), self.cold_starts.to_string()),
            ("warm primal".into(), self.warm_primal.to_string()),
            ("warm dual".into(), self.warm_dual.to_string()),
            ("iterations".into(), self.iterations.to_string()),
            ("pricing scans".into(), self.pricing_scans.to_string()),
            ("bland pivots".into(), self.bland_pivots.to_string()),
            ("warm fraction".into(), format!("{:.3}", self.warm_fraction())),
        ]
    }
}

/// A [`Model`] plus the factorized basis of its last solve.
///
/// Created with [`SolverSession::new`] (or [`Model::into_session`]); see the
/// [module docs](self) for the restart rules. The session exposes the same
/// mutators as [`Model`] — route all changes through it so the basis
/// snapshot and mutation tracking stay consistent.
#[derive(Debug, Clone)]
pub struct SolverSession {
    model: Model,
    basis: Option<WarmBasis>,
    pending: Mutations,
    stats: SessionStats,
    last_restart: Option<Restart>,
    /// Model size at the last basis snapshot; columns/rows past these marks
    /// were appended afterwards and are never referenced by the saved basis.
    solved_vars: usize,
    solved_rows: usize,
}

// The parallel evaluation engine (`pretium-sim::par`) moves one session
// into each worker thread, so `SolverSession` must stay `Send + Sync`. A
// future field that loses those bounds — an `Rc` cache, a raw pointer —
// would silently force every sweep back to serial; fail the build instead.
const _: () = {
    const fn sealed<T: Send + Sync>() {}
    sealed::<SolverSession>();
    sealed::<SessionStats>();
};

impl SolverSession {
    /// Wrap a model in a fresh session (no saved basis; the first solve is
    /// cold).
    pub fn new(model: Model) -> Self {
        SolverSession {
            model,
            basis: None,
            pending: Mutations::default(),
            stats: SessionStats::default(),
            last_restart: None,
            solved_vars: 0,
            solved_rows: 0,
        }
    }

    /// The wrapped model (read-only; mutate through the session methods).
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// Unwrap the model, discarding the saved basis.
    pub fn into_model(self) -> Model {
        self.model
    }

    /// Mutation classes pending since the last solve.
    pub fn pending_mutations(&self) -> Mutations {
        self.pending
    }

    /// How the most recent solve restarted, if any solve has run.
    pub fn last_restart(&self) -> Option<Restart> {
        self.last_restart
    }

    /// Lifetime restart counters.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// True when a basis from a previous solve is available for warm
    /// starting.
    pub fn has_basis(&self) -> bool {
        self.basis.is_some()
    }

    /// Drop the saved basis; the next solve runs cold.
    pub fn invalidate(&mut self) {
        self.basis = None;
    }

    /// Mutable solver options of the wrapped model (does not invalidate the
    /// basis).
    pub fn options_mut(&mut self) -> &mut SimplexOptions {
        self.model.options_mut()
    }

    // --- mutators (mirror Model, with mutation-class tracking) ------------

    /// See [`Model::add_var`].
    pub fn add_var(&mut self, name: &str, lb: f64, ub: f64, obj: f64) -> Var {
        self.pending.added_vars += 1;
        if obj != 0.0 {
            self.pending.obj = true;
        }
        self.model.add_var(name, lb, ub, obj)
    }

    /// See [`Model::add_nonneg`].
    pub fn add_nonneg(&mut self, name: &str, obj: f64) -> Var {
        self.add_var(name, 0.0, f64::INFINITY, obj)
    }

    /// See [`Model::add_free`].
    pub fn add_free(&mut self, name: &str, obj: f64) -> Var {
        self.add_var(name, f64::NEG_INFINITY, f64::INFINITY, obj)
    }

    /// See [`Model::add_row`].
    pub fn add_row(&mut self, name: &str, expr: impl Into<LinExpr>, cmp: Cmp, rhs: f64) -> RowId {
        self.pending.added_rows += 1;
        self.model.add_row(name, expr, cmp, rhs)
    }

    /// See [`Model::add_term`]. Warm-start compatible whenever the variable
    /// *or* the row was appended after the last solve: the saved basis never
    /// references the new column/row pairing, so extending the matrix there
    /// leaves it reusable (a fresh nonbasic column, or a fresh row whose
    /// slack is seated basic with dual zero). Retrofitting a coefficient
    /// between a pre-existing row and a pre-existing variable rewrites the
    /// factorized basis matrix itself, so the basis is discarded and the
    /// next solve runs cold.
    pub fn add_term(&mut self, r: RowId, v: Var, coef: f64) {
        self.pending.new_terms += 1;
        if v.index() < self.solved_vars && r.index() < self.solved_rows {
            self.invalidate();
        }
        self.model.add_term(r, v, coef);
    }

    /// See [`Model::set_obj`].
    pub fn set_obj(&mut self, v: Var, obj: f64) {
        self.pending.obj = true;
        self.model.set_obj(v, obj);
    }

    /// See [`Model::set_bounds`].
    pub fn set_bounds(&mut self, v: Var, lb: f64, ub: f64) {
        self.pending.bounds = true;
        self.model.set_bounds(v, lb, ub);
    }

    /// See [`Model::set_rhs`].
    pub fn set_rhs(&mut self, r: RowId, rhs: f64) {
        self.pending.rhs = true;
        self.model.set_rhs(r, rhs);
    }

    /// See [`Model::add_obj_offset`].
    pub fn add_obj_offset(&mut self, c: f64) {
        self.pending.obj = true;
        self.model.add_obj_offset(c);
    }

    /// Append-only access to the underlying model, for helpers that build
    /// structure directly on a [`Model`] (e.g. encoding builders that add a
    /// block of variables and rows). Additions are counted into the pending
    /// mutation set afterwards by diffing the model dimensions.
    ///
    /// The closure must only *append*: add variables, add rows, and touch
    /// the entries it added. Mutating pre-existing coefficients, bounds,
    /// RHS values, or objective entries through this hook bypasses mutation
    /// tracking and can silently corrupt warm restarts — use the session's
    /// own mutators for those.
    pub fn append_with<R>(&mut self, f: impl FnOnce(&mut Model) -> R) -> R {
        let (nv, nr) = (self.model.num_vars(), self.model.num_rows());
        let out = f(&mut self.model);
        self.pending.added_vars += (self.model.num_vars() - nv) as u32;
        self.pending.added_rows += (self.model.num_rows() - nr) as u32;
        out
    }

    // --- solving ----------------------------------------------------------

    /// Re-optimize, reusing the saved basis when possible.
    ///
    /// The restart that actually ran is readable via
    /// [`SolverSession::last_restart`]; the result is always the certified
    /// optimum of the current model (warm failures fall back to a cold
    /// solve internally).
    pub fn solve(&mut self, opts: &SolveOptions) -> Result<Solution, SolveError> {
        let simplex = opts.simplex.clone().unwrap_or_else(|| self.model.options().clone());
        let warm = if opts.force_cold { None } else { self.basis.as_ref() };
        let (solution, basis, restart) = solve_model_session(&self.model, &simplex, warm)?;
        self.basis = Some(basis);
        self.stats.record(restart, &solution);
        self.last_restart = Some(restart);
        self.pending = Mutations::default();
        self.solved_vars = self.model.num_vars();
        self.solved_rows = self.model.num_rows();
        Ok(solution)
    }

    /// Solve with lazy row generation: repeatedly solve, ask `gen` for rows
    /// the tentative optimum violates, append them, and re-solve **warm** —
    /// each round restarts dual from the previous basis instead of from
    /// scratch, which is where session reuse pays off most.
    ///
    /// Semantics match the row-generation contract of [`crate::lazy`]: the
    /// generator must be monotone, and rows it never produces have dual zero
    /// by construction.
    pub fn solve_lazy(
        &mut self,
        gen: &mut dyn RowGen,
        opts: &SolveOptions,
    ) -> Result<LazyOutcome, SolveError> {
        let max_rounds = if opts.max_rounds == 0 { 50 } else { opts.max_rounds };
        let mut generated = Vec::new();
        let mut rounds = 0;
        loop {
            rounds += 1;
            let solution = self.solve(opts)?;
            let violated = gen.violated(&self.model, &solution);
            if violated.is_empty() {
                return Ok(LazyOutcome { solution, generated, rounds });
            }
            if rounds >= max_rounds {
                return Err(SolveError::IterationLimit { iterations: rounds as u64 });
            }
            for r in violated {
                let id = self.add_row(&r.name, r.expr, r.cmp, r.rhs);
                generated.push((r.key, id));
            }
        }
    }
}

impl From<Model> for SolverSession {
    fn from(model: Model) -> Self {
        SolverSession::new(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Sense, Status};

    fn toy() -> (SolverSession, Var, Var, RowId, RowId) {
        // max 3x + 2y  s.t.  x + y <= 4,  x + 3y <= 6
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_nonneg("x", 3.0);
        let y = m.add_nonneg("y", 2.0);
        let r1 = m.add_row("r1", x + y, Cmp::Le, 4.0);
        let r2 = m.add_row("r2", 1.0 * x + 3.0 * y, Cmp::Le, 6.0);
        (SolverSession::new(m), x, y, r1, r2)
    }

    #[test]
    fn first_solve_is_cold_then_rhs_change_restarts_dual() {
        let (mut s, x, _y, r1, _r2) = toy();
        let sol = s.solve(&SolveOptions::default()).unwrap();
        assert_eq!(sol.status(), Status::Optimal);
        assert!((sol.objective() - 12.0).abs() < 1e-7);
        assert_eq!(s.last_restart(), Some(Restart::Cold));

        // Relaxing r1 past what r2 allows pushes the old basis out of primal
        // feasibility (the r2 slack would go negative): dual restart.
        s.set_rhs(r1, 7.0);
        let sol2 = s.solve(&SolveOptions::default()).unwrap();
        assert!((sol2.objective() - 18.0).abs() < 1e-7);
        assert!((sol2.value(x) - 6.0).abs() < 1e-7);
        assert_eq!(s.last_restart(), Some(Restart::WarmDual));
        assert_eq!(s.stats().cold_starts, 1);
        assert_eq!(s.stats().warm_dual, 1);
    }

    #[test]
    fn rhs_slide_within_bounds_restarts_primal() {
        // Moving a binding RHS while every basic variable stays inside its
        // bounds keeps the basis primal feasible — no dual pass needed.
        let (mut s, x, _y, r1, _r2) = toy();
        s.solve(&SolveOptions::default()).unwrap();
        s.set_rhs(r1, 3.0);
        let sol = s.solve(&SolveOptions::default()).unwrap();
        assert!((sol.objective() - 9.0).abs() < 1e-7);
        assert!((sol.value(x) - 3.0).abs() < 1e-7);
        assert_eq!(s.last_restart(), Some(Restart::WarmPrimal));
    }

    #[test]
    fn obj_change_restarts_primal() {
        let (mut s, _x, y, _r1, _r2) = toy();
        s.solve(&SolveOptions::default()).unwrap();
        // Make y the attractive variable; the old basis stays primal
        // feasible so the restart must be primal.
        s.set_obj(y, 10.0);
        let sol = s.solve(&SolveOptions::default()).unwrap();
        assert_eq!(s.last_restart(), Some(Restart::WarmPrimal));
        // New optimum: y = 2 on r2, x = 0 → 20.
        assert!((sol.objective() - 20.0).abs() < 1e-7, "{}", sol.objective());
    }

    #[test]
    fn added_row_restarts_dual() {
        let (mut s, x, _y, _r1, _r2) = toy();
        let sol = s.solve(&SolveOptions::default()).unwrap();
        assert!((sol.value(x) - 4.0).abs() < 1e-7);
        // Cut off the current optimum.
        s.add_row("cut", 1.0 * x, Cmp::Le, 2.0);
        let sol2 = s.solve(&SolveOptions::default()).unwrap();
        assert_eq!(s.last_restart(), Some(Restart::WarmDual));
        assert!(sol2.value(x) <= 2.0 + 1e-7);
        // Agrees with a cold solve of the same model.
        let cold = s.model().solve().unwrap();
        assert!((sol2.objective() - cold.objective()).abs() < 1e-7);
    }

    #[test]
    fn added_var_reoptimizes_correctly() {
        let (mut s, _x, _y, r1, _r2) = toy();
        s.solve(&SolveOptions::default()).unwrap();
        // A new, very profitable variable entering r1.
        let z = s.add_var("z", 0.0, f64::INFINITY, 9.0);
        // It must participate in an existing row to be bounded — rebuild the
        // row relationship via a fresh row.
        s.add_row("zcap", 1.0 * z, Cmp::Le, 1.0);
        let sol = s.solve(&SolveOptions::default()).unwrap();
        let cold = s.model().solve().unwrap();
        assert!((sol.objective() - cold.objective()).abs() < 1e-7);
        assert!((sol.value(z) - 1.0).abs() < 1e-7);
        let _ = r1;
    }

    #[test]
    fn added_var_enters_existing_row_warm() {
        let (mut s, x, y, r1, _r2) = toy();
        s.solve(&SolveOptions::default()).unwrap();
        // New variable competing for r1's capacity: the column is fresh, so
        // the saved basis stays valid and the re-solve is warm.
        let z = s.add_var("z", 0.0, f64::INFINITY, 9.0);
        s.add_term(r1, z, 1.0);
        let sol = s.solve(&SolveOptions::default()).unwrap();
        assert_ne!(s.last_restart(), Some(Restart::Cold));
        let cold = s.model().solve().unwrap();
        assert!((sol.objective() - cold.objective()).abs() < 1e-7);
        // z (value 9) displaces x and y (values 3, 2) on r1 entirely.
        assert!((sol.value(z) - 4.0).abs() < 1e-7);
        let _ = (x, y);
    }

    #[test]
    fn retrofitting_old_column_invalidates_basis() {
        let (mut s, x, _y, _r1, r2) = toy();
        s.solve(&SolveOptions::default()).unwrap();
        assert!(s.has_basis());
        // x already exists and r2 already exists: the basis matrix changes.
        s.add_term(r2, x, 1.0);
        assert!(!s.has_basis());
        let sol = s.solve(&SolveOptions::default()).unwrap();
        assert_eq!(s.last_restart(), Some(Restart::Cold));
        let cold = s.model().solve().unwrap();
        assert!((sol.objective() - cold.objective()).abs() < 1e-7);
    }

    #[test]
    fn force_cold_ignores_basis() {
        let (mut s, _x, _y, r1, _r2) = toy();
        s.solve(&SolveOptions::default()).unwrap();
        s.set_rhs(r1, 3.0);
        let opts = SolveOptions { force_cold: true, ..Default::default() };
        s.solve(&opts).unwrap();
        assert_eq!(s.last_restart(), Some(Restart::Cold));
    }

    #[test]
    fn mutation_tracking_and_reset() {
        let (mut s, x, _y, r1, _r2) = toy();
        assert!(s.pending_mutations().is_clean());
        s.set_rhs(r1, 5.0);
        s.set_bounds(x, 0.0, 3.0);
        let m = s.pending_mutations();
        assert!(m.rhs && m.bounds && !m.obj);
        s.solve(&SolveOptions::default()).unwrap();
        assert!(s.pending_mutations().is_clean());
    }

    #[test]
    fn infeasible_after_bound_fix_reported() {
        let (mut s, x, y, _r1, _r2) = toy();
        s.solve(&SolveOptions::default()).unwrap();
        // Force x + y >= 9 while x,y <= 4 each: infeasible.
        s.add_row("floor", x + y, Cmp::Ge, 9.0);
        s.set_bounds(x, 0.0, 4.0);
        s.set_bounds(y, 0.0, 4.0);
        let err = s.solve(&SolveOptions::default()).unwrap_err();
        assert!(matches!(err, SolveError::Infeasible { .. }), "{err}");
    }

    #[test]
    fn lazy_rounds_reuse_basis() {
        // max x + y, hidden rows generated lazily.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 10.0, 1.0);
        let y = m.add_var("y", 0.0, 10.0, 1.0);
        let mut s = SolverSession::new(m);
        let hidden: Vec<(LinExpr, f64, u64)> =
            vec![(LinExpr::from(x), 3.0, 0), (LinExpr::from(y), 2.0, 1), (x + y, 4.0, 2)];
        let mut returned: rand::DetHashSet<u64> = Default::default();
        let mut gen = move |_: &Model, sol: &Solution| {
            let mut out = Vec::new();
            for (e, rhs, k) in &hidden {
                if !returned.contains(k) && e.eval(sol.values()) > rhs + 1e-7 {
                    returned.insert(*k);
                    out.push(crate::lazy::RowRequest {
                        name: format!("h{k}"),
                        expr: e.clone(),
                        cmp: Cmp::Le,
                        rhs: *rhs,
                        key: *k,
                    });
                }
            }
            out
        };
        let out = s.solve_lazy(&mut gen, &SolveOptions::default()).unwrap();
        assert!((out.solution.objective() - 4.0).abs() < 1e-7);
        assert!(out.rounds >= 2);
        // Only the first round was cold.
        assert_eq!(s.stats().cold_starts, 1);
        assert!(s.stats().warm_dual >= 1, "{:?}", s.stats());
    }
}
