//! Property test for lazy column generation (DESIGN.md §17): a restricted
//! master that seeds only each job's shortest path and prices the rest of
//! the `(path, timestep)` column universe lazily must land on an optimum
//! of the fully materialized LP, across randomized SAM-like sequences
//! that exercise faults, the §4.4 shed/relax degradation chain, mid-run
//! job arrivals, and the localized (frozen-block) solve path.
//!
//! The invariant checked at every adopted solution: the colgen session's
//! objective equals the optimum of a *freshly built, fully materialized*
//! LP over the same remaining state (remaining demands and guarantees,
//! current capacities), plus the value of the flows already executed.
//! Objective equality is the complete correctness statement — the colgen
//! solution is feasible for the full-universe LP by construction, so a
//! matching objective proves it is one of its optima. Per-job deliveries
//! are *not* compared here: distinct optima of the same LP can split
//! deliveries differently across jobs (the deterministic unit tests in
//! the schedule module pin those down on non-degenerate instances).
//!
//! A second invariant: the session never materializes more than the full
//! column universe, and across the sequences it stays a *strict*
//! restriction — otherwise the equality above proved nothing about
//! pricing.

use pretium_core::schedule::solve_with;
use pretium_core::{ColumnGen, Job, ScheduleProblem, ScheduleSession, TopkEncoding};
use pretium_lp::SolveOptions;
use pretium_net::{k_shortest_paths, EdgeId, LinkCost, Network, NodeId, Path, TimeGrid, Timestep};
use rand::rngs::StdRng;
use rand::{DetHashSet, Rng, SeedableRng};

const HORIZON: usize = 12;
const STEPS: usize = 10;
const BASE_CAP: f64 = 10.0;
const SHORT_TOL: f64 = 1e-6;

/// A diamond S→{M1,M2}→T with a cross link M1→M2 (three loopless S→T
/// routes), owned links only. Owned links keep execution history
/// objective-neutral: alternate optima may split the same deliveries
/// across paths differently, and percentile-billed links would turn that
/// split into diverging cost constants for later steps. The percentile ×
/// colgen interplay is covered deterministically by the schedule-module
/// unit tests instead.
fn diamond_net() -> (Network, Vec<NodeId>) {
    let mut net = Network::new();
    let s = net.add_node("S", pretium_net::Region::NorthAmerica);
    let m1 = net.add_node("M1", pretium_net::Region::NorthAmerica);
    let m2 = net.add_node("M2", pretium_net::Region::Europe);
    let t = net.add_node("T", pretium_net::Region::Europe);
    net.add_edge(s, m1, BASE_CAP, LinkCost::owned());
    net.add_edge(m1, t, BASE_CAP, LinkCost::owned());
    net.add_edge(s, m2, BASE_CAP, LinkCost::owned());
    net.add_edge(m2, t, BASE_CAP, LinkCost::owned());
    net.add_edge(m1, m2, BASE_CAP, LinkCost::owned());
    (net, vec![s, m1, m2, t])
}

/// Candidate multi-path route sets: every entry gives a job at least two
/// admissible paths, so the restricted seed is a real restriction.
fn route_pool(net: &Network, n: &[NodeId]) -> Vec<Vec<Path>> {
    let st = k_shortest_paths(net, n[0], n[3], 3, &|_| 1.0);
    assert!(st.len() >= 3, "expected 3 S->T routes, got {}", st.len());
    let mt = k_shortest_paths(net, n[1], n[3], 2, &|_| 1.0);
    assert!(mt.len() >= 2, "expected 2 M1->T routes, got {}", mt.len());
    vec![st.clone(), st[..2].to_vec(), mt]
}

/// The optimum of a freshly built, fully materialized LP over the
/// remaining state: demands and guarantees minus what the session already
/// executed, solved from timestep `t` under the current capacities.
fn reference_optimum(
    net: &Network,
    grid: &TimeGrid,
    jobs: &[Job],
    exec_delivered: &[f64],
    t: Timestep,
    factors: &[f64],
    opts: &SolveOptions,
) -> f64 {
    let jobs_ref: Vec<Job> = jobs
        .iter()
        .zip(exec_delivered)
        .map(|(job, &done)| {
            let mut r = job.clone();
            r.start = job.start.max(t);
            r.min_units = (job.min_units - done).max(0.0);
            r.max_units = (job.max_units - done).max(0.0);
            r
        })
        .collect();
    let f = factors.to_vec();
    let cap = move |e: EdgeId, _t: Timestep| BASE_CAP * f[e.index()];
    let no_realized = |_: EdgeId, _: Timestep| 0.0;
    let problem = ScheduleProblem {
        net,
        grid,
        from: t,
        to: HORIZON,
        jobs: &jobs_ref,
        capacity: &cap,
        realized: &no_realized,
        topk: TopkEncoding::CVar,
        cost_scale: 1.0,
    };
    solve_with(&problem, opts).unwrap().objective
}

struct Coverage {
    generated: u64,
    strict_restriction: bool,
    relaxes: usize,
    localized: usize,
}

/// Drive one randomized sequence through a colgen session, checking every
/// adopted solution against the fully materialized reference optimum of
/// the same state.
fn run_sequence(seed: u64) -> Coverage {
    let (net, nodes) = diamond_net();
    let grid = TimeGrid::new(6, 30);
    let routes = route_pool(&net, &nodes);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut factors: Vec<f64> = vec![1.0; net.num_edges()];
    let mut cov = Coverage { generated: 0, strict_restriction: false, relaxes: 0, localized: 0 };

    let mut jobs = vec![
        Job::new(0, routes[0].clone(), 0, 5, 1.7, 4.0, 30.0),
        Job::new(1, routes[2].clone(), 0, 5, 1.1, 2.0, 15.0),
    ];
    let cap_of = |factors: &[f64]| {
        let f = factors.to_vec();
        move |e: EdgeId, _t: Timestep| BASE_CAP * f[e.index()]
    };
    let no_realized = |_: EdgeId, _: Timestep| 0.0;
    let opts = SolveOptions::default();
    let cap = cap_of(&factors);
    let problem = ScheduleProblem {
        net: &net,
        grid: &grid,
        from: 0,
        to: HORIZON,
        jobs: &jobs,
        capacity: &cap,
        realized: &no_realized,
        topk: TopkEncoding::CVar,
        cost_scale: 1.0,
    };
    let mut lazy = ScheduleSession::with_colgen(&problem, ColumnGen::on());
    let first = lazy.solve_step_with(&net, &cap, &no_realized, &opts).unwrap();
    drop(cap);
    // Units each job executed at frozen steps, and the plan those frozen
    // values come from (the final solution adopted in the previous step).
    let mut exec_delivered: Vec<f64> = vec![0.0; jobs.len()];
    let mut prev_flows = first.flows;
    let mut next_key = jobs.len();

    for t in 1..=STEPS {
        // Step t-1 executes before this step plans: its flows freeze.
        for (j, flows) in prev_flows.iter().enumerate() {
            exec_delivered[j] +=
                flows.iter().filter(|&&(_, ft, _)| ft == t - 1).map(|&(_, _, u)| u).sum::<f64>();
        }
        lazy.advance_to(t);
        let mut touched: DetHashSet<EdgeId> = DetHashSet::default();

        // Accepts: 0-2 new multi-path jobs arriving at t.
        for _ in 0..rng.gen_range(0..3u32) {
            let r = rng.gen_range(0..routes.len());
            let deadline = (t + rng.gen_range(2..6usize)).min(HORIZON - 1);
            let weight = rng.gen_range(0.4..3.0);
            let max_units = rng.gen_range(3.0..16.0);
            let min_units =
                if rng.gen_bool(0.5) { max_units * rng.gen_range(0.2..0.8) } else { 0.0 };
            let job =
                Job::new(next_key, routes[r].clone(), t, deadline, weight, min_units, max_units);
            next_key += 1;
            jobs.push(job.clone());
            exec_delivered.push(0.0);
            lazy.add_job(job);
        }
        // Scripted crunch: a severe fault on M1→T plus a latecomer whose
        // guarantee cannot fit — forces the §4.4 shed/relax chain.
        if t == 4 {
            let e1 = net.find_edge(nodes[1], nodes[3]).unwrap();
            factors[e1.index()] = 0.1;
            touched.insert(e1);
            let job =
                Job::new(next_key, routes[1].clone(), t, (t + 3).min(HORIZON - 1), 2.0, 9.0, 14.0);
            next_key += 1;
            jobs.push(job.clone());
            exec_delivered.push(0.0);
            lazy.add_job(job);
        }
        // Faults and repairs.
        if rng.gen_bool(0.6) {
            let e = EdgeId(rng.gen_range(0..net.num_edges() as u32));
            factors[e.index()] = if rng.gen_bool(0.35) {
                rng.gen_range(0.15..0.6)
            } else if rng.gen_bool(0.5) {
                rng.gen_range(0.6..1.0)
            } else {
                1.0
            };
            touched.insert(e);
        }

        let cap = cap_of(&factors);
        // Alternate between the full loop and the localized
        // (frozen-block) path, so pricing is exercised under both.
        let mut sol = if t % 2 == 1 {
            let loc =
                lazy.solve_step_localized(&net, &cap, &no_realized, &touched, 1e-7, &opts).unwrap();
            if loc.certified && !loc.used_full {
                cov.localized += 1;
            }
            loc.solution
        } else {
            lazy.solve_step_with(&net, &cap, &no_realized, &opts).unwrap()
        };

        // The session's objective counts executed flows at their frozen
        // values; the fresh reference starts from the remaining demands.
        let check = |obj: f64, when: &str, jobs: &[Job], exec: &[f64]| {
            let executed_value: f64 =
                jobs.iter().zip(exec).map(|(job, &done)| job.weight * done).sum();
            let reference = reference_optimum(&net, &grid, jobs, exec, t, &factors, &opts);
            let expect = reference + executed_value;
            assert!(
                (obj - expect).abs() <= 1e-6 * (1.0 + expect.abs()),
                "seed {seed} t {t} ({when}): colgen objective {obj} vs full-LP optimum {expect} \
                 (reference {reference} + executed {executed_value})"
            );
        };
        check(sol.objective, "step", &jobs, &exec_delivered);

        // §4.4 degradation: relax uncoverable guarantees by the reported
        // shortfall, warm re-solve, re-check against the (re-built)
        // reference.
        let mut handled: DetHashSet<usize> = DetHashSet::default();
        while sol.max_shortfall() > SHORT_TOL {
            let short: Vec<(usize, f64)> = sol
                .shortfall
                .iter()
                .enumerate()
                .filter(|&(j, &s)| s > SHORT_TOL && !handled.contains(&j))
                .map(|(j, &s)| (j, s))
                .collect();
            let Some(&(j, units)) = short.first() else { break };
            handled.insert(j);
            let waived = lazy.relax_guarantee(j, units);
            jobs[j].min_units = (jobs[j].min_units - waived).max(0.0);
            cov.relaxes += 1;
            if waived <= 0.0 {
                continue;
            }
            sol = lazy.solve_step_with(&net, &cap, &no_realized, &opts).unwrap();
            check(sol.objective, "post-relax", &jobs, &exec_delivered);
        }

        assert!(
            lazy.num_flow_columns() <= lazy.column_universe(),
            "seed {seed} t {t}: {} columns over a universe of {}",
            lazy.num_flow_columns(),
            lazy.column_universe()
        );
        prev_flows = sol.flows;
    }
    cov.generated = lazy.lp_stats().columns_generated;
    cov.strict_restriction = lazy.num_flow_columns() < lazy.column_universe();
    cov
}

#[test]
fn colgen_matches_full_materialization_across_sequences() {
    let mut generated = 0;
    let mut strict = 0;
    let mut relaxes = 0;
    let mut localized = 0;
    for seed in [11, 23, 57] {
        let cov = run_sequence(seed);
        generated += cov.generated;
        strict += cov.strict_restriction as usize;
        relaxes += cov.relaxes;
        localized += cov.localized;
    }
    // The sequences must actually exercise pricing, restriction, the
    // degradation chain, and the localized path — or the equality
    // assertions above proved nothing.
    assert!(generated > 0, "pricing never generated a column across seeds");
    assert!(strict >= 1, "no sequence ended with a strict column restriction");
    assert!(relaxes >= 1, "degradation path never taken across seeds");
    assert!(localized >= 1, "localized solve path never certified across seeds");
}
