//! Basis factorization for the revised simplex method: sparse LU with
//! Markowitz pivoting and Forrest–Tomlin updates.
//!
//! LP bases from network scheduling problems are extremely sparse: most
//! basic columns are slacks (singletons) and the rest are short flow
//! columns. Refactorization therefore runs *sparse Gaussian elimination*
//! with Markowitz pivot selection — each step pivots on an entry
//! minimizing the fill bound `(r_i − 1)(c_j − 1)` among candidates passing
//! a relative stability threshold — producing sparse `L`/`U` factors plus
//! row and column permutations ([`markowitz`]).
//!
//! Basis exchanges between refactorizations apply *Forrest–Tomlin
//! updates* ([`ft_update`]): the entering column's spike replaces a column
//! of `U`, the replaced pivot rotates to the end of the pivot order, and
//! the stranded row is eliminated into a growing file of row etas. `U`
//! stays genuinely triangular after every update, so FTRAN/BTRAN never
//! degrade the way a product-form eta file does; the factorization is
//! rebuilt when the update file reaches `max_etas` or an update's new
//! pivot is below tolerance.
//!
//! The two solve kernels ([`sparse`]) are the classic simplex primitives:
//! * `ftran`: solve `B·w = a` (entering column in basis coordinates),
//! * `btran`: solve `yᵀ·B = cᵀ` (simplex multipliers / duals).
//!
//! The previous dense-bump kernel (triangularization pre-pass + dense LU
//! on the residual bump + product-form etas) survives as a *reference
//! implementation* in [`dense_ref`] for torture tests and benchmarks; it
//! is no longer on any solve path.

pub mod dense_ref;
mod ft_update;
mod markowitz;
mod sparse;

use sparse::RowEta;

/// Sparse column: `(row, value)` pairs, rows strictly increasing.
pub type SparseCol = Vec<(u32, f64)>;

/// Default cap on Forrest–Tomlin updates between refactorizations.
///
/// The single source of truth for the `max_etas: 0` / `refactor_every: 0`
/// convention: [`Factorization::new`] substitutes it for a zero limit, and
/// `SimplexOptions::default()` seeds `refactor_every` from it, so sessions
/// created indirectly (e.g. via `solve_restricted`) inherit the same
/// cadence.
pub const DEFAULT_MAX_ETAS: usize = 96;

/// Errors from factorization.
#[derive(Debug, Clone, PartialEq)]
pub enum FactorError {
    /// The basis matrix is numerically singular; the offending elimination
    /// step is reported.
    Singular { position: usize },
}

/// Cumulative factorization work counters, reported per solve through
/// `Solution::factor_stats` and aggregated into `SessionStats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FactorStats {
    /// Refactorizations (sparse Markowitz eliminations) performed.
    pub refactors: u64,
    /// Nonzeros of the basis columns handed to `refactor`, summed over
    /// refactorizations (the fill-in ratio denominator).
    pub basis_nnz: u64,
    /// Nonzeros of the computed `L`+`U` factors (diagonal included),
    /// summed over refactorizations (the fill-in ratio numerator).
    pub factor_nnz: u64,
    /// Forrest–Tomlin updates absorbed without refactorizing.
    pub ft_updates: u64,
    /// Updates refused because the new pivot fell below tolerance (each
    /// forces the caller to refactorize).
    pub pivot_rejections: u64,
}

impl FactorStats {
    /// Factor nonzeros per basis nonzero across all refactorizations
    /// (`1.0` = no fill-in at all).
    pub fn fill_ratio(&self) -> f64 {
        self.factor_nnz as f64 / self.basis_nnz.max(1) as f64
    }

    /// Fold another counter set into this one.
    pub fn merge(&mut self, other: FactorStats) {
        self.refactors += other.refactors;
        self.basis_nnz += other.basis_nnz;
        self.factor_nnz += other.factor_nnz;
        self.ft_updates += other.ft_updates;
        self.pivot_rejections += other.pivot_rejections;
    }
}

/// Sparse LU factorization `P·B·Q = L·U` with a Forrest–Tomlin update
/// file.
///
/// Internally every pivot owns a *slot*, numbered in the elimination
/// order of the last refactorization. `L` is fixed between
/// refactorizations and applied in slot order; `U` is maintained in both
/// column- and row-major form so updates can delete/insert rows, and its
/// pivot order (`perm`) starts as the slot order and is rotated by each
/// update. Slots map to original rows (`row_of_slot`) and basis positions
/// (`pos_of_slot`), which is how the external API keeps speaking the
/// row/position language of the solver.
#[derive(Debug, Clone)]
pub struct Factorization {
    m: usize,
    /// Columns of unit-lower-triangular `L` by slot: `(slot, multiplier)`
    /// entries at slots eliminated later. Static between refactors.
    lcols: Vec<Vec<(u32, f64)>>,
    /// Off-diagonal columns of `U` by slot: `(slot, value)` entries at
    /// slots earlier in the current pivot order.
    ucols: Vec<Vec<(u32, f64)>>,
    /// Row-major mirror of `ucols` (needed by the FT update).
    urows: Vec<Vec<(u32, f64)>>,
    /// Diagonal of `U` by slot.
    udiag: Vec<f64>,
    /// Current pivot order: `perm[i]` = slot eliminated `i`-th.
    perm: Vec<u32>,
    /// Inverse of `perm`: `ord[slot]` = its position in the pivot order.
    ord: Vec<u32>,
    /// Original row held by each slot.
    row_of_slot: Vec<u32>,
    /// Inverse of `row_of_slot`.
    slot_of_row: Vec<u32>,
    /// Basis position (column of `B`) held by each slot.
    pos_of_slot: Vec<u32>,
    /// Inverse of `pos_of_slot`.
    slot_of_pos: Vec<u32>,
    /// Forrest–Tomlin row-eta file, chronological.
    etas: Vec<RowEta>,
    /// Updates absorbed since the last refactorization (identity updates
    /// store no eta but still count toward the cadence).
    updates: usize,
    /// Rebuild threshold for the update file.
    max_etas: usize,
    /// Absolute pivot tolerance.
    pivot_tol: f64,
    // --- scratch buffers reused across calls (no steady-state allocs) ----
    /// Dense RHS scatter for `ftran`, indexed by original row.
    scratch: Vec<f64>,
    /// Slot-space work vector for both solve kernels.
    z: Vec<f64>,
    /// FT update: entering column permuted to slot space.
    wz: Vec<f64>,
    /// FT update: the spike `U·w̃`.
    spike: Vec<f64>,
    /// FT update: working last row (dense over slots, stamp-validated).
    rowbuf: Vec<f64>,
    rowstamp: Vec<u64>,
    stamp: u64,
    stats: FactorStats,
}

impl Factorization {
    /// Create a factorization of the identity for an `m`-row basis.
    /// `max_etas: 0` selects [`DEFAULT_MAX_ETAS`].
    pub fn new(m: usize, max_etas: usize, pivot_tol: f64) -> Self {
        let iota: Vec<u32> = (0..m as u32).collect();
        Factorization {
            m,
            lcols: vec![Vec::new(); m],
            ucols: vec![Vec::new(); m],
            urows: vec![Vec::new(); m],
            udiag: vec![1.0; m],
            perm: iota.clone(),
            ord: iota.clone(),
            row_of_slot: iota.clone(),
            slot_of_row: iota.clone(),
            pos_of_slot: iota.clone(),
            slot_of_pos: iota,
            etas: Vec::new(),
            updates: 0,
            max_etas: if max_etas == 0 { DEFAULT_MAX_ETAS } else { max_etas },
            pivot_tol,
            scratch: vec![0.0; m],
            z: vec![0.0; m],
            wz: Vec::new(),
            spike: Vec::new(),
            rowbuf: Vec::new(),
            rowstamp: Vec::new(),
            stamp: 0,
            stats: FactorStats::default(),
        }
    }

    /// Number of row etas accumulated since the last refactorization.
    pub fn eta_count(&self) -> usize {
        self.etas.len()
    }

    /// Cumulative work counters over this factorization's lifetime.
    pub fn stats(&self) -> FactorStats {
        self.stats
    }

    /// Nonzeros currently held in `L` and `U` (diagonal included) — the
    /// fill-in diagnostic for the *current* factors.
    pub fn factor_nnz(&self) -> usize {
        let l: usize = self.lcols.iter().map(Vec::len).sum();
        let u: usize = self.ucols.iter().map(Vec::len).sum();
        self.m + l + u
    }

    /// True when the update file has grown enough that the caller should
    /// refactorize. Doubles as the solver's pricing drift-guard cadence,
    /// so it counts *updates* (including identity ones that stored no
    /// eta), not stored etas.
    pub fn wants_refactor(&self) -> bool {
        self.updates >= self.max_etas
    }

    /// Factorize the basis given by `columns` (one sparse column per basis
    /// position) by Markowitz elimination. Clears the update file and
    /// resets the pivot order.
    pub fn refactor(&mut self, columns: &[&SparseCol]) -> Result<(), FactorError> {
        markowitz::refactorize(self, columns)
    }

    /// Solve `B·w = a` where `a` is a sparse column in original row
    /// coordinates. The result is dense, indexed by basis *position*.
    pub fn ftran(&mut self, a: &SparseCol, out: &mut Vec<f64>) {
        // Borrow the reusable scratch buffer for the dense scatter; only
        // the entries of `a` are re-zeroed before it is handed back.
        let mut dense = std::mem::take(&mut self.scratch);
        dense.resize(self.m, 0.0);
        for &(i, v) in a.iter() {
            dense[i as usize] = v;
        }
        self.ftran_dense(&dense, out);
        for &(i, _) in a.iter() {
            dense[i as usize] = 0.0;
        }
        self.scratch = dense;
    }

    /// Like [`Factorization::ftran`] but with a dense right-hand side in
    /// original row coordinates.
    pub fn ftran_dense(&mut self, a: &[f64], out: &mut Vec<f64>) {
        sparse::ftran_dense(self, a, out);
    }

    /// Solve `yᵀ·B = cᵀ` where `c` is dense, indexed by basis position.
    /// The result `y` is dense, indexed by original row.
    pub fn btran(&mut self, c: &[f64], out: &mut Vec<f64>) {
        sparse::btran(self, c, out);
    }

    /// Record a pivot: basis position `pos` is replaced by a column whose
    /// FTRAN'd representation is `w` (dense, basis-position indexed).
    ///
    /// Returns `false` if the update's new pivot element is too small to
    /// be stable, in which case nothing is modified and the caller should
    /// refactorize and retry.
    pub fn update(&mut self, pos: usize, w: &[f64]) -> bool {
        ft_update::apply(self, pos, w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(entries: &[(u32, f64)]) -> SparseCol {
        entries.to_vec()
    }

    /// Build a factorization of the given dense matrix (column-major input).
    fn factor_of(cols: &[Vec<f64>]) -> Factorization {
        let m = cols.len();
        let sparse: Vec<SparseCol> = cols
            .iter()
            .map(|c| {
                c.iter()
                    .enumerate()
                    .filter(|(_, &v)| v != 0.0)
                    .map(|(i, &v)| (i as u32, v))
                    .collect()
            })
            .collect();
        let refs: Vec<&SparseCol> = sparse.iter().collect();
        let mut f = Factorization::new(m, 32, 1e-12);
        f.refactor(&refs).unwrap();
        f
    }

    fn matvec(cols: &[Vec<f64>], x: &[f64]) -> Vec<f64> {
        let m = cols.len();
        let mut out = vec![0.0; m];
        for (j, c) in cols.iter().enumerate() {
            for i in 0..m {
                out[i] += c[i] * x[j];
            }
        }
        out
    }

    #[test]
    fn ftran_identity() {
        let cols = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let mut f = factor_of(&cols);
        let mut w = Vec::new();
        f.ftran(&col(&[(0, 3.0), (1, 4.0)]), &mut w);
        assert_eq!(w, vec![3.0, 4.0]);
    }

    #[test]
    fn ftran_solves_general_3x3() {
        let cols = vec![vec![2.0, 1.0, 0.0], vec![0.0, 3.0, 1.0], vec![1.0, 0.0, 2.0]];
        let mut f = factor_of(&cols);
        let a = col(&[(0, 5.0), (1, 4.0), (2, 3.0)]);
        let mut w = Vec::new();
        f.ftran(&a, &mut w);
        let bx = matvec(&cols, &w);
        for (got, want) in bx.iter().zip([5.0, 4.0, 3.0]) {
            assert!((got - want).abs() < 1e-10, "{bx:?}");
        }
    }

    #[test]
    fn btran_solves_transpose() {
        let cols = vec![vec![2.0, 1.0, 0.0], vec![0.0, 3.0, 1.0], vec![1.0, 0.0, 2.0]];
        let mut f = factor_of(&cols);
        let c = [1.0, 2.0, 3.0];
        let mut y = Vec::new();
        f.btran(&c, &mut y);
        for (j, colj) in cols.iter().enumerate() {
            let dot: f64 = y.iter().zip(colj).map(|(a, b)| a * b).sum();
            assert!((dot - c[j]).abs() < 1e-10, "col {j}: {dot} vs {}", c[j]);
        }
    }

    #[test]
    fn slack_heavy_basis_has_no_fill() {
        // Mostly unit columns plus two sparse ones — mimics an LP basis.
        // Markowitz should eliminate it without any fill-in.
        let m = 8;
        let mut cols: Vec<Vec<f64>> = (0..m)
            .map(|j| {
                let mut c = vec![0.0; m];
                c[j] = 1.0;
                c
            })
            .collect();
        cols[3] = vec![1.0, 0.0, 2.0, 3.0, 0.0, 1.0, 0.0, 0.0];
        cols[6] = vec![0.0, 1.0, 0.0, 1.0, 2.0, 0.0, 4.0, 1.0];
        let mut f = factor_of(&cols);
        let nnz: usize = cols.iter().map(|c| c.iter().filter(|&&v| v != 0.0).count()).sum();
        assert!(f.factor_nnz() <= nnz, "fill-in on a near-triangular basis: {}", f.factor_nnz());
        let rhs: Vec<f64> = (0..m).map(|i| (i + 1) as f64).collect();
        let mut w = Vec::new();
        f.ftran_dense(&rhs, &mut w);
        let bx = matvec(&cols, &w);
        for (got, want) in bx.iter().zip(&rhs) {
            assert!((got - want).abs() < 1e-9, "{bx:?}");
        }
        let c: Vec<f64> = (0..m).map(|i| ((i * 7) % 5) as f64 - 2.0).collect();
        let mut y = Vec::new();
        f.btran(&c, &mut y);
        for (j, colj) in cols.iter().enumerate() {
            let dot: f64 = y.iter().zip(colj).map(|(a, b)| a * b).sum();
            assert!((dot - c[j]).abs() < 1e-9);
        }
    }

    #[test]
    fn singular_matrix_detected() {
        let cols = [vec![1.0, 2.0], vec![2.0, 4.0]];
        let sparse: Vec<SparseCol> = cols
            .iter()
            .map(|c| c.iter().enumerate().map(|(i, &v)| (i as u32, v)).collect())
            .collect();
        let refs: Vec<&SparseCol> = sparse.iter().collect();
        let mut f = Factorization::new(2, 32, 1e-12);
        assert!(matches!(f.refactor(&refs), Err(FactorError::Singular { .. })));
    }

    #[test]
    fn ft_update_matches_refactor() {
        let ident = vec![vec![1.0, 0.0, 0.0], vec![0.0, 1.0, 0.0], vec![0.0, 0.0, 1.0]];
        let mut f = factor_of(&ident);
        let a = col(&[(0, 1.0), (1, 2.0), (2, 1.0)]);
        let mut w = Vec::new();
        f.ftran(&a, &mut w);
        assert!(f.update(1, &w));
        let newb = vec![vec![1.0, 0.0, 0.0], vec![1.0, 2.0, 1.0], vec![0.0, 0.0, 1.0]];
        let rhs = col(&[(0, 2.0), (1, 7.0), (2, 5.0)]);
        let mut via_eta = Vec::new();
        f.ftran(&rhs, &mut via_eta);
        let mut fresh = factor_of(&newb);
        let mut via_fresh = Vec::new();
        fresh.ftran(&rhs, &mut via_fresh);
        for (a, b) in via_eta.iter().zip(&via_fresh) {
            assert!((a - b).abs() < 1e-10, "{via_eta:?} vs {via_fresh:?}");
        }
        let c = [3.0, 1.0, -2.0];
        let mut y1 = Vec::new();
        let mut y2 = Vec::new();
        f.btran(&c, &mut y1);
        fresh.btran(&c, &mut y2);
        for (a, b) in y1.iter().zip(&y2) {
            assert!((a - b).abs() < 1e-10, "{y1:?} vs {y2:?}");
        }
    }

    #[test]
    fn repeated_ft_updates_stay_consistent() {
        // Chain several updates on a non-trivial basis and cross-check
        // against a fresh factorization of the final column set.
        let m = 6;
        let mut cols: Vec<Vec<f64>> = (0..m)
            .map(|j| {
                let mut c = vec![0.0; m];
                c[j] = 2.0;
                c[(j + 2) % m] = 1.0;
                c
            })
            .collect();
        let mut f = factor_of(&cols);
        for (step, &(pos, shift)) in [(1usize, 3usize), (4, 1), (1, 5), (2, 4)].iter().enumerate() {
            let mut newcol = vec![0.0; m];
            newcol[pos] = 3.0;
            newcol[(pos + shift) % m] = -1.0;
            newcol[(pos + 1) % m] += 0.5;
            let a: SparseCol = newcol
                .iter()
                .enumerate()
                .filter(|(_, &v)| v != 0.0)
                .map(|(i, &v)| (i as u32, v))
                .collect();
            let mut w = Vec::new();
            f.ftran(&a, &mut w);
            assert!(f.update(pos, &w), "step {step} rejected");
            cols[pos] = newcol;
        }
        let mut fresh = factor_of(&cols);
        let rhs: Vec<f64> = (0..m).map(|i| (i as f64) - 2.5).collect();
        let (mut w1, mut w2) = (Vec::new(), Vec::new());
        f.ftran_dense(&rhs, &mut w1);
        fresh.ftran_dense(&rhs, &mut w2);
        for (a, b) in w1.iter().zip(&w2) {
            assert!((a - b).abs() < 1e-9, "{w1:?} vs {w2:?}");
        }
        let (mut y1, mut y2) = (Vec::new(), Vec::new());
        f.btran(&rhs, &mut y1);
        fresh.btran(&rhs, &mut y2);
        for (a, b) in y1.iter().zip(&y2) {
            assert!((a - b).abs() < 1e-9, "{y1:?} vs {y2:?}");
        }
        assert_eq!(f.stats().ft_updates, 4);
    }

    #[test]
    fn tiny_pivot_update_rejected() {
        let ident = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let mut f = factor_of(&ident);
        let w = vec![1.0, 1e-15];
        assert!(!f.update(1, &w));
        assert_eq!(f.stats().pivot_rejections, 1);
        // Nothing was committed: the factorization still solves the
        // identity exactly.
        let mut out = Vec::new();
        f.ftran_dense(&[5.0, 7.0], &mut out);
        assert_eq!(out, vec![5.0, 7.0]);
    }

    #[test]
    fn wants_refactor_after_limit() {
        let ident = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let mut f = factor_of(&ident);
        f.max_etas = 2;
        assert!(f.update(0, &[1.0, 0.0]));
        assert!(!f.wants_refactor());
        assert!(f.update(1, &[0.0, 1.0]));
        assert!(f.wants_refactor());
    }

    #[test]
    fn zero_max_etas_selects_default() {
        let f = Factorization::new(4, 0, 1e-9);
        assert_eq!(f.max_etas, DEFAULT_MAX_ETAS);
        let f = Factorization::new(4, 7, 1e-9);
        assert_eq!(f.max_etas, 7);
    }

    /// Randomized cross-check: Markowitz LU must solve arbitrary sparse
    /// systems exactly, and agree with the dense-bump reference kernel.
    #[test]
    fn random_sparse_systems_roundtrip() {
        let mut seed = 0xDEADBEEFu64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed >> 11) as f64 / (1u64 << 53) as f64
        };
        for trial in 0..20 {
            let m = 12 + trial % 5;
            // Diagonal-dominant sparse matrix: invertible with high prob.
            let mut cols: Vec<Vec<f64>> = vec![vec![0.0; m]; m];
            for (j, colj) in cols.iter_mut().enumerate() {
                colj[j] = 2.0 + next();
                for (i, cij) in colj.iter_mut().enumerate() {
                    if i != j && next() < 0.2 {
                        *cij = next() - 0.5;
                    }
                }
            }
            let mut f = factor_of(&cols);
            let rhs: Vec<f64> = (0..m).map(|_| next() * 4.0 - 2.0).collect();
            let mut w = Vec::new();
            f.ftran_dense(&rhs, &mut w);
            let bx = matvec(&cols, &w);
            for (got, want) in bx.iter().zip(&rhs) {
                assert!((got - want).abs() < 1e-8, "trial {trial}");
            }
            let mut y = Vec::new();
            f.btran(&rhs, &mut y);
            for (j, colj) in cols.iter().enumerate() {
                let dot: f64 = y.iter().zip(colj).map(|(a, b)| a * b).sum();
                assert!((dot - rhs[j]).abs() < 1e-8, "trial {trial} col {j}");
            }
        }
    }
}
