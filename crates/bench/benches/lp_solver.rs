//! LP-solver microbenchmarks plus the Theorem 4.2 encoding ablation
//! (sorting network, O(kT) rows, vs CVaR, O(T) rows — same optimum).

use pretium_bench::{black_box, Harness};
use pretium_core::{topk_upper_bound, TopkEncoding};
use pretium_lp::{Cmp, LinExpr, Model, Sense};

/// Balanced transportation problem with `n` sources and sinks.
fn transportation(n: usize) -> Model {
    let mut m = Model::new(Sense::Minimize);
    let mut vars = Vec::new();
    for i in 0..n {
        for j in 0..n {
            let cost = 1.0 + ((i * 7 + j * 13) % 10) as f64;
            vars.push(m.add_nonneg(&format!("x{i}_{j}"), cost));
        }
    }
    for i in 0..n {
        let e = LinExpr::from_terms((0..n).map(|j| (1.0, vars[i * n + j])));
        m.add_row(&format!("s{i}"), e, Cmp::Le, 10.0);
    }
    for j in 0..n {
        let e = LinExpr::from_terms((0..n).map(|i| (1.0, vars[i * n + j])));
        m.add_row(&format!("d{j}"), e, Cmp::Ge, 8.0);
    }
    m
}

fn bench_simplex(h: &mut Harness) {
    for n in [5usize, 10, 20] {
        let m = transportation(n);
        h.bench_function(&format!("simplex_transportation/{n}"), |b| {
            b.iter(|| black_box(m.solve().unwrap().objective()));
        });
    }
}

fn bench_topk_encodings(h: &mut Harness) {
    for (enc, name) in
        [(TopkEncoding::SortingNetwork, "sorting_network"), (TopkEncoding::CVar, "cvar")]
    {
        for t in [24usize, 48] {
            let k = (t as f64 * 0.1).ceil() as usize;
            h.bench_function(&format!("topk_encoding/{name}/{t}"), |b| {
                b.iter(|| {
                    let mut m = Model::new(Sense::Minimize);
                    let xs: Vec<_> = (0..t)
                        .map(|i| {
                            let v = ((i * 31) % 17) as f64;
                            m.add_var(&format!("x{i}"), v, v, 0.0)
                        })
                        .collect();
                    let s = topk_upper_bound(&mut m, &xs, k, enc, "e");
                    m.set_obj(s, 1.0);
                    black_box(m.solve().unwrap().value(s))
                });
            });
        }
    }
}

fn bench_lazy_schedule(h: &mut Harness) {
    use pretium_core::{schedule, Job, ScheduleProblem};
    use pretium_net::{topology, EdgeId, PathSet, TimeGrid};
    let net = topology::default_eval(3);
    let grid = TimeGrid::new(12, 30);
    let mut paths = PathSet::new(2);
    let nodes: Vec<_> = net.node_ids().collect();
    let mut jobs = Vec::new();
    for i in 0..30 {
        let s = nodes[i % nodes.len()];
        let d = nodes[(i * 5 + 3) % nodes.len()];
        if s == d {
            continue;
        }
        let p = paths.paths(&net, s, d).to_vec();
        if p.is_empty() {
            continue;
        }
        jobs.push(Job::new(i, p, i % 6, 6 + i % 6, 1.0 + (i % 4) as f64, 0.0, 20.0));
    }
    h.bench_function("schedule_lp_30jobs_12steps", |b| {
        b.iter(|| {
            let cap = |e: EdgeId, _t: usize| net.edge(e).capacity * 0.9;
            let zero = |_: EdgeId, _: usize| 0.0;
            let problem = ScheduleProblem {
                net: &net,
                grid: &grid,
                from: 0,
                to: 12,
                jobs: &jobs,
                capacity: &cap,
                realized: &zero,
                topk: TopkEncoding::CVar,
                cost_scale: 1.0,
            };
            black_box(schedule::solve(&problem).unwrap().objective)
        });
    });
}

fn main() {
    let mut h = Harness::new().sample_size(10);
    bench_simplex(&mut h);
    bench_topk_encodings(&mut h);
    bench_lazy_schedule(&mut h);
}
