//! End-to-end tests of the Pretium façade: the Figure 2 worked example and
//! full RA → SAM → execute → PC loops on small networks.

use pretium_core::{Pretium, PretiumConfig, PriceBump, RequestParams};
use pretium_net::{topology, LinkCost, Network, Region, TimeGrid, UsageTracker};
use pretium_workload::RequestId;

fn params(
    id: u64,
    src: u32,
    dst: u32,
    demand: f64,
    start: usize,
    deadline: usize,
) -> RequestParams {
    RequestParams {
        id: RequestId(id),
        src: pretium_net::NodeId(src),
        dst: pretium_net::NodeId(dst),
        demand,
        arrival: start,
        start,
        deadline,
    }
}

/// The paper's Figure 2 example: with the prices the paper derives,
/// Pretium's admission + user responses recover the maximum welfare of 34.
#[test]
fn figure2_example_reaches_welfare_34() {
    let (net, [a, b, c, d]) = topology::paper_example();
    let ab = net.find_edge(a, b).unwrap();
    let ac = net.find_edge(a, c).unwrap();
    let cd = net.find_edge(c, d).unwrap();
    let grid = TimeGrid::new(2, 30);
    let cfg = PretiumConfig {
        highpri_fraction: 0.0,
        bump: PriceBump::disabled(),
        k_paths: 2,
        ..Default::default()
    };
    let mut pretium = Pretium::new(net, grid, 2, cfg);
    // The prices §3.2 says Pretium would set: (A,B) 8 then 4; (C,D) 4 then
    // 1; (A,C) free.
    pretium.set_price(ab, 0, 8.0);
    pretium.set_price(ab, 1, 4.0);
    pretium.set_price(cd, 0, 4.0);
    pretium.set_price(cd, 1, 1.0);
    pretium.set_price(ac, 0, 0.0);
    pretium.set_price(ac, 1, 0.0);

    // Requests in arrival order: (src, dst, value, demand, window).
    let reqs = [
        (a, b, 8.0, 2.0, 0usize, 0usize), // R1: [0,1] = step 0 only
        (a, b, 4.0, 2.0, 0, 1),           // R2: [0,2] = both steps
        (a, d, 4.0, 2.0, 0, 0),           // R3
        (c, d, 1.0, 4.0, 0, 1),           // R4
    ];
    let mut welfare = 0.0;
    for (i, &(src, dst, value, demand, start, deadline)) in reqs.iter().enumerate() {
        let p = RequestParams {
            id: RequestId(i as u64),
            src,
            dst,
            demand,
            arrival: start,
            start,
            deadline,
        };
        let (_menu, id) = pretium.admit_one(&p, |menu| menu.optimal_purchase(value, demand));
        if let Some(id) = id {
            welfare += value * pretium.contract(id).purchased;
        }
    }
    assert!((welfare - 34.0).abs() < 1e-6, "welfare {welfare}");
    // Expected purchases: R1=2, R2=2, R3=2, R4=2.
    let purchases: Vec<f64> = pretium.contracts().iter().map(|c| c.purchased).collect();
    assert_eq!(purchases.len(), 4);
    for (i, &x) in purchases.iter().enumerate() {
        assert!((x - 2.0).abs() < 1e-9, "R{}: {x}", i + 1);
    }
    // R2 must have been deferred to step 1 (cheaper and R1 filled step 0).
    let r2 = &pretium.contracts()[1];
    assert!(r2.plan.iter().all(|&(_, t, _)| t == 1), "{:?}", r2.plan);
}

/// Full loop: requests arrive over two windows; SAM runs each step, PC at
/// the window boundary; all guarantees must be met and prices must rise on
/// the congested link after recomputation.
#[test]
fn full_loop_meets_guarantees_and_adapts_prices() {
    // Single congested edge A -> B.
    let mut net = Network::new();
    let a = net.add_node("A", Region::NorthAmerica);
    let b = net.add_node("B", Region::Europe);
    net.add_edge(a, b, 10.0, LinkCost::owned());
    let e = net.find_edge(a, b).unwrap();
    let grid = TimeGrid::new(4, 30);
    let horizon = 8;
    let cfg = PretiumConfig {
        highpri_fraction: 0.0,
        k_paths: 1,
        price_floor: 0.01,
        ..Default::default()
    };
    let mut pretium = Pretium::new(net.clone(), grid, horizon, cfg);
    let mut usage = UsageTracker::new(net.num_edges(), horizon);

    // Window 0: heavy demand (3 requests of 35 units each over 4 steps of
    // capacity 10 = 40 sellable units). The first buyer reaches into the
    // bumped price segment (λ = 2× the base price) and demand stays
    // unserved in hindsight, so the capacity duals — and hence the next
    // window's prices — rise above the cold-start floor.
    let mut accepted = Vec::new();
    for t in 0..horizon {
        if grid.step_in_window(t) == 0 && t > 0 {
            pretium.run_pc(t).unwrap();
        }
        if t < 3 {
            let p = params(t as u64, 0, 1, 35.0, t, 3);
            let (_menu, id) = pretium.admit_one(&p, |menu| menu.optimal_purchase(10.0, p.demand));
            if let Some(id) = id {
                accepted.push(id);
            }
        }
        pretium.run_sam(t, &usage).unwrap();
        pretium.execute_step(t, &mut usage);
    }
    // The first two requests exhaust the sellable capacity; the third is
    // priced out / offered x̄ = 0 (admission control at work).
    assert_eq!(accepted.len(), 2);
    for &id in &accepted {
        let c = pretium.contract(id);
        assert!(
            c.guarantee_met(),
            "contract {:?}: delivered {} < guaranteed {}",
            c.params.id,
            c.delivered,
            c.guaranteed
        );
    }
    // No capacity violations on the wire.
    assert!(usage.capacity_violations(&net, 1e-6).is_empty());
    // After PC, prices in window 1 should be above the cold-start floor on
    // the congested edge (its capacity rows were binding in hindsight).
    let p_w1 = pretium.state().price(e, grid.window_start(1));
    assert!(p_w1 > 0.01 + 1e-9, "expected congestion-driven price, got {p_w1}");
    assert_eq!(pretium.pc_runs(), 1);
    // Debug builds audit every checkpoint; the loop must be violation-free.
    let aud = pretium.auditor().unwrap();
    assert!(aud.is_clean(), "{:?}", aud.violations());
}

/// Deferred cheap traffic: a flexible low-value request admitted during a
/// peak is scheduled into the off-peak steps by the menu itself.
#[test]
fn menus_defer_flexible_requests_off_peak() {
    let mut net = Network::new();
    let a = net.add_node("A", Region::NorthAmerica);
    let b = net.add_node("B", Region::NorthAmerica);
    net.add_edge(a, b, 10.0, LinkCost::owned());
    let e = net.find_edge(a, b).unwrap();
    let grid = TimeGrid::new(4, 30);
    let cfg = PretiumConfig {
        highpri_fraction: 0.0,
        bump: PriceBump::disabled(),
        k_paths: 1,
        ..Default::default()
    };
    let mut pretium = Pretium::new(net, grid, 4, cfg);
    // Peak pricing at steps 0-1, cheap at 2-3.
    pretium.set_price(e, 0, 2.0);
    pretium.set_price(e, 1, 2.0);
    pretium.set_price(e, 2, 0.5);
    pretium.set_price(e, 3, 0.5);
    let p = params(0, 0, 1, 15.0, 0, 3);
    // Value 1.0: only the cheap steps (20 units at 0.5) clear the bar.
    let mut units = 0.0;
    let (_menu, id) = pretium.admit_one(&p, |menu| {
        units = menu.optimal_purchase(1.0, p.demand);
        units
    });
    assert!((units - 15.0).abs() < 1e-9);
    let id = id.unwrap();
    let c = pretium.contract(id);
    assert!(
        c.plan.iter().all(|&(_, t, _)| t >= 2),
        "flexible request should ride off-peak: {:?}",
        c.plan
    );
    assert!((c.payment - 15.0 * 0.5).abs() < 1e-9);
    assert!((c.lambda - 0.5).abs() < 1e-12);
}

/// SAM reroutes around an injected capacity loss so guarantees still hold.
#[test]
fn sam_reroutes_after_fault() {
    // Two disjoint 2-hop routes S->T.
    let mut net = Network::new();
    let s = net.add_node("S", Region::NorthAmerica);
    let m1 = net.add_node("M1", Region::NorthAmerica);
    let m2 = net.add_node("M2", Region::NorthAmerica);
    let t = net.add_node("T", Region::NorthAmerica);
    net.add_edge(s, m1, 10.0, LinkCost::owned());
    net.add_edge(m1, t, 10.0, LinkCost::owned());
    net.add_edge(s, m2, 10.0, LinkCost::owned());
    net.add_edge(m2, t, 10.0, LinkCost::owned());
    let sm1 = net.find_edge(s, m1).unwrap();
    let grid = TimeGrid::new(4, 30);
    let cfg = PretiumConfig { highpri_fraction: 0.0, k_paths: 2, ..Default::default() };
    let mut pretium = Pretium::new(net.clone(), grid, 4, cfg);
    let mut usage = UsageTracker::new(net.num_edges(), 4);
    let p = params(0, 0, 3, 20.0, 0, 3);
    let (_menu, id) = pretium.admit_one(&p, |menu| menu.optimal_purchase(5.0, p.demand));
    let id = id.unwrap();
    assert!((pretium.contract(id).guaranteed - 20.0).abs() < 1e-6);
    // Step 0 executes normally.
    pretium.run_sam(0, &usage).unwrap();
    pretium.execute_step(0, &mut usage);
    // Fault: route via M1 loses 100% capacity for the remaining steps.
    pretium.inject_capacity_loss(sm1, 1, 4, 1.0);
    for now in 1..4 {
        pretium.run_sam(now, &usage).unwrap();
        pretium.execute_step(now, &mut usage);
    }
    let c = pretium.contract(id);
    assert!(c.guarantee_met(), "delivered {} of guaranteed {}", c.delivered, c.guaranteed);
    // Everything after the fault must avoid S->M1.
    for t_ in 1..4 {
        assert!(usage.at(sm1, t_) < 1e-9, "flow on dead link at t={t_}");
    }
    assert!(usage.capacity_violations(&net, 1e-6).is_empty());
    // Rerouting kept the shared state consistent: SAM's replans after the
    // fault must leave no oversubscription or unbacked plan behind.
    let aud = pretium.auditor().unwrap();
    assert!(aud.is_clean(), "{:?}", aud.violations());
}

/// The NoSAM ablation leaves preliminary schedules untouched.
#[test]
fn nosam_keeps_preliminary_plan() {
    let mut net = Network::new();
    let a = net.add_node("A", Region::NorthAmerica);
    let b = net.add_node("B", Region::NorthAmerica);
    net.add_edge(a, b, 10.0, LinkCost::owned());
    let grid = TimeGrid::new(4, 30);
    let cfg = PretiumConfig {
        highpri_fraction: 0.0,
        sam_enabled: false,
        k_paths: 1,
        ..Default::default()
    };
    let mut pretium = Pretium::new(net.clone(), grid, 4, cfg);
    let mut usage = UsageTracker::new(net.num_edges(), 4);
    let p = params(0, 0, 1, 8.0, 0, 3);
    let id = pretium.admit_one(&p, |_| 8.0).1.unwrap();
    let plan_before = pretium.contract(id).plan.clone();
    pretium.run_sam(0, &usage).unwrap();
    assert_eq!(pretium.contract(id).plan, plan_before);
    for t in 0..4 {
        pretium.execute_step(t, &mut usage);
    }
    assert!(pretium.contract(id).completed());
}

/// Accepting more than the guarantee bound yields best-effort extra units.
#[test]
fn purchase_beyond_bound_guarantees_only_xbar() {
    let mut net = Network::new();
    let a = net.add_node("A", Region::NorthAmerica);
    let b = net.add_node("B", Region::NorthAmerica);
    net.add_edge(a, b, 10.0, LinkCost::owned());
    let grid = TimeGrid::new(2, 30);
    let cfg = PretiumConfig {
        highpri_fraction: 0.0,
        bump: PriceBump::disabled(),
        k_paths: 1,
        ..Default::default()
    };
    let mut pretium = Pretium::new(net, grid, 2, cfg);
    let p = params(0, 0, 1, 30.0, 0, 1);
    // Customer insists on 30 units.
    let (menu, id) = pretium.admit_one(&p, |_| 30.0);
    assert!((menu.capacity_bound() - 20.0).abs() < 1e-9);
    let id = id.unwrap();
    let c = pretium.contract(id);
    assert!((c.purchased - 30.0).abs() < 1e-9);
    assert!((c.guaranteed - 20.0).abs() < 1e-9);
}

/// A snapshot superseded while its `Arc` is still held (a pool worker
/// mid-quote) must not lose quote counters: whatever is recorded after the
/// retirement drain flows through the pending sink on `Drop` and lands in
/// telemetry at the next epoch bump.
#[test]
fn superseded_snapshot_quotes_drain_on_drop() {
    let mut net = Network::new();
    let a = net.add_node("A", Region::NorthAmerica);
    let b = net.add_node("B", Region::NorthAmerica);
    let e = net.add_edge(a, b, 10.0, LinkCost::owned());
    let grid = TimeGrid::new(4, 30);
    let cfg = PretiumConfig {
        highpri_fraction: 0.0,
        bump: PriceBump::disabled(),
        k_paths: 1,
        ..Default::default()
    };
    let mut pretium = Pretium::new(net, grid, 4, cfg);
    let snap = pretium.snapshot();
    let p = params(0, 0, 1, 5.0, 0, 3);
    snap.quote(&p);
    // Retire the published snapshot (epoch bump) while we still hold it.
    pretium.set_price(e, 0, 1.0);
    assert_eq!(pretium.telemetry().quote.calls, 1);
    // A worker still quoting against the superseded snapshot.
    snap.quote(&p);
    snap.quote(&p);
    drop(snap);
    // Next epoch bump flushes the pending sink: nothing was lost.
    pretium.set_price(e, 0, 2.0);
    assert_eq!(pretium.telemetry().quote.calls, 3);
}
