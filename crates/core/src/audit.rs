//! Network-state invariant auditing (the correctness counterpart of §5's
//! incentive guarantees).
//!
//! The RA, SAM and PC all mutate one shared [`NetworkState`], and the
//! paper's service guarantees rest on invariants none of the modules can
//! verify locally: reservations must fit under the sellable capacity,
//! every contract's plan must be backed by reservations, money must stay
//! finite, prices must respect the per-edge floor, and SAM must keep
//! planning enough to cover each outstanding guarantee. The [`Auditor`]
//! sweeps the full state after each module checkpoint and *records*
//! violations rather than panicking: graceful degradation (§4.4 — e.g. a
//! guarantee that becomes uncoverable after a link failure) is a reportable
//! condition, not a crash.
//!
//! Auditing is always on in debug/test builds and opt-in via
//! [`crate::PretiumConfig::audit`] in release builds, so the evaluation
//! replay can run audited end-to-end.

use crate::contract::{Contract, ContractId};
use crate::degradation::ViolationLedger;
use crate::state::{NetworkState, RESERVE_REL_TOL};
use pretium_net::{EdgeId, Network, Path, Timestep};
use rand::DetHashMap as HashMap;
use std::fmt;

/// Which module checkpoint triggered an audit sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditPoint {
    /// After the RA booked a contract.
    Accept,
    /// After SAM installed re-optimized plans.
    Sam,
    /// After the PC rewrote future prices.
    Pc,
    /// After a timestep's planned flows executed.
    Execute,
}

impl fmt::Display for AuditPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AuditPoint::Accept => "accept",
            AuditPoint::Sam => "sam",
            AuditPoint::Pc => "pc",
            AuditPoint::Execute => "execute",
        };
        f.write_str(s)
    }
}

/// The invariant classes the auditor verifies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Invariant {
    /// (1) `reserved(e, t) ≤ sellable_capacity(e, t)` at every link-step.
    LinkOversubscription,
    /// (2) Every contract's planned flows are fully backed by reservations.
    UnbackedPlan,
    /// (3) `delivered ≤ purchased + ε`, `guaranteed ≤ purchased + ε`, and
    /// all payments / λ / planned units finite and non-negative.
    ContractAccounting,
    /// (4) Once the PC has run, every future price sits at or above the
    /// per-edge floor.
    PriceFloor,
    /// (5) For every active contract, delivered plus planned units cover
    /// the (effective, post-waiver) guarantee.
    GuaranteeCoverage,
    /// (6) Degradation accounting (§4.4): each contract's waived units
    /// match its violation-ledger total, and a contract past its deadline
    /// has every guaranteed unit either delivered or waived with a booked
    /// penalty — a missed guarantee that never reached the ledger means
    /// the run silently dropped a promise.
    GuaranteeLedger,
}

impl Invariant {
    /// Stable index used for per-invariant counters.
    pub const COUNT: usize = 6;

    fn index(self) -> usize {
        match self {
            Invariant::LinkOversubscription => 0,
            Invariant::UnbackedPlan => 1,
            Invariant::ContractAccounting => 2,
            Invariant::PriceFloor => 3,
            Invariant::GuaranteeCoverage => 4,
            Invariant::GuaranteeLedger => 5,
        }
    }

    /// All invariant classes, in counter order.
    pub fn all() -> [Invariant; Invariant::COUNT] {
        [
            Invariant::LinkOversubscription,
            Invariant::UnbackedPlan,
            Invariant::ContractAccounting,
            Invariant::PriceFloor,
            Invariant::GuaranteeCoverage,
            Invariant::GuaranteeLedger,
        ]
    }

    pub fn name(self) -> &'static str {
        match self {
            Invariant::LinkOversubscription => "link-oversubscription",
            Invariant::UnbackedPlan => "unbacked-plan",
            Invariant::ContractAccounting => "contract-accounting",
            Invariant::PriceFloor => "price-floor",
            Invariant::GuaranteeCoverage => "guarantee-coverage",
            Invariant::GuaranteeLedger => "guarantee-ledger",
        }
    }
}

/// One recorded invariant violation.
#[derive(Debug, Clone)]
pub struct Violation {
    pub point: AuditPoint,
    /// Simulation timestep of the audit sweep that caught it.
    pub now: Timestep,
    pub invariant: Invariant,
    /// Human-readable specifics (which link/contract, by how much).
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[t={} after {}] {}: {}",
            self.now,
            self.point,
            self.invariant.name(),
            self.detail
        )
    }
}

/// Everything an audit sweep reads. Borrowed from the running
/// [`crate::Pretium`] instance (the auditor itself holds no state
/// references, so it can also be driven standalone in tests).
pub struct AuditContext<'a> {
    pub net: &'a Network,
    pub state: &'a NetworkState,
    pub contracts: &'a [Contract],
    /// Admissible route set per contract (parallel to `contracts`).
    pub contract_paths: &'a [Vec<Path>],
    /// Per-edge price floor (indexed by `EdgeId::index`).
    pub floors: &'a [f64],
    /// Whether the price computer has produced prices yet (the floor
    /// invariant only binds after the first PC run; cold-start and
    /// manually-seeded prices are exempt).
    pub pc_has_run: bool,
    /// The degradation ledger, when the caller keeps one: the auditor
    /// cross-checks each contract's waived units against it. `None` skips
    /// the ledger-total match (standalone drives without a ledger) but the
    /// no-silent-drop deadline check still runs on `Contract::waived`.
    pub ledger: Option<&'a ViolationLedger>,
    /// Current simulation timestep.
    pub now: Timestep,
}

/// Sweeps [`NetworkState`] invariants at module checkpoints and records
/// violations. Never panics — callers decide whether a dirty report is
/// fatal.
#[derive(Debug, Clone)]
pub struct Auditor {
    /// Relative float tolerance (matches the reservation assert in
    /// [`NetworkState::reserve`]).
    rel_tol: f64,
    /// Absolute slack for comparisons around zero.
    abs_tol: f64,
    /// Cap on stored [`Violation`] records (counters keep exact totals).
    max_recorded: usize,
    checks: u64,
    total: u64,
    by_invariant: [u64; Invariant::COUNT],
    violations: Vec<Violation>,
}

impl Default for Auditor {
    fn default() -> Self {
        Auditor {
            rel_tol: RESERVE_REL_TOL,
            abs_tol: 1e-6,
            max_recorded: 256,
            checks: 0,
            total: 0,
            by_invariant: [0; Invariant::COUNT],
            violations: Vec::new(),
        }
    }
}

impl Auditor {
    pub fn new() -> Self {
        Auditor::default()
    }

    /// Number of audit sweeps run.
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// Total violations found (including any beyond the recording cap).
    pub fn total_violations(&self) -> u64 {
        self.total
    }

    /// Violations of one invariant class.
    pub fn violations_of(&self, inv: Invariant) -> u64 {
        self.by_invariant[inv.index()]
    }

    /// The recorded violation details (capped; see
    /// [`Auditor::total_violations`] for the exact count).
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// True when no sweep has found any violation.
    pub fn is_clean(&self) -> bool {
        self.total == 0
    }

    /// Summary rows for table rendering: sweeps, totals, and one row per
    /// invariant class.
    pub fn summary_rows(&self) -> Vec<(String, String)> {
        let mut rows = vec![
            ("audit sweeps".into(), self.checks.to_string()),
            ("violations (total)".into(), self.total.to_string()),
        ];
        for inv in Invariant::all() {
            rows.push((format!("  {}", inv.name()), self.violations_of(inv).to_string()));
        }
        rows
    }

    fn record(&mut self, point: AuditPoint, now: Timestep, invariant: Invariant, detail: String) {
        self.total += 1;
        self.by_invariant[invariant.index()] += 1;
        if self.violations.len() < self.max_recorded {
            self.violations.push(Violation { point, now, invariant, detail });
        }
    }

    /// Run every invariant check against `cx`. Returns the number of new
    /// violations found by this sweep.
    pub fn check(&mut self, point: AuditPoint, cx: &AuditContext<'_>) -> u64 {
        self.checks += 1;
        let before = self.total;
        self.check_oversubscription(point, cx);
        self.check_plan_backing(point, cx);
        self.check_contract_accounting(point, cx);
        self.check_price_floor(point, cx);
        self.check_guarantee_coverage(point, cx);
        self.check_guarantee_ledger(point, cx);
        self.total - before
    }

    /// (1) No link carries more reservations than its sellable capacity.
    fn check_oversubscription(&mut self, point: AuditPoint, cx: &AuditContext<'_>) {
        for e in cx.net.edge_ids() {
            for t in 0..cx.state.horizon() {
                let reserved = cx.state.reserved(e, t);
                let cap = cx.state.sellable_capacity(e, t);
                if reserved > cap * (1.0 + self.rel_tol) + self.abs_tol {
                    self.record(
                        point,
                        cx.now,
                        Invariant::LinkOversubscription,
                        format!("{e} at t={t}: reserved {reserved} > sellable {cap}"),
                    );
                }
            }
        }
    }

    /// (2) Summed over contracts, the planned flows crossing each `(e, t)`
    /// never exceed what is reserved there. Plans may *under*-use
    /// reservations (executed steps keep their reservations around), but a
    /// plan exceeding them means `execute_step` would bill usage the
    /// network never set aside — exactly the accounting bug class this
    /// auditor exists to catch.
    fn check_plan_backing(&mut self, point: AuditPoint, cx: &AuditContext<'_>) {
        let mut planned: HashMap<(EdgeId, Timestep), f64> = HashMap::default();
        for (i, c) in cx.contracts.iter().enumerate() {
            for &(pi, t, units) in &c.plan {
                if units <= 0.0 {
                    continue;
                }
                for &e in cx.contract_paths[i][pi].edges() {
                    *planned.entry((e, t)).or_insert(0.0) += units;
                }
            }
        }
        for (&(e, t), &units) in &planned {
            let reserved = cx.state.reserved(e, t);
            if units > reserved * (1.0 + self.rel_tol) + self.abs_tol {
                self.record(
                    point,
                    cx.now,
                    Invariant::UnbackedPlan,
                    format!("{e} at t={t}: planned {units} > reserved {reserved}"),
                );
            }
        }
    }

    /// (3) Per-contract accounting stays sane and finite.
    fn check_contract_accounting(&mut self, point: AuditPoint, cx: &AuditContext<'_>) {
        for (i, c) in cx.contracts.iter().enumerate() {
            let mut problems: Vec<String> = Vec::new();
            if !(c.payment.is_finite() && c.payment >= 0.0) {
                problems.push(format!("payment {}", c.payment));
            }
            if !(c.lambda.is_finite() && c.lambda >= 0.0) {
                problems.push(format!("lambda {}", c.lambda));
            }
            if c.delivered > c.purchased * (1.0 + self.rel_tol) + self.abs_tol {
                problems.push(format!("delivered {} > purchased {}", c.delivered, c.purchased));
            }
            if c.guaranteed > c.purchased * (1.0 + self.rel_tol) + self.abs_tol {
                problems.push(format!("guaranteed {} > purchased {}", c.guaranteed, c.purchased));
            }
            if c.plan.iter().any(|&(_, _, u)| !u.is_finite() || u < 0.0) {
                problems.push("non-finite or negative planned units".into());
            }
            for p in problems {
                self.record(
                    point,
                    cx.now,
                    Invariant::ContractAccounting,
                    format!("contract {i} ({:?}): {p}", c.params.id),
                );
            }
        }
    }

    /// (4) After the PC has run, future prices respect the per-edge floor.
    fn check_price_floor(&mut self, point: AuditPoint, cx: &AuditContext<'_>) {
        if !cx.pc_has_run {
            return;
        }
        for e in cx.net.edge_ids() {
            let floor = cx.floors[e.index()];
            for t in cx.now..cx.state.horizon() {
                let p = cx.state.price(e, t);
                if p < floor - self.abs_tol {
                    self.record(
                        point,
                        cx.now,
                        Invariant::PriceFloor,
                        format!("{e} at t={t}: price {p} below floor {floor}"),
                    );
                }
            }
        }
    }

    /// (5) Every active contract's *effective* guarantee (original minus
    /// units waived under §4.4 degradation) is covered by what was
    /// delivered plus what remains planned. Delivered units may double-count
    /// plan entries at already-executed steps — that only slackens the
    /// check, never tightens it, so it cannot produce false positives.
    fn check_guarantee_coverage(&mut self, point: AuditPoint, cx: &AuditContext<'_>) {
        for (i, c) in cx.contracts.iter().enumerate() {
            if !c.active_at(cx.now) {
                continue;
            }
            let planned: f64 = c.plan.iter().map(|&(_, _, u)| u).sum();
            let covered = c.delivered + planned;
            let target = c.effective_guarantee();
            if covered < target * (1.0 - self.rel_tol) - self.abs_tol {
                self.record(
                    point,
                    cx.now,
                    Invariant::GuaranteeCoverage,
                    format!(
                        "contract {i} ({:?}): delivered {} + planned {planned} < guaranteed {target}",
                        c.params.id, c.delivered
                    ),
                );
            }
        }
    }

    /// (6) Degradation accounting: `waived` stays within `[0, guaranteed]`
    /// and matches the ledger's per-contract total, and once the deadline
    /// has passed every guaranteed unit is delivered or ledgered — missed
    /// guarantees must never vanish without a penalty record.
    fn check_guarantee_ledger(&mut self, point: AuditPoint, cx: &AuditContext<'_>) {
        for (i, c) in cx.contracts.iter().enumerate() {
            if c.waived < -self.abs_tol
                || c.waived > c.guaranteed * (1.0 + self.rel_tol) + self.abs_tol
            {
                self.record(
                    point,
                    cx.now,
                    Invariant::GuaranteeLedger,
                    format!(
                        "contract {i} ({:?}): waived {} outside [0, guaranteed {}]",
                        c.params.id, c.waived, c.guaranteed
                    ),
                );
            }
            if let Some(ledger) = cx.ledger {
                let booked = ledger.waived_units(ContractId(i));
                if (booked - c.waived).abs() > c.guaranteed.abs() * self.rel_tol + self.abs_tol {
                    self.record(
                        point,
                        cx.now,
                        Invariant::GuaranteeLedger,
                        format!(
                            "contract {i} ({:?}): waived {} != ledger total {booked}",
                            c.params.id, c.waived
                        ),
                    );
                }
            }
            if cx.now > c.params.deadline
                && c.delivered + c.waived < c.guaranteed * (1.0 - self.rel_tol) - self.abs_tol
            {
                self.record(
                    point,
                    cx.now,
                    Invariant::GuaranteeLedger,
                    format!(
                        "contract {i} ({:?}): guarantee missed with no ledger entry — \
                         delivered {} + waived {} < guaranteed {}",
                        c.params.id, c.delivered, c.waived, c.guaranteed
                    ),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contract::{Contract, RequestParams};
    use crate::state::PriceBump;
    use pretium_net::{LinkCost, Network, NodeId, Region, TimeGrid};
    use pretium_workload::RequestId;

    /// A -> B single edge, capacity 10/step, 4 steps.
    fn world() -> (Network, NetworkState, Vec<Vec<Path>>) {
        let mut net = Network::new();
        let a = net.add_node("A", Region::NorthAmerica);
        let b = net.add_node("B", Region::NorthAmerica);
        let e = net.add_edge(a, b, 10.0, LinkCost::owned());
        let state =
            NetworkState::new(&net, TimeGrid::new(4, 30), 4, 0.0, PriceBump::default(), |_| 1.0);
        let paths = vec![vec![Path::new(&net, vec![e])]];
        (net, state, paths)
    }

    fn contract(purchased: f64, guaranteed: f64, payment: f64, lambda: f64) -> Contract {
        Contract {
            params: RequestParams {
                id: RequestId(0),
                src: NodeId(0),
                dst: NodeId(1),
                demand: purchased,
                arrival: 0,
                start: 0,
                deadline: 3,
            },
            purchased,
            guaranteed,
            payment,
            lambda,
            delivered: 0.0,
            waived: 0.0,
            plan: Vec::new(),
        }
    }

    fn cx<'a>(
        net: &'a Network,
        state: &'a NetworkState,
        contracts: &'a [Contract],
        paths: &'a [Vec<Path>],
        floors: &'a [f64],
    ) -> AuditContext<'a> {
        AuditContext {
            net,
            state,
            contracts,
            contract_paths: paths,
            floors,
            pc_has_run: false,
            ledger: None,
            now: 0,
        }
    }

    #[test]
    fn clean_state_passes_every_check() {
        let (net, mut state, paths) = world();
        let mut c = contract(8.0, 8.0, 8.0, 1.0);
        c.plan = vec![(0, 0, 5.0), (0, 1, 3.0)];
        state.reserve(EdgeId(0), 0, 5.0);
        state.reserve(EdgeId(0), 1, 3.0);
        let contracts = [c];
        let floors = [0.05];
        let mut aud = Auditor::new();
        let new = aud.check(AuditPoint::Accept, &cx(&net, &state, &contracts, &paths, &floors));
        assert_eq!(new, 0, "{:?}", aud.violations());
        assert!(aud.is_clean());
        assert_eq!(aud.checks(), 1);
    }

    #[test]
    fn infinite_payment_is_caught() {
        // The exact state the pre-fix `accept` produced on an empty menu:
        // payment = λ = ∞ booked into the ledger.
        let (net, state, paths) = world();
        let contracts = [contract(5.0, 0.0, f64::INFINITY, f64::INFINITY)];
        let floors = [0.05];
        let mut aud = Auditor::new();
        aud.check(AuditPoint::Accept, &cx(&net, &state, &contracts, &paths, &floors));
        assert_eq!(aud.violations_of(Invariant::ContractAccounting), 2, "{:?}", aud.violations());
        assert!(!aud.is_clean());
    }

    #[test]
    fn unbacked_plan_is_caught() {
        // The pre-fix clamping bug: the plan says 5 units but only 3 were
        // reserved on the link.
        let (net, mut state, paths) = world();
        let mut c = contract(5.0, 5.0, 5.0, 1.0);
        c.plan = vec![(0, 2, 5.0)];
        state.reserve(EdgeId(0), 2, 3.0);
        let contracts = [c];
        let floors = [0.05];
        let mut aud = Auditor::new();
        aud.check(AuditPoint::Sam, &cx(&net, &state, &contracts, &paths, &floors));
        assert_eq!(aud.violations_of(Invariant::UnbackedPlan), 1, "{:?}", aud.violations());
        let v = &aud.violations()[0];
        assert_eq!(v.invariant, Invariant::UnbackedPlan);
        assert!(v.to_string().contains("t=2"), "{v}");
    }

    #[test]
    fn oversubscription_is_caught() {
        let (net, mut state, paths) = world();
        // Legal reservation, then a high-pri surge shrinks the sellable
        // pool under it (the §4.4 scenario an auditor must surface).
        state.reserve(EdgeId(0), 1, 9.0);
        state.set_highpri(EdgeId(0), 1, 5.0);
        let contracts: [Contract; 0] = [];
        let floors = [0.05];
        let mut aud = Auditor::new();
        aud.check(AuditPoint::Execute, &cx(&net, &state, &contracts, &paths, &floors));
        assert_eq!(aud.violations_of(Invariant::LinkOversubscription), 1);
    }

    #[test]
    fn price_floor_only_binds_after_pc() {
        let (net, mut state, paths) = world();
        state.set_price(EdgeId(0), 2, 0.0);
        let contracts: [Contract; 0] = [];
        let floors = [0.05];
        let mut aud = Auditor::new();
        let mut context = cx(&net, &state, &contracts, &paths, &floors);
        aud.check(AuditPoint::Pc, &context);
        assert!(aud.is_clean(), "floor must not bind before the first PC run");
        context.pc_has_run = true;
        aud.check(AuditPoint::Pc, &context);
        assert_eq!(aud.violations_of(Invariant::PriceFloor), 1);
    }

    #[test]
    fn guarantee_coverage_flags_underplanned_contract() {
        let (net, mut state, paths) = world();
        let mut c = contract(10.0, 10.0, 10.0, 1.0);
        c.delivered = 2.0;
        c.plan = vec![(0, 1, 3.0)]; // 2 + 3 < 10 guaranteed
        state.reserve(EdgeId(0), 1, 3.0);
        let contracts = [c];
        let floors = [0.05];
        let mut aud = Auditor::new();
        aud.check(AuditPoint::Sam, &cx(&net, &state, &contracts, &paths, &floors));
        assert_eq!(aud.violations_of(Invariant::GuaranteeCoverage), 1);
        // Past-deadline contracts are terminal outcomes, not planning bugs.
        let mut done = contract(10.0, 10.0, 10.0, 1.0);
        done.params.deadline = 0;
        done.delivered = 2.0;
        let contracts = [done];
        let mut aud2 = Auditor::new();
        let mut context = cx(&net, &state, &contracts, &paths, &floors);
        context.now = 3;
        aud2.check(AuditPoint::Execute, &context);
        assert_eq!(aud2.violations_of(Invariant::GuaranteeCoverage), 0);
    }

    #[test]
    fn waived_guarantee_passes_coverage_when_ledgered() {
        use crate::degradation::{DegradationKind, ViolationLedger};
        let (net, state, paths) = world();
        // Guarantee 10, delivered 4, waived 6: effective guarantee is
        // covered, deadline passed, ledger matches — clean.
        let mut c = contract(10.0, 10.0, 10.0, 2.0);
        c.delivered = 4.0;
        c.waived = 6.0;
        let mut ledger = ViolationLedger::new();
        ledger.record(ContractId(0), 1, DegradationKind::Shed, 6.0, 12.0);
        let contracts = [c];
        let floors = [0.05];
        let mut aud = Auditor::new();
        let mut context = cx(&net, &state, &contracts, &paths, &floors);
        context.ledger = Some(&ledger);
        context.now = 4; // past deadline 3
        aud.check(AuditPoint::Execute, &context);
        assert!(aud.is_clean(), "{:?}", aud.violations());
    }

    #[test]
    fn silently_dropped_guarantee_is_caught() {
        let (net, state, paths) = world();
        // Deadline passed with 4/10 delivered and nothing waived: a missed
        // guarantee that never reached the ledger.
        let mut c = contract(10.0, 10.0, 10.0, 2.0);
        c.delivered = 4.0;
        let contracts = [c];
        let floors = [0.05];
        let mut aud = Auditor::new();
        let mut context = cx(&net, &state, &contracts, &paths, &floors);
        context.now = 4;
        aud.check(AuditPoint::Execute, &context);
        assert_eq!(aud.violations_of(Invariant::GuaranteeLedger), 1, "{:?}", aud.violations());
        assert!(aud.violations()[0].to_string().contains("no ledger entry"));
    }

    #[test]
    fn waived_units_must_match_ledger_total() {
        use crate::degradation::{DegradationKind, ViolationLedger};
        let (net, state, paths) = world();
        let mut c = contract(10.0, 10.0, 10.0, 2.0);
        c.delivered = 5.0; // effective guarantee stays covered
        c.waived = 5.0;
        let mut ledger = ViolationLedger::new();
        ledger.record(ContractId(0), 1, DegradationKind::Relaxed, 2.0, 4.0);
        let contracts = [c];
        let floors = [0.05];
        let mut aud = Auditor::new();
        let mut context = cx(&net, &state, &contracts, &paths, &floors);
        context.ledger = Some(&ledger);
        aud.check(AuditPoint::Sam, &context);
        assert_eq!(aud.violations_of(Invariant::GuaranteeLedger), 1, "{:?}", aud.violations());
        assert!(aud.violations()[0].to_string().contains("ledger total"));
    }

    #[test]
    fn recording_cap_keeps_exact_totals() {
        let (net, state, paths) = world();
        let contracts: Vec<Contract> =
            (0..300).map(|_| contract(5.0, 0.0, f64::INFINITY, 1.0)).collect();
        let floors = [0.05];
        let mut aud = Auditor::new();
        aud.check(AuditPoint::Accept, &cx(&net, &state, &contracts, &paths, &floors));
        assert_eq!(aud.total_violations(), 300);
        assert_eq!(aud.violations().len(), 256);
        let rows = aud.summary_rows();
        assert!(rows.iter().any(|(k, v)| k == "violations (total)" && v == "300"));
    }
}
