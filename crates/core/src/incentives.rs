//! §5 deviation analysis (implemented after the simulator lands).
