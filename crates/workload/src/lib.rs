//! # pretium-workload — synthetic traces and request streams
//!
//! Stands in for the paper's proprietary month-long NetFlow trace of a
//! production inter-DC WAN (§6.1). See `DESIGN.md` §3 for the substitution
//! argument: the evaluation consumes only (a) a traffic-matrix time series
//! with strong diurnal periodicity, heavy-tailed pair sizes, and short-term
//! spikes, and (b) request parameters drawn from the operator survey — both
//! regenerated here with controlled seeds.
//!
//! * [`values`] — value distributions (normal / pareto / exponential)
//!   implemented directly over `rand`'s uniform source.
//! * [`tm`] — traffic-matrix time-series generator (diurnal + noise +
//!   flash crowds).
//! * [`requests`] — converts a trace into a stream of deadline transfer
//!   requests mimicking it (§6.1 methodology).
//! * [`survey`] — Table 1 / Table 2 constants.

pub mod requests;
pub mod survey;
pub mod tm;
pub mod values;

pub use requests::{generate_requests, Request, RequestConfig, RequestId, RequestKind};
pub use tm::{generate_trace, PairSeries, TrafficConfig, TrafficTrace};
pub use values::ValueDist;
