//! Persistent solver sessions with warm-started re-optimization.
//!
//! A [`SolverSession`] owns a [`Model`] together with the basis of its last
//! solve. Incremental mutations (`set_rhs`, `set_bounds`, `set_obj`,
//! `add_row`, `add_var`) go through the session so it can track which
//! mutation classes occurred, and every re-solve picks the cheapest restart
//! that is still correct:
//!
//! * **objective-only changes** leave the basis primal feasible — primal
//!   simplex continues from it directly ([`Restart::WarmPrimal`]);
//! * **RHS / bound changes** leave the basis dual feasible — the dual
//!   simplex repairs primal feasibility ([`Restart::WarmDual`]); this is the
//!   SAM-timestep case, where capacities and executed amounts move between
//!   re-optimizations;
//! * **appended rows** seat their slack in the basis (duals of existing rows
//!   are unchanged, so dual feasibility survives) and restart dual — the
//!   lazy capacity-row case;
//! * **appended variables** rest at a bound; if that disturbs feasibility
//!   the dual/primal repair machinery handles it.
//!
//! Anything the warm path cannot absorb falls back to a full cold solve, so
//! a session solve always returns the same certified optimum a fresh
//! [`Model::solve`] would — warm starting is purely a performance property
//! (the property tests assert primal, dual, and objective agreement to
//! 1e-7).
//!
//! ```
//! use pretium_lp::{Cmp, Restart, SolveOptions, SolverSession, Model, Sense};
//!
//! let mut m = Model::new(Sense::Maximize);
//! let x = m.add_nonneg("x", 3.0);
//! let y = m.add_nonneg("y", 2.0);
//! let cap = m.add_row("cap", x + y, Cmp::Le, 4.0);
//! let _r2 = m.add_row("r2", 1.0 * x + 3.0 * y, Cmp::Le, 6.0);
//! let mut session = SolverSession::new(m);
//! let first = session.solve(&SolveOptions::default()).unwrap();
//! assert!((first.objective() - 12.0).abs() < 1e-7);
//!
//! // Capacity changes re-optimize from the saved basis, not from scratch.
//! session.set_rhs(cap, 7.0);
//! let second = session.solve(&SolveOptions::default()).unwrap();
//! assert!((second.objective() - 18.0).abs() < 1e-7);
//! assert_eq!(session.last_restart(), Some(Restart::WarmDual));
//! ```

use crate::expr::{LinExpr, Var};
use crate::lazy::{ColGen, ColRequest, GenOutcome, NoGen, RowGen, RowRequest};
use crate::model::{Cmp, Model, RowId, Sense};
use crate::simplex::{solve_model_session, Restart, SimplexOptions, WarmBasis};
use crate::solution::{Solution, SolveError};

/// Default round cap for the generation loops ([`SolverSession::solve_gen`]
/// and its one-sided wrappers) when [`SolveOptions::max_rounds`] is 0.
pub const DEFAULT_MAX_ROUNDS: u32 = 50;

/// Default capacity of the freeze-pattern-keyed warm-basis LRU used by
/// [`SolverSession::solve_restricted`] when
/// [`SolveOptions::restricted_basis_cache`] is 0.
pub const DEFAULT_RESTRICTED_BASIS_CACHE: usize = 8;

/// Grouped solver-tuning knobs shared by every solve path ([`SolverSession::solve`],
/// [`SolverSession::solve_restricted`], and the generation loops). Every
/// field follows the crate's `0 selects the default` convention, so the
/// all-zero [`SolverTuning::default`] changes nothing — callers override
/// only the knobs they care about and `..Default::default()` the rest.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverTuning {
    /// Capacity of [`SolverSession::solve_restricted`]'s freeze-pattern
    /// warm-basis LRU; `0` selects [`DEFAULT_RESTRICTED_BASIS_CACHE`].
    pub restricted_basis_cache: usize,
    /// Forrest–Tomlin updates a basis factorization accumulates before
    /// refactorizing; `0` inherits `refactor_every` from the effective
    /// simplex options (whose default is
    /// [`crate::simplex::basis::DEFAULT_MAX_ETAS`]), a nonzero value
    /// overrides it for this solve.
    pub max_etas: usize,
    /// Worker threads for the simplex's deterministic parallel-pricing
    /// layer; `0` inherits [`SimplexOptions::pricing_jobs`] from the
    /// effective simplex options (default 1, the serial path), a nonzero
    /// value overrides it. Restricted sub-solves inherit the resolved
    /// value through the same effective-options path as top-level solves.
    /// Any value produces bitwise-identical solves (DESIGN.md §19).
    pub pricing_jobs: usize,
}

/// Options for one [`SolverSession::solve`] call.
#[derive(Debug, Clone, Default)]
pub struct SolveOptions {
    /// Simplex parameter override; `None` uses the model's stored options.
    pub simplex: Option<SimplexOptions>,
    /// Discard the saved basis and solve from scratch.
    pub force_cold: bool,
    /// Round cap for [`SolverSession::solve_gen`] /
    /// [`SolverSession::solve_lazy`] / [`SolverSession::solve_colgen`];
    /// `0` selects [`DEFAULT_MAX_ROUNDS`].
    pub max_rounds: u32,
    /// Grouped tuning knobs (basis-cache capacity, refactorization cadence,
    /// pricing parallelism); the all-zero default leaves every knob at its
    /// built-in default.
    pub tuning: SolverTuning,
}

impl SolveOptions {
    /// Options that cap the simplex at `max` iterations (fault injection /
    /// degraded-compute modelling, §4.4). The solver returns
    /// [`SolveError::IterationLimit`] instead of running to optimality when
    /// the cap is hit, so callers can degrade gracefully.
    pub fn with_iteration_limit(max: u64) -> Self {
        SolveOptions {
            simplex: Some(SimplexOptions { max_iterations: max, ..SimplexOptions::default() }),
            ..SolveOptions::default()
        }
    }
}

/// Which mutation classes are pending since the last solve.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Mutations {
    /// Objective coefficients or offset changed.
    pub obj: bool,
    /// A row right-hand side changed.
    pub rhs: bool,
    /// Variable bounds changed.
    pub bounds: bool,
    /// Rows appended since the last solve.
    pub added_rows: u32,
    /// Variables appended since the last solve.
    pub added_vars: u32,
    /// Coefficients retrofitted into rows since the last solve.
    pub new_terms: u32,
}

impl Mutations {
    /// True when nothing changed since the last solve.
    pub fn is_clean(&self) -> bool {
        *self == Mutations::default()
    }
}

/// Restart counters accumulated over the session's lifetime.
///
/// Equality compares only the *deterministic* counters: steal counts and
/// the serial/parallel wall-clock split depend on thread scheduling and
/// timer resolution, so they are excluded from `PartialEq` — two runs of
/// the same configuration compare equal even though their timing fields
/// differ. Section counts stay in the comparison; they derive from range
/// sizes alone and are reproducible.
#[derive(Debug, Clone, Copy, Default)]
pub struct SessionStats {
    /// Total solves (lazy rounds count individually).
    pub solves: u64,
    /// Solves that ran from a crash basis.
    pub cold_starts: u64,
    /// Warm restarts that needed only primal phase 2.
    pub warm_primal: u64,
    /// Warm restarts that ran the dual simplex first.
    pub warm_dual: u64,
    /// Total simplex iterations across all solves.
    pub iterations: u64,
    /// Total pricing work across all solves: columns examined by entering
    /// selection plus columns touched by incremental pivot-row updates.
    pub pricing_scans: u64,
    /// Iterations priced under the Bland's-rule anti-cycling fallback.
    pub bland_pivots: u64,
    /// Solves answered from the cached solution without touching the
    /// simplex (nothing mutated since the last certified optimum).
    pub cache_hits: u64,
    /// Restricted (frozen-block submodel) solves; see
    /// [`SolverSession::solve_restricted`].
    pub restricted: u64,
    /// Columns appended by pricing oracles through
    /// [`SolverSession::add_generated_cols`] (the colgen growth path).
    pub columns_generated: u64,
    /// Generation rounds that appended at least one priced column — the
    /// restricted-master round count of the column-generation loops.
    pub colgen_rounds: u64,
    /// Sparse-LU refactorizations across all solves.
    pub refactors: u64,
    /// Cumulative nonzeros of the bases handed to refactorization.
    pub basis_nnz: u64,
    /// Cumulative nonzeros of the L/U factors produced (including the
    /// diagonal); `factor_nnz / basis_nnz` is the session fill-in ratio.
    pub factor_nnz: u64,
    /// Forrest–Tomlin basis-exchange updates applied in place.
    pub ft_updates: u64,
    /// FT updates rejected on a too-small new diagonal (each forces a
    /// refactorization).
    pub pivot_rejections: u64,
    /// Sections executed by the deterministic parallel-pricing layer
    /// (simplex pricing sweeps plus any scheduler-side fan-out folded in
    /// via [`SolverSession::note_parallel_pricing`]). Deterministic for a
    /// fixed configuration.
    pub pricing_par_sections: u64,
    /// Parallel-pricing sections claimed by a worker other than the one
    /// they were seeded on. Timing-dependent; excluded from equality.
    pub pricing_par_steals: u64,
    /// Wall-clock nanoseconds of pricing invocations that ran the serial
    /// path. Timing-dependent; excluded from equality.
    pub pricing_serial_nanos: u64,
    /// Wall-clock nanoseconds of pricing invocations that fanned out over
    /// the worker pool. Timing-dependent; excluded from equality.
    pub pricing_par_nanos: u64,
}

impl PartialEq for SessionStats {
    fn eq(&self, other: &Self) -> bool {
        // Every counter except the timing-dependent trio (steals + the two
        // wall-clock buckets); see the type-level docs.
        self.solves == other.solves
            && self.cold_starts == other.cold_starts
            && self.warm_primal == other.warm_primal
            && self.warm_dual == other.warm_dual
            && self.iterations == other.iterations
            && self.pricing_scans == other.pricing_scans
            && self.bland_pivots == other.bland_pivots
            && self.cache_hits == other.cache_hits
            && self.restricted == other.restricted
            && self.columns_generated == other.columns_generated
            && self.colgen_rounds == other.colgen_rounds
            && self.refactors == other.refactors
            && self.basis_nnz == other.basis_nnz
            && self.factor_nnz == other.factor_nnz
            && self.ft_updates == other.ft_updates
            && self.pivot_rejections == other.pivot_rejections
            && self.pricing_par_sections == other.pricing_par_sections
    }
}

impl Eq for SessionStats {}

impl SessionStats {
    fn record(&mut self, restart: Restart, solution: &Solution) {
        self.solves += 1;
        self.iterations += solution.iterations();
        self.pricing_scans += solution.pricing_scans();
        self.bland_pivots += solution.bland_pivots();
        self.pricing_par_sections += solution.pricing_par_sections();
        self.pricing_par_steals += solution.pricing_par_steals();
        self.pricing_serial_nanos += solution.pricing_serial_nanos();
        self.pricing_par_nanos += solution.pricing_par_nanos();
        self.record_factor(solution.factor_stats());
        match restart {
            Restart::Cold => self.cold_starts += 1,
            Restart::WarmPrimal => self.warm_primal += 1,
            Restart::WarmDual => self.warm_dual += 1,
        }
    }

    fn record_factor(&mut self, fs: crate::simplex::basis::FactorStats) {
        self.refactors += fs.refactors;
        self.basis_nnz += fs.basis_nnz;
        self.factor_nnz += fs.factor_nnz;
        self.ft_updates += fs.ft_updates;
        self.pivot_rejections += fs.pivot_rejections;
    }

    /// Fraction of solves that reused the previous basis.
    pub fn warm_fraction(&self) -> f64 {
        if self.solves == 0 {
            return 0.0;
        }
        (self.warm_primal + self.warm_dual) as f64 / self.solves as f64
    }

    /// Fold another counter set into this one (aggregating stats across
    /// several sessions, e.g. one per SAM window).
    pub fn merge(&mut self, other: SessionStats) {
        self.solves += other.solves;
        self.cold_starts += other.cold_starts;
        self.warm_primal += other.warm_primal;
        self.warm_dual += other.warm_dual;
        self.iterations += other.iterations;
        self.pricing_scans += other.pricing_scans;
        self.bland_pivots += other.bland_pivots;
        self.cache_hits += other.cache_hits;
        self.restricted += other.restricted;
        self.columns_generated += other.columns_generated;
        self.colgen_rounds += other.colgen_rounds;
        self.refactors += other.refactors;
        self.basis_nnz += other.basis_nnz;
        self.factor_nnz += other.factor_nnz;
        self.ft_updates += other.ft_updates;
        self.pivot_rejections += other.pivot_rejections;
        self.pricing_par_sections += other.pricing_par_sections;
        self.pricing_par_steals += other.pricing_par_steals;
        self.pricing_serial_nanos += other.pricing_serial_nanos;
        self.pricing_par_nanos += other.pricing_par_nanos;
    }

    /// Labelled counter rows for table rendering (`(label, value)`), in a
    /// stable order.
    pub fn rows(&self) -> Vec<(String, String)> {
        vec![
            ("lp solves".into(), self.solves.to_string()),
            ("cold starts".into(), self.cold_starts.to_string()),
            ("warm primal".into(), self.warm_primal.to_string()),
            ("warm dual".into(), self.warm_dual.to_string()),
            ("iterations".into(), self.iterations.to_string()),
            ("pricing scans".into(), self.pricing_scans.to_string()),
            ("bland pivots".into(), self.bland_pivots.to_string()),
            ("cache hits".into(), self.cache_hits.to_string()),
            ("restricted solves".into(), self.restricted.to_string()),
            ("columns generated".into(), self.columns_generated.to_string()),
            ("colgen rounds".into(), self.colgen_rounds.to_string()),
            ("refactors".into(), self.refactors.to_string()),
            ("ft updates".into(), self.ft_updates.to_string()),
            ("pivot rejections".into(), self.pivot_rejections.to_string()),
            ("pricing par sections".into(), self.pricing_par_sections.to_string()),
            ("pricing par steals".into(), self.pricing_par_steals.to_string()),
            (
                "pricing wall serial/par".into(),
                format!(
                    "{:.1}ms / {:.1}ms",
                    self.pricing_serial_nanos as f64 / 1e6,
                    self.pricing_par_nanos as f64 / 1e6
                ),
            ),
            (
                "fill-in ratio".into(),
                format!("{:.3}", self.factor_nnz as f64 / self.basis_nnz.max(1) as f64),
            ),
            ("warm fraction".into(), format!("{:.3}", self.warm_fraction())),
        ]
    }
}

/// Result of a restricted (frozen-block) re-solve; see
/// [`SolverSession::solve_restricted`].
#[derive(Debug, Clone)]
pub struct RestrictedOutcome {
    /// Parent-shaped composite solution: frozen coordinates verbatim, free
    /// coordinates from the submodel optimum, duals of dropped (all-frozen)
    /// rows inherited from the previous solution and re-validated.
    pub solution: Solution,
    /// Whether the KKT certificate held — the composite is a proven optimum
    /// of the full model. When false the composite is returned for
    /// inspection but the session adopts nothing; fall back to a full solve.
    pub certified: bool,
    /// Largest certificate violation observed (frozen reduced-cost
    /// improvement signal or dropped-row primal residual).
    pub max_violation: f64,
    /// Columns actually solved in the submodel.
    pub sub_vars: usize,
    /// Rows kept (with residual RHS) in the submodel.
    pub sub_rows: usize,
}

/// A [`Model`] plus the factorized basis of its last solve.
///
/// Created with [`SolverSession::new`] (or [`Model::into_session`]); see the
/// [module docs](self) for the restart rules. The session exposes the same
/// mutators as [`Model`] — route all changes through it so the basis
/// snapshot and mutation tracking stay consistent.
#[derive(Debug, Clone)]
pub struct SolverSession {
    model: Model,
    basis: Option<WarmBasis>,
    pending: Mutations,
    stats: SessionStats,
    last_restart: Option<Restart>,
    /// Model size at the last basis snapshot; columns/rows past these marks
    /// were appended afterwards and are never referenced by the saved basis.
    solved_vars: usize,
    solved_rows: usize,
    /// The most recent certified optimum of the current model state.
    /// Served verbatim by [`SolverSession::solve`] when no mutation is
    /// pending, and the reference point for [`SolverSession::fix_at_value`].
    last_solution: Option<Solution>,
    /// Terminal bases of recent [`SolverSession::solve_restricted`]
    /// submodels, keyed by a hash of the parent dimensions and the frozen
    /// column set (which together determine the submodel's structure).
    /// Recurring freeze patterns — the same fault edge toggling, the same
    /// block re-planned — then warm-start their submodel instead of
    /// crashing a fresh basis. Small bounded LRU; misses just solve cold.
    restricted_bases: Vec<(u64, WarmBasis)>,
}

// The parallel evaluation engine (`pretium-sim::par`) moves one session
// into each worker thread, so `SolverSession` must stay `Send + Sync`. A
// future field that loses those bounds — an `Rc` cache, a raw pointer —
// would silently force every sweep back to serial; fail the build instead.
const _: () = {
    const fn sealed<T: Send + Sync>() {}
    sealed::<SolverSession>();
    sealed::<SessionStats>();
};

impl SolverSession {
    /// Wrap a model in a fresh session (no saved basis; the first solve is
    /// cold).
    pub fn new(model: Model) -> Self {
        SolverSession {
            model,
            basis: None,
            pending: Mutations::default(),
            stats: SessionStats::default(),
            last_restart: None,
            solved_vars: 0,
            solved_rows: 0,
            last_solution: None,
            restricted_bases: Vec::new(),
        }
    }

    /// The wrapped model (read-only; mutate through the session methods).
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// Unwrap the model, discarding the saved basis.
    pub fn into_model(self) -> Model {
        self.model
    }

    /// Mutation classes pending since the last solve.
    pub fn pending_mutations(&self) -> Mutations {
        self.pending
    }

    /// How the most recent solve restarted, if any solve has run.
    pub fn last_restart(&self) -> Option<Restart> {
        self.last_restart
    }

    /// Lifetime restart counters.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Fold externally measured parallel-pricing counters into the
    /// session's stats. This is the hook for callers that run their own
    /// deterministic pricing fan-out *around* the session — the
    /// scheduler's column-generation oracle prices job blocks over the
    /// same sectioned pool — so all pricing parallelism reports through
    /// one set of telemetry rows.
    pub fn note_parallel_pricing(
        &mut self,
        sections: u64,
        steals: u64,
        serial_nanos: u64,
        par_nanos: u64,
    ) {
        self.stats.pricing_par_sections += sections;
        self.stats.pricing_par_steals += steals;
        self.stats.pricing_serial_nanos += serial_nanos;
        self.stats.pricing_par_nanos += par_nanos;
    }

    /// True when a basis from a previous solve is available for warm
    /// starting.
    pub fn has_basis(&self) -> bool {
        self.basis.is_some()
    }

    /// Drop the saved basis; the next solve runs cold. Also drops the
    /// cached solution, so the next solve really does run the simplex.
    pub fn invalidate(&mut self) {
        self.basis = None;
        self.last_solution = None;
    }

    /// The certified optimum of the current model state, if no mutation has
    /// been recorded since it was computed.
    pub fn cached_solution(&self) -> Option<&Solution> {
        if self.pending.is_clean() {
            self.last_solution.as_ref()
        } else {
            None
        }
    }

    /// Mutable solver options of the wrapped model (does not invalidate the
    /// basis).
    pub fn options_mut(&mut self) -> &mut SimplexOptions {
        self.model.options_mut()
    }

    // --- mutators (mirror Model, with mutation-class tracking) ------------

    /// See [`Model::add_var`].
    pub fn add_var(&mut self, name: &str, lb: f64, ub: f64, obj: f64) -> Var {
        self.pending.added_vars += 1;
        if obj != 0.0 {
            self.pending.obj = true;
        }
        self.model.add_var(name, lb, ub, obj)
    }

    /// See [`Model::add_nonneg`].
    pub fn add_nonneg(&mut self, name: &str, obj: f64) -> Var {
        self.add_var(name, 0.0, f64::INFINITY, obj)
    }

    /// See [`Model::add_free`].
    pub fn add_free(&mut self, name: &str, obj: f64) -> Var {
        self.add_var(name, f64::NEG_INFINITY, f64::INFINITY, obj)
    }

    /// See [`Model::add_row`].
    pub fn add_row(&mut self, name: &str, expr: impl Into<LinExpr>, cmp: Cmp, rhs: f64) -> RowId {
        self.pending.added_rows += 1;
        self.model.add_row(name, expr, cmp, rhs)
    }

    /// See [`Model::add_term`]. Warm-start compatible whenever the variable
    /// *or* the row was appended after the last solve: the saved basis never
    /// references the new column/row pairing, so extending the matrix there
    /// leaves it reusable (a fresh nonbasic column, or a fresh row whose
    /// slack is seated basic with dual zero). Retrofitting a coefficient
    /// between a pre-existing row and a pre-existing variable rewrites the
    /// factorized basis matrix itself, so the basis is discarded and the
    /// next solve runs cold.
    pub fn add_term(&mut self, r: RowId, v: Var, coef: f64) {
        self.pending.new_terms += 1;
        if v.index() < self.solved_vars && r.index() < self.solved_rows {
            self.invalidate();
        }
        self.model.add_term(r, v, coef);
    }

    /// See [`Model::set_obj`].
    pub fn set_obj(&mut self, v: Var, obj: f64) {
        self.pending.obj = true;
        self.model.set_obj(v, obj);
    }

    /// See [`Model::set_bounds`].
    pub fn set_bounds(&mut self, v: Var, lb: f64, ub: f64) {
        self.pending.bounds = true;
        self.model.set_bounds(v, lb, ub);
    }

    /// Pin `v` to the single value `x` (bounds `[x, x]`), *without* marking
    /// a pending mutation when the pin provably preserves the cached
    /// optimum: if the cached solution already has `v = x` (bitwise) and
    /// `x` lies inside the old bounds, fixing the variable there shrinks
    /// the feasible set while keeping the incumbent feasible — the cached
    /// primal/dual pair stays optimal (a fixed column's reduced cost is
    /// unconstrained). This is what lets a schedule session freeze already-
    /// executed timesteps at their planned values every step without
    /// forcing an LP re-solve when nothing actually moved.
    pub fn fix_at_value(&mut self, v: Var, x: f64) {
        let (lb, ub) = self.model.bounds(v);
        let already_pinned = lb == x && ub == x;
        let matches_cached =
            lb <= x && x <= ub && self.last_solution.as_ref().is_some_and(|s| s.value(v) == x);
        if !(already_pinned || matches_cached) {
            self.pending.bounds = true;
        }
        self.model.set_bounds(v, x, x);
    }

    /// See [`Model::set_rhs`].
    pub fn set_rhs(&mut self, r: RowId, rhs: f64) {
        self.pending.rhs = true;
        self.model.set_rhs(r, rhs);
    }

    /// See [`Model::add_obj_offset`].
    pub fn add_obj_offset(&mut self, c: f64) {
        self.pending.obj = true;
        self.model.add_obj_offset(c);
    }

    /// Append-only access to the underlying model, for helpers that build
    /// structure directly on a [`Model`] (e.g. encoding builders that add a
    /// block of variables and rows). Additions are counted into the pending
    /// mutation set afterwards by diffing the model dimensions.
    ///
    /// The closure must only *append*: add variables, add rows, and touch
    /// the entries it added. Mutating pre-existing coefficients, bounds,
    /// RHS values, or objective entries through this hook bypasses mutation
    /// tracking and can silently corrupt warm restarts — use the session's
    /// own mutators for those.
    pub fn append_with<R>(&mut self, f: impl FnOnce(&mut Model) -> R) -> R {
        let (nv, nr) = (self.model.num_vars(), self.model.num_rows());
        let out = f(&mut self.model);
        self.pending.added_vars += (self.model.num_vars() - nv) as u32;
        self.pending.added_rows += (self.model.num_rows() - nr) as u32;
        out
    }

    // --- solving ----------------------------------------------------------

    /// The simplex options a solve under `opts` actually runs with: the
    /// per-call override (or the model's stored options), with each nonzero
    /// [`SolverTuning`] knob substituted in (`max_etas` → `refactor_every`,
    /// `pricing_jobs` → `pricing_jobs`).
    fn effective_simplex(&self, opts: &SolveOptions) -> SimplexOptions {
        let mut simplex = opts.simplex.clone().unwrap_or_else(|| self.model.options().clone());
        if opts.tuning.max_etas != 0 {
            simplex.refactor_every = opts.tuning.max_etas;
        }
        if opts.tuning.pricing_jobs != 0 {
            simplex.pricing_jobs = opts.tuning.pricing_jobs;
        }
        simplex
    }

    /// Re-optimize, reusing the saved basis when possible.
    ///
    /// The restart that actually ran is readable via
    /// [`SolverSession::last_restart`]; the result is always the certified
    /// optimum of the current model (warm failures fall back to a cold
    /// solve internally).
    pub fn solve(&mut self, opts: &SolveOptions) -> Result<Solution, SolveError> {
        // Nothing mutated since the last certified optimum: the cached
        // solution *is* the answer — skip the simplex entirely. (The basis
        // requirement makes `invalidate()` force a real cold solve.)
        if !opts.force_cold && self.pending.is_clean() && self.basis.is_some() {
            if let Some(cached) = &self.last_solution {
                self.stats.cache_hits += 1;
                return Ok(cached.clone());
            }
        }
        let simplex = self.effective_simplex(opts);
        let warm = if opts.force_cold { None } else { self.basis.as_ref() };
        let (solution, basis, restart) = solve_model_session(&self.model, &simplex, warm)?;
        self.basis = Some(basis);
        self.stats.record(restart, &solution);
        self.last_restart = Some(restart);
        self.pending = Mutations::default();
        self.solved_vars = self.model.num_vars();
        self.solved_rows = self.model.num_rows();
        self.last_solution = Some(solution.clone());
        Ok(solution)
    }

    /// Re-optimize only the columns *not* listed in `fixes`, holding every
    /// listed variable frozen at the given value, without touching the
    /// parent model, basis, or pending-mutation state.
    ///
    /// This is the block-decomposition primitive behind incremental SAM
    /// re-optimization: the schedule LP is block-angular (per-request
    /// schedule blocks coupled only through capacity and cost rows), so
    /// after a localized change the caller freezes every unaffected block
    /// at its current plan and re-solves just the affected columns against
    /// *residual* rows — each kept row's RHS is reduced by the frozen
    /// columns' contribution, and rows whose every column is frozen are
    /// dropped entirely (checked for primal feasibility at the frozen
    /// values instead).
    ///
    /// The extracted submodel is solved cold — it is small enough that a
    /// fresh factorization costs less than re-factorizing the full parent
    /// basis — and the result is assembled back into a parent-shaped
    /// composite [`Solution`]: frozen coordinates verbatim, free
    /// coordinates from the submodel optimum, duals of dropped rows
    /// inherited from the previous solution (and re-validated), and frozen
    /// columns' reduced costs recomputed against the composite duals
    /// (`d_j = c_j − yᵀA_j`).
    ///
    /// The composite is then *certified* against the full model's KKT
    /// conditions: every dropped row must be satisfied by the frozen
    /// values (within the feasibility tolerance) and every frozen column's
    /// reduced cost must not signal an improving move off its value
    /// (within `tol`). When the certificate holds, the composite is a
    /// proven optimum of the full model, and the session adopts it as its
    /// cached solution (pending mutations are cleared, so an unchanged
    /// follow-up [`SolverSession::solve`] is a cache hit). When it fails —
    /// the localized change actually propagated into a frozen block — the
    /// outcome reports `certified: false` with the composite untouched by
    /// the session; callers fall back to a full (warm) solve. The saved
    /// basis is never invalidated either way.
    pub fn solve_restricted(
        &mut self,
        fixes: &[(Var, f64)],
        tol: f64,
        opts: &SolveOptions,
    ) -> Result<RestrictedOutcome, SolveError> {
        let simplex = self.effective_simplex(opts);
        let feas_eps = simplex.feas_tol.max(tol);
        let n = self.model.num_vars();
        let mut fixed: Vec<Option<f64>> = vec![None; n];
        for &(v, x) in fixes {
            fixed[v.index()] = Some(x);
        }

        // Extract the submodel over the free columns.
        let mut sub = Model::new(self.model.sense);
        *sub.options_mut() = simplex;
        let mut to_sub: Vec<Option<Var>> = vec![None; n];
        let mut frozen_obj = self.model.obj_offset;
        // Submodel vars and rows are unnamed: names only serve diagnostics
        // on the parent model, and cloning a String per column is a
        // measurable share of the extraction cost on the hot path.
        for (j, d) in self.model.vars.iter().enumerate() {
            match fixed[j] {
                Some(x) => frozen_obj += d.obj * x,
                None => to_sub[j] = Some(sub.add_var("", d.lb, d.ub, d.obj)),
            }
        }
        sub.add_obj_offset(frozen_obj);

        // Kept rows get residual RHS; all-frozen rows are dropped from the
        // submodel (recorded with their frozen left-hand side) and must
        // hold primally at the frozen values.
        let mut kept: Vec<usize> = Vec::new();
        let mut dropped: Vec<(usize, f64)> = Vec::new();
        let mut primal_violation: f64 = 0.0;
        for (i, row) in self.model.rows.iter().enumerate() {
            let mut frozen_lhs = 0.0;
            let mut free = LinExpr::new();
            for &(j, c) in &row.terms {
                match fixed[j as usize] {
                    Some(x) => frozen_lhs += c * x,
                    None => free.add_term(c, to_sub[j as usize].expect("free var mapped")),
                }
            }
            if free.is_empty() {
                let viol = match row.cmp {
                    Cmp::Le => frozen_lhs - row.rhs,
                    Cmp::Ge => row.rhs - frozen_lhs,
                    Cmp::Eq => (frozen_lhs - row.rhs).abs(),
                };
                primal_violation = primal_violation.max(viol);
                dropped.push((i, frozen_lhs));
            } else {
                sub.add_row("", free, row.cmp, row.rhs - frozen_lhs);
                kept.push(i);
            }
        }
        let (sub_vars, sub_rows) = (sub.num_vars(), sub.num_rows());
        // The submodel's structure is a pure function of the parent's
        // dimensions and the frozen column set, so recurring freeze
        // patterns (a fault edge toggling, the same block re-planned) can
        // warm-start from the terminal basis of their previous submodel —
        // typically a handful of dual pivots instead of a cold crash.
        fn fnv(h: u64, x: u64) -> u64 {
            (h ^ x).wrapping_mul(0x100_0000_01b3)
        }
        let mut key = fnv(0xcbf2_9ce4_8422_2325, n as u64);
        key = fnv(key, self.model.num_rows() as u64);
        for (j, f) in fixed.iter().enumerate() {
            if f.is_some() {
                key = fnv(key, j as u64);
            }
        }
        let warm = self.restricted_bases.iter().find(|(k, _)| *k == key).map(|(_, b)| b);
        let (sub_sol, sub_basis, _restart) = solve_model_session(&sub, sub.options(), warm)?;
        if let Some(slot) = self.restricted_bases.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = sub_basis;
        } else {
            let cap = if opts.tuning.restricted_basis_cache == 0 {
                DEFAULT_RESTRICTED_BASIS_CACHE
            } else {
                opts.tuning.restricted_basis_cache
            };
            while self.restricted_bases.len() >= cap {
                self.restricted_bases.remove(0);
            }
            self.restricted_bases.push((key, sub_basis));
        }
        self.stats.restricted += 1;
        self.stats.iterations += sub_sol.iterations();
        self.stats.pricing_scans += sub_sol.pricing_scans();
        self.stats.bland_pivots += sub_sol.bland_pivots();
        self.stats.pricing_par_sections += sub_sol.pricing_par_sections();
        self.stats.pricing_par_steals += sub_sol.pricing_par_steals();
        self.stats.pricing_serial_nanos += sub_sol.pricing_serial_nanos();
        self.stats.pricing_par_nanos += sub_sol.pricing_par_nanos();
        self.stats.record_factor(sub_sol.factor_stats());

        // Assemble the parent-shaped composite.
        let mut values = vec![0.0; n];
        let mut reduced_costs = vec![0.0; n];
        for j in 0..n {
            match fixed[j] {
                Some(x) => {
                    let d = &self.model.vars[j];
                    values[j] = x;
                    reduced_costs[j] = d.obj;
                    primal_violation = primal_violation.max(d.lb - x).max(x - d.ub);
                }
                None => {
                    let sv = to_sub[j].expect("free var mapped");
                    values[j] = sub_sol.values[sv.index()];
                    reduced_costs[j] = sub_sol.reduced_costs[sv.index()];
                }
            }
        }
        let mut duals = vec![0.0; self.model.num_rows()];
        for (si, &pi) in kept.iter().enumerate() {
            let y = sub_sol.duals[si];
            duals[pi] = y;
            if y != 0.0 {
                for &(j, c) in &self.model.rows[pi].terms {
                    if fixed[j as usize].is_some() {
                        reduced_costs[j as usize] -= y * c;
                    }
                }
            }
        }

        // Dropped rows carry no dual information from the sub-solve, but
        // frozen columns at an interior optimum need their private rows'
        // duals for their reduced costs to certify (a job at its demand
        // limit is supported by the demand row's dual). Complete the dual
        // vector heuristically — soundness comes from the certificate
        // below, which validates whatever this produces:
        //  1. inherit each dropped row's dual from the previous solution,
        //     projected onto the valid sign for the row's direction and
        //     zeroed where complementary slackness demands (slack row ⇒
        //     dual 0);
        //  2. only when the certificate fails at inherited duals,
        //     refinement sweeps re-aim the dual of each *adjustable*
        //     binding row so its first interior frozen column prices to
        //     zero — the private-support-shift case (a coupling row
        //     unbinding moves a column's support onto its private row)
        //     that pure inheritance cannot certify. Dropped rows are
        //     always adjustable; a kept row is adjustable when every free
        //     column in it sits at its lower bound — the sub-solve then
        //     pinned its dual only up to degeneracy (a shared capacity row
        //     the affected blocks place no flow on reads as slack-free to
        //     the submodel even though the frozen flow binds it), and
        //     moving the dual cannot un-price a basic free column. The
        //     certificate is re-run after the sweeps, so a bad re-aim
        //     fails closed; the common case (inherited duals already
        //     certify) skips the sweeps and their row scans entirely.
        let sense = self.model.sense;
        let project = |y: f64, cmp: Cmp| match (sense, cmp) {
            (_, Cmp::Eq) => y,
            (Sense::Maximize, Cmp::Le) | (Sense::Minimize, Cmp::Ge) => y.max(0.0),
            (Sense::Maximize, Cmp::Ge) | (Sense::Minimize, Cmp::Le) => y.min(0.0),
        };
        let interior = |j: usize, x: f64| {
            let d = &self.model.vars[j];
            x - d.lb > feas_eps && d.ub - x > feas_eps
        };
        for &(i, lhs) in &dropped {
            let row = &self.model.rows[i];
            let mut y =
                self.last_solution.as_ref().and_then(|s| s.duals.get(i).copied()).unwrap_or(0.0);
            if row.cmp != Cmp::Eq && (lhs - row.rhs).abs() > feas_eps {
                y = 0.0;
            }
            y = project(y, row.cmp);
            duals[i] = y;
            if y != 0.0 {
                for &(j, c) in &row.terms {
                    reduced_costs[j as usize] -= y * c;
                }
            }
        }
        // Certificate: no column — frozen at its value or free at the
        // sub-solve's optimum — may have an improving move its own bounds
        // would permit. Free columns were optimal against the *submodel*
        // duals; re-checking them here is what keeps the kept-row
        // re-aiming below sound.
        let rc_certificate = |values: &[f64], reduced_costs: &[f64]| -> f64 {
            let mut violation: f64 = 0.0;
            for j in 0..n {
                let x = values[j];
                let (lb, ub) = (self.model.vars[j].lb, self.model.vars[j].ub);
                let at_lb = x - lb <= feas_eps;
                let at_ub = ub - x <= feas_eps;
                let d = reduced_costs[j];
                // Improvement direction depends on the sense: for Maximize
                // a positive reduced cost rewards raising x, for Minimize a
                // negative one does; the mirrored term covers lowering x.
                let (up, down) = match sense {
                    Sense::Maximize => (d, -d),
                    Sense::Minimize => (-d, d),
                };
                if !at_ub {
                    violation = violation.max(up);
                }
                if !at_lb {
                    violation = violation.max(down);
                }
            }
            violation
        };
        let mut rc_violation = rc_certificate(&values, &reduced_costs);
        if rc_violation > tol {
            let mut adjustable: Vec<usize> = Vec::new();
            for &(i, lhs) in &dropped {
                let row = &self.model.rows[i];
                if row.cmp == Cmp::Eq || (lhs - row.rhs).abs() <= feas_eps {
                    adjustable.push(i);
                }
            }
            for &pi in &kept {
                let row = &self.model.rows[pi];
                let mut lhs = 0.0;
                let mut has_frozen = false;
                let mut free_at_lb = true;
                for &(j, c) in &row.terms {
                    let x = values[j as usize];
                    lhs += c * x;
                    if fixed[j as usize].is_some() {
                        has_frozen = true;
                    } else if x - self.model.vars[j as usize].lb > feas_eps {
                        free_at_lb = false;
                    }
                }
                if has_frozen
                    && free_at_lb
                    && (row.cmp == Cmp::Eq || (lhs - row.rhs).abs() <= feas_eps)
                {
                    adjustable.push(pi);
                }
            }
            for _ in 0..3 {
                for &i in &adjustable {
                    let row = &self.model.rows[i];
                    let Some((j0, a0)) = row.terms.iter().find_map(|&(j, c)| {
                        (c != 0.0
                            && fixed[j as usize].is_some()
                            && interior(j as usize, values[j as usize]))
                        .then_some((j as usize, c))
                    }) else {
                        continue;
                    };
                    let new_y = project(duals[i] + reduced_costs[j0] / a0, row.cmp);
                    let delta = new_y - duals[i];
                    if delta != 0.0 {
                        duals[i] = new_y;
                        for &(j, c) in &row.terms {
                            reduced_costs[j as usize] -= delta * c;
                        }
                    }
                }
            }
            rc_violation = rc_certificate(&values, &reduced_costs);
        }
        let certified = primal_violation <= feas_eps && rc_violation <= tol;
        let solution = Solution {
            status: sub_sol.status,
            objective: sub_sol.objective,
            values,
            duals,
            reduced_costs,
            iterations: sub_sol.iterations,
            pricing_scans: sub_sol.pricing_scans,
            bland_pivots: sub_sol.bland_pivots,
            pricing_par_sections: sub_sol.pricing_par_sections,
            pricing_par_steals: sub_sol.pricing_par_steals,
            pricing_serial_nanos: sub_sol.pricing_serial_nanos,
            pricing_par_nanos: sub_sol.pricing_par_nanos,
            factor_stats: sub_sol.factor_stats,
        };
        if certified {
            // The composite is a proven optimum of the *current* model
            // state: adopt it exactly like a full solve would, minus the
            // basis snapshot (the saved parent basis stays warm-start
            // valid for whatever full solve comes next).
            self.last_solution = Some(solution.clone());
            self.pending = Mutations::default();
            self.solved_vars = self.model.num_vars();
            self.solved_rows = self.model.num_rows();
        }
        Ok(RestrictedOutcome {
            solution,
            certified,
            max_violation: primal_violation.max(rc_violation),
            sub_vars,
            sub_rows,
        })
    }

    // --- lazy generation --------------------------------------------------

    /// Append rows produced by a [`RowGen`] oracle through the session's
    /// tracked growth path, returning `(key, row)` pairs in insertion
    /// order. Appended rows seat their slack in the basis, so the next
    /// solve restarts warm (dual).
    pub fn add_generated_rows(&mut self, requests: Vec<RowRequest>) -> Vec<(u64, RowId)> {
        requests
            .into_iter()
            .map(|r| {
                let id = self.add_row(&r.name, r.expr, r.cmp, r.rhs);
                (r.key, id)
            })
            .collect()
    }

    /// Append columns produced by a [`ColGen`] oracle through the session's
    /// tracked growth path, returning `(key, var)` pairs in insertion
    /// order. Each column lands as a fresh variable retrofitted into its
    /// (pre-existing) rows — warm-safe, because the saved basis never
    /// references the new column. Counts the columns into
    /// [`SessionStats::columns_generated`] and, when the batch is
    /// non-empty, one restricted-master round into
    /// [`SessionStats::colgen_rounds`].
    pub fn add_generated_cols(&mut self, requests: Vec<ColRequest>) -> Vec<(u64, Var)> {
        if !requests.is_empty() {
            self.stats.colgen_rounds += 1;
        }
        requests
            .into_iter()
            .map(|c| {
                let v = self.add_var(&c.name, c.lb, c.ub, c.obj);
                for (r, coef) in c.terms {
                    self.add_term(r, v, coef);
                }
                self.stats.columns_generated += 1;
                (c.key, v)
            })
            .collect()
    }

    /// The unified generation loop: solve the restricted model **warm**,
    /// ask the row oracle for violated rows and the column oracle for
    /// columns that price out against the same tentative optimum, append
    /// both, and repeat until neither side generates. The terminal
    /// solution is then optimal for the full problem: absent rows are
    /// satisfied with dual zero, absent columns are nonbasic at bound with
    /// unfavorable reduced cost — the terminal duals are the certificate.
    ///
    /// Both oracles must be monotone (never retract, never repeat). Rows
    /// and columns generated in the same round are appended rows-first, so
    /// a column request may reference a row id returned by *earlier*
    /// rounds but not one generated in the same round.
    pub fn solve_gen(
        &mut self,
        rows: &mut dyn RowGen,
        cols: &mut dyn ColGen,
        opts: &SolveOptions,
    ) -> Result<GenOutcome, SolveError> {
        let max_rounds = if opts.max_rounds == 0 { DEFAULT_MAX_ROUNDS } else { opts.max_rounds };
        let mut generated_rows = Vec::new();
        let mut generated_cols = Vec::new();
        let mut rounds = 0;
        loop {
            rounds += 1;
            let solution = self.solve(opts)?;
            let new_rows = rows.violated(&self.model, &solution);
            let new_cols = cols.priced(&self.model, &solution);
            if new_rows.is_empty() && new_cols.is_empty() {
                return Ok(GenOutcome { solution, generated_rows, generated_cols, rounds });
            }
            if rounds >= max_rounds {
                return Err(SolveError::IterationLimit { iterations: rounds as u64 });
            }
            generated_rows.extend(self.add_generated_rows(new_rows));
            generated_cols.extend(self.add_generated_cols(new_cols));
        }
    }

    /// Solve with lazy row generation only: [`SolverSession::solve_gen`]
    /// with [`NoGen`] on the column side. Semantics match the
    /// row-generation contract of [`crate::lazy`].
    pub fn solve_lazy(
        &mut self,
        gen: &mut dyn RowGen,
        opts: &SolveOptions,
    ) -> Result<GenOutcome, SolveError> {
        self.solve_gen(gen, &mut NoGen, opts)
    }

    /// Solve with column generation only: [`SolverSession::solve_gen`]
    /// with [`NoGen`] on the row side. Each round re-solves the restricted
    /// master warm from the saved basis and hands the duals to the pricing
    /// oracle; the loop ends when no column prices out.
    pub fn solve_colgen(
        &mut self,
        gen: &mut dyn ColGen,
        opts: &SolveOptions,
    ) -> Result<GenOutcome, SolveError> {
        self.solve_gen(&mut NoGen, gen, opts)
    }
}

impl From<Model> for SolverSession {
    fn from(model: Model) -> Self {
        SolverSession::new(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Sense, Status};

    fn toy() -> (SolverSession, Var, Var, RowId, RowId) {
        // max 3x + 2y  s.t.  x + y <= 4,  x + 3y <= 6
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_nonneg("x", 3.0);
        let y = m.add_nonneg("y", 2.0);
        let r1 = m.add_row("r1", x + y, Cmp::Le, 4.0);
        let r2 = m.add_row("r2", 1.0 * x + 3.0 * y, Cmp::Le, 6.0);
        (SolverSession::new(m), x, y, r1, r2)
    }

    #[test]
    fn first_solve_is_cold_then_rhs_change_restarts_dual() {
        let (mut s, x, _y, r1, _r2) = toy();
        let sol = s.solve(&SolveOptions::default()).unwrap();
        assert_eq!(sol.status(), Status::Optimal);
        assert!((sol.objective() - 12.0).abs() < 1e-7);
        assert_eq!(s.last_restart(), Some(Restart::Cold));

        // Relaxing r1 past what r2 allows pushes the old basis out of primal
        // feasibility (the r2 slack would go negative): dual restart.
        s.set_rhs(r1, 7.0);
        let sol2 = s.solve(&SolveOptions::default()).unwrap();
        assert!((sol2.objective() - 18.0).abs() < 1e-7);
        assert!((sol2.value(x) - 6.0).abs() < 1e-7);
        assert_eq!(s.last_restart(), Some(Restart::WarmDual));
        assert_eq!(s.stats().cold_starts, 1);
        assert_eq!(s.stats().warm_dual, 1);
    }

    #[test]
    fn rhs_slide_within_bounds_restarts_primal() {
        // Moving a binding RHS while every basic variable stays inside its
        // bounds keeps the basis primal feasible — no dual pass needed.
        let (mut s, x, _y, r1, _r2) = toy();
        s.solve(&SolveOptions::default()).unwrap();
        s.set_rhs(r1, 3.0);
        let sol = s.solve(&SolveOptions::default()).unwrap();
        assert!((sol.objective() - 9.0).abs() < 1e-7);
        assert!((sol.value(x) - 3.0).abs() < 1e-7);
        assert_eq!(s.last_restart(), Some(Restart::WarmPrimal));
    }

    #[test]
    fn obj_change_restarts_primal() {
        let (mut s, _x, y, _r1, _r2) = toy();
        s.solve(&SolveOptions::default()).unwrap();
        // Make y the attractive variable; the old basis stays primal
        // feasible so the restart must be primal.
        s.set_obj(y, 10.0);
        let sol = s.solve(&SolveOptions::default()).unwrap();
        assert_eq!(s.last_restart(), Some(Restart::WarmPrimal));
        // New optimum: y = 2 on r2, x = 0 → 20.
        assert!((sol.objective() - 20.0).abs() < 1e-7, "{}", sol.objective());
    }

    #[test]
    fn added_row_restarts_dual() {
        let (mut s, x, _y, _r1, _r2) = toy();
        let sol = s.solve(&SolveOptions::default()).unwrap();
        assert!((sol.value(x) - 4.0).abs() < 1e-7);
        // Cut off the current optimum.
        s.add_row("cut", 1.0 * x, Cmp::Le, 2.0);
        let sol2 = s.solve(&SolveOptions::default()).unwrap();
        assert_eq!(s.last_restart(), Some(Restart::WarmDual));
        assert!(sol2.value(x) <= 2.0 + 1e-7);
        // Agrees with a cold solve of the same model.
        let cold = s.model().solve().unwrap();
        assert!((sol2.objective() - cold.objective()).abs() < 1e-7);
    }

    #[test]
    fn added_var_reoptimizes_correctly() {
        let (mut s, _x, _y, r1, _r2) = toy();
        s.solve(&SolveOptions::default()).unwrap();
        // A new, very profitable variable entering r1.
        let z = s.add_var("z", 0.0, f64::INFINITY, 9.0);
        // It must participate in an existing row to be bounded — rebuild the
        // row relationship via a fresh row.
        s.add_row("zcap", 1.0 * z, Cmp::Le, 1.0);
        let sol = s.solve(&SolveOptions::default()).unwrap();
        let cold = s.model().solve().unwrap();
        assert!((sol.objective() - cold.objective()).abs() < 1e-7);
        assert!((sol.value(z) - 1.0).abs() < 1e-7);
        let _ = r1;
    }

    #[test]
    fn added_var_enters_existing_row_warm() {
        let (mut s, x, y, r1, _r2) = toy();
        s.solve(&SolveOptions::default()).unwrap();
        // New variable competing for r1's capacity: the column is fresh, so
        // the saved basis stays valid and the re-solve is warm.
        let z = s.add_var("z", 0.0, f64::INFINITY, 9.0);
        s.add_term(r1, z, 1.0);
        let sol = s.solve(&SolveOptions::default()).unwrap();
        assert_ne!(s.last_restart(), Some(Restart::Cold));
        let cold = s.model().solve().unwrap();
        assert!((sol.objective() - cold.objective()).abs() < 1e-7);
        // z (value 9) displaces x and y (values 3, 2) on r1 entirely.
        assert!((sol.value(z) - 4.0).abs() < 1e-7);
        let _ = (x, y);
    }

    #[test]
    fn retrofitting_old_column_invalidates_basis() {
        let (mut s, x, _y, _r1, r2) = toy();
        s.solve(&SolveOptions::default()).unwrap();
        assert!(s.has_basis());
        // x already exists and r2 already exists: the basis matrix changes.
        s.add_term(r2, x, 1.0);
        assert!(!s.has_basis());
        let sol = s.solve(&SolveOptions::default()).unwrap();
        assert_eq!(s.last_restart(), Some(Restart::Cold));
        let cold = s.model().solve().unwrap();
        assert!((sol.objective() - cold.objective()).abs() < 1e-7);
    }

    #[test]
    fn force_cold_ignores_basis() {
        let (mut s, _x, _y, r1, _r2) = toy();
        s.solve(&SolveOptions::default()).unwrap();
        s.set_rhs(r1, 3.0);
        let opts = SolveOptions { force_cold: true, ..Default::default() };
        s.solve(&opts).unwrap();
        assert_eq!(s.last_restart(), Some(Restart::Cold));
    }

    #[test]
    fn mutation_tracking_and_reset() {
        let (mut s, x, _y, r1, _r2) = toy();
        assert!(s.pending_mutations().is_clean());
        s.set_rhs(r1, 5.0);
        s.set_bounds(x, 0.0, 3.0);
        let m = s.pending_mutations();
        assert!(m.rhs && m.bounds && !m.obj);
        s.solve(&SolveOptions::default()).unwrap();
        assert!(s.pending_mutations().is_clean());
    }

    #[test]
    fn infeasible_after_bound_fix_reported() {
        let (mut s, x, y, _r1, _r2) = toy();
        s.solve(&SolveOptions::default()).unwrap();
        // Force x + y >= 9 while x,y <= 4 each: infeasible.
        s.add_row("floor", x + y, Cmp::Ge, 9.0);
        s.set_bounds(x, 0.0, 4.0);
        s.set_bounds(y, 0.0, 4.0);
        let err = s.solve(&SolveOptions::default()).unwrap_err();
        assert!(matches!(err, SolveError::Infeasible { .. }), "{err}");
    }

    #[test]
    fn unchanged_resolve_is_a_cache_hit() {
        let (mut s, _x, _y, r1, _r2) = toy();
        let first = s.solve(&SolveOptions::default()).unwrap();
        let again = s.solve(&SolveOptions::default()).unwrap();
        // Bit-for-bit the same answer, zero additional simplex work.
        assert_eq!(first.values(), again.values());
        assert_eq!(first.duals(), again.duals());
        assert_eq!(s.stats().solves, 1);
        assert_eq!(s.stats().cache_hits, 1);
        // A mutation ends the cache's validity.
        s.set_rhs(r1, 5.0);
        s.solve(&SolveOptions::default()).unwrap();
        assert_eq!(s.stats().solves, 2);
        assert_eq!(s.stats().cache_hits, 1);
    }

    #[test]
    fn force_cold_bypasses_cache() {
        let (mut s, _x, _y, _r1, _r2) = toy();
        s.solve(&SolveOptions::default()).unwrap();
        let opts = SolveOptions { force_cold: true, ..Default::default() };
        s.solve(&opts).unwrap();
        assert_eq!(s.stats().cache_hits, 0);
        assert_eq!(s.stats().cold_starts, 2);
    }

    #[test]
    fn fix_at_cached_value_preserves_cache() {
        let (mut s, x, y, _r1, _r2) = toy();
        let sol = s.solve(&SolveOptions::default()).unwrap();
        // Pinning variables at their optimal values provably changes
        // nothing — the next solve is a pure cache hit.
        s.fix_at_value(x, sol.value(x));
        s.fix_at_value(y, sol.value(y));
        assert!(s.pending_mutations().is_clean());
        s.solve(&SolveOptions::default()).unwrap();
        assert_eq!(s.stats().cache_hits, 1);
        // Pinning off the cached value is a real bound mutation.
        s.fix_at_value(x, 1.0);
        assert!(s.pending_mutations().bounds);
        let sol2 = s.solve(&SolveOptions::default()).unwrap();
        assert!((sol2.value(x) - 1.0).abs() < 1e-9);
        assert_eq!(s.stats().cache_hits, 1);
    }

    /// Two independent blocks coupled by one shared capacity row — the
    /// miniature of the SAM block-angular structure. Freezing the untouched
    /// block and re-solving the other against the residual must certify and
    /// agree with the full re-solve.
    fn coupled() -> (SolverSession, Var, Var, RowId, RowId, RowId) {
        // max 3a + 2b  s.t.  a <= 4 (da), b <= 6 (db), a + b <= 8 (shared)
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_nonneg("a", 3.0);
        let b = m.add_nonneg("b", 2.0);
        let da = m.add_row("da", 1.0 * a, Cmp::Le, 4.0);
        let db = m.add_row("db", 1.0 * b, Cmp::Le, 6.0);
        let shared = m.add_row("shared", a + b, Cmp::Le, 8.0);
        (SolverSession::new(m), a, b, da, db, shared)
    }

    #[test]
    fn restricted_solve_certifies_and_matches_full() {
        let (mut s, a, b, _da, db, _shared) = coupled();
        let sol = s.solve(&SolveOptions::default()).unwrap();
        // Optimum: a = 4 (da binding), b = 4 (shared binding).
        assert!((sol.value(a) - 4.0).abs() < 1e-7);
        assert!((sol.value(b) - 4.0).abs() < 1e-7);

        // Localized change in b's block: tighten db below b's current use.
        s.set_rhs(db, 3.0);
        let frozen_a = sol.value(a);
        let out = s.solve_restricted(&[(a, frozen_a)], 1e-7, &SolveOptions::default()).unwrap();
        assert!(out.certified, "violation {}", out.max_violation);
        assert_eq!(out.sub_vars, 1);
        // a's block froze bitwise; b re-optimized against the residual.
        assert_eq!(out.solution.value(a), frozen_a);
        assert!((out.solution.value(b) - 3.0).abs() < 1e-7);
        // Agrees with the full re-solve of the same mutated model.
        let full = s.model().solve().unwrap();
        assert!((out.solution.objective() - full.objective()).abs() < 1e-7);
        // A certified restricted solve is adopted: nothing pending, and an
        // unchanged follow-up solve is answered from cache.
        assert!(s.pending_mutations().is_clean());
        let next = s.solve(&SolveOptions::default()).unwrap();
        assert_eq!(next.values(), out.solution.values());
        assert_eq!(s.stats().cache_hits, 1);
    }

    #[test]
    fn restricted_solve_completes_dropped_row_duals() {
        // Freeze a at its optimum where the *dropped* row `da` is what
        // supports a's reduced cost (rc_a = 3 − y_da − y_shared). The
        // localized change unbinds the shared row, shifting a's support
        // entirely onto its private row — the dual-completion sweep must
        // re-aim y_da or the certificate would spuriously fail on a
        // perfectly optimal freeze.
        let (mut s, a, _b, da, db, _shared) = coupled();
        let sol = s.solve(&SolveOptions::default()).unwrap();
        s.set_rhs(db, 3.5);
        let out = s.solve_restricted(&[(a, sol.value(a))], 1e-7, &SolveOptions::default()).unwrap();
        assert!(out.certified, "violation {}", out.max_violation);
        assert!(out.solution.dual(da) > 0.0, "inherited dual lost");
        // The frozen column's recomputed reduced cost matches what a full
        // solve reports for the same model (sign-convention pin).
        let full = s.model().solve().unwrap();
        assert!(
            (out.solution.reduced_cost(a) - full.reduced_cost(a)).abs() < 1e-7,
            "rc {} vs full {}",
            out.solution.reduced_cost(a),
            full.reduced_cost(a)
        );
    }

    #[test]
    fn restricted_solve_detects_stale_freeze() {
        let (mut s, a, b, _da, _db, _shared) = coupled();
        s.solve(&SolveOptions::default()).unwrap();
        // Freeze a somewhere clearly suboptimal (interior, rc > 0): the
        // certificate must refuse, and the session must adopt nothing.
        let pending_before = s.pending_mutations();
        let out = s.solve_restricted(&[(a, 1.0)], 1e-7, &SolveOptions::default()).unwrap();
        assert!(!out.certified);
        assert!(out.max_violation > 1e-3, "violation {}", out.max_violation);
        assert_eq!(s.pending_mutations(), pending_before);
        let _ = b;
    }

    #[test]
    fn restricted_solve_flags_infeasible_frozen_rows() {
        let (mut s, a, b, da, _db, _shared) = coupled();
        s.solve(&SolveOptions::default()).unwrap();
        // Tighten a's private row below its frozen value: the dropped row
        // is primally violated, so the composite cannot certify.
        s.set_rhs(da, 2.0);
        let out = s.solve_restricted(&[(a, 4.0)], 1e-7, &SolveOptions::default()).unwrap();
        assert!(!out.certified);
        assert!(out.max_violation >= 2.0 - 1e-9);
        let _ = b;
    }

    #[test]
    fn lazy_rounds_reuse_basis() {
        // max x + y, hidden rows generated lazily.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 10.0, 1.0);
        let y = m.add_var("y", 0.0, 10.0, 1.0);
        let mut s = SolverSession::new(m);
        let hidden: Vec<(LinExpr, f64, u64)> =
            vec![(LinExpr::from(x), 3.0, 0), (LinExpr::from(y), 2.0, 1), (x + y, 4.0, 2)];
        let mut returned: rand::DetHashSet<u64> = Default::default();
        let mut gen = move |_: &Model, sol: &Solution| {
            let mut out = Vec::new();
            for (e, rhs, k) in &hidden {
                if !returned.contains(k) && e.eval(sol.values()) > rhs + 1e-7 {
                    returned.insert(*k);
                    out.push(crate::lazy::RowRequest {
                        name: format!("h{k}"),
                        expr: e.clone(),
                        cmp: Cmp::Le,
                        rhs: *rhs,
                        key: *k,
                    });
                }
            }
            out
        };
        let out = s.solve_lazy(&mut gen, &SolveOptions::default()).unwrap();
        assert!((out.solution.objective() - 4.0).abs() < 1e-7);
        assert!(out.rounds >= 2);
        // Only the first round was cold.
        assert_eq!(s.stats().cold_starts, 1);
        assert!(s.stats().warm_dual >= 1, "{:?}", s.stats());
        // Pure row generation reports no columns.
        assert!(out.generated_cols.is_empty());
        assert_eq!(s.stats().columns_generated, 0);
    }

    #[test]
    fn max_etas_overrides_refactor_cadence() {
        // A tiny max_etas forces refactorization every iteration — the
        // solve must still reach the same certified optimum.
        let (mut s, _x, _y, _r1, _r2) = toy();
        let opts = SolveOptions {
            tuning: SolverTuning { max_etas: 1, ..Default::default() },
            ..Default::default()
        };
        let sol = s.solve(&opts).unwrap();
        assert!((sol.objective() - 12.0).abs() < 1e-7);
        // And the default (0) leaves the model's cadence untouched.
        let eff = s.effective_simplex(&SolveOptions::default());
        assert_eq!(eff.refactor_every, s.model().options().refactor_every);
        let eff1 = s.effective_simplex(&opts);
        assert_eq!(eff1.refactor_every, 1);
    }

    #[test]
    fn default_cadence_is_the_shared_constant() {
        // The `0 → default` resolution lives in one place:
        // `basis::DEFAULT_MAX_ETAS` seeds the simplex default cadence, and
        // `Factorization::new` substitutes it for a literal zero.
        assert_eq!(
            SimplexOptions::default().refactor_every,
            crate::simplex::basis::DEFAULT_MAX_ETAS
        );
    }

    #[test]
    fn factor_counters_flow_into_session_stats() {
        let (mut s, _x, _y, _r1, _r2) = toy();
        s.solve(&SolveOptions::default()).unwrap();
        let st = s.stats();
        assert!(st.refactors >= 1, "cold solve refactorizes: {st:?}");
        assert!(st.basis_nnz >= 1 && st.factor_nnz >= st.basis_nnz, "{st:?}");
    }

    #[test]
    fn restricted_solves_resolve_zero_cadence_to_default() {
        // Sessions spun up internally by `solve_restricted` must inherit
        // the same `0 → DEFAULT_MAX_ETAS` resolution as top-level solves.
        let run = |cadence: usize| {
            let (mut s, a, _b, _da, db, _shared) = coupled();
            let sol = s.solve(&SolveOptions::default()).unwrap();
            s.set_rhs(db, 3.0);
            let opts = SolveOptions {
                simplex: Some(SimplexOptions {
                    refactor_every: cadence,
                    ..SimplexOptions::default()
                }),
                ..Default::default()
            };
            let before = s.stats();
            let out = s.solve_restricted(&[(a, sol.value(a))], 1e-7, &opts).unwrap();
            assert!(out.certified);
            (out.solution.objective(), s.stats().refactors - before.refactors)
        };
        // A literal zero must behave exactly like the shared default —
        // same optimum, same refactorization count — because the
        // resolution happens once, inside `Factorization::new`.
        let zero = run(0);
        let default = run(crate::simplex::basis::DEFAULT_MAX_ETAS);
        assert_eq!(zero, default);
        // And a cadence of 1 genuinely changes the sub-solve's behavior,
        // proving the override reaches the kernel (not just the options).
        let tight = run(1);
        assert!(tight.1 >= zero.1, "cadence 1 refactors at least as often");

        // `pricing_jobs` rides the same inheritance path: restricted
        // sub-solves pick it up through `effective_simplex`, zero resolves
        // to the serial default, and any worker count must reproduce the
        // serial objective bitwise (the parallel layer reduces in section
        // order — DESIGN.md §19).
        let par = |jobs: usize| {
            let (mut s, a, _b, _da, db, _shared) = coupled();
            let sol = s.solve(&SolveOptions::default()).unwrap();
            s.set_rhs(db, 3.0);
            let opts = SolveOptions {
                tuning: SolverTuning { pricing_jobs: jobs, ..Default::default() },
                ..Default::default()
            };
            let eff = s.effective_simplex(&opts);
            assert_eq!(eff.pricing_jobs, if jobs == 0 { 1 } else { jobs });
            let out = s.solve_restricted(&[(a, sol.value(a))], 1e-7, &opts).unwrap();
            assert!(out.certified);
            out.solution.objective().to_bits()
        };
        assert_eq!(par(0), par(8));
    }

    #[test]
    fn restricted_basis_cache_capacity_is_configurable() {
        let (mut s, a, _b, _da, db, _shared) = coupled();
        let sol = s.solve(&SolveOptions::default()).unwrap();
        let opts = SolveOptions {
            tuning: SolverTuning { restricted_basis_cache: 1, ..Default::default() },
            ..Default::default()
        };
        // Two distinct freeze patterns under capacity 1: the LRU holds at
        // most one terminal basis.
        s.set_rhs(db, 3.0);
        s.solve_restricted(&[(a, sol.value(a))], 1e-7, &opts).unwrap();
        assert_eq!(s.restricted_bases.len(), 1);
        let first_key = s.restricted_bases[0].0;
        s.solve_restricted(&[], 1e-7, &opts).unwrap();
        assert_eq!(s.restricted_bases.len(), 1);
        assert_ne!(s.restricted_bases[0].0, first_key, "older pattern evicted");
    }
}
