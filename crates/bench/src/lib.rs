//! Bench-only crate: see `benches/` for the Criterion harnesses that
//! regenerate every table and figure (lp_solver, table4_modules, figures).
