//! Common result type for every scheme (Pretium and baselines alike), so
//! the simulator computes all §6 metrics uniformly.

use pretium_net::{Network, TimeGrid, UsageTracker};
use pretium_workload::Request;

/// What a scheme did with a request stream.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Scheme label for reports.
    pub scheme: String,
    /// Units delivered per request (indexed by request position).
    pub delivered: Vec<f64>,
    /// Payment charged per request (0 for non-pricing schemes).
    pub payments: Vec<f64>,
    /// Realized link usage over the whole horizon.
    pub usage: UsageTracker,
    /// Whether the request was admitted at all.
    pub admitted: Vec<bool>,
}

impl Outcome {
    /// Empty outcome scaffold for `n` requests.
    pub fn new(scheme: &str, n: usize, num_edges: usize, horizon: usize) -> Self {
        Outcome {
            scheme: scheme.to_string(),
            delivered: vec![0.0; n],
            payments: vec![0.0; n],
            usage: UsageTracker::new(num_edges, horizon),
            admitted: vec![false; n],
        }
    }

    /// Social welfare (Equation 1): Σ v_i · delivered_i minus the **true**
    /// 95th-percentile operating cost of the realized usage, scaled by
    /// `cost_scale`.
    pub fn welfare(
        &self,
        requests: &[Request],
        net: &Network,
        grid: &TimeGrid,
        cost_scale: f64,
    ) -> f64 {
        let value: f64 = requests.iter().zip(&self.delivered).map(|(r, &d)| r.value * d).sum();
        value - cost_scale * self.usage.total_cost(net, grid)
    }

    /// Provider profit: payments minus true operating cost.
    pub fn profit(&self, net: &Network, grid: &TimeGrid, cost_scale: f64) -> f64 {
        self.payments.iter().sum::<f64>() - cost_scale * self.usage.total_cost(net, grid)
    }

    /// Fraction of requests fully served (delivered ≥ demand − ε).
    pub fn completion_rate(&self, requests: &[Request]) -> f64 {
        if requests.is_empty() {
            return 0.0;
        }
        let done =
            requests.iter().zip(&self.delivered).filter(|(r, &d)| d + 1e-6 >= r.demand).count();
        done as f64 / requests.len() as f64
    }

    /// Fraction of *admitted* requests fully served relative to what they
    /// purchased is scheme-specific; this reports delivered volume over
    /// total demand.
    pub fn volume_served_fraction(&self, requests: &[Request]) -> f64 {
        let demand: f64 = requests.iter().map(|r| r.demand).sum();
        if demand <= 0.0 {
            return 0.0;
        }
        self.delivered.iter().sum::<f64>() / demand
    }

    /// Total value captured, bucketed by request value per unit — the
    /// histogram of Figure 7b. Returns `(bucket upper edges, value sums)`.
    pub fn value_by_bucket(&self, requests: &[Request], edges: &[f64]) -> Vec<f64> {
        let mut sums = vec![0.0; edges.len()];
        for (r, &d) in requests.iter().zip(&self.delivered) {
            let b = edges.iter().position(|&e| r.value <= e).unwrap_or(edges.len() - 1);
            sums[b] += r.value * d;
        }
        sums
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pretium_net::{LinkCost, Region};
    use pretium_workload::{RequestId, RequestKind};

    fn req(value: f64, demand: f64) -> Request {
        Request {
            id: RequestId(0),
            src: pretium_net::NodeId(0),
            dst: pretium_net::NodeId(1),
            demand,
            value,
            arrival: 0,
            start: 0,
            deadline: 3,
            kind: RequestKind::Byte,
        }
    }

    fn tiny_net() -> Network {
        let mut net = Network::new();
        let a = net.add_node("A", Region::NorthAmerica);
        let b = net.add_node("B", Region::Europe);
        net.add_edge(a, b, 10.0, LinkCost::percentile(1.0));
        net
    }

    #[test]
    fn welfare_is_value_minus_true_cost() {
        let net = tiny_net();
        let grid = TimeGrid::new(4, 30);
        let requests = vec![req(2.0, 8.0)];
        let mut o = Outcome::new("test", 1, 1, 4);
        o.delivered[0] = 8.0;
        let e = net.edge_ids().next().unwrap();
        o.usage.record(e, 0, 8.0);
        // Value 16; 95th pct of [8,0,0,0] = 8 -> cost 8.
        assert!((o.welfare(&requests, &net, &grid, 1.0) - 8.0).abs() < 1e-9);
        assert!((o.welfare(&requests, &net, &grid, 2.0) - 0.0).abs() < 1e-9);
    }

    #[test]
    fn profit_uses_payments() {
        let net = tiny_net();
        let grid = TimeGrid::new(4, 30);
        let mut o = Outcome::new("test", 1, 1, 4);
        o.payments[0] = 10.0;
        let e = net.edge_ids().next().unwrap();
        o.usage.record(e, 1, 4.0);
        assert!((o.profit(&net, &grid, 1.0) - 6.0).abs() < 1e-9);
    }

    #[test]
    fn completion_counts_full_deliveries() {
        let requests = vec![req(1.0, 10.0), req(1.0, 10.0), req(1.0, 10.0)];
        let mut o = Outcome::new("t", 3, 1, 4);
        o.delivered = vec![10.0, 9.0, 10.0];
        assert!((o.completion_rate(&requests) - 2.0 / 3.0).abs() < 1e-12);
        assert!((o.volume_served_fraction(&requests) - 29.0 / 30.0).abs() < 1e-12);
    }

    #[test]
    fn value_buckets_accumulate() {
        let requests = vec![req(0.5, 2.0), req(1.5, 2.0), req(9.0, 2.0)];
        let mut o = Outcome::new("t", 3, 1, 4);
        o.delivered = vec![2.0, 2.0, 2.0];
        let sums = o.value_by_bucket(&requests, &[1.0, 2.0, 10.0]);
        assert_eq!(sums, vec![1.0, 3.0, 18.0]);
    }
}
