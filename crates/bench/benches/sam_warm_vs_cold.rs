//! Session reuse across SAM timesteps: replay one 16-timestep window of
//! the default evaluation scenario (12 nodes over 3 regions) through the
//! schedule layer twice — once carrying a [`ScheduleSession`] across steps
//! (the warm-started path `Pretium::run_sam` takes), and once rebuilding
//! and cold-solving the LP at every step (the pre-session behaviour).
//!
//! Reported as `sam_replay_warm`, `sam_replay_cold`, and their ratio; the
//! ratio lands in EXPERIMENTS.md next to the Table 4 SAM row. Target from
//! the incremental-solving redesign: >= 2x on this scenario.

use pretium_bench::{black_box, Harness};
use pretium_core::schedule::{self, Job, ScheduleProblem, ScheduleSession};
use pretium_core::TopkEncoding;
use pretium_net::{k_shortest_paths, EdgeId, Network, TimeGrid, Timestep};
use pretium_sim::ScenarioConfig;

const STEPS: usize = 16;
const K_PATHS: usize = 3;

/// Jobs for every request active inside the replayed window, with the
/// same k-shortest path sets the admission module would hand to SAM.
fn window_jobs(net: &Network, requests: &[pretium_workload::Request]) -> Vec<Job> {
    requests
        .iter()
        .filter(|r| r.start < STEPS)
        .enumerate()
        .map(|(i, r)| {
            let paths = k_shortest_paths(net, r.src, r.dst, K_PATHS, &|_| 1.0);
            // Half the demand guaranteed: exercises both the shortfall
            // machinery and the value-weighted best-effort remainder.
            Job::new(
                i,
                paths,
                r.start,
                r.deadline.min(STEPS - 1),
                r.value,
                r.demand * 0.5,
                r.demand,
            )
        })
        .collect()
}

fn no_realized(_: EdgeId, _: Timestep) -> f64 {
    0.0
}

fn main() {
    let mut h = Harness::new().sample_size(10);
    let scenario = ScenarioConfig::evaluation(rand::DEFAULT_SEED, 1.0).build();
    let net = scenario.net.clone();
    let grid = TimeGrid::new(STEPS, 30);
    let jobs = window_jobs(&net, &scenario.requests);
    assert!(jobs.len() >= 8, "scenario produced too few jobs: {}", jobs.len());
    let cap = |e: EdgeId, _t: Timestep| net.edge(e).capacity;

    let problem = |from: Timestep| ScheduleProblem {
        net: &net,
        grid: &grid,
        from,
        to: STEPS,
        jobs: &jobs,
        capacity: &cap,
        realized: &no_realized,
        topk: TopkEncoding::CVar,
        cost_scale: 1.0,
    };

    // Warm: one session built at t=0, advanced and re-solved each step.
    // Exactly what `run_sam` does within a window: executed flows frozen
    // at their planned values, everything later re-optimized warm.
    h.bench_function("sam_replay_warm", |b| {
        b.iter(|| {
            let mut sess = ScheduleSession::new(&problem(0));
            for t in 0..STEPS {
                sess.advance_to(t);
                black_box(sess.solve_step(&net, &cap, &no_realized).unwrap());
            }
            sess.lp_stats()
        });
    });

    // Cold: the pre-session design — rebuild the model from scratch and
    // solve with no basis at every timestep.
    h.bench_function("sam_replay_cold", |b| {
        b.iter(|| {
            for t in 0..STEPS {
                black_box(schedule::solve(&problem(t)).unwrap());
            }
        });
    });

    let warm = h.get("sam_replay_warm").unwrap().median();
    let cold = h.get("sam_replay_cold").unwrap().median();
    let ratio = cold.as_secs_f64() / warm.as_secs_f64();
    println!("sam_warm_vs_cold speedup: {ratio:.2}x (cold {cold:?} / warm {warm:?})");
    println!("BENCH\tsam_warm_vs_cold_ratio\t{:.3}", ratio);
}
