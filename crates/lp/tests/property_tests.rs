//! Property-based tests: random LPs with a known feasible point must solve
//! to a KKT-certified optimum that weakly dominates that point.
//!
//! The build environment has no registry access, so instead of `proptest`
//! these use a local deterministic xorshift generator: each property runs a
//! fixed number of randomized cases and reports the failing case's seed on
//! panic, which is enough to reproduce (the generator is seeded per case).

use pretium_lp::validate::{assert_optimal, check_optimal};
use pretium_lp::{Cmp, LinExpr, Model, Sense};

/// Deterministic xorshift64* stream in `[0, 1)`.
struct Gen(u64);

impl Gen {
    fn new(seed: u64) -> Self {
        Gen(seed.wrapping_mul(0x9E3779B97F4A7C15) | 1)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.unit()
    }

    fn index(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

const CASES: u64 = 64;

/// Build a random *feasible bounded* maximization LP:
/// variables x_j in [0, ub_j], rows a·x <= b with b = a·x0 + slack for a
/// random interior point x0, so feasibility is guaranteed by construction.
fn feasible_lp(g: &mut Gen) -> (Model, Vec<f64>, Vec<f64>) {
    let nvars = 2 + g.index(6);
    let nrows = 1 + g.index(9);
    let x0: Vec<f64> = (0..nvars).map(|_| g.range(0.0, 5.0)).collect();
    let objs: Vec<f64> = (0..nvars).map(|_| g.range(-1.0, 3.0)).collect();
    let mut m = Model::new(Sense::Maximize);
    let xs: Vec<_> =
        (0..nvars).map(|j| m.add_var(&format!("x{j}"), 0.0, x0[j] * 2.0 + 1.0, objs[j])).collect();
    for i in 0..nrows {
        let mut e = LinExpr::new();
        let mut lhs_at_x0 = 0.0;
        for (j, &x) in xs.iter().enumerate() {
            let c = g.range(-2.0, 2.0);
            if c.abs() > 0.05 {
                e.add_term(c, x);
                lhs_at_x0 += c * x0[j];
            }
        }
        m.add_row(&format!("r{i}"), e, Cmp::Le, lhs_at_x0 + g.range(0.0, 4.0));
    }
    (m, x0, objs)
}

#[test]
fn random_feasible_lps_reach_certified_optimum() {
    for seed in 0..CASES {
        let mut g = Gen::new(seed);
        let (m, x0, objs) = feasible_lp(&mut g);
        let sol = m.solve().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        // Optimum dominates the known feasible point.
        let val_at_x0: f64 = objs.iter().zip(&x0).map(|(c, v)| c * v).sum();
        assert!(
            sol.objective() >= val_at_x0 - 1e-6 * (1.0 + val_at_x0.abs()),
            "seed {seed}: optimum {} below feasible point {val_at_x0}",
            sol.objective()
        );
        // Full KKT certification.
        let violations = check_optimal(&m, &sol, 1e-6);
        assert!(violations.is_empty(), "seed {seed}: KKT violations: {violations:?}");
    }
}

#[test]
fn strong_duality_holds_on_random_inequality_lps() {
    for seed in 0..CASES {
        let mut g = Gen::new(seed ^ 0xA5A5);
        let nvars = 2 + g.index(4);
        let nrows = 1 + g.index(5);
        // All-positive data: max c·x, A x <= b, x >= 0 is always feasible
        // (x = 0) and bounded by the explicit upper bounds below.
        let mut m = Model::new(Sense::Maximize);
        let xs: Vec<_> =
            (0..nvars).map(|j| m.add_nonneg(&format!("x{j}"), g.range(0.1, 2.0))).collect();
        let mut rows = Vec::new();
        let mut bs = Vec::new();
        for i in 0..nrows {
            let mut e = LinExpr::new();
            for &x in &xs {
                e.add_term(g.range(0.1, 2.0), x);
            }
            let b = g.range(0.5, 10.0);
            rows.push(m.add_row(&format!("r{i}"), e, Cmp::Le, b));
            bs.push(b);
        }
        for &x in &xs {
            m.set_bounds(x, 0.0, 50.0);
        }
        let sol = m.solve().unwrap();
        assert_optimal(&m, &sol, 1e-6);
        // Weak duality with bound terms: y·b + Σ ub_j·max(0, c_j - yᵀA_j)
        // must dominate the objective.
        let yb: f64 = rows.iter().zip(&bs).map(|(r, b)| sol.dual(*r) * b).sum();
        let bound_part: f64 = (0..nvars)
            .map(|j| {
                let red = pretium_lp::validate::recompute_reduced(&m, &sol, j);
                50.0 * red.max(0.0)
            })
            .sum();
        assert!(
            yb + bound_part >= sol.objective() - 1e-5 * (1.0 + sol.objective().abs()),
            "seed {seed}: weak duality violated: {yb} + {bound_part} < {}",
            sol.objective()
        );
    }
}

#[test]
fn minimize_maximize_symmetry() {
    for seed in 0..CASES {
        let mut g = Gen::new(seed ^ 0x5A5A);
        let objs: Vec<f64> = (0..4).map(|_| g.range(-3.0, 3.0)).collect();
        let rhs = g.range(1.0, 10.0);
        // max c·x == -min (-c)·x on the same feasible set.
        let build = |sense: Sense, flip: f64| {
            let mut m = Model::new(sense);
            let xs: Vec<_> = objs
                .iter()
                .enumerate()
                .map(|(j, &c)| m.add_var(&format!("x{j}"), 0.0, 5.0, flip * c))
                .collect();
            let e = LinExpr::from_terms(xs.iter().map(|&x| (1.0, x)));
            m.add_row("sum", e, Cmp::Le, rhs);
            m.solve().unwrap().objective()
        };
        let maxed = build(Sense::Maximize, 1.0);
        let minned = build(Sense::Minimize, -1.0);
        assert!(
            (maxed + minned).abs() < 1e-6 * (1.0 + maxed.abs()),
            "seed {seed}: max {maxed} vs -min {minned}"
        );
    }
}

#[test]
fn equality_rows_hold_exactly() {
    for seed in 0..CASES {
        let mut g = Gen::new(seed ^ 0x3C3C);
        let target = g.range(0.5, 8.0);
        let objs: Vec<f64> = (0..5).map(|_| g.range(0.1, 2.0)).collect();
        let mut m = Model::new(Sense::Maximize);
        let xs: Vec<_> = objs
            .iter()
            .enumerate()
            .map(|(j, &c)| m.add_var(&format!("x{j}"), 0.0, 10.0, c))
            .collect();
        let e = LinExpr::from_terms(xs.iter().map(|&x| (1.0, x)));
        m.add_row("eq", e, Cmp::Eq, target);
        let sol = m.solve().unwrap();
        let total: f64 = xs.iter().map(|&x| sol.value(x)).sum();
        assert!((total - target).abs() < 1e-7 * (1.0 + target), "seed {seed}");
        // Everything should go to the variable with the largest coefficient.
        let best = objs.iter().cloned().fold(f64::MIN, f64::max);
        assert!(
            (sol.objective() - best * target).abs() < 1e-6 * (1.0 + best * target),
            "seed {seed}: {} vs {}",
            sol.objective(),
            best * target
        );
    }
}
