//! Numerical torture tests for the sparse LU basis factorization.
//!
//! Every case is driven by a deterministic xorshift generator, so failures
//! reproduce exactly. Correctness is judged by *residuals* — after
//! `ftran` solves `B·w = a`, the check is `‖B·w − a‖∞ ≤ 1e-9·(1 + ‖a‖∞)`
//! against the actual basis columns, which catches errors a comparison
//! between two buggy kernels would miss — plus a direct cross-check
//! against the dense-bump reference kernel on moderate sizes.

use pretium_lp::simplex::basis::dense_ref::DenseBumpFactorization;
use pretium_lp::simplex::basis::{FactorError, Factorization, SparseCol};

const RESIDUAL_TOL: f64 = 1e-9;

/// xorshift64* — deterministic, dependency-free.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    /// Uniform in `[0, 1)`.
    fn f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
    /// Uniform in `[-1, 1]`, bounded away from zero.
    fn coeff(&mut self) -> f64 {
        let v = self.f64() * 2.0 - 1.0;
        if v.abs() < 1e-3 {
            0.5
        } else {
            v
        }
    }
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

fn random_perm(m: usize, rng: &mut Rng) -> Vec<usize> {
    let mut p: Vec<usize> = (0..m).collect();
    for i in (1..m).rev() {
        p.swap(i, rng.below(i + 1));
    }
    p
}

/// A random nonsingular sparse basis: column `j` is anchored at row
/// `perm[j]` with a value strictly dominating the column's off-diagonal
/// mass (strict column diagonal dominance up to a row permutation ⇒
/// nonsingular), scaled by `anchor_scale` to manufacture near-singular
/// conditioning when < 1.
fn random_basis(m: usize, density: f64, anchor_scale: f64, rng: &mut Rng) -> Vec<SparseCol> {
    let perm = random_perm(m, rng);
    let mut cols = Vec::with_capacity(m);
    for &anchor in perm.iter().take(m) {
        let mut used = vec![false; m];
        used[anchor] = true;
        let mut col: SparseCol = Vec::new();
        let extra = ((m as f64 * density) as usize).min(m - 1);
        let mut mass = 0.0;
        for _ in 0..extra {
            let r = rng.below(m);
            if !used[r] {
                used[r] = true;
                let v = rng.coeff();
                mass += v.abs();
                col.push((r as u32, v));
            }
        }
        col.push((anchor as u32, (mass * 2.0 + 1.0) * anchor_scale));
        cols.push(col);
    }
    cols
}

fn random_rhs(m: usize, rng: &mut Rng) -> Vec<f64> {
    (0..m).map(|_| rng.f64() * 2.0 - 1.0).collect()
}

fn as_refs(cols: &[SparseCol]) -> Vec<&SparseCol> {
    cols.iter().collect()
}

/// `‖B·w − a‖∞` with `w` indexed by basis position.
fn ftran_residual(cols: &[SparseCol], w: &[f64], a: &[f64]) -> f64 {
    let mut r: Vec<f64> = a.iter().map(|&v| -v).collect();
    for (j, col) in cols.iter().enumerate() {
        for &(i, v) in col {
            r[i as usize] += v * w[j];
        }
    }
    r.iter().fold(0.0f64, |acc, &v| acc.max(v.abs()))
}

/// `maxⱼ |yᵀB_j − c_j|` with `c` indexed by basis position and `y` by row.
fn btran_residual(cols: &[SparseCol], y: &[f64], c: &[f64]) -> f64 {
    cols.iter()
        .enumerate()
        .map(|(j, col)| {
            let dot: f64 = col.iter().map(|&(i, v)| y[i as usize] * v).sum();
            (dot - c[j]).abs()
        })
        .fold(0.0, f64::max)
}

fn scale(a: &[f64]) -> f64 {
    1.0 + a.iter().fold(0.0f64, |acc, &v| acc.max(v.abs()))
}

#[test]
fn residuals_across_density_grid() {
    let mut rng = Rng::new(0xB10C_5EED_0000);
    for &m in &[20usize, 60, 120, 250] {
        for &density in &[0.01, 0.05, 0.15, 0.30] {
            let cols = random_basis(m, density, 1.0, &mut rng);
            let mut f = Factorization::new(m, 0, 1e-10);
            f.refactor(&as_refs(&cols)).expect("nonsingular by construction");
            for trial in 0..3 {
                let a = random_rhs(m, &mut rng);
                let mut w = Vec::new();
                f.ftran_dense(&a, &mut w);
                let res = ftran_residual(&cols, &w, &a);
                assert!(
                    res <= RESIDUAL_TOL * scale(&a),
                    "ftran residual {res:.3e} at m={m} density={density} trial={trial}"
                );
                let c = random_rhs(m, &mut rng);
                let mut y = Vec::new();
                f.btran(&c, &mut y);
                let res = btran_residual(&cols, &y, &c);
                assert!(
                    res <= RESIDUAL_TOL * scale(&c),
                    "btran residual {res:.3e} at m={m} density={density} trial={trial}"
                );
            }
        }
    }
}

#[test]
fn large_sparse_system_stays_accurate() {
    let mut rng = Rng::new(0x51AB_1E55_0000);
    let m = 500;
    let cols = random_basis(m, 0.01, 1.0, &mut rng);
    let mut f = Factorization::new(m, 0, 1e-10);
    f.refactor(&as_refs(&cols)).unwrap();
    let a = random_rhs(m, &mut rng);
    let mut w = Vec::new();
    f.ftran_dense(&a, &mut w);
    assert!(ftran_residual(&cols, &w, &a) <= RESIDUAL_TOL * scale(&a));
    let c = random_rhs(m, &mut rng);
    let mut y = Vec::new();
    f.btran(&c, &mut y);
    assert!(btran_residual(&cols, &y, &c) <= RESIDUAL_TOL * scale(&c));
}

#[test]
fn matches_dense_reference_kernel() {
    let mut rng = Rng::new(0xDEAD_BEEF_0000);
    for &m in &[15usize, 40, 90] {
        let cols = random_basis(m, 0.2, 1.0, &mut rng);
        let refs = as_refs(&cols);
        let mut sparse = Factorization::new(m, 0, 1e-10);
        sparse.refactor(&refs).unwrap();
        let mut dense = DenseBumpFactorization::new(m, 0, 1e-10);
        dense.refactor(&refs).unwrap();
        let a = random_rhs(m, &mut rng);
        let (mut ws, mut wd) = (Vec::new(), Vec::new());
        sparse.ftran_dense(&a, &mut ws);
        dense.ftran_dense(&a, &mut wd);
        for j in 0..m {
            assert!(
                (ws[j] - wd[j]).abs() <= 1e-8 * scale(&wd),
                "kernels disagree at m={m} pos={j}: {} vs {}",
                ws[j],
                wd[j]
            );
        }
        let c = random_rhs(m, &mut rng);
        let (mut ys, mut yd) = (Vec::new(), Vec::new());
        sparse.btran(&c, &mut ys);
        dense.btran(&c, &mut yd);
        for i in 0..m {
            assert!((ys[i] - yd[i]).abs() <= 1e-8 * scale(&yd), "btran disagrees at row {i}");
        }
    }
}

#[test]
fn permuted_identity_is_exact() {
    let mut rng = Rng::new(7);
    let m = 64;
    let perm = random_perm(m, &mut rng);
    let cols: Vec<SparseCol> = perm.iter().map(|&r| vec![(r as u32, 1.0)]).collect();
    let mut f = Factorization::new(m, 0, 1e-10);
    f.refactor(&as_refs(&cols)).unwrap();
    // No fill, no arithmetic: solving against e_{perm[j]} must return
    // e_j exactly (bitwise 1.0 / 0.0).
    for j in (0..m).step_by(7) {
        let a: SparseCol = vec![(perm[j] as u32, 1.0)];
        let mut w = Vec::new();
        f.ftran(&a, &mut w);
        for (p, &wp) in w.iter().enumerate() {
            assert_eq!(wp, if p == j { 1.0 } else { 0.0 }, "pos {p} of e_{j}");
        }
    }
}

#[test]
fn near_singular_basis_still_meets_residual_bound() {
    let mut rng = Rng::new(0x0ACE_0FBA_5E00);
    let m = 80;
    // Anchors shrunk to 1e-6 of the dominant scale: horrible conditioning
    // for a naive kernel, routine for threshold pivoting.
    let cols = random_basis(m, 0.1, 1e-6, &mut rng);
    let mut f = Factorization::new(m, 0, 1e-10);
    f.refactor(&as_refs(&cols)).unwrap();
    let a = random_rhs(m, &mut rng);
    let mut w = Vec::new();
    f.ftran_dense(&a, &mut w);
    assert!(ftran_residual(&cols, &w, &a) <= RESIDUAL_TOL * scale(&a));
    let c = random_rhs(m, &mut rng);
    let mut y = Vec::new();
    f.btran(&c, &mut y);
    assert!(btran_residual(&cols, &y, &c) <= RESIDUAL_TOL * scale(&c));
}

#[test]
fn exactly_singular_inputs_fail_gracefully() {
    let mut rng = Rng::new(99);
    let m = 30;
    // A structurally empty column.
    let mut cols = random_basis(m, 0.1, 1.0, &mut rng);
    cols[m / 2] = Vec::new();
    let err = Factorization::new(m, 0, 1e-10).refactor(&as_refs(&cols)).unwrap_err();
    let FactorError::Singular { position } = err;
    assert!(position < m);

    // A numerically dependent pair: two identical columns.
    let mut cols = random_basis(m, 0.1, 1.0, &mut rng);
    cols[4] = cols[21].clone();
    assert!(matches!(
        Factorization::new(m, 0, 1e-10).refactor(&as_refs(&cols)),
        Err(FactorError::Singular { .. })
    ));
}

#[test]
fn ft_update_chain_matches_fresh_refactor() {
    let mut rng = Rng::new(0x00F7_C8A1_5EED);
    let m = 80;
    let mut cols = random_basis(m, 0.12, 1.0, &mut rng);
    let mut f = Factorization::new(m, 0, 1e-10);
    f.refactor(&as_refs(&cols)).unwrap();

    let mut applied = 0;
    let mut attempts = 0;
    while applied < 25 && attempts < 200 {
        attempts += 1;
        // Entering column: another dominant random column so the updated
        // basis stays comfortably nonsingular.
        let entering = random_basis(m, 0.1, 1.0, &mut rng).pop().unwrap();
        let pos = rng.below(m);
        let mut dense_a = vec![0.0; m];
        for &(i, v) in &entering {
            dense_a[i as usize] = v;
        }
        let mut w = Vec::new();
        f.ftran_dense(&dense_a, &mut w);
        if !f.update(pos, &w) {
            // Rejected pivot: the kernel asks for a refactor — oblige and
            // retry with a different exchange.
            f.refactor(&as_refs(&cols)).unwrap();
            continue;
        }
        cols[pos] = entering;
        applied += 1;

        // Every 5 updates, the updated factorization must agree with a
        // from-scratch factorization of the same columns.
        if applied % 5 == 0 {
            let a = random_rhs(m, &mut rng);
            let mut w_upd = Vec::new();
            f.ftran_dense(&a, &mut w_upd);
            let mut fresh = Factorization::new(m, 0, 1e-10);
            fresh.refactor(&as_refs(&cols)).unwrap();
            let mut w_ref = Vec::new();
            fresh.ftran_dense(&a, &mut w_ref);
            for j in 0..m {
                assert!(
                    (w_upd[j] - w_ref[j]).abs() <= 1e-8 * scale(&w_ref),
                    "update drift at pos {j} after {applied} updates"
                );
            }
            assert!(ftran_residual(&cols, &w_upd, &a) <= 1e-8 * scale(&a));
        }
    }
    assert!(applied >= 25, "only {applied} of 25 updates accepted in {attempts} attempts");
    assert!(f.stats().ft_updates >= 25);
}
