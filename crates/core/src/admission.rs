//! The concurrent admission front end: epoch-published snapshots for
//! parallel quoting, and the deterministic sequencer that applies accepts.
//!
//! The paper's Request Admission (§4.1) is a pure read — price a menu
//! against current prices and the planned schedule — so quoting does not
//! need the `&mut Pretium` the serial loop used to thread through it.
//! This module splits admission into two halves:
//!
//! * [`AdmissionSnapshot`] — an immutable, `Arc`-shareable view of the
//!   network state published at a given *epoch* ([`Pretium::epoch`], bumped
//!   on every quote-relevant mutation). `quote(&self, ..)` is a pure read;
//!   any number of RA workers can price menus off one snapshot
//!   concurrently. Telemetry lives in atomic counters folded back into the
//!   owning system's [`crate::Telemetry`] when the snapshot retires.
//! * [`Sequencer`] — the single-threaded back end. It consumes
//!   [`QuoteTicket`]s (a quote plus the epoch it was priced at) in a fixed
//!   order chosen by the caller, validates each ticket against live state,
//!   and books accepts through [`Pretium::accept`]. Admission order is the
//!   sequencing order — never thread timing — so a pooled quote fan-out is
//!   bit-identical to the serial loop it replaced.
//!
//! # Epoch validation
//!
//! A ticket whose epoch matches the live epoch is *fresh*: its menu was
//! priced against exactly the current state. Within one batch the only
//! mutations are the sequencer's own accepts, and an accept changes
//! nothing but the reservations on its plan's `(edge, timestep)` slots —
//! prices, health, and high-pri set-asides are untouched. The sequencer
//! therefore tracks those dirtied slots, and a ticket from the batch's
//! base epoch stays valid as long as its *footprint* (every edge of every
//! admissible path × every timestep of its transfer window) misses the
//! dirty set: `build_menu` is a pure function of exactly those slots, so
//! the snapshot menu is bit-for-bit what a live re-quote would produce.
//! Only on overlap (or an epoch from before the snapshot) does the
//! sequencer re-quote against live state and re-invoke the customer's
//! response — reproducing the serial quote→accept interleaving exactly.

use crate::contract::{ContractId, RequestParams};
use crate::menu::{build_menu, PriceMenu};
use crate::pretium::Pretium;
use crate::state::NetworkState;
use crate::telemetry::Telemetry;
use pretium_lp::SolveError;
use pretium_net::{EdgeId, Network, SharedPathSet, Timestep, UsageTracker};
use rand::DetHashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Atomic quote telemetry of one snapshot: workers on many threads bump
/// these; the counters drain (exactly once) into the owning system's
/// [`Telemetry`] when the snapshot retires or is explicitly absorbed.
#[derive(Debug, Default)]
pub(crate) struct SnapshotStats {
    quotes: AtomicU64,
    empty: AtomicU64,
    total_nanos: AtomicU64,
    max_nanos: AtomicU64,
}

impl SnapshotStats {
    fn record(&self, empty: bool, nanos: u64) {
        self.quotes.fetch_add(1, Ordering::Relaxed);
        if empty {
            self.empty.fetch_add(1, Ordering::Relaxed);
        }
        self.total_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.max_nanos.fetch_max(nanos, Ordering::Relaxed);
    }

    /// Move the counters into `telemetry`, zeroing them (idempotent: a
    /// second drain moves nothing).
    pub(crate) fn drain_into(&self, telemetry: &mut Telemetry) {
        telemetry.quote.calls += self.quotes.swap(0, Ordering::Relaxed);
        telemetry.quote.total_nanos += self.total_nanos.swap(0, Ordering::Relaxed) as u128;
        let max = self.max_nanos.swap(0, Ordering::Relaxed) as u128;
        telemetry.quote.max_nanos = telemetry.quote.max_nanos.max(max);
        telemetry.quotes_empty += self.empty.swap(0, Ordering::Relaxed);
    }

    /// Move the counters into another accumulator (the owning system's
    /// pending sink) — the `Drop` path, where no `&mut Telemetry` is
    /// reachable. Idempotent like [`SnapshotStats::drain_into`].
    fn drain_into_stats(&self, sink: &SnapshotStats) {
        sink.quotes.fetch_add(self.quotes.swap(0, Ordering::Relaxed), Ordering::Relaxed);
        sink.empty.fetch_add(self.empty.swap(0, Ordering::Relaxed), Ordering::Relaxed);
        sink.total_nanos.fetch_add(self.total_nanos.swap(0, Ordering::Relaxed), Ordering::Relaxed);
        sink.max_nanos.fetch_max(self.max_nanos.swap(0, Ordering::Relaxed), Ordering::Relaxed);
    }
}

/// An immutable admission view published at one epoch: prices + planned
/// schedule (via a [`NetworkState`] clone) plus the shared path cache.
/// Cheaply shareable across RA workers behind `Arc`; see the module docs.
#[derive(Debug)]
pub struct AdmissionSnapshot {
    epoch: u64,
    horizon: usize,
    net: Arc<Network>,
    state: NetworkState,
    paths: Arc<SharedPathSet>,
    pub(crate) stats: SnapshotStats,
    /// The owning system's pending-quote sink. A snapshot can be retired
    /// (its counters drained) while pool workers still hold `Arc`s and keep
    /// quoting; whatever accrues after the drain is moved here on `Drop`
    /// and flushed into [`Telemetry`] at the system's next epoch bump or
    /// explicit absorb — no quote is ever lost.
    pending: Arc<SnapshotStats>,
}

impl Drop for AdmissionSnapshot {
    fn drop(&mut self) {
        self.stats.drain_into_stats(&self.pending);
    }
}

impl AdmissionSnapshot {
    pub(crate) fn new(
        epoch: u64,
        horizon: usize,
        net: Arc<Network>,
        state: NetworkState,
        paths: Arc<SharedPathSet>,
        pending: Arc<SnapshotStats>,
    ) -> Self {
        AdmissionSnapshot {
            epoch,
            horizon,
            net,
            state,
            paths,
            stats: SnapshotStats::default(),
            pending,
        }
    }

    /// The [`Pretium::epoch`] this snapshot was published at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// The frozen network state the snapshot quotes against.
    pub fn state(&self) -> &NetworkState {
        &self.state
    }

    /// RA step 1 (§4.1): price a menu for `params` — a pure read, safe to
    /// call from any number of threads on one snapshot. Timing and
    /// empty-menu counts are recorded symmetrically on every path (the
    /// no-route early return included) into the snapshot's atomics.
    pub fn quote(&self, params: &RequestParams) -> PriceMenu {
        let t0 = Instant::now();
        let paths = self.paths.paths(&self.net, params.src, params.dst);
        let menu = if paths.is_empty() {
            PriceMenu::default()
        } else {
            build_menu(&self.state, &paths, params.start, params.deadline.min(self.horizon - 1))
        };
        let nanos = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        self.stats.record(menu.is_empty(), nanos);
        menu
    }

    /// Quote and tag with this snapshot's epoch — the unit of work a
    /// parallel RA worker hands to the [`Sequencer`].
    pub fn ticket(&self, params: &RequestParams) -> QuoteTicket {
        QuoteTicket { params: params.clone(), menu: self.quote(params), epoch: self.epoch }
    }
}

/// A quote awaiting sequencing: the request's visible parameters, the menu
/// priced for them, and the epoch of the snapshot that priced it.
#[derive(Debug, Clone)]
pub struct QuoteTicket {
    pub params: RequestParams,
    pub menu: PriceMenu,
    pub epoch: u64,
}

/// The single-threaded admission back end: applies a batch of quote
/// tickets to the live system in the caller's order, re-quoting any ticket
/// whose snapshot menu can no longer be exact (see the module docs), and
/// triggers SAM on [`Sequencer::finish`].
///
/// Holding `&mut Pretium` guarantees no other mutation interleaves with
/// the batch, which is what makes the dirty-slot validation sound.
pub struct Sequencer<'a> {
    system: &'a mut Pretium,
    /// Live epoch when the batch started; tickets from this epoch may use
    /// their snapshot menu, anything older must re-quote.
    base_epoch: u64,
    /// `(edge, timestep)` slots whose reservations this batch's accepts
    /// changed — the only state a fresh ticket's menu could depend on.
    dirty: DetHashSet<(EdgeId, Timestep)>,
}

impl<'a> Sequencer<'a> {
    pub fn new(system: &'a mut Pretium) -> Self {
        let base_epoch = system.epoch();
        Sequencer { system, base_epoch, dirty: DetHashSet::default() }
    }

    /// Whether `ticket`'s snapshot menu is still exact against live state.
    fn still_exact(&self, ticket: &QuoteTicket) -> bool {
        if ticket.epoch != self.base_epoch {
            return false;
        }
        if self.dirty.is_empty() {
            return true;
        }
        let hi = ticket.params.deadline.min(self.system.horizon() - 1);
        let paths = self.system.paths_for(ticket.params.src, ticket.params.dst);
        paths.iter().all(|p| {
            p.edges()
                .iter()
                .all(|&e| (ticket.params.start..=hi).all(|t| !self.dirty.contains(&(e, t))))
        })
    }

    /// Sequence one ticket: validate its menu (re-quoting against live
    /// state when stale), ask the customer's `respond` callback for the
    /// purchase off the *valid* menu, and book the accept. The callback
    /// owns the customer's private value — it never crosses into Pretium.
    pub fn admit(
        &mut self,
        ticket: &QuoteTicket,
        respond: impl FnOnce(&PriceMenu) -> f64,
    ) -> Option<ContractId> {
        let requoted;
        let menu = if self.still_exact(ticket) {
            &ticket.menu
        } else {
            requoted = self.system.requote(&ticket.params);
            &requoted
        };
        let units = respond(menu);
        let id = self.system.accept(&ticket.params, menu, units)?;
        // The new contract's reservations dirty its plan's slots for the
        // rest of the batch.
        let contract = self.system.contract(id);
        let slots: Vec<(usize, Timestep)> =
            contract.plan.iter().map(|&(pi, t, _)| (pi, t)).collect();
        let paths = self.system.routes(id);
        for (pi, t) in slots {
            for &e in paths[pi].edges() {
                self.dirty.insert((e, t));
            }
        }
        Some(id)
    }

    /// Number of `(edge, timestep)` slots dirtied by this batch's accepts.
    pub fn dirty_slots(&self) -> usize {
        self.dirty.len()
    }

    /// The booked contract behind an id returned by [`Sequencer::admit`]
    /// (e.g. to read its payment while the batch is still open).
    pub fn contract(&self, id: ContractId) -> &crate::contract::Contract {
        self.system.contract(id)
    }

    /// Close the batch: run SAM at the configured cadence (`now %
    /// sam_every == 0`), exactly where the serial loop triggered it.
    pub fn finish(self, now: Timestep, realized: &UsageTracker) -> Result<(), SolveError> {
        if now.is_multiple_of(self.system.config().sam_every.max(1)) {
            self.system.run_sam(now, realized)?;
        }
        Ok(())
    }
}
