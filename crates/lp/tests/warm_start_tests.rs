//! Warm-start correctness properties.
//!
//! A `SolverSession` re-solve must be indistinguishable from a cold solve of
//! the same mutated model: identical objective, primal values, and dual
//! values to 1e-7, and a full KKT certificate on every warm result. The
//! models are "schedule shaped" — flow variables with bounds, demand rows,
//! and capacity rows — mutated the way SAM and the lazy row loop mutate
//! them: RHS refreshes, bound fixes, appended rows, appended variables.

use pretium_lp::validate::check_optimal;
use pretium_lp::{Cmp, LinExpr, Model, RowId, Sense, SolveOptions, SolverSession, Var};

/// Deterministic xorshift64* stream in `[0, 1)`.
struct Gen(u64);

impl Gen {
    fn new(seed: u64) -> Self {
        Gen(seed.wrapping_mul(0x9E3779B97F4A7C15) | 1)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.unit()
    }

    fn index(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }
}

struct ScheduleShaped {
    session: SolverSession,
    vars: Vec<Var>,
    demand_rows: Vec<RowId>,
    cap_rows: Vec<RowId>,
}

/// A small schedule-shaped LP: `jobs × steps` flow variables, one demand
/// row per job (`Σ_t X ≤ demand`), one capacity row per step over a random
/// subset of jobs (`Σ_j X ≤ cap`), maximizing value-weighted flow. Always
/// feasible (zero flow works).
fn schedule_shaped(g: &mut Gen) -> ScheduleShaped {
    let jobs = 2 + g.index(4);
    let steps = 2 + g.index(5);
    let mut m = Model::new(Sense::Maximize);
    let mut vars = Vec::new();
    for j in 0..jobs {
        let weight = g.range(0.5, 3.0);
        for t in 0..steps {
            vars.push(m.add_var(&format!("x_{j}_{t}"), 0.0, g.range(1.0, 6.0), weight));
        }
    }
    let mut demand_rows = Vec::new();
    for j in 0..jobs {
        let e = LinExpr::from_terms((0..steps).map(|t| (1.0, vars[j * steps + t])));
        demand_rows.push(m.add_row(&format!("dem{j}"), e, Cmp::Le, g.range(1.0, 8.0)));
    }
    let mut cap_rows = Vec::new();
    for t in 0..steps {
        let mut e = LinExpr::new();
        for j in 0..jobs {
            if g.chance(0.7) {
                e.add_term(1.0, vars[j * steps + t]);
            }
        }
        if !e.is_empty() {
            cap_rows.push(m.add_row(&format!("cap{t}"), e, Cmp::Le, g.range(1.0, 5.0)));
        }
    }
    ScheduleShaped { session: SolverSession::new(m), vars, demand_rows, cap_rows }
}

/// Apply one random mutation through the session, mirroring what SAM and
/// the lazy-row loop do between re-solves. `last` is the solution of the
/// previous solve (used to fix variables at *feasible* executed values, the
/// way SAM freezes past timesteps).
fn mutate(g: &mut Gen, s: &mut ScheduleShaped, last: &pretium_lp::Solution) {
    match g.index(5) {
        // Capacity refresh (SAM sees realized traffic / capacity loss).
        0 if !s.cap_rows.is_empty() => {
            let r = s.cap_rows[g.index(s.cap_rows.len())];
            s.session.set_rhs(r, g.range(0.5, 6.0));
        }
        // Fix a variable at (a fraction of) its executed value; every row is
        // `Le` with +1 coefficients, so reducing a variable stays feasible.
        1 => {
            let v = s.vars[g.index(s.vars.len())];
            if v.index() < last.values().len() {
                let fix = last.value(v) * g.unit();
                s.session.set_bounds(v, fix, fix);
            }
        }
        // Reweight a job (price updates shift the objective).
        2 => {
            let v = s.vars[g.index(s.vars.len())];
            s.session.set_obj(v, g.range(0.1, 4.0));
        }
        // Append a cutting row over existing variables (lazy capacity row).
        3 => {
            let mut e = LinExpr::new();
            for &v in &s.vars {
                if g.chance(0.3) {
                    e.add_term(1.0, v);
                }
            }
            if !e.is_empty() {
                let name = format!("cut{}", s.cap_rows.len() + 100);
                s.cap_rows.push(s.session.add_row(&name, e, Cmp::Le, g.range(1.0, 6.0)));
            }
        }
        // Append a variable tied into an existing row (new request).
        _ => {
            let name = format!("z{}", s.vars.len());
            let v = s.session.add_var(&name, 0.0, g.range(0.5, 3.0), g.range(0.5, 3.0));
            s.vars.push(v);
            if !s.demand_rows.is_empty() {
                let name = format!("zr{}", s.vars.len());
                s.demand_rows.push(s.session.add_row(&name, 1.0 * v, Cmp::Le, g.range(0.5, 4.0)));
            }
        }
    }
}

const TOL: f64 = 1e-7;

/// Compare a warm session solve against a cold solve of the same model.
/// Returns the warm solution when one exists (the two must agree on
/// solvability as well as on the optimum).
fn assert_warm_matches_cold(
    seed: u64,
    step: usize,
    s: &mut ScheduleShaped,
) -> Option<pretium_lp::Solution> {
    let warm_result = s.session.solve(&SolveOptions::default());
    let cold_result = s.session.model().solve();
    let (warm, cold) = match (warm_result, cold_result) {
        (Ok(w), Ok(c)) => (w, c),
        (Err(we), Err(_ce)) => {
            // Both paths reject the model (e.g. a capacity refresh dropped
            // below already-fixed executed amounts) — agreement is the
            // property; there is nothing further to compare.
            let _ = we;
            return None;
        }
        (Ok(w), Err(ce)) => {
            panic!("seed {seed} step {step}: warm found {} but cold failed: {ce}", w.objective())
        }
        (Err(we), Ok(c)) => {
            panic!("seed {seed} step {step}: cold found {} but warm failed: {we}", c.objective())
        }
    };
    let scale = 1.0 + cold.objective().abs();
    assert!(
        (warm.objective() - cold.objective()).abs() <= TOL * scale,
        "seed {seed} step {step}: warm obj {} vs cold {} (restart {:?})",
        warm.objective(),
        cold.objective(),
        s.session.last_restart(),
    );
    // Primal and dual agreement. Degenerate optima can have multiple optimal
    // bases; compare objective-relevant quantities instead of raw vectors
    // when they disagree: both must satisfy KKT, and the dual objectives
    // must coincide. Start with direct comparison — on these dense random
    // instances the optimum is almost always unique — and fall back to the
    // KKT cross-check when vectors differ.
    let primal_close = warm
        .values()
        .iter()
        .zip(cold.values())
        .all(|(a, b)| (a - b).abs() <= 1e-6 * (1.0 + b.abs()));
    let dual_close =
        warm.duals().iter().zip(cold.duals()).all(|(a, b)| (a - b).abs() <= 1e-6 * (1.0 + b.abs()));
    if !(primal_close && dual_close) {
        // Alternative optimum: each solution must independently certify.
        let cold_violations = check_optimal(s.session.model(), &cold, TOL * 10.0);
        assert!(
            cold_violations.is_empty(),
            "seed {seed} step {step}: cold solution fails KKT: {cold_violations:?}"
        );
    }
    // Every warm result must carry a full KKT certificate regardless.
    let violations = check_optimal(s.session.model(), &warm, TOL * 10.0);
    assert!(
        violations.is_empty(),
        "seed {seed} step {step}: warm KKT violations (restart {:?}): {violations:?}",
        s.session.last_restart(),
    );
    Some(warm)
}

#[test]
fn warm_resolves_match_cold_across_random_mutations() {
    let mut warm_seen = 0u32;
    for seed in 0..40 {
        let mut g = Gen::new(seed);
        let mut s = schedule_shaped(&mut g);
        // Initial cold solve to seat a basis.
        let Some(mut last) = assert_warm_matches_cold(seed, 0, &mut s) else {
            panic!("seed {seed}: base model must be feasible");
        };
        for step in 1..=6 {
            mutate(&mut g, &mut s, &last);
            if let Some(sol) = assert_warm_matches_cold(seed, step, &mut s) {
                last = sol;
                match s.session.last_restart() {
                    Some(pretium_lp::Restart::WarmPrimal) | Some(pretium_lp::Restart::WarmDual) => {
                        warm_seen += 1
                    }
                    _ => {}
                }
            }
        }
    }
    // The warm path must actually be exercised, not fall back cold always.
    assert!(warm_seen > 100, "only {warm_seen} warm restarts in 240 mutated solves");
}

#[test]
fn rhs_sweep_stays_warm_and_correct() {
    // A SAM-like sweep: the same capacity row tightens step by step.
    let mut g = Gen::new(0xBEEF);
    let mut s = schedule_shaped(&mut g);
    s.session.solve(&SolveOptions::default()).unwrap();
    let Some(&row) = s.cap_rows.first() else { return };
    for step in 0..10 {
        let rhs = 5.0 - 0.45 * step as f64;
        s.session.set_rhs(row, rhs.max(0.1));
        assert_warm_matches_cold(0xBEEF, step, &mut s);
        assert_ne!(
            s.session.last_restart(),
            Some(pretium_lp::Restart::Cold),
            "step {step} fell back to a cold solve"
        );
    }
    assert_eq!(s.session.stats().cold_starts, 1);
}

#[test]
fn growing_model_keeps_append_stable_basis() {
    // Interleave appended variables and rows with bound fixes — the case
    // where raw column indices shift and only append-stable keys survive.
    let mut g = Gen::new(0xFACE);
    let mut s = schedule_shaped(&mut g);
    assert_warm_matches_cold(0xFACE, 0, &mut s);
    for step in 0..8 {
        // Alternate append-variable and append-row mutations.
        if step % 2 == 0 {
            let name = format!("g{step}");
            let v = s.session.add_var(&name, 0.0, 2.0, 1.5);
            s.vars.push(v);
            let rname = format!("gr{step}");
            s.session.add_row(&rname, 1.0 * v, Cmp::Le, 1.0);
        } else {
            let mut e = LinExpr::new();
            for &v in s.vars.iter().step_by(2) {
                e.add_term(1.0, v);
            }
            let rname = format!("gc{step}");
            s.session.add_row(&rname, e, Cmp::Le, g.range(2.0, 8.0));
        }
        assert_warm_matches_cold(0xFACE, step + 1, &mut s);
    }
}
