//! Lazy generation oracles: violated rows and priced columns.
//!
//! Pretium's scheduling LPs are sparse in both directions. One capacity row
//! exists per `(link, timestep)` pair — `|E|·T` rows, of which only the
//! congested few percent ever bind — and one flow column exists per
//! `(path, timestep)` pair, of which only a few percent ever carry flow at
//! paper scale. Instead of materializing either side up front, the session
//! solves a *restricted* model and grows it on demand through two symmetric
//! oracles:
//!
//! * a [`RowGen`] inspects a tentative optimum and returns rows it
//!   **violates** (the separation problem). Rows never generated are
//!   satisfied at the final optimum and have dual zero by construction.
//! * a [`ColGen`] inspects the duals of a restricted-master optimum and
//!   returns absent columns with **favorable reduced cost** (the pricing
//!   problem). Columns never generated are nonbasic at bound by
//!   construction, so the terminal duals certify optimality over the full
//!   column universe.
//!
//! [`crate::SolverSession::solve_gen`] runs both oracles against the same
//! session in one loop (warm-starting every round from the saved basis);
//! [`crate::SolverSession::solve_lazy`] and
//! [`crate::SolverSession::solve_colgen`] are the one-sided entry points,
//! each passing [`NoGen`] for the silent side. All three return the shared
//! [`GenOutcome`] shape.

use crate::expr::Var;
use crate::model::{Cmp, Model, RowId};
use crate::solution::Solution;
use crate::LinExpr;

/// One row requested by a [`RowGen`].
#[derive(Debug, Clone)]
pub struct RowRequest {
    pub name: String,
    pub expr: LinExpr,
    pub cmp: Cmp,
    pub rhs: f64,
    /// Caller-chosen key so duals of generated rows can be identified later
    /// (e.g. the `(link, timestep)` pair of a capacity row).
    pub key: u64,
}

/// Generates rows violated by a tentative solution (the separation oracle).
pub trait RowGen {
    /// Inspect `sol` and return rows it violates (empty when none). The
    /// callback must be *monotone*: it may not retract rows it returned
    /// before (they stay in the model).
    fn violated(&mut self, model: &Model, sol: &Solution) -> Vec<RowRequest>;
}

impl<F> RowGen for F
where
    F: FnMut(&Model, &Solution) -> Vec<RowRequest>,
{
    fn violated(&mut self, model: &Model, sol: &Solution) -> Vec<RowRequest> {
        self(model, sol)
    }
}

/// One column requested by a [`ColGen`].
///
/// The column's coefficients land in *existing* rows — pairing a fresh
/// column with pre-existing rows is the warm-safe growth direction (the
/// saved basis never references the new column, so it enters nonbasic at
/// bound and the next solve restarts warm).
#[derive(Debug, Clone)]
pub struct ColRequest {
    pub name: String,
    pub lb: f64,
    pub ub: f64,
    /// Objective coefficient of the new column.
    pub obj: f64,
    /// `(row, coefficient)` entries of the column.
    pub terms: Vec<(RowId, f64)>,
    /// Caller-chosen key so generated columns can be identified later
    /// (e.g. the `(job, path, timestep)` triple of a flow column).
    pub key: u64,
}

impl ColRequest {
    /// Reduced cost of this column against `sol`'s duals:
    /// `d = obj − Σ_i y_i · a_i`. Under `Sense::Maximize` the column prices
    /// out (is worth adding) when `d > 0`; under `Sense::Minimize` when
    /// `d < 0`.
    pub fn reduced_cost(&self, sol: &Solution) -> f64 {
        self.terms.iter().fold(self.obj, |d, &(r, c)| d - sol.dual(r) * c)
    }
}

/// Generates absent columns with favorable reduced cost (the pricing
/// oracle).
pub trait ColGen {
    /// Inspect the duals of a restricted-master optimum and return absent
    /// columns that price out (empty when none — the terminal duals then
    /// certify optimality over the full column universe). Like [`RowGen`],
    /// the callback must be *monotone*: columns it returned stay in the
    /// model, and it must not return the same column twice.
    fn priced(&mut self, model: &Model, sol: &Solution) -> Vec<ColRequest>;
}

impl<F> ColGen for F
where
    F: FnMut(&Model, &Solution) -> Vec<ColRequest>,
{
    fn priced(&mut self, model: &Model, sol: &Solution) -> Vec<ColRequest> {
        self(model, sol)
    }
}

/// The identity oracle: never generates anything. The one-sided entry
/// points pass it for the silent side — `solve_lazy(gen) =
/// solve_gen(gen, NoGen)` and `solve_colgen(gen) = solve_gen(NoGen, gen)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoGen;

impl RowGen for NoGen {
    fn violated(&mut self, _model: &Model, _sol: &Solution) -> Vec<RowRequest> {
        Vec::new()
    }
}

impl ColGen for NoGen {
    fn priced(&mut self, _model: &Model, _sol: &Solution) -> Vec<ColRequest> {
        Vec::new()
    }
}

/// Result of a generation solve ([`crate::SolverSession::solve_lazy`],
/// [`crate::SolverSession::solve_colgen`], or the combined
/// [`crate::SolverSession::solve_gen`]): the final solution plus the
/// mapping from oracle keys to the rows and columns that were materialized.
#[derive(Debug, Clone)]
pub struct GenOutcome {
    pub solution: Solution,
    /// `(key, row)` for every row added by the row oracle, in insertion
    /// order. Rows never generated are implicitly non-binding (dual 0).
    pub generated_rows: Vec<(u64, RowId)>,
    /// `(key, var)` for every column added by the column oracle, in
    /// insertion order. Columns never generated are implicitly nonbasic at
    /// bound (the terminal duals price them unfavorably).
    pub generated_cols: Vec<(u64, Var)>,
    /// Number of solve rounds (≥ 1).
    pub rounds: u32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{SolveOptions, SolverSession};
    use crate::solution::SolveError;
    use crate::{Model, Sense};

    fn solve_lazy(
        model: Model,
        gen: &mut dyn RowGen,
        max_rounds: u32,
    ) -> Result<GenOutcome, SolveError> {
        let mut session = SolverSession::new(model);
        session.solve_lazy(gen, &SolveOptions { max_rounds, ..Default::default() })
    }

    /// max x + y with hidden rows x <= 3, y <= 2, x + y <= 4 generated
    /// lazily; explicit model only bounds vars at 10.
    #[test]
    fn converges_to_full_problem_optimum() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 10.0, 1.0);
        let y = m.add_var("y", 0.0, 10.0, 1.0);
        let hidden: Vec<(LinExpr, f64, u64)> =
            vec![(LinExpr::from(x), 3.0, 0), (LinExpr::from(y), 2.0, 1), (x + y, 4.0, 2)];
        let mut gen = move |model: &Model, sol: &Solution| {
            hidden
                .iter()
                .filter(|(e, rhs, _)| e.eval(sol.values()) > rhs + 1e-7)
                .map(|(e, rhs, k)| RowRequest {
                    name: format!("h{k}"),
                    expr: e.clone(),
                    cmp: Cmp::Le,
                    rhs: *rhs,
                    key: *k,
                })
                .collect::<Vec<_>>()
                .into_iter()
                // deduplicate against rows already added
                .filter(|r| {
                    !(0..model.num_rows()).any(|i| model.row_name(RowId::from_index(i)) == r.name)
                })
                .collect()
        };
        let out = solve_lazy(m, &mut gen, 10).unwrap();
        assert!((out.solution.objective() - 4.0).abs() < 1e-7);
        assert!(out.rounds >= 2, "should need at least one generation round");
        assert!(out.generated_cols.is_empty());
    }

    #[test]
    fn no_violations_returns_first_solution() {
        let mut m = Model::new(Sense::Maximize);
        let _x = m.add_var("x", 0.0, 1.0, 1.0);
        let mut gen = |_: &Model, _: &Solution| Vec::new();
        let out = solve_lazy(m, &mut gen, 5).unwrap();
        assert_eq!(out.rounds, 1);
        assert!((out.solution.objective() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn round_limit_enforced() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 10.0, 1.0);
        // Pathological generator: always "violated", adds ever-looser rows.
        let mut n = 0u64;
        let mut gen = move |_: &Model, _: &Solution| {
            n += 1;
            vec![RowRequest {
                name: format!("r{n}"),
                expr: LinExpr::from(x),
                cmp: Cmp::Le,
                rhs: 100.0 + n as f64,
                key: n,
            }]
        };
        let err = solve_lazy(m, &mut gen, 3).unwrap_err();
        assert!(matches!(err, SolveError::IterationLimit { .. }));
    }

    /// Column generation over a hidden column universe: max Σ c_j x_j with
    /// one shared capacity row, columns appended only when they price out.
    /// The restricted master starts with the worst column and must finish
    /// at the optimum of the full universe.
    #[test]
    fn colgen_converges_to_full_universe_optimum() {
        // Universe: columns with objective 1.0, 2.0, 3.0, each consuming 1
        // unit of a capacity-2 row. Full optimum: the two best ⇒ obj 5.
        let mut m = Model::new(Sense::Maximize);
        let x0 = m.add_var("x0", 0.0, 1.0, 1.0);
        let cap = m.add_row("cap", LinExpr::from(x0), Cmp::Le, 2.0);
        let mut next = 1u64;
        let mut gen = move |_: &Model, sol: &Solution| {
            let mut out = Vec::new();
            while next <= 2 {
                let req = ColRequest {
                    name: format!("x{next}"),
                    lb: 0.0,
                    ub: 1.0,
                    obj: 1.0 + next as f64,
                    terms: vec![(cap, 1.0)],
                    key: next,
                };
                // Only append when the duals say it is worth it.
                if req.reduced_cost(sol) > 1e-9 {
                    next += 1;
                    out.push(req);
                } else {
                    break;
                }
            }
            out
        };
        let mut s = SolverSession::new(m);
        let out = s.solve_colgen(&mut gen, &SolveOptions::default()).unwrap();
        assert!((out.solution.objective() - 5.0).abs() < 1e-7, "{}", out.solution.objective());
        assert_eq!(out.generated_cols.len(), 2);
        assert!(out.generated_rows.is_empty());
        assert!(out.rounds >= 2);
        assert_eq!(s.stats().columns_generated, 2);
        assert!(s.stats().colgen_rounds >= 1);
        // Only the first round was cold — colgen rounds restart warm.
        assert_eq!(s.stats().cold_starts, 1);
    }

    /// Rows and columns generated against the same session in one solve:
    /// the combined loop must satisfy the row oracle *and* leave no column
    /// pricing out.
    #[test]
    fn combined_row_and_column_generation() {
        // max x0 + 3 x1 (x1 lazy) s.t. x0 + x1 <= 3 (cap), x1 <= 1 (lazy).
        let mut m = Model::new(Sense::Maximize);
        let x0 = m.add_var("x0", 0.0, 10.0, 1.0);
        let cap = m.add_row("cap", LinExpr::from(x0), Cmp::Le, 3.0);
        let mut col_done = false;
        let mut cols = move |_: &Model, sol: &Solution| {
            if col_done {
                return Vec::new();
            }
            let req = ColRequest {
                name: "x1".into(),
                lb: 0.0,
                ub: 10.0,
                obj: 3.0,
                terms: vec![(cap, 1.0)],
                key: 1,
            };
            if req.reduced_cost(sol) > 1e-9 {
                col_done = true;
                vec![req]
            } else {
                Vec::new()
            }
        };
        let mut row_done = false;
        let mut rows = move |model: &Model, sol: &Solution| {
            // Once x1 exists, cap it at 1 (a row the column's optimum
            // violates).
            if row_done || model.num_vars() < 2 {
                return Vec::new();
            }
            let x1 = Var::from_index(1);
            if sol.value(x1) > 1.0 + 1e-7 {
                row_done = true;
                vec![RowRequest {
                    name: "x1cap".into(),
                    expr: LinExpr::from(x1),
                    cmp: Cmp::Le,
                    rhs: 1.0,
                    key: 7,
                }]
            } else {
                Vec::new()
            }
        };
        let mut s = SolverSession::new(m);
        let out = s.solve_gen(&mut rows, &mut cols, &SolveOptions::default()).unwrap();
        // Optimum of the full problem: x1 = 1 (worth 3), x0 = 2 (worth 2).
        assert!((out.solution.objective() - 5.0).abs() < 1e-7, "{}", out.solution.objective());
        assert_eq!(out.generated_cols.len(), 1);
        assert_eq!(out.generated_rows.len(), 1);
        assert_eq!(out.generated_rows[0].0, 7);
    }

    /// NoGen on both sides degenerates to a plain solve.
    #[test]
    fn nogen_is_identity() {
        let mut m = Model::new(Sense::Maximize);
        let _x = m.add_var("x", 0.0, 2.0, 1.0);
        let mut s = SolverSession::new(m);
        let out = s.solve_gen(&mut NoGen, &mut NoGen, &SolveOptions::default()).unwrap();
        assert_eq!(out.rounds, 1);
        assert!(out.generated_rows.is_empty() && out.generated_cols.is_empty());
        assert!((out.solution.objective() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn reduced_cost_matches_definition() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 4.0, 1.0);
        let r = m.add_row("r", LinExpr::from(x), Cmp::Le, 2.0);
        let sol = m.solve().unwrap();
        // Binding row: y = 1 (raising rhs by 1 gains 1).
        let req = ColRequest {
            name: "z".into(),
            lb: 0.0,
            ub: 1.0,
            obj: 3.0,
            terms: vec![(r, 2.0)],
            key: 0,
        };
        assert!((req.reduced_cost(&sol) - (3.0 - 2.0 * sol.dual(r))).abs() < 1e-12);
    }
}
