//! Scenario bundles: topology + traffic trace + request stream, generated
//! from one seeded configuration so every scheme replays the *same* world.

use pretium_net::{topology, Network, TimeGrid};
use pretium_workload::{
    generate_requests, generate_trace, Request, RequestConfig, TrafficConfig, TrafficTrace,
};
use rand::derive_seed;

/// Everything needed to run one experiment.
#[derive(Debug, Clone)]
pub struct Scenario {
    pub net: Network,
    pub grid: TimeGrid,
    pub horizon: usize,
    pub trace: TrafficTrace,
    pub requests: Vec<Request>,
}

/// Seeded generator configuration.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    pub topology: topology::TopologyConfig,
    /// Steps per window (billing + pricing window; a "day").
    pub steps_per_window: usize,
    /// Number of windows simulated.
    pub windows: usize,
    pub traffic: TrafficConfig,
    pub requests: RequestConfig,
    /// Demand multiplier (§6.1 "load factor").
    pub load_factor: f64,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            topology: topology::TopologyConfig::default(),
            steps_per_window: 24,
            windows: 2,
            traffic: TrafficConfig::default(),
            requests: RequestConfig::default(),
            load_factor: 1.0,
        }
    }
}

impl ScenarioConfig {
    /// A small scenario for fast tests: 6 nodes, 12-step windows, 2
    /// windows.
    pub fn tiny(seed: u64) -> Self {
        ScenarioConfig {
            topology: topology::TopologyConfig {
                nodes_per_region: vec![3, 3],
                inter_links_per_pair: 2,
                seed,
                ..Default::default()
            },
            steps_per_window: 12,
            windows: 2,
            traffic: TrafficConfig {
                pair_activity: 0.2,
                seed: derive_seed(seed, "traffic"),
                ..Default::default()
            },
            requests: RequestConfig {
                requests_per_pair_window: 1.5,
                max_window: 8,
                seed: derive_seed(seed, "requests"),
                ..Default::default()
            },
            load_factor: 1.0,
        }
    }

    /// The default evaluation scale (see DESIGN.md §3): ~16 nodes over 3
    /// regions, 24-step windows, 2 windows.
    ///
    /// Tuned to the operating regime of the paper's production WAN: the
    /// inter-region long-haul links are the contended resource (they carry
    /// most traffic and are capacity-tight at load 1), and the
    /// percentile-billed links cost a multiple of the mean request value —
    /// so value-blind schemes can lose money while value-aware ones
    /// selectively admit.
    pub fn evaluation(seed: u64, load_factor: f64) -> Self {
        ScenarioConfig {
            topology: topology::TopologyConfig {
                // Asymmetric regions and tight long-haul links: the
                // contended resources differ per link, which is what makes
                // coarse (single-price) schemes leave welfare on the table.
                nodes_per_region: vec![5, 4, 3],
                intra_capacity: 14.0,
                inter_capacity: 12.0,
                percentile_unit_cost: 5.0,
                seed,
                ..Default::default()
            },
            steps_per_window: 16,
            windows: 2,
            traffic: TrafficConfig {
                pair_activity: 0.25,
                base_rate: 1.5,
                // Heavy-tailed pair sizes and frequent flash crowds: the
                // per-link utilization spread of Figure 1 (90th/10th
                // percentile ratios spanning two orders of magnitude).
                heterogeneity: 1.8,
                flash_crowd_rate: 0.25,
                seed: derive_seed(seed, "traffic"),
                ..Default::default()
            },
            requests: RequestConfig {
                // Wide value dispersion with real mass near zero (the
                // value-per-byte buckets of Figure 7 span 0..10): a large
                // share of requests is worth less than the cost of carrying
                // it on a leased link, so value-blind schemes destroy
                // welfare while value-aware ones selectively admit.
                value_dist: pretium_workload::ValueDist::Exponential { mean: 0.7 },
                laxity_tight: (1.0, 1.5),
                seed: derive_seed(seed, "requests"),
                ..Default::default()
            },
            load_factor,
        }
    }

    /// Generate the scenario.
    pub fn build(&self) -> Scenario {
        let net = topology::region_wan(&self.topology);
        let grid = TimeGrid::new(self.steps_per_window, 30);
        let horizon = self.steps_per_window * self.windows;
        let traffic = TrafficConfig { horizon, ..self.traffic.clone() };
        let trace = generate_trace(&net, &grid, &traffic).scaled(self.load_factor);
        let requests = generate_requests(&trace, &grid, &self.requests);
        Scenario { net, grid, horizon, trace, requests }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_produces_consistent_world() {
        let sc = ScenarioConfig::tiny(5).build();
        assert_eq!(sc.horizon, 24);
        assert!(!sc.requests.is_empty());
        for r in &sc.requests {
            assert!(r.deadline < sc.horizon);
            assert!(r.src.index() < sc.net.num_nodes());
            assert!(r.dst.index() < sc.net.num_nodes());
        }
    }

    #[test]
    fn load_factor_scales_demand() {
        let base = ScenarioConfig::tiny(5);
        let mut heavy = base.clone();
        heavy.load_factor = 3.0;
        let d1: f64 = base.build().requests.iter().map(|r| r.demand).sum();
        let d3: f64 = heavy.build().requests.iter().map(|r| r.demand).sum();
        assert!((d3 - 3.0 * d1).abs() < 1e-6 * d1);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = ScenarioConfig::tiny(9).build();
        let b = ScenarioConfig::tiny(9).build();
        assert_eq!(a.requests, b.requests);
    }
}
