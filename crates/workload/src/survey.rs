//! Constants from the paper's operator/customer survey (Table 1) and the
//! public cloud price sheet (Table 2).
//!
//! These numbers only parameterize the synthetic workload (deadline
//! strictness, willingness to delay) and the RegionOracle baseline's price
//! structure; they are reproduced here so every generator cites one source.

/// Table 1 — survey of 15 WAN operators/customers at Microsoft.
pub mod table1 {
    /// "Do any transfers require deadlines?" — fraction answering yes.
    pub const REQUIRE_DEADLINES: f64 = 1.00;
    /// Average fraction of transfers with *strict* deadlines.
    pub const STRICT_DEADLINE_FRACTION: f64 = 0.60;
    /// Fraction incurring a penalty on missed strict deadlines.
    pub const PENALTY_ON_MISS: f64 = 0.88;
    /// Fraction who would pay extra for guaranteed deadlines.
    pub const WOULD_PAY_FOR_GUARANTEES: f64 = 0.64;
    /// Fraction willing to delay some transfers for a lower price.
    pub const WILLING_TO_DELAY: f64 = 0.81;
    /// Fraction willing to use a network with price known only at start.
    pub const ACCEPT_PRICE_AT_START: f64 = 0.81;
    /// Number of people surveyed.
    pub const RESPONDENTS: usize = 15;
}

/// Table 2 — representative public-cloud WAN bandwidth pricing
/// (as of 2016-01-25; normalized to $/GB).
pub mod table2 {
    /// `(provider, intra-continent $/GB, inter-continent $/GB)`.
    pub const PRICE_SHEET: [(&str, f64, f64); 3] =
        [("ProviderA", 0.02, 0.08), ("ProviderB", 0.01, 0.12), ("ProviderC", 0.02, 0.14)];

    /// Typical intra-region transfer price used to scale synthetic values.
    pub const INTRA_REGION_PER_GB: f64 = 0.02;
    /// Typical inter-region transfer price.
    pub const INTER_REGION_PER_GB: f64 = 0.10;
}

/// Render Table 1 as aligned text (used by the quickstart example).
pub fn format_table1() -> String {
    let rows = [
        ("Do any transfers require deadlines?", table1::REQUIRE_DEADLINES),
        ("Fraction of transfers with strict deadlines", table1::STRICT_DEADLINE_FRACTION),
        ("Incur penalty on missed strict deadlines", table1::PENALTY_ON_MISS),
        ("Would pay extra for guaranteed deadlines", table1::WOULD_PAY_FOR_GUARANTEES),
        ("Willing to delay transfers if price reduced", table1::WILLING_TO_DELAY),
        ("Accept price known only at transfer start", table1::ACCEPT_PRICE_AT_START),
    ];
    let mut out = String::from("Table 1: WAN customer survey (n=15)\n");
    for (q, v) in rows {
        out.push_str(&format!("  {q:<46} {:>4.0}%\n", v * 100.0));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_are_probabilities() {
        for v in [
            table1::REQUIRE_DEADLINES,
            table1::STRICT_DEADLINE_FRACTION,
            table1::PENALTY_ON_MISS,
            table1::WOULD_PAY_FOR_GUARANTEES,
            table1::WILLING_TO_DELAY,
            table1::ACCEPT_PRICE_AT_START,
        ] {
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn price_sheet_inter_exceeds_intra() {
        for (_, intra, inter) in table2::PRICE_SHEET {
            assert!(inter > intra);
        }
    }

    #[test]
    fn table1_formats() {
        let s = format_table1();
        assert!(s.contains("60%"));
        assert!(s.lines().count() >= 7);
    }
}
