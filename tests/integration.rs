//! Cross-crate integration tests: the full pipeline from synthetic world
//! generation through every scheme, with system-level invariants.

use pretium::baselines::{self, OfflineConfig, PricedOfflineConfig};
use pretium::core::PretiumConfig;
use pretium::sim::{run_pretium, ScenarioConfig, Variant};

fn tiny(seed: u64) -> pretium::sim::Scenario {
    ScenarioConfig::tiny(seed).build()
}

#[test]
fn all_schemes_run_and_respect_capacity() {
    let sc = tiny(21);
    let off = OfflineConfig::default();
    let priced = PricedOfflineConfig::default();
    let mut outcomes = Vec::new();
    outcomes.push(baselines::opt(&sc.net, &sc.grid, sc.horizon, &sc.requests, &off).unwrap());
    outcomes.push(baselines::no_prices(&sc.net, &sc.grid, sc.horizon, &sc.requests, &off).unwrap());
    outcomes.push(
        baselines::region_oracle(&sc.net, &sc.grid, sc.horizon, &sc.requests, &priced)
            .unwrap()
            .outcome,
    );
    let peaks = baselines::peak_steps_from_trace(&sc.trace, &sc.grid);
    outcomes.push(
        baselines::peak_oracle(&sc.net, &sc.grid, sc.horizon, &sc.requests, &peaks, &priced)
            .unwrap()
            .outcome,
    );
    outcomes
        .push(baselines::vcg_like(&sc.net, &sc.grid, sc.horizon, &sc.requests, &priced).unwrap());
    outcomes.push(run_pretium(&sc, PretiumConfig::default(), Variant::Full).unwrap().outcome);
    for o in &outcomes {
        let violations = o.usage.capacity_violations(&sc.net, 1e-4);
        assert!(violations.is_empty(), "{}: {violations:?}", o.scheme);
        for (r, &d) in sc.requests.iter().zip(&o.delivered) {
            assert!(
                d <= r.demand * (1.0 + 1e-6),
                "{}: over-delivered {:?}: {d} > {}",
                o.scheme,
                r.id,
                r.demand
            );
        }
    }
}

#[test]
fn opt_dominates_every_scheme_in_proxy_terms() {
    // OPT maximizes the linearized objective with oracle values; it must
    // (weakly) dominate every other scheme's realized welfare up to the
    // proxy/true-cost gap. Allow a small slack for that gap.
    let sc = tiny(22);
    let off = OfflineConfig::default();
    let priced = PricedOfflineConfig::default();
    let w = |o: &baselines::Outcome| o.welfare(&sc.requests, &sc.net, &sc.grid, 1.0);
    let opt = baselines::opt(&sc.net, &sc.grid, sc.horizon, &sc.requests, &off).unwrap();
    let opt_w = w(&opt);
    let others = [
        w(&baselines::no_prices(&sc.net, &sc.grid, sc.horizon, &sc.requests, &off).unwrap()),
        w(&run_pretium(&sc, PretiumConfig::default(), Variant::Full).unwrap().outcome),
        w(&baselines::vcg_like(&sc.net, &sc.grid, sc.horizon, &sc.requests, &priced).unwrap()),
    ];
    for (i, &ow) in others.iter().enumerate() {
        assert!(ow <= opt_w * 1.02 + 1.0, "scheme {i} beat OPT: {ow} > {opt_w}");
    }
}

#[test]
fn pretium_profit_exceeds_vcg_profit() {
    // The qualitative Figure 8 ordering on a congested scenario: VCG's
    // myopic cost-blind market yields the worst profit.
    let mut cfg = ScenarioConfig::tiny(23);
    cfg.load_factor = 3.0;
    let sc = cfg.build();
    let priced = PricedOfflineConfig::default();
    let pretium = run_pretium(&sc, PretiumConfig::default(), Variant::Full).unwrap();
    let vcg = baselines::vcg_like(&sc.net, &sc.grid, sc.horizon, &sc.requests, &priced).unwrap();
    let p_profit = pretium.outcome.profit(&sc.net, &sc.grid, 1.0);
    let v_profit = vcg.profit(&sc.net, &sc.grid, 1.0);
    assert!(p_profit > v_profit, "Pretium profit {p_profit} should exceed VCGLike {v_profit}");
}

#[test]
fn deterministic_end_to_end() {
    let a = run_pretium(&tiny(24), PretiumConfig::default(), Variant::Full).unwrap();
    let b = run_pretium(&tiny(24), PretiumConfig::default(), Variant::Full).unwrap();
    assert_eq!(a.outcome.delivered, b.outcome.delivered);
    assert_eq!(a.outcome.payments, b.outcome.payments);
}

#[test]
fn guarantees_hold_under_injected_faults() {
    use pretium::core::{Pretium, RequestParams};
    use pretium::net::UsageTracker;
    let sc = tiny(25);
    let mut system = Pretium::new(sc.net.clone(), sc.grid, sc.horizon, PretiumConfig::default());
    let mut usage = UsageTracker::new(sc.net.num_edges(), sc.horizon);
    let mut admitted = Vec::new();
    let mut next = 0;
    for t in 0..sc.horizon {
        while next < sc.requests.len() && sc.requests[next].arrival == t {
            let r = &sc.requests[next];
            let params = RequestParams::from(r);
            let (_menu, id) =
                system.admit_one(&params, |menu| menu.optimal_purchase(r.value, r.demand));
            if let Some(id) = id {
                admitted.push(id);
            }
            next += 1;
        }
        if t == sc.horizon / 3 {
            // Fail a link mid-run.
            let e = sc.net.edge_ids().next().unwrap();
            system.inject_capacity_loss(e, t, sc.horizon, 1.0);
        }
        system.run_sam(t, &usage).unwrap();
        system.execute_step(t, &mut usage);
    }
    // The vast majority of guarantees must survive a single link failure
    // (SAM reroutes; only transfers with no alternative path can miss).
    let met = admitted.iter().filter(|&&id| system.contract(id).guarantee_met()).count();
    assert!(
        met * 10 >= admitted.len() * 9,
        "only {met}/{} guarantees met after fault",
        admitted.len()
    );
    assert!(usage.capacity_violations(&sc.net, 1e-4).is_empty());
}

#[test]
fn audited_replay_is_clean_across_seeds() {
    // Property-style: full warm-started replays over several generated
    // worlds must sweep every module checkpoint without one invariant
    // violation (oversubscription, unbacked plans, non-finite money,
    // sub-floor prices, uncovered guarantees).
    for seed in [3u64, 21, 77] {
        let sc = tiny(seed);
        let cfg = PretiumConfig { audit: true, ..Default::default() };
        for variant in [Variant::Full, Variant::NoSam] {
            let run = run_pretium(&sc, cfg.clone(), variant).unwrap();
            let aud = run.audit().expect("auditing enabled via config");
            assert!(aud.checks() > 0, "seed {seed} {variant:?}: auditor never ran");
            assert!(aud.is_clean(), "seed {seed} {variant:?}: {:?}", aud.violations());
            assert_eq!(run.telemetry().audit_violations, 0);
        }
    }
}

#[test]
fn lp_and_scheduling_agree_on_simple_instance() {
    // Schedule a single job via the high-level API and via a hand-built LP;
    // both must yield the same optimum.
    use pretium::core::{schedule, Job, ScheduleProblem, TopkEncoding};
    use pretium::lp::{Cmp, LinExpr, Model, Sense};
    use pretium::net::{LinkCost, Network, Path, Region, TimeGrid};

    let mut net = Network::new();
    let a = net.add_node("A", Region::NorthAmerica);
    let b = net.add_node("B", Region::NorthAmerica);
    let e = net.add_edge(a, b, 7.0, LinkCost::owned());
    let grid = TimeGrid::new(4, 30);
    let jobs = vec![Job::new(0, vec![Path::new(&net, vec![e])], 0, 2, 2.0, 0.0, 30.0)];
    let cap = |_e: pretium::net::EdgeId, _t: usize| 7.0;
    let zero = |_e: pretium::net::EdgeId, _t: usize| 0.0;
    let problem = ScheduleProblem {
        net: &net,
        grid: &grid,
        from: 0,
        to: 4,
        jobs: &jobs,
        capacity: &cap,
        realized: &zero,
        topk: TopkEncoding::CVar,
        cost_scale: 1.0,
    };
    let sol = schedule::solve(&problem).unwrap();

    // Hand-built: max 2(x0+x1+x2), x_t <= 7, sum <= 30.
    let mut m = Model::new(Sense::Maximize);
    let xs: Vec<_> = (0..3).map(|t| m.add_var(&format!("x{t}"), 0.0, 7.0, 2.0)).collect();
    let total = LinExpr::from_terms(xs.iter().map(|&x| (1.0, x)));
    m.add_row("demand", total, Cmp::Le, 30.0);
    let hand = m.solve().unwrap();
    assert!((sol.objective - hand.objective()).abs() < 1e-6);
    assert!((sol.delivered[0] - 21.0).abs() < 1e-6);
}
