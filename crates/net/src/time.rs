//! Discrete time: timesteps, billing/pricing windows.
//!
//! Time is discretized into fixed-length timesteps (the paper suggests
//! 5-minute steps, §3.1) grouped into *windows* (e.g. one day) that bound
//! both percentile billing and price recomputation (§4.3).

/// A discrete timestep index from the start of the simulation.
pub type Timestep = usize;

/// The discretization of time used by every module.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimeGrid {
    /// Timesteps per billing/pricing window (`W` in the paper).
    pub steps_per_window: usize,
    /// Wall-clock minutes represented by one timestep (documentation only;
    /// the solver works in steps).
    pub minutes_per_step: u32,
}

impl TimeGrid {
    /// A grid with `steps_per_window` steps per window.
    ///
    /// # Panics
    /// Panics if `steps_per_window` is zero.
    pub fn new(steps_per_window: usize, minutes_per_step: u32) -> Self {
        assert!(steps_per_window > 0, "window must contain at least one step");
        TimeGrid { steps_per_window, minutes_per_step }
    }

    /// The paper's default: 5-minute steps, 24-hour windows (288 steps).
    pub fn paper_default() -> Self {
        TimeGrid::new(288, 5)
    }

    /// A coarser grid suitable for the default experiment scale: 30-minute
    /// steps, 24-hour windows (48 steps).
    pub fn coarse_default() -> Self {
        TimeGrid::new(48, 30)
    }

    /// Which window a timestep falls in.
    #[inline]
    pub fn window_of(&self, t: Timestep) -> usize {
        t / self.steps_per_window
    }

    /// Position of a timestep within its window.
    #[inline]
    pub fn step_in_window(&self, t: Timestep) -> usize {
        t % self.steps_per_window
    }

    /// First timestep of a window.
    #[inline]
    pub fn window_start(&self, window: usize) -> Timestep {
        window * self.steps_per_window
    }

    /// Half-open timestep range of a window.
    pub fn window_range(&self, window: usize) -> std::ops::Range<Timestep> {
        self.window_start(window)..self.window_start(window + 1)
    }

    /// Fraction of the day a timestep corresponds to, in `[0, 1)` — used by
    /// diurnal traffic generators.
    #[inline]
    pub fn day_fraction(&self, t: Timestep) -> f64 {
        self.step_in_window(t) as f64 / self.steps_per_window as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_arithmetic() {
        let g = TimeGrid::new(48, 30);
        assert_eq!(g.window_of(0), 0);
        assert_eq!(g.window_of(47), 0);
        assert_eq!(g.window_of(48), 1);
        assert_eq!(g.step_in_window(50), 2);
        assert_eq!(g.window_start(2), 96);
        assert_eq!(g.window_range(1), 48..96);
    }

    #[test]
    fn paper_default_is_288_steps() {
        let g = TimeGrid::paper_default();
        assert_eq!(g.steps_per_window, 288);
        assert_eq!(g.minutes_per_step, 5);
        assert_eq!(g.steps_per_window * g.minutes_per_step as usize, 24 * 60);
    }

    #[test]
    fn day_fraction_spans_unit_interval() {
        let g = TimeGrid::new(4, 360);
        assert_eq!(g.day_fraction(0), 0.0);
        assert_eq!(g.day_fraction(1), 0.25);
        assert_eq!(g.day_fraction(7), 0.75);
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn zero_window_rejected() {
        TimeGrid::new(0, 5);
    }
}
