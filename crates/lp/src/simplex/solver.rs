//! The bounded-variable revised simplex iteration core.
//!
//! Works on the standard form produced by [`super::Problem::from_model`]:
//! a crash basis is built first (slacks where the initial residual fits,
//! artificials elsewhere), then phase 1 minimizes the artificial sum and
//! phase 2 the true cost vector. Anti-cycling falls back to Bland's rule
//! after a run of degenerate pivots.

use super::basis::{FactorError, Factorization};
use super::{Problem, SimplexOptions};
use crate::solution::SolveError;

/// Where a nonbasic variable currently rests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NbState {
    Lower,
    Upper,
    /// Free variable parked at zero.
    Free,
}

/// Result of the iteration core, in internal (minimization) terms.
pub(crate) struct Outcome {
    /// Values of all columns (structurals, slacks, artificials).
    pub x: Vec<f64>,
    /// Row duals for the internal minimization problem.
    pub y: Vec<f64>,
    pub iterations: u64,
}

impl Outcome {
    /// Internal reduced cost of column `j`.
    pub fn reduced_cost(&self, p: &Problem, j: usize) -> f64 {
        let mut d = p.cost[j];
        for &(i, v) in &p.cols[j] {
            d -= self.y[i as usize] * v;
        }
        d
    }
}

/// What the ratio test decided.
enum Step {
    /// Entering variable travels to its opposite bound; no basis change.
    BoundFlip { t: f64 },
    /// Basic variable at `position` leaves to `to_upper` after step `t`.
    Pivot { t: f64, position: usize, to_upper: bool },
    /// No finite blocking bound: the problem is unbounded.
    Unbounded,
}

struct State<'a> {
    p: &'a mut Problem,
    opts: &'a SimplexOptions,
    /// Basic column per row position.
    basis: Vec<usize>,
    /// Column -> basis position, or -1 when nonbasic.
    pos_of: Vec<i32>,
    /// Current value of every column.
    x: Vec<f64>,
    nb: Vec<NbState>,
    factor: Factorization,
    iterations: u64,
    max_iterations: u64,
    degenerate_run: u32,
    w: Vec<f64>,
    y: Vec<f64>,
}

const ZTOL: f64 = 1e-11;
const DEGEN_STEP: f64 = 1e-10;

pub(crate) fn run(
    problem: &mut Problem,
    opts: &SimplexOptions,
    row_name: impl Fn(usize) -> String,
    var_name: impl Fn(usize) -> String,
) -> Result<Outcome, SolveError> {
    let m = problem.m;
    let n = problem.n;

    // --- crash: place nonbasics at bounds, pick slack or artificial basis --
    let mut x = vec![0.0; n];
    let mut nb = vec![NbState::Lower; n];
    for j in 0..problem.art_start {
        if problem.lb[j].is_finite() {
            x[j] = problem.lb[j];
            nb[j] = NbState::Lower;
        } else if problem.ub[j].is_finite() {
            x[j] = problem.ub[j];
            nb[j] = NbState::Upper;
        } else {
            x[j] = 0.0;
            nb[j] = NbState::Free;
        }
    }
    // Residual b - A·x over nonbasic structurals (slacks rest at 0).
    let mut beta = problem.b.clone();
    for j in 0..problem.nstruct {
        if x[j] != 0.0 {
            for &(i, v) in &problem.cols[j] {
                beta[i as usize] -= v * x[j];
            }
        }
    }
    let mut basis = Vec::with_capacity(m);
    let mut pos_of = vec![-1i32; n];
    let mut need_phase1 = false;
    for (i, &beta_i) in beta.iter().enumerate() {
        let s = problem.slack_start + i;
        if beta_i >= problem.lb[s] - opts.feas_tol && beta_i <= problem.ub[s] + opts.feas_tol {
            x[s] = beta_i;
            basis.push(s);
            pos_of[s] = i as i32;
        } else {
            let a = problem.art_start + i;
            let sign = if beta_i >= 0.0 { 1.0 } else { -1.0 };
            problem.cols[a] = vec![(i as u32, sign)];
            problem.ub[a] = f64::INFINITY;
            x[a] = beta_i.abs();
            basis.push(a);
            pos_of[a] = i as i32;
            need_phase1 = true;
        }
    }

    let max_iterations = if opts.max_iterations > 0 {
        opts.max_iterations
    } else {
        20_000 + 100 * (m as u64 + problem.nstruct as u64)
    };

    let factor = Factorization::new(m, opts.refactor_every, opts.pivot_tol);
    let mut st = State {
        p: problem,
        opts,
        basis,
        pos_of,
        x,
        nb,
        factor,
        iterations: 0,
        max_iterations,
        degenerate_run: 0,
        w: Vec::new(),
        y: Vec::new(),
    };
    st.refactor().map_err(|e| numerical(e, &row_name))?;

    // --- phase 1 ----------------------------------------------------------
    if need_phase1 {
        let phase1_cost: Vec<f64> = (0..n)
            .map(|j| if j >= st.p.art_start && st.p.ub[j] > 0.0 { 1.0 } else { 0.0 })
            .collect();
        st.iterate(&phase1_cost, true, &var_name, &row_name)?;
        let residual: f64 = (st.p.art_start..n).map(|j| st.x[j].max(0.0)).sum();
        let scale = 1.0 + st.p.b.iter().fold(0.0f64, |a, &v| a.max(v.abs()));
        if residual > st.opts.feas_tol * scale {
            return Err(SolveError::Infeasible { residual });
        }
    }
    // Close all artificials for phase 2 and snap them to zero.
    for j in st.p.art_start..n {
        st.p.ub[j] = 0.0;
        st.x[j] = 0.0;
    }

    // --- phase 2 ----------------------------------------------------------
    let phase2_cost = st.p.cost.clone();
    st.iterate(&phase2_cost, false, &var_name, &row_name)?;

    // Final duals from a fresh factorization for accuracy.
    st.refactor().map_err(|e| numerical(e, &row_name))?;
    let cb: Vec<f64> = st.basis.iter().map(|&k| phase2_cost[k]).collect();
    let mut y = Vec::new();
    st.factor.btran(&cb, &mut y);

    Ok(Outcome { x: st.x, y, iterations: st.iterations })
}

fn numerical(e: FactorError, row_name: &impl Fn(usize) -> String) -> SolveError {
    match e {
        FactorError::Singular { position } => SolveError::Numerical(format!(
            "singular basis at elimination step {position} (row {})",
            row_name(position)
        )),
    }
}

impl<'a> State<'a> {
    /// Rebuild the LU factorization from the current basis and refresh the
    /// basic variable values from scratch (removes accumulated drift).
    fn refactor(&mut self) -> Result<(), FactorError> {
        {
            let cols: Vec<_> = self.basis.iter().map(|&k| &self.p.cols[k]).collect();
            self.factor.refactor(&cols)?;
        }
        // x_B = B⁻¹ (b - N x_N)
        let mut r = self.p.b.clone();
        for j in 0..self.p.n {
            if self.pos_of[j] < 0 && self.x[j] != 0.0 {
                for &(i, v) in &self.p.cols[j] {
                    r[i as usize] -= v * self.x[j];
                }
            }
        }
        let mut xb = Vec::new();
        self.factor.ftran_dense(&r, &mut xb);
        for (pos, &k) in self.basis.iter().enumerate() {
            self.x[k] = xb[pos];
        }
        Ok(())
    }

    /// Run simplex iterations with the given cost vector until optimal.
    fn iterate(
        &mut self,
        cost: &[f64],
        phase1: bool,
        var_name: &impl Fn(usize) -> String,
        row_name: &impl Fn(usize) -> String,
    ) -> Result<(), SolveError> {
        loop {
            if self.iterations >= self.max_iterations {
                return Err(SolveError::IterationLimit { iterations: self.iterations });
            }
            if self.factor.wants_refactor() {
                self.refactor().map_err(|e| numerical(e, row_name))?;
            }
            // Simplex multipliers y = c_B B⁻¹.
            let cb: Vec<f64> = self.basis.iter().map(|&k| cost[k]).collect();
            {
                let factor = &self.factor;
                factor.btran(&cb, &mut self.y);
            }
            let bland = self.degenerate_run > self.opts.bland_trigger;
            let Some((j, d)) = self.price(cost, bland) else {
                return Ok(()); // optimal for this phase
            };
            // Direction of travel for the entering variable.
            let sigma = match self.nb[j] {
                NbState::Lower => 1.0,
                NbState::Upper => -1.0,
                NbState::Free => {
                    if d < 0.0 {
                        1.0
                    } else {
                        -1.0
                    }
                }
            };
            {
                let (p, factor, w) = (&*self.p, &self.factor, &mut self.w);
                factor.ftran(&p.cols[j], w);
            }
            match self.ratio_test(j, sigma, bland) {
                Step::Unbounded => {
                    if phase1 {
                        return Err(SolveError::Numerical(
                            "phase-1 objective unbounded (internal error)".into(),
                        ));
                    }
                    return Err(SolveError::Unbounded { var: var_name(j.min(self.p.nstruct)) });
                }
                Step::BoundFlip { t } => {
                    self.apply_step(j, sigma, t);
                    self.x[j] = if sigma > 0.0 { self.p.ub[j] } else { self.p.lb[j] };
                    self.nb[j] = if sigma > 0.0 { NbState::Upper } else { NbState::Lower };
                    self.note_step(t);
                }
                Step::Pivot { t, position, to_upper } => {
                    self.apply_step(j, sigma, t);
                    let entering_value = self.x[j] + sigma * t;
                    let leaving = self.basis[position];
                    // Snap the leaving variable exactly onto its bound.
                    self.x[leaving] =
                        if to_upper { self.p.ub[leaving] } else { self.p.lb[leaving] };
                    self.nb[leaving] = if to_upper { NbState::Upper } else { NbState::Lower };
                    self.pos_of[leaving] = -1;
                    self.basis[position] = j;
                    self.pos_of[j] = position as i32;
                    self.x[j] = entering_value;
                    if !self.factor.update(position, &self.w) {
                        // Pivot too small for a stable eta: rebuild and, if
                        // the basis went bad, surface a numerical error.
                        self.refactor().map_err(|e| numerical(e, row_name))?;
                    }
                    self.note_step(t);
                }
            }
            self.iterations += 1;
        }
    }

    /// Move all basic variables along the FTRAN direction by step `t`.
    fn apply_step(&mut self, _entering: usize, sigma: f64, t: f64) {
        if t == 0.0 {
            return;
        }
        for (pos, &k) in self.basis.iter().enumerate() {
            let wi = self.w[pos];
            if wi != 0.0 {
                self.x[k] -= sigma * t * wi;
            }
        }
    }

    fn note_step(&mut self, t: f64) {
        if t <= DEGEN_STEP {
            self.degenerate_run = self.degenerate_run.saturating_add(1);
        } else {
            self.degenerate_run = 0;
        }
    }

    /// Choose an entering column: Dantzig (most negative effective reduced
    /// cost) or, under Bland's rule, the smallest eligible index.
    fn price(&self, cost: &[f64], bland: bool) -> Option<(usize, f64)> {
        let tol = self.opts.opt_tol;
        let mut best: Option<(usize, f64, f64)> = None; // (j, d, score)
        for j in 0..self.p.n {
            if self.pos_of[j] >= 0 {
                continue;
            }
            // Fixed columns (incl. closed artificials) can never improve.
            if self.p.lb[j] == self.p.ub[j] {
                continue;
            }
            let mut d = cost[j];
            for &(i, v) in &self.p.cols[j] {
                d -= self.y[i as usize] * v;
            }
            let eligible = match self.nb[j] {
                NbState::Lower => d < -tol,
                NbState::Upper => d > tol,
                NbState::Free => d.abs() > tol,
            };
            if !eligible {
                continue;
            }
            if bland {
                return Some((j, d));
            }
            let score = d.abs();
            if best.as_ref().is_none_or(|&(_, _, s)| score > s) {
                best = Some((j, d, score));
            }
        }
        best.map(|(j, d, _)| (j, d))
    }

    /// Bounded-variable ratio test for entering column `j` moving in
    /// direction `sigma` along `self.w`.
    fn ratio_test(&self, j: usize, sigma: f64, bland: bool) -> Step {
        let p = &self.p;
        // Bound-flip limit for the entering variable itself.
        let own_range = p.ub[j] - p.lb[j];
        let mut t_best = if own_range.is_finite() { own_range } else { f64::INFINITY };
        let mut leave: Option<(usize, bool, f64)> = None; // (position, to_upper, |w|)
        for (pos, &wi) in self.w.iter().enumerate() {
            if wi.abs() <= ZTOL {
                continue;
            }
            let k = self.basis[pos];
            let delta = sigma * wi; // x_k moves by -t·delta
            let (t, to_upper) = if delta > 0.0 {
                if p.lb[k] == f64::NEG_INFINITY {
                    continue;
                }
                (((self.x[k] - p.lb[k]) / delta).max(0.0), false)
            } else {
                if p.ub[k] == f64::INFINITY {
                    continue;
                }
                (((p.ub[k] - self.x[k]) / -delta).max(0.0), true)
            };
            let better = if bland {
                // Smallest t; ties by smallest variable index (Bland).
                t < t_best - ZTOL
                    || (t <= t_best + ZTOL
                        && leave.as_ref().is_none_or(|&(lp, _, _)| k < self.basis[lp]))
            } else {
                // Smallest t; ties by largest pivot magnitude (stability).
                t < t_best - ZTOL
                    || (t <= t_best + ZTOL && leave.as_ref().is_none_or(|&(_, _, wa)| wi.abs() > wa))
            };
            if t <= t_best + ZTOL && better {
                t_best = t.min(t_best);
                leave = Some((pos, to_upper, wi.abs()));
            }
        }
        if t_best.is_infinite() {
            return Step::Unbounded;
        }
        match leave {
            // The entering variable reaches its own opposite bound first.
            None => Step::BoundFlip { t: t_best },
            Some((position, to_upper, _)) => {
                if own_range.is_finite() && own_range < t_best - ZTOL {
                    Step::BoundFlip { t: own_range }
                } else {
                    Step::Pivot { t: t_best, position, to_upper }
                }
            }
        }
    }
}
