//! LP model builder.
//!
//! A [`Model`] collects variables (with bounds and objective coefficients)
//! and linear constraints, and hands the assembled problem to the
//! [`crate::simplex`] solver. The model is the single user-facing entry
//! point of this crate:
//!
//! ```
//! use pretium_lp::{Model, Sense, Cmp};
//! let mut m = Model::new(Sense::Maximize);
//! let x = m.add_var("x", 0.0, f64::INFINITY, 3.0);
//! let y = m.add_var("y", 0.0, f64::INFINITY, 2.0);
//! m.add_row("r1", 1.0 * x + 1.0 * y, Cmp::Le, 4.0);
//! m.add_row("r2", 1.0 * x + 3.0 * y, Cmp::Le, 6.0);
//! let sol = m.solve().unwrap();
//! assert!((sol.objective() - 12.0).abs() < 1e-7); // x=4, y=0
//! ```

use crate::expr::{LinExpr, Var};
use crate::simplex::{solve_model, SimplexOptions};
use crate::solution::{Solution, SolveError};

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    Minimize,
    Maximize,
}

/// Constraint comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `expr <= rhs`
    Le,
    /// `expr == rhs`
    Eq,
    /// `expr >= rhs`
    Ge,
}

/// Handle to a constraint row; used to read dual values from a
/// [`Solution`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RowId(pub(crate) u32);

impl RowId {
    /// Dense 0-based row index in creation order.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a raw index (for row-generation callbacks that track
    /// rows positionally).
    #[inline]
    pub fn from_index(i: usize) -> Self {
        RowId(i as u32)
    }
}

#[derive(Debug, Clone)]
pub(crate) struct VarData {
    pub name: String,
    pub lb: f64,
    pub ub: f64,
    pub obj: f64,
}

#[derive(Debug, Clone)]
pub(crate) struct RowData {
    pub name: String,
    /// Compacted terms: `(var index, coefficient)`, ascending by index.
    pub terms: Vec<(u32, f64)>,
    pub cmp: Cmp,
    pub rhs: f64,
}

/// A linear program under construction.
#[derive(Debug, Clone)]
pub struct Model {
    pub(crate) sense: Sense,
    pub(crate) vars: Vec<VarData>,
    pub(crate) rows: Vec<RowData>,
    /// Constant offset accumulated from expression constants; added back to
    /// the reported objective value.
    pub(crate) obj_offset: f64,
    options: SimplexOptions,
}

impl Model {
    /// Create an empty model with the given optimization sense.
    pub fn new(sense: Sense) -> Self {
        Model {
            sense,
            vars: Vec::new(),
            rows: Vec::new(),
            obj_offset: 0.0,
            options: SimplexOptions::default(),
        }
    }

    /// The optimization sense.
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// Mutable access to solver options (tolerances, iteration limits).
    pub fn options_mut(&mut self) -> &mut SimplexOptions {
        &mut self.options
    }

    /// Solver options in effect.
    pub fn options(&self) -> &SimplexOptions {
        &self.options
    }

    /// Add a variable with bounds `[lb, ub]` and objective coefficient
    /// `obj`. Use `f64::NEG_INFINITY` / `f64::INFINITY` for free directions.
    ///
    /// # Panics
    /// Panics if `lb > ub` or either bound is NaN.
    pub fn add_var(&mut self, name: &str, lb: f64, ub: f64, obj: f64) -> Var {
        assert!(!lb.is_nan() && !ub.is_nan(), "variable bound is NaN");
        assert!(lb <= ub, "variable `{name}` has lb {lb} > ub {ub}");
        let idx = self.vars.len();
        assert!(idx < u32::MAX as usize, "too many variables");
        self.vars.push(VarData { name: name.to_string(), lb, ub, obj });
        Var(idx as u32)
    }

    /// Convenience: non-negative variable `[0, ∞)`.
    pub fn add_nonneg(&mut self, name: &str, obj: f64) -> Var {
        self.add_var(name, 0.0, f64::INFINITY, obj)
    }

    /// Convenience: free variable `(-∞, ∞)`.
    pub fn add_free(&mut self, name: &str, obj: f64) -> Var {
        self.add_var(name, f64::NEG_INFINITY, f64::INFINITY, obj)
    }

    /// Add the constraint `expr cmp rhs`. Constants inside `expr` are moved
    /// to the right-hand side. Returns a handle for reading the row's dual
    /// value.
    ///
    /// # Panics
    /// Panics if the expression references a variable not belonging to this
    /// model, or if `rhs` is NaN.
    pub fn add_row(&mut self, name: &str, expr: impl Into<LinExpr>, cmp: Cmp, rhs: f64) -> RowId {
        assert!(!rhs.is_nan(), "row `{name}` rhs is NaN");
        let mut expr = expr.into();
        expr.compact();
        let mut terms = Vec::with_capacity(expr.len());
        for t in expr.terms() {
            assert!(
                t.var.index() < self.vars.len(),
                "row `{name}` references unknown variable index {}",
                t.var.index()
            );
            assert!(t.coef.is_finite(), "row `{name}` has non-finite coefficient");
            terms.push((t.var.0, t.coef));
        }
        let idx = self.rows.len();
        assert!(idx < u32::MAX as usize, "too many rows");
        self.rows.push(RowData { name: name.to_string(), terms, cmp, rhs: rhs - expr.constant() });
        RowId(idx as u32)
    }

    /// Add `coef · v` to an existing row's left-hand side, merging with any
    /// term the row already carries for `v`. This is how incrementally grown
    /// models retrofit a newly added variable into rows that were
    /// materialized earlier (e.g. a new job entering an existing capacity
    /// constraint).
    ///
    /// # Panics
    /// Panics if `v` does not belong to this model or `coef` is not finite.
    pub fn add_term(&mut self, r: RowId, v: Var, coef: f64) {
        assert!(
            v.index() < self.vars.len(),
            "add_term on row `{}`: unknown variable index {}",
            self.rows[r.index()].name,
            v.index()
        );
        assert!(coef.is_finite(), "add_term: non-finite coefficient");
        let row = &mut self.rows[r.index()];
        match row.terms.binary_search_by_key(&v.0, |&(j, _)| j) {
            Ok(i) => row.terms[i].1 += coef,
            Err(i) => row.terms.insert(i, (v.0, coef)),
        }
    }

    /// Replace the objective coefficient of `v`.
    pub fn set_obj(&mut self, v: Var, obj: f64) {
        self.vars[v.index()].obj = obj;
    }

    /// Replace the bounds of `v`.
    ///
    /// # Panics
    /// Panics if `lb > ub`.
    pub fn set_bounds(&mut self, v: Var, lb: f64, ub: f64) {
        assert!(lb <= ub, "set_bounds: lb {lb} > ub {ub}");
        let d = &mut self.vars[v.index()];
        d.lb = lb;
        d.ub = ub;
    }

    /// Replace the right-hand side of a row.
    pub fn set_rhs(&mut self, r: RowId, rhs: f64) {
        self.rows[r.index()].rhs = rhs;
    }

    /// Add a constant to the objective function (reported in
    /// [`Solution::objective`]).
    pub fn add_obj_offset(&mut self, c: f64) {
        self.obj_offset += c;
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraint rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Name of a variable (as given to [`Model::add_var`]).
    pub fn var_name(&self, v: Var) -> &str {
        &self.vars[v.index()].name
    }

    /// Name of a row.
    pub fn row_name(&self, r: RowId) -> &str {
        &self.rows[r.index()].name
    }

    /// Bounds of a variable.
    pub fn bounds(&self, v: Var) -> (f64, f64) {
        let d = &self.vars[v.index()];
        (d.lb, d.ub)
    }

    /// Objective coefficient of a variable.
    pub fn obj_coef(&self, v: Var) -> f64 {
        self.vars[v.index()].obj
    }

    /// Current right-hand side of a row. Note that [`Model::add_row`] moves
    /// any constant inside the expression to the right-hand side, so this
    /// returns the stored (normalized) value — the same one
    /// [`Model::set_rhs`] replaces. Callers that refresh RHS values each
    /// step can compare against this to skip no-op writes (a
    /// [`crate::SolverSession`] treats any `set_rhs` as a pending mutation).
    pub fn rhs(&self, r: RowId) -> f64 {
        self.rows[r.index()].rhs
    }

    /// Evaluate a row's left-hand side under an assignment.
    pub fn row_lhs(&self, r: RowId, values: &[f64]) -> f64 {
        self.rows[r.index()].terms.iter().map(|&(j, c)| c * values[j as usize]).sum()
    }

    /// Solve the model to optimality with the revised simplex method.
    ///
    /// This is a one-shot convenience (always a cold solve). When the model
    /// will be mutated and re-solved — schedule re-optimization, lazy row
    /// generation — wrap it in a [`crate::SolverSession`] instead, which
    /// warm-starts each re-solve from the previous basis.
    pub fn solve(&self) -> Result<Solution, SolveError> {
        solve_model(self, &self.options)
    }

    /// Move the model into a [`crate::SolverSession`] for incremental
    /// re-optimization.
    pub fn into_session(self) -> crate::SolverSession {
        crate::SolverSession::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_constant_moves_to_rhs() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 10.0, 1.0);
        // x + 5 <= 8  ==  x <= 3
        m.add_row("r", 1.0 * x + 5.0, Cmp::Le, 8.0);
        assert_eq!(m.rows[0].rhs, 3.0);
    }

    #[test]
    #[should_panic(expected = "lb")]
    fn inverted_bounds_panic() {
        let mut m = Model::new(Sense::Minimize);
        m.add_var("x", 1.0, 0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "unknown variable")]
    fn foreign_var_panics() {
        let mut m = Model::new(Sense::Minimize);
        let _x = m.add_var("x", 0.0, 1.0, 0.0);
        let mut other = Model::new(Sense::Minimize);
        other.add_row("r", 1.0 * Var(5), Cmp::Le, 1.0);
    }

    #[test]
    fn add_term_inserts_and_merges() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 10.0, 1.0);
        let r = m.add_row("r", 1.0 * x, Cmp::Le, 4.0);
        let y = m.add_var("y", 0.0, 10.0, 1.0);
        m.add_term(r, y, 1.0);
        m.add_term(r, x, 2.0);
        assert_eq!(m.rows[0].terms, vec![(0, 3.0), (1, 1.0)]);
        // The extended row binds both variables.
        let sol = m.solve().unwrap();
        assert!((3.0 * sol.value(x) + sol.value(y) - 4.0).abs() < 1e-6);
    }

    #[test]
    fn duplicate_terms_merged_in_row() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", 0.0, 1.0, 0.0);
        m.add_row("r", 1.0 * x + 2.0 * x, Cmp::Le, 1.0);
        assert_eq!(m.rows[0].terms, vec![(0, 3.0)]);
    }
}
