//! The VCGLike spot-market baseline (§6.1).
//!
//! Each timestep runs an independent spot auction: every active request is
//! converted to a rate (remaining demand spread to its deadline), customers
//! bid their value, the provider allocates rates to maximize declared
//! welfare, and winners pay their VCG externality. As the paper notes,
//! this scheme is *not* truthful across timesteps, ignores provider costs,
//! and plans myopically — which is exactly why it underperforms.

use crate::outcome::Outcome;
use crate::priced_offline::PricedOfflineConfig;
use pretium_lp::{Cmp, LinExpr, Model, Sense, SolveError};
use pretium_net::{Network, Path, PathSet, TimeGrid};
use pretium_workload::Request;

struct ActiveRequest {
    /// Index into the original request slice.
    idx: usize,
    bid: f64,
    rate_cap: f64,
    paths: Vec<Path>,
}

/// Allocation of one spot auction.
struct StepAllocation {
    /// Welfare Σ b_i x_i of the chosen allocation.
    welfare: f64,
    /// Per active request: `(total units, per-path units)`.
    per_request: Vec<(f64, Vec<f64>)>,
}

/// Solve one step's allocation LP. `exclude` removes one bidder (for VCG
/// payments).
fn solve_step(
    active: &[ActiveRequest],
    capacity_of: &dyn Fn(pretium_net::EdgeId) -> f64,
    exclude: Option<usize>,
) -> Result<StepAllocation, SolveError> {
    let mut m = Model::new(Sense::Maximize);
    let mut vars: Vec<Vec<pretium_lp::Var>> = Vec::with_capacity(active.len());
    for (ai, a) in active.iter().enumerate() {
        if Some(ai) == exclude {
            vars.push(Vec::new());
            continue;
        }
        let pv: Vec<_> = a
            .paths
            .iter()
            .enumerate()
            .map(|(pi, _)| m.add_nonneg(&format!("x_{ai}_{pi}"), a.bid))
            .collect();
        let total = LinExpr::from_terms(pv.iter().map(|&v| (1.0, v)));
        m.add_row(&format!("rate_{ai}"), total, Cmp::Le, a.rate_cap);
        vars.push(pv);
    }
    // Capacity rows for every edge touched by any path.
    let mut edge_exprs: rand::DetHashMap<pretium_net::EdgeId, LinExpr> =
        rand::DetHashMap::default();
    for (ai, a) in active.iter().enumerate() {
        if Some(ai) == exclude {
            continue;
        }
        for (pi, path) in a.paths.iter().enumerate() {
            for &e in path.edges() {
                edge_exprs.entry(e).or_default().add_term(1.0, vars[ai][pi]);
            }
        }
    }
    for (e, expr) in edge_exprs {
        m.add_row(&format!("cap_{e}"), expr, Cmp::Le, capacity_of(e));
    }
    let sol = m.solve()?;
    let per_request: Vec<(f64, Vec<f64>)> = vars
        .iter()
        .map(|pv| {
            let per_path: Vec<f64> = pv.iter().map(|&v| sol.value(v)).collect();
            (per_path.iter().sum(), per_path)
        })
        .collect();
    Ok(StepAllocation { welfare: sol.objective(), per_request })
}

/// Run the VCGLike baseline over the whole horizon.
pub fn vcg_like(
    net: &Network,
    grid: &TimeGrid,
    horizon: usize,
    requests: &[Request],
    cfg: &PricedOfflineConfig,
) -> Result<Outcome, SolveError> {
    let _ = grid;
    let mut paths = PathSet::new(cfg.k_paths);
    let mut out = Outcome::new("VCGLike", requests.len(), net.num_edges(), horizon);
    let mut remaining: Vec<f64> = requests.iter().map(|r| r.demand).collect();
    let frac = 1.0 - cfg.highpri_fraction;
    for t in 0..horizon {
        let active: Vec<ActiveRequest> = requests
            .iter()
            .enumerate()
            .filter(|(i, r)| r.start <= t && t <= r.deadline && remaining[*i] > 1e-9)
            .filter_map(|(i, r)| {
                let p = paths.paths(net, r.src, r.dst).to_vec();
                if p.is_empty() {
                    return None;
                }
                let steps_left = (r.deadline - t + 1) as f64;
                Some(ActiveRequest {
                    idx: i,
                    bid: r.value,
                    rate_cap: remaining[i] / steps_left,
                    paths: p,
                })
            })
            .collect();
        if active.is_empty() {
            continue;
        }
        let capacity_of = |e: pretium_net::EdgeId| net.edge(e).capacity * frac;
        let alloc = solve_step(&active, &capacity_of, None)?;
        // VCG payments: externality imposed on the other bidders.
        for (ai, a) in active.iter().enumerate() {
            let (x, per_path) = &alloc.per_request[ai];
            if *x <= 1e-9 {
                continue;
            }
            let others_with = alloc.welfare - a.bid * x;
            let without = solve_step(&active, &capacity_of, Some(ai))?;
            let payment = (without.welfare - others_with).max(0.0);
            out.payments[a.idx] += payment;
            out.delivered[a.idx] += x;
            out.admitted[a.idx] = true;
            remaining[a.idx] -= x;
            for (pi, &units) in per_path.iter().enumerate() {
                if units > 1e-9 {
                    for &e in a.paths[pi].edges() {
                        out.usage.record(e, t, units);
                    }
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pretium_net::{LinkCost, Region};
    use pretium_workload::{RequestId, RequestKind};

    fn req(id: u64, value: f64, demand: f64, start: usize, deadline: usize) -> Request {
        Request {
            id: RequestId(id),
            src: pretium_net::NodeId(0),
            dst: pretium_net::NodeId(1),
            demand,
            value,
            arrival: start,
            start,
            deadline,
            kind: RequestKind::Byte,
        }
    }

    fn one_edge() -> Network {
        let mut net = Network::new();
        let a = net.add_node("A", Region::NorthAmerica);
        let b = net.add_node("B", Region::Europe);
        net.add_edge(a, b, 10.0, LinkCost::owned());
        net
    }

    #[test]
    fn uncontended_bidder_pays_nothing() {
        let net = one_edge();
        let grid = TimeGrid::new(2, 30);
        let requests = vec![req(0, 5.0, 10.0, 0, 1)];
        let cfg = PricedOfflineConfig { highpri_fraction: 0.0, ..Default::default() };
        let out = vcg_like(&net, &grid, 2, &requests, &cfg).unwrap();
        assert!((out.delivered[0] - 10.0).abs() < 1e-6);
        assert!(out.payments[0].abs() < 1e-9, "VCG payment without contention is 0");
    }

    #[test]
    fn loser_pays_nothing_winner_pays_displaced_value() {
        let net = one_edge();
        let grid = TimeGrid::new(1, 30);
        // One step, capacity 10; both want 10 now.
        let requests = vec![req(0, 5.0, 10.0, 0, 0), req(1, 2.0, 10.0, 0, 0)];
        let cfg = PricedOfflineConfig { highpri_fraction: 0.0, ..Default::default() };
        let out = vcg_like(&net, &grid, 1, &requests, &cfg).unwrap();
        assert!((out.delivered[0] - 10.0).abs() < 1e-6, "{:?}", out.delivered);
        assert!(out.delivered[1] < 1e-6);
        // Winner displaces 10 units of bid-2 traffic: pays 20.
        assert!((out.payments[0] - 20.0).abs() < 1e-6, "{:?}", out.payments);
        assert_eq!(out.payments[1], 0.0);
    }

    #[test]
    fn rates_spread_demand_across_deadline() {
        let net = one_edge();
        let grid = TimeGrid::new(4, 30);
        // Demand 12 over 4 steps: rate 3/step even though capacity is 10.
        let requests = vec![req(0, 5.0, 12.0, 0, 3)];
        let cfg = PricedOfflineConfig { highpri_fraction: 0.0, ..Default::default() };
        let out = vcg_like(&net, &grid, 4, &requests, &cfg).unwrap();
        assert!((out.delivered[0] - 12.0).abs() < 1e-6);
        let e = pretium_net::EdgeId(0);
        for t in 0..4 {
            assert!((out.usage.at(e, t) - 3.0).abs() < 1e-6, "t={t}: {}", out.usage.at(e, t));
        }
    }

    #[test]
    fn myopic_allocation_ignores_costs() {
        // A percentile-billed link: VCGLike routes anyway (it never looks
        // at provider costs), so welfare can be negative.
        let mut net = Network::new();
        let a = net.add_node("A", Region::NorthAmerica);
        let b = net.add_node("B", Region::Europe);
        net.add_edge(a, b, 10.0, LinkCost::percentile(10.0));
        let grid = TimeGrid::new(2, 30);
        let requests = vec![req(0, 0.5, 10.0, 0, 1)];
        let cfg = PricedOfflineConfig { highpri_fraction: 0.0, ..Default::default() };
        let out = vcg_like(&net, &grid, 2, &requests, &cfg).unwrap();
        assert!(out.delivered[0] > 5.0);
        assert!(out.welfare(&requests, &net, &grid, 1.0) < 0.0);
    }
}
