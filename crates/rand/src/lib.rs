//! Offline drop-in replacement for the subset of `rand` 0.8 used by this
//! workspace.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a tiny API-compatible shim instead of the real crate: the
//! [`Rng`] / [`SeedableRng`] traits and a deterministic [`rngs::StdRng`]
//! built on xoshiro256++. Streams are *not* bit-compatible with upstream
//! `rand`; everything in the workspace treats seeds as opaque, so only
//! determinism per seed matters.

/// Uniform sampling from a range type (the slice of `rand`'s
/// `SampleRange`/`SampleUniform` machinery the workspace needs).
pub trait SampleRange<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 range");
        lo + (hi - lo) * rng.next_f64()
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift rejection-free mapping; bias is < 2^-64 per
                // draw, far below anything the simulations can detect.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range");
                let span = (hi - lo) as u64 + 1;
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo + v as $t
            }
        }
    )*};
}
int_range!(usize, u64, u32, i64, i32);

/// Types producible by [`Rng::gen`] (the shim's stand-in for sampling from
/// `rand`'s `Standard` distribution).
pub trait Standard: Sized {
    fn generate<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn generate<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        rng.next_f64()
    }
}

impl Standard for u64 {
    fn generate<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn generate<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Random number generator interface.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Sample uniformly from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Sample a value of type `T` (only `f64`, `u64`, `bool` are wired up).
    #[allow(clippy::should_implement_trait)]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::generate(self)
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.next_f64() < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator (API stand-in for `rand`'s
    /// `StdRng`; the stream differs from upstream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, as recommended by the
            // xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f = r.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = r.gen_range(3usize..9);
            assert!((3..9).contains(&i));
            let fi = r.gen_range(1.0..=2.0);
            assert!((1.0..=2.0).contains(&fi));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut r = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "{hits}");
    }

    #[test]
    fn unit_f64_mean_is_half() {
        let mut r = StdRng::seed_from_u64(3);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "{mean}");
    }
}
