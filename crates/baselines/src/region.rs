//! The RegionOracle baseline (§6.1): two posted prices — one for
//! intra-region transfers, a higher one for inter-region — chosen with
//! hindsight to maximize realized welfare. Mirrors the public-cloud price
//! sheets of Table 2.

use crate::outcome::Outcome;
use crate::priced_offline::{price_candidates, run_posted_price, PricedOfflineConfig};
use pretium_lp::SolveError;
use pretium_net::{Network, TimeGrid};
use pretium_workload::Request;

/// Result of the oracle search.
#[derive(Debug, Clone)]
pub struct RegionOracleResult {
    pub outcome: Outcome,
    pub intra_price: f64,
    pub inter_price: f64,
}

/// Whether a request crosses a region boundary.
pub fn is_inter_region(net: &Network, r: &Request) -> bool {
    net.node(r.src).region != net.node(r.dst).region
}

/// Run RegionOracle: search all `(intra, inter)` price pairs with
/// `inter >= intra` over the value-quantile candidate grid and keep the
/// welfare-maximizing pair.
pub fn region_oracle(
    net: &Network,
    grid: &TimeGrid,
    horizon: usize,
    requests: &[Request],
    cfg: &PricedOfflineConfig,
) -> Result<RegionOracleResult, SolveError> {
    let candidates = price_candidates(requests, cfg.grid_points);
    let mut best: Option<RegionOracleResult> = None;
    let mut best_welfare = f64::NEG_INFINITY;
    for (i, &intra) in candidates.iter().enumerate() {
        for &inter in &candidates[i..] {
            let price = |r: &Request, _t: usize| {
                if is_inter_region(net, r) {
                    inter
                } else {
                    intra
                }
            };
            let Some(outcome) =
                run_posted_price(net, grid, horizon, requests, cfg, "RegionOracle", price)?
            else {
                continue;
            };
            let w = outcome.welfare(requests, net, grid, cfg.cost_scale);
            if w > best_welfare {
                best_welfare = w;
                best = Some(RegionOracleResult { outcome, intra_price: intra, inter_price: inter });
            }
        }
    }
    Ok(best.unwrap_or_else(|| RegionOracleResult {
        outcome: Outcome::new("RegionOracle", requests.len(), net.num_edges(), horizon),
        intra_price: 0.0,
        inter_price: 0.0,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pretium_net::{LinkCost, Region};
    use pretium_workload::{RequestId, RequestKind};

    /// A (NA) -- B (NA) -- C (EU): AB intra, AC inter.
    fn net3() -> Network {
        let mut net = Network::new();
        let a = net.add_node("A", Region::NorthAmerica);
        let b = net.add_node("B", Region::NorthAmerica);
        let c = net.add_node("C", Region::Europe);
        net.add_edge(a, b, 10.0, LinkCost::owned());
        net.add_edge(b, c, 10.0, LinkCost::owned());
        net.add_edge(a, c, 10.0, LinkCost::owned());
        net
    }

    fn req(id: u64, src: u32, dst: u32, value: f64, demand: f64) -> Request {
        Request {
            id: RequestId(id),
            src: pretium_net::NodeId(src),
            dst: pretium_net::NodeId(dst),
            demand,
            value,
            arrival: 0,
            start: 0,
            deadline: 1,
            kind: RequestKind::Byte,
        }
    }

    #[test]
    fn inter_region_detection() {
        let net = net3();
        assert!(!is_inter_region(&net, &req(0, 0, 1, 1.0, 1.0)));
        assert!(is_inter_region(&net, &req(0, 0, 2, 1.0, 1.0)));
    }

    #[test]
    fn oracle_picks_welfare_maximizing_prices() {
        let net = net3();
        let grid = TimeGrid::new(2, 30);
        let requests = vec![
            req(0, 0, 1, 3.0, 10.0), // intra, value 3
            req(1, 0, 2, 8.0, 10.0), // inter, value 8
            req(2, 0, 2, 1.0, 10.0), // inter, value 1
        ];
        let cfg = PricedOfflineConfig { highpri_fraction: 0.0, ..Default::default() };
        let res = region_oracle(&net, &grid, 2, &requests, &cfg).unwrap();
        assert!(res.inter_price >= res.intra_price);
        // With owned (free) links, serving everyone maximizes welfare: the
        // oracle should pick prices low enough to admit all three.
        let w = res.outcome.welfare(&requests, &net, &grid, 1.0);
        assert!((w - (30.0 + 80.0 + 10.0)).abs() < 1e-6, "welfare {w}");
    }

    #[test]
    fn oracle_prices_out_unprofitable_traffic() {
        // Moderately priced inter-region percentile links: the byte-max
        // scheduler will route whatever is admitted, so the hindsight-
        // optimal price must exclude the low-value request (its value is
        // below the carrying cost) while keeping the high-value one.
        let mut net = net3();
        let ac = net.find_edge(pretium_net::NodeId(0), pretium_net::NodeId(2)).unwrap();
        net.edge_mut(ac).cost = LinkCost::percentile(1.0);
        let bc = net.find_edge(pretium_net::NodeId(1), pretium_net::NodeId(2)).unwrap();
        net.edge_mut(bc).cost = LinkCost::percentile(1.0);
        let grid = TimeGrid::new(2, 30);
        let requests = vec![
            req(0, 0, 2, 8.0, 10.0), // worth carrying (8 >> cost/unit)
            req(1, 0, 2, 0.2, 10.0), // below carrying cost
        ];
        let cfg = PricedOfflineConfig { highpri_fraction: 0.0, ..Default::default() };
        let res = region_oracle(&net, &grid, 2, &requests, &cfg).unwrap();
        assert!(res.outcome.delivered[0] > 5.0, "{:?}", res.outcome.delivered);
        assert_eq!(res.outcome.delivered[1], 0.0);
        assert!(res.inter_price > 0.2, "price {}", res.inter_price);
    }
}
