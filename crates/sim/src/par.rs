//! Work-stealing parallel evaluation engine.
//!
//! The evaluation sweep grid — `(figure × axis point × scheme)` — is
//! embarrassingly parallel: every *cell* builds its own seeded scenario (or
//! shares an immutable one behind `Arc`) and solves independently. This
//! module executes a batch of such cells across worker threads and
//! reassembles the results **in declaration order**, so a parallel run is
//! bit-identical to a serial one:
//!
//! * each cell's randomness is a pure function of `(run seed, cell label)`
//!   via [`rand::derive_seed`] — never of thread identity or timing;
//! * results land in a slot indexed by the cell's declaration position, so
//!   completion order is invisible to the caller;
//! * a panicking cell aborts the batch and re-panics **with the cell's
//!   label** after all workers have parked — the pool itself is never
//!   poisoned, and the remaining cells' results are simply discarded.
//!
//! The scheduler is a local, dependency-free rendition of the
//! crossbeam-style injector/worker/stealer triad: cells are round-robined
//! into per-worker FIFO deques up front (deterministic, keeps early cells
//! early), each worker drains its own deque first, then steals from the
//! busiest sibling. Deques are `Mutex<VecDeque>` — cells are
//! coarse-grained (whole scheme solves, milliseconds to seconds), so lock
//! traffic is noise; stealers use `try_lock` and report [`Steal::Retry`]
//! on contention rather than blocking.

use pretium_core::PoolTelemetry;
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Number of workers to use when the caller does not specify `--jobs`:
/// whatever parallelism the host advertises.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// One unit of parallel work: a label (used for seed derivation upstream,
/// telemetry, and panic attribution) plus the closure that computes it.
pub struct Cell<T, E> {
    pub label: String,
    pub run: Box<dyn FnOnce() -> Result<T, E> + Send>,
}

impl<T, E> Cell<T, E> {
    pub fn new(
        label: impl Into<String>,
        run: impl FnOnce() -> Result<T, E> + Send + 'static,
    ) -> Self {
        Cell { label: label.into(), run: Box::new(run) }
    }
}

/// Outcome of one steal attempt (the crossbeam `Steal` shape).
pub enum Steal<T> {
    /// The deque was empty.
    Empty,
    /// A task was stolen.
    Success(T),
    /// The deque was contended; try again or move on.
    Retry,
}

/// A FIFO/LIFO deque shared between one owner and any number of stealers.
/// The owner pushes and pops the front; stealers take from the back with
/// `try_lock` so they never block the owner.
struct Deque<T> {
    slots: Mutex<VecDeque<T>>,
}

impl<T> Deque<T> {
    fn new() -> Self {
        Deque { slots: Mutex::new(VecDeque::new()) }
    }

    fn push(&self, v: T) {
        self.slots.lock().unwrap().push_back(v);
    }

    /// Owner end: earliest-declared task first.
    fn pop(&self) -> Option<T> {
        self.slots.lock().unwrap().pop_front()
    }

    /// Stealer end: latest task, without blocking on a contended lock.
    fn steal(&self) -> Steal<T> {
        match self.slots.try_lock() {
            Ok(mut q) => match q.pop_back() {
                Some(v) => Steal::Success(v),
                None => Steal::Empty,
            },
            Err(_) => Steal::Retry,
        }
    }

    fn len(&self) -> usize {
        self.slots.lock().unwrap().len()
    }
}

/// A task in flight: the cell plus its declaration index (its result slot).
struct Task<T, E> {
    index: usize,
    cell: Cell<T, E>,
}

/// First panic observed in a worker, with the offending cell's label.
#[derive(Default)]
struct PanicSlot {
    first: Mutex<Option<(String, String)>>,
}

impl PanicSlot {
    fn record(&self, label: &str, payload: &(dyn std::any::Any + Send)) {
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        let mut slot = self.first.lock().unwrap();
        if slot.is_none() {
            *slot = Some((label.to_string(), msg));
        }
    }
}

/// Execute `cells` on `jobs` workers and return their results in
/// declaration order, plus the pool's telemetry.
///
/// Determinism contract: the returned vector depends only on the cells
/// themselves — `jobs`, scheduling order, and steal races affect wall
/// clock and telemetry, never results. `jobs <= 1` runs the same code
/// path minus the threads (one in-line worker), so `--jobs 1` is the
/// serial reference the determinism suite compares against.
///
/// A panic inside any cell cancels the not-yet-started cells, waits for
/// in-flight ones, then re-panics with the cell's label; the pool (and
/// every deque in it) unwinds cleanly rather than poisoning.
pub fn run_cells<T, E>(jobs: usize, cells: Vec<Cell<T, E>>) -> (Vec<Result<T, E>>, PoolTelemetry)
where
    T: Send,
    E: Send,
{
    let n = cells.len();
    let workers = jobs.max(1).min(n.max(1));
    let started = Instant::now();

    // Round-robin the cells into per-worker deques up front. Deterministic,
    // keeps declaration-order locality (worker w gets cells w, w+k, ...),
    // and leaves the steal path to do the load balancing.
    let deques: Vec<Deque<Task<T, E>>> = (0..workers).map(|_| Deque::new()).collect();
    for (index, cell) in cells.into_iter().enumerate() {
        deques[index % workers].push(Task { index, cell });
    }

    let results: Mutex<Vec<Option<Result<T, E>>>> = Mutex::new((0..n).map(|_| None).collect());
    let abort = AtomicBool::new(false);
    let panicked = PanicSlot::default();
    let telemetry = Mutex::new(PoolTelemetry { workers, ..Default::default() });

    let worker_loop = |me: usize| {
        let mut local_cells = pretium_core::ModuleStats::default();
        let mut local_steals = 0u64;
        let mut slowest = (String::new(), 0u128);
        loop {
            if abort.load(Ordering::Relaxed) {
                break;
            }
            // Own deque first; then steal from the sibling with the most
            // queued work (re-scanning on Retry).
            let task = deques[me].pop().or_else(|| {
                let mut spun = 0u32;
                loop {
                    let victim = (0..workers)
                        .filter(|&w| w != me)
                        .max_by_key(|&w| deques[w].len())
                        .filter(|&w| deques[w].len() > 0);
                    let v = victim?;
                    match deques[v].steal() {
                        Steal::Success(t) => {
                            local_steals += 1;
                            return Some(t);
                        }
                        Steal::Empty => return None,
                        Steal::Retry => {
                            spun += 1;
                            if spun > 64 {
                                std::thread::yield_now();
                                spun = 0;
                            }
                        }
                    }
                }
            });
            let Some(Task { index, cell }) = task else { break };
            let Cell { label, run } = cell;
            let t0 = Instant::now();
            match panic::catch_unwind(AssertUnwindSafe(run)) {
                Ok(result) => {
                    let elapsed = t0.elapsed();
                    local_cells.record(elapsed);
                    if elapsed.as_nanos() > slowest.1 {
                        slowest = (label, elapsed.as_nanos());
                    }
                    results.lock().unwrap()[index] = Some(result);
                }
                Err(payload) => {
                    panicked.record(&label, payload.as_ref());
                    abort.store(true, Ordering::Relaxed);
                    break;
                }
            }
        }
        let mut t = telemetry.lock().unwrap();
        if slowest.1 > t.cells.max_nanos {
            t.slowest_label = slowest.0;
        }
        t.cells.merge(&local_cells);
        t.steals += local_steals;
    };

    if workers <= 1 {
        worker_loop(0);
    } else {
        std::thread::scope(|scope| {
            for me in 0..workers {
                scope.spawn(move || worker_loop(me));
            }
        });
    }

    if let Some((label, msg)) = panicked.first.lock().unwrap().take() {
        panic::panic_any(format!("evaluation cell `{label}` panicked: {msg}"));
    }

    let mut telemetry = telemetry.into_inner().unwrap();
    telemetry.wall_nanos = started.elapsed().as_nanos();

    let results = results
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|slot| slot.expect("every cell ran exactly once"))
        .collect();
    (results, telemetry)
}

/// [`run_cells`] for infallible cells.
pub fn run_cells_ok<T: Send>(
    jobs: usize,
    cells: Vec<Cell<T, std::convert::Infallible>>,
) -> (Vec<T>, PoolTelemetry) {
    let (results, telemetry) = run_cells(jobs, cells);
    (results.into_iter().map(|r| r.unwrap()).collect(), telemetry)
}

/// Run closures that cannot fail, returning plain values (convenience for
/// in-crate callers like the parallel `compare_schemes`).
pub fn scatter<T, E, I>(jobs: usize, labeled: I) -> (Vec<Result<T, E>>, PoolTelemetry)
where
    T: Send,
    E: Send,
    I: IntoIterator<Item = (String, Box<dyn FnOnce() -> Result<T, E> + Send>)>,
{
    run_cells(jobs, labeled.into_iter().map(|(label, run)| Cell { label, run }).collect())
}

/// Drop-in guard: keep a `Duration` of pool wall-clock per run so reports
/// can print serial-vs-parallel ratios without re-deriving them.
pub fn speedup(serial: Duration, parallel: Duration) -> f64 {
    if parallel.is_zero() {
        return 1.0;
    }
    serial.as_secs_f64() / parallel.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_declaration_order() {
        let cells: Vec<Cell<usize, std::convert::Infallible>> = (0..64)
            .map(|i| {
                Cell::new(format!("cell/{i}"), move || {
                    // Uneven work so completion order differs from
                    // declaration order.
                    let spin = (i * 37) % 97;
                    let mut acc = 0u64;
                    for k in 0..spin * 1000 {
                        acc = acc.wrapping_add(k as u64);
                    }
                    std::hint::black_box(acc);
                    Ok(i)
                })
            })
            .collect();
        let (out, t) = run_cells_ok(8, cells);
        assert_eq!(out, (0..64).collect::<Vec<_>>());
        assert_eq!(t.cells.calls, 64);
        assert!(t.workers >= 1);
    }

    #[test]
    fn serial_and_parallel_agree() {
        let make = || -> Vec<Cell<u64, std::convert::Infallible>> {
            (0..16)
                .map(|i| {
                    Cell::new(format!("c{i}"), move || {
                        let seed = rand::derive_seed(rand::DEFAULT_SEED, &format!("c{i}"));
                        Ok(seed.wrapping_mul(i as u64 + 1))
                    })
                })
                .collect()
        };
        let (a, _) = run_cells_ok(1, make());
        let (b, _) = run_cells_ok(8, make());
        assert_eq!(a, b);
    }

    #[test]
    fn errors_are_reported_per_cell() {
        let cells: Vec<Cell<u32, String>> = vec![
            Cell::new("good", || Ok(1)),
            Cell::new("bad", || Err("boom".to_string())),
            Cell::new("also-good", || Ok(3)),
        ];
        let (out, _) = run_cells(4, cells);
        assert_eq!(out[0], Ok(1));
        assert_eq!(out[1], Err("boom".to_string()));
        assert_eq!(out[2], Ok(3));
    }

    #[test]
    fn panic_carries_cell_label_and_pool_survives() {
        let build = |poison: bool| -> Vec<Cell<u32, String>> {
            (0..8)
                .map(|i| {
                    let label = format!("cell/{i}");
                    Cell::new(label, move || {
                        if poison && i == 5 {
                            panic!("injected failure");
                        }
                        Ok(i)
                    })
                })
                .collect()
        };
        let err = panic::catch_unwind(|| run_cells(4, build(true)))
            .expect_err("run must fail when a cell panics");
        let msg = err.downcast_ref::<String>().expect("string panic message");
        assert!(msg.contains("cell/5"), "panic message must name the cell: {msg}");
        assert!(msg.contains("injected failure"), "{msg}");
        // The engine is not poisoned: a fresh batch on the same thread
        // runs to completion.
        let (ok, t) = run_cells(4, build(false));
        assert_eq!(ok.len(), 8);
        assert!(ok.iter().all(|r| r.is_ok()));
        assert_eq!(t.cells.calls, 8);
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn occupancy_reported_under_load() {
        let cells: Vec<Cell<u64, std::convert::Infallible>> = (0..8)
            .map(|i| {
                Cell::new(format!("w{i}"), move || {
                    let mut acc = 0u64;
                    for k in 0..200_000u64 {
                        acc = acc.wrapping_add(k ^ i);
                    }
                    Ok(std::hint::black_box(acc))
                })
            })
            .collect();
        let (_, t) = run_cells_ok(2, cells);
        assert!(t.occupancy() > 0.0 && t.occupancy() <= 1.0 + 1e-9, "{}", t.occupancy());
        assert!(!t.slowest_label.is_empty());
        assert!(t.wall() > Duration::ZERO);
    }
}
