//! Property-based tests: random LPs with a known feasible point must solve
//! to a KKT-certified optimum that weakly dominates that point.

use proptest::prelude::*;
use pretium_lp::validate::{assert_optimal, check_optimal};
use pretium_lp::{Cmp, LinExpr, Model, Sense};

/// Build a random *feasible bounded* maximization LP:
/// variables x_j in [0, ub_j], rows a·x <= b with b = a·x0 + slack for a
/// random interior point x0, so feasibility is guaranteed by construction.
fn feasible_lp(
    nvars: usize,
    nrows: usize,
    coefs: Vec<f64>,
    objs: Vec<f64>,
    x0: Vec<f64>,
    slacks: Vec<f64>,
) -> (Model, Vec<f64>) {
    let mut m = Model::new(Sense::Maximize);
    let ubs: Vec<f64> = x0.iter().map(|v| v * 2.0 + 1.0).collect();
    let xs: Vec<_> = (0..nvars)
        .map(|j| m.add_var(&format!("x{j}"), 0.0, ubs[j], objs[j]))
        .collect();
    for i in 0..nrows {
        let mut e = LinExpr::new();
        let mut lhs_at_x0 = 0.0;
        for j in 0..nvars {
            let c = coefs[i * nvars + j];
            if c.abs() > 0.05 {
                e.add_term(c, xs[j]);
                lhs_at_x0 += c * x0[j];
            }
        }
        m.add_row(&format!("r{i}"), e, Cmp::Le, lhs_at_x0 + slacks[i]);
    }
    (m, x0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_feasible_lps_reach_certified_optimum(
        nvars in 2usize..8,
        nrows in 1usize..10,
        seed_coefs in proptest::collection::vec(-2.0f64..2.0, 80),
        seed_objs in proptest::collection::vec(-1.0f64..3.0, 8),
        seed_x0 in proptest::collection::vec(0.0f64..5.0, 8),
        seed_slack in proptest::collection::vec(0.0f64..4.0, 10),
    ) {
        let coefs: Vec<f64> = (0..nvars * nrows).map(|k| seed_coefs[k % seed_coefs.len()]).collect();
        let objs: Vec<f64> = (0..nvars).map(|j| seed_objs[j % seed_objs.len()]).collect();
        let x0: Vec<f64> = (0..nvars).map(|j| seed_x0[j % seed_x0.len()]).collect();
        let slacks: Vec<f64> = (0..nrows).map(|i| seed_slack[i % seed_slack.len()]).collect();
        let (m, x0) = feasible_lp(nvars, nrows, coefs, objs.clone(), x0, slacks);
        let sol = m.solve().expect("constructed-feasible LP must solve");
        // Optimum dominates the known feasible point.
        let val_at_x0: f64 = objs.iter().zip(&x0).map(|(c, v)| c * v).sum();
        prop_assert!(sol.objective() >= val_at_x0 - 1e-6 * (1.0 + val_at_x0.abs()));
        // Full KKT certification.
        let violations = check_optimal(&m, &sol, 1e-6);
        prop_assert!(violations.is_empty(), "KKT violations: {violations:?}");
    }

    #[test]
    fn strong_duality_holds_on_random_inequality_lps(
        nvars in 2usize..6,
        nrows in 1usize..6,
        seed in proptest::collection::vec(0.1f64..2.0, 64),
    ) {
        // All-positive data: max c·x, A x <= b, x >= 0 is always feasible
        // (x = 0) and bounded (A strictly positive on every var ensures x is
        // capped). Strong duality: c·x* == y*·b.
        let mut m = Model::new(Sense::Maximize);
        let xs: Vec<_> = (0..nvars)
            .map(|j| m.add_nonneg(&format!("x{j}"), seed[j % seed.len()]))
            .collect();
        let mut rows = Vec::new();
        let mut bs = Vec::new();
        for i in 0..nrows {
            let mut e = LinExpr::new();
            for (j, &x) in xs.iter().enumerate() {
                e.add_term(seed[(i * nvars + j + 7) % seed.len()], x);
            }
            let b = seed[(i + 13) % seed.len()] * 5.0;
            rows.push(m.add_row(&format!("r{i}"), e, Cmp::Le, b));
            bs.push(b);
        }
        // Cap every variable so the LP is bounded even if some row misses one.
        for &x in &xs {
            m.set_bounds(x, 0.0, 50.0);
        }
        let sol = m.solve().unwrap();
        assert_optimal(&m, &sol, 1e-6);
        // Lagrangian bound: obj <= y·b + Σ_j max(0, reduced_j)·ub_j; with the
        // upper bounds rarely active, check the weak-duality direction which
        // must always hold: y·b + Σ ub_j·max(0, c_j - yᵀA_j) >= obj.
        let yb: f64 = rows.iter().zip(&bs).map(|(r, b)| sol.dual(*r) * b).sum();
        let bound_part: f64 = (0..nvars)
            .map(|j| {
                let red = pretium_lp::validate::recompute_reduced(&m, &sol, j);
                50.0 * red.max(0.0)
            })
            .sum();
        prop_assert!(yb + bound_part >= sol.objective() - 1e-5 * (1.0 + sol.objective().abs()),
            "weak duality violated: {} + {} < {}", yb, bound_part, sol.objective());
    }

    #[test]
    fn minimize_maximize_symmetry(
        objs in proptest::collection::vec(-3.0f64..3.0, 4),
        rhs in 1.0f64..10.0,
    ) {
        // max c·x == -min (-c)·x on the same feasible set.
        let build = |sense: Sense, flip: f64| {
            let mut m = Model::new(sense);
            let xs: Vec<_> = objs
                .iter()
                .enumerate()
                .map(|(j, &c)| m.add_var(&format!("x{j}"), 0.0, 5.0, flip * c))
                .collect();
            let e = LinExpr::from_terms(xs.iter().map(|&x| (1.0, x)));
            m.add_row("sum", e, Cmp::Le, rhs);
            m.solve().unwrap().objective()
        };
        let maxed = build(Sense::Maximize, 1.0);
        let minned = build(Sense::Minimize, -1.0);
        prop_assert!((maxed + minned).abs() < 1e-6 * (1.0 + maxed.abs()),
            "max {maxed} vs -min {minned}");
    }

    #[test]
    fn equality_rows_hold_exactly(
        target in 0.5f64..8.0,
        objs in proptest::collection::vec(0.1f64..2.0, 5),
    ) {
        let mut m = Model::new(Sense::Maximize);
        let xs: Vec<_> = objs
            .iter()
            .enumerate()
            .map(|(j, &c)| m.add_var(&format!("x{j}"), 0.0, 10.0, c))
            .collect();
        let e = LinExpr::from_terms(xs.iter().map(|&x| (1.0, x)));
        m.add_row("eq", e, Cmp::Eq, target);
        let sol = m.solve().unwrap();
        let total: f64 = xs.iter().map(|&x| sol.value(x)).sum();
        prop_assert!((total - target).abs() < 1e-7 * (1.0 + target));
        // Everything should go to the variable with the largest coefficient.
        let best = objs.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert!((sol.objective() - best * target).abs() < 1e-6 * (1.0 + best * target));
    }
}
