//! Price menus and user responses (§4.1, Figure 4).
//!
//! A menu `p_i(·)` is built by greedily filling the cheapest
//! `(path, timestep)` slots at the current internal prices: the per-unit
//! price only rises as slots saturate, so the menu is non-decreasing,
//! convex, and piecewise linear. The menu records which slots each segment
//! draws on, so accepting `x` units immediately yields the preliminary
//! schedule (the admission interface doubles as TE by steering traffic to
//! low-price slots).

use crate::state::NetworkState;
use pretium_net::{EdgeId, Path, Timestep};
use rand::DetHashMap as HashMap;

/// Where a menu segment's capacity lives.
#[derive(Debug, Clone, PartialEq)]
pub struct SlotAlloc {
    /// Index into the request's path set.
    pub path_idx: usize,
    pub t: Timestep,
    pub units: f64,
}

/// One linear piece of the menu: `units` sellable at `unit_price` each.
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    pub unit_price: f64,
    pub units: f64,
    pub alloc: SlotAlloc,
}

/// A convex piecewise-linear price schedule plus the capacity bound `x̄`.
///
/// `PartialEq` is segment-exact (prices, units, and slot allocations
/// compare bitwise through `f64` equality) — the admission determinism
/// tests rely on menus quoted from a snapshot being *identical* to menus
/// quoted serially, not merely close.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PriceMenu {
    /// Segments in non-decreasing price order.
    pub segments: Vec<Segment>,
}

impl PriceMenu {
    /// `x̄`: the largest transfer Pretium will guarantee (§4.1).
    pub fn capacity_bound(&self) -> f64 {
        self.segments.iter().map(|s| s.units).sum()
    }

    /// Whether the menu can back zero units (no sellable capacity in the
    /// request's window). Purchases off an empty menu are unpriceable and
    /// must be rejected, not booked at an infinite price.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Per-unit price of best-effort units beyond `x̄` — the final marginal
    /// price — or `None` when the menu is empty and there is no price to
    /// extend.
    pub fn best_effort_price(&self) -> Option<f64> {
        self.segments.last().map(|s| s.unit_price)
    }

    /// Total price `p(x)` for routing `x` units. Beyond `x̄`, additional
    /// units are explicitly priced at [`PriceMenu::best_effort_price`]
    /// (the best-effort class). On an empty menu any positive quantity is
    /// unpriceable (`∞`); callers must reject such purchases instead of
    /// booking them (see `Pretium::accept`).
    pub fn price(&self, x: f64) -> f64 {
        assert!(x >= 0.0, "negative quantity");
        let mut remaining = x;
        let mut total = 0.0;
        for s in &self.segments {
            let take = remaining.min(s.units);
            total += take * s.unit_price;
            remaining -= take;
            if remaining <= 0.0 {
                return total;
            }
        }
        match self.best_effort_price() {
            Some(p) => total + remaining * p,
            None if remaining <= 0.0 => total,
            None => f64::INFINITY,
        }
    }

    /// Marginal price `Δ(x)` of the next unit after `x`.
    pub fn marginal(&self, x: f64) -> f64 {
        assert!(x >= 0.0);
        let mut seen = 0.0;
        for s in &self.segments {
            seen += s.units;
            if x < seen - 1e-12 {
                return s.unit_price;
            }
        }
        self.marginal_at_bound()
    }

    /// The marginal price at `x̄` (what best-effort units would pay): the
    /// explicit best-effort price, or `∞` for an empty menu (nothing is
    /// sellable at any price).
    pub fn marginal_at_bound(&self) -> f64 {
        self.best_effort_price().unwrap_or(f64::INFINITY)
    }

    /// Theorem 5.2: the utility-maximizing purchase for a customer with
    /// per-unit value `value` and demand `demand` — as many units as
    /// possible while the marginal price is at most the value, capped at
    /// both the demand and the guarantee bound `x̄`.
    pub fn optimal_purchase(&self, value: f64, demand: f64) -> f64 {
        assert!(demand >= 0.0);
        let mut x = 0.0;
        for s in &self.segments {
            if s.unit_price > value + 1e-12 {
                break;
            }
            x += s.units;
            if x >= demand {
                return demand;
            }
        }
        x.min(demand)
    }

    /// All-or-nothing variant (the Pretium-NoMenu ablation of Figure 11):
    /// buy the full demand iff it fits under `x̄` and the total price does
    /// not exceed the total value.
    pub fn all_or_nothing_purchase(&self, value: f64, demand: f64) -> f64 {
        if demand <= self.capacity_bound() + 1e-9 && self.price(demand) <= value * demand + 1e-9 {
            demand
        } else {
            0.0
        }
    }

    /// The slot allocations backing the first `x` units (the preliminary
    /// schedule for an accepted transfer of size `x`).
    pub fn allocations_for(&self, x: f64) -> Vec<SlotAlloc> {
        let mut remaining = x;
        let mut out = Vec::new();
        for s in &self.segments {
            if remaining <= 1e-12 {
                break;
            }
            let take = remaining.min(s.units);
            out.push(SlotAlloc { path_idx: s.alloc.path_idx, t: s.alloc.t, units: take });
            remaining -= take;
        }
        out
    }

    /// Number of distinct price levels (for display).
    pub fn price_levels(&self) -> Vec<(f64, f64)> {
        let mut out: Vec<(f64, f64)> = Vec::new();
        for s in &self.segments {
            match out.last_mut() {
                Some(last) if (last.0 - s.unit_price).abs() < 1e-12 => last.1 += s.units,
                _ => out.push((s.unit_price, s.units)),
            }
        }
        out
    }
}

/// Build the price menu for a request over `paths` within
/// `[start, deadline]`, against the current prices/availability in
/// `state`. Does not mutate the state: hypothetical fills are tracked in a
/// local ledger so the short-term price bump (§4.1) applies *within* the
/// menu as well (buying deep into a link's capacity raises later segments).
pub fn build_menu(
    state: &NetworkState,
    paths: &[Path],
    start: Timestep,
    deadline: Timestep,
) -> PriceMenu {
    assert!(start <= deadline, "empty request window");
    let deadline = deadline.min(state.horizon().saturating_sub(1));
    // Local hypothetical reservations on top of the state.
    let mut extra: HashMap<(EdgeId, Timestep), f64> = HashMap::default();
    let marginal = |state: &NetworkState,
                    extra: &HashMap<(EdgeId, Timestep), f64>,
                    e: EdgeId,
                    t: Timestep|
     -> f64 {
        let cap = state.sellable_capacity(e, t);
        if cap <= 0.0 {
            return state.price(e, t) * state.bump.factor;
        }
        let used = state.reserved(e, t) + extra.get(&(e, t)).copied().unwrap_or(0.0);
        if used / cap >= state.bump.threshold {
            state.price(e, t) * state.bump.factor
        } else {
            state.price(e, t)
        }
    };
    let avail_at_marginal = |state: &NetworkState,
                             extra: &HashMap<(EdgeId, Timestep), f64>,
                             e: EdgeId,
                             t: Timestep|
     -> f64 {
        let cap = state.sellable_capacity(e, t);
        let used = state.reserved(e, t) + extra.get(&(e, t)).copied().unwrap_or(0.0);
        let boundary = cap * state.bump.threshold;
        if used < boundary {
            boundary - used
        } else {
            (cap - used).max(0.0)
        }
    };

    let mut segments = Vec::new();
    // Bounded iteration: each round exhausts a segment of at least one
    // (edge, t); 2 segments per pair.
    let max_rounds = 2 * paths.iter().map(|p| p.len()).sum::<usize>() * (deadline - start + 1) + 8;
    for _ in 0..max_rounds {
        // Find the cheapest slot with availability.
        let mut best: Option<(f64, usize, Timestep, f64)> = None; // (price, path, t, qty)
        for (pi, path) in paths.iter().enumerate() {
            for t in start..=deadline {
                let price: f64 = path.edges().iter().map(|&e| marginal(state, &extra, e, t)).sum();
                let qty: f64 = path
                    .edges()
                    .iter()
                    .map(|&e| avail_at_marginal(state, &extra, e, t))
                    .fold(f64::INFINITY, f64::min);
                if qty <= 1e-9 {
                    continue;
                }
                if best.as_ref().is_none_or(|&(bp, _, _, _)| price < bp - 1e-12) {
                    best = Some((price, pi, t, qty));
                }
            }
        }
        let Some((price, pi, t, qty)) = best else { break };
        for &e in paths[pi].edges() {
            *extra.entry((e, t)).or_insert(0.0) += qty;
        }
        segments.push(Segment {
            unit_price: price,
            units: qty,
            alloc: SlotAlloc { path_idx: pi, t, units: qty },
        });
    }
    // Greedy picks the global minimum each round, so prices are sorted —
    // but the bump can create equal-price reorderings; enforce the
    // invariant.
    segments.sort_by(|a, b| a.unit_price.partial_cmp(&b.unit_price).unwrap());
    PriceMenu { segments }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::PriceBump;
    use pretium_net::{LinkCost, Network, Region, TimeGrid};

    /// A -> B single edge, capacity 10/step, 4 steps, price 1.0.
    fn setup() -> (Network, NetworkState, Vec<Path>) {
        let mut net = Network::new();
        let a = net.add_node("A", Region::NorthAmerica);
        let b = net.add_node("B", Region::NorthAmerica);
        let e = net.add_edge(a, b, 10.0, LinkCost::owned());
        let state =
            NetworkState::new(&net, TimeGrid::new(4, 30), 4, 0.0, PriceBump::default(), |_| 1.0);
        let paths = vec![Path::new(&net, vec![e])];
        (net, state, paths)
    }

    #[test]
    fn menu_is_sorted_and_convex() {
        let (_, state, paths) = setup();
        let menu = build_menu(&state, &paths, 0, 3);
        let prices: Vec<f64> = menu.segments.iter().map(|s| s.unit_price).collect();
        assert!(prices.windows(2).all(|w| w[0] <= w[1] + 1e-12), "{prices:?}");
        // x̄ = 4 steps × 10 capacity = 40.
        assert!((menu.capacity_bound() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn bump_creates_second_price_level() {
        let (_, state, paths) = setup();
        let menu = build_menu(&state, &paths, 0, 0);
        // One step: 8 units at 1.0, then 2 units at 2.0.
        let levels = menu.price_levels();
        assert_eq!(levels.len(), 2, "{levels:?}");
        assert!((levels[0].0 - 1.0).abs() < 1e-12 && (levels[0].1 - 8.0).abs() < 1e-9);
        assert!((levels[1].0 - 2.0).abs() < 1e-12 && (levels[1].1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn price_integrates_segments() {
        let (_, state, paths) = setup();
        let menu = build_menu(&state, &paths, 0, 0);
        assert!((menu.price(8.0) - 8.0).abs() < 1e-9);
        assert!((menu.price(10.0) - (8.0 + 2.0 * 2.0)).abs() < 1e-9);
        // Beyond x̄: best-effort at the final marginal price.
        assert!((menu.price(12.0) - (12.0 + 2.0 * 2.0)).abs() < 1e-9);
    }

    #[test]
    fn marginal_steps_at_boundaries() {
        let (_, state, paths) = setup();
        let menu = build_menu(&state, &paths, 0, 0);
        assert_eq!(menu.marginal(0.0), 1.0);
        assert_eq!(menu.marginal(7.9), 1.0);
        assert_eq!(menu.marginal(8.0), 2.0);
        assert_eq!(menu.marginal(50.0), 2.0);
    }

    #[test]
    fn optimal_purchase_respects_value() {
        let (_, state, paths) = setup();
        let menu = build_menu(&state, &paths, 0, 0);
        // Value 1.5: only the 1.0-priced 8 units are worth it.
        assert!((menu.optimal_purchase(1.5, 100.0) - 8.0).abs() < 1e-9);
        // Value 2.5: everything (10 units) is worth it.
        assert!((menu.optimal_purchase(2.5, 100.0) - 10.0).abs() < 1e-9);
        // Demand caps the purchase.
        assert!((menu.optimal_purchase(2.5, 3.0) - 3.0).abs() < 1e-9);
        // Value below every price: nothing.
        assert_eq!(menu.optimal_purchase(0.5, 100.0), 0.0);
    }

    #[test]
    fn all_or_nothing_threshold() {
        let (_, state, paths) = setup();
        let menu = build_menu(&state, &paths, 0, 0);
        // 10 units cost 12 total; value 1.3/unit -> total value 13 >= 12: buy.
        assert_eq!(menu.all_or_nothing_purchase(1.3, 10.0), 10.0);
        // value 1.1 -> total 11 < 12: walk away.
        assert_eq!(menu.all_or_nothing_purchase(1.1, 10.0), 0.0);
        // Demand beyond x̄: walk away even with a high value.
        assert_eq!(menu.all_or_nothing_purchase(10.0, 11.0), 0.0);
    }

    #[test]
    fn allocations_cover_purchase() {
        let (_, state, paths) = setup();
        let menu = build_menu(&state, &paths, 0, 3);
        let allocs = menu.allocations_for(25.0);
        let total: f64 = allocs.iter().map(|a| a.units).sum();
        assert!((total - 25.0).abs() < 1e-9);
        // Cheapest slots first: all allocations at base price until 4×8=32.
        for a in &allocs {
            assert!(a.t <= 3);
        }
    }

    #[test]
    fn later_deadline_never_raises_prices() {
        // Theorem 5.1 ingredient: a superset window can only lower p(x).
        let (_, mut state, paths) = setup();
        // Make step 0 expensive.
        let e = EdgeId(0);
        state.set_price(e, 0, 5.0);
        let tight = build_menu(&state, &paths, 0, 0);
        let loose = build_menu(&state, &paths, 0, 3);
        for x in [1.0, 5.0, 10.0] {
            assert!(
                loose.price(x) <= tight.price(x) + 1e-9,
                "x={x}: loose {} > tight {}",
                loose.price(x),
                tight.price(x)
            );
        }
    }

    #[test]
    fn existing_reservations_shrink_menu() {
        let (_, mut state, paths) = setup();
        state.reserve(EdgeId(0), 0, 6.0);
        let menu = build_menu(&state, &paths, 0, 0);
        assert!((menu.capacity_bound() - 4.0).abs() < 1e-9);
        // Only 2 units remain below the bump threshold (8 - 6).
        let levels = menu.price_levels();
        assert!((levels[0].1 - 2.0).abs() < 1e-9, "{levels:?}");
    }

    #[test]
    fn empty_menu_when_no_capacity() {
        let (_, mut state, paths) = setup();
        for t in 0..4 {
            let cap = state.sellable_capacity(EdgeId(0), t);
            state.reserve(EdgeId(0), t, cap);
        }
        let menu = build_menu(&state, &paths, 0, 3);
        assert_eq!(menu.capacity_bound(), 0.0);
        assert_eq!(menu.optimal_purchase(100.0, 10.0), 0.0);
        assert_eq!(menu.marginal_at_bound(), f64::INFINITY);
        assert!(menu.is_empty());
        assert_eq!(menu.best_effort_price(), None);
        // Positive quantities are unpriceable; zero units cost zero.
        assert!(menu.price(1.0).is_infinite());
        assert_eq!(menu.price(0.0), 0.0);
    }

    #[test]
    fn best_effort_price_extends_final_segment() {
        let (_, state, paths) = setup();
        let menu = build_menu(&state, &paths, 0, 0);
        // Final (bumped) segment price: 2.0.
        assert_eq!(menu.best_effort_price(), Some(2.0));
        assert!(!menu.is_empty());
        // 5 units beyond x̄ = 10 are priced explicitly at 2.0 each.
        assert!((menu.price(15.0) - (8.0 + 2.0 * 2.0 + 5.0 * 2.0)).abs() < 1e-9);
        assert!(menu.price(1e6).is_finite());
    }

    #[test]
    fn multipath_menu_prefers_cheap_path() {
        let mut net = Network::new();
        let a = net.add_node("A", Region::NorthAmerica);
        let b = net.add_node("B", Region::NorthAmerica);
        let c = net.add_node("C", Region::NorthAmerica);
        let ab = net.add_edge(a, b, 10.0, LinkCost::owned());
        let ac = net.add_edge(a, c, 10.0, LinkCost::owned());
        let cb = net.add_edge(c, b, 10.0, LinkCost::owned());
        let mut state =
            NetworkState::new(&net, TimeGrid::new(1, 30), 1, 0.0, PriceBump::disabled(), |_| 1.0);
        // Two-hop path costs 2.0/unit; make the direct edge pricier (3.0).
        state.set_price(ab, 0, 3.0);
        let paths = vec![Path::new(&net, vec![ab]), Path::new(&net, vec![ac, cb])];
        let menu = build_menu(&state, &paths, 0, 0);
        assert_eq!(menu.segments[0].alloc.path_idx, 1, "two-hop path should be first");
        assert!((menu.segments[0].unit_price - 2.0).abs() < 1e-12);
        assert!((menu.marginal(10.0) - 3.0).abs() < 1e-12);
    }
}
