//! # pretium-par — deterministic sectioned parallel map
//!
//! The workspace's bit-exact determinism contract (DESIGN.md §19) demands
//! that a worker count be a pure wall-clock knob: the same inputs must
//! produce the same bits at `jobs = 1`, `2`, or `8`. Generic work-stealing
//! breaks that for floating-point reductions, because the *grouping* of
//! partial results then depends on which thread finishes first.
//!
//! This crate provides the two primitives that make parallel candidate
//! scoring deterministic anyway:
//!
//! 1. **Fixed, size-derived sections.** [`section_len`] depends only on the
//!    range length — never on the worker count — so the same range is
//!    always cut at the same boundaries and every per-section computation
//!    sees the same operands in the same order.
//! 2. **Section-order reduction.** [`map_sections`] returns per-section
//!    results indexed by section, and callers fold them in that order.
//!    Threads may *execute* sections in any order (work stealing included);
//!    they can never *reduce* in completion order.
//!
//! Scheduling mirrors `pretium-sim::par`: one `VecDeque` per worker seeded
//! round-robin, owners pop the front, idle workers steal from the back of
//! the busiest sibling. Panics propagate through [`std::thread::scope`].
//!
//! The primitives live in their own bottom-level crate (std only) because
//! both consumers — `pretium-lp`'s simplex pricing and `pretium-core`'s
//! column generation — sit *below* `pretium-sim` in the dependency graph
//! and cannot use its pool without a cycle.

use std::collections::VecDeque;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Upper bound on the number of sections a range is cut into.
pub const SECTION_TARGET: usize = 64;

/// Lower bound on a section's length: below this, per-section bookkeeping
/// (a mutex'd result slot, a deque entry) dominates the scoring work.
pub const SECTION_MIN: usize = 256;

/// Length of every section (the last may be shorter) for a range of `len`
/// candidates. A pure function of `len` — never of the worker count — so
/// section boundaries, and with them every floating-point grouping, are
/// identical for any `jobs` value.
pub fn section_len(len: usize) -> usize {
    if len == 0 {
        return 1;
    }
    len.div_ceil(SECTION_TARGET).max(SECTION_MIN).min(len)
}

/// Number of sections a range of `len` candidates is cut into.
pub fn section_count(len: usize) -> usize {
    if len == 0 {
        0
    } else {
        len.div_ceil(section_len(len))
    }
}

/// Counters of one sectioned run: how many sections were scored, how many
/// ran on a worker other than the one their deque was seeded to (steal
/// traffic), and the end-to-end wall clock. `sections` is deterministic
/// for a fixed `(len, jobs)` pair; `steals` and `wall_nanos` are timing
/// artifacts and must never feed a determinism comparison.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ParStats {
    /// Sections executed.
    pub sections: u64,
    /// Sections executed by a worker that stole them from a sibling.
    pub steals: u64,
    /// End-to-end wall clock of the run, in nanoseconds.
    pub wall_nanos: u128,
}

impl ParStats {
    /// Fold a second run into this one.
    pub fn merge(&mut self, other: ParStats) {
        self.sections += other.sections;
        self.steals += other.steals;
        self.wall_nanos += other.wall_nanos;
    }
}

/// Map `f` over the fixed sections of `0..len` and return the results in
/// **section order** (index `s` covers `s*section_len(len) ..`), plus run
/// counters. `f` receives `(section_index, candidate_range)`.
///
/// With `jobs <= 1` (or a single section) the sections run inline on the
/// caller's thread, in order, with no thread machinery at all; otherwise
/// `min(jobs, sections)` scoped workers execute them with work stealing.
/// Either way the returned vector is ordered by section, so a caller's
/// fold is associative-grouping-identical across worker counts.
pub fn map_sections<T, F>(len: usize, jobs: usize, f: F) -> (Vec<T>, ParStats)
where
    T: Send,
    F: Fn(usize, Range<usize>) -> T + Sync,
{
    let t0 = Instant::now();
    let sl = section_len(len);
    let count = section_count(len);
    let mut stats = ParStats { sections: count as u64, ..ParStats::default() };
    let range = |s: usize| (s * sl)..((s + 1) * sl).min(len);
    if jobs <= 1 || count <= 1 {
        let out = (0..count).map(|s| f(s, range(s))).collect();
        stats.wall_nanos = t0.elapsed().as_nanos();
        return (out, stats);
    }
    let results: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
    stats.steals = run_stealing(count, jobs, &|s| {
        *results[s].lock().expect("result slot") = Some(f(s, range(s)));
    });
    let out = results
        .into_iter()
        .map(|m| m.into_inner().expect("result slot").expect("section executed"))
        .collect();
    stats.wall_nanos = t0.elapsed().as_nanos();
    (out, stats)
}

/// Run `f` over the fixed sections of `data`, handing each invocation its
/// own disjoint `&mut` chunk: `f(section_index, start_offset, chunk)` where
/// `chunk = &mut data[start .. start + chunk.len()]`. The write-side twin
/// of [`map_sections`] for fills like a reduced-cost recompute, where each
/// section owns its output range and no reduction happens at all.
pub fn for_each_section<T, F>(data: &mut [T], jobs: usize, f: F) -> ParStats
where
    T: Send,
    F: Fn(usize, usize, &mut [T]) + Sync,
{
    let t0 = Instant::now();
    let len = data.len();
    let sl = section_len(len);
    let count = section_count(len);
    let mut stats = ParStats { sections: count as u64, ..ParStats::default() };
    if jobs <= 1 || count <= 1 {
        for (s, chunk) in data.chunks_mut(sl).enumerate() {
            f(s, s * sl, chunk);
        }
        stats.wall_nanos = t0.elapsed().as_nanos();
        return stats;
    }
    type Slot<'a, T> = Mutex<Option<(usize, &'a mut [T])>>;
    let tasks: Vec<Slot<'_, T>> =
        data.chunks_mut(sl).enumerate().map(|(s, c)| Mutex::new(Some((s * sl, c)))).collect();
    stats.steals = run_stealing(count, jobs, &|s| {
        let (start, chunk) = tasks[s].lock().expect("task slot").take().expect("section unclaimed");
        f(s, start, chunk);
    });
    stats.wall_nanos = t0.elapsed().as_nanos();
    stats
}

/// Execute sections `0..count` across `min(jobs, count)` scoped workers
/// with per-worker deques and back-of-the-busiest stealing. Returns the
/// number of stolen sections. `exec` runs each section exactly once;
/// section-to-worker assignment (and therefore the steal count) is timing
/// dependent, which is exactly why callers collect results by section
/// index instead of arrival order.
fn run_stealing(count: usize, jobs: usize, exec: &(impl Fn(usize) + Sync)) -> u64 {
    let workers = jobs.min(count);
    let deques: Vec<Mutex<VecDeque<usize>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for s in 0..count {
        deques[s % workers].lock().expect("seed deque").push_back(s);
    }
    let remaining = AtomicUsize::new(count);
    let steals = AtomicU64::new(0);
    // Decrement-on-drop so a panicking `exec` still counts its section
    // down: without this, sibling workers would spin on `remaining > 0`
    // forever and the scope would never join to propagate the panic.
    struct Done<'a>(&'a AtomicUsize);
    impl Drop for Done<'_> {
        fn drop(&mut self) {
            self.0.fetch_sub(1, Ordering::AcqRel);
        }
    }
    std::thread::scope(|scope| {
        for w in 0..workers {
            let deques = &deques;
            let remaining = &remaining;
            let steals = &steals;
            scope.spawn(move || {
                let mut spins = 0u32;
                while remaining.load(Ordering::Acquire) > 0 {
                    let own = deques[w].lock().expect("own deque").pop_front();
                    let task = match own {
                        Some(s) => Some(s),
                        None => {
                            let stolen = steal_from_busiest(deques, w);
                            if stolen.is_some() {
                                steals.fetch_add(1, Ordering::Relaxed);
                            }
                            stolen
                        }
                    };
                    match task {
                        Some(s) => {
                            spins = 0;
                            let _done = Done(remaining);
                            exec(s);
                        }
                        None => {
                            spins += 1;
                            if spins > 64 {
                                std::thread::yield_now();
                            } else {
                                std::hint::spin_loop();
                            }
                        }
                    }
                }
            });
        }
    });
    steals.into_inner()
}

/// Steal one section from the back of the sibling with the most queued
/// work. `try_lock` throughout: a contended deque is skipped this round
/// rather than waited on.
fn steal_from_busiest(deques: &[Mutex<VecDeque<usize>>], me: usize) -> Option<usize> {
    let mut best: Option<(usize, usize)> = None;
    for (i, d) in deques.iter().enumerate() {
        if i == me {
            continue;
        }
        if let Ok(g) = d.try_lock() {
            if !g.is_empty() && best.is_none_or(|(n, _)| g.len() > n) {
                best = Some((g.len(), i));
            }
        }
    }
    let (_, victim) = best?;
    deques[victim].try_lock().ok()?.pop_back()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn section_len_is_size_derived_and_bounded() {
        assert_eq!(section_len(0), 1);
        assert_eq!(section_count(0), 0);
        // Small ranges: one section of the whole range.
        assert_eq!(section_len(10), 10);
        assert_eq!(section_count(10), 1);
        assert_eq!(section_len(SECTION_MIN), SECTION_MIN);
        // Mid ranges: SECTION_MIN-long sections.
        assert_eq!(section_len(1_000), SECTION_MIN);
        assert_eq!(section_count(1_000), 4);
        // Large ranges: at most SECTION_TARGET sections.
        for len in [50_000usize, 123_457, 1_000_000] {
            assert!(section_count(len) <= SECTION_TARGET, "len={len}");
            assert!(section_len(len) >= SECTION_MIN);
        }
        // Sections tile the range exactly.
        for len in [1usize, 255, 256, 257, 999, 1_000, 48_211] {
            let (sl, count) = (section_len(len), section_count(len));
            assert!(sl * count >= len && sl * (count - 1) < len, "len={len}");
        }
    }

    #[test]
    fn map_sections_is_identical_across_job_counts() {
        // A reduction that is sensitive to FP grouping: summing 1/(i+1) in
        // section order must give the same bits for any worker count.
        let len = 10_000;
        let sum_of = |jobs: usize| {
            let (parts, stats) =
                map_sections(len, jobs, |_, r| r.map(|i| 1.0_f64 / (i as f64 + 1.0)).sum::<f64>());
            assert_eq!(stats.sections, section_count(len) as u64);
            parts.iter().sum::<f64>().to_bits()
        };
        let serial = sum_of(1);
        for jobs in [2, 3, 8, 16] {
            assert_eq!(serial, sum_of(jobs), "jobs={jobs} diverged");
        }
    }

    #[test]
    fn map_sections_orders_results_by_section() {
        let len = 4 * SECTION_MIN + 7;
        let (idx, _) = map_sections(len, 4, |s, r| (s, r.start, r.end));
        for (i, &(s, start, end)) in idx.iter().enumerate() {
            assert_eq!(s, i);
            assert_eq!(start, i * section_len(len));
            assert_eq!(end, ((i + 1) * section_len(len)).min(len));
        }
    }

    #[test]
    fn for_each_section_fills_disjoint_chunks() {
        let len = 3 * SECTION_MIN + 11;
        let mut serial = vec![0.0_f64; len];
        for_each_section(&mut serial, 1, |_, start, chunk| {
            for (off, v) in chunk.iter_mut().enumerate() {
                *v = ((start + off) as f64).sqrt();
            }
        });
        let mut par = vec![0.0_f64; len];
        let stats = for_each_section(&mut par, 4, |_, start, chunk| {
            for (off, v) in chunk.iter_mut().enumerate() {
                *v = ((start + off) as f64).sqrt();
            }
        });
        assert_eq!(stats.sections, section_count(len) as u64);
        assert_eq!(
            serial.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            par.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn inline_path_spawns_no_threads_and_counts_no_steals() {
        let (_, stats) = map_sections(10_000, 1, |_, r| r.len());
        assert_eq!(stats.steals, 0);
        // A single section also stays inline regardless of jobs.
        let (_, stats) = map_sections(SECTION_MIN, 8, |_, r| r.len());
        assert_eq!(stats.sections, 1);
        assert_eq!(stats.steals, 0);
    }

    #[test]
    fn empty_range_runs_nothing() {
        let (out, stats) = map_sections(0, 4, |_, _| 1u8);
        assert!(out.is_empty());
        assert_eq!(stats.sections, 0);
        let stats = for_each_section::<f64, _>(&mut [], 4, |_, _, _| panic!("no sections"));
        assert_eq!(stats.sections, 0);
    }

    #[test]
    fn stats_merge_accumulates() {
        let mut a = ParStats { sections: 2, steals: 1, wall_nanos: 10 };
        a.merge(ParStats { sections: 3, steals: 0, wall_nanos: 5 });
        assert_eq!(a, ParStats { sections: 5, steals: 1, wall_nanos: 15 });
    }

    #[test]
    fn worker_panic_propagates() {
        let caught = std::panic::catch_unwind(|| {
            map_sections(4 * SECTION_MIN, 2, |s, _| {
                if s == 2 {
                    panic!("section failure");
                }
                0u8
            })
        });
        assert!(caught.is_err());
    }
}
