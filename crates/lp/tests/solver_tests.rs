//! Integration tests for the revised simplex solver: textbook problems,
//! duality identities, degenerate cases, and all termination statuses.

use pretium_lp::validate::assert_optimal;
use pretium_lp::{Cmp, LinExpr, Model, Sense, SolveError};

const TOL: f64 = 1e-6;

fn assert_close(a: f64, b: f64) {
    assert!((a - b).abs() < 1e-6 * (1.0 + b.abs()), "{a} != {b}");
}

#[test]
fn textbook_max_two_vars() {
    // max 5x + 4y s.t. 6x + 4y <= 24, x + 2y <= 6. Optimum (3, 1.5), obj 21.
    let mut m = Model::new(Sense::Maximize);
    let x = m.add_nonneg("x", 5.0);
    let y = m.add_nonneg("y", 4.0);
    m.add_row("r1", 6.0 * x + 4.0 * y, Cmp::Le, 24.0);
    m.add_row("r2", 1.0 * x + 2.0 * y, Cmp::Le, 6.0);
    let sol = m.solve().unwrap();
    assert_close(sol.objective(), 21.0);
    assert_close(sol.value(x), 3.0);
    assert_close(sol.value(y), 1.5);
    assert_optimal(&m, &sol, TOL);
}

#[test]
fn textbook_min_with_ge_rows() {
    // min 0.12x + 0.15y s.t. 60x + 60y >= 300, 12x + 6y >= 36, 10x + 30y >= 90.
    // Known optimum: x = 3, y = 2, obj = 0.66.
    let mut m = Model::new(Sense::Minimize);
    let x = m.add_nonneg("x", 0.12);
    let y = m.add_nonneg("y", 0.15);
    m.add_row("a", 60.0 * x + 60.0 * y, Cmp::Ge, 300.0);
    m.add_row("b", 12.0 * x + 6.0 * y, Cmp::Ge, 36.0);
    m.add_row("c", 10.0 * x + 30.0 * y, Cmp::Ge, 90.0);
    let sol = m.solve().unwrap();
    assert_close(sol.objective(), 0.66);
    assert_close(sol.value(x), 3.0);
    assert_close(sol.value(y), 2.0);
    assert_optimal(&m, &sol, TOL);
}

#[test]
fn equality_constraints() {
    // max x + 2y + 3z s.t. x + y + z = 10, x - y = 2, z <= 4.
    // z = 4, then x + y = 6 with x - y = 2 -> x = 4, y = 2. obj = 4 + 4 + 12 = 20.
    let mut m = Model::new(Sense::Maximize);
    let x = m.add_nonneg("x", 1.0);
    let y = m.add_nonneg("y", 2.0);
    let z = m.add_nonneg("z", 3.0);
    m.add_row("sum", x + y + z, Cmp::Eq, 10.0);
    m.add_row("diff", LinExpr::from(x) - y, Cmp::Eq, 2.0);
    m.add_row("cap", LinExpr::from(z), Cmp::Le, 4.0);
    let sol = m.solve().unwrap();
    assert_close(sol.objective(), 20.0);
    assert_close(sol.value(x), 4.0);
    assert_close(sol.value(y), 2.0);
    assert_close(sol.value(z), 4.0);
    assert_optimal(&m, &sol, TOL);
}

#[test]
fn free_variables() {
    // min |style|: min x + y s.t. x + y >= 5 with x free, y in [0, 2].
    // Free x takes everything: unboundedly negative? No: minimize x + y with
    // x + y >= 5 -> optimum on the boundary x + y = 5, obj 5.
    let mut m = Model::new(Sense::Minimize);
    let x = m.add_free("x", 1.0);
    let y = m.add_var("y", 0.0, 2.0, 1.0);
    m.add_row("r", x + y, Cmp::Ge, 5.0);
    let sol = m.solve().unwrap();
    assert_close(sol.objective(), 5.0);
    assert_optimal(&m, &sol, TOL);
}

#[test]
fn free_variable_negative_optimum() {
    // max -x s.t. x >= -7, x free: optimum x = -7, obj 7.
    let mut m = Model::new(Sense::Maximize);
    let x = m.add_free("x", -1.0);
    m.add_row("lb", LinExpr::from(x), Cmp::Ge, -7.0);
    let sol = m.solve().unwrap();
    assert_close(sol.objective(), 7.0);
    assert_close(sol.value(x), -7.0);
}

#[test]
fn upper_bounded_variables_bound_flips() {
    // max Σ x_i with x_i <= i and one aggregate row that is loose enough
    // that every variable just flips to its upper bound.
    let mut m = Model::new(Sense::Maximize);
    let xs: Vec<_> = (1..=6).map(|i| m.add_var(&format!("x{i}"), 0.0, i as f64, 1.0)).collect();
    let sum = LinExpr::from_terms(xs.iter().map(|&v| (1.0, v)));
    m.add_row("agg", sum, Cmp::Le, 100.0);
    let sol = m.solve().unwrap();
    assert_close(sol.objective(), 21.0);
    for (i, &x) in xs.iter().enumerate() {
        assert_close(sol.value(x), (i + 1) as f64);
    }
    assert_optimal(&m, &sol, TOL);
}

#[test]
fn infeasible_detected() {
    let mut m = Model::new(Sense::Maximize);
    let x = m.add_var("x", 0.0, 10.0, 1.0);
    m.add_row("lo", LinExpr::from(x), Cmp::Ge, 5.0);
    m.add_row("hi", LinExpr::from(x), Cmp::Le, 3.0);
    match m.solve() {
        Err(SolveError::Infeasible { residual }) => assert!(residual > 1.0),
        other => panic!("expected infeasible, got {other:?}"),
    }
}

#[test]
fn infeasible_equality_system() {
    let mut m = Model::new(Sense::Minimize);
    let x = m.add_nonneg("x", 1.0);
    let y = m.add_nonneg("y", 1.0);
    m.add_row("a", x + y, Cmp::Eq, 1.0);
    m.add_row("b", x + y, Cmp::Eq, 3.0);
    assert!(matches!(m.solve(), Err(SolveError::Infeasible { .. })));
}

#[test]
fn unbounded_detected() {
    let mut m = Model::new(Sense::Maximize);
    let x = m.add_nonneg("x", 1.0);
    let y = m.add_nonneg("y", 1.0);
    m.add_row("r", LinExpr::from(x) - y, Cmp::Le, 1.0);
    assert!(matches!(m.solve(), Err(SolveError::Unbounded { .. })));
}

#[test]
fn unbounded_free_variable() {
    let mut m = Model::new(Sense::Minimize);
    let x = m.add_free("x", 1.0);
    m.add_row("r", LinExpr::from(x), Cmp::Le, 10.0);
    assert!(matches!(m.solve(), Err(SolveError::Unbounded { .. })));
}

#[test]
fn degenerate_problem_terminates() {
    // Classic degenerate LP (multiple constraints meet at the optimum).
    let mut m = Model::new(Sense::Maximize);
    let x = m.add_nonneg("x", 2.0);
    let y = m.add_nonneg("y", 3.0);
    m.add_row("a", 1.0 * x + 1.0 * y, Cmp::Le, 4.0);
    m.add_row("b", 1.0 * x + 1.0 * y, Cmp::Le, 4.0);
    m.add_row("c", 2.0 * x + 2.0 * y, Cmp::Le, 8.0);
    m.add_row("d", 1.0 * x + 2.0 * y, Cmp::Le, 6.0);
    let sol = m.solve().unwrap();
    // y = 2, x = 2 -> 4 + 6 = 10
    assert_close(sol.objective(), 10.0);
    assert_optimal(&m, &sol, TOL);
}

#[test]
fn beale_cycling_example_terminates() {
    // Beale's classic example that cycles under naive Dantzig pricing.
    // min -0.75x1 + 150x2 - 0.02x3 + 6x4
    // s.t. 0.25x1 - 60x2 - 0.04x3 + 9x4 <= 0
    //      0.5x1  - 90x2 - 0.02x3 + 3x4 <= 0
    //      x3 <= 1;   x >= 0.  Optimum -0.05.
    let mut m = Model::new(Sense::Minimize);
    let x1 = m.add_nonneg("x1", -0.75);
    let x2 = m.add_nonneg("x2", 150.0);
    let x3 = m.add_nonneg("x3", -0.02);
    let x4 = m.add_nonneg("x4", 6.0);
    m.add_row("r1", 0.25 * x1 + (-60.0) * x2 + (-0.04) * x3 + 9.0 * x4, Cmp::Le, 0.0);
    m.add_row("r2", 0.5 * x1 + (-90.0) * x2 + (-0.02) * x3 + 3.0 * x4, Cmp::Le, 0.0);
    m.add_row("r3", LinExpr::from(x3), Cmp::Le, 1.0);
    let sol = m.solve().unwrap();
    assert_close(sol.objective(), -0.05);
    assert_optimal(&m, &sol, TOL);
}

#[test]
fn duals_match_known_shadow_prices() {
    // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 (classic Dantzig).
    // Optimum (2, 6) obj 36; duals: 0, 1.5, 1.
    let mut m = Model::new(Sense::Maximize);
    let x = m.add_nonneg("x", 3.0);
    let y = m.add_nonneg("y", 5.0);
    let r1 = m.add_row("r1", LinExpr::from(x), Cmp::Le, 4.0);
    let r2 = m.add_row("r2", 2.0 * y, Cmp::Le, 12.0);
    let r3 = m.add_row("r3", 3.0 * x + 2.0 * y, Cmp::Le, 18.0);
    let sol = m.solve().unwrap();
    assert_close(sol.objective(), 36.0);
    assert_close(sol.dual(r1), 0.0);
    assert_close(sol.dual(r2), 1.5);
    assert_close(sol.dual(r3), 1.0);
    assert_optimal(&m, &sol, TOL);
}

#[test]
fn strong_duality_on_min_problem() {
    // min 2x + 3y s.t. x + y >= 4, x + 3y >= 6; duals y1, y2 satisfy
    // strong duality: obj == 4*y1 + 6*y2.
    let mut m = Model::new(Sense::Minimize);
    let x = m.add_nonneg("x", 2.0);
    let y = m.add_nonneg("y", 3.0);
    let r1 = m.add_row("r1", x + y, Cmp::Ge, 4.0);
    let r2 = m.add_row("r2", 1.0 * x + 3.0 * y, Cmp::Ge, 6.0);
    let sol = m.solve().unwrap();
    let dual_obj = 4.0 * sol.dual(r1) + 6.0 * sol.dual(r2);
    assert_close(sol.objective(), dual_obj);
    assert_optimal(&m, &sol, TOL);
}

#[test]
fn dual_is_rhs_sensitivity() {
    // Numerically verify dual == d(obj)/d(rhs) by finite difference.
    let mut m = Model::new(Sense::Maximize);
    let x = m.add_nonneg("x", 5.0);
    let y = m.add_nonneg("y", 4.0);
    let r1 = m.add_row("r1", 6.0 * x + 4.0 * y, Cmp::Le, 24.0);
    m.add_row("r2", 1.0 * x + 2.0 * y, Cmp::Le, 6.0);
    let sol = m.solve().unwrap();
    let base = sol.objective();
    let dual = sol.dual(r1);
    let mut m2 = m.clone();
    m2.set_rhs(r1, 24.0 + 0.1);
    let bumped = m2.solve().unwrap().objective();
    assert_close((bumped - base) / 0.1, dual);
}

#[test]
fn transportation_problem() {
    // 2 sources (supply 20, 30), 3 sinks (demand 10, 25, 15).
    // costs: [[2,3,1],[5,4,8]]. Known optimum: 20*? compute: classic answer 145?
    // Solve and certify by KKT instead of hard-coding; also check balance.
    let mut m = Model::new(Sense::Minimize);
    let costs = [[2.0, 3.0, 1.0], [5.0, 4.0, 8.0]];
    let supply = [20.0, 30.0];
    let demand = [10.0, 25.0, 15.0];
    let mut x = Vec::new();
    for (i, row) in costs.iter().enumerate() {
        for (j, &c) in row.iter().enumerate() {
            x.push(m.add_nonneg(&format!("x{i}{j}"), c));
        }
    }
    for (i, &s) in supply.iter().enumerate() {
        let e = LinExpr::from_terms((0..3).map(|j| (1.0, x[i * 3 + j])));
        m.add_row(&format!("s{i}"), e, Cmp::Le, s);
    }
    for (j, &d) in demand.iter().enumerate() {
        let e = LinExpr::from_terms((0..2).map(|i| (1.0, x[i * 3 + j])));
        m.add_row(&format!("d{j}"), e, Cmp::Ge, d);
    }
    let sol = m.solve().unwrap();
    assert_optimal(&m, &sol, TOL);
    // Optimal plan: s0 -> t2 (15), s0 -> t0 (5)... verify exact value by
    // enumerating: the LP optimum is 180.
    // s0: t0=5? Recompute known optimum via greedy check: cost must be <= any
    // feasible plan, e.g. naive plan s0->d0(10)+d1(10), s1->d1(15)+d2(15):
    let naive = 2.0 * 10.0 + 3.0 * 10.0 + 4.0 * 15.0 + 8.0 * 15.0;
    assert!(sol.objective() <= naive + 1e-9);
}

#[test]
fn fixed_variables_are_respected() {
    let mut m = Model::new(Sense::Maximize);
    let x = m.add_var("x", 2.5, 2.5, 10.0);
    let y = m.add_nonneg("y", 1.0);
    m.add_row("r", x + y, Cmp::Le, 10.0);
    let sol = m.solve().unwrap();
    assert_close(sol.value(x), 2.5);
    assert_close(sol.value(y), 7.5);
    assert_close(sol.objective(), 32.5);
}

#[test]
fn negative_lower_bounds() {
    // max x + y with x in [-5, -1], y in [-2, 3], x + y >= -4.
    let mut m = Model::new(Sense::Maximize);
    let x = m.add_var("x", -5.0, -1.0, 1.0);
    let y = m.add_var("y", -2.0, 3.0, 1.0);
    m.add_row("r", x + y, Cmp::Ge, -4.0);
    let sol = m.solve().unwrap();
    assert_close(sol.objective(), 2.0); // x=-1, y=3
    assert_optimal(&m, &sol, TOL);
}

#[test]
fn objective_offset_reported() {
    let mut m = Model::new(Sense::Maximize);
    let _x = m.add_var("x", 0.0, 5.0, 2.0);
    m.add_obj_offset(100.0);
    let sol = m.solve().unwrap();
    assert_close(sol.objective(), 110.0);
}

#[test]
fn empty_model_solves() {
    let m = Model::new(Sense::Maximize);
    let sol = m.solve().unwrap();
    assert_close(sol.objective(), 0.0);
    assert_eq!(sol.iterations(), 0);
}

#[test]
fn model_with_no_rows_moves_vars_to_best_bound() {
    let mut m = Model::new(Sense::Maximize);
    let x = m.add_var("x", 0.0, 3.0, 2.0); // wants upper bound
    let y = m.add_var("y", 1.0, 4.0, -1.0); // wants lower bound
    let sol = m.solve().unwrap();
    assert_close(sol.value(x), 3.0);
    assert_close(sol.value(y), 1.0);
    assert_close(sol.objective(), 5.0);
}

#[test]
fn redundant_rows_do_not_confuse_duals() {
    let mut m = Model::new(Sense::Maximize);
    let x = m.add_nonneg("x", 1.0);
    let r1 = m.add_row("tight", LinExpr::from(x), Cmp::Le, 2.0);
    let r2 = m.add_row("loose", LinExpr::from(x), Cmp::Le, 100.0);
    let sol = m.solve().unwrap();
    assert_close(sol.objective(), 2.0);
    assert_close(sol.dual(r1), 1.0);
    assert_close(sol.dual(r2), 0.0);
}

#[test]
fn medium_random_dense_problem_certifies() {
    // A deterministic ~40x60 LP exercising refactorization and bound flips.
    let mut m = Model::new(Sense::Maximize);
    let n = 60;
    let rows = 40;
    let mut seed = 0x9E3779B97F4A7C15u64;
    let mut next = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        (seed >> 11) as f64 / (1u64 << 53) as f64
    };
    let xs: Vec<_> = (0..n)
        .map(|j| m.add_var(&format!("x{j}"), 0.0, 1.0 + 4.0 * next(), 0.1 + next()))
        .collect();
    for i in 0..rows {
        let mut e = LinExpr::new();
        for (j, &x) in xs.iter().enumerate() {
            if (i + j) % 3 == 0 {
                e.add_term(0.2 + next(), x);
            }
        }
        m.add_row(&format!("r{i}"), e, Cmp::Le, 3.0 + 5.0 * next());
    }
    let sol = m.solve().unwrap();
    assert!(sol.objective() > 0.0);
    assert_optimal(&m, &sol, 1e-5);
}
