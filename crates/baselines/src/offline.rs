//! Offline oracle baselines (§6.1): **OPT** and **NoPrices**.
//!
//! Both solve a single scheduling LP over the whole horizon with complete
//! knowledge of all requests:
//!
//! * **OPT** weighs each unit by the request's *true* value `v_i` — the
//!   welfare upper bound every figure normalizes against. (As in the
//!   paper, this is the best *tractable* offline bound: it linearizes the
//!   95th-percentile costs via the §4.2 proxy.)
//! * **NoPrices** models state-of-the-art TE without pricing: the
//!   scheduler cannot learn values, so every unit weighs 1 (pure byte
//!   maximization minus costs). Nothing stops low-value traffic from
//!   claiming expensive capacity — welfare can go negative.

use crate::outcome::Outcome;
use pretium_core::{schedule, Job, ScheduleProblem, TopkEncoding};
use pretium_lp::SolveError;
use pretium_net::{EdgeId, Network, PathSet, TimeGrid, Timestep};
use pretium_workload::Request;

/// Shared knobs for the offline solvers (kept in sync with the Pretium
/// configuration for a fair comparison).
#[derive(Debug, Clone)]
pub struct OfflineConfig {
    /// Routes per request.
    pub k_paths: usize,
    /// Fraction of capacity withheld for high-pri traffic, as in Pretium.
    pub highpri_fraction: f64,
    pub topk: TopkEncoding,
    pub cost_scale: f64,
}

impl Default for OfflineConfig {
    fn default() -> Self {
        OfflineConfig {
            k_paths: 3,
            highpri_fraction: 0.10,
            topk: TopkEncoding::CVar,
            cost_scale: 1.0,
        }
    }
}

/// Solve the offline scheduling LP with per-request weights from
/// `weight_of` and materialize the resulting usage/deliveries.
pub fn solve_offline(
    net: &Network,
    grid: &TimeGrid,
    horizon: usize,
    requests: &[Request],
    cfg: &OfflineConfig,
    scheme: &str,
    weight_of: impl Fn(&Request) -> f64,
) -> Result<Outcome, SolveError> {
    let mut paths = PathSet::new(cfg.k_paths);
    let mut jobs = Vec::with_capacity(requests.len());
    let mut job_req: Vec<usize> = Vec::with_capacity(requests.len());
    for (i, r) in requests.iter().enumerate() {
        let p = paths.paths(net, r.src, r.dst).to_vec();
        if p.is_empty() {
            continue;
        }
        jobs.push(Job::new(
            i,
            p,
            r.start,
            r.deadline.min(horizon - 1),
            weight_of(r),
            0.0,
            r.demand,
        ));
        job_req.push(i);
    }
    let frac = 1.0 - cfg.highpri_fraction;
    let capacity = move |e: EdgeId, _t: Timestep| net.edge(e).capacity * frac;
    let zero = |_: EdgeId, _: Timestep| 0.0;
    let problem = ScheduleProblem {
        net,
        grid,
        from: 0,
        to: horizon,
        jobs: &jobs,
        capacity: &capacity,
        realized: &zero,
        topk: cfg.topk,
        cost_scale: cfg.cost_scale,
    };
    let sol = schedule::solve(&problem)?;
    let mut out = Outcome::new(scheme, requests.len(), net.num_edges(), horizon);
    for (j, &ri) in job_req.iter().enumerate() {
        out.delivered[ri] = sol.delivered[j];
        out.admitted[ri] = sol.delivered[j] > 1e-9;
        for &(pi, t, units) in &sol.flows[j] {
            for &e in jobs[j].paths[pi].edges() {
                out.usage.record(e, t, units);
            }
        }
    }
    Ok(out)
}

/// The OPT oracle: offline welfare maximization with true values.
pub fn opt(
    net: &Network,
    grid: &TimeGrid,
    horizon: usize,
    requests: &[Request],
    cfg: &OfflineConfig,
) -> Result<Outcome, SolveError> {
    solve_offline(net, grid, horizon, requests, cfg, "OPT", |r| r.value)
}

/// The NoPrices baseline: offline byte maximization minus costs, blind to
/// values (every request weighs 1 per unit; an infinitesimal per-request
/// jitter breaks the enormous tie degeneracy that would otherwise stall
/// the simplex without changing which byte-max optima are reachable).
pub fn no_prices(
    net: &Network,
    grid: &TimeGrid,
    horizon: usize,
    requests: &[Request],
    cfg: &OfflineConfig,
) -> Result<Outcome, SolveError> {
    solve_offline(net, grid, horizon, requests, cfg, "NoPrices", |r| {
        1.0 + (r.id.index() % 97) as f64 * 1e-6
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pretium_net::{LinkCost, Region};
    use pretium_workload::{RequestId, RequestKind};

    fn req(id: u64, value: f64, demand: f64, start: usize, deadline: usize) -> Request {
        Request {
            id: RequestId(id),
            src: pretium_net::NodeId(0),
            dst: pretium_net::NodeId(1),
            demand,
            value,
            arrival: start,
            start,
            deadline,
            kind: RequestKind::Byte,
        }
    }

    fn one_edge(cost: LinkCost) -> Network {
        let mut net = Network::new();
        let a = net.add_node("A", Region::NorthAmerica);
        let b = net.add_node("B", Region::Europe);
        net.add_edge(a, b, 10.0, cost);
        net
    }

    #[test]
    fn opt_prefers_high_value_under_contention() {
        let net = one_edge(LinkCost::owned());
        let grid = TimeGrid::new(2, 30);
        let requests = vec![
            req(0, 5.0, 20.0, 0, 1), // high value
            req(1, 1.0, 20.0, 0, 1), // low value
        ];
        let cfg = OfflineConfig { highpri_fraction: 0.0, ..Default::default() };
        let out = opt(&net, &grid, 2, &requests, &cfg).unwrap();
        assert!((out.delivered[0] - 20.0).abs() < 1e-6, "{:?}", out.delivered);
        assert!(out.delivered[1] < 1e-6);
        let w = out.welfare(&requests, &net, &grid, 1.0);
        assert!((w - 100.0).abs() < 1e-6);
    }

    #[test]
    fn noprices_is_value_blind() {
        let net = one_edge(LinkCost::owned());
        let grid = TimeGrid::new(2, 30);
        let requests = vec![req(0, 5.0, 20.0, 0, 1), req(1, 1.0, 20.0, 0, 1)];
        let cfg = OfflineConfig { highpri_fraction: 0.0, ..Default::default() };
        let out = no_prices(&net, &grid, 2, &requests, &cfg).unwrap();
        // Both weigh the same; only the total matters (20 units capacity).
        let total: f64 = out.delivered.iter().sum();
        assert!((total - 20.0).abs() < 1e-6);
    }

    #[test]
    fn noprices_welfare_can_go_negative_on_costly_links() {
        // Low-value traffic on an expensive percentile link: NoPrices
        // still routes whatever "fits profitably at weight 1", which the
        // true values cannot justify.
        let net = one_edge(LinkCost::percentile(0.9));
        let grid = TimeGrid::new(2, 30);
        let requests = vec![req(0, 0.05, 20.0, 0, 1)];
        let cfg = OfflineConfig { highpri_fraction: 0.0, ..Default::default() };
        let out = no_prices(&net, &grid, 2, &requests, &cfg).unwrap();
        assert!(out.delivered[0] > 1.0, "weight-1 scheduler should route this");
        assert!(
            out.welfare(&requests, &net, &grid, 1.0) < 0.0,
            "welfare should be negative: {}",
            out.welfare(&requests, &net, &grid, 1.0)
        );
        // OPT would simply decline.
        let o = opt(&net, &grid, 2, &requests, &cfg).unwrap();
        assert!(o.delivered[0] < 1e-6);
    }

    #[test]
    fn highpri_fraction_caps_offline_capacity() {
        let net = one_edge(LinkCost::owned());
        let grid = TimeGrid::new(2, 30);
        let requests = vec![req(0, 5.0, 100.0, 0, 1)];
        let cfg = OfflineConfig { highpri_fraction: 0.25, ..Default::default() };
        let out = opt(&net, &grid, 2, &requests, &cfg).unwrap();
        // 2 steps × 10 × 0.75 = 15.
        assert!((out.delivered[0] - 15.0).abs() < 1e-6, "{:?}", out.delivered);
    }
}
