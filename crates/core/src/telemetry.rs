//! Per-module telemetry: counters and wall-clock timings for the RA, SAM,
//! PC, execution, and audit hooks of a running [`crate::Pretium`] instance.
//!
//! The paper's Table 4 reports per-module runtimes on the production
//! deployment; this is the in-process equivalent, cheap enough to stay on
//! in release builds (one `Instant::now()` pair per module call). The
//! counters double as the data source for the structured telemetry section
//! the simulator's reports print.

use std::time::Duration;

/// Call count and wall-clock accumulator for one module entry point.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ModuleStats {
    /// Number of calls.
    pub calls: u64,
    /// Total wall-clock time across all calls, in nanoseconds.
    pub total_nanos: u128,
    /// Slowest single call, in nanoseconds.
    pub max_nanos: u128,
}

impl ModuleStats {
    /// Record one call that took `elapsed`.
    pub fn record(&mut self, elapsed: Duration) {
        self.calls += 1;
        let nanos = elapsed.as_nanos();
        self.total_nanos += nanos;
        self.max_nanos = self.max_nanos.max(nanos);
    }

    /// Total wall-clock time across all calls.
    pub fn total(&self) -> Duration {
        duration_from_nanos(self.total_nanos)
    }

    /// Mean time per call (zero when never called).
    pub fn mean(&self) -> Duration {
        if self.calls == 0 {
            Duration::ZERO
        } else {
            duration_from_nanos(self.total_nanos / self.calls as u128)
        }
    }

    /// Slowest single call.
    pub fn max(&self) -> Duration {
        duration_from_nanos(self.max_nanos)
    }

    /// Fold another accumulator into this one (e.g. across runs).
    pub fn merge(&mut self, other: &ModuleStats) {
        self.calls += other.calls;
        self.total_nanos += other.total_nanos;
        self.max_nanos = self.max_nanos.max(other.max_nanos);
    }
}

fn duration_from_nanos(nanos: u128) -> Duration {
    Duration::from_nanos(nanos.min(u64::MAX as u128) as u64)
}

/// Counters of one parallel-engine run: how many worker threads ran, the
/// per-cell wall-clock distribution, steal traffic between workers, and
/// the end-to-end wall time — enough to compute pool occupancy (what
/// fraction of `workers × wall` was spent inside cells).
///
/// Lives next to [`Telemetry`] because it is the pool-level sibling of the
/// per-module stats: the simulator's parallel sweep engine fills one of
/// these per run and `pretium-sim::report` renders it with the same table
/// machinery.
#[derive(Debug, Clone, Default)]
pub struct PoolTelemetry {
    /// Worker threads the pool ran with (1 = serial in-line execution).
    pub workers: usize,
    /// Per-cell wall-clock accumulator (`calls` = cells executed).
    pub cells: ModuleStats,
    /// Cells taken from another worker's deque rather than the owner's.
    pub steals: u64,
    /// Label of the slowest cell (the occupancy tail).
    pub slowest_label: String,
    /// End-to-end wall-clock of the pool run, in nanoseconds.
    pub wall_nanos: u128,
}

impl PoolTelemetry {
    /// Fraction of total worker capacity (`workers × wall`) spent executing
    /// cells; 1.0 means no worker ever idled.
    pub fn occupancy(&self) -> f64 {
        let capacity = self.wall_nanos.saturating_mul(self.workers.max(1) as u128);
        if capacity == 0 {
            return 0.0;
        }
        self.cells.total_nanos as f64 / capacity as f64
    }

    /// End-to-end wall-clock of the pool run.
    pub fn wall(&self) -> Duration {
        duration_from_nanos(self.wall_nanos)
    }

    /// Fold a second pool run into this one (workers is kept at the max;
    /// wall clocks add, as runs are sequential).
    pub fn merge(&mut self, other: &PoolTelemetry) {
        self.workers = self.workers.max(other.workers);
        self.steals += other.steals;
        self.wall_nanos += other.wall_nanos;
        if other.cells.max_nanos > self.cells.max_nanos {
            self.slowest_label = other.slowest_label.clone();
        }
        self.cells.merge(&other.cells);
    }

    /// The pool counters as `(field, value)` rows for table rendering.
    pub fn rows(&self) -> Vec<(String, String)> {
        vec![
            ("workers".into(), self.workers.to_string()),
            (
                "cells (count / mean / max)".into(),
                format!(
                    "{} / {:.1?} / {:.1?}",
                    self.cells.calls,
                    self.cells.mean(),
                    self.cells.max()
                ),
            ),
            ("slowest cell".into(), self.slowest_label.clone()),
            ("steals".into(), self.steals.to_string()),
            ("wall".into(), format!("{:.1?}", self.wall())),
            ("occupancy".into(), format!("{:.1}%", 100.0 * self.occupancy())),
        ]
    }
}

/// All per-module counters of one Pretium instance.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    /// RA step 1: menu generation — snapshot quotes (folded in from each
    /// retired [`crate::AdmissionSnapshot`]'s atomic counters) plus the
    /// sequencer's live re-quotes.
    pub quote: ModuleStats,
    /// RA step 2: every purchase decision, rejections included (the
    /// admitted/rejected split lives in the counters below).
    pub accept: ModuleStats,
    /// SAM re-optimizations that actually solved.
    pub sam: ModuleStats,
    /// PC price recomputations that actually solved.
    pub pc: ModuleStats,
    /// Executed timesteps.
    pub execute: ModuleStats,
    /// Audit sweeps (see [`crate::audit::Auditor`]).
    pub audit: ModuleStats,
    /// Quotes that came back empty (no route or no sellable capacity).
    pub quotes_empty: u64,
    /// Batch tickets whose snapshot menu went stale (its slot footprint
    /// overlapped an earlier accept's reservations) and were re-quoted
    /// against live state by the sequencer.
    pub quotes_requoted: u64,
    /// Admission snapshots published (one per epoch with quote traffic).
    pub snapshots: u64,
    /// Purchases booked as contracts.
    pub accepts_admitted: u64,
    /// Purchases rejected (walked away, empty menu, or no route).
    pub accepts_rejected: u64,
    /// SAM calls skipped (disabled, past horizon, or no active contracts).
    pub sam_skipped: u64,
    /// SAM solves whose plan left a guarantee shortfall (§4.4 degradation).
    pub sam_shortfalls: u64,
    /// Units moved across all executed steps.
    pub units_executed: f64,
    /// Invariant violations the auditor recorded (0 when auditing is off).
    pub audit_violations: u64,
    /// SAM runs where the §4.4 fallback chain engaged (some guarantee had
    /// to be shed or relaxed because rerouting could not cover it).
    pub sam_degradations: u64,
    /// Guarantees shed wholly (lowest-λ-first stage of the fallback).
    pub guarantees_shed: u64,
    /// Guarantees relaxed partially (second stage of the fallback).
    pub guarantees_relaxed: u64,
    /// Planned units SAM moved off their previously planned (path, step)
    /// slot while a fault was active — the §4.4 rerouting volume.
    pub rerouted_units: f64,
    /// SAM runs executed while some link was degraded; with one fault this
    /// is the recovery time in timesteps.
    pub degraded_steps: u64,
    /// PC runs skipped because the look-back window was contaminated by a
    /// fault (prices frozen rather than learned from a broken topology).
    pub pc_freezes: u64,
    /// SAM steps answered by a certified localized (frozen-block) re-solve
    /// instead of the full LP (DESIGN.md §16).
    pub sam_localized: u64,
    /// Localized SAM attempts that fell back to the full LP (certificate
    /// failure, infeasible submodel, or everything affected).
    pub sam_localized_fallbacks: u64,
    /// Simplex iterations across every LP this instance solved (SAM
    /// re-optimizations, degradation re-solves, PC pricing LPs).
    pub lp_iterations: u64,
    /// Pricing work behind those iterations: columns examined by entering
    /// selection plus columns touched by incremental pivot-row updates.
    pub lp_pricing_scans: u64,
    /// Flow columns the SAM restricted master generated lazily
    /// ([`crate::config::ColumnGen::On`]; 0 under full materialization).
    pub lp_columns_generated: u64,
    /// Pricing rounds that appended at least one generated column.
    pub lp_colgen_rounds: u64,
    /// Sparse-LU basis refactorizations across those LPs.
    pub lp_refactors: u64,
    /// Forrest–Tomlin basis-exchange updates applied in place.
    pub lp_ft_updates: u64,
    /// FT updates rejected on a too-small pivot (each forces a refactor).
    pub lp_pivot_rejections: u64,
    /// Cumulative nonzeros of bases handed to refactorization.
    pub lp_basis_nnz: u64,
    /// Cumulative nonzeros of the L/U factors produced;
    /// `lp_factor_nnz / lp_basis_nnz` is the run's fill-in ratio.
    pub lp_factor_nnz: u64,
    /// Sections executed by the deterministic parallel-pricing layer
    /// (simplex pricing sweeps plus the colgen oracle's job-block
    /// fan-out); 0 when `pricing_jobs <= 1`. Deterministic per
    /// configuration.
    pub lp_pricing_par_sections: u64,
    /// Parallel-pricing sections claimed by a worker other than the one
    /// they were seeded on — a load-balance diagnostic; timing-dependent.
    pub lp_pricing_par_steals: u64,
}

impl Telemetry {
    /// The telemetry as `(field, value)` rows for table rendering, timing
    /// rows first. Formatting-only concern; the raw fields stay public for
    /// programmatic use.
    pub fn rows(&self) -> Vec<(String, String)> {
        let timing = |name: &str, s: &ModuleStats| {
            (
                format!("{name} (calls / mean / max)"),
                format!("{} / {:.1?} / {:.1?}", s.calls, s.mean(), s.max()),
            )
        };
        vec![
            timing("quote", &self.quote),
            timing("accept", &self.accept),
            timing("run_sam", &self.sam),
            timing("run_pc", &self.pc),
            timing("execute_step", &self.execute),
            timing("audit", &self.audit),
            ("quotes empty".into(), self.quotes_empty.to_string()),
            ("quotes requoted".into(), self.quotes_requoted.to_string()),
            ("snapshots published".into(), self.snapshots.to_string()),
            ("accepts admitted".into(), self.accepts_admitted.to_string()),
            ("accepts rejected".into(), self.accepts_rejected.to_string()),
            ("sam skipped".into(), self.sam_skipped.to_string()),
            ("sam shortfalls".into(), self.sam_shortfalls.to_string()),
            ("units executed".into(), format!("{:.1}", self.units_executed)),
            ("audit violations".into(), self.audit_violations.to_string()),
            ("sam degradations".into(), self.sam_degradations.to_string()),
            ("guarantees shed".into(), self.guarantees_shed.to_string()),
            ("guarantees relaxed".into(), self.guarantees_relaxed.to_string()),
            ("rerouted units".into(), format!("{:.1}", self.rerouted_units)),
            ("degraded steps".into(), self.degraded_steps.to_string()),
            ("pc freezes".into(), self.pc_freezes.to_string()),
            ("sam localized".into(), self.sam_localized.to_string()),
            ("sam localized fallbacks".into(), self.sam_localized_fallbacks.to_string()),
            ("lp iterations".into(), self.lp_iterations.to_string()),
            ("lp pricing scans".into(), self.lp_pricing_scans.to_string()),
            ("lp columns generated".into(), self.lp_columns_generated.to_string()),
            ("lp colgen rounds".into(), self.lp_colgen_rounds.to_string()),
            ("lp refactors".into(), self.lp_refactors.to_string()),
            ("lp ft updates".into(), self.lp_ft_updates.to_string()),
            ("lp pivot rejections".into(), self.lp_pivot_rejections.to_string()),
            ("lp pricing par sections".into(), self.lp_pricing_par_sections.to_string()),
            ("lp pricing par steals".into(), self.lp_pricing_par_steals.to_string()),
            (
                "lp fill-in ratio".into(),
                format!("{:.3}", self.lp_factor_nnz as f64 / self.lp_basis_nnz.max(1) as f64),
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_accumulate() {
        let mut s = ModuleStats::default();
        s.record(Duration::from_micros(10));
        s.record(Duration::from_micros(30));
        assert_eq!(s.calls, 2);
        assert_eq!(s.total(), Duration::from_micros(40));
        assert_eq!(s.mean(), Duration::from_micros(20));
        assert_eq!(s.max(), Duration::from_micros(30));
    }

    #[test]
    fn empty_stats_have_zero_mean() {
        let s = ModuleStats::default();
        assert_eq!(s.mean(), Duration::ZERO);
        assert_eq!(s.total(), Duration::ZERO);
    }

    #[test]
    fn merge_folds_counters() {
        let mut a = ModuleStats::default();
        a.record(Duration::from_micros(5));
        let mut b = ModuleStats::default();
        b.record(Duration::from_micros(7));
        a.merge(&b);
        assert_eq!(a.calls, 2);
        assert_eq!(a.max(), Duration::from_micros(7));
    }

    #[test]
    fn pool_occupancy_is_cell_time_over_capacity() {
        let mut p = PoolTelemetry { workers: 4, wall_nanos: 1_000, ..Default::default() };
        p.cells.record(Duration::from_nanos(1_000));
        p.cells.record(Duration::from_nanos(1_000));
        assert!((p.occupancy() - 0.5).abs() < 1e-9, "{}", p.occupancy());
        assert_eq!(p.rows().len(), 6);
    }

    #[test]
    fn pool_merge_tracks_slowest_cell() {
        let mut a = PoolTelemetry { workers: 2, slowest_label: "a".into(), ..Default::default() };
        a.cells.record(Duration::from_micros(5));
        let mut b = PoolTelemetry { workers: 4, slowest_label: "b".into(), ..Default::default() };
        b.cells.record(Duration::from_micros(9));
        a.merge(&b);
        assert_eq!(a.workers, 4);
        assert_eq!(a.slowest_label, "b");
        assert_eq!(a.cells.calls, 2);
    }

    #[test]
    fn rows_cover_every_counter() {
        let t = Telemetry::default();
        let rows = t.rows();
        assert_eq!(rows.len(), 33);
        assert!(rows.iter().any(|(k, _)| k == "sam localized"));
        assert!(rows.iter().any(|(k, _)| k == "lp refactors"));
        assert!(rows.iter().any(|(k, _)| k == "lp ft updates"));
        assert!(rows.iter().any(|(k, _)| k == "lp pivot rejections"));
        assert!(rows.iter().any(|(k, _)| k == "lp fill-in ratio"));
        assert!(rows.iter().any(|(k, _)| k == "lp columns generated"));
        assert!(rows.iter().any(|(k, _)| k == "lp colgen rounds"));
        assert!(rows.iter().any(|(k, _)| k == "sam localized fallbacks"));
        assert!(rows.iter().any(|(k, _)| k.starts_with("run_sam")));
        assert!(rows.iter().any(|(k, _)| k == "quotes requoted"));
        assert!(rows.iter().any(|(k, _)| k == "snapshots published"));
        assert!(rows.iter().any(|(k, _)| k == "audit violations"));
        assert!(rows.iter().any(|(k, _)| k == "guarantees shed"));
        assert!(rows.iter().any(|(k, _)| k == "rerouted units"));
        assert!(rows.iter().any(|(k, _)| k == "pc freezes"));
        assert!(rows.iter().any(|(k, _)| k == "lp iterations"));
        assert!(rows.iter().any(|(k, _)| k == "lp pricing scans"));
        assert!(rows.iter().any(|(k, _)| k == "lp pricing par sections"));
        assert!(rows.iter().any(|(k, _)| k == "lp pricing par steals"));
    }
}
