//! # pretium-baselines — the evaluation's comparison schemes (§6.1)
//!
//! * [`offline`] — **OPT** (offline welfare oracle; the denominator of all
//!   relative-welfare figures) and **NoPrices** (value-blind offline TE).
//! * [`region`] — **RegionOracle**: two posted prices (intra / inter
//!   region) chosen in hindsight; mirrors Table 2's cloud price sheets.
//! * [`peak`] — **PeakOracle**: peak / off-peak posted prices.
//! * [`vcg`] — **VCGLike**: per-timestep spot market with VCG payments.
//! * [`outcome`] — the shared result type all schemes (and the Pretium
//!   runner in `pretium-sim`) report, so welfare / profit / completion /
//!   utilization are computed identically everywhere.
//!
//! The Pretium ablations of Figure 11 (NoMenu, NoSAM) are configurations
//! of the Pretium runner itself and live in `pretium-sim`.

pub mod offline;
pub mod outcome;
pub mod peak;
pub mod priced_offline;
pub mod region;
pub mod vcg;

pub use offline::{no_prices, opt, solve_offline, OfflineConfig};
pub use outcome::Outcome;
pub use peak::{peak_oracle, peak_steps_from_requests, peak_steps_from_trace, PeakOracleResult};
pub use priced_offline::{price_candidates, run_posted_price, PricedOfflineConfig};
pub use region::{is_inter_region, region_oracle, RegionOracleResult};
pub use vcg::vcg_like;
