//! Overhead of the invariant auditor: the same cold-start Pretium replay
//! with auditing off (release default) vs. on (`PretiumConfig::audit`).
//! The delta between the two rows is the full cost of sweeping every
//! accept/SAM/PC/execute checkpoint, quoted in EXPERIMENTS.md.

use pretium_bench::{black_box, Harness};
use pretium_core::PretiumConfig;
use pretium_sim::runner::{run_pretium_cold, Variant};
use pretium_sim::scenario::ScenarioConfig;

fn main() {
    let scenario = ScenarioConfig::tiny(rand::DEFAULT_SEED).build();
    let mut h = Harness::new().sample_size(10);

    h.bench_function("replay_audit_off", |b| {
        b.iter(|| {
            let cfg = PretiumConfig::default();
            let run = run_pretium_cold(&scenario, cfg, Variant::Full, None, None).unwrap();
            black_box(run.outcome.delivered.iter().sum::<f64>())
        });
    });

    h.bench_function("replay_audit_on", |b| {
        b.iter(|| {
            let cfg = PretiumConfig { audit: true, ..Default::default() };
            let run = run_pretium_cold(&scenario, cfg, Variant::Full, None, None).unwrap();
            assert!(run.audit().expect("audit enabled").is_clean());
            black_box(run.outcome.delivered.iter().sum::<f64>())
        });
    });

    let off = h.get("replay_audit_off").unwrap().median();
    let on = h.get("replay_audit_on").unwrap().median();
    let overhead = on.as_secs_f64() / off.as_secs_f64() - 1.0;
    println!("audit overhead: {:.1}% (on {on:?} / off {off:?})", overhead * 100.0);
    println!("BENCH\taudit_overhead_frac\t{overhead:.4}");
}
