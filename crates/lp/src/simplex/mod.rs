//! Revised simplex method with bounded variables.
//!
//! The solver works on a *computational standard form*
//!
//! ```text
//! minimize    cᵀx
//! subject to  A·x = b          (one slack column per original row)
//!             l ≤ x ≤ u
//! ```
//!
//! built from a [`crate::Model`]. Feasibility is established with a crash
//! basis (slacks where the initial residual fits the slack bounds,
//! artificial columns elsewhere) followed by a phase-1 minimization of the
//! artificial sum; phase 2 then optimizes the true objective. Dual values
//! are recovered from the final basis via BTRAN.

pub mod basis;
mod solver;

use crate::model::{Cmp, Model, Sense};
use crate::solution::{Solution, SolveError, Status};
use basis::SparseCol;

/// Tunable solver parameters.
#[derive(Debug, Clone)]
pub struct SimplexOptions {
    /// Primal feasibility tolerance (bound violations up to this are
    /// accepted).
    pub feas_tol: f64,
    /// Reduced-cost (dual feasibility) tolerance.
    pub opt_tol: f64,
    /// Smallest acceptable pivot magnitude.
    pub pivot_tol: f64,
    /// Hard iteration cap; `0` selects an automatic limit scaled with the
    /// problem size.
    pub max_iterations: u64,
    /// Refactorize the basis after this many eta updates.
    pub refactor_every: usize,
    /// Consecutive degenerate pivots before switching to Bland's rule.
    pub bland_trigger: u32,
}

impl Default for SimplexOptions {
    fn default() -> Self {
        SimplexOptions {
            feas_tol: 1e-7,
            opt_tol: 1e-8,
            pivot_tol: 1e-9,
            max_iterations: 0,
            refactor_every: 96,
            bland_trigger: 1000,
        }
    }
}

/// Standard-form problem fed to the iteration core.
pub(crate) struct Problem {
    /// Number of rows (= equality constraints after slack insertion).
    pub m: usize,
    /// Total number of columns: structurals, slacks, artificials.
    pub n: usize,
    pub nstruct: usize,
    /// Index of the first slack column.
    pub slack_start: usize,
    /// Index of the first artificial column.
    pub art_start: usize,
    /// Sparse columns of `A`.
    pub cols: Vec<SparseCol>,
    pub lb: Vec<f64>,
    pub ub: Vec<f64>,
    /// Phase-2 costs, already converted to minimization sense.
    pub cost: Vec<f64>,
    pub b: Vec<f64>,
}

impl Problem {
    /// Build the standard form from a model.
    pub fn from_model(model: &Model) -> Self {
        let m = model.rows.len();
        let nstruct = model.vars.len();
        let slack_start = nstruct;
        let art_start = nstruct + m;
        let n = nstruct + 2 * m;

        let mut cols: Vec<SparseCol> = vec![Vec::new(); n];
        for (i, row) in model.rows.iter().enumerate() {
            for &(j, coef) in &row.terms {
                cols[j as usize].push((i as u32, coef));
            }
        }
        let mut lb = Vec::with_capacity(n);
        let mut ub = Vec::with_capacity(n);
        let mut cost = vec![0.0; n];
        let sign = match model.sense {
            Sense::Minimize => 1.0,
            Sense::Maximize => -1.0,
        };
        for (j, v) in model.vars.iter().enumerate() {
            lb.push(v.lb);
            ub.push(v.ub);
            cost[j] = sign * v.obj;
        }
        let mut b = Vec::with_capacity(m);
        for (i, row) in model.rows.iter().enumerate() {
            b.push(row.rhs);
            // Slack column: row + slack = rhs.
            cols[slack_start + i].push((i as u32, 1.0));
            let (slb, sub) = match row.cmp {
                Cmp::Le => (0.0, f64::INFINITY),
                Cmp::Ge => (f64::NEG_INFINITY, 0.0),
                Cmp::Eq => (0.0, 0.0),
            };
            lb.push(slb);
            ub.push(sub);
        }
        // Artificial columns: sign fixed at crash time by the solver.
        for i in 0..m {
            cols[art_start + i].push((i as u32, 1.0));
            lb.push(0.0);
            ub.push(0.0); // opened to [0, inf) only for rows that need one
        }
        debug_assert_eq!(lb.len(), n);
        Problem { m, n, nstruct, slack_start, art_start, cols, lb, ub, cost, b }
    }
}

/// Solve `model` and map the internal result back to the model's sense and
/// row/variable handles.
///
/// A numerical failure (singular refactorization after eta-file drift on a
/// heavily degenerate basis) triggers one conservative retry: larger pivot
/// tolerance, more frequent refactorization, and Bland's rule throughout.
pub(crate) fn solve_model(model: &Model, options: &SimplexOptions) -> Result<Solution, SolveError> {
    let attempt = |options: &SimplexOptions| -> Result<(solver::Outcome, Problem), SolveError> {
        let mut problem = Problem::from_model(model);
        let out = solver::run(&mut problem, options, |i| model.rows[i].name.clone(), |j| {
            if j < model.vars.len() {
                model.vars[j].name.clone()
            } else {
                format!("slack_{}", j - model.vars.len())
            }
        })?;
        Ok((out, problem))
    };
    let (outcome, problem) = match attempt(options) {
        Ok(s) => s,
        Err(SolveError::Numerical(_)) => {
            let conservative = SimplexOptions {
                pivot_tol: options.pivot_tol.max(1e-8),
                refactor_every: 32,
                bland_trigger: 0,
                ..options.clone()
            };
            attempt(&conservative)?
        }
        Err(e) => return Err(e),
    };

    let sign = match model.sense {
        Sense::Minimize => 1.0,
        Sense::Maximize => -1.0,
    };
    let values: Vec<f64> = outcome.x[..model.vars.len()].to_vec();
    let objective: f64 = model
        .vars
        .iter()
        .enumerate()
        .map(|(j, v)| v.obj * values[j])
        .sum::<f64>()
        + model.obj_offset;
    let duals: Vec<f64> = outcome.y.iter().map(|&y| sign * y).collect();
    let reduced_costs: Vec<f64> = (0..model.vars.len())
        .map(|j| sign * outcome.reduced_cost(&problem, j))
        .collect();
    Ok(Solution {
        status: Status::Optimal,
        objective,
        values,
        duals,
        reduced_costs,
        iterations: outcome.iterations,
    })
}
