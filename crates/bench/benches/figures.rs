//! Per-figure regeneration benches: each benchmark regenerates one of the
//! paper's figures at bench scale (a reduced scenario so `cargo bench`
//! stays finite on one core). The full-scale regeneration lives in
//! `cargo run --release -p pretium-sim --bin reproduce`.

use pretium_baselines::Outcome;
use pretium_bench::{black_box, Harness};
use pretium_sim::experiments;
use pretium_sim::scenario::ScenarioConfig;

fn tiny_with_load(load: f64) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::tiny(rand::DEFAULT_SEED);
    cfg.load_factor = load;
    cfg
}

fn main() {
    let mut h = Harness::new().sample_size(10);

    h.bench_function("fig01_util_ratio_cdf", |b| {
        b.iter(|| black_box(experiments::fig1_utilization_ratio_cdf(rand::DEFAULT_SEED).len()));
    });

    h.bench_function("fig05_topk_proxy", |b| {
        b.iter(|| {
            let fits = experiments::fig5_topk_proxy(rand::DEFAULT_SEED);
            black_box(fits.iter().map(|f| f.pearson).sum::<f64>())
        });
    });

    // One scheme comparison covers the welfare (fig 6), profit (fig 8) and
    // completion (fig 9) rows for one load factor.
    h.bench_function("fig06_08_09_scheme_comparison", |b| {
        b.iter(|| {
            let cmp = experiments::compare_schemes(&tiny_with_load(2.0)).unwrap();
            let opt = cmp.welfare(&cmp.opt);
            let rows: Vec<(f64, f64, f64)> = cmp
                .schemes()
                .iter()
                .map(|(_, o): &(&str, &Outcome)| {
                    (cmp.welfare(o) / opt, cmp.profit(o), o.completion_rate(&cmp.scenario.requests))
                })
                .collect();
            black_box(rows)
        });
    });

    h.bench_function("fig07_price_utilization_and_buckets", |b| {
        b.iter(|| {
            let scenario = tiny_with_load(2.0).build();
            let run = pretium_sim::run_pretium(
                &scenario,
                pretium_core::PretiumConfig::default(),
                pretium_sim::Variant::Full,
            )
            .unwrap();
            black_box(run.outcome.payments.iter().sum::<f64>())
        });
    });

    h.bench_function("fig10_p90_utilization_cdf", |b| {
        b.iter(|| {
            let cmp = experiments::compare_schemes(&tiny_with_load(2.0)).unwrap();
            let cdfs: Vec<usize> = cmp
                .schemes()
                .iter()
                .map(|(_, o)| o.usage.p90_utilizations(&cmp.scenario.net).len())
                .collect();
            black_box(cdfs)
        });
    });

    h.bench_function("fig11_ablations", |b| {
        use pretium_sim::{run_pretium, Variant};
        b.iter(|| {
            let scenario = tiny_with_load(2.0).build();
            let mut ws = Vec::new();
            for v in [Variant::Full, Variant::NoMenu, Variant::NoSam] {
                let run =
                    run_pretium(&scenario, pretium_core::PretiumConfig::default(), v).unwrap();
                ws.push(run.outcome.welfare(
                    &scenario.requests,
                    &scenario.net,
                    &scenario.grid,
                    1.0,
                ));
            }
            black_box(ws)
        });
    });

    h.bench_function("fig12_link_cost_point", |b| {
        use pretium_baselines::{opt, OfflineConfig};
        b.iter(|| {
            let scenario = tiny_with_load(1.0).build();
            let off = OfflineConfig { cost_scale: 2.0, ..Default::default() };
            let o = opt(&scenario.net, &scenario.grid, scenario.horizon, &scenario.requests, &off)
                .unwrap();
            black_box(o.welfare(&scenario.requests, &scenario.net, &scenario.grid, 2.0))
        });
    });

    h.bench_function("fig13_value_dist_point", |b| {
        use pretium_workload::ValueDist;
        b.iter(|| {
            let mut cfg = tiny_with_load(1.0);
            cfg.requests.value_dist = ValueDist::pareto_from_mean_ratio(1.0, 2.0);
            let scenario = cfg.build();
            let run = pretium_sim::run_pretium(
                &scenario,
                pretium_core::PretiumConfig::default(),
                pretium_sim::Variant::Full,
            )
            .unwrap();
            black_box(run.outcome.welfare(&scenario.requests, &scenario.net, &scenario.grid, 1.0))
        });
    });

    h.bench_function("sec5_incentive_deviation", |b| {
        use pretium_sim::{analyze_deviations, Deviation};
        b.iter(|| {
            let scenario = tiny_with_load(1.0).build();
            let report = analyze_deviations(
                &scenario,
                &pretium_core::PretiumConfig::default(),
                &[Deviation::LaterDeadline(2)],
                2,
            )
            .unwrap();
            black_box(report.gainer_fraction())
        });
    });
}
