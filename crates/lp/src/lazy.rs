//! Violated-row (lazy constraint) generation.
//!
//! Pretium's scheduling LPs contain one capacity row per `(link, timestep)`
//! pair — `|E|·T` rows, of which only the congested few percent ever bind.
//! Instead of materializing all of them,
//! [`crate::SolverSession::solve_lazy`] solves a relaxation, asks a
//! [`RowGen`] callback for rows the tentative optimum violates, adds them,
//! and repeats until the optimum is feasible for the full row set — warm-
//! starting every round from the previous basis. The final solution (and
//! its duals, with absent rows having dual zero by construction) is optimal
//! for the full problem.

use crate::model::{Cmp, Model, RowId};
use crate::solution::Solution;
use crate::LinExpr;

/// One row requested by a generator.
#[derive(Debug, Clone)]
pub struct RowRequest {
    pub name: String,
    pub expr: LinExpr,
    pub cmp: Cmp,
    pub rhs: f64,
    /// Caller-chosen key so duals of generated rows can be identified later
    /// (e.g. the `(link, timestep)` pair of a capacity row).
    pub key: u64,
}

/// Generates rows violated by a tentative solution.
pub trait RowGen {
    /// Inspect `sol` and return rows it violates (empty when none). The
    /// callback must be *monotone*: it may not retract rows it returned
    /// before (they stay in the model).
    fn violated(&mut self, model: &Model, sol: &Solution) -> Vec<RowRequest>;
}

impl<F> RowGen for F
where
    F: FnMut(&Model, &Solution) -> Vec<RowRequest>,
{
    fn violated(&mut self, model: &Model, sol: &Solution) -> Vec<RowRequest> {
        self(model, sol)
    }
}

/// Result of a lazy solve: the final solution plus the mapping from
/// generator keys to the row ids that were materialized.
#[derive(Debug, Clone)]
pub struct LazyOutcome {
    pub solution: Solution,
    /// `(key, row)` for every row added by the generator, in insertion
    /// order. Rows never generated are implicitly non-binding (dual 0).
    pub generated: Vec<(u64, RowId)>,
    /// Number of solve rounds (≥ 1).
    pub rounds: u32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{SolveOptions, SolverSession};
    use crate::solution::SolveError;
    use crate::{Model, Sense};

    fn solve_lazy(
        model: Model,
        gen: &mut dyn RowGen,
        max_rounds: u32,
    ) -> Result<LazyOutcome, SolveError> {
        let mut session = SolverSession::new(model);
        session.solve_lazy(gen, &SolveOptions { max_rounds, ..Default::default() })
    }

    /// max x + y with hidden rows x <= 3, y <= 2, x + y <= 4 generated
    /// lazily; explicit model only bounds vars at 10.
    #[test]
    fn converges_to_full_problem_optimum() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 10.0, 1.0);
        let y = m.add_var("y", 0.0, 10.0, 1.0);
        let hidden: Vec<(LinExpr, f64, u64)> =
            vec![(LinExpr::from(x), 3.0, 0), (LinExpr::from(y), 2.0, 1), (x + y, 4.0, 2)];
        let mut gen = move |model: &Model, sol: &Solution| {
            hidden
                .iter()
                .filter(|(e, rhs, _)| e.eval(sol.values()) > rhs + 1e-7)
                .map(|(e, rhs, k)| RowRequest {
                    name: format!("h{k}"),
                    expr: e.clone(),
                    cmp: Cmp::Le,
                    rhs: *rhs,
                    key: *k,
                })
                .collect::<Vec<_>>()
                .into_iter()
                // deduplicate against rows already added
                .filter(|r| {
                    !(0..model.num_rows()).any(|i| model.row_name(RowId::from_index(i)) == r.name)
                })
                .collect()
        };
        let out = solve_lazy(m, &mut gen, 10).unwrap();
        assert!((out.solution.objective() - 4.0).abs() < 1e-7);
        assert!(out.rounds >= 2, "should need at least one generation round");
    }

    #[test]
    fn no_violations_returns_first_solution() {
        let mut m = Model::new(Sense::Maximize);
        let _x = m.add_var("x", 0.0, 1.0, 1.0);
        let mut gen = |_: &Model, _: &Solution| Vec::new();
        let out = solve_lazy(m, &mut gen, 5).unwrap();
        assert_eq!(out.rounds, 1);
        assert!((out.solution.objective() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn round_limit_enforced() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 10.0, 1.0);
        // Pathological generator: always "violated", adds ever-looser rows.
        let mut n = 0u64;
        let mut gen = move |_: &Model, _: &Solution| {
            n += 1;
            vec![RowRequest {
                name: format!("r{n}"),
                expr: LinExpr::from(x),
                cmp: Cmp::Le,
                rhs: 100.0 + n as f64,
                key: n,
            }]
        };
        let err = solve_lazy(m, &mut gen, 3).unwrap_err();
        assert!(matches!(err, SolveError::IterationLimit { .. }));
    }
}
