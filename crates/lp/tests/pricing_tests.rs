//! Cross-strategy pricing tests: Dantzig, Devex, and PartialDevex must all
//! reach the same certified optimum on schedule-shaped LPs (the per-(job,
//! path, timestep) structure SAM produces), and the Bland's-rule
//! anti-cycling escape hatch must still fire under the incremental
//! strategies.
//!
//! As with the other property suites, randomness comes from a local
//! deterministic xorshift stream (no registry access in the build
//! environment); every failing case reports its seed.

use pretium_lp::validate::check_optimal;
use pretium_lp::{
    Cmp, LinExpr, Model, Pricing, RowId, Sense, SimplexOptions, SolveOptions, SolverSession, Var,
};

/// Deterministic xorshift64* stream in `[0, 1)`.
struct Gen(u64);

impl Gen {
    fn new(seed: u64) -> Self {
        Gen(seed.wrapping_mul(0x9E3779B97F4A7C15) | 1)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.unit()
    }

    fn index(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

const STRATEGIES: [Pricing; 3] = [Pricing::Dantzig, Pricing::Devex, Pricing::PartialDevex];

fn opts_for(pricing: Pricing) -> SolveOptions {
    SolveOptions {
        simplex: Some(SimplexOptions { pricing, ..SimplexOptions::default() }),
        ..SolveOptions::default()
    }
}

/// Build a schedule-shaped LP: `jobs × paths × steps` flow variables,
/// per-(link, step) capacity rows over overlapping path supports, one
/// demand cap per job, and a guarantee floor per job softened by a
/// penalized shortfall variable — the same row/column structure SAM's
/// per-timestep re-optimizations produce.
fn schedule_lp(g: &mut Gen) -> Model {
    let jobs = 2 + g.index(5);
    let paths = 1 + g.index(3);
    let steps = 2 + g.index(5);
    let links = 2 + g.index(4);
    let mut m = Model::new(Sense::Maximize);
    // Flow variables with per-unit value minus a small path cost.
    let mut x = vec![vec![Vec::with_capacity(steps); paths]; jobs];
    let weights: Vec<f64> = (0..jobs).map(|_| g.range(0.5, 3.0)).collect();
    for (j, wj) in weights.iter().enumerate() {
        for (p, xp) in x[j].iter_mut().enumerate() {
            let cost = g.range(0.0, 0.4);
            for t in 0..steps {
                xp.push(m.add_var(&format!("x_{j}_{p}_{t}"), 0.0, f64::INFINITY, wj - cost));
            }
        }
    }
    // Each (job, path) crosses a couple of links; capacity rows couple the
    // flows that share a (link, step).
    let mut crossing = vec![vec![Vec::new(); steps]; links];
    for (j, xj) in x.iter().enumerate() {
        for (p, xp) in xj.iter().enumerate() {
            let l1 = (j + p) % links;
            let l2 = (j + p + 1 + g.index(links - 1)) % links;
            for (t, &v) in xp.iter().enumerate() {
                crossing[l1][t].push(v);
                if l2 != l1 {
                    crossing[l2][t].push(v);
                }
            }
        }
    }
    for (l, per_step) in crossing.iter().enumerate() {
        for (t, vars) in per_step.iter().enumerate() {
            if vars.is_empty() {
                continue;
            }
            let mut e = LinExpr::new();
            for &v in vars {
                e.add_term(1.0, v);
            }
            m.add_row(&format!("cap_{l}_{t}"), e, Cmp::Le, g.range(1.0, 6.0));
        }
    }
    // Demand cap and (soft) guarantee floor per job.
    for (j, xj) in x.iter().enumerate() {
        let mut total = LinExpr::new();
        for xp in xj {
            for &v in xp {
                total.add_term(1.0, v);
            }
        }
        let demand = g.range(2.0, 8.0);
        m.add_row(&format!("dem_{j}"), total.clone(), Cmp::Le, demand);
        let s = m.add_var(&format!("short_{j}"), 0.0, f64::INFINITY, -10.0 * weights[j]);
        total.add_term(1.0, s);
        m.add_row(&format!("guar_{j}"), total, Cmp::Ge, demand * g.range(0.2, 0.8));
    }
    m
}

/// All three strategies agree on the optimal objective (within tolerance)
/// and each returns a KKT-certified, bound-respecting solution.
#[test]
fn strategies_agree_on_schedule_shaped_lps() {
    for seed in 0..48 {
        let mut g = Gen::new(seed);
        let m = schedule_lp(&mut g);
        let mut objectives = Vec::new();
        for pricing in STRATEGIES {
            let mut sess = SolverSession::new(m.clone());
            let sol = sess
                .solve(&opts_for(pricing))
                .unwrap_or_else(|e| panic!("seed {seed} {pricing:?}: {e}"));
            // Certified optimum: primal feasibility (incl. bounds), dual
            // feasibility, complementary slackness.
            let violations = check_optimal(&m, &sol, 1e-6);
            assert!(violations.is_empty(), "seed {seed} {pricing:?}: {violations:?}");
            objectives.push((pricing, sol.objective()));
        }
        let (_, base) = objectives[0];
        for &(pricing, obj) in &objectives[1..] {
            assert!(
                (obj - base).abs() <= 1e-6 * (1.0 + base.abs()),
                "seed {seed}: {pricing:?} found {obj}, Dantzig found {base}"
            );
        }
    }
}

/// Warm restarts (the SAM timestep pattern: RHS moves, re-solve) agree
/// across strategies too, and each session stays KKT-certified.
#[test]
fn strategies_agree_across_warm_restarts() {
    for seed in 0..16 {
        let mut g = Gen::new(seed ^ 0x5EED);
        let m = schedule_lp(&mut g);
        // Pre-pick the RHS perturbations so every strategy sees the same
        // mutation sequence.
        let nrows = m.num_rows();
        let tweaks: Vec<(usize, f64)> =
            (0..4).map(|_| (g.index(nrows), g.range(0.5, 4.0))).collect();
        let mut finals = Vec::new();
        for pricing in STRATEGIES {
            let mut sess = SolverSession::new(m.clone());
            sess.solve(&opts_for(pricing)).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            let mut last = f64::NAN;
            for &(r, rhs) in &tweaks {
                sess.set_rhs(RowId::from_index(r), rhs);
                let sol = sess
                    .solve(&opts_for(pricing))
                    .unwrap_or_else(|e| panic!("seed {seed} {pricing:?}: {e}"));
                let violations = check_optimal(sess.model(), &sol, 1e-6);
                assert!(violations.is_empty(), "seed {seed} {pricing:?}: {violations:?}");
                last = sol.objective();
            }
            finals.push((pricing, last));
        }
        let (_, base) = finals[0];
        for &(pricing, obj) in &finals[1..] {
            assert!(
                (obj - base).abs() <= 1e-6 * (1.0 + base.abs()),
                "seed {seed}: {pricing:?} ended at {obj}, Dantzig at {base}"
            );
        }
    }
}

/// A crafted, massively degenerate LP: a cyclic chain `x_i <= x_{i+1}`
/// with zero right-hand sides forces every feasible point to have all
/// variables equal, so the walk from the all-slack crash basis to the
/// optimum is a run of zero-length steps. With `bland_trigger: 0` the
/// anti-cycling rule must engage under Devex — observable through the
/// `bland_pivots` counter — while still reaching the right optimum.
#[test]
fn bland_trigger_fires_under_devex_on_degenerate_lp() {
    for &pricing in &[Pricing::Devex, Pricing::PartialDevex] {
        let mut m = Model::new(Sense::Maximize);
        let n = 12;
        let xs: Vec<_> = (0..n)
            .map(|j| m.add_var(&format!("x{j}"), 0.0, f64::INFINITY, 1.0 + 0.01 * j as f64))
            .collect();
        // x_i - x_{i+1} <= 0 around a cycle: all variables must be equal.
        for i in 0..n {
            let mut e = LinExpr::new();
            e.add_term(1.0, xs[i]);
            e.add_term(-1.0, xs[(i + 1) % n]);
            m.add_row(&format!("chain{i}"), e, Cmp::Le, 0.0);
        }
        // One shared unit of capacity bounds the common level at 1/n.
        let mut cap = LinExpr::new();
        for &v in &xs {
            cap.add_term(1.0, v);
        }
        m.add_row("cap", cap, Cmp::Le, 1.0);
        // Reference optimum from a plain Dantzig solve with the default
        // (effectively never-firing) trigger.
        let reference = SolverSession::new(m.clone())
            .solve(&opts_for(Pricing::Dantzig))
            .expect("reference solve")
            .objective();
        let mut sess = SolverSession::new(m.clone());
        let opts = SolveOptions {
            simplex: Some(SimplexOptions { pricing, bland_trigger: 0, ..Default::default() }),
            ..SolveOptions::default()
        };
        let sol = sess.solve(&opts).unwrap_or_else(|e| panic!("{pricing:?}: {e}"));
        assert!(
            (sol.objective() - reference).abs() <= 1e-6 * (1.0 + reference.abs()),
            "{pricing:?}: objective {} vs reference {reference}",
            sol.objective()
        );
        assert!(check_optimal(&m, &sol, 1e-6).is_empty(), "{pricing:?}");
        assert!(
            sol.bland_pivots() > 0,
            "{pricing:?}: Bland fallback never engaged on a degenerate LP"
        );
    }
}

/// The deterministic parallel-pricing layer must be invisible at the bit
/// level: on random models wide enough to engage the sectioned sweeps,
/// every solution vector — primal values, duals, and the reduced-cost
/// scores pricing ranks candidates by — must be element-wise bitwise
/// identical between the serial path and any worker count, for both
/// incremental strategies, along with the deterministic work counters
/// (iterations, pricing scans).
#[test]
fn parallel_pricing_scores_match_serial_bitwise() {
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
    for seed in 0..8u64 {
        let mut g = Gen::new(seed.wrapping_mul(0x9A17) | 1);
        // Wide enough that the size-derived sectioning splits the column
        // range (the layer stays serial below its per-section minimum).
        let nvars = 300 + g.index(300);
        let mut m = Model::new(Sense::Maximize);
        let xs: Vec<_> =
            (0..nvars).map(|j| m.add_var(&format!("x{j}"), 0.0, 2.0, g.range(0.1, 3.0))).collect();
        let nrows = 60 + g.index(80);
        for i in 0..nrows {
            let mut e = LinExpr::new();
            for (j, &v) in xs.iter().enumerate() {
                if (j * 7 + i) % 16 == 0 {
                    e.add_term(g.range(0.2, 1.5), v);
                }
            }
            m.add_row(&format!("r{i}"), e, Cmp::Le, g.range(2.0, 10.0));
        }
        for pricing in [Pricing::Devex, Pricing::PartialDevex] {
            let solve = |jobs: usize| {
                let mut sess = SolverSession::new(m.clone());
                let opts = SolveOptions {
                    simplex: Some(SimplexOptions {
                        pricing,
                        pricing_jobs: jobs,
                        ..Default::default()
                    }),
                    ..SolveOptions::default()
                };
                sess.solve(&opts)
                    .unwrap_or_else(|e| panic!("seed {seed} {pricing:?} jobs={jobs}: {e}"))
            };
            let serial = solve(1);
            assert_eq!(serial.pricing_par_sections(), 0, "serial path spawned sections");
            for jobs in [2usize, 8] {
                let par = solve(jobs);
                let tag = format!("seed {seed} {pricing:?} jobs={jobs}");
                assert_eq!(bits(serial.values()), bits(par.values()), "{tag}: values diverged");
                assert_eq!(bits(serial.duals()), bits(par.duals()), "{tag}: duals diverged");
                for j in 0..nvars {
                    let v = Var::from_index(j);
                    assert_eq!(
                        serial.reduced_cost(v).to_bits(),
                        par.reduced_cost(v).to_bits(),
                        "{tag}: reduced cost of column {j} diverged"
                    );
                }
                assert_eq!(serial.iterations(), par.iterations(), "{tag}: iterations");
                assert_eq!(serial.pricing_scans(), par.pricing_scans(), "{tag}: scans");
                assert!(par.pricing_par_sections() > 0, "{tag}: fan-out never engaged");
            }
        }
    }
}

/// The pricing-scan counter reflects the strategies' cost structure on a
/// larger model: partial pricing must examine far fewer columns per
/// iteration than the full Dantzig rescan.
#[test]
fn partial_pricing_scans_fewer_columns() {
    let mut g = Gen::new(0xC0FFEE);
    // A larger instance so sectioned scanning actually engages
    // (n > SECTION_MIN columns).
    let mut m = Model::new(Sense::Maximize);
    let nvars = 400;
    let xs: Vec<_> =
        (0..nvars).map(|j| m.add_var(&format!("x{j}"), 0.0, 2.0, g.range(0.1, 3.0))).collect();
    for i in 0..120 {
        let mut e = LinExpr::new();
        for (j, &v) in xs.iter().enumerate() {
            if (j * 7 + i) % 16 == 0 {
                e.add_term(g.range(0.2, 1.5), v);
            }
        }
        m.add_row(&format!("r{i}"), e, Cmp::Le, g.range(2.0, 10.0));
    }
    let mut per_iter = Vec::new();
    for pricing in [Pricing::Dantzig, Pricing::PartialDevex] {
        let mut sess = SolverSession::new(m.clone());
        let sol = sess.solve(&opts_for(pricing)).unwrap();
        assert!(sol.iterations() > 0);
        per_iter.push(sol.pricing_scans() as f64 / sol.iterations() as f64);
    }
    assert!(
        per_iter[1] < per_iter[0] / 2.0,
        "partial pricing scanned {:.0} cols/iter vs Dantzig's {:.0}",
        per_iter[1],
        per_iter[0]
    );
}
