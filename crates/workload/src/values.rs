//! Request-value distributions, implemented directly on top of `rand`'s
//! uniform source (no external distribution crates).
//!
//! The paper draws per-byte values from normal and pareto distributions
//! with varying mean-to-standard-deviation ratios (§6.1, Figures 13-14).

use rand::Rng;

/// A distribution over non-negative per-unit values.
#[derive(Debug, Clone, PartialEq)]
pub enum ValueDist {
    /// Every draw returns the same value.
    Fixed(f64),
    /// Uniform on `[lo, hi]`.
    Uniform { lo: f64, hi: f64 },
    /// Normal with the given mean and standard deviation, truncated below
    /// at `floor` (values cannot be negative).
    Normal { mean: f64, std: f64, floor: f64 },
    /// Exponential with the given mean.
    Exponential { mean: f64 },
    /// Pareto with shape `alpha` (> 1) and scale `x_m` (> 0).
    Pareto { alpha: f64, x_m: f64 },
}

impl ValueDist {
    /// Normal distribution specified by its mean and the ratio `mean/std`
    /// (the x-axis of Figures 13-14).
    pub fn normal_from_ratio(mean: f64, mean_over_std: f64) -> Self {
        assert!(mean > 0.0 && mean_over_std > 0.0);
        ValueDist::Normal { mean, std: mean / mean_over_std, floor: mean * 0.01 }
    }

    /// Pareto distribution with the given mean and `mean/std` ratio.
    ///
    /// For Pareto(α, x_m): μ = α·x_m/(α-1) and μ/σ = sqrt(α(α-2)), so
    /// α = 1 + sqrt(1 + r²) for a target ratio `r` (requires α > 2, i.e.
    /// any r > 0 works).
    pub fn pareto_from_mean_ratio(mean: f64, mean_over_std: f64) -> Self {
        assert!(mean > 0.0 && mean_over_std > 0.0);
        let r2 = mean_over_std * mean_over_std;
        let alpha = 1.0 + (1.0 + r2).sqrt();
        let x_m = mean * (alpha - 1.0) / alpha;
        ValueDist::Pareto { alpha, x_m }
    }

    /// Draw one value (always ≥ 0, finite).
    pub fn sample(&self, rng: &mut impl Rng) -> f64 {
        match *self {
            ValueDist::Fixed(v) => v,
            ValueDist::Uniform { lo, hi } => rng.gen_range(lo..=hi),
            ValueDist::Normal { mean, std, floor } => {
                (mean + std * standard_normal(rng)).max(floor)
            }
            ValueDist::Exponential { mean } => {
                // Inverse transform: -mean · ln(U), U ∈ (0, 1].
                let u: f64 = 1.0 - rng.gen::<f64>();
                -mean * u.ln()
            }
            ValueDist::Pareto { alpha, x_m } => {
                let u: f64 = 1.0 - rng.gen::<f64>();
                x_m / u.powf(1.0 / alpha)
            }
        }
    }

    /// The distribution's mean.
    pub fn mean(&self) -> f64 {
        match *self {
            ValueDist::Fixed(v) => v,
            ValueDist::Uniform { lo, hi } => (lo + hi) / 2.0,
            ValueDist::Normal { mean, .. } => mean,
            ValueDist::Exponential { mean } => mean,
            ValueDist::Pareto { alpha, x_m } => {
                assert!(alpha > 1.0);
                alpha * x_m / (alpha - 1.0)
            }
        }
    }
}

/// One standard normal draw via Box-Muller.
pub fn standard_normal(rng: &mut impl Rng) -> f64 {
    // Avoid u1 == 0 (ln(0) = -inf).
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Lognormal draw: `exp(mu + sigma·Z)`.
pub fn lognormal(rng: &mut impl Rng, mu: f64, sigma: f64) -> f64 {
    (mu + sigma * standard_normal(rng)).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn stats(dist: &ValueDist, n: usize) -> (f64, f64) {
        let mut rng = StdRng::seed_from_u64(12345);
        let samples: Vec<f64> = (0..n).map(|_| dist.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        (mean, var.sqrt())
    }

    #[test]
    fn fixed_is_constant() {
        let d = ValueDist::Fixed(3.0);
        let (m, s) = stats(&d, 100);
        assert_eq!(m, 3.0);
        assert_eq!(s, 0.0);
    }

    #[test]
    fn normal_matches_moments() {
        let d = ValueDist::Normal { mean: 10.0, std: 2.0, floor: 0.0 };
        let (m, s) = stats(&d, 50_000);
        assert!((m - 10.0).abs() < 0.1, "mean {m}");
        assert!((s - 2.0).abs() < 0.1, "std {s}");
    }

    #[test]
    fn normal_truncation_respected() {
        let d = ValueDist::Normal { mean: 1.0, std: 5.0, floor: 0.25 };
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) >= 0.25);
        }
    }

    #[test]
    fn exponential_matches_mean() {
        let d = ValueDist::Exponential { mean: 4.0 };
        let (m, s) = stats(&d, 100_000);
        assert!((m - 4.0).abs() < 0.1, "mean {m}");
        assert!((s - 4.0).abs() < 0.15, "std {s}"); // exp: std == mean
    }

    #[test]
    fn pareto_from_ratio_hits_target_moments() {
        for ratio in [1.0, 2.0, 4.0] {
            let d = ValueDist::pareto_from_mean_ratio(5.0, ratio);
            assert!((d.mean() - 5.0).abs() < 1e-9);
            let (m, s) = stats(&d, 400_000);
            assert!((m - 5.0).abs() < 0.15, "ratio {ratio}: mean {m}");
            let got_ratio = m / s;
            assert!(
                (got_ratio - ratio).abs() / ratio < 0.25,
                "ratio {ratio}: measured {got_ratio}"
            );
        }
    }

    #[test]
    fn normal_from_ratio_hits_target() {
        let d = ValueDist::normal_from_ratio(8.0, 4.0);
        let (m, s) = stats(&d, 50_000);
        assert!((m - 8.0).abs() < 0.1);
        assert!((m / s - 4.0).abs() < 0.2);
    }

    #[test]
    fn samples_are_nonnegative_and_finite() {
        let mut rng = StdRng::seed_from_u64(99);
        let dists = [
            ValueDist::Normal { mean: 1.0, std: 3.0, floor: 0.0 },
            ValueDist::Exponential { mean: 2.0 },
            ValueDist::pareto_from_mean_ratio(3.0, 1.5),
            ValueDist::Uniform { lo: 0.0, hi: 2.0 },
        ];
        for d in &dists {
            for _ in 0..5_000 {
                let v = d.sample(&mut rng);
                assert!(v.is_finite() && v >= 0.0, "{d:?} produced {v}");
            }
        }
    }

    #[test]
    fn standard_normal_is_standard() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|v| v * v).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }
}
