//! Topology generators.
//!
//! The paper evaluates on a production WAN with 106 nodes and 226 edges
//! spread over geographic regions, with ~15% of edges billed on 95th
//! percentile usage (§6.1). That topology is proprietary, so this module
//! generates *region-structured* WANs with the same statistical shape:
//! dense intra-region meshes plus a sparser set of long-haul inter-region
//! links (the percentile-billed ones — leased transit typically crosses
//! provider boundaries).

use crate::cost::LinkCost;
use crate::graph::{Network, NodeId, Region};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for [`region_wan`].
#[derive(Debug, Clone)]
pub struct TopologyConfig {
    /// Datacenters per region (one entry per region used).
    pub nodes_per_region: Vec<usize>,
    /// Probability of a duplex link between two nodes of the same region
    /// (beyond the ring that guarantees connectivity).
    pub intra_extra_prob: f64,
    /// Number of duplex inter-region links per region pair.
    pub inter_links_per_pair: usize,
    /// Capacity of intra-region links (per timestep volume units).
    pub intra_capacity: f64,
    /// Capacity of inter-region links.
    pub inter_capacity: f64,
    /// Fraction of edges billed on 95th-percentile usage (~0.15 in the
    /// paper); applied to inter-region links first.
    pub percentile_fraction: f64,
    /// Unit cost of percentile-billed links (mean; jittered ±30%).
    pub percentile_unit_cost: f64,
    pub seed: u64,
}

impl Default for TopologyConfig {
    fn default() -> Self {
        TopologyConfig {
            nodes_per_region: vec![6, 5, 5],
            intra_extra_prob: 0.3,
            inter_links_per_pair: 2,
            intra_capacity: 100.0,
            inter_capacity: 60.0,
            percentile_fraction: 0.15,
            percentile_unit_cost: 1.0,
            seed: 42,
        }
    }
}

/// Generate a region-structured WAN.
///
/// Guarantees: the graph is strongly connected (each region is a ring plus
/// chords; region pairs are joined by at least one duplex link), and the
/// requested fraction of *directed* edges is percentile-billed.
pub fn region_wan(cfg: &TopologyConfig) -> Network {
    assert!(!cfg.nodes_per_region.is_empty(), "need at least one region");
    assert!(
        cfg.nodes_per_region.len() <= Region::ALL.len(),
        "at most {} regions supported",
        Region::ALL.len()
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut net = Network::new();
    let mut region_nodes: Vec<Vec<NodeId>> = Vec::new();

    for (r, &count) in cfg.nodes_per_region.iter().enumerate() {
        assert!(count >= 1, "each region needs at least one node");
        let region = Region::ALL[r];
        let ids: Vec<NodeId> =
            (0..count).map(|i| net.add_node(&format!("{region:?}-{i}"), region)).collect();
        // Ring for connectivity (when more than one node).
        if count > 1 {
            for i in 0..count {
                let a = ids[i];
                let b = ids[(i + 1) % count];
                if net.find_edge(a, b).is_none() {
                    let cap = jitter(&mut rng, cfg.intra_capacity);
                    net.add_duplex(a, b, cap, LinkCost::owned());
                }
            }
        }
        // Random chords.
        for i in 0..count {
            for j in (i + 2)..count {
                if (i, j) != (0, count - 1) && rng.gen_bool(cfg.intra_extra_prob) {
                    let cap = jitter(&mut rng, cfg.intra_capacity);
                    net.add_duplex(ids[i], ids[j], cap, LinkCost::owned());
                }
            }
        }
        region_nodes.push(ids);
    }

    // Inter-region long-haul links.
    let mut inter_edges = Vec::new();
    for a in 0..region_nodes.len() {
        for b in (a + 1)..region_nodes.len() {
            for _ in 0..cfg.inter_links_per_pair.max(1) {
                let na = region_nodes[a][rng.gen_range(0..region_nodes[a].len())];
                let nb = region_nodes[b][rng.gen_range(0..region_nodes[b].len())];
                if net.find_edge(na, nb).is_some() {
                    continue;
                }
                let cap = jitter(&mut rng, cfg.inter_capacity);
                let (f, r) = net.add_duplex(na, nb, cap, LinkCost::owned());
                inter_edges.push(f);
                inter_edges.push(r);
            }
        }
    }

    // Mark the requested fraction of directed edges as percentile-billed,
    // preferring inter-region (leased transit) links.
    let want = ((net.num_edges() as f64) * cfg.percentile_fraction).round() as usize;
    let mut marked = 0;
    for &e in &inter_edges {
        if marked >= want {
            break;
        }
        net.edge_mut(e).cost = LinkCost::percentile(jitter(&mut rng, cfg.percentile_unit_cost));
        marked += 1;
    }
    // If inter-region links were not enough, spill onto intra-region edges.
    let ids: Vec<_> = net.edge_ids().collect();
    for e in ids {
        if marked >= want {
            break;
        }
        if !net.edge(e).cost.is_percentile() {
            net.edge_mut(e).cost = LinkCost::percentile(jitter(&mut rng, cfg.percentile_unit_cost));
            marked += 1;
        }
    }
    net
}

/// ±30% multiplicative jitter.
fn jitter(rng: &mut StdRng, base: f64) -> f64 {
    base * rng.gen_range(0.7..1.3)
}

/// A production-scale instance mirroring the paper's trace: 106 nodes and
/// ≈226 duplex links (452 directed edges) over four regions.
pub fn production_like(seed: u64) -> Network {
    let cfg = TopologyConfig {
        nodes_per_region: vec![34, 28, 26, 18],
        intra_extra_prob: 0.06,
        inter_links_per_pair: 7,
        intra_capacity: 100.0,
        inter_capacity: 60.0,
        percentile_fraction: 0.15,
        percentile_unit_cost: 1.0,
        seed,
    };
    region_wan(&cfg)
}

/// The default evaluation topology: ~16 nodes across 3 regions. Large
/// enough for meaningful multipath TE, small enough that a full day's
/// scheduling LP solves in well under a second (see DESIGN.md §3).
pub fn default_eval(seed: u64) -> Network {
    region_wan(&TopologyConfig { seed, ..TopologyConfig::default() })
}

/// The 4-node example network of Figure 2: links A→B, A→C, C→D (capacity 2
/// each). Returns `(net, [a, b, c, d])`.
pub fn paper_example() -> (Network, [NodeId; 4]) {
    let mut net = Network::new();
    let a = net.add_node("A", Region::NorthAmerica);
    let b = net.add_node("B", Region::NorthAmerica);
    let c = net.add_node("C", Region::NorthAmerica);
    let d = net.add_node("D", Region::NorthAmerica);
    net.add_edge(a, b, 2.0, LinkCost::owned());
    net.add_edge(a, c, 2.0, LinkCost::owned());
    net.add_edge(c, d, 2.0, LinkCost::owned());
    (net, [a, b, c, d])
}

/// Check strong connectivity (every node reaches every other node).
pub fn strongly_connected(net: &Network) -> bool {
    let n = net.num_nodes();
    if n <= 1 {
        return true;
    }
    // Forward reachability from node 0 and reachability *to* node 0 via the
    // reverse graph imply strong connectivity for the whole graph only if
    // combined per node; do the full check cheaply with two BFS passes.
    let reach = |reverse: bool| -> usize {
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for (_, e) in net.edges() {
                let (from, to) = if reverse {
                    (e.to.index(), e.from.index())
                } else {
                    (e.from.index(), e.to.index())
                };
                if from == u && !seen[to] {
                    seen[to] = true;
                    count += 1;
                    stack.push(to);
                }
            }
        }
        count
    };
    reach(false) == n && reach(true) == n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_eval_is_strongly_connected() {
        let net = default_eval(7);
        assert!(net.num_nodes() >= 10);
        assert!(strongly_connected(&net));
    }

    #[test]
    fn percentile_fraction_respected() {
        let net = default_eval(3);
        let frac = net.percentile_edges().len() as f64 / net.num_edges() as f64;
        assert!((frac - 0.15).abs() < 0.05, "fraction {frac}");
    }

    #[test]
    fn production_like_matches_paper_scale() {
        let net = production_like(1);
        assert_eq!(net.num_nodes(), 106);
        let duplex = net.num_edges() / 2;
        assert!((190..=260).contains(&duplex), "expected ≈226 duplex links, got {duplex}");
        assert!(strongly_connected(&net));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = default_eval(9);
        let b = default_eval(9);
        assert_eq!(a.num_nodes(), b.num_nodes());
        assert_eq!(a.num_edges(), b.num_edges());
        for (ea, eb) in a.edges().zip(b.edges()) {
            assert_eq!(ea.1.capacity, eb.1.capacity);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = default_eval(1);
        let b = default_eval(2);
        let same =
            a.edges().zip(b.edges()).take_while(|(x, y)| x.1.capacity == y.1.capacity).count();
        assert!(same < a.num_edges().min(b.num_edges()));
    }

    #[test]
    fn paper_example_shape() {
        let (net, [a, b, c, d]) = paper_example();
        assert_eq!(net.num_nodes(), 4);
        assert_eq!(net.num_edges(), 3);
        assert!(net.find_edge(a, b).is_some());
        assert!(net.find_edge(a, c).is_some());
        assert!(net.find_edge(c, d).is_some());
        assert!(net.find_edge(b, d).is_none());
    }

    #[test]
    fn single_region_singleton_node() {
        let cfg = TopologyConfig { nodes_per_region: vec![1], ..TopologyConfig::default() };
        let net = region_wan(&cfg);
        assert_eq!(net.num_nodes(), 1);
        assert_eq!(net.num_edges(), 0);
        assert!(strongly_connected(&net));
    }
}
