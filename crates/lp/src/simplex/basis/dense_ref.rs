//! The previous dense-bump factorization, kept as a *reference kernel*.
//!
//! This is the kernel the sparse Markowitz/Forrest–Tomlin implementation
//! replaced: a triangularization pre-pass pivots singleton columns into
//! an upper-triangular leading block, the residual *bump* is factorized
//! densely with partial pivoting, and pivot updates are absorbed into a
//! product-form eta file. It is **not on any solve path** — it exists so
//! the torture suite can cross-check the live kernel against an
//! independent implementation and so the `sparse_lu` bench can measure
//! the speedup honestly against the old baseline.

use super::{FactorError, SparseCol};

/// One product-form update: `B_new = B_old · E` where `E` is the identity
/// with column `pos` replaced by the FTRAN'd entering column `w`.
#[derive(Debug, Clone)]
struct Eta {
    /// Basis position that was replaced.
    pos: usize,
    /// `w[pos]` (the pivot element).
    pivot: f64,
    /// Remaining nonzeros of `w` (positions != `pos`).
    other: Vec<(u32, f64)>,
}

/// Triangular-plus-bump factorization with an eta file (reference only).
#[derive(Debug, Clone)]
pub struct DenseBumpFactorization {
    m: usize,
    /// Size of the triangular block.
    nt: usize,
    /// `row_of_pos[p]` = original row occupying structured position `p`
    /// (bump rows already account for the dense LU's pivoting).
    row_of_pos: Vec<usize>,
    /// `col_of_pos[p]` = basis position (column of `B`) at position `p`.
    col_of_pos: Vec<usize>,
    /// Triangular columns: `(diagonal value, entries in earlier positions)`.
    tri_cols: Vec<(f64, Vec<(u32, f64)>)>,
    /// For each bump column `q` (0-based within the bump): entries in
    /// triangular positions.
    b12: Vec<Vec<(u32, f64)>>,
    /// Dense row-major `L\U` of the bump (`nb × nb`).
    bump_fac: Vec<f64>,
    /// Bump size.
    nb: usize,
    etas: Vec<Eta>,
    /// Rebuild threshold for the eta file.
    max_etas: usize,
    /// Absolute pivot tolerance.
    pivot_tol: f64,
    /// Scratch buffers reused across solves.
    scratch: Vec<f64>,
}

impl DenseBumpFactorization {
    /// Create an empty factorization for an `m`-row basis.
    pub fn new(m: usize, max_etas: usize, pivot_tol: f64) -> Self {
        DenseBumpFactorization {
            m,
            nt: 0,
            row_of_pos: (0..m).collect(),
            col_of_pos: (0..m).collect(),
            tri_cols: Vec::new(),
            b12: Vec::new(),
            bump_fac: Vec::new(),
            nb: 0,
            etas: Vec::new(),
            max_etas,
            pivot_tol,
            scratch: vec![0.0; m],
        }
    }

    /// Number of accumulated eta updates since the last refactorization.
    pub fn eta_count(&self) -> usize {
        self.etas.len()
    }

    /// Size of the dense bump after the last refactorization (diagnostic).
    pub fn bump_size(&self) -> usize {
        self.nb
    }

    /// True when the eta file has grown enough that the caller should
    /// refactorize.
    pub fn wants_refactor(&self) -> bool {
        self.etas.len() >= self.max_etas
    }

    /// Factorize the basis given by `columns` (one sparse column per basis
    /// position). Clears the eta file.
    pub fn refactor(&mut self, columns: &[&SparseCol]) -> Result<(), FactorError> {
        let m = self.m;
        debug_assert_eq!(columns.len(), m);
        self.etas.clear();
        self.tri_cols.clear();
        self.b12.clear();

        // --- triangularization: pivot singleton columns -------------------
        // remaining-nonzero count per column, and row -> columns index.
        let mut cnt: Vec<u32> = vec![0; m];
        let mut rows_to_cols: Vec<Vec<u32>> = vec![Vec::new(); m];
        for (j, col) in columns.iter().enumerate() {
            cnt[j] = col.len() as u32;
            for &(r, _) in col.iter() {
                rows_to_cols[r as usize].push(j as u32);
            }
        }
        let mut row_pivoted = vec![false; m];
        let mut col_pivoted = vec![false; m];
        // Position assignment.
        let mut pos_of_row: Vec<u32> = vec![u32::MAX; m];
        let mut order: Vec<(usize, usize)> = Vec::with_capacity(m); // (col, row)
        let mut queue: Vec<u32> = (0..m as u32).filter(|&j| cnt[j as usize] == 1).collect();
        while let Some(j) = queue.pop() {
            let j = j as usize;
            if col_pivoted[j] || cnt[j] != 1 {
                continue;
            }
            // Find the single remaining entry.
            let mut pick: Option<(usize, f64)> = None;
            for &(r, v) in columns[j].iter() {
                if !row_pivoted[r as usize] {
                    pick = Some((r as usize, v));
                    break;
                }
            }
            let Some((r, v)) = pick else { continue };
            if v.abs() <= self.pivot_tol {
                // Too small to pivot on; leave the column for the bump.
                continue;
            }
            col_pivoted[j] = true;
            row_pivoted[r] = true;
            pos_of_row[r] = order.len() as u32;
            order.push((j, r));
            // Removing row r reduces the remaining count of its columns.
            for &oj in &rows_to_cols[r] {
                let oj = oj as usize;
                if !col_pivoted[oj] {
                    cnt[oj] -= 1;
                    if cnt[oj] == 1 {
                        queue.push(oj as u32);
                    }
                }
            }
        }
        let nt = order.len();
        self.nt = nt;

        // Assign bump rows/columns to positions nt..m.
        let bump_cols: Vec<usize> = (0..m).filter(|&j| !col_pivoted[j]).collect();
        let bump_rows: Vec<usize> = (0..m).filter(|&r| !row_pivoted[r]).collect();
        let nb = bump_cols.len();
        debug_assert_eq!(nb, bump_rows.len());
        self.nb = nb;
        let mut pos_of_bump_row: Vec<u32> = vec![u32::MAX; m];
        for (i, &r) in bump_rows.iter().enumerate() {
            pos_of_bump_row[r] = i as u32;
        }

        // Build triangular column storage (entries land in earlier
        // positions by construction).
        self.tri_cols.reserve(nt);
        for &(j, r) in &order {
            let mut diag = 0.0;
            let mut others = Vec::new();
            for &(er, v) in columns[j].iter() {
                let er = er as usize;
                if er == r {
                    diag = v;
                } else {
                    debug_assert!(pos_of_row[er] != u32::MAX, "entry below the triangle");
                    others.push((pos_of_row[er], v));
                }
            }
            self.tri_cols.push((diag, others));
        }

        // Build B12 (bump columns' entries in triangular rows) and the
        // dense bump matrix.
        self.b12.reserve(nb);
        self.bump_fac.clear();
        self.bump_fac.resize(nb * nb, 0.0);
        for (q, &j) in bump_cols.iter().enumerate() {
            let mut upper = Vec::new();
            for &(r, v) in columns[j].iter() {
                let r = r as usize;
                if row_pivoted[r] {
                    upper.push((pos_of_row[r], v));
                } else {
                    self.bump_fac[pos_of_bump_row[r] as usize * nb + q] = v;
                }
            }
            self.b12.push(upper);
        }

        // Dense LU of the bump with partial pivoting (physical row swaps).
        let mut bump_perm: Vec<usize> = (0..nb).collect();
        for k in 0..nb {
            let mut best = k;
            let mut best_abs = self.bump_fac[k * nb + k].abs();
            for i in (k + 1)..nb {
                let a = self.bump_fac[i * nb + k].abs();
                if a > best_abs {
                    best_abs = a;
                    best = i;
                }
            }
            if best_abs <= self.pivot_tol {
                return Err(FactorError::Singular { position: nt + k });
            }
            if best != k {
                for j in 0..nb {
                    self.bump_fac.swap(k * nb + j, best * nb + j);
                }
                bump_perm.swap(k, best);
            }
            let pivot = self.bump_fac[k * nb + k];
            for i in (k + 1)..nb {
                let l = self.bump_fac[i * nb + k] / pivot;
                if l != 0.0 {
                    self.bump_fac[i * nb + k] = l;
                    for j in (k + 1)..nb {
                        self.bump_fac[i * nb + j] -= l * self.bump_fac[k * nb + j];
                    }
                }
            }
        }

        // Final position maps.
        self.row_of_pos.clear();
        self.col_of_pos.clear();
        for &(j, r) in &order {
            self.col_of_pos.push(j);
            self.row_of_pos.push(r);
        }
        for i in 0..nb {
            // bump position i corresponds to pre-pivot bump row
            // bump_rows[bump_perm[i]] and bump column bump_cols[i].
            self.col_of_pos.push(bump_cols[i]);
            self.row_of_pos.push(bump_rows[bump_perm[i]]);
        }
        Ok(())
    }

    /// Solve `B·w = a` where `a` is a sparse column in original row
    /// coordinates. The result is dense, indexed by basis *position*.
    pub fn ftran(&mut self, a: &SparseCol, out: &mut Vec<f64>) {
        // Borrow the reusable scratch buffer for the dense scatter; only
        // the entries of `a` are re-zeroed before it is handed back.
        let mut dense = std::mem::take(&mut self.scratch);
        dense.resize(self.m, 0.0);
        for &(i, v) in a.iter() {
            dense[i as usize] = v;
        }
        self.ftran_dense(&dense, out);
        for &(i, _) in a.iter() {
            dense[i as usize] = 0.0;
        }
        self.scratch = dense;
    }

    /// Like [`DenseBumpFactorization::ftran`] but with a dense right-hand
    /// side in original row coordinates.
    pub fn ftran_dense(&self, a: &[f64], out: &mut Vec<f64>) {
        let m = self.m;
        let nt = self.nt;
        let nb = self.nb;
        out.clear();
        out.resize(m, 0.0);
        // rhs in position order: w[p] = a[row_of_pos[p]].
        let mut w: Vec<f64> = (0..m).map(|p| a[self.row_of_pos[p]]).collect();
        // Bump solve: B22 y2 = w2 (L then U; unit-diagonal L).
        if nb > 0 {
            let f = &self.bump_fac;
            for i in 0..nb {
                let mut s = w[nt + i];
                let row = &f[i * nb..i * nb + i];
                for (j, &l) in row.iter().enumerate() {
                    if l != 0.0 {
                        s -= l * w[nt + j];
                    }
                }
                w[nt + i] = s;
            }
            for i in (0..nb).rev() {
                let mut s = w[nt + i];
                let row = &f[i * nb..(i + 1) * nb];
                for (j, &u) in row.iter().enumerate().skip(i + 1) {
                    if u != 0.0 {
                        s -= u * w[nt + j];
                    }
                }
                w[nt + i] = s / row[i];
            }
            // w1 -= B12 · y2.
            for (q, col) in self.b12.iter().enumerate() {
                let y = w[nt + q];
                if y != 0.0 {
                    for &(k, v) in col {
                        w[k as usize] -= v * y;
                    }
                }
            }
        }
        // Column-oriented back substitution through U11.
        for j in (0..nt).rev() {
            let (diag, ref others) = self.tri_cols[j];
            let y = w[j] / diag;
            w[j] = y;
            if y != 0.0 {
                for &(k, v) in others {
                    w[k as usize] -= v * y;
                }
            }
        }
        // Scatter to basis-position order and apply the eta file.
        for (p, &c) in self.col_of_pos.iter().enumerate() {
            out[c] = w[p];
        }
        for e in &self.etas {
            let vr = out[e.pos] / e.pivot;
            if vr != 0.0 {
                for &(j, wj) in &e.other {
                    out[j as usize] -= wj * vr;
                }
            }
            out[e.pos] = vr;
        }
    }

    /// Solve `yᵀ·B = cᵀ` where `c` is dense, indexed by basis position.
    /// The result `y` is dense, indexed by original row.
    pub fn btran(&self, c: &[f64], out: &mut Vec<f64>) {
        let m = self.m;
        let nt = self.nt;
        let nb = self.nb;
        // Apply eta transposes in reverse order (position space).
        let mut cc = c.to_vec();
        for e in self.etas.iter().rev() {
            let mut s = cc[e.pos];
            for &(j, wj) in &e.other {
                s -= wj * cc[j as usize];
            }
            cc[e.pos] = s / e.pivot;
        }
        // Permute to structured positions: z[p] = cc[col_of_pos[p]].
        let mut z: Vec<f64> = (0..m).map(|p| cc[self.col_of_pos[p]]).collect();
        // U11ᵀ z1 = c1 (forward substitution, column lists become rows of
        // the transpose).
        for j in 0..nt {
            let (diag, ref others) = self.tri_cols[j];
            let mut s = z[j];
            for &(k, v) in others {
                s -= v * z[k as usize];
            }
            z[j] = s / diag;
        }
        // c2' = c2 - B12ᵀ z1, then B22ᵀ y2 = c2'.
        if nb > 0 {
            for (q, col) in self.b12.iter().enumerate() {
                let mut s = z[nt + q];
                for &(k, v) in col {
                    s -= v * z[k as usize];
                }
                z[nt + q] = s;
            }
            let f = &self.bump_fac;
            // Solve Uᵀ q = z2 (forward), then Lᵀ w = q (backward).
            for i in 0..nb {
                let mut s = z[nt + i];
                for j in 0..i {
                    let u = f[j * nb + i];
                    if u != 0.0 {
                        s -= u * z[nt + j];
                    }
                }
                z[nt + i] = s / f[i * nb + i];
            }
            for i in (0..nb).rev() {
                let mut s = z[nt + i];
                for j in (i + 1)..nb {
                    let l = f[j * nb + i];
                    if l != 0.0 {
                        s -= l * z[nt + j];
                    }
                }
                z[nt + i] = s;
            }
        }
        // Un-permute rows: y[row_of_pos[p]] = z[p].
        out.clear();
        out.resize(m, 0.0);
        for (p, &r) in self.row_of_pos.iter().enumerate() {
            out[r] = z[p];
        }
    }

    /// Record a pivot: basis position `pos` is replaced by a column whose
    /// FTRAN'd representation is `w` (dense, basis-position indexed).
    ///
    /// Returns `false` if the pivot element is too small to be stable, in
    /// which case the caller should refactorize and retry.
    pub fn update(&mut self, pos: usize, w: &[f64]) -> bool {
        let pivot = w[pos];
        if pivot.abs() <= self.pivot_tol {
            return false;
        }
        let other: Vec<(u32, f64)> = w
            .iter()
            .enumerate()
            .filter(|&(j, &v)| j != pos && v != 0.0)
            .map(|(j, &v)| (j as u32, v))
            .collect();
        self.etas.push(Eta { pos, pivot, other });
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The reference kernel still solves (guards against bit-rot while it
    /// serves as the torture suite's cross-check oracle).
    #[test]
    fn reference_kernel_roundtrip() {
        let cols = [
            vec![2.0, 1.0, 0.0, 0.0],
            vec![0.0, 3.0, 1.0, 0.0],
            vec![1.0, 0.0, 2.0, 0.5],
            vec![0.0, 0.0, 0.0, 1.0],
        ];
        let sparse: Vec<SparseCol> = cols
            .iter()
            .map(|c| {
                c.iter()
                    .enumerate()
                    .filter(|(_, &v)| v != 0.0)
                    .map(|(i, &v)| (i as u32, v))
                    .collect()
            })
            .collect();
        let refs: Vec<&SparseCol> = sparse.iter().collect();
        let mut f = DenseBumpFactorization::new(4, 32, 1e-12);
        f.refactor(&refs).unwrap();
        let rhs = [5.0, 4.0, 3.0, 2.0];
        let mut w = Vec::new();
        f.ftran_dense(&rhs, &mut w);
        for i in 0..4 {
            let bx: f64 = (0..4).map(|j| cols[j][i] * w[j]).sum();
            assert!((bx - rhs[i]).abs() < 1e-10);
        }
        let mut y = Vec::new();
        f.btran(&rhs, &mut y);
        for (j, colj) in cols.iter().enumerate() {
            let dot: f64 = y.iter().zip(colj).map(|(a, b)| a * b).sum();
            assert!((dot - rhs[j]).abs() < 1e-10);
        }
        assert_eq!(f.eta_count(), 0);
        assert!(f.bump_size() <= 3);
    }
}
