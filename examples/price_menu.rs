//! Figure 4: price menus for two requests that differ only in their
//! deadline. The shorter deadline has fewer (path, timestep) slots to
//! draw on, so every quantity is at least as expensive — the monotonicity
//! that underpins the truthfulness argument of §5.
//!
//! ```text
//! cargo run --release --example price_menu
//! ```

use pretium::core::{Pretium, PretiumConfig, PriceBump, RequestParams};
use pretium::net::{LinkCost, Network, NodeId, Region, TimeGrid};
use pretium::workload::RequestId;

fn main() {
    // The Figure 4 setup: S -> T with a direct link and a 2-hop detour,
    // all capacities 1 unit/step.
    let mut net = Network::new();
    let s = net.add_node("S", Region::NorthAmerica);
    let m = net.add_node("M", Region::NorthAmerica);
    let t = net.add_node("T", Region::NorthAmerica);
    let st = net.add_edge(s, t, 1.0, LinkCost::owned());
    let sm = net.add_edge(s, m, 1.0, LinkCost::owned());
    let mt = net.add_edge(m, t, 1.0, LinkCost::owned());

    let grid = TimeGrid::new(2, 30);
    let cfg = PretiumConfig {
        highpri_fraction: 0.0,
        bump: PriceBump::disabled(),
        k_paths: 2,
        ..Default::default()
    };
    let mut system = Pretium::new(net, grid, 2, cfg);
    // Direct link cheap at step 0, expensive at step 1; detour mid-priced.
    system.set_price(st, 0, 1.0);
    system.set_price(st, 1, 3.0);
    for e in [sm, mt] {
        system.set_price(e, 0, 1.0);
        system.set_price(e, 1, 1.5);
    }

    for (label, deadline) in
        [("time interval [1,2] (two steps)", 1usize), ("time interval [1,1] (one step)", 0)]
    {
        let params = RequestParams {
            id: RequestId(0),
            src: NodeId(0),
            dst: NodeId(2),
            demand: 4.0,
            arrival: 0,
            start: 0,
            deadline,
        };
        let menu = system.snapshot().quote(&params);
        println!("Price menu: transfer S->T, {label}");
        println!("  guarantee bound x̄ = {:.1}", menu.capacity_bound());
        let mut cum = 0.0;
        for (price, units) in menu.price_levels() {
            cum += units;
            println!(
                "  {units:>4.1} units at {price:>5.2}/unit   (p({cum:.0}) = {:.2})",
                menu.price(cum)
            );
        }
        println!("  beyond x̄: best-effort at {:.2}/unit\n", menu.marginal_at_bound());
    }

    // Monotonicity check (Theorem 5.1 ingredient).
    let longer = {
        let p = RequestParams {
            id: RequestId(0),
            src: NodeId(0),
            dst: NodeId(2),
            demand: 4.0,
            arrival: 0,
            start: 0,
            deadline: 1,
        };
        system.snapshot().quote(&p)
    };
    let shorter = {
        let p = RequestParams {
            id: RequestId(0),
            src: NodeId(0),
            dst: NodeId(2),
            demand: 4.0,
            arrival: 0,
            start: 0,
            deadline: 0,
        };
        system.snapshot().quote(&p)
    };
    // Monotonicity holds for guaranteed service (up to the shorter menu's
    // x̄); beyond x̄ quantities are best-effort extrapolations.
    let xbar = shorter.capacity_bound();
    let mut x = 0.5;
    while x <= xbar + 1e-9 {
        assert!(
            longer.price(x) <= shorter.price(x) + 1e-9,
            "longer deadline must never be pricier at x={x}"
        );
        x += 0.5;
    }
    println!("verified: p_longer(x) <= p_shorter(x) for all x <= x̄ — a shorter deadline never gets a discount");
}
