//! Graceful degradation under faults (§4.4).
//!
//! When link failures shrink the sellable capacity so far that the
//! schedule-adjustment LP cannot cover every admitted guarantee even after
//! rerouting, Pretium never silently oversubscribes and never panics.
//! Instead it falls back through an explicit, deterministic policy chain:
//!
//! 1. **Shed lowest-λ demand first** — while more than one contract is
//!    short, the one with the smallest marginal accepted price `λ`
//!    (Pretium's value proxy) has its remaining guarantee waived entirely
//!    and its LP guarantee row relaxed, freeing capacity for
//!    higher-value transfers.
//! 2. **Relax the last guarantee** — when a single contract remains short,
//!    its guarantee is reduced by exactly the uncoverable shortfall, so
//!    the rest of the promise stays hard.
//!
//! Every waiver is recorded here as a [`LedgerEntry`] with a penalty of
//! `λ · waived units` — the provider's book value of the broken promise.
//! The auditor cross-checks the ledger against contract state: a contract
//! past its deadline must have `delivered + waived ≥ guaranteed`, and each
//! contract's `waived` must equal its ledger total, so a missed guarantee
//! that never reached the ledger is flagged as a run-invalidating bug.

use crate::contract::ContractId;
use pretium_net::Timestep;

/// Which fallback stage produced a ledger entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradationKind {
    /// The contract's whole remaining guarantee was shed (lowest-λ first).
    Shed,
    /// The guarantee was reduced by exactly the uncoverable shortfall.
    Relaxed,
}

impl DegradationKind {
    pub fn name(&self) -> &'static str {
        match self {
            DegradationKind::Shed => "shed",
            DegradationKind::Relaxed => "relaxed",
        }
    }
}

/// Fallback policy SAM applies when the guarantee LP is short (§4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradationPolicy {
    /// Leave shortfalls in place and only count them (pre-fault behavior).
    Disabled,
    /// Shed lowest-λ guarantees first, then relax the last one short.
    ShedThenRelax,
}

/// One recorded guarantee violation.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerEntry {
    pub contract: ContractId,
    /// Timestep at which SAM waived the units.
    pub at: Timestep,
    pub kind: DegradationKind,
    /// Guaranteed units waived by this entry.
    pub units: f64,
    /// Penalty booked: `λ · units`.
    pub penalty: f64,
}

/// Append-only record of every guarantee Pretium could not keep.
///
/// Entries are appended in the order SAM waives guarantees, so the
/// shed-before-relax policy ordering is observable directly from the
/// ledger (the fallback-chain tests assert it).
#[derive(Debug, Clone, Default)]
pub struct ViolationLedger {
    entries: Vec<LedgerEntry>,
}

impl ViolationLedger {
    pub fn new() -> Self {
        ViolationLedger::default()
    }

    /// Record a waiver. `units` and `penalty` must be non-negative.
    pub fn record(
        &mut self,
        contract: ContractId,
        at: Timestep,
        kind: DegradationKind,
        units: f64,
        penalty: f64,
    ) {
        assert!(units >= 0.0 && penalty >= 0.0, "negative ledger entry");
        self.entries.push(LedgerEntry { contract, at, kind, units, penalty });
    }

    pub fn entries(&self) -> &[LedgerEntry] {
        &self.entries
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total units waived for one contract across all entries.
    pub fn waived_units(&self, contract: ContractId) -> f64 {
        self.entries.iter().filter(|e| e.contract == contract).map(|e| e.units).sum()
    }

    /// Number of distinct contracts with at least one entry.
    pub fn violated_contracts(&self) -> usize {
        let mut ids: Vec<usize> = self.entries.iter().map(|e| e.contract.0).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }

    /// Sum of all booked penalties.
    pub fn total_penalty(&self) -> f64 {
        self.entries.iter().map(|e| e.penalty).sum()
    }

    /// `(shed, relaxed)` entry counts.
    pub fn counts(&self) -> (usize, usize) {
        let shed = self.entries.iter().filter(|e| e.kind == DegradationKind::Shed).count();
        (shed, self.entries.len() - shed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_accumulates_per_contract() {
        let mut l = ViolationLedger::new();
        assert!(l.is_empty());
        l.record(ContractId(2), 4, DegradationKind::Shed, 5.0, 10.0);
        l.record(ContractId(7), 4, DegradationKind::Relaxed, 1.5, 3.0);
        l.record(ContractId(2), 9, DegradationKind::Relaxed, 0.5, 1.0);
        assert_eq!(l.len(), 3);
        assert_eq!(l.violated_contracts(), 2);
        assert!((l.waived_units(ContractId(2)) - 5.5).abs() < 1e-12);
        assert!((l.waived_units(ContractId(7)) - 1.5).abs() < 1e-12);
        assert_eq!(l.waived_units(ContractId(0)), 0.0);
        assert!((l.total_penalty() - 14.0).abs() < 1e-12);
        assert_eq!(l.counts(), (1, 2));
    }

    #[test]
    fn entries_preserve_policy_order() {
        let mut l = ViolationLedger::new();
        l.record(ContractId(0), 1, DegradationKind::Shed, 1.0, 1.0);
        l.record(ContractId(1), 1, DegradationKind::Relaxed, 1.0, 1.0);
        let kinds: Vec<_> = l.entries().iter().map(|e| e.kind).collect();
        assert_eq!(kinds, vec![DegradationKind::Shed, DegradationKind::Relaxed]);
    }

    #[test]
    #[should_panic(expected = "negative ledger entry")]
    fn negative_units_rejected() {
        let mut l = ViolationLedger::new();
        l.record(ContractId(0), 0, DegradationKind::Shed, -1.0, 0.0);
    }
}
