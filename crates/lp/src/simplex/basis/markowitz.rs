//! Sparse Gaussian elimination with threshold-Markowitz pivot selection.
//!
//! Each elimination step picks a pivot entry `(r, j)` minimizing the
//! Markowitz fill bound `(rcount[r] − 1)·(ccount[j] − 1)` among entries
//! passing the stability ladder (see [`TAU`]). Row and column counts are
//! maintained incrementally; columns live in count-indexed candidate
//! buckets with lazily discarded stale entries, so each search touches
//! only a handful of columns (bounded by [`MAX_SEARCH`] once a candidate
//! exists, with an immediate stop on a fill-free `cost == 0` pivot).
//!
//! Elimination is right-looking: the pivot column becomes a column of
//! `L`, the pivot row's entries become a row of `U`, and every active
//! column crossing the pivot row is updated through a dense scatter
//! (stamp-validated, so clearing costs only the touched entries).
//!
//! Everything — bucket order, tie-breaks, fill pattern order — is a pure
//! function of the input columns, preserving the repo-wide bit-exact
//! determinism contract.

use super::{FactorError, Factorization, SparseCol};

/// Relative stability threshold: an entry is pivot-eligible only when its
/// magnitude is at least `TAU` times the largest magnitude in its active
/// column. Together with the absolute `pivot_tol` floor this forms the
/// tolerance ladder: `|v| > pivot_tol` guards singularity, `|v| ≥
/// TAU·colmax` bounds element growth per elimination step.
const TAU: f64 = 0.1;
/// Candidate columns examined per pivot search once at least one eligible
/// entry has been found (the Suhl–Suhl style bounded search).
const MAX_SEARCH: usize = 8;

pub(super) fn refactorize(
    f: &mut Factorization,
    columns: &[&SparseCol],
) -> Result<(), FactorError> {
    let m = f.m;
    debug_assert_eq!(columns.len(), m);

    // --- working copy of the basis, column-major over active rows --------
    let mut acol: Vec<Vec<(u32, f64)>> = columns.iter().map(|c| (*c).clone()).collect();
    let mut basis_nnz = 0u64;
    let mut ccount: Vec<u32> = vec![0; m];
    let mut rcount: Vec<u32> = vec![0; m];
    // Columns with a (structural) entry in each row. Entries are pushed
    // exactly once per (row, column) pair — at setup or at fill creation —
    // and never removed; consumers skip already-pivoted columns.
    let mut rows_cols: Vec<Vec<u32>> = vec![Vec::new(); m];
    for (j, col) in acol.iter().enumerate() {
        basis_nnz += col.len() as u64;
        ccount[j] = col.len() as u32;
        for &(r, _) in col {
            rcount[r as usize] += 1;
            rows_cols[r as usize].push(j as u32);
        }
    }

    // Count-indexed candidate buckets with lazy invalidation: a column is
    // re-pushed whenever its count changes; stale or duplicate entries are
    // dropped when a search encounters them.
    let mut bucket: Vec<Vec<u32>> = vec![Vec::new(); m + 1];
    for (j, &c) in ccount.iter().enumerate() {
        bucket[c as usize].push(j as u32);
    }

    let mut row_pivoted = vec![false; m];
    let mut col_pivoted = vec![false; m];
    // Per-slot outputs, keyed by original row / basis position until the
    // final remap into slot indices.
    let mut lraw: Vec<Vec<(u32, f64)>> = Vec::with_capacity(m); // (orig row, mult)
    let mut u_of_col: Vec<Vec<(u32, f64)>> = vec![Vec::new(); m]; // (slot, value)
    let mut udiag: Vec<f64> = Vec::with_capacity(m);
    let mut row_of_slot: Vec<u32> = Vec::with_capacity(m);
    let mut pos_of_slot: Vec<u32> = Vec::with_capacity(m);

    // Dense scatter scratch for the column updates, and a per-search seen
    // stamp for bucket deduplication.
    let mut work: Vec<f64> = vec![0.0; m];
    let mut mark: Vec<u32> = vec![0; m];
    let mut seen: Vec<u32> = vec![0; m];
    let mut pattern: Vec<u32> = Vec::new();
    let mut stamp: u32 = 0;
    let mut factor_nnz = m as u64; // the diagonal

    for step in 0..m {
        // --- pivot search ------------------------------------------------
        let sstamp = step as u32 + 1;
        let mut best: Option<(u64, u32, u32, f64)> = None; // (cost, col, row, val)
        let mut examined = 0usize;
        // Indexing (not iterating) is load-bearing here: `c` is the count
        // bucket being drained, compared against `ccount[j]` for staleness.
        #[allow(clippy::needless_range_loop)]
        'search: for c in 1..=m {
            let mut idx = 0;
            while idx < bucket[c].len() {
                let j = bucket[c][idx] as usize;
                if col_pivoted[j] || ccount[j] as usize != c || seen[j] == sstamp {
                    bucket[c].swap_remove(idx); // stale or duplicate
                    continue;
                }
                seen[j] = sstamp;
                idx += 1;
                // Examine column j: stability threshold relative to its
                // largest active entry, Markowitz cost from row counts.
                let colmax = acol[j].iter().fold(0.0f64, |a, &(_, v)| a.max(v.abs()));
                let thresh = TAU * colmax;
                let mut local: Option<(u64, u32, f64)> = None; // (cost, row, val)
                for &(r, v) in &acol[j] {
                    let av = v.abs();
                    if av <= f.pivot_tol || av < thresh {
                        continue;
                    }
                    let cost = (rcount[r as usize] as u64 - 1) * (c as u64 - 1);
                    let better = match local {
                        None => true,
                        Some((bc, br, _)) => cost < bc || (cost == bc && r < br),
                    };
                    if better {
                        local = Some((cost, r, v));
                    }
                }
                examined += 1;
                if let Some((cost, r, v)) = local {
                    // Strictly-smaller cost wins; ties keep the earlier
                    // candidate (lower count bucket / earlier in scan),
                    // which is deterministic by construction.
                    if best.as_ref().is_none_or(|&(bc, ..)| cost < bc) {
                        best = Some((cost, j as u32, r, v));
                    }
                    if cost == 0 {
                        break 'search; // fill-free pivot: optimal
                    }
                }
                if examined >= MAX_SEARCH && best.is_some() {
                    break 'search;
                }
            }
        }
        let Some((_, jp, rp, vp)) = best else {
            return Err(FactorError::Singular { position: step });
        };
        let (jp, rp) = (jp as usize, rp as usize);

        // --- eliminate ---------------------------------------------------
        col_pivoted[jp] = true;
        row_pivoted[rp] = true;
        row_of_slot.push(rp as u32);
        pos_of_slot.push(jp as u32);
        udiag.push(vp);

        // Pivot column → column of L (active rows only, scaled).
        let pivcol = std::mem::take(&mut acol[jp]);
        let mut lcol: Vec<(u32, f64)> = Vec::with_capacity(pivcol.len().saturating_sub(1));
        for &(i, v) in &pivcol {
            if i as usize != rp {
                lcol.push((i, v / vp));
                // Row i lost its entry in the pivot column.
                rcount[i as usize] -= 1;
            }
        }
        factor_nnz += lcol.len() as u64;

        // Right-looking update of every active column crossing the pivot
        // row: column j gains `-l·u` at each L entry, loses its pivot-row
        // entry (which becomes a row-`step` entry of U).
        let touched_cols = std::mem::take(&mut rows_cols[rp]);
        for &jc in &touched_cols {
            let j = jc as usize;
            if col_pivoted[j] {
                continue;
            }
            stamp += 1;
            pattern.clear();
            let mut u = 0.0;
            for &(i, v) in &acol[j] {
                if i as usize == rp {
                    u = v;
                } else {
                    work[i as usize] = v;
                    mark[i as usize] = stamp;
                    pattern.push(i);
                }
            }
            if u != 0.0 {
                u_of_col[j].push((step as u32, u));
                factor_nnz += 1;
                for &(i, l) in &lcol {
                    let ii = i as usize;
                    if mark[ii] == stamp {
                        work[ii] -= l * u;
                    } else {
                        // Fill-in: a brand-new structural entry.
                        mark[ii] = stamp;
                        work[ii] = -l * u;
                        pattern.push(i);
                        rows_cols[ii].push(jc);
                        rcount[ii] += 1;
                    }
                }
            }
            // Gather back in pattern order (original entries then fills —
            // deterministic), and re-bucket under the new count.
            let mut newcol = std::mem::take(&mut acol[j]);
            newcol.clear();
            newcol.extend(pattern.iter().map(|&i| (i, work[i as usize])));
            ccount[j] = newcol.len() as u32;
            acol[j] = newcol;
            bucket[ccount[j] as usize].push(jc);
        }
        lraw.push(lcol);
    }

    // --- remap into slot space and install -------------------------------
    let mut slot_of_row = vec![0u32; m];
    for (k, &r) in row_of_slot.iter().enumerate() {
        slot_of_row[r as usize] = k as u32;
    }
    let mut slot_of_pos = vec![0u32; m];
    for (k, &p) in pos_of_slot.iter().enumerate() {
        slot_of_pos[p as usize] = k as u32;
    }
    f.lcols.clear();
    f.lcols.extend(
        lraw.into_iter().map(|col| {
            col.into_iter().map(|(i, l)| (slot_of_row[i as usize], l)).collect::<Vec<_>>()
        }),
    );
    f.ucols.clear();
    f.ucols.resize(m, Vec::new());
    for (j, ucol) in u_of_col.iter_mut().enumerate() {
        f.ucols[slot_of_pos[j] as usize] = std::mem::take(ucol);
    }
    f.urows.clear();
    f.urows.resize(m, Vec::new());
    for s in 0..m {
        // Split borrow: the transpose writes into rows strictly below s.
        let (rows, cols) = (&mut f.urows, &f.ucols);
        for &(k, u) in &cols[s] {
            rows[k as usize].push((s as u32, u));
        }
    }
    f.udiag = udiag;
    f.perm.clear();
    f.perm.extend(0..m as u32);
    f.ord.clear();
    f.ord.extend(0..m as u32);
    f.row_of_slot = row_of_slot;
    f.slot_of_row = slot_of_row;
    f.pos_of_slot = pos_of_slot;
    f.slot_of_pos = slot_of_pos;
    f.etas.clear();
    f.updates = 0;
    f.stats.refactors += 1;
    f.stats.basis_nnz += basis_nnz;
    f.stats.factor_nnz += factor_nnz;
    Ok(())
}
