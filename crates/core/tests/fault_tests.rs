//! Robustness suite for the §4.4 fault model: randomized fault plans must
//! never let a planned allocation exceed *degraded* capacity, and every
//! admitted guarantee must either be met at execution or appear in the
//! violation ledger with a penalty — no silent drops, no panics.

use pretium_core::{ContractId, Pretium, PretiumConfig, PriceBump, RequestParams};
use pretium_net::{EdgeId, LinkCost, Network, Region, TimeGrid, UsageTracker};
use pretium_workload::RequestId;
use rand::rngs::StdRng;
use rand::{derive_seed, Rng, SeedableRng};

fn params(
    id: u64,
    src: u32,
    dst: u32,
    demand: f64,
    start: usize,
    deadline: usize,
) -> RequestParams {
    RequestParams {
        id: RequestId(id),
        src: pretium_net::NodeId(src),
        dst: pretium_net::NodeId(dst),
        demand,
        arrival: start,
        start,
        deadline,
    }
}

/// Two disjoint 2-hop routes S -> T (4 edges, capacity 10 each).
fn two_path_net() -> Network {
    let mut net = Network::new();
    let s = net.add_node("S", Region::NorthAmerica);
    let m1 = net.add_node("M1", Region::NorthAmerica);
    let m2 = net.add_node("M2", Region::NorthAmerica);
    let t = net.add_node("T", Region::NorthAmerica);
    net.add_edge(s, m1, 10.0, LinkCost::owned());
    net.add_edge(m1, t, 10.0, LinkCost::owned());
    net.add_edge(s, m2, 10.0, LinkCost::owned());
    net.add_edge(m2, t, 10.0, LinkCost::owned());
    net
}

/// No reservation may exceed the *degraded* sellable capacity of its link —
/// at any timestep, under any fault schedule. Plans are backed by
/// reservations (audited), so this is the "planned allocation respects
/// degraded capacity" property.
fn assert_no_oversubscription(system: &Pretium, when: &str) {
    let state = system.state();
    for e in system.network().edge_ids() {
        for t in 0..state.horizon() {
            let reserved = state.reserved(e, t);
            let sellable = state.sellable_capacity(e, t);
            assert!(
                reserved <= sellable + 1e-6,
                "{when}: edge {e:?} t={t}: reserved {reserved} > degraded sellable {sellable}"
            );
        }
    }
}

/// Property test: randomized requests + randomized fault plans (partial and
/// total outages, random starts and durations, with recoveries). For every
/// trial, every timestep's reservations respect degraded capacity, the run
/// never panics or errors, and at the end each admitted guarantee is met or
/// ledgered — exactly once, with units matching the contract's waiver.
#[test]
fn randomized_fault_plans_degrade_gracefully() {
    let horizon = 8;
    let grid = TimeGrid::new(4, 30);
    for trial in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(derive_seed(rand::DEFAULT_SEED, "fault-prop") ^ trial);
        let net = two_path_net();
        // audit: true — the release-built CI run has no debug-assertions
        // auditor; the invariant sweep this test asserts on must be explicit.
        let cfg =
            PretiumConfig { highpri_fraction: 0.0, k_paths: 2, audit: true, ..Default::default() };
        let mut system = Pretium::new(net.clone(), grid, horizon, cfg);
        let mut usage = UsageTracker::new(net.num_edges(), horizon);

        // Random request stream: arrivals over the first 6 steps.
        let n_req = rng.gen_range(3usize..=6);
        let mut arrivals: Vec<(usize, RequestParams)> = (0..n_req)
            .map(|i| {
                let start = rng.gen_range(0usize..6);
                let deadline = (start + rng.gen_range(1usize..=3)).min(horizon - 1);
                let demand = rng.gen_range(3.0..15.0);
                (start, params(i as u64, 0, 3, demand, start, deadline))
            })
            .collect();
        arrivals.sort_by_key(|(start, p)| (*start, p.id.0));

        // Random fault schedule: 1-2 capacity events with recoveries.
        let n_faults = rng.gen_range(1usize..=2);
        let faults: Vec<(usize, usize, EdgeId, f64)> = (0..n_faults)
            .map(|_| {
                let at = rng.gen_range(1usize..6);
                let until = (at + rng.gen_range(1usize..=3)).min(horizon);
                let edge = EdgeId(rng.gen_range(0u32..net.num_edges() as u32));
                let fraction = if rng.gen_bool(0.5) { 1.0 } else { rng.gen_range(0.3..0.9) };
                (at, until, edge, fraction)
            })
            .collect();

        for now in 0..horizon {
            let mut capacity_event = false;
            for &(at, until, edge, fraction) in &faults {
                if at == now {
                    system.inject_capacity_loss(edge, now, horizon, fraction);
                    capacity_event = true;
                }
                if until == now {
                    system.restore_capacity(edge, now, horizon);
                    capacity_event = true;
                }
            }
            // §4.2: a network event triggers an immediate re-optimization,
            // so admissions never quote against stale reservations.
            if capacity_event {
                system.run_sam(now, &usage).unwrap();
            }
            for (start, p) in &arrivals {
                if *start == now {
                    let value = rng.gen_range(2.0..8.0);
                    system.admit_one(p, |menu| menu.optimal_purchase(value, p.demand));
                }
            }
            system.run_sam(now, &usage).unwrap_or_else(|e| {
                panic!("trial {trial}: SAM must degrade gracefully, got {e:?}")
            });
            assert_no_oversubscription(&system, &format!("trial {trial} after SAM t={now}"));
            system.execute_step(now, &mut usage);
            assert_no_oversubscription(&system, &format!("trial {trial} after exec t={now}"));
        }

        // Ledger accounting: every guarantee met, or waived with matching
        // ledger entries — never silently dropped.
        let ledger = system.ledger();
        for (i, c) in system.contracts().iter().enumerate() {
            if c.guarantee_met() {
                continue;
            }
            assert!(
                c.guarantee_accounted(),
                "trial {trial}: contract {i} silently dropped: delivered {} + waived {} < {}",
                c.delivered,
                c.waived,
                c.guaranteed
            );
            let booked = ledger.waived_units(ContractId(i));
            assert!(
                (booked - c.waived).abs() < 1e-6,
                "trial {trial}: contract {i}: ledger {booked} != waived {}",
                c.waived
            );
            assert!(booked > 0.0, "trial {trial}: missed guarantee with empty ledger");
        }
        // No usage beyond true capacity, and a clean audit trail.
        assert!(usage.capacity_violations(&net, 1e-6).is_empty());
        let aud = system.auditor().expect("debug builds audit");
        assert!(aud.is_clean(), "trial {trial}: {:?}", aud.violations());
    }
}

/// Crafted worst case for the fallback chain (satellite of the §4.4 work):
/// a single-link network where a total outage makes *both* outstanding
/// guarantees uncoverable at once. Rerouting is impossible, so SAM must
/// shed the lowest-λ guarantee wholly, then relax the survivor — in that
/// order — and the pool must never pass through an oversubscribed state.
#[test]
fn infeasible_fallback_sheds_lowest_lambda_then_relaxes() {
    let mut net = Network::new();
    let a = net.add_node("A", Region::NorthAmerica);
    let b = net.add_node("B", Region::NorthAmerica);
    net.add_edge(a, b, 10.0, LinkCost::owned());
    let e = net.find_edge(a, b).unwrap();
    let grid = TimeGrid::new(4, 30);
    let horizon = 4;
    let cfg = PretiumConfig {
        highpri_fraction: 0.0,
        bump: PriceBump::disabled(),
        k_paths: 1,
        // The final audit-clean assertion needs the auditor in release
        // builds too (CI runs this suite --release).
        audit: true,
        ..Default::default()
    };
    let mut system = Pretium::new(net.clone(), grid, horizon, cfg);
    let mut usage = UsageTracker::new(net.num_edges(), horizon);
    // Ascending step prices: the menu fills cheap steps first, so the two
    // buyers end at different marginal prices (λ).
    for t in 0..horizon {
        system.set_price(e, t, 1.0 + t as f64);
    }
    // R0 buys 12: 10 @ step0 + 2 @ step1 -> λ = 2 (the cheap buyer).
    let p0 = params(0, 0, 1, 12.0, 0, 3);
    let r0 = system.admit_one(&p0, |_| 12.0).1.expect("R0 admitted");
    // R1 buys 12: 8 @ step1 + 4 @ step2 -> λ = 3 (values it more).
    let p1 = params(1, 0, 1, 12.0, 0, 3);
    let r1 = system.admit_one(&p1, |_| 12.0).1.expect("R1 admitted");
    let (lam0, lam1) = (system.contract(r0).lambda, system.contract(r1).lambda);
    assert!(lam0 < lam1, "test setup: λ0={lam0} must be below λ1={lam1}");

    // Step 0 executes the accept-time plans as booked (no SAM reshuffle):
    // R0 moves its 10 cheap units.
    system.execute_step(0, &mut usage);
    assert!(system.contract(r0).delivered > 9.0);

    // Total outage for every remaining step: nothing can be rerouted.
    system.inject_capacity_loss(e, 1, horizon, 1.0);
    system.run_sam(1, &usage).expect("fallback must not error");
    assert_no_oversubscription(&system, "after fallback SAM");

    // The chain: R0 (lowest λ) shed first, then R1 relaxed.
    let ledger = system.ledger();
    assert_eq!(ledger.len(), 2, "{:?}", ledger.entries());
    let first = &ledger.entries()[0];
    let second = &ledger.entries()[1];
    assert_eq!(first.contract, r0);
    assert_eq!(first.kind.name(), "shed");
    let c0 = system.contract(r0);
    assert!(
        (first.units - (c0.guaranteed - c0.delivered)).abs() < 1e-6,
        "shed must waive R0's whole outstanding guarantee: {first:?} vs {c0:?}"
    );
    assert!((first.penalty - lam0 * first.units).abs() < 1e-6);
    assert_eq!(second.contract, r1);
    assert_eq!(second.kind.name(), "relaxed");
    assert!((second.units - 12.0).abs() < 1e-6, "R1 had its whole guarantee outstanding");
    assert!((second.penalty - lam1 * second.units).abs() < 1e-6);

    // Finish the run: no panics, promises accounted, audit clean.
    for now in 1..horizon {
        if now > 1 {
            system.run_sam(now, &usage).unwrap();
        }
        system.execute_step(now, &mut usage);
    }
    for &id in &[r0, r1] {
        let c = system.contract(id);
        assert!(!c.guarantee_met(), "{id:?} cannot meet its promise through a dead link");
        assert!(c.guarantee_accounted(), "{id:?}: waiver must cover the shortfall");
    }
    let t = system.telemetry();
    assert_eq!(t.guarantees_shed, 1);
    assert_eq!(t.guarantees_relaxed, 1);
    assert!(t.sam_degradations >= 1);
    let aud = system.auditor().unwrap();
    assert!(aud.is_clean(), "{:?}", aud.violations());
}

/// Solver iteration-limit pressure: SAM keeps the previous (still feasible)
/// plan instead of erroring when the LP is cut off mid-solve.
#[test]
fn solver_pressure_keeps_previous_plan() {
    let mut net = Network::new();
    let a = net.add_node("A", Region::NorthAmerica);
    let b = net.add_node("B", Region::NorthAmerica);
    net.add_edge(a, b, 10.0, LinkCost::owned());
    let grid = TimeGrid::new(4, 30);
    let horizon = 4;
    // audit: true so the closing audit-clean assertion holds in release.
    let cfg =
        PretiumConfig { highpri_fraction: 0.0, k_paths: 1, audit: true, ..Default::default() };
    let mut system = Pretium::new(net.clone(), grid, horizon, cfg);
    let mut usage = UsageTracker::new(net.num_edges(), horizon);
    let p = params(0, 0, 1, 20.0, 0, 3);
    let id = system.admit_one(&p, |_| 20.0).1.expect("admitted");
    system.execute_step(0, &mut usage);
    let plan_before = system.contract(id).plan.clone();

    // One simplex iteration is never enough for a fresh multi-step solve
    // (the first SAM call builds its session cold).
    system.set_solver_pressure(Some(1));
    system.run_sam(1, &usage).expect("iteration limit must degrade, not error");
    assert_eq!(system.contract(id).plan, plan_before, "previous plan kept under pressure");
    assert!(system.telemetry().sam_degradations >= 1);

    // Pressure lifts; the run completes and the guarantee is met.
    system.set_solver_pressure(None);
    for now in 1..horizon {
        if now > 1 {
            system.run_sam(now, &usage).unwrap();
        }
        system.execute_step(now, &mut usage);
    }
    let c = system.contract(id);
    assert!(c.guarantee_met(), "delivered {} of {}", c.delivered, c.guaranteed);
    assert!(system.auditor().unwrap().is_clean());
}

/// PC freezes prices for windows contaminated by a fault: the recomputation
/// is skipped and the projected prices stay what they were.
#[test]
fn pc_freezes_prices_after_contaminated_window() {
    let mut net = Network::new();
    let a = net.add_node("A", Region::NorthAmerica);
    let b = net.add_node("B", Region::NorthAmerica);
    net.add_edge(a, b, 10.0, LinkCost::owned());
    let e = net.find_edge(a, b).unwrap();
    let grid = TimeGrid::new(4, 30);
    let horizon = 8;
    let cfg = PretiumConfig { highpri_fraction: 0.0, k_paths: 1, ..Default::default() };
    let mut system = Pretium::new(net.clone(), grid, horizon, cfg);
    let mut usage = UsageTracker::new(net.num_edges(), horizon);
    let p = params(0, 0, 1, 30.0, 0, 3);
    system.admit_one(&p, |menu| menu.optimal_purchase(5.0, p.demand));
    let price_before: Vec<f64> = (4..8).map(|t| system.state().price(e, t)).collect();
    for now in 0..4 {
        if now == 2 {
            // Mid-window blip; recovered by the boundary, but the window's
            // observations are contaminated.
            system.inject_capacity_loss(e, 2, 3, 0.5);
            system.restore_capacity(e, 3, horizon);
        }
        system.run_sam(now, &usage).unwrap();
        system.execute_step(now, &mut usage);
    }
    system.run_pc(4).unwrap();
    assert_eq!(system.telemetry().pc_freezes, 1, "window 0 was contaminated");
    let price_after: Vec<f64> = (4..8).map(|t| system.state().price(e, t)).collect();
    assert_eq!(price_before, price_after, "frozen prices must not move");
}
