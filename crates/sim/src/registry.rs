//! Unified experiment registry: every table/figure of the paper's §6
//! evaluation as one [`Experiment`] behind one API.
//!
//! An experiment declares its sweep grid as **data** — a [`Sweep`] of axis
//! points × schemes, expanded into [`CellSpec`]s — and the parallel engine
//! ([`crate::par`]) executes the cells on any number of workers. The
//! pipeline is:
//!
//! ```text
//! Experiment::cells(seed)          // declare the grid (deterministic order)
//!   -> par::run_cells(jobs, ..)    // execute anywhere, any order
//!   -> Experiment::merge(..)       // reassemble in declaration order
//! ```
//!
//! Determinism contract: a cell's result is a pure function of its
//! [`CellSpec`] — the spec carries a seed derived as
//! `derive_seed(run_seed, cell_label)`, and scenario configs bake their
//! seeds in at declaration time — so the merged output is bit-identical
//! across `--jobs` counts. Within one sweep, all schemes at one axis point
//! share the *same* world (same config seed): schemes must be compared on
//! identical inputs, so world seeds split per axis point, not per scheme.
//!
//! [`registry`] returns the full suite in the paper's order;
//! `bin/reproduce` enumerates it instead of hard-coding the figure list.

use crate::experiments::{self, ModuleRuntimes, LOAD_FACTORS};
use crate::faults::{FaultPlan, FaultPlanConfig};
use crate::par::{self, Cell};
use crate::report::{render_figure, render_table, Series};
use crate::runner::{run_pretium, run_pretium_faulted, Variant};
use crate::scenario::ScenarioConfig;
use pretium_baselines as baselines;
use pretium_baselines::{OfflineConfig, Outcome, PricedOfflineConfig};
use pretium_core::{PoolTelemetry, PretiumConfig};
use pretium_lp::SolveError;
use pretium_workload::ValueDist;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Cell model.
// ---------------------------------------------------------------------------

/// Scale at which an experiment builds its worlds: the full evaluation
/// topology of §6.1, or the 6-node tiny scale used by tests and the CI
/// smoke run (`reproduce --tiny`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    Evaluation,
    Tiny,
}

impl Scale {
    /// The scenario config for this scale at one `(seed, load)` point.
    pub fn config(self, seed: u64, load: f64) -> ScenarioConfig {
        match self {
            Scale::Evaluation => ScenarioConfig::evaluation(seed, load),
            Scale::Tiny => {
                let mut cfg = ScenarioConfig::tiny(seed);
                cfg.load_factor = load;
                cfg
            }
        }
    }
}

/// Which §6.1 scheme a sweep cell solves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// The offline OPT LP (the welfare upper bound everything is plotted
    /// against).
    Opt,
    /// Online Pretium, in one of its Figure-11 ablation variants.
    Pretium(Variant),
    NoPrices,
    RegionOracle,
    PeakOracle,
    VcgLike,
}

impl Scheme {
    pub fn label(self) -> &'static str {
        match self {
            Scheme::Opt => "OPT",
            Scheme::Pretium(v) => v.label(),
            Scheme::NoPrices => "NoPrices",
            Scheme::RegionOracle => "RegionOracle",
            Scheme::PeakOracle => "PeakOracle",
            Scheme::VcgLike => "VCGLike",
        }
    }
}

/// Absolute metrics of one scheme on one scenario; relativization (to OPT,
/// to RegionOracle) happens at merge time where all cells are visible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Metrics {
    pub welfare: f64,
    pub profit: f64,
    pub completion: f64,
}

/// Absolute robustness metrics of one faulted Pretium run (the
/// availability-sweep cells). Welfare relativization to the healthy
/// (rate 0) point happens at merge time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RobustnessMetrics {
    pub welfare: f64,
    /// Admitted contracts that carried a nonzero guarantee.
    pub guaranteed: u64,
    /// Guaranteed contracts whose original promise was missed (every one
    /// must be ledgered — the runner's audit enforces it).
    pub violations: u64,
    /// Ledger composition: guarantees shed wholly vs relaxed partially.
    pub shed: u64,
    pub relaxed: u64,
    /// Total λ-weighted penalty booked in the violation ledger.
    pub penalty: f64,
    /// Timesteps SAM ran against a degraded topology.
    pub degraded_steps: u64,
    /// PC runs skipped because the look-back window was contaminated.
    pub pc_freezes: u64,
    /// Planned units moved off their slot while a fault was active.
    pub rerouted_units: f64,
}

impl RobustnessMetrics {
    /// Fraction of guaranteed contracts whose promise was missed.
    pub fn violation_rate(&self) -> f64 {
        if self.guaranteed == 0 {
            return 0.0;
        }
        self.violations as f64 / self.guaranteed as f64
    }
}

/// What one cell carries into `run_cell`.
#[derive(Debug, Clone)]
pub enum CellPayload {
    /// One scheme solve on one scenario (the sweep-grid case).
    Scheme { config: Box<ScenarioConfig>, scheme: Scheme, cost_scale: f64 },
    /// One faulted Pretium run at a given failure rate (the availability
    /// sweep). The fault plan is derived from the cell seed at run time.
    Robustness { config: Box<ScenarioConfig>, failure_rate: f64 },
    /// Experiment-defined work; `run_cell` dispatches on the cell label
    /// (single-cell figures like the Figure 1 CDF).
    Free,
}

/// One declared unit of parallel work.
#[derive(Debug, Clone)]
pub struct CellSpec {
    /// Unique `experiment/point/scheme` label: names the cell in panics
    /// and telemetry, and feeds per-cell seed derivation.
    pub label: String,
    /// Seed for cell-local randomness, derived as
    /// `derive_seed(run_seed, label)` — a pure function of the cell, never
    /// of scheduling.
    pub seed: u64,
    /// Axis coordinate the cell contributes to.
    pub x: f64,
    pub payload: CellPayload,
}

/// What one cell computed.
#[derive(Debug, Clone, PartialEq)]
pub enum CellOut {
    Metrics(Metrics),
    Robustness(RobustnessMetrics),
    Text(String),
}

impl CellOut {
    fn metrics(&self) -> &Metrics {
        match self {
            CellOut::Metrics(m) => m,
            _ => unreachable!("sweep merge over a non-metrics cell"),
        }
    }

    fn robustness(&self) -> &RobustnessMetrics {
        match self {
            CellOut::Robustness(m) => m,
            _ => unreachable!("robustness merge over a non-robustness cell"),
        }
    }

    fn into_text(self) -> String {
        match self {
            CellOut::Text(s) => s,
            _ => unreachable!("text merge over a non-text cell"),
        }
    }
}

/// Merged output of one experiment.
#[derive(Debug, Clone, PartialEq)]
pub enum ExperimentResult {
    /// A figure: named series over one x axis.
    Figure { title: String, x_label: String, series: Vec<Series> },
    /// A two-column table.
    Table { title: String, rows: Vec<(String, String)> },
    /// A pre-rendered block.
    Text(String),
}

impl ExperimentResult {
    /// Render as the plain-text block `reproduce` prints.
    pub fn render(&self) -> String {
        match self {
            ExperimentResult::Figure { title, x_label, series } => {
                render_figure(title, x_label, series)
            }
            ExperimentResult::Table { title, rows } => render_table(title, rows),
            ExperimentResult::Text(s) => s.clone(),
        }
    }

    /// The series of a figure result (None for tables/text).
    pub fn series(&self) -> Option<&[Series]> {
        match self {
            ExperimentResult::Figure { series, .. } => Some(series),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// The Experiment trait.
// ---------------------------------------------------------------------------

/// One table/figure of the evaluation: a declared cell grid plus the merge
/// that reassembles cell results — in declaration order, regardless of
/// completion order — into the figure's series or table rows.
pub trait Experiment: Send + Sync {
    /// Registry key (`fig6`, `table4`, ...); what `reproduce` matches
    /// against.
    fn name(&self) -> &'static str;

    /// Alternate names that select this experiment (`fig14` -> `fig13`).
    fn aliases(&self) -> &'static [&'static str] {
        &[]
    }

    /// Declare the sweep grid. Order is the declaration order `merge`
    /// receives results in; it must be deterministic for a given seed.
    fn cells(&self, seed: u64) -> Vec<CellSpec>;

    /// Execute one cell. Must be a pure function of the spec (plus the
    /// experiment's own immutable configuration).
    fn run_cell(&self, cell: &CellSpec) -> Result<CellOut, SolveError>;

    /// Reassemble cell outputs (in declaration order) into the final
    /// figure/table.
    fn merge(&self, cells: &[CellSpec], outs: Vec<CellOut>) -> ExperimentResult;
}

/// Solve one `(scenario, scheme)` cell into absolute [`Metrics`].
pub fn run_scheme_cell(
    config: &ScenarioConfig,
    scheme: Scheme,
    cost_scale: f64,
) -> Result<Metrics, SolveError> {
    let scenario = config.build();
    let off = OfflineConfig { cost_scale, ..Default::default() };
    let priced = PricedOfflineConfig { cost_scale, ..Default::default() };
    let outcome: Outcome = match scheme {
        Scheme::Opt => baselines::opt(
            &scenario.net,
            &scenario.grid,
            scenario.horizon,
            &scenario.requests,
            &off,
        )?,
        Scheme::Pretium(variant) => {
            let cfg = PretiumConfig { cost_scale, ..Default::default() };
            run_pretium(&scenario, cfg, variant)?.outcome
        }
        Scheme::NoPrices => baselines::no_prices(
            &scenario.net,
            &scenario.grid,
            scenario.horizon,
            &scenario.requests,
            &off,
        )?,
        Scheme::RegionOracle => {
            baselines::region_oracle(
                &scenario.net,
                &scenario.grid,
                scenario.horizon,
                &scenario.requests,
                &priced,
            )?
            .outcome
        }
        Scheme::PeakOracle => {
            let peaks = baselines::peak_steps_from_trace(&scenario.trace, &scenario.grid);
            baselines::peak_oracle(
                &scenario.net,
                &scenario.grid,
                scenario.horizon,
                &scenario.requests,
                &peaks,
                &priced,
            )?
            .outcome
        }
        Scheme::VcgLike => baselines::vcg_like(
            &scenario.net,
            &scenario.grid,
            scenario.horizon,
            &scenario.requests,
            &priced,
        )?,
    };
    Ok(Metrics {
        welfare: outcome.welfare(&scenario.requests, &scenario.net, &scenario.grid, cost_scale),
        profit: outcome.profit(&scenario.net, &scenario.grid, cost_scale),
        completion: outcome.completion_rate(&scenario.requests),
    })
}

/// Solve one faulted Pretium run: generate the fault plan from the cell
/// seed, replay it, and distill the run into [`RobustnessMetrics`].
pub fn run_robustness_cell(
    config: &ScenarioConfig,
    failure_rate: f64,
    cell_seed: u64,
) -> Result<RobustnessMetrics, SolveError> {
    let scenario = config.build();
    let fault_cfg =
        FaultPlanConfig::availability(rand::derive_seed(cell_seed, "faults"), failure_rate);
    let plan = FaultPlan::for_scenario(&scenario, &fault_cfg);
    let run = run_pretium_faulted(&scenario, PretiumConfig::default(), Variant::Full, &plan)?;
    let guaranteed_contracts = || run.system.contracts().iter().filter(|c| c.guaranteed > 1e-9);
    let violations = guaranteed_contracts().filter(|c| !c.guarantee_met()).count() as u64;
    let ledger = run.system.ledger();
    let (shed, relaxed) = ledger.counts();
    let t = run.telemetry();
    Ok(RobustnessMetrics {
        welfare: run.outcome.welfare(&scenario.requests, &scenario.net, &scenario.grid, 1.0),
        guaranteed: guaranteed_contracts().count() as u64,
        violations,
        shed: shed as u64,
        relaxed: relaxed as u64,
        penalty: ledger.total_penalty(),
        degraded_steps: t.degraded_steps,
        pc_freezes: t.pc_freezes,
        rerouted_units: t.rerouted_units,
    })
}

// ---------------------------------------------------------------------------
// The Sweep builder.
// ---------------------------------------------------------------------------

/// A declarative sweep: axis points × schemes, expanded into cells.
///
/// `P` is the axis-point payload — `f64` for the load and cost-scale
/// axes, `(f64, ValueKind)` for the Figure 13/14 value-distribution grid.
/// Axes are data here, not copied loops: an experiment lists its points
/// and schemes once, and `cells()` produces the cross product in
/// declaration order (points outer, schemes inner).
pub struct Sweep<P> {
    pub experiment: &'static str,
    pub scale: Scale,
    pub points: Vec<P>,
    pub schemes: Vec<Scheme>,
    /// `(point label, axis coordinate)` of one point.
    pub describe: fn(&P) -> (String, f64),
    /// Scenario at one point (seed baked in, shared by every scheme at the
    /// point — schemes must replay identical worlds to be comparable).
    pub configure: fn(Scale, u64, &P) -> ScenarioConfig,
    /// §6.2 cost multiplier at one point (1.0 everywhere else).
    pub cost_scale: fn(&P) -> f64,
}

fn unit_cost<P>(_: &P) -> f64 {
    1.0
}

impl<P> Sweep<P> {
    pub fn new(
        experiment: &'static str,
        scale: Scale,
        points: Vec<P>,
        schemes: Vec<Scheme>,
        describe: fn(&P) -> (String, f64),
        configure: fn(Scale, u64, &P) -> ScenarioConfig,
    ) -> Self {
        Sweep { experiment, scale, points, schemes, describe, configure, cost_scale: unit_cost }
    }

    pub fn with_cost_scale(mut self, f: fn(&P) -> f64) -> Self {
        self.cost_scale = f;
        self
    }

    /// Expand the grid: one cell per `(point, scheme)`, in declaration
    /// order.
    pub fn cells(&self, seed: u64) -> Vec<CellSpec> {
        let mut cells = Vec::with_capacity(self.points.len() * self.schemes.len());
        for p in &self.points {
            let (point_label, x) = (self.describe)(p);
            let config = (self.configure)(self.scale, seed, p);
            let cost_scale = (self.cost_scale)(p);
            for &scheme in &self.schemes {
                let label = format!("{}/{}/{}", self.experiment, point_label, scheme.label());
                cells.push(CellSpec {
                    seed: rand::derive_seed(seed, &label),
                    label,
                    x,
                    payload: CellPayload::Scheme {
                        config: Box::new(config.clone()),
                        scheme,
                        cost_scale,
                    },
                });
            }
        }
        cells
    }

    /// Execute one of this sweep's cells.
    pub fn run_cell(&self, cell: &CellSpec) -> Result<CellOut, SolveError> {
        match &cell.payload {
            CellPayload::Scheme { config, scheme, cost_scale } => {
                run_scheme_cell(config, *scheme, *cost_scale).map(CellOut::Metrics)
            }
            _ => unreachable!("sweep experiments declare scheme cells only"),
        }
    }

    /// Iterate merge results chunked per axis point: for each point, the
    /// slice of `(cell, out)` pairs in scheme-declaration order.
    fn per_point<'a>(
        &self,
        cells: &'a [CellSpec],
        outs: &'a [CellOut],
    ) -> impl Iterator<Item = (f64, &'a [CellSpec], &'a [CellOut])> {
        let k = self.schemes.len().max(1);
        cells
            .chunks(k)
            .zip(outs.chunks(k))
            .map(|(c, o)| (c[0].x, c, o))
            .collect::<Vec<_>>()
            .into_iter()
    }
}

/// Append `(x, y)` to the series called `name`, creating it on first use
/// (series appear in first-contribution order, which is declaration
/// order).
fn push_point(series: &mut Vec<Series>, name: &str, x: f64, y: f64) {
    match series.iter_mut().find(|s| s.name == name) {
        Some(s) => s.points.push((x, y)),
        None => series.push(Series::new(name, vec![(x, y)])),
    }
}

// ---------------------------------------------------------------------------
// Sweep experiments (figures 6, 8, 9, 11, 12, 13/14).
// ---------------------------------------------------------------------------

/// Figure 6: welfare relative to OPT vs load factor, for every scheme.
pub struct Fig6Welfare {
    sweep: Sweep<f64>,
}

fn load_point(p: &f64) -> (String, f64) {
    (format!("load={p}"), *p)
}

fn load_config(scale: Scale, seed: u64, p: &f64) -> ScenarioConfig {
    scale.config(seed, *p)
}

impl Fig6Welfare {
    pub fn new(scale: Scale, loads: &[f64]) -> Self {
        let schemes = vec![
            Scheme::Opt,
            Scheme::Pretium(Variant::Full),
            Scheme::NoPrices,
            Scheme::RegionOracle,
            Scheme::PeakOracle,
            Scheme::VcgLike,
        ];
        Fig6Welfare {
            sweep: Sweep::new("fig6", scale, loads.to_vec(), schemes, load_point, load_config),
        }
    }
}

impl Experiment for Fig6Welfare {
    fn name(&self) -> &'static str {
        "fig6"
    }

    fn cells(&self, seed: u64) -> Vec<CellSpec> {
        self.sweep.cells(seed)
    }

    fn run_cell(&self, cell: &CellSpec) -> Result<CellOut, SolveError> {
        self.sweep.run_cell(cell)
    }

    fn merge(&self, cells: &[CellSpec], outs: Vec<CellOut>) -> ExperimentResult {
        let mut series: Vec<Series> = Vec::new();
        for (x, _, point_outs) in self.sweep.per_point(cells, &outs) {
            let opt = point_outs[0].metrics().welfare;
            for (scheme, out) in self.sweep.schemes[1..].iter().zip(&point_outs[1..]) {
                push_point(&mut series, scheme.label(), x, out.metrics().welfare / opt);
            }
        }
        ExperimentResult::Figure {
            title: "Figure 6: welfare relative to OPT".into(),
            x_label: "load".into(),
            series,
        }
    }
}

/// Figure 8: provider profit relative to RegionOracle vs load factor.
/// When RegionOracle's profit is near zero the ratio is meaningless, so
/// the denominator is floored at 1% of OPT welfare (ratios then read as
/// "profit in units of 1% of achievable welfare").
pub struct Fig8Profit {
    sweep: Sweep<f64>,
}

impl Fig8Profit {
    pub fn new(scale: Scale, loads: &[f64]) -> Self {
        let schemes = vec![
            Scheme::Opt,
            Scheme::RegionOracle,
            Scheme::Pretium(Variant::Full),
            Scheme::PeakOracle,
            Scheme::VcgLike,
        ];
        Fig8Profit {
            sweep: Sweep::new("fig8", scale, loads.to_vec(), schemes, load_point, load_config),
        }
    }
}

impl Experiment for Fig8Profit {
    fn name(&self) -> &'static str {
        "fig8"
    }

    fn cells(&self, seed: u64) -> Vec<CellSpec> {
        self.sweep.cells(seed)
    }

    fn run_cell(&self, cell: &CellSpec) -> Result<CellOut, SolveError> {
        self.sweep.run_cell(cell)
    }

    fn merge(&self, cells: &[CellSpec], outs: Vec<CellOut>) -> ExperimentResult {
        let mut series: Vec<Series> = Vec::new();
        for (x, _, point_outs) in self.sweep.per_point(cells, &outs) {
            let floor = (point_outs[0].metrics().welfare.abs() * 0.01).max(1.0);
            let base = point_outs[1].metrics().profit.max(floor);
            for (scheme, out) in self.sweep.schemes[2..].iter().zip(&point_outs[2..]) {
                push_point(&mut series, scheme.label(), x, out.metrics().profit / base);
            }
        }
        ExperimentResult::Figure {
            title: "Figure 8: profit relative to RegionOracle".into(),
            x_label: "load".into(),
            series,
        }
    }
}

/// Figure 9: fraction of requests fully completed vs load factor.
pub struct Fig9Completion {
    sweep: Sweep<f64>,
}

impl Fig9Completion {
    pub fn new(scale: Scale, loads: &[f64]) -> Self {
        let schemes = vec![
            Scheme::Pretium(Variant::Full),
            Scheme::NoPrices,
            Scheme::RegionOracle,
            Scheme::PeakOracle,
            Scheme::VcgLike,
        ];
        Fig9Completion {
            sweep: Sweep::new("fig9", scale, loads.to_vec(), schemes, load_point, load_config),
        }
    }
}

impl Experiment for Fig9Completion {
    fn name(&self) -> &'static str {
        "fig9"
    }

    fn cells(&self, seed: u64) -> Vec<CellSpec> {
        self.sweep.cells(seed)
    }

    fn run_cell(&self, cell: &CellSpec) -> Result<CellOut, SolveError> {
        self.sweep.run_cell(cell)
    }

    fn merge(&self, cells: &[CellSpec], outs: Vec<CellOut>) -> ExperimentResult {
        let mut series: Vec<Series> = Vec::new();
        for (x, _, point_outs) in self.sweep.per_point(cells, &outs) {
            for (scheme, out) in self.sweep.schemes.iter().zip(point_outs) {
                push_point(&mut series, scheme.label(), x, out.metrics().completion);
            }
        }
        ExperimentResult::Figure {
            title: "Figure 9: fraction of requests completed".into(),
            x_label: "load".into(),
            series,
        }
    }
}

/// Figure 11 — ablations: Pretium-NoMenu and Pretium-NoSAM vs full.
pub struct Fig11Ablations {
    sweep: Sweep<f64>,
}

impl Fig11Ablations {
    pub fn new(scale: Scale, loads: &[f64]) -> Self {
        let schemes = vec![
            Scheme::Opt,
            Scheme::Pretium(Variant::Full),
            Scheme::Pretium(Variant::NoMenu),
            Scheme::Pretium(Variant::NoSam),
        ];
        Fig11Ablations {
            sweep: Sweep::new("fig11", scale, loads.to_vec(), schemes, load_point, load_config),
        }
    }
}

impl Experiment for Fig11Ablations {
    fn name(&self) -> &'static str {
        "fig11"
    }

    fn cells(&self, seed: u64) -> Vec<CellSpec> {
        self.sweep.cells(seed)
    }

    fn run_cell(&self, cell: &CellSpec) -> Result<CellOut, SolveError> {
        self.sweep.run_cell(cell)
    }

    fn merge(&self, cells: &[CellSpec], outs: Vec<CellOut>) -> ExperimentResult {
        let mut series: Vec<Series> = Vec::new();
        for (x, _, point_outs) in self.sweep.per_point(cells, &outs) {
            let opt = point_outs[0].metrics().welfare;
            for (scheme, out) in self.sweep.schemes[1..].iter().zip(&point_outs[1..]) {
                push_point(&mut series, scheme.label(), x, out.metrics().welfare / opt);
            }
        }
        ExperimentResult::Figure {
            title: "Figure 11: Pretium ablations (rel. OPT)".into(),
            x_label: "load".into(),
            series,
        }
    }
}

/// Figure 12 — sensitivity to mean link cost (load factor 1).
pub struct Fig12LinkCost {
    sweep: Sweep<f64>,
}

fn scale_point(p: &f64) -> (String, f64) {
    (format!("cost={p}"), *p)
}

fn unit_load_config(scale: Scale, seed: u64, _p: &f64) -> ScenarioConfig {
    scale.config(seed, 1.0)
}

fn identity_cost(p: &f64) -> f64 {
    *p
}

impl Fig12LinkCost {
    pub fn new(scale: Scale, cost_scales: &[f64]) -> Self {
        let schemes = vec![Scheme::Opt, Scheme::Pretium(Variant::Full), Scheme::RegionOracle];
        Fig12LinkCost {
            sweep: Sweep::new(
                "fig12",
                scale,
                cost_scales.to_vec(),
                schemes,
                scale_point,
                unit_load_config,
            )
            .with_cost_scale(identity_cost),
        }
    }
}

impl Experiment for Fig12LinkCost {
    fn name(&self) -> &'static str {
        "fig12"
    }

    fn cells(&self, seed: u64) -> Vec<CellSpec> {
        self.sweep.cells(seed)
    }

    fn run_cell(&self, cell: &CellSpec) -> Result<CellOut, SolveError> {
        self.sweep.run_cell(cell)
    }

    fn merge(&self, cells: &[CellSpec], outs: Vec<CellOut>) -> ExperimentResult {
        let mut series: Vec<Series> = Vec::new();
        for (x, _, point_outs) in self.sweep.per_point(cells, &outs) {
            let opt = point_outs[0].metrics().welfare;
            for (scheme, out) in self.sweep.schemes[1..].iter().zip(&point_outs[1..]) {
                push_point(&mut series, scheme.label(), x, out.metrics().welfare / opt);
            }
        }
        ExperimentResult::Figure {
            title: "Figure 12: welfare vs mean link cost (load 1)".into(),
            x_label: "cost scale".into(),
            series,
        }
    }
}

/// Value-distribution families swept by Figures 13/14.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueKind {
    Normal,
    Pareto,
}

impl ValueKind {
    pub fn label(self) -> &'static str {
        match self {
            ValueKind::Normal => "normal",
            ValueKind::Pareto => "pareto",
        }
    }

    /// The distribution at the evaluation workload's mean with the given
    /// `μ/σ` ratio (only shape and spread change across the sweep).
    pub fn dist(self, mean: f64, ratio: f64) -> ValueDist {
        match self {
            ValueKind::Normal => ValueDist::normal_from_ratio(mean, ratio),
            ValueKind::Pareto => ValueDist::pareto_from_mean_ratio(mean, ratio),
        }
    }
}

/// Figures 13/14 — sensitivity to the request-value distribution (load 1).
pub struct Fig13Values {
    sweep: Sweep<(f64, ValueKind)>,
}

fn value_point(p: &(f64, ValueKind)) -> (String, f64) {
    (format!("{}-ratio={}", p.1.label(), p.0), p.0)
}

fn value_config(scale: Scale, seed: u64, p: &(f64, ValueKind)) -> ScenarioConfig {
    let mut config = scale.config(seed, 1.0);
    config.requests.value_dist = p.1.dist(0.7, p.0);
    config
}

impl Fig13Values {
    pub fn new(scale: Scale, ratios: &[f64]) -> Self {
        let points: Vec<(f64, ValueKind)> =
            ratios.iter().flat_map(|&r| [(r, ValueKind::Normal), (r, ValueKind::Pareto)]).collect();
        let schemes = vec![Scheme::Opt, Scheme::Pretium(Variant::Full), Scheme::RegionOracle];
        Fig13Values {
            sweep: Sweep::new("fig13", scale, points, schemes, value_point, value_config),
        }
    }

    /// The typed rows behind [`Experiment::merge`], for callers that want
    /// the numbers rather than rendered series.
    pub fn rows(&self, cells: &[CellSpec], outs: &[CellOut]) -> Vec<experiments::ValueDistRow> {
        self.sweep
            .per_point(cells, outs)
            .zip(&self.sweep.points)
            .map(|((ratio, _, point_outs), &(_, kind))| {
                let opt_w = point_outs[0].metrics().welfare;
                let pretium = point_outs[1].metrics();
                let region = point_outs[2].metrics();
                let opt_scale = (opt_w.abs() * 0.01).max(1.0);
                let region_profit = region.profit.max(opt_scale);
                experiments::ValueDistRow {
                    distribution: kind.label().to_string(),
                    mean_over_std: ratio,
                    pretium_welfare: pretium.welfare / opt_w,
                    region_welfare: region.welfare / opt_w,
                    profit_ratio: pretium.profit / region_profit,
                }
            })
            .collect()
    }
}

impl Experiment for Fig13Values {
    fn name(&self) -> &'static str {
        "fig13"
    }

    fn aliases(&self) -> &'static [&'static str] {
        &["fig14"]
    }

    fn cells(&self, seed: u64) -> Vec<CellSpec> {
        self.sweep.cells(seed)
    }

    fn run_cell(&self, cell: &CellSpec) -> Result<CellOut, SolveError> {
        self.sweep.run_cell(cell)
    }

    fn merge(&self, cells: &[CellSpec], outs: Vec<CellOut>) -> ExperimentResult {
        let rows = self
            .rows(cells, &outs)
            .into_iter()
            .map(|r| {
                (
                    format!("{} mu/sigma={}", r.distribution, r.mean_over_std),
                    format!(
                        "Pretium={:.3} Region={:.3} profit_ratio={:.2}",
                        r.pretium_welfare, r.region_welfare, r.profit_ratio
                    ),
                )
            })
            .collect();
        ExperimentResult::Table {
            title: "Figures 13/14: value-distribution sensitivity (rel. OPT)".into(),
            rows,
        }
    }
}

// ---------------------------------------------------------------------------
// Single-cell (text) experiments.
// ---------------------------------------------------------------------------

/// An experiment whose cells each render one text block (Figure 1's CDF,
/// Table 1, the Figure 7 trio, ...). The cells still flow through the
/// parallel engine, so e.g. Figure 7's three panels solve concurrently
/// with every other selected experiment's cells.
pub struct TextExperiment {
    name: &'static str,
    aliases: &'static [&'static str],
    scale: Scale,
    /// One cell per part; the part name disambiguates `run_cell`.
    parts: &'static [&'static str],
    run: fn(Scale, u64, &str) -> Result<String, SolveError>,
}

impl TextExperiment {
    pub fn new(
        name: &'static str,
        aliases: &'static [&'static str],
        scale: Scale,
        parts: &'static [&'static str],
        run: fn(Scale, u64, &str) -> Result<String, SolveError>,
    ) -> Self {
        TextExperiment { name, aliases, scale, parts, run }
    }
}

impl Experiment for TextExperiment {
    fn name(&self) -> &'static str {
        self.name
    }

    fn aliases(&self) -> &'static [&'static str] {
        self.aliases
    }

    fn cells(&self, seed: u64) -> Vec<CellSpec> {
        self.parts
            .iter()
            .map(|part| {
                let label = if part.is_empty() {
                    self.name.to_string()
                } else {
                    format!("{}/{part}", self.name)
                };
                CellSpec {
                    seed: rand::derive_seed(seed, &label),
                    label,
                    x: 0.0,
                    payload: CellPayload::Free,
                }
            })
            .collect()
    }

    fn run_cell(&self, cell: &CellSpec) -> Result<CellOut, SolveError> {
        let part = cell.label.rsplit('/').next().unwrap_or("");
        let part = if part == self.name { "" } else { part };
        (self.run)(self.scale, cell.seed, part).map(CellOut::Text)
    }

    fn merge(&self, _cells: &[CellSpec], outs: Vec<CellOut>) -> ExperimentResult {
        ExperimentResult::Text(
            outs.into_iter().map(CellOut::into_text).collect::<Vec<_>>().join(""),
        )
    }
}

fn run_table1(_scale: Scale, _seed: u64, _part: &str) -> Result<String, SolveError> {
    Ok(pretium_workload::survey::format_table1())
}

fn run_fig1(_scale: Scale, seed: u64, _part: &str) -> Result<String, SolveError> {
    let cdf = experiments::fig1_utilization_ratio_cdf(seed);
    let series = vec![Series::new("CDF", cdf)];
    Ok(render_figure("Figure 1: CDF of p90/p10 link-utilization ratio", "ratio", &series))
}

fn run_fig2(_scale: Scale, _seed: u64, _part: &str) -> Result<String, SolveError> {
    Ok("Figure 2: see `cargo run --release --example paper_example`\n".to_string())
}

fn run_fig5(_scale: Scale, seed: u64, _part: &str) -> Result<String, SolveError> {
    let fits = experiments::fig5_topk_proxy(seed);
    let rows: Vec<(String, String)> = fits
        .iter()
        .map(|f| {
            (
                f.distribution.clone(),
                format!(
                    "pearson={:.4} slope={:.3} intercept={:.3}",
                    f.pearson, f.slope, f.intercept
                ),
            )
        })
        .collect();
    Ok(render_table("Figure 5: z_e (top-10% mean) vs y_e (95th pct)", &rows))
}

fn run_fig7(scale: Scale, seed: u64, part: &str) -> Result<String, SolveError> {
    let config = scale.config(seed, 2.0);
    match part {
        "a" => {
            let (prices, util) = experiments::fig7a_price_and_utilization_on(&config)?;
            let series = vec![
                Series::new(
                    "price",
                    prices.iter().enumerate().map(|(t, &p)| (t as f64, p)).collect(),
                ),
                Series::new(
                    "utilization",
                    util.iter().enumerate().map(|(t, &u)| (t as f64, u)).collect(),
                ),
            ];
            Ok(render_figure(
                "Figure 7a: price & utilization over time (busiest pct link)",
                "t",
                &series,
            ))
        }
        "b" => {
            let (_, series) = experiments::fig7b_value_buckets_on(&config)?;
            Ok(render_figure(
                "Figure 7b: value captured per value bucket (rel. OPT)",
                "bucket<=",
                &series,
            ))
        }
        "c" => {
            let pts = experiments::fig7c_price_vs_value_on(&config)?;
            Ok(crate::report::render_ascii_plot(
                "Figure 7c: admission price vs request value",
                &pts,
                60,
                14,
            ))
        }
        other => unreachable!("unknown fig7 part {other}"),
    }
}

fn run_fig10(scale: Scale, seed: u64, _part: &str) -> Result<String, SolveError> {
    let config = scale.config(seed, 2.0);
    let series = experiments::fig10_p90_utilization_cdf_on(&config)?;
    Ok(render_figure("Figure 10: CDF of per-link p90 utilization", "p90 util", &series))
}

fn run_table4(scale: Scale, seed: u64, _part: &str) -> Result<String, SolveError> {
    let config = scale.config(seed, 2.0);
    let rt = experiments::table4_runtimes_on(&config)?;
    let timing = |name: &str, samples: &[f64]| {
        (
            name.to_string(),
            format!(
                "median {:.4}s  p95 {:.4}s",
                ModuleRuntimes::median(samples),
                ModuleRuntimes::p95(samples)
            ),
        )
    };
    let rows = vec![
        timing("RA (per request)", &rt.ra),
        timing("SAM (per timestep)", &rt.sam),
        timing("PC (per window)", &rt.pc),
    ];
    Ok(render_table("Table 4: module runtimes", &rows))
}

/// The admission-surge cell: load 2.0 plus a fault-plan surge stream at
/// ≥ 10× the scenario's own arrival volume, admitted through the pooled
/// snapshot front end (`ra_jobs` = 2) with auditing forced on — graceful
/// behavior under request pressure, with a clean audit trail, is the
/// acceptance bar for the concurrent admission API.
fn run_surge(scale: Scale, seed: u64, _part: &str) -> Result<String, SolveError> {
    // One window is enough to saturate admission (the surge pressure is
    // per-step, not cumulative), and it keeps the per-step SAM LP — which
    // grows with every admitted surge contract — inside the suite's
    // wall-clock budget at evaluation scale.
    let mut cfg = scale.config(seed, 2.0);
    cfg.windows = 1;
    let sc = cfg.build();
    // One surge per window; size the surges so their total is ≥ 10× the
    // scenario's arrivals.
    let windows = (sc.horizon / sc.grid.steps_per_window).max(1);
    let per_surge = (10 * sc.requests.len()).div_ceil(windows).max(1);
    let plan_cfg = FaultPlanConfig::surge(rand::derive_seed(seed, "surge-exp"), per_surge);
    let plan = FaultPlan::for_scenario(&sc, &plan_cfg);
    let surge_arrivals: usize = (0..sc.horizon).map(|t| plan.surges_at(t).count()).sum();
    let cfg = PretiumConfig { ra_jobs: 2, audit: true, ..Default::default() };
    let run = run_pretium_faulted(&sc, cfg, Variant::Full, &plan)?;
    let scenario_admitted = run.contract_of_request.iter().filter(|c| c.is_some()).count();
    let surge_admitted = run.system.contracts().len() - scenario_admitted;
    let t = run.telemetry();
    let aud = run.audit().expect("surge cell audits unconditionally");
    let welfare = run.outcome.welfare(&sc.requests, &sc.net, &sc.grid, 1.0);
    let rows = vec![
        ("scenario arrivals".to_string(), sc.requests.len().to_string()),
        (
            "surge arrivals (≥10× scenario)".to_string(),
            format!("{surge_arrivals} ({per_surge}/window)"),
        ),
        ("scenario admitted".to_string(), scenario_admitted.to_string()),
        ("surge admitted".to_string(), surge_admitted.to_string()),
        ("quotes".to_string(), t.quote.calls.to_string()),
        ("quotes requoted (stale tickets)".to_string(), t.quotes_requoted.to_string()),
        ("snapshots published".to_string(), t.snapshots.to_string()),
        ("audit sweeps".to_string(), aud.checks().to_string()),
        ("audit violations".to_string(), aud.violations().len().to_string()),
        ("scenario welfare".to_string(), format!("{welfare:.1}")),
    ];
    Ok(render_table("Admission surge: pooled RA under 10x request pressure", &rows))
}

fn run_incentives(scale: Scale, seed: u64, _part: &str) -> Result<String, SolveError> {
    use crate::incentives::{analyze_deviations, Deviation};
    let sc = scale.config(seed, 1.0).build();
    let report = analyze_deviations(
        &sc,
        &PretiumConfig::default(),
        &[Deviation::LaterDeadline(2), Deviation::TighterDeadline(1), Deviation::Split],
        12,
    )?;
    let rows = vec![
        ("sampled users".to_string(), report.sampled.to_string()),
        ("simulated deviations".to_string(), report.simulated.to_string()),
        (
            "could gain (paper: <26%)".to_string(),
            format!("{} ({:.0}%)", report.gainers, 100.0 * report.gainer_fraction()),
        ),
        (
            "avg gain when gaining (paper: <6%)".to_string(),
            format!("{:.1}%", 100.0 * report.avg_gain),
        ),
        ("max gain".to_string(), format!("{:.1}%", 100.0 * report.max_gain)),
    ];
    Ok(render_table("Section 5: deviation study", &rows))
}

// ---------------------------------------------------------------------------
// The availability (robustness) sweep.
// ---------------------------------------------------------------------------

/// Failure rates the robustness sweep evaluates (probability per
/// (edge, window) of an outage starting). Rate 0 is the healthy baseline
/// every other point's welfare is normalized against.
pub const FAILURE_RATES: [f64; 4] = [0.0, 0.1, 0.25, 0.5];

/// §4.4 robustness: welfare retention and guarantee-violation rate vs the
/// injected link-failure rate. One faulted Pretium run per rate; worlds are
/// shared across rates (same scenario seed) so only the fault plan varies,
/// and each cell's fault plan derives from the cell seed — the whole sweep
/// is bit-identical across `--jobs` counts like every other experiment.
pub struct AvailabilitySweep {
    scale: Scale,
    rates: Vec<f64>,
}

impl AvailabilitySweep {
    pub fn new(scale: Scale, rates: &[f64]) -> Self {
        AvailabilitySweep { scale, rates: rates.to_vec() }
    }
}

impl Experiment for AvailabilitySweep {
    fn name(&self) -> &'static str {
        "robustness"
    }

    fn aliases(&self) -> &'static [&'static str] {
        &["availability", "faults"]
    }

    fn cells(&self, seed: u64) -> Vec<CellSpec> {
        self.rates
            .iter()
            .map(|&rate| {
                let label = format!("robustness/rate={rate}/Pretium");
                CellSpec {
                    seed: rand::derive_seed(seed, &label),
                    label,
                    x: rate,
                    // Load 2 (the fig7 operating point): the network is
                    // contended, so an outage cannot always be rerouted
                    // around and the degradation chain actually engages.
                    payload: CellPayload::Robustness {
                        config: Box::new(self.scale.config(seed, 2.0)),
                        failure_rate: rate,
                    },
                }
            })
            .collect()
    }

    fn run_cell(&self, cell: &CellSpec) -> Result<CellOut, SolveError> {
        match &cell.payload {
            CellPayload::Robustness { config, failure_rate } => {
                run_robustness_cell(config, *failure_rate, cell.seed).map(CellOut::Robustness)
            }
            _ => unreachable!("robustness declares robustness cells only"),
        }
    }

    fn merge(&self, cells: &[CellSpec], outs: Vec<CellOut>) -> ExperimentResult {
        let healthy = outs[0].robustness().welfare;
        let denom = if healthy.abs() > 1e-9 { healthy } else { 1.0 };
        let mut series: Vec<Series> = Vec::new();
        for (cell, out) in cells.iter().zip(&outs) {
            let m = out.robustness();
            push_point(&mut series, "welfare (rel. healthy)", cell.x, m.welfare / denom);
            push_point(&mut series, "violation rate", cell.x, m.violation_rate());
        }
        ExperimentResult::Figure {
            title: "Robustness: welfare & guarantee violations vs failure rate".into(),
            x_label: "failure rate".into(),
            series,
        }
    }
}

// ---------------------------------------------------------------------------
// The registry and the parallel suite runner.
// ---------------------------------------------------------------------------

/// Every experiment of the evaluation, in the paper's order, at the full
/// evaluation scale.
pub fn registry() -> Vec<Arc<dyn Experiment>> {
    registry_at(Scale::Evaluation)
}

/// The full suite at an explicit scale (`Scale::Tiny` for tests and the CI
/// smoke run).
pub fn registry_at(scale: Scale) -> Vec<Arc<dyn Experiment>> {
    vec![
        Arc::new(TextExperiment::new("table1", &[], scale, &[""], run_table1)),
        Arc::new(TextExperiment::new("fig1", &[], scale, &[""], run_fig1)),
        Arc::new(TextExperiment::new("fig2", &[], scale, &[""], run_fig2)),
        Arc::new(TextExperiment::new("fig5", &[], scale, &[""], run_fig5)),
        Arc::new(Fig6Welfare::new(scale, &LOAD_FACTORS)),
        Arc::new(TextExperiment::new(
            "fig7",
            &["fig7a", "fig7b", "fig7c"],
            scale,
            &["a", "b", "c"],
            run_fig7,
        )),
        Arc::new(Fig8Profit::new(scale, &LOAD_FACTORS)),
        Arc::new(Fig9Completion::new(scale, &LOAD_FACTORS)),
        Arc::new(TextExperiment::new("fig10", &[], scale, &[""], run_fig10)),
        Arc::new(Fig11Ablations::new(scale, &LOAD_FACTORS)),
        Arc::new(Fig12LinkCost::new(scale, &[1.0, 1.4, 1.8, 2.2])),
        Arc::new(Fig13Values::new(scale, &[1.0, 2.0, 4.0])),
        Arc::new(TextExperiment::new("table4", &[], scale, &[""], run_table4)),
        Arc::new(TextExperiment::new("incentives", &[], scale, &[""], run_incentives)),
        Arc::new(TextExperiment::new("surge", &["admission"], scale, &[""], run_surge)),
        Arc::new(AvailabilitySweep::new(scale, &FAILURE_RATES)),
    ]
}

/// Run one experiment's cells on the engine and return `(specs, outs)` in
/// declaration order — for callers that want a typed merge (e.g.
/// [`Fig13Values::rows`]) rather than the rendered [`ExperimentResult`].
pub fn run_experiment_cells(
    exp: Arc<dyn Experiment>,
    seed: u64,
    jobs: usize,
) -> Result<(Vec<CellSpec>, Vec<CellOut>), SolveError> {
    let specs = exp.cells(seed);
    let cells = specs
        .iter()
        .map(|spec| {
            let exp = Arc::clone(&exp);
            let spec = spec.clone();
            Cell::new(spec.label.clone(), move || exp.run_cell(&spec))
        })
        .collect();
    let (results, _telemetry) = par::run_cells(jobs, cells);
    let outs = results.into_iter().collect::<Result<Vec<_>, _>>()?;
    Ok((specs, outs))
}

/// Run a set of experiments through one shared worker pool.
///
/// All experiments' cells are flattened into a single batch, so slow
/// single-cell figures overlap with wide sweeps instead of serializing the
/// suite; results are regrouped per experiment and merged in registry
/// order. Returns each experiment's merged result plus the pool telemetry
/// of the whole batch.
pub fn run_experiments(
    experiments: &[Arc<dyn Experiment>],
    seed: u64,
    jobs: usize,
) -> Result<(Vec<(String, ExperimentResult)>, PoolTelemetry), SolveError> {
    let mut all_cells: Vec<Cell<(usize, CellOut), SolveError>> = Vec::new();
    let mut specs: Vec<Vec<CellSpec>> = Vec::with_capacity(experiments.len());
    for (i, exp) in experiments.iter().enumerate() {
        let exp_cells = exp.cells(seed);
        for spec in &exp_cells {
            let exp = Arc::clone(exp);
            let spec = spec.clone();
            all_cells
                .push(Cell::new(spec.label.clone(), move || exp.run_cell(&spec).map(|o| (i, o))));
        }
        specs.push(exp_cells);
    }
    let (results, telemetry) = par::run_cells(jobs, all_cells);
    let mut outs: Vec<Vec<CellOut>> = experiments.iter().map(|_| Vec::new()).collect();
    // Results arrive in declaration order, so per-experiment groups stay in
    // their own declaration order too.
    for r in results {
        let (i, out) = r?;
        outs[i].push(out);
    }
    let merged = experiments
        .iter()
        .zip(specs.iter())
        .zip(outs)
        .map(|((exp, spec), out)| (exp.name().to_string(), exp.merge(spec, out)))
        .collect();
    Ok((merged, telemetry))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_paper_ordered() {
        let reg = registry();
        let names: Vec<&str> = reg.iter().map(|e| e.name()).collect();
        assert_eq!(names[0], "table1");
        assert!(names.contains(&"fig6"));
        assert!(names.contains(&"incentives"));
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "duplicate registry names: {names:?}");
    }

    #[test]
    fn sweep_cells_expand_points_times_schemes_in_order() {
        let exp = Fig6Welfare::new(Scale::Tiny, &[0.5, 1.0]);
        let cells = exp.cells(rand::DEFAULT_SEED);
        assert_eq!(cells.len(), 2 * 6);
        assert!(cells[0].label.contains("load=0.5"));
        assert!(cells[0].label.ends_with("OPT"));
        assert!(cells[6].label.contains("load=1"));
        // Per-cell seeds are pure functions of the label.
        let again = exp.cells(rand::DEFAULT_SEED);
        assert_eq!(cells[3].seed, again[3].seed);
        assert_ne!(cells[0].seed, cells[1].seed);
    }

    #[test]
    fn robustness_sweep_runs_faulted_and_normalizes_to_healthy() {
        let exp = AvailabilitySweep::new(Scale::Tiny, &[0.0, 0.4]);
        let cells = exp.cells(rand::DEFAULT_SEED);
        assert_eq!(cells.len(), 2);
        let outs: Vec<CellOut> = cells.iter().map(|c| exp.run_cell(c).unwrap()).collect();
        // The faulted cell must actually stress the system (rate 0.4 on a
        // 10-edge tiny world essentially guarantees at least one outage).
        let faulted = outs[1].robustness();
        assert!(faulted.degraded_steps > 0, "{faulted:?}");
        // Every missed guarantee must be backed by ledger entries (counted
        // here; the in-run audit enforces the per-contract accounting).
        if faulted.violations > 0 {
            assert!(faulted.shed + faulted.relaxed > 0, "{faulted:?}");
            assert!(faulted.penalty > 0.0, "{faulted:?}");
        }
        let merged = exp.merge(&cells, outs);
        let series = merged.series().expect("robustness merges to a figure");
        assert_eq!(series.len(), 2);
        assert!((series[0].points[0].1 - 1.0).abs() < 1e-9, "healthy point normalizes to 1");
        assert_eq!(series[1].points[0].1, 0.0, "healthy run has no violations");
    }

    #[test]
    fn cell_labels_are_unique_across_the_registry() {
        let reg = registry_at(Scale::Tiny);
        let mut labels: Vec<String> =
            reg.iter().flat_map(|e| e.cells(3)).map(|c| c.label).collect();
        let n = labels.len();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), n);
    }
}
