//! # pretium-lp — a self-contained LP solver with exact duals
//!
//! This crate replaces the commercial solver (Gurobi) used in the Pretium
//! paper ("Dynamic Pricing and Traffic Engineering for Timely
//! Inter-Datacenter Transfers", SIGCOMM 2016). Pretium's price computer
//! sets link prices to the **dual values** of capacity constraints, so the
//! solver must return exact basic duals — which the revised simplex method
//! provides naturally.
//!
//! ## What's inside
//!
//! * [`Model`] — incremental LP builder (variables with bounds, linear
//!   rows, max/min objective) with operator-overloaded [`LinExpr`]s.
//! * [`SolverSession`] — the primary solve surface: a model plus the basis
//!   of its last solve. Mutations (`set_rhs`, `set_bounds`, `set_obj`,
//!   `add_row`, `add_var`) go through the session, and each re-solve picks
//!   the cheapest restart — primal warm start after objective changes, dual
//!   simplex after RHS/bound changes or appended rows, cold only when the
//!   basis cannot be reused. [`Model::solve`] remains as a one-shot
//!   convenience.
//! * [`simplex`] — bounded-variable revised simplex: sparse
//!   triangular-plus-bump `LU` basis factorization with a product-form eta
//!   file, crash basis, two phases, and a bounded-variable dual simplex for
//!   warm restarts. Pricing is selectable via [`SimplexOptions::pricing`]:
//!   classic full-scan Dantzig, Devex reference-framework weights over
//!   incrementally maintained reduced costs, or (the default) partial Devex
//!   with a cyclic candidate list so a pivot prices O(section + candidates)
//!   columns instead of O(n). A Bland's-rule anti-cycling fallback guards
//!   every strategy.
//! * [`lazy`] — symmetric generation oracles. A [`RowGen`] separates rows a
//!   tentative optimum violates (the schedule LPs have `|E|·T` capacity
//!   rows of which only a few percent ever bind); a [`ColGen`] prices
//!   absent columns against the restricted master's duals and returns those
//!   with favorable reduced cost (only a few percent of `(path, timestep)`
//!   flow columns ever carry flow at paper scale). Rows and columns grow
//!   against the same session in one loop —
//!   [`SolverSession::solve_gen`] runs both oracles,
//!   [`SolverSession::solve_lazy`] / [`SolverSession::solve_colgen`] are
//!   the one-sided wrappers — and every generation round warm-starts from
//!   the saved basis. All three return the shared [`GenOutcome`] shape.
//! * [`validate`] — independent optimality checks (primal feasibility,
//!   dual feasibility, complementary slackness) used heavily in tests.
//!
//! ## Example: session lifecycle
//!
//! Build a model, wrap it in a session, and re-optimize across mutations —
//! the pattern Pretium's SAM uses every timestep:
//!
//! ```
//! use pretium_lp::{Cmp, Model, Restart, Sense, SolveOptions, SolverSession};
//!
//! // max 3x + 2y  s.t.  x + y <= 4,  x + 3y <= 6,  x,y >= 0
//! let mut m = Model::new(Sense::Maximize);
//! let x = m.add_nonneg("x", 3.0);
//! let y = m.add_nonneg("y", 2.0);
//! let cap = m.add_row("cap", x + y, Cmp::Le, 4.0);
//! let _r2 = m.add_row("r2", 1.0 * x + 3.0 * y, Cmp::Le, 6.0);
//!
//! // First solve is cold and records the optimal basis.
//! let mut session = m.into_session();
//! let sol = session.solve(&SolveOptions::default()).unwrap();
//! assert!((sol.objective() - 12.0).abs() < 1e-7);
//! assert!((sol.value(x) - 4.0).abs() < 1e-7);
//! // Binding capacity row carries the shadow price.
//! assert!(sol.dual(cap) > 0.0);
//!
//! // Capacity moved past what r2 allows (a SAM timestep): the old basis is
//! // primal infeasible but still dual feasible — dual simplex repairs it.
//! session.set_rhs(cap, 7.0);
//! let sol = session.solve(&SolveOptions::default()).unwrap();
//! assert!((sol.objective() - 18.0).abs() < 1e-7);
//! assert_eq!(session.last_restart(), Some(Restart::WarmDual));
//!
//! // Values shifted (new prices): the basis stays primal feasible, so the
//! // restart is a pure primal continuation.
//! session.set_obj(y, 4.0);
//! session.solve(&SolveOptions::default()).unwrap();
//! assert_eq!(session.last_restart(), Some(Restart::WarmPrimal));
//! ```

pub mod expr;
pub mod lazy;
pub mod model;
pub mod session;
pub mod simplex;
pub mod solution;
pub mod validate;

pub use expr::{LinExpr, Term, Var};
pub use lazy::{ColGen, ColRequest, GenOutcome, NoGen, RowGen, RowRequest};
pub use model::{Cmp, Model, RowId, Sense};
pub use session::{
    Mutations, RestrictedOutcome, SessionStats, SolveOptions, SolverSession, SolverTuning,
};
pub use simplex::basis::{FactorStats, DEFAULT_MAX_ETAS};
pub use simplex::{Pricing, Restart, SimplexOptions};
pub use solution::{Solution, SolveError, Status};
