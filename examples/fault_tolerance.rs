//! Fault robustness (§4.4): admit guaranteed transfers, then fail a link
//! mid-flight through a [`FaultPlan`] and watch the schedule adjustment
//! module reroute — and, when rerouting cannot cover a promise, degrade
//! gracefully by shedding/relaxing guarantees into the violation ledger.
//!
//! ```text
//! cargo run --release --example fault_tolerance
//! ```

use pretium::core::{Pretium, PretiumConfig, RequestParams};
use pretium::net::{topology, TimeGrid, UsageTracker};
use pretium::sim::faults::FaultPlan;
use pretium::workload::RequestId;
use rand::rngs::StdRng;
use rand::{derive_seed, Rng, SeedableRng};

fn main() {
    let net = topology::default_eval(rand::DEFAULT_SEED);
    let grid = TimeGrid::coarse_default();
    let horizon = grid.steps_per_window;
    let mut system = Pretium::new(net.clone(), grid, horizon, PretiumConfig::default());
    let mut usage = UsageTracker::new(net.num_edges(), horizon);
    let mut rng = StdRng::seed_from_u64(derive_seed(rand::DEFAULT_SEED, "fault-tolerance"));

    // Admit a batch of guaranteed transfers across the WAN.
    let mut admitted = Vec::new();
    for i in 0..12u32 {
        let src = pretium::net::NodeId(rng.gen_range(0..net.num_nodes() as u32));
        let dst = loop {
            let d = pretium::net::NodeId(rng.gen_range(0..net.num_nodes() as u32));
            if d != src {
                break d;
            }
        };
        let params = RequestParams {
            id: RequestId(u64::from(i)),
            src,
            dst,
            demand: rng.gen_range(5.0..30.0),
            arrival: 0,
            start: 0,
            deadline: rng.gen_range(8..horizon - 1),
        };
        let (_menu, id) =
            system.admit_one(&params, |menu| menu.optimal_purchase(3.0, params.demand));
        if let Some(id) = id {
            admitted.push(id);
        }
    }
    println!("admitted {} guaranteed transfers", admitted.len());

    // Schedule a total outage of the busiest link from t=4 for the rest of
    // the day — as a fault plan, the same machinery the robustness sweep
    // replays.
    let busiest = net
        .edge_ids()
        .max_by(|&a, &b| {
            let ra: f64 = (0..horizon).map(|t| system.state().reserved(a, t)).sum();
            let rb: f64 = (0..horizon).map(|t| system.state().reserved(b, t)).sum();
            ra.partial_cmp(&rb).unwrap()
        })
        .unwrap();
    println!(
        "failing busiest link {busiest} ({} -> {}) from t=4",
        net.edge(busiest).from,
        net.edge(busiest).to
    );
    let plan = FaultPlan::single_link_failure(busiest, 4, horizon, horizon);

    for t in 0..horizon {
        plan.apply_step(&mut system, t);
        if plan.capacity_event_at(t) {
            // A network event triggers an immediate re-optimization (§4.2).
            system.run_sam(t, &usage).expect("SAM must degrade, not fail");
        }
        system.run_sam(t, &usage).expect("SAM");
        system.execute_step(t, &mut usage);
    }

    let mut met = 0;
    let mut missed = 0;
    for &id in &admitted {
        let c = system.contract(id);
        if c.guarantee_met() {
            met += 1;
        } else {
            missed += 1;
            println!(
                "  MISSED {:?}: delivered {:.1} of guaranteed {:.1} (waived {:.1})",
                c.params.id, c.delivered, c.guaranteed, c.waived
            );
        }
    }
    println!("guarantees met: {met}, missed: {missed}");

    // Every miss must be booked in the violation ledger — nothing silent.
    let ledger = system.ledger();
    let (shed, relaxed) = ledger.counts();
    println!(
        "ledger: {} entries ({shed} shed, {relaxed} relaxed), penalty {:.2}",
        ledger.len(),
        ledger.total_penalty()
    );
    for &id in &admitted {
        let c = system.contract(id);
        assert!(
            c.guarantee_accounted(),
            "{:?}: delivered {} + waived {} must cover guaranteed {}",
            c.params.id,
            c.delivered,
            c.waived,
            c.guaranteed
        );
    }

    let telemetry = system.telemetry();
    println!(
        "degraded steps: {}, rerouted units: {:.1}",
        telemetry.degraded_steps, telemetry.rerouted_units
    );

    // No traffic may ride the dead link after the failure.
    let leaked = usage.volume_on(busiest, 4, horizon);
    println!("volume on failed link after t=4: {leaked:.3}");
    assert!(leaked < 1e-9, "SAM must not schedule over a dead link");
    assert!(usage.capacity_violations(&net, 1e-5).is_empty(), "no capacity violations allowed");
}
