//! Fault robustness (§4.4): admit guaranteed transfers, then fail a link
//! mid-flight and watch the schedule adjustment module reroute so the
//! promised deadlines still hold.
//!
//! ```text
//! cargo run --release --example fault_tolerance
//! ```

use pretium::core::{Pretium, PretiumConfig, RequestParams};
use pretium::net::{topology, TimeGrid, UsageTracker};
use pretium::workload::RequestId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let net = topology::default_eval(11);
    let grid = TimeGrid::coarse_default();
    let horizon = grid.steps_per_window;
    let mut system = Pretium::new(net.clone(), grid, horizon, PretiumConfig::default());
    let mut usage = UsageTracker::new(net.num_edges(), horizon);
    let mut rng = StdRng::seed_from_u64(5);

    // Admit a batch of guaranteed transfers across the WAN.
    let mut admitted = Vec::new();
    for i in 0..12u32 {
        let src = pretium::net::NodeId(rng.gen_range(0..net.num_nodes() as u32));
        let dst = loop {
            let d = pretium::net::NodeId(rng.gen_range(0..net.num_nodes() as u32));
            if d != src {
                break d;
            }
        };
        let params = RequestParams {
            id: RequestId(i),
            src,
            dst,
            demand: rng.gen_range(5.0..30.0),
            arrival: 0,
            start: 0,
            deadline: rng.gen_range(8..horizon - 1),
        };
        let menu = system.quote(&params);
        let units = menu.optimal_purchase(3.0, params.demand);
        if let Some(id) = system.accept(&params, &menu, units) {
            admitted.push(id);
        }
    }
    println!("admitted {} guaranteed transfers", admitted.len());

    // Fail the busiest link at t=4 for the rest of the day.
    let busiest = net
        .edge_ids()
        .max_by(|&a, &b| {
            let ra: f64 = (0..horizon).map(|t| system.state().reserved(a, t)).sum();
            let rb: f64 = (0..horizon).map(|t| system.state().reserved(b, t)).sum();
            ra.partial_cmp(&rb).unwrap()
        })
        .unwrap();
    println!(
        "failing busiest link {busiest} ({} -> {}) from t=4",
        net.edge(busiest).from,
        net.edge(busiest).to
    );

    for t in 0..horizon {
        if t == 4 {
            system.inject_capacity_loss(busiest, 4, horizon, 1.0);
        }
        system.run_sam(t, &usage).expect("SAM");
        system.execute_step(t, &mut usage);
    }

    let mut met = 0;
    let mut missed = 0;
    for &id in &admitted {
        let c = system.contract(id);
        if c.guarantee_met() {
            met += 1;
        } else {
            missed += 1;
            println!(
                "  MISSED {:?}: delivered {:.1} of guaranteed {:.1}",
                c.params.id, c.delivered, c.guaranteed
            );
        }
    }
    println!("guarantees met: {met}, missed: {missed}");
    // No traffic may ride the dead link after the failure.
    let leaked: f64 = (4..horizon).map(|t| usage.at(busiest, t)).sum();
    println!("volume on failed link after t=4: {leaked:.3}");
    assert!(leaked < 1e-9, "SAM must not schedule over a dead link");
    assert!(usage.capacity_violations(&net, 1e-5).is_empty(), "no capacity violations allowed");
}
