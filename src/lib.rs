//! # pretium — dynamic pricing + traffic engineering for inter-DC transfers
//!
//! Umbrella crate for the reproduction of *"Dynamic Pricing and Traffic
//! Engineering for Timely Inter-Datacenter Transfers"* (SIGCOMM 2016).
//! Re-exports the workspace crates under one roof:
//!
//! * [`lp`] — self-contained revised-simplex LP solver with exact duals
//!   (replaces Gurobi).
//! * [`net`] — WAN substrate: topology, k-shortest paths, percentile link
//!   costs, usage accounting.
//! * [`workload`] — synthetic traffic traces and deadline request streams
//!   (replaces the proprietary NetFlow trace).
//! * [`core`] — Pretium itself: price menus, request admission, schedule
//!   adjustment, dual-based price computation, top-k cost encodings.
//! * [`baselines`] — OPT, NoPrices, RegionOracle, PeakOracle, VCGLike.
//! * [`sim`] — replay simulator, §6 experiment runners, §5 incentive study.
//!
//! ## Quickstart
//!
//! ```
//! use pretium::core::{Pretium, PretiumConfig, RequestParams};
//! use pretium::net::{topology, TimeGrid};
//! use pretium::workload::RequestId;
//!
//! let net = topology::default_eval(42);
//! let grid = TimeGrid::coarse_default();
//! let mut system = Pretium::new(net, grid, 96, PretiumConfig::default());
//!
//! // A customer asks to move 40 units from node 0 to node 5 by step 12.
//! let params = RequestParams {
//!     id: RequestId(0),
//!     src: pretium::net::NodeId(0),
//!     dst: pretium::net::NodeId(5),
//!     demand: 40.0,
//!     arrival: 0,
//!     start: 0,
//!     deadline: 12,
//! };
//! // Pricing is a pure read off a published snapshot; the customer's
//! // private value stays inside the response closure, and the booking
//! // goes through the deterministic sequencer.
//! let (menu, admitted) =
//!     system.admit_one(&params, |menu| menu.optimal_purchase(/*value=*/1.0, params.demand));
//! assert!(menu.capacity_bound() >= 0.0);
//! if let Some(id) = admitted {
//!     assert!(system.contract(id).guaranteed > 0.0);
//! }
//! ```

pub use pretium_baselines as baselines;
pub use pretium_core as core;
pub use pretium_lp as lp;
pub use pretium_net as net;
pub use pretium_sim as sim;
pub use pretium_workload as workload;
