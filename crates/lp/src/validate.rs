//! Independent optimality certification.
//!
//! Given a model and a candidate [`Solution`], these checks certify
//! optimality *without* trusting the solver's internal state:
//!
//! 1. **Primal feasibility** — every row and bound holds within tolerance.
//! 2. **Dual feasibility** — row duals have the sign their row type
//!    requires, and every variable's reduced cost `c_j - yᵀA_j` is
//!    consistent with the bound the variable rests at.
//! 3. **Complementary slackness** — slack rows have (near-)zero duals and
//!    interior variables have (near-)zero reduced costs.
//!
//! Together these are the KKT conditions for linear programming, which are
//! sufficient for global optimality. The test suites of every downstream
//! crate call [`assert_optimal`] on solver output.

use crate::model::{Cmp, Model, RowId, Sense};
use crate::solution::Solution;
use crate::Var;

/// A violated optimality condition.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    RowInfeasible { row: String, lhs: f64, cmp: Cmp, rhs: f64 },
    BoundInfeasible { var: String, value: f64, lb: f64, ub: f64 },
    DualSign { row: String, dual: f64, cmp: Cmp },
    ReducedCostSign { var: String, reduced: f64, at: &'static str },
    Slackness { what: String, product: f64 },
    ObjectiveMismatch { reported: f64, recomputed: f64 },
}

/// Check all KKT conditions; returns every violation found.
pub fn check_optimal(model: &Model, sol: &Solution, tol: f64) -> Vec<Violation> {
    let mut out = Vec::new();
    let x = sol.values();
    let sense_sign = match model.sense() {
        Sense::Maximize => 1.0,
        Sense::Minimize => -1.0,
    };
    // Scale tolerance by data magnitude for robustness on large problems.
    let scale = |v: f64| tol * (1.0 + v.abs());

    // 1. Primal feasibility.
    for i in 0..model.num_rows() {
        let r = RowId::from_index(i);
        let lhs = model.row_lhs(r, x);
        let rhs = row_rhs(model, i);
        let cmp = row_cmp(model, i);
        let ok = match cmp {
            Cmp::Le => lhs <= rhs + scale(rhs),
            Cmp::Ge => lhs >= rhs - scale(rhs),
            Cmp::Eq => (lhs - rhs).abs() <= scale(rhs),
        };
        if !ok {
            out.push(Violation::RowInfeasible { row: model.row_name(r).into(), lhs, cmp, rhs });
        }
    }
    for (j, &val) in x.iter().enumerate().take(model.num_vars()) {
        let v = Var::from_index(j);
        let (lb, ub) = model.bounds(v);
        if val < lb - scale(lb) || val > ub + scale(ub) {
            out.push(Violation::BoundInfeasible {
                var: model.var_name(v).into(),
                value: val,
                lb,
                ub,
            });
        }
    }

    // 2. Dual sign conditions. With duals defined as d(obj)/d(rhs) in the
    // model's own sense: for Maximize, a <= row must have dual >= 0 and a
    // >= row dual <= 0 (Minimize flips both). Equality rows are free.
    for i in 0..model.num_rows() {
        let r = RowId::from_index(i);
        let dual = sol.dual(r);
        let cmp = row_cmp(model, i);
        let signed = sense_sign * dual;
        let ok = match cmp {
            Cmp::Le => signed >= -tol,
            Cmp::Ge => signed <= tol,
            Cmp::Eq => true,
        };
        if !ok {
            out.push(Violation::DualSign { row: model.row_name(r).into(), dual, cmp });
        }
    }

    // 3. Reduced-cost sign + complementary slackness for variables.
    // reduced = c_j - yᵀ A_j (model sense). At optimum of a Maximize model:
    // at lower bound => reduced <= 0, at upper bound => reduced >= 0,
    // strictly interior => reduced == 0.
    for (j, &val) in x.iter().enumerate().take(model.num_vars()) {
        let v = Var::from_index(j);
        let reduced = recompute_reduced(model, sol, j);
        let (lb, ub) = model.bounds(v);
        let at_lb = lb.is_finite() && (val - lb).abs() <= scale(lb);
        let at_ub = ub.is_finite() && (val - ub).abs() <= scale(ub);
        let rtol = tol * (1.0 + model.obj_coef(v).abs()) * 10.0;
        let s = sense_sign * reduced;
        if at_lb && at_ub {
            // Fixed variable: any reduced cost is fine.
        } else if at_lb {
            if s > rtol {
                out.push(Violation::ReducedCostSign {
                    var: model.var_name(v).into(),
                    reduced,
                    at: "lower",
                });
            }
        } else if at_ub {
            if s < -rtol {
                out.push(Violation::ReducedCostSign {
                    var: model.var_name(v).into(),
                    reduced,
                    at: "upper",
                });
            }
        } else if s.abs() > rtol {
            out.push(Violation::Slackness {
                what: format!("interior var {}", model.var_name(v)),
                product: reduced,
            });
        }
    }

    // 4. Row slackness: non-binding row => dual ~ 0.
    for i in 0..model.num_rows() {
        let r = RowId::from_index(i);
        let cmp = row_cmp(model, i);
        if cmp == Cmp::Eq {
            continue;
        }
        let lhs = model.row_lhs(r, x);
        let rhs = row_rhs(model, i);
        let slack = (rhs - lhs).abs();
        let dual = sol.dual(r);
        if slack > 1e-5 * (1.0 + rhs.abs()) && dual.abs() > 1e-5 * (1.0 + dual.abs()) {
            let product = slack * dual;
            if product.abs() > tol * 100.0 * (1.0 + rhs.abs()) {
                out.push(Violation::Slackness {
                    what: format!("row {}", model.row_name(r)),
                    product,
                });
            }
        }
    }

    // 5. Objective consistency.
    let recomputed: f64 =
        (0..model.num_vars()).map(|j| model.obj_coef(Var::from_index(j)) * x[j]).sum::<f64>()
            + model.obj_offset;
    if (recomputed - sol.objective()).abs() > tol * (1.0 + recomputed.abs()) * 10.0 {
        out.push(Violation::ObjectiveMismatch { reported: sol.objective(), recomputed });
    }

    out
}

/// Panic with a readable report if any KKT condition fails.
pub fn assert_optimal(model: &Model, sol: &Solution, tol: f64) {
    let violations = check_optimal(model, sol, tol);
    assert!(
        violations.is_empty(),
        "solution fails {} optimality condition(s):\n{:#?}",
        violations.len(),
        violations
    );
}

/// Recompute a variable's reduced cost from duals (does not trust the
/// solver's stored reduced costs).
pub fn recompute_reduced(model: &Model, sol: &Solution, j: usize) -> f64 {
    let v = Var::from_index(j);
    let mut d = model.obj_coef(v);
    for i in 0..model.num_rows() {
        let r = RowId::from_index(i);
        let coef = row_coef(model, i, j);
        if coef != 0.0 {
            d -= sol.dual(r) * coef;
        }
    }
    d
}

// -- small accessors over the model's internals (kept here so `Model`'s
//    public surface stays minimal) --

fn row_cmp(model: &Model, i: usize) -> Cmp {
    model.rows[i].cmp
}

fn row_rhs(model: &Model, i: usize) -> f64 {
    model.rows[i].rhs
}

fn row_coef(model: &Model, i: usize, j: usize) -> f64 {
    model.rows[i].terms.iter().find(|&&(v, _)| v as usize == j).map(|&(_, c)| c).unwrap_or(0.0)
}
