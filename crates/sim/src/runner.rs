//! The online Pretium runner: replays a request stream against a live
//! Pretium instance, driving the three module timescales exactly as §4
//! prescribes — RA at every arrival, SAM every timestep, PC at every
//! window boundary.
//!
//! RA is batched per timestep: each step's arrivals are quoted off one
//! published [`pretium_core::AdmissionSnapshot`] (serially, or fanned out
//! on the [`crate::par`] pool when `PretiumConfig::ra_jobs > 1`) and then
//! admitted in arrival order by the deterministic
//! [`pretium_core::Sequencer`] — bit-identical to the serial
//! quote→accept interleaving at any worker count.

use crate::faults::FaultPlan;
use crate::par::{run_cells_ok, Cell};
use crate::scenario::Scenario;
use pretium_baselines::Outcome;
use pretium_core::{Pretium, PretiumConfig, QuoteTicket, RequestParams, Sequencer};
use pretium_lp::{SessionStats, SolveError};
use pretium_net::UsageTracker;
use std::sync::Arc;

/// Sentinel request index for contracts that did not come from the
/// scenario's request stream (fault-plan surge traffic).
const SURGE_SENTINEL: usize = usize::MAX;

/// Which user-response / module configuration to run (Figure 11 ablations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Full Pretium.
    Full,
    /// Pretium-NoMenu: customers must take all-or-nothing at the quoted
    /// total price.
    NoMenu,
    /// Pretium-NoSAM: the schedule adjustment module is disabled;
    /// preliminary schedules are final.
    NoSam,
}

impl Variant {
    pub fn label(self) -> &'static str {
        match self {
            Variant::Full => "Pretium",
            Variant::NoMenu => "Pretium-NoMenu",
            Variant::NoSam => "Pretium-NoSAM",
        }
    }
}

/// Result of an online run: the uniform outcome plus the live system (for
/// inspecting price series, contracts, etc.).
pub struct PretiumRun {
    pub outcome: Outcome,
    pub system: Pretium,
    /// Per contract, the `(timestep, units)` delivery history — used by the
    /// §5 incentive study to value only units arriving within the *true*
    /// deadline.
    pub delivery_log: Vec<Vec<(usize, f64)>>,
    /// Request index -> contract index (None when not admitted).
    pub contract_of_request: Vec<Option<usize>>,
    /// LP restart counters over the whole run (SAM sessions + PC solves):
    /// how many solves there were and how many reused a previous basis.
    pub lp_stats: SessionStats,
}

impl PretiumRun {
    /// Per-module counters and timings accumulated over the run.
    pub fn telemetry(&self) -> &pretium_core::Telemetry {
        self.system.telemetry()
    }

    /// The invariant auditor, when auditing was enabled (always in
    /// debug/test builds, behind `PretiumConfig::audit` in release).
    pub fn audit(&self) -> Option<&pretium_core::Auditor> {
        self.system.auditor()
    }

    /// Render the run's telemetry (and audit summary, when available) as a
    /// report section, followed by the LP solver counters.
    pub fn telemetry_report(&self, title: &str) -> String {
        let mut out = crate::report::render_telemetry(title, self.telemetry(), self.audit());
        out.push_str(&crate::report::render_lp("lp solver", &self.lp_stats));
        out
    }
}

/// Replay `scenario` through Pretium, warm-starting prices with one
/// throwaway pass (see [`run_pretium_cold`] for the raw cold-start run).
///
/// The paper's deployment has weeks of history behind its first measured
/// window; a fresh simulation has none, so a third or more of a short run
/// would otherwise be spent at uninformative cold-start prices. The warm-up
/// replays the same scenario once, lifts the final window's learned price
/// pattern, and seeds the measured run with it.
pub fn run_pretium(
    scenario: &Scenario,
    cfg: PretiumConfig,
    variant: Variant,
) -> Result<PretiumRun, SolveError> {
    run_pretium_with_faults(scenario, cfg, variant, None)
}

/// Replay `scenario` under an injected [`FaultPlan`] (§4.4 robustness).
///
/// The warm-up pass runs *healthy* — prices are learned from the intact
/// topology, as a deployment's price history predates the fault — and only
/// the measured pass replays the plan.
pub fn run_pretium_faulted(
    scenario: &Scenario,
    cfg: PretiumConfig,
    variant: Variant,
    plan: &FaultPlan,
) -> Result<PretiumRun, SolveError> {
    run_pretium_with_faults(scenario, cfg, variant, Some(plan))
}

fn run_pretium_with_faults(
    scenario: &Scenario,
    cfg: PretiumConfig,
    variant: Variant,
    faults: Option<&FaultPlan>,
) -> Result<PretiumRun, SolveError> {
    let warm = run_pretium_cold(scenario, cfg.clone(), variant, None, None)?;
    let w = scenario.grid.steps_per_window;
    let last_window_start = scenario.horizon - w;
    let pattern: Vec<Vec<f64>> = scenario
        .net
        .edge_ids()
        .map(|e| (0..w).map(|s| warm.system.state().price(e, last_window_start + s)).collect())
        .collect();
    run_pretium_cold(scenario, cfg, variant, Some(&pattern), faults)
}

/// Replay `scenario` through Pretium starting from the given price pattern
/// (per edge, per step-in-window), or from cold-start floors when `None`.
/// A [`FaultPlan`] replays its events against the live system: capacity
/// events fire before each step's admissions, and surge requests are quoted
/// and admitted after the step's scenario arrivals.
pub fn run_pretium_cold(
    scenario: &Scenario,
    cfg: PretiumConfig,
    variant: Variant,
    seed_pattern: Option<&[Vec<f64>]>,
    faults: Option<&FaultPlan>,
) -> Result<PretiumRun, SolveError> {
    let mut cfg = cfg;
    if variant == Variant::NoSam {
        cfg.sam_enabled = false;
    }
    let mut system = Pretium::new(scenario.net.clone(), scenario.grid, scenario.horizon, cfg);
    if let Some(pattern) = seed_pattern {
        system.seed_prices(|e, s| pattern[e.index()][s]);
    }
    let mut usage = UsageTracker::new(scenario.net.num_edges(), scenario.horizon);
    let n = scenario.requests.len();
    let mut outcome = Outcome::new(variant.label(), n, scenario.net.num_edges(), scenario.horizon);
    // Requests are sorted by arrival; walk them with a cursor.
    let mut next_req = 0usize;
    // Map contract -> request index for final accounting.
    let mut contract_req: Vec<usize> = Vec::new();
    let mut delivery_log: Vec<Vec<(usize, f64)>> = Vec::new();
    let mut prev_delivered: Vec<f64> = Vec::new();

    for t in 0..scenario.horizon {
        // Scheduled faults fire first: an outage starting at `t` must be
        // visible to everything that runs at `t` (PC freeze checks, quotes,
        // SAM re-planning). A capacity event triggers an immediate SAM
        // re-optimization — until SAM re-plans, reservations on the dead
        // link are stale and quotes would be made against a broken state.
        if let Some(plan) = faults {
            plan.apply_step(&mut system, t);
            if plan.capacity_event_at(t) {
                system.run_sam(t, &usage)?;
            }
        }
        // Price computer at window boundaries (not at t=0: nothing to
        // learn yet).
        if scenario.grid.step_in_window(t) == 0 && t > 0 {
            system.run_pc(t)?;
        }
        // Request admission for this step's arrivals: scenario requests
        // (in index order) and fault-plan surge traffic join one batch,
        // quoted off a single published snapshot and then sequenced in
        // batch order. Surge contracts are accounted outside the
        // scenario's request indices (see SURGE_SENTINEL).
        let mut batch: Vec<(RequestParams, f64, f64, usize)> = Vec::new();
        while next_req < n && scenario.requests[next_req].arrival == t {
            let r = &scenario.requests[next_req];
            batch.push((RequestParams::from(r), r.value, r.demand, next_req));
            next_req += 1;
        }
        if let Some(plan) = faults {
            for r in plan.surges_at(t) {
                batch.push((RequestParams::from(r), r.value, r.demand, SURGE_SENTINEL));
            }
        }
        let tickets = quote_batch(&mut system, &batch, t);
        // The sequencer is created even on empty steps: `finish` owns the
        // SAM cadence the serial loop ran inline.
        let mut seq = Sequencer::new(&mut system);
        for (ticket, &(_, value, demand, ri)) in tickets.iter().zip(&batch) {
            let admitted = seq.admit(ticket, |menu| match variant {
                // Surges always respond optimally, even under NoMenu.
                Variant::NoMenu if ri != SURGE_SENTINEL => {
                    menu.all_or_nothing_purchase(value, demand)
                }
                _ => menu.optimal_purchase(value, demand),
            });
            if let Some(id) = admitted {
                if ri != SURGE_SENTINEL {
                    outcome.admitted[ri] = true;
                    outcome.payments[ri] = seq.contract(id).payment;
                }
                contract_req.push(ri);
            }
        }
        // Schedule adjustment (at the configured cadence).
        seq.finish(t, &usage)?;
        // Move bytes, logging per-contract deltas.
        system.execute_step(t, &mut usage);
        delivery_log.resize(system.contracts().len(), Vec::new());
        prev_delivered.resize(system.contracts().len(), 0.0);
        for (ci, c) in system.contracts().iter().enumerate() {
            let delta = c.delivered - prev_delivered[ci];
            if delta > 1e-12 {
                delivery_log[ci].push((t, delta));
                prev_delivered[ci] = c.delivered;
            }
        }
    }

    let mut contract_of_request: Vec<Option<usize>> = vec![None; n];
    for (ci, &ri) in contract_req.iter().enumerate() {
        if ri == SURGE_SENTINEL {
            continue; // surge traffic: not part of the scenario's outcome
        }
        outcome.delivered[ri] = system.contracts()[ci].delivered;
        contract_of_request[ri] = Some(ci);
    }
    outcome.usage = usage;
    delivery_log.resize(system.contracts().len(), Vec::new());
    let lp_stats = system.lp_stats();
    Ok(PretiumRun { outcome, system, delivery_log, contract_of_request, lp_stats })
}

/// Quote one timestep's arrival batch off a single published snapshot.
///
/// With `ra_jobs <= 1` quotes run serially on the caller's thread; above
/// that they fan out over the work-stealing pool, one cell per request.
/// Either way results come back in batch order and the snapshot's quote
/// telemetry is absorbed before sequencing, so the two paths are
/// indistinguishable downstream.
fn quote_batch(
    system: &mut Pretium,
    batch: &[(RequestParams, f64, f64, usize)],
    t: usize,
) -> Vec<QuoteTicket> {
    if batch.is_empty() {
        return Vec::new();
    }
    let snap = system.snapshot();
    let jobs = system.config().ra_jobs;
    let tickets = if jobs <= 1 {
        batch.iter().map(|(params, ..)| snap.ticket(params)).collect()
    } else {
        let cells: Vec<Cell<QuoteTicket, std::convert::Infallible>> = batch
            .iter()
            .map(|(params, ..)| {
                let snap = Arc::clone(&snap);
                let params = params.clone();
                Cell::new(format!("ra/t{t}/req{:?}", params.id), move || Ok(snap.ticket(&params)))
            })
            .collect();
        let (tickets, _pool) = run_cells_ok(jobs, cells);
        tickets
    };
    system.absorb_quotes(&snap);
    tickets
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioConfig;

    fn small() -> Scenario {
        ScenarioConfig::tiny(11).build()
    }

    #[test]
    fn run_completes_and_respects_capacity() {
        let sc = small();
        let run = run_pretium(&sc, PretiumConfig::default(), Variant::Full).unwrap();
        let violations = run.outcome.usage.capacity_violations(&sc.net, 1e-5);
        assert!(violations.is_empty(), "{violations:?}");
        // Someone must have been admitted and served.
        let served: f64 = run.outcome.delivered.iter().sum();
        assert!(served > 0.0);
        assert!(run.outcome.admitted.iter().any(|&a| a));
        assert_eq!(run.system.pc_runs(), 1);
    }

    #[test]
    fn guarantees_met_for_all_contracts() {
        let sc = small();
        let run = run_pretium(&sc, PretiumConfig::default(), Variant::Full).unwrap();
        for c in run.system.contracts() {
            assert!(
                c.guarantee_met(),
                "{:?}: delivered {} < guaranteed {}",
                c.params.id,
                c.delivered,
                c.guaranteed
            );
        }
    }

    #[test]
    fn payments_never_exceed_value_for_rational_users() {
        let sc = small();
        let run = run_pretium(&sc, PretiumConfig::default(), Variant::Full).unwrap();
        for (r, (&paid, &delivered)) in
            sc.requests.iter().zip(run.outcome.payments.iter().zip(&run.outcome.delivered))
        {
            // Theorem 5.2 users never pay a marginal price above value, so
            // total payment <= value × purchased; delivered >= guaranteed
            // implies payment <= value × max(delivered, purchased).
            assert!(
                paid <= r.value * r.demand + 1e-6,
                "{:?}: paid {paid} > max willingness {}",
                r.id,
                r.value * r.demand
            );
            let _ = delivered;
        }
    }

    #[test]
    fn nomenu_admits_fewer_or_equal_requests() {
        let sc = small();
        let full = run_pretium(&sc, PretiumConfig::default(), Variant::Full).unwrap();
        let nomenu = run_pretium(&sc, PretiumConfig::default(), Variant::NoMenu).unwrap();
        let n_full = full.outcome.admitted.iter().filter(|&&a| a).count();
        let n_nomenu = nomenu.outcome.admitted.iter().filter(|&&a| a).count();
        // All-or-nothing can only lose customers at the margin (not a
        // theorem under different system paths, but holds on this seed and
        // documents the intended direction).
        assert!(n_nomenu <= n_full, "NoMenu admitted {n_nomenu} > Full {n_full}");
    }

    #[test]
    fn sam_loop_mostly_warm_starts() {
        let sc = small();
        let run = run_pretium(&sc, PretiumConfig::default(), Variant::Full).unwrap();
        let s = run.lp_stats;
        assert!(s.solves > 0, "{s:?}");
        // SAM re-solves every timestep off a carried session; the bulk of
        // the run's LP solves must reuse a basis rather than start cold.
        assert!(s.warm_primal + s.warm_dual > s.cold_starts, "warm starts did not dominate: {s:?}");
    }

    #[test]
    fn full_replay_is_audit_clean() {
        let sc = small();
        let run = run_pretium(&sc, PretiumConfig::default(), Variant::Full).unwrap();
        // Test builds audit unconditionally; a full replay must sweep every
        // checkpoint without recording a single invariant violation.
        let aud = run.audit().expect("auditor active in debug/test builds");
        assert!(aud.checks() > 0);
        assert!(aud.is_clean(), "violations: {:?}", aud.violations());
        let t = run.telemetry();
        assert!(t.accept.calls > 0);
        assert!(t.execute.calls as usize == sc.horizon);
        assert_eq!(t.audit_violations, 0);
        let rendered = run.telemetry_report("telemetry");
        assert!(rendered.contains("audit sweeps"));
    }

    #[test]
    fn nosam_variant_disables_sam() {
        let sc = small();
        let run = run_pretium(&sc, PretiumConfig::default(), Variant::NoSam).unwrap();
        assert!(!run.system.config().sam_enabled);
        assert!(run.outcome.usage.capacity_violations(&sc.net, 1e-5).is_empty());
    }
}
