//! Link cost models (§3.1 / §4.2 of the paper).
//!
//! Two kinds of links exist on a production inter-DC WAN:
//!
//! * **Owned** links: capital expense fixed at capacity-planning time. Their
//!   cost does not vary with usage, so it drops out of the social-welfare
//!   objective (which only compares *operating* costs across schedules).
//! * **Percentile** links, leased from upstream ISPs: billed on the 95th
//!   percentile of per-timestep usage over a billing window (typically a
//!   day). This is the non-convex cost the paper approximates with the
//!   *sum-of-top-k* proxy (average usage over the top 10% of timesteps).

/// The billing percentile used throughout the paper.
pub const BILLING_PERCENTILE: f64 = 0.95;

/// Fraction of timesteps in the top-usage average proxy (§4.2: top 10%).
pub const TOP_FRACTION: f64 = 0.10;

/// How the provider pays for a link.
#[derive(Debug, Clone, PartialEq)]
pub enum LinkCost {
    /// Privately owned; cost fixed at planning time, excluded from welfare.
    Owned,
    /// Usage-billed: `unit_cost` dollars per unit of 95th-percentile usage
    /// per billing window.
    Percentile {
        /// Dollars charged per unit of 95th-percentile usage.
        unit_cost: f64,
    },
}

impl LinkCost {
    /// An owned (fixed-cost) link.
    pub fn owned() -> Self {
        LinkCost::Owned
    }

    /// A percentile-billed link with the given unit cost.
    ///
    /// # Panics
    /// Panics if `unit_cost` is negative or non-finite.
    pub fn percentile(unit_cost: f64) -> Self {
        assert!(unit_cost >= 0.0 && unit_cost.is_finite(), "unit_cost must be >= 0 and finite");
        LinkCost::Percentile { unit_cost }
    }

    /// The per-unit charge, or 0 for owned links.
    pub fn unit_cost(&self) -> f64 {
        match self {
            LinkCost::Owned => 0.0,
            LinkCost::Percentile { unit_cost } => *unit_cost,
        }
    }

    /// True for usage-billed links.
    pub fn is_percentile(&self) -> bool {
        matches!(self, LinkCost::Percentile { .. })
    }

    /// Operating cost of this link for a usage time series over one billing
    /// window, using the **true** (non-convex) 95th-percentile rule.
    pub fn window_cost(&self, usage: &[f64]) -> f64 {
        match self {
            LinkCost::Owned => 0.0,
            LinkCost::Percentile { unit_cost } => {
                unit_cost * crate::percentile::percentile(usage, BILLING_PERCENTILE)
            }
        }
    }

    /// Operating cost under the paper's sum-of-top-k proxy (`C_e · z_e`
    /// with `z_e` the mean of the top 10% usage values).
    pub fn proxy_window_cost(&self, usage: &[f64]) -> f64 {
        match self {
            LinkCost::Owned => 0.0,
            LinkCost::Percentile { unit_cost } => {
                unit_cost * crate::percentile::top_fraction_mean(usage, TOP_FRACTION)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owned_is_free() {
        let c = LinkCost::owned();
        assert_eq!(c.window_cost(&[5.0; 100]), 0.0);
        assert_eq!(c.unit_cost(), 0.0);
        assert!(!c.is_percentile());
    }

    #[test]
    fn percentile_cost_scales_with_unit_cost() {
        let usage: Vec<f64> = (1..=100).map(|v| v as f64).collect();
        let c1 = LinkCost::percentile(1.0).window_cost(&usage);
        let c3 = LinkCost::percentile(3.0).window_cost(&usage);
        assert!((c3 - 3.0 * c1).abs() < 1e-12);
        assert!(c1 > 0.0);
    }

    #[test]
    fn proxy_upper_bounds_true_cost_on_heavy_tails() {
        // With a heavy spike, the top-10% mean exceeds the 95th percentile.
        let mut usage = vec![1.0; 99];
        usage.push(1000.0);
        let c = LinkCost::percentile(1.0);
        assert!(c.proxy_window_cost(&usage) >= c.window_cost(&usage));
    }

    #[test]
    #[should_panic(expected = "unit_cost")]
    fn negative_unit_cost_rejected() {
        LinkCost::percentile(-1.0);
    }
}
