//! The §5 incentive study: can customers gain by misreporting deadlines or
//! splitting requests? Re-runs the full simulation per sampled deviation
//! and reports the fraction who could benefit and by how much (the paper
//! measured <26% able to gain, <6% average gain).
//!
//! ```text
//! cargo run --release --example incentive_audit
//! ```

use pretium::core::PretiumConfig;
use pretium::sim::{analyze_deviations, Deviation, ScenarioConfig};

fn main() {
    let scenario = ScenarioConfig::evaluation(rand::DEFAULT_SEED, 1.0).build();
    println!(
        "scenario: {} requests over {} timesteps\n",
        scenario.requests.len(),
        scenario.horizon
    );
    let deviations = [
        Deviation::LaterDeadline(2),
        Deviation::LaterDeadline(4),
        Deviation::TighterDeadline(1),
        Deviation::Split,
    ];
    let report = analyze_deviations(&scenario, &PretiumConfig::default(), &deviations, 10)
        .expect("deviation study");

    println!("sampled admitted users : {}", report.sampled);
    println!("full re-simulations    : {}", report.simulated);
    println!(
        "could gain             : {}/{} ({:.0}%)  [paper: <26%]",
        report.gainers,
        report.sampled,
        100.0 * report.gainer_fraction()
    );
    println!("avg gain when gaining  : {:.1}%            [paper: <6%]", 100.0 * report.avg_gain);
    println!("max gain observed      : {:.1}%", 100.0 * report.max_gain);
    println!("\nper deviation:");
    for (label, attempts, gainers, mean_gain) in &report.per_deviation {
        println!(
            "  {label:<12} attempts {attempts:>3}  gainers {gainers:>3}  mean gain {:.1}%",
            100.0 * mean_gain
        );
    }
}
