//! Offline drop-in replacement for the subset of `rand` 0.8 used by this
//! workspace.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a tiny API-compatible shim instead of the real crate: the
//! [`Rng`] / [`SeedableRng`] traits and a deterministic [`rngs::StdRng`]
//! built on xoshiro256++. Streams are *not* bit-compatible with upstream
//! `rand`; everything in the workspace treats seeds as opaque, so only
//! determinism per seed matters.

/// The workspace-wide default seed. Experiments, scenarios, benches, and
/// examples all start from this one constant; independent streams are
/// derived from it with [`derive_seed`] rather than by hard-coding sibling
/// constants.
pub const DEFAULT_SEED: u64 = 7;

/// FNV-1a hash of a label, used to split one base seed into named streams.
pub fn hash_label(label: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in label.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Derive an independent, deterministic stream seed from `base` and a
/// `label` naming the stream (`seed ⊕ hash(label)`, finalized through a
/// SplitMix64 round so labels differing in one bit give unrelated seeds).
///
/// This is the workspace's stream-splitting primitive: the parallel
/// evaluation engine derives one seed per sweep *cell* from the run seed
/// and the cell's label, so results are a pure function of `(seed, cell)`
/// — identical whether cells execute serially or on any number of worker
/// threads, in any order.
pub fn derive_seed(base: u64, label: &str) -> u64 {
    split_u64(base ^ hash_label(label))
}

/// Derive an independent stream seed from `base` and a stream index
/// (the numeric sibling of [`derive_seed`], for unlabeled replications).
pub fn derive_seed_indexed(base: u64, index: u64) -> u64 {
    split_u64(base ^ index.wrapping_mul(0x9E3779B97F4A7C15))
}

/// One SplitMix64 finalization round (also used by `StdRng::seed_from_u64`
/// for state expansion).
fn split_u64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Hash map with a fixed, thread-independent hasher.
///
/// `std`'s default `RandomState` draws its keys from a per-thread seed, so
/// two identical maps iterate in different orders on different threads (or
/// in different processes). Anywhere iteration order can reach a result —
/// float accumulation, LP row construction, tie-breaking — that turns the
/// worker a sweep cell lands on into an input. The evaluation engine's
/// determinism contract (results are a pure function of the cell spec)
/// therefore requires every such map to use this deterministic state
/// instead of `RandomState`. Build with `DetHashMap::default()` or
/// `with_capacity_and_hasher(n, DetState)`.
pub type DetHashMap<K, V> = std::collections::HashMap<K, V, DetState>;

/// Hash set sibling of [`DetHashMap`].
pub type DetHashSet<K> = std::collections::HashSet<K, DetState>;

/// [`std::hash::BuildHasher`] yielding [`DetHasher`]s from a constant seed.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DetState;

impl std::hash::BuildHasher for DetState {
    type Hasher = DetHasher;

    fn build_hasher(&self) -> DetHasher {
        DetHasher { state: 0 }
    }
}

/// A fast multiply-xor hasher (the FxHash construction) with no random
/// keys. Not DoS-resistant — keys here are internal (edge ids, timesteps,
/// variable indices), never attacker-controlled.
#[derive(Debug, Clone, Copy)]
pub struct DetHasher {
    state: u64,
}

impl DetHasher {
    const K: u64 = 0x517cc1b727220a95;

    #[inline]
    fn add(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(Self::K);
    }
}

impl std::hash::Hasher for DetHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(tail) ^ (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// Uniform sampling from a range type (the slice of `rand`'s
/// `SampleRange`/`SampleUniform` machinery the workspace needs).
pub trait SampleRange<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 range");
        lo + (hi - lo) * rng.next_f64()
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift rejection-free mapping; bias is < 2^-64 per
                // draw, far below anything the simulations can detect.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range");
                let span = (hi - lo) as u64 + 1;
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo + v as $t
            }
        }
    )*};
}
int_range!(usize, u64, u32, i64, i32);

/// Types producible by [`Rng::gen`] (the shim's stand-in for sampling from
/// `rand`'s `Standard` distribution).
pub trait Standard: Sized {
    fn generate<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn generate<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        rng.next_f64()
    }
}

impl Standard for u64 {
    fn generate<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn generate<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Random number generator interface.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Sample uniformly from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Sample a value of type `T` (only `f64`, `u64`, `bool` are wired up).
    #[allow(clippy::should_implement_trait)]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::generate(self)
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.next_f64() < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator (API stand-in for `rand`'s
    /// `StdRng`; the stream differs from upstream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, as recommended by the
            // xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn derive_seed_is_stable_and_label_sensitive() {
        use super::{derive_seed, derive_seed_indexed, DEFAULT_SEED};
        assert_eq!(derive_seed(DEFAULT_SEED, "traffic"), derive_seed(DEFAULT_SEED, "traffic"));
        assert_ne!(derive_seed(DEFAULT_SEED, "traffic"), derive_seed(DEFAULT_SEED, "requests"));
        assert_ne!(derive_seed(1, "traffic"), derive_seed(2, "traffic"));
        assert_ne!(derive_seed_indexed(1, 0), derive_seed_indexed(1, 1));
        // Streams derived from different labels are decorrelated enough to
        // seed independent generators.
        let mut a = StdRng::seed_from_u64(derive_seed(DEFAULT_SEED, "a"));
        let mut b = StdRng::seed_from_u64(derive_seed(DEFAULT_SEED, "b"));
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f = r.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = r.gen_range(3usize..9);
            assert!((3..9).contains(&i));
            let fi = r.gen_range(1.0..=2.0);
            assert!((1.0..=2.0).contains(&fi));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut r = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "{hits}");
    }

    #[test]
    fn unit_f64_mean_is_half() {
        let mut r = StdRng::seed_from_u64(3);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "{mean}");
    }
}
