//! Minimal benchmark harness for the `benches/` targets.
//!
//! The build environment has no registry access, so Criterion is not
//! available; this provides the small subset the benches need — named
//! benchmarks, warm-up, a fixed sample count, and median/mean reporting —
//! with a Criterion-like API so the bench sources read the same way.
//!
//! Run with `cargo bench -p pretium-bench`. Results print as
//! `name  median  mean  (samples)` and a machine-readable `BENCH\t` line
//! per benchmark for scripts to scrape.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export so benches can `use pretium_bench::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// One measured benchmark result.
#[derive(Debug, Clone)]
pub struct Measurement {
    pub name: String,
    pub samples: Vec<Duration>,
}

impl Measurement {
    pub fn median(&self) -> Duration {
        let mut s = self.samples.clone();
        s.sort();
        s[s.len() / 2]
    }

    pub fn mean(&self) -> Duration {
        let total: Duration = self.samples.iter().sum();
        total / self.samples.len() as u32
    }
}

/// Passed to the closure given to [`Harness::bench_function`]; call
/// [`Bencher::iter`] exactly once with the body to measure.
pub struct Bencher {
    samples: usize,
    min_iters: u64,
    recorded: Option<Vec<Duration>>,
}

impl Bencher {
    /// Measure `body`. Each sample runs the body enough times to exceed a
    /// minimum per-sample duration, then records the per-iteration time.
    pub fn iter<T>(&mut self, mut body: impl FnMut() -> T) {
        // Warm-up + calibration: find an iteration count that takes long
        // enough to time reliably.
        let mut iters = self.min_iters;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std_black_box(body());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(5) || iters >= 1 << 20 {
                break;
            }
            iters *= 2;
        }
        let mut samples = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                std_black_box(body());
            }
            samples.push(start.elapsed() / iters as u32);
        }
        self.recorded = Some(samples);
    }
}

/// Collects and reports benchmarks; the harness analogue of `Criterion`.
pub struct Harness {
    samples: usize,
    results: Vec<Measurement>,
}

impl Default for Harness {
    fn default() -> Self {
        Self::new()
    }
}

impl Harness {
    pub fn new() -> Self {
        Harness { samples: 10, results: Vec::new() }
    }

    /// Number of timed samples per benchmark (default 10).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.samples = n.max(2);
        self
    }

    /// Run one named benchmark. Honors the usual bench-filter argument:
    /// `cargo bench -p pretium-bench -- <substring>` skips non-matching
    /// names.
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        if let Some(filter) = std::env::args().nth(1) {
            if !filter.starts_with('-') && !name.contains(&filter) {
                return self;
            }
        }
        let mut b = Bencher { samples: self.samples, min_iters: 1, recorded: None };
        f(&mut b);
        let samples = b.recorded.expect("bench closure must call Bencher::iter");
        let m = Measurement { name: name.to_string(), samples };
        println!(
            "{:<44} median {:>12?}  mean {:>12?}  ({} samples)",
            m.name,
            m.median(),
            m.mean(),
            m.samples.len()
        );
        println!("BENCH\t{}\t{}", m.name, m.median().as_nanos());
        self.results.push(m);
        self
    }

    /// All measurements so far, for benches that post-process (e.g. compute
    /// a warm/cold ratio).
    pub fn results(&self) -> &[Measurement] {
        &self.results
    }

    /// Look up a finished measurement by exact name.
    pub fn get(&self, name: &str) -> Option<&Measurement> {
        self.results.iter().find(|m| m.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_measures_and_reports() {
        let mut h = Harness::new().sample_size(3);
        h.bench_function("noop", |b| b.iter(|| 1 + 1));
        let m = h.get("noop").expect("recorded");
        assert_eq!(m.samples.len(), 3);
        assert!(m.median() <= m.samples.iter().max().cloned().unwrap());
    }
}
