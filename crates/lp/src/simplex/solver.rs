//! The bounded-variable revised simplex iteration core.
//!
//! Works on the standard form produced by [`super::Problem::from_model`]:
//! a crash basis is built first (slacks where the initial residual fits,
//! artificials elsewhere), then phase 1 minimizes the artificial sum and
//! phase 2 the true cost vector. Anti-cycling falls back to Bland's rule
//! after a run of degenerate pivots.

use super::basis::{FactorError, FactorStats, Factorization};
use super::{Pricing, Problem, SimplexOptions};
use crate::solution::SolveError;
use pretium_par as par;
use std::time::Instant;

/// Row-major view of the structural matrix: for each row, its
/// `(column, coefficient)` terms sorted by column. Slack and artificial
/// entries are implicit (`slack_start + i` with coefficient 1, and the
/// artificial's crash-time sign from `Problem::cols`).
pub(crate) type RowTerms<'a> = &'a [(u32, f64)];

/// Where a nonbasic variable currently rests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum NbState {
    Lower,
    Upper,
    /// Free variable parked at zero.
    Free,
}

/// Result of the iteration core, in internal (minimization) terms.
pub(crate) struct Outcome {
    /// Values of all columns (structurals, slacks, artificials).
    pub x: Vec<f64>,
    /// Row duals for the internal minimization problem.
    pub y: Vec<f64>,
    pub iterations: u64,
    /// Basic column per row position at termination.
    pub basis: Vec<usize>,
    /// Rest state of every column (meaningful for nonbasic ones).
    pub nb: Vec<NbState>,
    /// Columns examined by pricing (selection scans plus incremental
    /// pivot-row update touches).
    pub pricing_scans: u64,
    /// Iterations priced under the Bland's-rule anti-cycling fallback.
    pub bland_pivots: u64,
    /// Sections executed by the deterministic parallel-pricing primitive
    /// (`pricing_jobs > 1` only; the serial path never touches it).
    pub pricing_par_sections: u64,
    /// Parallel-pricing sections that ran on a worker which stole them
    /// from a sibling's deque. Timing-dependent; never deterministic.
    pub pricing_par_steals: u64,
    /// Wall clock spent in the incremental pricing routines on the serial
    /// path, in nanoseconds.
    pub pricing_serial_nanos: u64,
    /// Wall clock spent in the incremental pricing routines on the
    /// parallel path, in nanoseconds.
    pub pricing_par_nanos: u64,
    /// Basis-factorization counters accumulated over the solve.
    pub factor_stats: FactorStats,
}

impl Outcome {
    /// Internal reduced cost of column `j`.
    pub fn reduced_cost(&self, p: &Problem, j: usize) -> f64 {
        let mut d = p.cost[j];
        for &(i, v) in &p.cols[j] {
            d -= self.y[i as usize] * v;
        }
        d
    }
}

/// What the ratio test decided.
enum Step {
    /// Entering variable travels to its opposite bound; no basis change.
    BoundFlip { t: f64 },
    /// Basic variable at `position` leaves to `to_upper` after step `t`.
    Pivot { t: f64, position: usize, to_upper: bool },
    /// No finite blocking bound: the problem is unbounded.
    Unbounded,
}

struct State<'a> {
    p: &'a mut Problem,
    /// Row-major mirror of the structural matrix (shared from the model's
    /// own row storage), for sparse pivot-row passes.
    rows: &'a [RowTerms<'a>],
    opts: &'a SimplexOptions,
    /// Basic column per row position.
    basis: Vec<usize>,
    /// Column -> basis position, or -1 when nonbasic.
    pos_of: Vec<i32>,
    /// Current value of every column.
    x: Vec<f64>,
    nb: Vec<NbState>,
    factor: Factorization,
    iterations: u64,
    max_iterations: u64,
    degenerate_run: u32,
    w: Vec<f64>,
    y: Vec<f64>,
    // --- incremental pricing state (Devex / PartialDevex) -----------------
    /// Maintained reduced cost per column: exact after `reprice`, updated
    /// from the pivot row after each pivot. Basic entries are stale.
    d: Vec<f64>,
    /// Devex reference-framework weight per column.
    gamma: Vec<f64>,
    /// Candidate shortlist for partial pricing.
    candidates: Vec<u32>,
    /// Membership flags for `candidates`.
    in_cands: Vec<bool>,
    /// Cyclic column cursor for partial pricing sections.
    cursor: usize,
    /// No pivot since the last full reprice: the maintained reduced costs
    /// are exact, so an empty pricing result is a certified optimum.
    fresh: bool,
    // --- scratch buffers reused across iterations -------------------------
    /// Basic cost vector for BTRAN (hoisted out of the iteration loop).
    cb: Vec<f64>,
    /// Pivot row of B⁻¹ in original row coordinates.
    rho: Vec<f64>,
    /// Unit vector for the pivot-row BTRAN (kept all-zero between uses).
    e_r: Vec<f64>,
    /// Pivot-row entries `alpha_j = rho · a_j`, valid where
    /// `alpha_stamp[j] == stamp`.
    alpha: Vec<f64>,
    alpha_stamp: Vec<u64>,
    alpha_touched: Vec<u32>,
    stamp: u64,
    // --- counters ---------------------------------------------------------
    scans: u64,
    bland_pivots: u64,
    par_sections: u64,
    par_steals: u64,
    serial_pricing_nanos: u64,
    par_pricing_nanos: u64,
}

/// Read-only view of the pricing state, small enough to hand to the
/// sectioned parallel map: workers judge eligibility and Devex scores from
/// shared slices only, never seeing the `&mut Problem` or the
/// factorization the full [`State`] carries.
struct PriceView<'b> {
    d: &'b [f64],
    gamma: &'b [f64],
    pos_of: &'b [i32],
    nb: &'b [NbState],
    in_cands: &'b [bool],
    lb: &'b [f64],
    ub: &'b [f64],
    tol: f64,
}

impl PriceView<'_> {
    /// Mirror of [`State::eligible`] over the shared slices.
    fn eligible(&self, j: usize) -> bool {
        if self.pos_of[j] >= 0 || self.lb[j] == self.ub[j] {
            return false;
        }
        let d = self.d[j];
        match self.nb[j] {
            NbState::Lower => d < -self.tol,
            NbState::Upper => d > self.tol,
            NbState::Free => d.abs() > self.tol,
        }
    }
}

const ZTOL: f64 = 1e-11;
const DEGEN_STEP: f64 = 1e-10;

/// Partial pricing: the column range is scanned in sections of
/// `max(n / SECTIONS, SECTION_MIN)` columns.
const SECTIONS: usize = 16;
const SECTION_MIN: usize = 64;
/// Keep sweeping extra sections while the shortlist holds fewer
/// candidates than this …
const CANDS_MIN: usize = 8;
/// … and trim it back to the best-scoring this many when it overflows.
const CANDS_MAX: usize = 64;

pub(crate) fn run(
    problem: &mut Problem,
    rows: &[RowTerms<'_>],
    opts: &SimplexOptions,
    row_name: impl Fn(usize) -> String,
    var_name: impl Fn(usize) -> String,
) -> Result<Outcome, SolveError> {
    let m = problem.m;
    let n = problem.n;

    // --- crash: place nonbasics at bounds, pick slack or artificial basis --
    let mut x = vec![0.0; n];
    let mut nb = vec![NbState::Lower; n];
    for j in 0..problem.art_start {
        if problem.lb[j].is_finite() {
            x[j] = problem.lb[j];
            nb[j] = NbState::Lower;
        } else if problem.ub[j].is_finite() {
            x[j] = problem.ub[j];
            nb[j] = NbState::Upper;
        } else {
            x[j] = 0.0;
            nb[j] = NbState::Free;
        }
    }
    // Residual b - A·x over nonbasic structurals (slacks rest at 0).
    let mut beta = problem.b.clone();
    for (j, &xj) in x.iter().enumerate().take(problem.nstruct) {
        if xj != 0.0 {
            for &(i, v) in &problem.cols[j] {
                beta[i as usize] -= v * xj;
            }
        }
    }
    let mut basis = Vec::with_capacity(m);
    let mut pos_of = vec![-1i32; n];
    let mut need_phase1 = false;
    for (i, &beta_i) in beta.iter().enumerate() {
        let s = problem.slack_start + i;
        if beta_i >= problem.lb[s] - opts.feas_tol && beta_i <= problem.ub[s] + opts.feas_tol {
            x[s] = beta_i;
            basis.push(s);
            pos_of[s] = i as i32;
        } else {
            let a = problem.art_start + i;
            let sign = if beta_i >= 0.0 { 1.0 } else { -1.0 };
            problem.cols[a] = vec![(i as u32, sign)];
            problem.ub[a] = f64::INFINITY;
            x[a] = beta_i.abs();
            basis.push(a);
            pos_of[a] = i as i32;
            need_phase1 = true;
        }
    }

    let max_iterations = if opts.max_iterations > 0 {
        opts.max_iterations
    } else {
        20_000 + 100 * (m as u64 + problem.nstruct as u64)
    };

    let factor = Factorization::new(m, opts.refactor_every, opts.pivot_tol);
    let mut st = State::new(problem, rows, opts, basis, pos_of, x, nb, factor, max_iterations);
    st.refactor().map_err(|e| numerical(e, &row_name))?;

    // --- phase 1 ----------------------------------------------------------
    if need_phase1 {
        let phase1_cost: Vec<f64> = (0..n)
            .map(|j| if j >= st.p.art_start && st.p.ub[j] > 0.0 { 1.0 } else { 0.0 })
            .collect();
        st.iterate(&phase1_cost, true, &var_name, &row_name)?;
        let residual: f64 = (st.p.art_start..n).map(|j| st.x[j].max(0.0)).sum();
        let scale = 1.0 + st.p.b.iter().fold(0.0f64, |a, &v| a.max(v.abs()));
        if residual > st.opts.feas_tol * scale {
            return Err(SolveError::Infeasible { residual });
        }
    }
    // Close all artificials for phase 2 and snap them to zero.
    for j in st.p.art_start..n {
        st.p.ub[j] = 0.0;
        st.x[j] = 0.0;
    }

    // --- phase 2 ----------------------------------------------------------
    let phase2_cost = st.p.cost.clone();
    st.iterate(&phase2_cost, false, &var_name, &row_name)?;

    // Final duals from a fresh factorization for accuracy.
    st.refactor().map_err(|e| numerical(e, &row_name))?;
    st.cb.clear();
    st.cb.extend(st.basis.iter().map(|&k| phase2_cost[k]));
    let mut y = Vec::new();
    st.factor.btran(&st.cb, &mut y);

    Ok(Outcome {
        x: st.x,
        y,
        iterations: st.iterations,
        basis: st.basis,
        nb: st.nb,
        pricing_scans: st.scans,
        bland_pivots: st.bland_pivots,
        pricing_par_sections: st.par_sections,
        pricing_par_steals: st.par_steals,
        pricing_serial_nanos: st.serial_pricing_nanos,
        pricing_par_nanos: st.par_pricing_nanos,
        factor_stats: st.factor.stats(),
    })
}

/// Re-optimize from a known basis instead of crashing one.
///
/// `basis` gives the basic column per row position, `nb` the rest state of
/// every column; both typically come from a previous [`Outcome`] on a
/// mutated problem (the caller remaps column indices when the problem has
/// grown). The start point is classified and the cheapest repair is run:
///
/// * basic values within bounds → primal phase 2 directly (objective-only
///   changes keep the basis primal feasible);
/// * primal infeasible → dual simplex drives the basic values back inside
///   their bounds without losing dual feasibility (RHS / bound changes and
///   appended cutting rows land here), then a primal phase-2 polish mops up
///   any residual reduced-cost violations. Nonbasic columns whose reduced
///   cost has the wrong sign (e.g. freshly added variables) are temporarily
///   fixed at their rest value so the dual iteration starts dual feasible,
///   and released for the polish.
///
/// Any structural problem with the supplied basis (wrong size, duplicate
/// columns, singular matrix) is reported as an error; callers are expected
/// to fall back to a cold [`run`].
///
/// Returns the outcome plus whether the dual simplex was needed.
pub(crate) fn run_warm(
    problem: &mut Problem,
    rows: &[RowTerms<'_>],
    opts: &SimplexOptions,
    basis: Vec<usize>,
    mut nb: Vec<NbState>,
    row_name: impl Fn(usize) -> String,
    var_name: impl Fn(usize) -> String,
) -> Result<(Outcome, bool), SolveError> {
    let m = problem.m;
    let n = problem.n;
    if basis.len() != m || nb.len() != n {
        return Err(SolveError::Numerical("warm basis has wrong dimensions".into()));
    }
    let mut pos_of = vec![-1i32; n];
    for (i, &k) in basis.iter().enumerate() {
        if k >= n || pos_of[k] >= 0 {
            return Err(SolveError::Numerical("warm basis references invalid columns".into()));
        }
        pos_of[k] = i as i32;
    }
    // Rest nonbasic columns on a bound consistent with their current bounds
    // (bounds may have moved since the basis was recorded).
    let mut x = vec![0.0; n];
    for j in 0..n {
        if pos_of[j] >= 0 {
            continue;
        }
        let (lb, ub) = (problem.lb[j], problem.ub[j]);
        let state = match nb[j] {
            NbState::Lower if lb.is_finite() => NbState::Lower,
            NbState::Upper if ub.is_finite() => NbState::Upper,
            _ if lb.is_finite() => NbState::Lower,
            _ if ub.is_finite() => NbState::Upper,
            _ => NbState::Free,
        };
        nb[j] = state;
        x[j] = match state {
            NbState::Lower => lb,
            NbState::Upper => ub,
            NbState::Free => 0.0,
        };
    }

    let max_iterations = if opts.max_iterations > 0 {
        opts.max_iterations
    } else {
        20_000 + 100 * (m as u64 + problem.nstruct as u64)
    };
    let factor = Factorization::new(m, opts.refactor_every, opts.pivot_tol);
    let mut st = State::new(problem, rows, opts, basis, pos_of, x, nb, factor, max_iterations);
    st.refactor().map_err(|e| numerical(e, &row_name))?;

    let cost = st.p.cost.clone();
    let feas = opts.feas_tol;
    let primal_feasible =
        st.basis.iter().all(|&k| st.x[k] >= st.p.lb[k] - feas && st.x[k] <= st.p.ub[k] + feas);
    let used_dual = !primal_feasible;
    if !primal_feasible {
        // Box away dual-infeasible nonbasics so the dual simplex starts from
        // a dual-feasible point; the primal polish below reconsiders them.
        let boxed = st.box_dual_infeasible(&cost);
        let result = st.dual_iterate(&cost, &row_name);
        for &(j, lb, ub) in &boxed {
            st.p.lb[j] = lb;
            st.p.ub[j] = ub;
        }
        match result {
            Ok(()) => {}
            Err(SolveError::Infeasible { residual }) if boxed.is_empty() => {
                // Nothing was boxed, so the verdict applies to the original
                // problem: no entering column can repair the violated row.
                return Err(SolveError::Infeasible { residual });
            }
            Err(_) => {
                // With columns boxed the verdict only covers the restricted
                // problem — let the caller re-solve cold for an authoritative
                // answer.
                return Err(SolveError::Numerical(
                    "dual warm start failed on the restricted problem".into(),
                ));
            }
        }
    }

    // Primal phase 2: a no-op when the dual pass already reached optimality,
    // otherwise it repairs reduced-cost violations (objective changes, newly
    // added columns, boxed columns released above).
    st.iterate(&cost, false, &var_name, &row_name)?;

    st.refactor().map_err(|e| numerical(e, &row_name))?;
    st.cb.clear();
    st.cb.extend(st.basis.iter().map(|&k| cost[k]));
    let mut y = Vec::new();
    st.factor.btran(&st.cb, &mut y);
    Ok((
        Outcome {
            x: st.x,
            y,
            iterations: st.iterations,
            basis: st.basis,
            nb: st.nb,
            pricing_scans: st.scans,
            bland_pivots: st.bland_pivots,
            pricing_par_sections: st.par_sections,
            pricing_par_steals: st.par_steals,
            pricing_serial_nanos: st.serial_pricing_nanos,
            pricing_par_nanos: st.par_pricing_nanos,
            factor_stats: st.factor.stats(),
        },
        used_dual,
    ))
}

fn numerical(e: FactorError, row_name: &impl Fn(usize) -> String) -> SolveError {
    match e {
        FactorError::Singular { position } => SolveError::Numerical(format!(
            "singular basis at elimination step {position} (row {})",
            row_name(position)
        )),
    }
}

impl<'a> State<'a> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        p: &'a mut Problem,
        rows: &'a [RowTerms<'a>],
        opts: &'a SimplexOptions,
        basis: Vec<usize>,
        pos_of: Vec<i32>,
        x: Vec<f64>,
        nb: Vec<NbState>,
        factor: Factorization,
        max_iterations: u64,
    ) -> Self {
        State {
            p,
            rows,
            opts,
            basis,
            pos_of,
            x,
            nb,
            factor,
            iterations: 0,
            max_iterations,
            degenerate_run: 0,
            w: Vec::new(),
            y: Vec::new(),
            d: Vec::new(),
            gamma: Vec::new(),
            candidates: Vec::new(),
            in_cands: Vec::new(),
            cursor: 0,
            fresh: false,
            cb: Vec::new(),
            rho: Vec::new(),
            e_r: Vec::new(),
            alpha: Vec::new(),
            alpha_stamp: Vec::new(),
            alpha_touched: Vec::new(),
            stamp: 0,
            scans: 0,
            bland_pivots: 0,
            par_sections: 0,
            par_steals: 0,
            serial_pricing_nanos: 0,
            par_pricing_nanos: 0,
        }
    }

    /// Shared-slice view for parallel pricing workers.
    fn view(&self) -> PriceView<'_> {
        PriceView {
            d: &self.d,
            gamma: &self.gamma,
            pos_of: &self.pos_of,
            nb: &self.nb,
            in_cands: &self.in_cands,
            lb: &self.p.lb,
            ub: &self.p.ub,
            tol: self.opts.opt_tol,
        }
    }

    /// Fold one sectioned run's section/steal counters into the solve's.
    fn note_par_stats(&mut self, stats: par::ParStats) {
        self.par_sections += stats.sections;
        self.par_steals += stats.steals;
    }

    /// Attribute one pricing call's wall clock to the serial or parallel
    /// bucket, depending on which path actually ran.
    fn note_pricing_wall(&mut self, t0: Instant, parallel: bool) {
        let nanos = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        if parallel {
            self.par_pricing_nanos += nanos;
        } else {
            self.serial_pricing_nanos += nanos;
        }
    }

    /// Size the pricing/pivot-row scratch buffers for the current problem
    /// dimensions (idempotent; `e_r` keeps its all-zero invariant).
    fn ensure_scratch(&mut self) {
        let (m, n) = (self.p.m, self.p.n);
        self.e_r.resize(m, 0.0);
        self.alpha.resize(n, 0.0);
        self.alpha_stamp.resize(n, 0);
        self.d.resize(n, 0.0);
        self.gamma.resize(n, 1.0);
        self.in_cands.resize(n, false);
    }

    /// Rebuild the LU factorization from the current basis and refresh the
    /// basic variable values from scratch (removes accumulated drift).
    fn refactor(&mut self) -> Result<(), FactorError> {
        {
            let cols: Vec<_> = self.basis.iter().map(|&k| &self.p.cols[k]).collect();
            self.factor.refactor(&cols)?;
        }
        // x_B = B⁻¹ (b - N x_N)
        let mut r = self.p.b.clone();
        for j in 0..self.p.n {
            if self.pos_of[j] < 0 && self.x[j] != 0.0 {
                for &(i, v) in &self.p.cols[j] {
                    r[i as usize] -= v * self.x[j];
                }
            }
        }
        let mut xb = Vec::new();
        self.factor.ftran_dense(&r, &mut xb);
        for (pos, &k) in self.basis.iter().enumerate() {
            self.x[k] = xb[pos];
        }
        Ok(())
    }

    /// Run simplex iterations with the given cost vector until optimal.
    fn iterate(
        &mut self,
        cost: &[f64],
        phase1: bool,
        var_name: &impl Fn(usize) -> String,
        row_name: &impl Fn(usize) -> String,
    ) -> Result<(), SolveError> {
        // Devex / PartialDevex maintain `y` and `d` incrementally; Dantzig
        // recomputes them from scratch every iteration (the baseline).
        let incremental = self.opts.pricing != Pricing::Dantzig;
        if incremental {
            self.reprice(cost);
        }
        loop {
            if self.iterations >= self.max_iterations {
                return Err(SolveError::IterationLimit { iterations: self.iterations });
            }
            if self.factor.wants_refactor() {
                self.refactor().map_err(|e| numerical(e, row_name))?;
                if incremental {
                    // The refactor cadence doubles as the pricing drift guard.
                    self.reprice(cost);
                }
            }
            if !incremental {
                // Simplex multipliers y = c_B B⁻¹.
                self.cb.clear();
                self.cb.extend(self.basis.iter().map(|&k| cost[k]));
                let (factor, cb, y) = (&mut self.factor, &self.cb, &mut self.y);
                factor.btran(cb, y);
            }
            let bland = self.degenerate_run > self.opts.bland_trigger;
            let picked = if bland {
                self.price_bland(cost)
            } else {
                match self.opts.pricing {
                    Pricing::Dantzig => self.price_dantzig(cost),
                    Pricing::Devex => self.price_devex(),
                    Pricing::PartialDevex => self.price_partial(),
                }
            };
            let Some((j, d)) = picked else {
                if incremental && !self.fresh {
                    // Maintained reduced costs may have drifted since the
                    // last factorization: certify optimality against exact
                    // values before declaring this phase done. Terminates
                    // because the repriced costs are exact (`fresh`).
                    self.refactor().map_err(|e| numerical(e, row_name))?;
                    self.reprice(cost);
                    continue;
                }
                return Ok(()); // optimal for this phase
            };
            if bland {
                self.bland_pivots += 1;
            }
            // Direction of travel for the entering variable.
            let sigma = match self.nb[j] {
                NbState::Lower => 1.0,
                NbState::Upper => -1.0,
                NbState::Free => {
                    if d < 0.0 {
                        1.0
                    } else {
                        -1.0
                    }
                }
            };
            {
                let (p, factor, w) = (&*self.p, &mut self.factor, &mut self.w);
                factor.ftran(&p.cols[j], w);
            }
            match self.ratio_test(j, sigma, bland) {
                Step::Unbounded => {
                    if phase1 {
                        return Err(SolveError::Numerical(
                            "phase-1 objective unbounded (internal error)".into(),
                        ));
                    }
                    return Err(SolveError::Unbounded { var: var_name(j.min(self.p.nstruct)) });
                }
                Step::BoundFlip { t } => {
                    // No basis change: `y` and `d` stay exact as-is.
                    self.apply_step(j, sigma, t);
                    self.x[j] = if sigma > 0.0 { self.p.ub[j] } else { self.p.lb[j] };
                    self.nb[j] = if sigma > 0.0 { NbState::Upper } else { NbState::Lower };
                    self.note_step(t);
                }
                Step::Pivot { t, position, to_upper } => {
                    if incremental {
                        // Needs the pre-pivot factorization, duals, and
                        // basis bookkeeping: must run before any of the
                        // updates below.
                        self.pivot_update(j, position);
                    }
                    self.apply_step(j, sigma, t);
                    let entering_value = self.x[j] + sigma * t;
                    let leaving = self.basis[position];
                    // Snap the leaving variable exactly onto its bound.
                    self.x[leaving] =
                        if to_upper { self.p.ub[leaving] } else { self.p.lb[leaving] };
                    self.nb[leaving] = if to_upper { NbState::Upper } else { NbState::Lower };
                    self.pos_of[leaving] = -1;
                    self.basis[position] = j;
                    self.pos_of[j] = position as i32;
                    self.x[j] = entering_value;
                    if !self.factor.update(position, &self.w) {
                        // Pivot too small for a stable eta: rebuild and, if
                        // the basis went bad, surface a numerical error.
                        self.refactor().map_err(|e| numerical(e, row_name))?;
                        if incremental {
                            self.reprice(cost);
                        }
                    }
                    self.note_step(t);
                }
            }
            self.iterations += 1;
        }
    }

    /// Full pricing reset for the incremental strategies: recompute
    /// `y = c_B B⁻¹` and every reduced cost exactly, and reset the Devex
    /// reference framework (all weights back to 1) and the candidate list.
    ///
    /// With `pricing_jobs > 1` the reduced-cost recompute and the weight
    /// refresh fan out over the sectioned parallel map: each worker owns a
    /// disjoint `d`/`gamma` chunk, and each `d[j]` is the same per-column
    /// sequential dot product as the serial loop — no accumulation crosses
    /// a section boundary, so the result is bitwise identical.
    fn reprice(&mut self, cost: &[f64]) {
        self.ensure_scratch();
        self.cb.clear();
        self.cb.extend(self.basis.iter().map(|&k| cost[k]));
        {
            let (factor, cb, y) = (&mut self.factor, &self.cb, &mut self.y);
            factor.btran(cb, y);
        }
        let t0 = Instant::now();
        let jobs = self.opts.pricing_jobs;
        let n = self.p.n;
        let parallel = jobs > 1 && par::section_count(n) > 1;
        if parallel {
            let (p, y) = (&*self.p, &self.y);
            let mut stats = par::for_each_section(&mut self.d, jobs, |_, start, chunk| {
                for (off, slot) in chunk.iter_mut().enumerate() {
                    let j = start + off;
                    let mut d = cost[j];
                    for &(i, v) in &p.cols[j] {
                        d -= y[i as usize] * v;
                    }
                    *slot = d;
                }
            });
            stats.merge(par::for_each_section(&mut self.gamma, jobs, |_, _, chunk| {
                chunk.fill(1.0);
            }));
            self.note_par_stats(stats);
        } else {
            for (j, &cj) in cost.iter().enumerate().take(n) {
                let mut d = cj;
                for &(i, v) in &self.p.cols[j] {
                    d -= self.y[i as usize] * v;
                }
                self.d[j] = d;
            }
            for g in self.gamma.iter_mut() {
                *g = 1.0;
            }
        }
        self.note_pricing_wall(t0, parallel);
        self.candidates.clear();
        for f in self.in_cands.iter_mut() {
            *f = false;
        }
        self.scans += n as u64;
        self.fresh = true;
    }

    /// Is nonbasic column `j` eligible to enter, judged on the maintained
    /// reduced cost `d[j]`?
    fn eligible(&self, j: usize) -> bool {
        if self.pos_of[j] >= 0 || self.p.lb[j] == self.p.ub[j] {
            return false;
        }
        let tol = self.opts.opt_tol;
        let d = self.d[j];
        match self.nb[j] {
            NbState::Lower => d < -tol,
            NbState::Upper => d > tol,
            NbState::Free => d.abs() > tol,
        }
    }

    /// Compute the sparse pivot row `alpha_j = rho · a_j` for every column
    /// with support in a row where `rho` is nonzero: structural terms come
    /// from the row-major mirror, the slack for row `i` is implicit with
    /// coefficient 1, and the artificial (when opened by the crash) carries
    /// its crash-time sign. Entries are valid where
    /// `alpha_stamp[j] == stamp`; `alpha_touched` lists them.
    fn pivot_row_pass(&mut self) {
        self.stamp += 1;
        let stamp = self.stamp;
        self.alpha_touched.clear();
        for i in 0..self.rho.len() {
            let rv = self.rho[i];
            if rv == 0.0 {
                continue;
            }
            let row = self.rows[i];
            for &(jc, v) in row {
                let j = jc as usize;
                if self.alpha_stamp[j] != stamp {
                    self.alpha_stamp[j] = stamp;
                    self.alpha[j] = 0.0;
                    self.alpha_touched.push(jc);
                }
                self.alpha[j] += rv * v;
            }
            let s = self.p.slack_start + i;
            self.alpha_stamp[s] = stamp;
            self.alpha[s] = rv;
            self.alpha_touched.push(s as u32);
            let a = self.p.art_start + i;
            if let Some(&(_, av)) = self.p.cols[a].first() {
                self.alpha_stamp[a] = stamp;
                self.alpha[a] = rv * av;
                self.alpha_touched.push(a as u32);
            }
        }
        self.scans += self.alpha_touched.len() as u64;
    }

    /// Incremental pricing update for a basis exchange: entering column `q`
    /// (whose FTRAN is already in `self.w`) replaces the basic variable at
    /// `position`. With `rho` the BTRAN'd pivot row and
    /// `theta_d = d_q / alpha_q`:
    ///
    /// * `d_j ← d_j − theta_d · alpha_j` for every nonbasic `j ≠ q`,
    /// * `d_leaving ← −theta_d` (its pivot-row entry is exactly 1),
    /// * `d_q ← 0`, `y ← y + theta_d · rho`,
    /// * Devex: `γ_j ← max(γ_j, (alpha_j/alpha_q)² γ_q)` for touched `j`,
    ///   and the leaving column gets `max(γ_q/alpha_q², 1)`.
    ///
    /// Must run before the basis bookkeeping and eta update for this pivot.
    fn pivot_update(&mut self, q: usize, position: usize) {
        self.fresh = false;
        let alpha_q = self.w[position];
        if alpha_q == 0.0 {
            // The eta update will reject this pivot and force a refactor,
            // which reprices from scratch anyway.
            return;
        }
        let theta_d = self.d[q] / alpha_q;
        self.e_r[position] = 1.0;
        {
            let (factor, e_r, rho) = (&mut self.factor, &self.e_r, &mut self.rho);
            factor.btran(e_r, rho);
        }
        self.e_r[position] = 0.0;
        self.pivot_row_pass();
        let gamma_q = self.gamma[q].max(1.0);
        let inv_aq = 1.0 / alpha_q;
        for idx in 0..self.alpha_touched.len() {
            let j = self.alpha_touched[idx] as usize;
            if self.pos_of[j] >= 0 || j == q {
                continue;
            }
            let aj = self.alpha[j];
            self.d[j] -= theta_d * aj;
            let r = aj * inv_aq;
            let cand = r * r * gamma_q;
            if cand > self.gamma[j] {
                self.gamma[j] = cand;
            }
        }
        if theta_d != 0.0 {
            for i in 0..self.rho.len() {
                let rv = self.rho[i];
                if rv != 0.0 {
                    self.y[i] += theta_d * rv;
                }
            }
        }
        let leaving = self.basis[position];
        self.d[leaving] = -theta_d;
        self.gamma[leaving] = (gamma_q * inv_aq * inv_aq).max(1.0);
        self.d[q] = 0.0;
    }

    /// Bland's anti-cycling rule: the smallest-index eligible column. Under
    /// Dantzig the reduced cost is recomputed from the fresh duals; the
    /// incremental strategies judge on the maintained `d[j]` (the drift
    /// guard in `iterate` re-certifies before declaring optimality).
    fn price_bland(&mut self, cost: &[f64]) -> Option<(usize, f64)> {
        let tol = self.opts.opt_tol;
        let dantzig = self.opts.pricing == Pricing::Dantzig;
        for (j, &cj) in cost.iter().enumerate().take(self.p.n) {
            if self.pos_of[j] >= 0 || self.p.lb[j] == self.p.ub[j] {
                continue;
            }
            self.scans += 1;
            let d = if dantzig {
                let mut d = cj;
                for &(i, v) in &self.p.cols[j] {
                    d -= self.y[i as usize] * v;
                }
                d
            } else {
                self.d[j]
            };
            let eligible = match self.nb[j] {
                NbState::Lower => d < -tol,
                NbState::Upper => d > tol,
                NbState::Free => d.abs() > tol,
            };
            if eligible {
                return Some((j, d));
            }
        }
        None
    }

    /// Dantzig pricing: full scan for the most negative effective reduced
    /// cost, recomputed per column from the current duals.
    fn price_dantzig(&mut self, cost: &[f64]) -> Option<(usize, f64)> {
        let tol = self.opts.opt_tol;
        let mut best: Option<(usize, f64, f64)> = None; // (j, d, score)
        for (j, &cj) in cost.iter().enumerate().take(self.p.n) {
            if self.pos_of[j] >= 0 {
                continue;
            }
            // Fixed columns (incl. closed artificials) can never improve.
            if self.p.lb[j] == self.p.ub[j] {
                continue;
            }
            self.scans += 1;
            let mut d = cj;
            for &(i, v) in &self.p.cols[j] {
                d -= self.y[i as usize] * v;
            }
            let eligible = match self.nb[j] {
                NbState::Lower => d < -tol,
                NbState::Upper => d > tol,
                NbState::Free => d.abs() > tol,
            };
            if !eligible {
                continue;
            }
            let score = d.abs();
            if best.as_ref().is_none_or(|&(_, _, s)| score > s) {
                best = Some((j, d, score));
            }
        }
        best.map(|(j, d, _)| (j, d))
    }

    /// Devex pricing over all columns using the maintained reduced costs:
    /// highest `d²/γ` wins, smallest index on exact ties (ascending scan
    /// with a strictly-greater comparison).
    ///
    /// With `pricing_jobs > 1` the scan fans out per section; each section
    /// keeps its own smallest-index maximum and the reduction walks the
    /// per-section results **in section order** with the same
    /// strictly-greater comparison, so the winner is the smallest-index
    /// attainer of the global maximum — exactly the serial answer.
    fn price_devex(&mut self) -> Option<(usize, f64)> {
        let t0 = Instant::now();
        let n = self.p.n;
        let jobs = self.opts.pricing_jobs;
        let parallel = jobs > 1 && par::section_count(n) > 1;
        let best = if parallel {
            let (parts, stats) = {
                let view = self.view();
                par::map_sections(n, jobs, |_, r| {
                    let mut best: Option<(usize, f64)> = None; // (j, score)
                    for j in r {
                        if !view.eligible(j) {
                            continue;
                        }
                        let dj = view.d[j];
                        let score = dj * dj / view.gamma[j];
                        if best.is_none_or(|(_, s)| score > s) {
                            best = Some((j, score));
                        }
                    }
                    best
                })
            };
            self.note_par_stats(stats);
            let mut best: Option<(usize, f64)> = None;
            for (j, score) in parts.into_iter().flatten() {
                if best.is_none_or(|(_, s)| score > s) {
                    best = Some((j, score));
                }
            }
            best
        } else {
            let mut best: Option<(usize, f64)> = None; // (j, score)
            for j in 0..n {
                if !self.eligible(j) {
                    continue;
                }
                let dj = self.d[j];
                let score = dj * dj / self.gamma[j];
                if best.is_none_or(|(_, s)| score > s) {
                    best = Some((j, score));
                }
            }
            best
        };
        self.scans += n as u64;
        self.note_pricing_wall(t0, parallel);
        best.map(|(j, _)| (j, self.d[j]))
    }

    /// Partial Devex pricing: prune the candidate shortlist, sweep one
    /// column section past the cursor every call (so every column is
    /// revisited within `SECTIONS` pivots and the shortlist never goes
    /// stale), keep sweeping while the list is thin, and pick the best
    /// Devex score among the survivors — O(section + candidates) per
    /// pivot instead of O(n). A full wrap with an empty shortlist means no
    /// eligible column exists (by the maintained reduced costs).
    ///
    /// With `pricing_jobs > 1` each cyclic section's scan fans out over
    /// the sectioned parallel map: subsections return their eligible
    /// columns as lists, concatenated in subsection order — reproducing
    /// the serial cyclic insertion order exactly, including the
    /// between-section early exit (checked only at section boundaries,
    /// same as the serial sweep).
    fn price_partial(&mut self) -> Option<(usize, f64)> {
        let t0 = Instant::now();
        // Drop candidates that went basic or lost eligibility.
        let mut keep = 0;
        for idx in 0..self.candidates.len() {
            let j = self.candidates[idx] as usize;
            self.scans += 1;
            if self.eligible(j) {
                self.candidates[keep] = self.candidates[idx];
                keep += 1;
            } else {
                self.in_cands[j] = false;
            }
        }
        self.candidates.truncate(keep);
        let n = self.p.n;
        let section = (n / SECTIONS).max(SECTION_MIN).min(n);
        let jobs = self.opts.pricing_jobs;
        let parallel = jobs > 1 && par::section_count(section) > 1;
        let mut scanned = 0usize;
        while scanned < n {
            if parallel {
                let take = section.min(n - scanned);
                let start = self.cursor;
                let (parts, stats) = {
                    let view = self.view();
                    par::map_sections(take, jobs, |_, r| {
                        let mut found: Vec<u32> = Vec::new();
                        for off in r {
                            let j = (start + off) % n;
                            if !view.in_cands[j] && view.eligible(j) {
                                found.push(j as u32);
                            }
                        }
                        found
                    })
                };
                self.note_par_stats(stats);
                for j in parts.into_iter().flatten() {
                    self.in_cands[j as usize] = true;
                    self.candidates.push(j);
                }
                self.cursor = (start + take) % n;
                scanned += take;
                self.scans += take as u64;
            } else {
                for _ in 0..section {
                    if scanned >= n {
                        break;
                    }
                    let j = self.cursor;
                    self.cursor += 1;
                    if self.cursor == n {
                        self.cursor = 0;
                    }
                    scanned += 1;
                    self.scans += 1;
                    if !self.in_cands[j] && self.eligible(j) {
                        self.in_cands[j] = true;
                        self.candidates.push(j as u32);
                    }
                }
            }
            if self.candidates.len() >= CANDS_MIN {
                break;
            }
        }
        // Trim to the best CANDS_MAX by current Devex score so the
        // shortlist keeps quality, not arrival order. The sort key is a
        // pure function of the maintained (d, gamma) state, so the
        // surviving set — and hence the pivot sequence — stays
        // deterministic.
        if self.candidates.len() > CANDS_MAX {
            let mut cands = std::mem::take(&mut self.candidates);
            cands.sort_by(|&a, &b| {
                let (a, b) = (a as usize, b as usize);
                let sa = self.d[a] * self.d[a] / self.gamma[a];
                let sb = self.d[b] * self.d[b] / self.gamma[b];
                sb.partial_cmp(&sa).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(&b))
            });
            for &j in &cands[CANDS_MAX..] {
                self.in_cands[j as usize] = false;
            }
            cands.truncate(CANDS_MAX);
            self.candidates = cands;
        }
        let mut best: Option<(usize, f64)> = None; // (j, score)
        for idx in 0..self.candidates.len() {
            let j = self.candidates[idx] as usize;
            let dj = self.d[j];
            let score = dj * dj / self.gamma[j];
            let better = match best {
                None => true,
                // Insertion order is cyclic, not ascending: break exact
                // ties by index explicitly for determinism.
                Some((bj, bs)) => score > bs || (score == bs && j < bj),
            };
            if better {
                best = Some((j, score));
            }
        }
        self.note_pricing_wall(t0, parallel);
        best.map(|(j, _)| (j, self.d[j]))
    }

    /// Move all basic variables along the FTRAN direction by step `t`.
    fn apply_step(&mut self, _entering: usize, sigma: f64, t: f64) {
        if t == 0.0 {
            return;
        }
        for (pos, &k) in self.basis.iter().enumerate() {
            let wi = self.w[pos];
            if wi != 0.0 {
                self.x[k] -= sigma * t * wi;
            }
        }
    }

    fn note_step(&mut self, t: f64) {
        if t <= DEGEN_STEP {
            self.degenerate_run = self.degenerate_run.saturating_add(1);
        } else {
            self.degenerate_run = 0;
        }
    }

    /// Temporarily fix every nonbasic column whose reduced cost violates
    /// dual feasibility at its current rest value, and return the saved
    /// bounds `(column, lb, ub)` so the caller can restore them.
    fn box_dual_infeasible(&mut self, cost: &[f64]) -> Vec<(usize, f64, f64)> {
        self.cb.clear();
        self.cb.extend(self.basis.iter().map(|&k| cost[k]));
        {
            let (factor, cb, y) = (&mut self.factor, &self.cb, &mut self.y);
            factor.btran(cb, y);
        }
        let tol = self.opts.opt_tol;
        let mut boxed = Vec::new();
        for (j, &cj) in cost.iter().enumerate().take(self.p.n) {
            if self.pos_of[j] >= 0 || self.p.lb[j] == self.p.ub[j] {
                continue;
            }
            let mut d = cj;
            for &(i, v) in &self.p.cols[j] {
                d -= self.y[i as usize] * v;
            }
            let ok = match self.nb[j] {
                NbState::Lower => d >= -tol,
                NbState::Upper => d <= tol,
                NbState::Free => d.abs() <= tol,
            };
            if !ok {
                boxed.push((j, self.p.lb[j], self.p.ub[j]));
                self.p.lb[j] = self.x[j];
                self.p.ub[j] = self.x[j];
            }
        }
        boxed
    }

    /// Bounded-variable dual simplex: starting from a dual-feasible basis
    /// whose basic values violate their bounds, repeatedly pivot the most
    /// violated basic variable out against the entering column chosen by the
    /// dual ratio test, until primal feasibility is restored.
    fn dual_iterate(
        &mut self,
        cost: &[f64],
        row_name: &impl Fn(usize) -> String,
    ) -> Result<(), SolveError> {
        self.ensure_scratch();
        loop {
            if self.iterations >= self.max_iterations {
                return Err(SolveError::IterationLimit { iterations: self.iterations });
            }
            if self.factor.wants_refactor() {
                self.refactor().map_err(|e| numerical(e, row_name))?;
            }
            // Leaving variable: the basic value with the largest bound
            // violation. `to_lower` records which bound it will land on.
            let feas = self.opts.feas_tol;
            let mut leave: Option<(usize, f64, bool)> = None; // (pos, viol, to_lower)
            for (pos, &k) in self.basis.iter().enumerate() {
                let below = self.p.lb[k] - self.x[k];
                let above = self.x[k] - self.p.ub[k];
                let v = below.max(above);
                if v > feas && leave.as_ref().is_none_or(|&(_, bv, _)| v > bv) {
                    leave = Some((pos, v, below >= above));
                }
            }
            let Some((r, viol, to_lower)) = leave else {
                return Ok(()); // primal feasible
            };
            let k = self.basis[r];
            let bound = if to_lower { self.p.lb[k] } else { self.p.ub[k] };
            // `need` is the direction the leaving value must move.
            let need = if to_lower { 1.0 } else { -1.0 };
            // rho = row r of B⁻¹ (original row coordinates), so that
            // alpha_j = rho · a_j is the pivot row entry of column j; the
            // sparse pivot-row pass materializes exactly the nonzero alphas.
            self.e_r[r] = 1.0;
            {
                let (factor, e_r, rho) = (&mut self.factor, &self.e_r, &mut self.rho);
                factor.btran(e_r, rho);
            }
            self.e_r[r] = 0.0;
            self.pivot_row_pass();
            // Current duals for the ratio test.
            self.cb.clear();
            self.cb.extend(self.basis.iter().map(|&b| cost[b]));
            {
                let (factor, cb, y) = (&mut self.factor, &self.cb, &mut self.y);
                factor.btran(cb, y);
            }
            let bland = self.degenerate_run > self.opts.bland_trigger;
            // Dual ratio test: among columns whose movement drives x_k toward
            // its bound, pick the one whose reduced cost hits zero first.
            let mut enter: Option<(usize, f64, f64, f64)> = None; // (j, sigma, alpha, ratio)
            for (j, &cj) in cost.iter().enumerate().take(self.p.n) {
                if self.pos_of[j] >= 0 || self.p.lb[j] == self.p.ub[j] {
                    continue;
                }
                let alpha = if self.alpha_stamp[j] == self.stamp { self.alpha[j] } else { 0.0 };
                if alpha.abs() <= 1e-9 {
                    continue;
                }
                self.scans += 1;
                let sigma = match self.nb[j] {
                    NbState::Lower => 1.0,
                    NbState::Upper => -1.0,
                    // Free columns move either way; pick the repairing one.
                    NbState::Free => -need * alpha.signum(),
                };
                // x_k changes by -t·sigma·alpha; it must move along `need`.
                if -sigma * alpha * need <= 0.0 {
                    continue;
                }
                let mut d = cj;
                for &(i, v) in &self.p.cols[j] {
                    d -= self.y[i as usize] * v;
                }
                let ratio = d.abs() / alpha.abs();
                let better = match enter {
                    None => true,
                    Some((bj, _, ba, br)) => {
                        if bland {
                            ratio < br - ZTOL || (ratio <= br + ZTOL && j < bj)
                        } else {
                            ratio < br - ZTOL || (ratio <= br + ZTOL && alpha.abs() > ba.abs())
                        }
                    }
                };
                if better {
                    enter = Some((j, sigma, alpha, ratio));
                }
            }
            let Some((q, sigma, alpha, _)) = enter else {
                // No column can repair the violated row: primal infeasible.
                return Err(SolveError::Infeasible { residual: viol });
            };
            // Step that lands the leaving variable exactly on its bound.
            let t = ((self.x[k] - bound) / (sigma * alpha)).max(0.0);
            {
                let (p, factor, w) = (&*self.p, &mut self.factor, &mut self.w);
                factor.ftran(&p.cols[q], w);
            }
            for (pos, &bk) in self.basis.iter().enumerate() {
                let wi = self.w[pos];
                if wi != 0.0 {
                    self.x[bk] -= sigma * t * wi;
                }
            }
            let entering_value = self.x[q] + sigma * t;
            self.x[k] = bound;
            self.nb[k] = if to_lower { NbState::Lower } else { NbState::Upper };
            self.pos_of[k] = -1;
            self.basis[r] = q;
            self.pos_of[q] = r as i32;
            self.x[q] = entering_value;
            if !self.factor.update(r, &self.w) {
                self.refactor().map_err(|e| numerical(e, row_name))?;
            }
            self.note_step(t);
            self.iterations += 1;
        }
    }

    /// Bounded-variable ratio test for entering column `j` moving in
    /// direction `sigma` along `self.w`.
    fn ratio_test(&self, j: usize, sigma: f64, bland: bool) -> Step {
        let p = &self.p;
        // Bound-flip limit for the entering variable itself.
        let own_range = p.ub[j] - p.lb[j];
        let mut t_best = if own_range.is_finite() { own_range } else { f64::INFINITY };
        let mut leave: Option<(usize, bool, f64)> = None; // (position, to_upper, |w|)
        for (pos, &wi) in self.w.iter().enumerate() {
            if wi.abs() <= ZTOL {
                continue;
            }
            let k = self.basis[pos];
            let delta = sigma * wi; // x_k moves by -t·delta
            let (t, to_upper) = if delta > 0.0 {
                if p.lb[k] == f64::NEG_INFINITY {
                    continue;
                }
                (((self.x[k] - p.lb[k]) / delta).max(0.0), false)
            } else {
                if p.ub[k] == f64::INFINITY {
                    continue;
                }
                (((p.ub[k] - self.x[k]) / -delta).max(0.0), true)
            };
            let better = if bland {
                // Smallest t; ties by smallest variable index (Bland).
                t < t_best - ZTOL
                    || (t <= t_best + ZTOL
                        && leave.as_ref().is_none_or(|&(lp, _, _)| k < self.basis[lp]))
            } else {
                // Smallest t; ties by largest pivot magnitude (stability).
                t < t_best - ZTOL
                    || (t <= t_best + ZTOL
                        && leave.as_ref().is_none_or(|&(_, _, wa)| wi.abs() > wa))
            };
            if t <= t_best + ZTOL && better {
                t_best = t.min(t_best);
                leave = Some((pos, to_upper, wi.abs()));
            }
        }
        if t_best.is_infinite() {
            return Step::Unbounded;
        }
        match leave {
            // The entering variable reaches its own opposite bound first.
            None => Step::BoundFlip { t: t_best },
            Some((position, to_upper, _)) => {
                if own_range.is_finite() && own_range < t_best - ZTOL {
                    Step::BoundFlip { t: own_range }
                } else {
                    Step::Pivot { t: t_best, position, to_upper }
                }
            }
        }
    }
}
