//! Admission contracts.
//!
//! When a customer accepts `x` units off a price menu, Pretium records a
//! [`Contract`]: the purchased amount, the guarantee `min(x, x̄)`, the
//! payment `p(x)` fixed at admission time, and the marginal price `λ`
//! that SAM and the price computer use as the request's value proxy
//! (§4.1-4.3). Note that [`RequestParams`] deliberately excludes the
//! customer's private value `v_i` — no Pretium module can read it.

use pretium_net::{NodeId, Timestep};
use pretium_workload::{Request, RequestId};

/// The request attributes visible to the provider (everything **except**
/// the private per-unit value).
#[derive(Debug, Clone, PartialEq)]
pub struct RequestParams {
    pub id: RequestId,
    pub src: NodeId,
    pub dst: NodeId,
    pub demand: f64,
    pub arrival: Timestep,
    pub start: Timestep,
    pub deadline: Timestep,
}

impl From<&Request> for RequestParams {
    fn from(r: &Request) -> Self {
        RequestParams {
            id: r.id,
            src: r.src,
            dst: r.dst,
            demand: r.demand,
            arrival: r.arrival,
            start: r.start,
            deadline: r.deadline,
        }
    }
}

/// Handle to an accepted contract inside a Pretium instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ContractId(pub usize);

/// An accepted transfer.
#[derive(Debug, Clone)]
pub struct Contract {
    pub params: RequestParams,
    /// Units the customer chose to buy (`x_i`).
    pub purchased: f64,
    /// Units Pretium promised to deliver: `min(x_i, x̄_i)`.
    pub guaranteed: f64,
    /// Total payment `p_i(x_i)`, fixed at admission.
    pub payment: f64,
    /// Marginal accepted price `λ_i = Δ_i(x_i)` — the value proxy.
    pub lambda: f64,
    /// Units delivered so far.
    pub delivered: f64,
    /// Guaranteed units formally released under the degradation policy
    /// (§4.4): when rerouting cannot cover a guarantee, SAM sheds or
    /// relaxes it, waives the uncoverable units here, and records a
    /// penalty in the [`crate::degradation::ViolationLedger`]. Always
    /// matches the ledger's per-contract total — the audit checks.
    pub waived: f64,
    /// Planned future transfers: `(path index, timestep, units)` over the
    /// contract's path set. Rewritten by SAM each timestep.
    pub plan: Vec<(usize, Timestep, f64)>,
}

impl Contract {
    /// Units still owed under the guarantee (waived units are no longer
    /// owed — their penalty lives in the violation ledger instead).
    pub fn guarantee_remaining(&self) -> f64 {
        (self.effective_guarantee() - self.delivered).max(0.0)
    }

    /// The guarantee after degradation waivers: `guaranteed - waived`.
    pub fn effective_guarantee(&self) -> f64 {
        (self.guaranteed - self.waived).max(0.0)
    }

    /// Units the customer still wants (purchased minus delivered).
    pub fn demand_remaining(&self) -> f64 {
        (self.purchased - self.delivered).max(0.0)
    }

    /// Whether the transfer window is still open at `now` and units remain.
    pub fn active_at(&self, now: Timestep) -> bool {
        now <= self.params.deadline && self.demand_remaining() > 1e-9
    }

    /// Whether the *original* guarantee was met (waivers don't count —
    /// this is the customer-visible promise).
    pub fn guarantee_met(&self) -> bool {
        self.delivered + 1e-6 >= self.guaranteed
    }

    /// Whether every guaranteed unit is accounted for: delivered, or
    /// waived with a recorded penalty. A run where some contract fails
    /// this past its deadline has silently dropped a guarantee.
    pub fn guarantee_accounted(&self) -> bool {
        self.delivered + self.waived + 1e-6 >= self.guaranteed
    }

    /// Fully served (all purchased units delivered).
    pub fn completed(&self) -> bool {
        self.delivered + 1e-6 >= self.purchased
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn contract() -> Contract {
        Contract {
            params: RequestParams {
                id: RequestId(0),
                src: NodeId(0),
                dst: NodeId(1),
                demand: 10.0,
                arrival: 0,
                start: 0,
                deadline: 5,
            },
            purchased: 8.0,
            guaranteed: 6.0,
            payment: 9.0,
            lambda: 1.2,
            delivered: 0.0,
            waived: 0.0,
            plan: Vec::new(),
        }
    }

    #[test]
    fn remaining_accounting() {
        let mut c = contract();
        assert_eq!(c.guarantee_remaining(), 6.0);
        assert_eq!(c.demand_remaining(), 8.0);
        c.delivered = 7.0;
        assert_eq!(c.guarantee_remaining(), 0.0);
        assert!((c.demand_remaining() - 1.0).abs() < 1e-12);
        assert!(c.guarantee_met());
        assert!(!c.completed());
        c.delivered = 8.0;
        assert!(c.completed());
    }

    #[test]
    fn waived_units_release_the_guarantee_but_not_the_promise() {
        let mut c = contract();
        c.delivered = 2.0;
        c.waived = 4.0;
        assert!((c.effective_guarantee() - 2.0).abs() < 1e-12);
        assert_eq!(c.guarantee_remaining(), 0.0);
        assert!(!c.guarantee_met(), "waiving must not count as meeting the promise");
        assert!(c.guarantee_accounted(), "delivered + waived covers the guarantee");
        c.waived = 3.0;
        assert!(!c.guarantee_accounted());
    }

    #[test]
    fn activity_window() {
        let c = contract();
        assert!(c.active_at(0));
        assert!(c.active_at(5));
        assert!(!c.active_at(6));
        let mut done = contract();
        done.delivered = done.purchased;
        assert!(!done.active_at(3));
    }

    #[test]
    fn params_hide_value() {
        // Compile-time documentation: RequestParams has no `value` field.
        let r = Request {
            id: RequestId(3),
            src: NodeId(0),
            dst: NodeId(1),
            demand: 5.0,
            value: 99.0,
            arrival: 1,
            start: 1,
            deadline: 4,
            kind: pretium_workload::RequestKind::Byte,
        };
        let p = RequestParams::from(&r);
        assert_eq!(p.id, RequestId(3));
        assert_eq!(p.demand, 5.0);
        let debug = format!("{p:?}");
        assert!(!debug.contains("99"), "value must not leak into params");
    }
}
