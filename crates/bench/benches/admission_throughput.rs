//! Admission front-end throughput at load 2.0: quotes/sec off one
//! published snapshot (serial walk vs the work-stealing pool) and
//! end-to-end accepts/sec through the sequencer.
//!
//! Writes `BENCH_admission_throughput.json` at the workspace root. Set
//! `ADMISSION_SMOKE=1` for the CI smoke mode: tiny scale, few samples,
//! plus a lenient pooled-vs-serial throughput floor (the pool only
//! interleaves on a single-core runner, so the floor guards against
//! pathological overhead, not for speedup).

use pretium_bench::{black_box, Harness};
use pretium_core::{Pretium, PretiumConfig, QuoteTicket, RequestParams};
use pretium_sim::par::run_cells_ok;
use pretium_sim::{run_pretium, Cell, ScenarioConfig, Variant};
use std::sync::Arc;

const POOL_JOBS: usize = 4;

fn main() {
    let smoke = std::env::var_os("ADMISSION_SMOKE").is_some();
    let sc = if smoke {
        let mut cfg = ScenarioConfig::tiny(21);
        cfg.load_factor = 2.0;
        cfg.build()
    } else {
        ScenarioConfig::evaluation(rand::DEFAULT_SEED, 2.0).build()
    };
    let mut h = Harness::new().sample_size(if smoke { 3 } else { 10 });

    // Warm a system to end-of-run state so the snapshot quotes against
    // non-trivial prices and reservations.
    let warmed = run_pretium(&sc, PretiumConfig::default(), Variant::Full).unwrap();
    let mut system = warmed.system;
    let params: Vec<RequestParams> = sc.requests.iter().map(RequestParams::from).collect();
    let n = params.len();
    let snap = system.snapshot();

    h.bench_function("admission_quotes_serial", |b| {
        b.iter(|| {
            for p in &params {
                black_box(snap.quote(p).capacity_bound());
            }
        });
    });
    h.bench_function("admission_quotes_pooled", |b| {
        b.iter(|| {
            let cells: Vec<Cell<QuoteTicket, std::convert::Infallible>> = params
                .iter()
                .map(|p| {
                    let snap = Arc::clone(&snap);
                    let p = p.clone();
                    Cell::new(format!("q/{:?}", p.id), move || Ok(snap.ticket(&p)))
                })
                .collect();
            black_box(run_cells_ok(POOL_JOBS, cells).0.len());
        });
    });
    system.absorb_quotes(&snap);
    drop(snap);

    // Pooled quotes must be the same menus, not just fast ones.
    {
        let snap = system.snapshot();
        let serial: Vec<_> = params.iter().map(|p| snap.quote(p)).collect();
        let cells: Vec<Cell<QuoteTicket, std::convert::Infallible>> = params
            .iter()
            .map(|p| {
                let snap = Arc::clone(&snap);
                let p = p.clone();
                Cell::new(format!("v/{:?}", p.id), move || Ok(snap.ticket(&p)))
            })
            .collect();
        let (pooled, _) = run_cells_ok(POOL_JOBS, cells);
        for (t, m) in pooled.iter().zip(&serial) {
            assert_eq!(&t.menu, m, "pooled menu diverged for {:?}", t.params.id);
        }
        system.absorb_quotes(&snap);
    }

    // Accepts/sec: admit the whole request stream end to end (quote +
    // sequenced booking) against a fresh system each sample.
    h.bench_function("admission_accepts", |b| {
        b.iter(|| {
            let mut fresh =
                Pretium::new(sc.net.clone(), sc.grid, sc.horizon, PretiumConfig::default());
            let mut admitted = 0usize;
            for (p, r) in params.iter().zip(&sc.requests) {
                let (_menu, id) =
                    fresh.admit_one(p, |menu| menu.optimal_purchase(r.value, r.demand));
                admitted += id.is_some() as usize;
            }
            black_box(admitted)
        });
    });

    let per_sec = |name: &str| n as f64 / h.get(name).unwrap().median().as_secs_f64();
    let q_serial = per_sec("admission_quotes_serial");
    let q_pooled = per_sec("admission_quotes_pooled");
    let accepts = per_sec("admission_accepts");
    let ratio = q_pooled / q_serial;
    let cores = std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1);
    println!(
        "admission_throughput: {n} requests at load 2.0 — quotes {q_serial:.0}/s serial, \
         {q_pooled:.0}/s pooled ({ratio:.2}x, {cores} core(s)), accepts {accepts:.0}/s"
    );
    println!("BENCH\tadmission_quotes_per_sec_serial\t{q_serial:.1}");
    println!("BENCH\tadmission_quotes_per_sec_pooled\t{q_pooled:.1}");
    println!("BENCH\tadmission_accepts_per_sec\t{accepts:.1}");

    // Hand-formatted (the workspace builds offline, without serde).
    let json = format!(
        "{{\n  \"bench\": \"admission_throughput\",\n  \"scale\": \"{scale}\",\n  \
         \"load_factor\": 2.0,\n  \"requests\": {n},\n  \"pool_jobs\": {POOL_JOBS},\n  \
         \"quotes_per_sec_serial\": {q_serial:.1},\n  \
         \"quotes_per_sec_pooled\": {q_pooled:.1},\n  \
         \"throughput_ratio\": {ratio:.3},\n  \
         \"accepts_per_sec\": {accepts:.1},\n  \"cores_available\": {cores}\n}}\n",
        scale = if smoke { "tiny" } else { "evaluation" },
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_admission_throughput.json");
    std::fs::write(path, json).expect("write BENCH_admission_throughput.json");
    println!("wrote {path}");

    if smoke {
        // Pure reads off a shared snapshot must not serialize behind a
        // lock: even an interleaving single-core pool stays within a small
        // constant factor of the serial walk.
        assert!(
            ratio >= 0.2,
            "pooled quoting fell to {ratio:.2}x of serial — snapshot reads are contending"
        );
    }
}
