//! Percentile and top-k statistics for link-usage time series.
//!
//! The paper's key cost-modeling observation (§4.2, Figure 5) is that the
//! average of the top 10% of usage samples (`z_e`) is linearly correlated
//! with — and slightly above — the 95th percentile (`y_e`), which makes it
//! a good *convexifiable* proxy for percentile billing.

/// Nearest-rank percentile: for `p` in `[0, 1]`, the value at ascending
/// rank `ceil(p·n)` (1-based), i.e. the smallest value such that at least
/// `p·n` samples are ≤ it. Returns 0 for an empty slice.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "percentile fraction must be in [0, 1]");
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in usage series"));
    let n = sorted.len();
    let rank = (p * n as f64).ceil() as usize;
    sorted[rank.clamp(1, n) - 1]
}

/// Mean of the largest `ceil(frac·n)` samples (`z_e` in the paper).
/// Returns 0 for an empty slice.
pub fn top_fraction_mean(samples: &[f64], frac: f64) -> f64 {
    assert!((0.0..=1.0).contains(&frac), "fraction must be in [0, 1]");
    if samples.is_empty() {
        return 0.0;
    }
    let k = top_k_count(samples.len(), frac);
    top_k_mean(samples, k)
}

/// Number of samples in the "top `frac`" set: `max(1, ceil(frac·n))`.
pub fn top_k_count(n: usize, frac: f64) -> usize {
    ((frac * n as f64).ceil() as usize).max(1).min(n)
}

/// Mean of the `k` largest samples.
pub fn top_k_mean(samples: &[f64], k: usize) -> f64 {
    assert!(k >= 1 && k <= samples.len(), "k must be in [1, n]");
    top_k_sum(samples, k) / k as f64
}

/// Sum of the `k` largest samples.
pub fn top_k_sum(samples: &[f64], k: usize) -> f64 {
    assert!(k >= 1 && k <= samples.len(), "k must be in [1, n]");
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).expect("NaN in usage series"));
    sorted[..k].iter().sum()
}

/// Empirical CDF evaluation points: returns the sorted samples paired with
/// cumulative fractions, suitable for plotting (used by Figures 1 and 10).
pub fn cdf_points(samples: &[f64]) -> Vec<(f64, f64)> {
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in samples"));
    let n = sorted.len();
    sorted.into_iter().enumerate().map(|(i, v)| (v, (i + 1) as f64 / n as f64)).collect()
}

/// Pearson correlation coefficient between two equal-length series (used to
/// reproduce the Figure 5 claim that `z_e` and `y_e` are linearly related).
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "series length mismatch");
    let n = a.len() as f64;
    if a.is_empty() {
        return 0.0;
    }
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va == 0.0 || vb == 0.0 {
        return 0.0;
    }
    cov / (va.sqrt() * vb.sqrt())
}

/// Ordinary least squares fit `y ≈ slope·x + intercept`.
pub fn linear_fit(x: &[f64], y: &[f64]) -> (f64, f64) {
    assert_eq!(x.len(), y.len(), "series length mismatch");
    let n = x.len() as f64;
    assert!(n > 0.0, "empty series");
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut num = 0.0;
    let mut den = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        num += (a - mx) * (b - my);
        den += (a - mx) * (a - mx);
    }
    let slope = if den == 0.0 { 0.0 } else { num / den };
    (slope, my - slope * mx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_simple_cases() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 0.95), 95.0);
        assert_eq!(percentile(&v, 0.50), 50.0);
        assert_eq!(percentile(&v, 1.0), 100.0);
        assert_eq!(percentile(&v, 0.0), 1.0);
    }

    #[test]
    fn percentile_single_sample() {
        assert_eq!(percentile(&[7.0], 0.95), 7.0);
        assert_eq!(percentile(&[7.0], 0.05), 7.0);
    }

    #[test]
    fn percentile_empty_is_zero() {
        assert_eq!(percentile(&[], 0.95), 0.0);
    }

    #[test]
    fn percentile_extreme_fractions() {
        // p = 0.0: rank ceil(0) = 0 clamps to 1 — the minimum, never an
        // out-of-bounds rank-0 read.
        let v: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 0.0), 1.0);
        // p = 1.0: rank n exactly — the maximum, never past the end.
        assert_eq!(percentile(&v, 1.0), 10.0);
        // p just under 1.0: ceil keeps the rank at n (not n+1 via a float
        // round-up, not n-1 via truncation).
        assert_eq!(percentile(&v, 1.0 - 1e-12), 10.0);
        assert_eq!(percentile(&v, 1.0 - f64::EPSILON), 10.0);
        // p just above 0.0 rounds up to rank 1.
        assert_eq!(percentile(&v, 1e-12), 1.0);
        // All four extremes on a single-sample series hit the same element.
        for p in [0.0, 1e-12, 1.0 - 1e-12, 1.0] {
            assert_eq!(percentile(&[42.0], p), 42.0);
        }
    }

    #[test]
    #[should_panic(expected = "percentile fraction")]
    fn percentile_rejects_out_of_range_fraction() {
        percentile(&[1.0], 1.0 + 1e-9);
    }

    #[test]
    fn percentile_unsorted_input() {
        assert_eq!(percentile(&[5.0, 1.0, 3.0, 2.0, 4.0], 0.6), 3.0);
    }

    #[test]
    fn top_k_statistics() {
        let v = [1.0, 9.0, 5.0, 7.0, 3.0];
        assert_eq!(top_k_sum(&v, 2), 16.0);
        assert_eq!(top_k_mean(&v, 2), 8.0);
        assert_eq!(top_k_count(30, 0.10), 3);
        assert_eq!(top_k_count(5, 0.10), 1); // max(1, ceil(0.5))
        assert_eq!(top_fraction_mean(&v, 0.4), 8.0);
    }

    #[test]
    fn top_fraction_mean_dominates_percentile() {
        // z_e >= y_e when the tail is monotone above the percentile cutoff.
        let v: Vec<f64> = (1..=200).map(|i| (i as f64).powf(1.3)).collect();
        assert!(top_fraction_mean(&v, 0.10) >= percentile(&v, 0.95));
    }

    #[test]
    fn cdf_monotone_and_normalized() {
        let pts = cdf_points(&[3.0, 1.0, 2.0]);
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0], (1.0, 1.0 / 3.0));
        assert_eq!(pts[2], (3.0, 1.0));
    }

    #[test]
    fn pearson_perfect_correlation() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = y.iter().map(|v| -v).collect();
        assert!((pearson(&x, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_series_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), 0.0);
    }

    #[test]
    fn linear_fit_recovers_line() {
        let x = [0.0, 1.0, 2.0, 3.0];
        let y: Vec<f64> = x.iter().map(|v| 2.5 * v + 1.0).collect();
        let (slope, intercept) = linear_fit(&x, &y);
        assert!((slope - 2.5).abs() < 1e-12);
        assert!((intercept - 1.0).abs() < 1e-12);
    }
}
