//! Sparse LU with Markowitz pivoting + Forrest–Tomlin updates vs the
//! dense-bump product-form reference kernel, on LP-shaped bases.
//!
//! Two scenarios mirror the repo's LP population: `wide` (m = 600, the
//! widest single-window SAM master) and `colgen` (m = 1600, the
//! restricted-master scale the column-generation redesign unlocked). Each
//! basis mixes slack singletons, interlocked multi-hop flow columns, and
//! denser percentile/CVaR columns — the structure that makes a dense bump
//! large while the sparse kernel's fill stays modest.
//!
//! Measured per scenario: refactorization wall-clock (both kernels),
//! FTRAN/BTRAN wall-clock (both kernels), the Forrest–Tomlin update loop,
//! and the fill-in ratio `nnz(L+U) / nnz(B)`. A counting global allocator
//! additionally asserts the PR's scratch-reuse contract: after one
//! warm-up call, steady-state `ftran`/`btran` perform **zero** heap
//! allocations.
//!
//! Set `SPARSE_LU_SMOKE=1` for the CI mode: fewer samples, the
//! ≥ 1.5× colgen-scale refactor-speedup floor and the zero-allocation
//! floor asserted, and no JSON written (a smoke run never clobbers
//! recorded numbers). Full mode writes `BENCH_sparse_lu.json`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use pretium_bench::black_box;
use pretium_lp::simplex::basis::dense_ref::DenseBumpFactorization;
use pretium_lp::simplex::basis::{Factorization, SparseCol};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Counts allocations + reallocations; frees are uncounted (the contract
/// under test is "no new memory on the steady-state solve path").
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

const PIVOT_TOL: f64 = 1e-9;
/// Acceptance floor: sparse refactorization must beat the dense bump by
/// at least this factor at the colgen scale.
const MIN_COLGEN_REFACTOR_SPEEDUP: f64 = 1.5;

/// An LP-shaped basis: `slack_frac` of the columns are slack singletons,
/// a sprinkle are dense percentile/CVaR columns, the rest are interlocked
/// flow columns whose row patterns stride across the matrix (so no
/// triangularization shrinks the dense kernel's bump). Column `j` is
/// anchored at row `j` with strict column dominance ⇒ nonsingular.
fn lp_column(m: usize, anchor: usize, extra: usize, local: bool, rng: &mut StdRng) -> SparseCol {
    let mut used = vec![anchor];
    let mut col: SparseCol = Vec::new();
    let mut mass = 0.0;
    for hop in 0..extra {
        // Flow columns occupy consecutive rows (a path's edge×time rows
        // form a staircase band, like the SAM LP's per-timestep capacity
        // rows); percentile columns couple rows across the whole matrix.
        let r = if local { (anchor + hop + 1) % m } else { (anchor + rng.gen_range(1..m)) % m };
        if !used.contains(&r) {
            used.push(r);
            let v = rng.gen_range(0.25..1.0) * if rng.gen_range(0..2) == 0 { -1.0 } else { 1.0 };
            mass += v.abs();
            col.push((r as u32, v));
        }
    }
    col.push((anchor as u32, mass * 2.0 + 1.0));
    col
}

fn lp_basis(m: usize, slack_frac: f64, rng: &mut StdRng) -> Vec<SparseCol> {
    (0..m)
        .map(|j| {
            let class = rng.gen_range(0.0..1.0);
            let (extra, local) = if class < slack_frac {
                (0, true) // slack singleton
            } else if class < slack_frac + 0.10 {
                (rng.gen_range(16..25), false) // percentile/CVaR coupling column
            } else {
                (rng.gen_range(4..8), true) // k-hop flow column
            };
            lp_column(m, j, extra, local, rng)
        })
        .collect()
}

fn as_refs(cols: &[SparseCol]) -> Vec<&SparseCol> {
    cols.iter().collect()
}

fn basis_nnz(cols: &[SparseCol]) -> usize {
    cols.iter().map(Vec::len).sum()
}

fn median_us(samples: &mut [Duration]) -> f64 {
    samples.sort();
    samples[samples.len() / 2].as_secs_f64() * 1e6
}

struct ScenarioResult {
    name: &'static str,
    m: usize,
    basis_nnz: usize,
    fill_ratio: f64,
    sparse_refactor_us: f64,
    dense_refactor_us: f64,
    refactor_speedup: f64,
    sparse_ftran_us: f64,
    dense_ftran_us: f64,
    sparse_btran_us: f64,
    dense_btran_us: f64,
    ft_update_us: f64,
    ft_updates_applied: u64,
}

fn run_scenario(
    name: &'static str,
    m: usize,
    refactor_samples: usize,
    dense_samples: usize,
) -> ScenarioResult {
    let mut rng = StdRng::seed_from_u64(rand::derive_seed(rand::DEFAULT_SEED, name));
    let mut cols = lp_basis(m, 0.40, &mut rng);
    let nnz = basis_nnz(&cols);
    let refs = as_refs(&cols);

    // --- refactorization ------------------------------------------------
    let mut sparse = Factorization::new(m, 0, PIVOT_TOL);
    let mut sparse_t: Vec<Duration> = (0..refactor_samples)
        .map(|_| {
            let t0 = Instant::now();
            black_box(sparse.refactor(black_box(&refs))).unwrap();
            t0.elapsed()
        })
        .collect();
    let fill_ratio = sparse.factor_nnz() as f64 / nnz as f64;

    let mut dense = DenseBumpFactorization::new(m, 0, PIVOT_TOL);
    let mut dense_t: Vec<Duration> = (0..dense_samples)
        .map(|_| {
            let t0 = Instant::now();
            black_box(dense.refactor(black_box(&refs))).unwrap();
            t0.elapsed()
        })
        .collect();
    println!(
        "  [{name}] dense bump {} of {m} rows, sparse factor nnz {}",
        dense.bump_size(),
        sparse.factor_nnz()
    );

    // --- FTRAN / BTRAN --------------------------------------------------
    let rhs: Vec<Vec<f64>> =
        (0..32).map(|_| (0..m).map(|_| rng.gen_range(-1.0..1.0)).collect()).collect();
    let mut out = vec![0.0; m];
    // Warm up both kernels' scratch, then pin the zero-allocation contract
    // for the sparse kernel's steady state.
    sparse.ftran_dense(&rhs[0], &mut out);
    sparse.btran(&rhs[0], &mut out);
    let allocs_before = ALLOCS.load(Ordering::Relaxed);
    for a in &rhs {
        sparse.ftran_dense(black_box(a), &mut out);
        black_box(&out);
        sparse.btran(black_box(a), &mut out);
        black_box(&out);
    }
    let steady_allocs = ALLOCS.load(Ordering::Relaxed) - allocs_before;
    assert_eq!(
        steady_allocs,
        0,
        "steady-state ftran/btran allocated {steady_allocs} times over {} solves",
        2 * rhs.len()
    );

    fn time_solves(
        rhs: &[Vec<f64>],
        out: &mut Vec<f64>,
        body: &mut dyn FnMut(&[f64], &mut Vec<f64>),
    ) -> f64 {
        let mut samples: Vec<Duration> = rhs
            .iter()
            .map(|a| {
                let t0 = Instant::now();
                body(a, out);
                black_box(&*out);
                t0.elapsed()
            })
            .collect();
        median_us(&mut samples)
    }
    let sparse_ftran_us = time_solves(&rhs, &mut out, &mut |a, o| sparse.ftran_dense(a, o));
    let sparse_btran_us = time_solves(&rhs, &mut out, &mut |a, o| sparse.btran(a, o));
    dense.ftran_dense(&rhs[0], &mut out); // scratch warm-up
    let dense_ftran_us = time_solves(&rhs, &mut out, &mut |a, o| dense.ftran_dense(a, o));
    let dense_btran_us = time_solves(&rhs, &mut out, &mut |a, o| dense.btran(a, o));

    // --- Forrest–Tomlin update loop -------------------------------------
    // Replace random non-slack positions with fresh flow columns, timing
    // FTRAN + update per exchange; refactor on rejection or cadence, as
    // the solver would.
    let mut applied = 0u64;
    let mut update_t: Vec<Duration> = Vec::new();
    let mut dense_a = vec![0.0; m];
    let exchanges = 64.min(m / 4);
    for _ in 0..exchanges {
        let pos = rng.gen_range(0..m);
        let hops = rng.gen_range(4..8);
        let entering = lp_column(m, pos, hops, true, &mut rng);
        dense_a.iter_mut().for_each(|v| *v = 0.0);
        for &(i, v) in &entering {
            dense_a[i as usize] = v;
        }
        let t0 = Instant::now();
        let mut w = Vec::new();
        sparse.ftran_dense(&dense_a, &mut w);
        let ok = sparse.update(pos, &w);
        update_t.push(t0.elapsed());
        if ok {
            cols[pos] = entering;
            applied += 1;
        }
        if !ok || sparse.wants_refactor() {
            let refs = as_refs(&cols);
            sparse.refactor(&refs).unwrap();
        }
    }

    ScenarioResult {
        name,
        m,
        basis_nnz: nnz,
        fill_ratio,
        sparse_refactor_us: median_us(&mut sparse_t),
        dense_refactor_us: median_us(&mut dense_t),
        refactor_speedup: 0.0, // filled below
        sparse_ftran_us,
        dense_ftran_us,
        sparse_btran_us,
        dense_btran_us,
        ft_update_us: median_us(&mut update_t),
        ft_updates_applied: applied,
    }
}

fn main() {
    let smoke = std::env::var("SPARSE_LU_SMOKE").is_ok_and(|v| v == "1");
    let (refactor_samples, dense_samples) = if smoke { (3, 2) } else { (15, 7) };

    let mut results = vec![
        run_scenario("wide", 600, refactor_samples, dense_samples),
        run_scenario("colgen", 1600, refactor_samples, dense_samples),
    ];
    for r in &mut results {
        r.refactor_speedup = r.dense_refactor_us / r.sparse_refactor_us.max(1e-9);
        println!(
            "{:<8} m={:<5} nnz={:<6} fill={:.3}  refactor {:.1}us (dense {:.1}us, {:.2}x)  \
             ftran {:.2}us/{:.2}us  btran {:.2}us/{:.2}us  ft-update {:.2}us ({} applied)",
            r.name,
            r.m,
            r.basis_nnz,
            r.fill_ratio,
            r.sparse_refactor_us,
            r.dense_refactor_us,
            r.refactor_speedup,
            r.sparse_ftran_us,
            r.dense_ftran_us,
            r.sparse_btran_us,
            r.dense_btran_us,
            r.ft_update_us,
            r.ft_updates_applied,
        );
        println!("BENCH\tsparse_lu_{}_fill_ratio\t{:.3}", r.name, r.fill_ratio);
        println!("BENCH\tsparse_lu_{}_refactor_us\t{:.1}", r.name, r.sparse_refactor_us);
        println!("BENCH\tsparse_lu_{}_dense_refactor_us\t{:.1}", r.name, r.dense_refactor_us);
        println!("BENCH\tsparse_lu_{}_refactor_speedup\t{:.3}", r.name, r.refactor_speedup);
        println!("BENCH\tsparse_lu_{}_ftran_us\t{:.2}", r.name, r.sparse_ftran_us);
        println!("BENCH\tsparse_lu_{}_btran_us\t{:.2}", r.name, r.sparse_btran_us);
        println!("BENCH\tsparse_lu_{}_ft_update_us\t{:.2}", r.name, r.ft_update_us);
        assert!(r.ft_updates_applied > 0, "{}: no FT update was ever accepted", r.name);
        assert!(r.fill_ratio < 10.0, "{}: pathological fill {:.1}", r.name, r.fill_ratio);
    }

    let colgen = &results[1];
    assert!(
        colgen.refactor_speedup >= MIN_COLGEN_REFACTOR_SPEEDUP,
        "colgen-scale refactor speedup {:.2}x below the {MIN_COLGEN_REFACTOR_SPEEDUP}x floor",
        colgen.refactor_speedup
    );

    if smoke {
        println!(
            "sparse_lu smoke: zero-allocation, fill, and {MIN_COLGEN_REFACTOR_SPEEDUP}x \
             colgen refactor floors hold"
        );
        return;
    }

    let cell = |r: &ScenarioResult| {
        format!(
            "    {{\n      \"scenario\": \"{}\",\n      \"m\": {},\n      \"basis_nnz\": {},\n      \
             \"fill_ratio\": {:.3},\n      \"refactor_us\": {:.1},\n      \
             \"dense_refactor_us\": {:.1},\n      \"refactor_speedup\": {:.3},\n      \
             \"ftran_us\": {:.2},\n      \"dense_ftran_us\": {:.2},\n      \
             \"btran_us\": {:.2},\n      \"dense_btran_us\": {:.2},\n      \
             \"ft_update_us\": {:.2},\n      \"ft_updates_applied\": {}\n    }}",
            r.name,
            r.m,
            r.basis_nnz,
            r.fill_ratio,
            r.sparse_refactor_us,
            r.dense_refactor_us,
            r.refactor_speedup,
            r.sparse_ftran_us,
            r.dense_ftran_us,
            r.sparse_btran_us,
            r.dense_btran_us,
            r.ft_update_us,
            r.ft_updates_applied,
        )
    };
    let json = format!(
        "{{\n  \"bench\": \"sparse_lu\",\n  \"steady_state_solve_allocations\": 0,\n  \
         \"scenarios\": [\n{},\n{}\n  ]\n}}\n",
        cell(&results[0]),
        cell(&results[1]),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sparse_lu.json");
    std::fs::write(path, json).expect("write BENCH_sparse_lu.json");
    println!("wrote {path}");
}
