//! Solver results: status, primal/dual values, and error types.

use crate::expr::Var;
use crate::model::RowId;
use crate::simplex::basis::FactorStats;
use std::fmt;

/// Termination status of a solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// An optimal basic solution was found.
    Optimal,
    /// The constraints admit no feasible point.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
}

/// Errors surfaced by [`crate::Model::solve`].
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    /// No feasible point exists; carries the phase-1 infeasibility residual.
    Infeasible { residual: f64 },
    /// Objective unbounded; carries the name of a variable with an
    /// unbounded improving ray.
    Unbounded { var: String },
    /// The iteration limit was exceeded before reaching optimality.
    IterationLimit { iterations: u64 },
    /// Numerical failure (singular basis that could not be repaired).
    Numerical(String),
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Infeasible { residual } => {
                write!(f, "infeasible (phase-1 residual {residual:.3e})")
            }
            SolveError::Unbounded { var } => write!(f, "unbounded along variable `{var}`"),
            SolveError::IterationLimit { iterations } => {
                write!(f, "iteration limit reached after {iterations} iterations")
            }
            SolveError::Numerical(msg) => write!(f, "numerical failure: {msg}"),
        }
    }
}

impl std::error::Error for SolveError {}

/// An optimal solution: primal values, row duals, and reduced costs.
///
/// Dual sign convention: `dual(row)` is the derivative of the optimal
/// objective with respect to the row's right-hand side, **in the model's
/// own sense**. For a `Maximize` model, a binding `<=` row therefore has a
/// non-negative dual (relaxing the row helps), and a binding `>=` row a
/// non-positive one. For `Minimize` models signs flip accordingly.
#[derive(Debug, Clone)]
pub struct Solution {
    pub(crate) status: Status,
    pub(crate) objective: f64,
    pub(crate) values: Vec<f64>,
    pub(crate) duals: Vec<f64>,
    pub(crate) reduced_costs: Vec<f64>,
    pub(crate) iterations: u64,
    pub(crate) pricing_scans: u64,
    pub(crate) bland_pivots: u64,
    pub(crate) pricing_par_sections: u64,
    pub(crate) pricing_par_steals: u64,
    pub(crate) pricing_serial_nanos: u64,
    pub(crate) pricing_par_nanos: u64,
    pub(crate) factor_stats: FactorStats,
}

impl Solution {
    /// Termination status (always [`Status::Optimal`] for solutions returned
    /// from `solve`; errors are reported via [`SolveError`]).
    pub fn status(&self) -> Status {
        self.status
    }

    /// Optimal objective value (in the model's sense, including any
    /// objective offset).
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// Value of a variable at the optimum.
    pub fn value(&self, v: Var) -> f64 {
        self.values[v.index()]
    }

    /// All variable values, indexed densely by [`Var::index`].
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Dual value (shadow price) of a row. See the type-level docs for the
    /// sign convention.
    pub fn dual(&self, r: RowId) -> f64 {
        self.duals[r.index()]
    }

    /// All row duals, indexed densely by [`RowId::index`].
    pub fn duals(&self) -> &[f64] {
        &self.duals
    }

    /// Reduced cost of a variable at the optimum (model sense): the rate of
    /// objective change per unit increase of the variable off its bound.
    pub fn reduced_cost(&self, v: Var) -> f64 {
        self.reduced_costs[v.index()]
    }

    /// Number of simplex iterations used (phase 1 + phase 2).
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// Columns examined by pricing across the solve: selection scans plus
    /// the columns touched by incremental pivot-row updates. The work
    /// measure that partial pricing exists to shrink.
    pub fn pricing_scans(&self) -> u64 {
        self.pricing_scans
    }

    /// Iterations priced under the Bland's-rule anti-cycling fallback.
    pub fn bland_pivots(&self) -> u64 {
        self.bland_pivots
    }

    /// Sections executed by the deterministic parallel-pricing layer.
    /// Zero when `pricing_jobs <= 1` (the serial path spawns no sections).
    /// Deterministic for a fixed model and configuration: section counts
    /// derive from range sizes, never from thread scheduling.
    pub fn pricing_par_sections(&self) -> u64 {
        self.pricing_par_sections
    }

    /// Sections claimed by a worker other than the one whose deque they
    /// were seeded on. Timing-dependent — a load-balance diagnostic, not a
    /// deterministic quantity.
    pub fn pricing_par_steals(&self) -> u64 {
        self.pricing_par_steals
    }

    /// Wall-clock nanoseconds spent in pricing invocations that ran the
    /// serial path.
    pub fn pricing_serial_nanos(&self) -> u64 {
        self.pricing_serial_nanos
    }

    /// Wall-clock nanoseconds spent in pricing invocations that fanned out
    /// over the worker pool.
    pub fn pricing_par_nanos(&self) -> u64 {
        self.pricing_par_nanos
    }

    /// Basis-factorization counters (refactorizations, fill-in,
    /// Forrest–Tomlin updates, pivot rejections) accumulated over the
    /// solve.
    pub fn factor_stats(&self) -> FactorStats {
        self.factor_stats
    }
}
