//! # pretium-net — the WAN substrate
//!
//! Everything Pretium needs to know about the physical network, built from
//! scratch for the reproduction of "Dynamic Pricing and Traffic Engineering
//! for Timely Inter-Datacenter Transfers" (SIGCOMM 2016):
//!
//! * [`graph`] — directed WAN graph of datacenters and links, with
//!   per-timestep capacities and regions.
//! * [`cost`] — link cost models: owned (fixed) links vs links billed on
//!   95th-percentile usage, plus the paper's sum-of-top-k cost proxy.
//! * [`paths`] — Dijkstra and Yen's k-shortest loopless paths; the route
//!   sets `R_i` that requests are admitted on.
//! * [`time`] — timestep/window discretization shared by all modules.
//! * [`topology`] — generators for region-structured WANs, including a
//!   106-node/≈226-link production-scale instance and the 4-node example
//!   of the paper's Figure 2.
//! * [`util`] — usage accounting: percentile billing, utilization CDFs,
//!   capacity-violation checks.
//! * [`percentile`] — nearest-rank percentiles, top-k means, correlation
//!   statistics (Figure 5).

pub mod cost;
pub mod graph;
pub mod paths;
pub mod percentile;
pub mod time;
pub mod topology;
pub mod util;

pub use cost::LinkCost;
pub use graph::{Edge, EdgeId, Network, Node, NodeId, Region};
pub use paths::{
    k_shortest_paths, k_shortest_paths_capped, shortest_path, Path, PathSet, SharedPathSet,
};
pub use time::{TimeGrid, Timestep};
pub use util::UsageTracker;
