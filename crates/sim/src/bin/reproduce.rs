//! Regenerate every table and figure of the paper's evaluation (§6).
//!
//! ```text
//! cargo run --release -p pretium-sim --bin reproduce              # everything
//! cargo run --release -p pretium-sim --bin reproduce -- fig6 fig8    # a subset
//! cargo run --release -p pretium-sim --bin reproduce -- --seed 11
//! cargo run --release -p pretium-sim --bin reproduce -- --jobs 4     # 4 workers
//! cargo run --release -p pretium-sim --bin reproduce -- --tiny      # CI smoke scale
//! cargo run --release -p pretium-sim --bin reproduce -- --list      # registry names
//! ```
//!
//! The figure list is the experiment registry (`pretium_sim::registry`):
//! every selected experiment's cells are flattened into one work-stealing
//! pool (`--jobs N` workers, default = available parallelism) and merged
//! back in registry order, so output is bit-identical across job counts.
//! Output is plain text: one block per figure with the same rows/series
//! the paper plots. EXPERIMENTS.md records a captured run next to the
//! paper's reported numbers.

use pretium_sim::registry::{registry_at, run_experiments, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed = rand::DEFAULT_SEED;
    let mut jobs = pretium_sim::default_jobs();
    let mut scale = Scale::Evaluation;
    let mut list = false;
    let mut show_pool = false;
    let mut wanted: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                seed = it.next().and_then(|s| s.parse().ok()).expect("--seed needs an integer");
            }
            "--jobs" => {
                jobs = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n >= 1)
                    .expect("--jobs needs a positive integer");
            }
            "--tiny" => scale = Scale::Tiny,
            "--list" => list = true,
            "--pool" => show_pool = true,
            other => wanted.push(other.to_string()),
        }
    }

    let experiments = registry_at(scale);
    if list {
        for exp in &experiments {
            let aliases = exp.aliases();
            if aliases.is_empty() {
                println!("{}", exp.name());
            } else {
                println!("{} (aliases: {})", exp.name(), aliases.join(", "));
            }
        }
        return;
    }

    let all = wanted.is_empty();
    let selected: Vec<_> = experiments
        .into_iter()
        .filter(|exp| {
            all || wanted.iter().any(|w| w == exp.name() || exp.aliases().iter().any(|a| a == w))
        })
        .collect();
    if selected.is_empty() {
        eprintln!("no experiment matches {wanted:?}; try --list");
        std::process::exit(2);
    }

    let (results, pool) = match run_experiments(&selected, seed, jobs) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("experiment failed: {e:?}");
            std::process::exit(1);
        }
    };
    for (_, result) in &results {
        println!("{}", result.render());
    }
    if show_pool || jobs > 1 {
        println!("{}", pretium_sim::report::render_pool("Parallel engine", &pool));
    }
}
