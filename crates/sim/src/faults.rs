//! Deterministic fault injection for the §4.4 robustness study.
//!
//! A [`FaultPlan`] is a schedule of adverse events — link failures, partial
//! capacity degradations, request surges, solver iteration-limit pressure —
//! generated *once* from a seed and then replayed against a live
//! [`Pretium`] instance by the runner. Faults are data, not callbacks: the
//! plan is built before the run starts, so a faulted cell stays a pure
//! function of its spec and the determinism contract (bit-identical results
//! across `--jobs` counts) extends to every robustness experiment.
//!
//! Failure semantics are pessimistic surprises: when an outage starts the
//! system learns only that capacity is gone *from now on* (the loss is
//! injected through the end of the horizon), and recovery is a second
//! surprise that restores it. SAM therefore re-plans against worst-case
//! knowledge, exactly the §4.4 posture.

use crate::scenario::Scenario;
use pretium_core::Pretium;
use pretium_net::{EdgeId, Network, NodeId, TimeGrid, Timestep};
use pretium_workload::{Request, RequestId, RequestKind};
use rand::rngs::StdRng;
use rand::{derive_seed, Rng, SeedableRng};

/// Request ids at or above this offset are surge traffic injected by a
/// fault plan, not part of the scenario's request stream. Scenario ids are
/// dense from 0 and assigned as `u32`-range indices, so parking the surge
/// namespace past `u32::MAX` keeps the two disjoint even at (and far
/// beyond) the ~1M-request paper-scale traces; [`FaultPlan::apply_step`]
/// debug-asserts the invariant against the live system's contracts.
pub const SURGE_ID_OFFSET: u64 = 1 << 32;

/// One scheduled adverse event.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultEvent {
    /// Total outage of a link over `[at, until)`.
    LinkFailure { edge: EdgeId, at: Timestep, until: Timestep },
    /// Partial loss: `fraction` of the link's sellable capacity is gone
    /// over `[at, until)`.
    CapacityDegradation { edge: EdgeId, at: Timestep, until: Timestep, fraction: f64 },
    /// A burst of unplanned demand arriving at `at`.
    RequestSurge { at: Timestep, requests: Vec<Request> },
    /// The SAM solver is iteration-limited over `[at, until)` (models a
    /// compute-budget squeeze on the controller; see
    /// `Pretium::set_solver_pressure`).
    SolverPressure { at: Timestep, until: Timestep, max_iterations: u64 },
}

/// Knobs of [`FaultPlan::generate`]. Rates are per (edge, window) for
/// capacity events and per window for surges/pressure.
#[derive(Debug, Clone)]
pub struct FaultPlanConfig {
    pub seed: u64,
    /// Probability that an outage starts on a given (edge, window).
    pub failure_rate: f64,
    /// Severity range: fraction of capacity removed (draws ≥ 0.95 become
    /// total [`FaultEvent::LinkFailure`]s).
    pub severity: (f64, f64),
    /// Outage duration range in timesteps (inclusive).
    pub duration: (usize, usize),
    /// Probability of a request surge in a given window.
    pub surge_rate: f64,
    /// Requests per surge.
    pub surge_requests: usize,
    /// Probability of solver pressure in a given window.
    pub pressure_rate: f64,
    /// Iteration cap while pressure is active.
    pub pressure_iterations: u64,
}

impl Default for FaultPlanConfig {
    fn default() -> Self {
        FaultPlanConfig {
            seed: rand::DEFAULT_SEED,
            failure_rate: 0.0,
            severity: (0.5, 1.0),
            duration: (2, 6),
            surge_rate: 0.0,
            surge_requests: 4,
            pressure_rate: 0.0,
            pressure_iterations: 50,
        }
    }
}

impl FaultPlanConfig {
    /// The availability-sweep profile: capacity faults at `failure_rate`
    /// with outages long enough to outlast scheduling slack, plus a mild
    /// surge stream so degraded capacity is actually contended.
    pub fn availability(seed: u64, failure_rate: f64) -> Self {
        FaultPlanConfig {
            seed,
            failure_rate,
            severity: (0.7, 1.0),
            duration: (4, 10),
            surge_rate: failure_rate.min(0.5),
            ..Self::default()
        }
    }

    /// The admission-surge profile: no capacity faults, a surge in every
    /// window of `requests_per_step` requests — pure request-pressure on
    /// the admission front end (the surge experiment runs this at 10–100×
    /// the scenario's own arrival rate).
    pub fn surge(seed: u64, requests_per_surge: usize) -> Self {
        FaultPlanConfig {
            seed,
            surge_rate: 1.0,
            surge_requests: requests_per_surge,
            ..Self::default()
        }
    }
}

/// A deterministic schedule of [`FaultEvent`]s over one run's horizon.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    pub events: Vec<FaultEvent>,
    pub horizon: usize,
}

impl FaultPlan {
    /// The empty plan (a faulted runner with this plan is a healthy run).
    pub fn none(horizon: usize) -> Self {
        FaultPlan { events: Vec::new(), horizon }
    }

    /// A single total link failure over `[at, until)`.
    pub fn single_link_failure(
        edge: EdgeId,
        at: Timestep,
        until: Timestep,
        horizon: usize,
    ) -> Self {
        assert!(at < until, "empty failure interval");
        FaultPlan {
            events: vec![FaultEvent::LinkFailure { edge, at, until: until.min(horizon) }],
            horizon,
        }
    }

    /// Generate a plan from `cfg.seed`. Event draws walk (edge × window)
    /// and window grids in fixed index order, so the plan is a pure
    /// function of `(net shape, grid, horizon, cfg)` — never of thread
    /// scheduling. Per-edge outages never overlap (an edge must recover
    /// before it can fail again).
    pub fn generate(net: &Network, grid: &TimeGrid, horizon: usize, cfg: &FaultPlanConfig) -> Self {
        let mut events = Vec::new();
        let w = grid.steps_per_window;
        let windows = horizon.div_ceil(w);

        let mut outages = StdRng::seed_from_u64(derive_seed(cfg.seed, "outages"));
        for e in net.edge_ids() {
            let mut next_free = 0usize;
            for win in 0..windows {
                if !outages.gen_bool(cfg.failure_rate.clamp(0.0, 1.0)) {
                    continue;
                }
                let at = win * w + outages.gen_range(0..w);
                let dur = outages.gen_range(cfg.duration.0..=cfg.duration.1.max(cfg.duration.0));
                let severity = outages.gen_range(cfg.severity.0..=cfg.severity.1);
                if at < next_free || at >= horizon {
                    continue; // drawn but unusable: edge still down, or past horizon
                }
                let until = (at + dur.max(1)).min(horizon);
                events.push(if severity >= 0.95 {
                    FaultEvent::LinkFailure { edge: e, at, until }
                } else {
                    FaultEvent::CapacityDegradation { edge: e, at, until, fraction: severity }
                });
                next_free = until;
            }
        }

        let mut surges = StdRng::seed_from_u64(derive_seed(cfg.seed, "surge"));
        let mut surge_id = SURGE_ID_OFFSET;
        for win in 0..windows {
            if !surges.gen_bool(cfg.surge_rate.clamp(0.0, 1.0)) {
                continue;
            }
            let at = win * w + surges.gen_range(0..w);
            if at >= horizon {
                continue;
            }
            let requests = (0..cfg.surge_requests)
                .map(|_| {
                    let src = surges.gen_range(0..net.num_nodes());
                    let mut dst = surges.gen_range(0..net.num_nodes());
                    if dst == src {
                        dst = (dst + 1) % net.num_nodes();
                    }
                    let slack = surges.gen_range(3usize..=9);
                    let r = Request {
                        id: RequestId(surge_id),
                        src: NodeId(src as u32),
                        dst: NodeId(dst as u32),
                        demand: surges.gen_range(1.0..4.0),
                        value: surges.gen_range(0.5..1.5),
                        arrival: at,
                        start: at,
                        deadline: (at + slack).min(horizon - 1),
                        kind: RequestKind::Byte,
                    };
                    surge_id += 1;
                    r
                })
                .collect();
            events.push(FaultEvent::RequestSurge { at, requests });
        }

        let mut pressure = StdRng::seed_from_u64(derive_seed(cfg.seed, "pressure"));
        for win in 0..windows {
            if !pressure.gen_bool(cfg.pressure_rate.clamp(0.0, 1.0)) {
                continue;
            }
            let at = win * w;
            events.push(FaultEvent::SolverPressure {
                at,
                until: ((win + 1) * w).min(horizon),
                max_iterations: cfg.pressure_iterations,
            });
        }

        FaultPlan { events, horizon }
    }

    /// Convenience: generate against a scenario's own net/grid/horizon.
    pub fn for_scenario(scenario: &Scenario, cfg: &FaultPlanConfig) -> Self {
        debug_assert!(
            scenario.requests.iter().all(|r| r.id.0 < SURGE_ID_OFFSET),
            "scenario request ids must stay below SURGE_ID_OFFSET so surge \
             traffic cannot collide with them"
        );
        Self::generate(&scenario.net, &scenario.grid, scenario.horizon, cfg)
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Apply every event that fires at `now` to the live system: outages
    /// inject a pessimistic loss through the horizon, recoveries restore
    /// it, solver pressure toggles the SAM iteration cap. Surge requests
    /// are *returned* by [`FaultPlan::surges_at`] instead — admission is
    /// the runner's job.
    pub fn apply_step(&self, system: &mut Pretium, now: Timestep) {
        debug_assert!(
            self.surges_at(now).all(|r| {
                r.id.0 >= SURGE_ID_OFFSET && system.contracts().iter().all(|c| c.params.id != r.id)
            }),
            "surge ids must sit in the reserved namespace above SURGE_ID_OFFSET \
             and must not collide with an already-booked contract"
        );
        for ev in &self.events {
            match *ev {
                FaultEvent::LinkFailure { edge, at, until } => {
                    if at == now {
                        system.inject_capacity_loss(edge, now, self.horizon, 1.0);
                    }
                    if until == now {
                        system.restore_capacity(edge, now, self.horizon);
                    }
                }
                FaultEvent::CapacityDegradation { edge, at, until, fraction } => {
                    if at == now {
                        system.inject_capacity_loss(edge, now, self.horizon, fraction);
                    }
                    if until == now {
                        system.restore_capacity(edge, now, self.horizon);
                    }
                }
                FaultEvent::RequestSurge { .. } => {}
                FaultEvent::SolverPressure { at, until, max_iterations } => {
                    if at == now {
                        system.set_solver_pressure(Some(max_iterations));
                    }
                    if until == now {
                        system.set_solver_pressure(None);
                    }
                }
            }
        }
    }

    /// Does a capacity event (outage start or recovery) fire at `now`?
    /// The runner re-runs SAM immediately when one does — §4.2 treats link
    /// failures as re-optimization triggers, and until SAM re-plans, stale
    /// reservations on the dead link would be quoted against.
    pub fn capacity_event_at(&self, now: Timestep) -> bool {
        self.events.iter().any(|ev| match *ev {
            FaultEvent::LinkFailure { at, until, .. }
            | FaultEvent::CapacityDegradation { at, until, .. } => at == now || until == now,
            _ => false,
        })
    }

    /// Surge requests arriving at `now`, in plan order.
    pub fn surges_at(&self, now: Timestep) -> impl Iterator<Item = &Request> {
        self.events
            .iter()
            .filter_map(move |ev| match ev {
                FaultEvent::RequestSurge { at, requests } if *at == now => Some(requests.iter()),
                _ => None,
            })
            .flatten()
    }

    /// Is some capacity fault active at `t`? (Surges and solver pressure
    /// don't break the topology, so they don't contaminate price windows.)
    pub fn contaminates(&self, t: Timestep) -> bool {
        self.events.iter().any(|ev| match *ev {
            FaultEvent::LinkFailure { at, until, .. }
            | FaultEvent::CapacityDegradation { at, until, .. } => at <= t && t < until,
            _ => false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioConfig;

    fn world() -> Scenario {
        ScenarioConfig::tiny(11).build()
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let sc = world();
        let cfg = FaultPlanConfig::availability(42, 0.4);
        let a = FaultPlan::for_scenario(&sc, &cfg);
        let b = FaultPlan::for_scenario(&sc, &cfg);
        assert_eq!(a, b);
        assert!(!a.is_empty(), "rate 0.4 on {} edges produced no events", sc.net.num_edges());
        let other = FaultPlan::for_scenario(&sc, &FaultPlanConfig::availability(43, 0.4));
        assert_ne!(a, other, "different seeds must give different plans");
    }

    #[test]
    fn per_edge_outages_never_overlap() {
        let sc = world();
        let cfg = FaultPlanConfig { failure_rate: 0.9, ..FaultPlanConfig::availability(7, 0.9) };
        let plan = FaultPlan::for_scenario(&sc, &cfg);
        for e in sc.net.edge_ids() {
            let mut spans: Vec<(usize, usize)> = plan
                .events
                .iter()
                .filter_map(|ev| match *ev {
                    FaultEvent::LinkFailure { edge, at, until }
                    | FaultEvent::CapacityDegradation { edge, at, until, .. }
                        if edge == e =>
                    {
                        Some((at, until))
                    }
                    _ => None,
                })
                .collect();
            spans.sort_unstable();
            for pair in spans.windows(2) {
                assert!(pair[0].1 <= pair[1].0, "overlapping outages on {e:?}: {spans:?}");
            }
        }
    }

    #[test]
    fn zero_rates_generate_nothing() {
        let sc = world();
        let plan = FaultPlan::for_scenario(&sc, &FaultPlanConfig { seed: 3, ..Default::default() });
        assert!(plan.is_empty());
        assert!(!plan.contaminates(0));
    }

    #[test]
    fn contamination_matches_event_spans() {
        let plan = FaultPlan::single_link_failure(EdgeId(0), 4, 8, 24);
        assert!(!plan.contaminates(3));
        assert!(plan.contaminates(4));
        assert!(plan.contaminates(7));
        assert!(!plan.contaminates(8));
    }

    #[test]
    fn surge_ids_stay_clear_of_scenario_requests() {
        let sc = world();
        let cfg = FaultPlanConfig { surge_rate: 1.0, ..FaultPlanConfig::default() };
        let plan = FaultPlan::for_scenario(&sc, &cfg);
        let surges: Vec<&Request> = (0..sc.horizon).flat_map(|t| plan.surges_at(t)).collect();
        assert!(!surges.is_empty());
        for r in &surges {
            assert!(r.id.0 >= SURGE_ID_OFFSET);
            assert!(r.deadline < sc.horizon);
            assert_ne!(r.src, r.dst);
        }
        for r in &sc.requests {
            assert!(r.id.0 < SURGE_ID_OFFSET);
        }
    }
}
