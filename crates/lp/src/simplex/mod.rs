//! Revised simplex method with bounded variables.
//!
//! The solver works on a *computational standard form*
//!
//! ```text
//! minimize    cᵀx
//! subject to  A·x = b          (one slack column per original row)
//!             l ≤ x ≤ u
//! ```
//!
//! built from a [`crate::Model`]. Feasibility is established with a crash
//! basis (slacks where the initial residual fits the slack bounds,
//! artificial columns elsewhere) followed by a phase-1 minimization of the
//! artificial sum; phase 2 then optimizes the true objective. Dual values
//! are recovered from the final basis via BTRAN.

pub mod basis;
mod solver;

use crate::model::{Cmp, Model, Sense};
use crate::solution::{Solution, SolveError, Status};
use basis::SparseCol;

/// Entering-variable pricing strategy for the primal simplex.
///
/// Every strategy is a pure function of `(options, model)` — no clocks, no
/// randomness — so solves stay bit-identical across processes and worker
/// counts (the determinism contract of the parallel evaluation engine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Pricing {
    /// Textbook full pricing: recompute `y = c_B B⁻¹` and every nonbasic
    /// reduced cost each iteration, enter the most negative. `O(n · nnz)`
    /// per pivot; kept as the reference baseline.
    Dantzig,
    /// Incrementally maintained reduced costs (updated from the BTRAN'd
    /// pivot row after each pivot) scored by Devex reference-framework
    /// weights. Selection still considers every nonbasic column per pivot,
    /// but reads the maintained `d[j]` instead of recomputing dot products.
    Devex,
    /// Devex weights plus cyclic partial pricing: column sections are
    /// scanned in rotation to keep a shortlist of attractive candidates,
    /// so one pivot prices `O(section + candidates)` columns.
    #[default]
    PartialDevex,
}

/// Tunable solver parameters.
#[derive(Debug, Clone)]
pub struct SimplexOptions {
    /// Primal feasibility tolerance (bound violations up to this are
    /// accepted).
    pub feas_tol: f64,
    /// Reduced-cost (dual feasibility) tolerance.
    pub opt_tol: f64,
    /// Smallest acceptable pivot magnitude.
    pub pivot_tol: f64,
    /// Hard iteration cap; `0` selects an automatic limit scaled with the
    /// problem size.
    pub max_iterations: u64,
    /// Refactorize the basis after this many eta updates.
    pub refactor_every: usize,
    /// Consecutive degenerate pivots before switching to Bland's rule.
    pub bland_trigger: u32,
    /// Entering-variable pricing strategy.
    pub pricing: Pricing,
    /// Worker threads for the deterministic parallel-pricing layer: the
    /// incremental strategies' reduced-cost recompute, Devex weight
    /// refresh, and section sweeps fan out over `pretium-par`'s sectioned
    /// map when this exceeds 1. Sections are fixed and size-derived, and
    /// results reduce in section order, so any value produces bitwise the
    /// same solve as the serial path (DESIGN.md §19). `0` and `1` both run
    /// the exact serial code with no thread machinery.
    pub pricing_jobs: usize,
}

impl Default for SimplexOptions {
    fn default() -> Self {
        SimplexOptions {
            feas_tol: 1e-7,
            opt_tol: 1e-8,
            pivot_tol: 1e-9,
            max_iterations: 0,
            refactor_every: basis::DEFAULT_MAX_ETAS,
            bland_trigger: 1000,
            pricing: Pricing::default(),
            pricing_jobs: 1,
        }
    }
}

/// Standard-form problem fed to the iteration core.
pub(crate) struct Problem {
    /// Number of rows (= equality constraints after slack insertion).
    pub m: usize,
    /// Total number of columns: structurals, slacks, artificials.
    pub n: usize,
    pub nstruct: usize,
    /// Index of the first slack column.
    pub slack_start: usize,
    /// Index of the first artificial column.
    pub art_start: usize,
    /// Sparse columns of `A`.
    pub cols: Vec<SparseCol>,
    pub lb: Vec<f64>,
    pub ub: Vec<f64>,
    /// Phase-2 costs, already converted to minimization sense.
    pub cost: Vec<f64>,
    pub b: Vec<f64>,
}

impl Problem {
    /// Build the standard form from a model.
    pub fn from_model(model: &Model) -> Self {
        let m = model.rows.len();
        let nstruct = model.vars.len();
        let slack_start = nstruct;
        let art_start = nstruct + m;
        let n = nstruct + 2 * m;

        let mut cols: Vec<SparseCol> = vec![Vec::new(); n];
        for (i, row) in model.rows.iter().enumerate() {
            for &(j, coef) in &row.terms {
                cols[j as usize].push((i as u32, coef));
            }
        }
        let mut lb = Vec::with_capacity(n);
        let mut ub = Vec::with_capacity(n);
        let mut cost = vec![0.0; n];
        let sign = match model.sense {
            Sense::Minimize => 1.0,
            Sense::Maximize => -1.0,
        };
        for (j, v) in model.vars.iter().enumerate() {
            lb.push(v.lb);
            ub.push(v.ub);
            cost[j] = sign * v.obj;
        }
        let mut b = Vec::with_capacity(m);
        for (i, row) in model.rows.iter().enumerate() {
            b.push(row.rhs);
            // Slack column: row + slack = rhs.
            cols[slack_start + i].push((i as u32, 1.0));
            let (slb, sub) = match row.cmp {
                Cmp::Le => (0.0, f64::INFINITY),
                Cmp::Ge => (f64::NEG_INFINITY, 0.0),
                Cmp::Eq => (0.0, 0.0),
            };
            lb.push(slb);
            ub.push(sub);
        }
        // Artificial columns: sign fixed at crash time by the solver.
        for i in 0..m {
            cols[art_start + i].push((i as u32, 1.0));
            lb.push(0.0);
            ub.push(0.0); // opened to [0, inf) only for rows that need one
        }
        debug_assert_eq!(lb.len(), n);
        Problem { m, n, nstruct, slack_start, art_start, cols, lb, ub, cost, b }
    }
}

/// Append-stable identifier of a basic column.
///
/// Internal column indices shift when variables are appended (every slack
/// and artificial moves up), so a saved basis keyed by raw indices would go
/// stale. Keys name the column by class instead: structural variables by
/// their [`crate::Var`] index, slacks and artificials by their row. The
/// artificial's crash-time sign is recorded so its column can be
/// reconstructed exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BasisKey {
    Struct(u32),
    Slack(u32),
    Art { row: u32, neg: bool },
}

/// A basis snapshot taken after a successful solve, in append-stable form.
#[derive(Debug, Clone)]
pub(crate) struct WarmBasis {
    /// Basic column per row position (`keys.len()` = rows at snapshot time).
    pub keys: Vec<BasisKey>,
    /// Rest state per structural variable at snapshot time.
    pub nb_struct: Vec<solver::NbState>,
    /// Rest state per slack at snapshot time.
    pub nb_slack: Vec<solver::NbState>,
}

/// How a session solve restarted the simplex method.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Restart {
    /// Fresh crash basis and both phases.
    Cold,
    /// Previous basis was still primal feasible; primal phase 2 only.
    WarmPrimal,
    /// Previous basis was dual feasible; dual simplex repaired primal
    /// feasibility, then a primal polish finished.
    WarmDual,
}

fn name_fns(model: &Model) -> (impl Fn(usize) -> String + '_, impl Fn(usize) -> String + '_) {
    (
        move |i: usize| model.rows[i].name.clone(),
        move |j: usize| {
            if j < model.vars.len() {
                model.vars[j].name.clone()
            } else {
                format!("slack_{}", j - model.vars.len())
            }
        },
    )
}

/// Map a solved outcome back to the model's sense and handles.
fn finish_solution(model: &Model, problem: &Problem, outcome: &solver::Outcome) -> Solution {
    let sign = match model.sense {
        Sense::Minimize => 1.0,
        Sense::Maximize => -1.0,
    };
    let values: Vec<f64> = outcome.x[..model.vars.len()].to_vec();
    let objective: f64 = model.vars.iter().enumerate().map(|(j, v)| v.obj * values[j]).sum::<f64>()
        + model.obj_offset;
    let duals: Vec<f64> = outcome.y.iter().map(|&y| sign * y).collect();
    let reduced_costs: Vec<f64> =
        (0..model.vars.len()).map(|j| sign * outcome.reduced_cost(problem, j)).collect();
    Solution {
        status: Status::Optimal,
        objective,
        values,
        duals,
        reduced_costs,
        iterations: outcome.iterations,
        pricing_scans: outcome.pricing_scans,
        bland_pivots: outcome.bland_pivots,
        pricing_par_sections: outcome.pricing_par_sections,
        pricing_par_steals: outcome.pricing_par_steals,
        pricing_serial_nanos: outcome.pricing_serial_nanos,
        pricing_par_nanos: outcome.pricing_par_nanos,
        factor_stats: outcome.factor_stats,
    }
}

/// Snapshot the terminal basis of `outcome` in append-stable key form.
fn snapshot(problem: &Problem, outcome: &solver::Outcome) -> WarmBasis {
    let keys = outcome
        .basis
        .iter()
        .map(|&j| {
            if j < problem.nstruct {
                BasisKey::Struct(j as u32)
            } else if j < problem.art_start {
                BasisKey::Slack((j - problem.slack_start) as u32)
            } else {
                let neg = problem.cols[j].first().is_some_and(|&(_, v)| v < 0.0);
                BasisKey::Art { row: (j - problem.art_start) as u32, neg }
            }
        })
        .collect();
    WarmBasis {
        keys,
        nb_struct: outcome.nb[..problem.nstruct].to_vec(),
        nb_slack: outcome.nb[problem.slack_start..problem.art_start].to_vec(),
    }
}

/// Resolve a saved [`WarmBasis`] against the current problem dimensions:
/// remap keys to column indices, seat the slacks of rows appended since the
/// snapshot, restore artificial column signs, and build the full rest-state
/// vector. Returns `None` when the snapshot cannot apply (shrunken model,
/// out-of-range keys).
fn resolve_warm(
    problem: &mut Problem,
    warm: &WarmBasis,
) -> Option<(Vec<usize>, Vec<solver::NbState>)> {
    use solver::NbState;
    let m = problem.m;
    if warm.keys.len() > m || warm.nb_struct.len() > problem.nstruct || warm.nb_slack.len() > m {
        return None;
    }
    let mut basis = Vec::with_capacity(m);
    for key in &warm.keys {
        let idx = match *key {
            BasisKey::Struct(j) if (j as usize) < problem.nstruct => j as usize,
            BasisKey::Slack(i) if (i as usize) < m => problem.slack_start + i as usize,
            BasisKey::Art { row, neg } if (row as usize) < m => {
                let j = problem.art_start + row as usize;
                problem.cols[j] = vec![(row, if neg { -1.0 } else { 1.0 })];
                j
            }
            _ => return None,
        };
        basis.push(idx);
    }
    // Rows appended since the snapshot get their own slack as the basic
    // column (the standard cutting-plane extension: duals of the old rows
    // are unchanged, so dual feasibility survives).
    for i in warm.keys.len()..m {
        basis.push(problem.slack_start + i);
    }
    let mut nb = vec![NbState::Lower; problem.n];
    for (j, &s) in warm.nb_struct.iter().enumerate() {
        nb[j] = s;
    }
    for (i, &s) in warm.nb_slack.iter().enumerate() {
        nb[problem.slack_start + i] = s;
    }
    // New structurals / slacks keep the Lower default; `run_warm` normalizes
    // every rest state against the actual bounds before solving.
    Some((basis, nb))
}

/// Solve `model`, optionally warm-starting from a saved basis.
///
/// The warm path classifies the restored basis (primal feasible → primal
/// phase 2; dual feasible → dual simplex + polish) and falls back to a cold
/// solve on any warm failure, so the result is always the authoritative
/// optimum. Returns the solution, a snapshot of the terminal basis for the
/// next call, and which restart actually ran.
pub(crate) fn solve_model_session(
    model: &Model,
    options: &SimplexOptions,
    warm: Option<&WarmBasis>,
) -> Result<(Solution, WarmBasis, Restart), SolveError> {
    // Row-major mirror of the structural matrix. The model's own row
    // storage *is* the mirror — `RowData.terms` holds each row's
    // `(column, coefficient)` terms sorted by column, grown incrementally
    // by `add_row`/`add_term`/`append_with` — so the solver borrows
    // per-row slice views instead of duplicating the matrix. Slack and
    // artificial entries are implicit singletons handled by the solver.
    let row_terms: Vec<&[(u32, f64)]> = model.rows.iter().map(|r| r.terms.as_slice()).collect();
    if let Some(w) = warm {
        let mut problem = Problem::from_model(model);
        if let Some((basis, nb)) = resolve_warm(&mut problem, w) {
            let (rows, vars) = name_fns(model);
            if let Ok((outcome, used_dual)) =
                solver::run_warm(&mut problem, &row_terms, options, basis, nb, rows, vars)
            {
                let solution = finish_solution(model, &problem, &outcome);
                let basis = snapshot(&problem, &outcome);
                let restart = if used_dual { Restart::WarmDual } else { Restart::WarmPrimal };
                return Ok((solution, basis, restart));
            }
        }
        // Fall through to a cold solve: correctness never depends on the
        // warm path succeeding.
    }
    let attempt = |options: &SimplexOptions| -> Result<(solver::Outcome, Problem), SolveError> {
        let mut problem = Problem::from_model(model);
        let (rows, vars) = name_fns(model);
        let out = solver::run(&mut problem, &row_terms, options, rows, vars)?;
        Ok((out, problem))
    };
    let (outcome, problem) = match attempt(options) {
        Ok(s) => s,
        Err(SolveError::Numerical(_)) => {
            let conservative = SimplexOptions {
                pivot_tol: options.pivot_tol.max(1e-8),
                refactor_every: 32,
                bland_trigger: 0,
                ..options.clone()
            };
            attempt(&conservative)?
        }
        Err(e) => return Err(e),
    };
    let solution = finish_solution(model, &problem, &outcome);
    let basis = snapshot(&problem, &outcome);
    Ok((solution, basis, Restart::Cold))
}

/// Solve `model` and map the internal result back to the model's sense and
/// row/variable handles.
///
/// A numerical failure (singular refactorization after eta-file drift on a
/// heavily degenerate basis) triggers one conservative retry: larger pivot
/// tolerance, more frequent refactorization, and Bland's rule throughout.
pub(crate) fn solve_model(model: &Model, options: &SimplexOptions) -> Result<Solution, SolveError> {
    solve_model_session(model, options, None).map(|(sol, _, _)| sol)
}
