//! The Pretium system façade: request admission, schedule adjustment, and
//! price computation wired around the shared [`NetworkState`] (Figure 3).
//!
//! Module timescales (§4): the RA answers *every request arrival* with a
//! menu built from current prices; SAM re-optimizes the full plan *every
//! timestep*; the PC recomputes prices *once per window* from the duals of
//! an offline solve over recent history.

use crate::admission::{AdmissionSnapshot, Sequencer, SnapshotStats};
use crate::audit::{AuditContext, AuditPoint, Auditor};
use crate::config::{IncrementalSam, PretiumConfig, ReferenceWindow};
use crate::contract::{Contract, ContractId, RequestParams};
use crate::degradation::{DegradationKind, DegradationPolicy, ViolationLedger};
use crate::menu::{build_menu, PriceMenu};
use crate::schedule::{self, Job, ScheduleProblem, ScheduleSession};
use crate::state::NetworkState;
use crate::telemetry::Telemetry;
use pretium_lp::{SessionStats, SimplexOptions, SolveError, SolveOptions, SolverTuning};
use pretium_net::{EdgeId, Network, Path, SharedPathSet, TimeGrid, Timestep, UsageTracker};
use rand::{DetHashMap as HashMap, DetHashSet as HashSet};
use std::sync::Arc;
use std::time::Instant;

/// The scheduling LP SAM keeps alive between timesteps of one billing
/// window: successive `run_sam` calls advance it (fix executed flows,
/// refresh capacities, append newly accepted contracts) and re-solve warm
/// from the previous basis instead of rebuilding the LP from scratch.
struct SamCarry {
    sess: ScheduleSession,
    /// Contract index of each job slot (insertion order of the session).
    contract_of_job: Vec<usize>,
    /// Membership index over `contract_of_job` — the per-timestep
    /// append loop probes every active contract, so a linear scan here
    /// would make carry maintenance O(n²) in contract count.
    members: HashSet<usize>,
    /// Billing window the session was built in (rebuilt at boundaries, when
    /// realized usage rolls into the cost proxy's past constants).
    window: usize,
}

impl SamCarry {
    fn new(sess: ScheduleSession, contract_of_job: Vec<usize>, window: usize) -> Self {
        let members = contract_of_job.iter().copied().collect();
        SamCarry { sess, contract_of_job, members, window }
    }

    fn has_contract(&self, i: usize) -> bool {
        self.members.contains(&i)
    }

    fn push_contract(&mut self, i: usize) {
        self.contract_of_job.push(i);
        self.members.insert(i);
    }
}

/// A running Pretium instance.
pub struct Pretium {
    net: Arc<Network>,
    grid: TimeGrid,
    horizon: usize,
    cfg: PretiumConfig,
    state: NetworkState,
    /// Shared with every published [`AdmissionSnapshot`], so concurrent
    /// quote workers and the live system fill one cache.
    path_cache: Arc<SharedPathSet>,
    /// Epoch of the current quote-relevant state; bumped on every mutation
    /// a menu could observe (reservations, prices, health, set-asides).
    epoch: u64,
    /// The snapshot published for the current epoch, if any — reused by
    /// [`Pretium::snapshot`] until the next mutation retires it.
    published: Option<Arc<AdmissionSnapshot>>,
    /// Quote counters recorded on retired snapshots *after* their drain
    /// (pool workers can hold a superseded snapshot's `Arc` and keep
    /// quoting); each snapshot empties into this sink on `Drop`, and the
    /// sink flushes into [`Telemetry`] at every epoch bump.
    pending_quotes: Arc<SnapshotStats>,
    contracts: Vec<Contract>,
    /// Admissible route set per contract (parallel to `contracts`).
    contract_paths: Vec<Vec<Path>>,
    /// Number of completed price recomputations.
    pc_runs: u32,
    /// Live SAM session, if one is being carried across timesteps.
    sam: Option<SamCarry>,
    /// LP restart counters accumulated from retired sessions and PC solves
    /// (use [`Pretium::lp_stats`], which folds in the live session).
    lp_stats: SessionStats,
    /// Per-edge price floor (indexed by edge), cached at construction.
    floors: Vec<f64>,
    /// Per-module counters and timings.
    telemetry: Telemetry,
    /// Invariant auditor — `Some` in debug/test builds and when
    /// [`PretiumConfig::audit`] is set.
    audit: Option<Auditor>,
    /// Penalty record of every guarantee waived under §4.4 degradation.
    ledger: ViolationLedger,
    /// Billing windows during which some link was degraded; the PC
    /// refuses to learn prices from them (frozen-price fallback, §4.4).
    fault_windows: HashSet<usize>,
    /// Simplex iteration cap injected by the solver-pressure fault; SAM
    /// keeps its previous plan when a solve hits it.
    solver_pressure: Option<u64>,
    /// Edges whose capacity changed since the last successful SAM run
    /// (fault injections and recoveries report them). `None` means the
    /// change scope is unknown — the next SAM step must re-solve the full
    /// LP before localized re-optimization can resume (DESIGN.md §16).
    sam_touched: Option<HashSet<EdgeId>>,
    /// Consecutive SAM steps since the last full re-solve — the drift
    /// guard compares this against [`PretiumConfig::sam_full_every`].
    sam_since_full: usize,
}

impl Pretium {
    /// Create an instance over `net` for `horizon` timesteps. Initial
    /// prices are the per-edge floors scaled by
    /// `cfg.initial_price_scale` (cold start; see DESIGN.md §8).
    pub fn new(net: Network, grid: TimeGrid, horizon: usize, cfg: PretiumConfig) -> Self {
        assert!(horizon > 0);
        let initial: Vec<f64> =
            net.edge_ids().map(|e| initial_price(&net, &grid, &cfg, e)).collect();
        let state = NetworkState::new(&net, grid, horizon, cfg.highpri_fraction, cfg.bump, |e| {
            initial[e.index()]
        });
        let path_cache = Arc::new(SharedPathSet::new(cfg.k_paths));
        let floors: Vec<f64> = net.edge_ids().map(|e| price_floor(&net, &grid, &cfg, e)).collect();
        let audit = (cfg.audit || cfg!(debug_assertions)).then(Auditor::new);
        Pretium {
            net: Arc::new(net),
            grid,
            horizon,
            cfg,
            state,
            path_cache,
            epoch: 0,
            published: None,
            pending_quotes: Arc::new(SnapshotStats::default()),
            contracts: Vec::new(),
            contract_paths: Vec::new(),
            pc_runs: 0,
            sam: None,
            lp_stats: SessionStats::default(),
            floors,
            telemetry: Telemetry::default(),
            audit,
            ledger: ViolationLedger::new(),
            fault_windows: HashSet::default(),
            solver_pressure: None,
            sam_touched: None,
            sam_since_full: 0,
        }
    }

    pub fn network(&self) -> &Network {
        &self.net
    }

    pub fn state(&self) -> &NetworkState {
        &self.state
    }

    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// Epoch of the current quote-relevant state. Bumped on every mutation
    /// a menu could observe: an accept's reservations, SAM's re-planning,
    /// PC price updates, capacity faults and recoveries, manual price
    /// overrides.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Publish (or reuse) the admission snapshot for the current epoch: an
    /// immutable view any number of RA workers can [`AdmissionSnapshot::quote`]
    /// against concurrently. Consecutive calls between mutations return
    /// the same `Arc` — publication is amortized to one state clone per
    /// epoch.
    pub fn snapshot(&mut self) -> Arc<AdmissionSnapshot> {
        if let Some(s) = &self.published {
            return Arc::clone(s);
        }
        let snap = Arc::new(AdmissionSnapshot::new(
            self.epoch,
            self.horizon,
            Arc::clone(&self.net),
            self.state.clone(),
            Arc::clone(&self.path_cache),
            Arc::clone(&self.pending_quotes),
        ));
        self.telemetry.snapshots += 1;
        self.published = Some(Arc::clone(&snap));
        snap
    }

    /// Retire the published snapshot (folding its quote telemetry in) and
    /// advance the epoch. Every quote-relevant mutation goes through here.
    fn bump_epoch(&mut self) {
        if let Some(snap) = self.published.take() {
            snap.stats.drain_into(&mut self.telemetry);
        }
        self.pending_quotes.drain_into(&mut self.telemetry);
        self.epoch += 1;
    }

    /// Fold a snapshot's atomic quote counters into this system's
    /// telemetry. Idempotent; retiring a snapshot drains it automatically,
    /// so this is only needed for counters accrued after the last mutation
    /// (e.g. the final batch of a run). Also flushes the pending sink of
    /// counters that landed on already-retired snapshots.
    pub fn absorb_quotes(&mut self, snap: &AdmissionSnapshot) {
        snap.stats.drain_into(&mut self.telemetry);
        self.pending_quotes.drain_into(&mut self.telemetry);
    }

    /// One-shot admission through the snapshot/sequencer path: publish (or
    /// reuse) a snapshot, quote `params`, let `respond` choose the
    /// purchase off the menu, and sequence the accept. Returns the quoted
    /// menu alongside the booking result.
    ///
    /// This is the migration surface for callers of the removed
    /// `quote(&mut self)` + `accept` pair; batch admission should publish
    /// one snapshot and fan quotes out instead (see `pretium-sim`'s
    /// runner).
    pub fn admit_one(
        &mut self,
        params: &RequestParams,
        respond: impl FnOnce(&PriceMenu) -> f64,
    ) -> (PriceMenu, Option<ContractId>) {
        let snap = self.snapshot();
        let ticket = snap.ticket(params);
        self.absorb_quotes(&snap);
        let mut seq = Sequencer::new(self);
        let id = seq.admit(&ticket, respond);
        (ticket.menu, id)
    }

    /// The admissible route set for `(src, dst)` from the shared path
    /// cache (computed on first access).
    pub fn paths_for(&self, src: pretium_net::NodeId, dst: pretium_net::NodeId) -> Arc<Vec<Path>> {
        self.path_cache.paths(&self.net, src, dst)
    }

    /// The admissible route set contract `id` was booked with.
    pub fn routes(&self, id: ContractId) -> &[Path] {
        &self.contract_paths[id.0]
    }

    pub fn config(&self) -> &PretiumConfig {
        &self.cfg
    }

    pub fn contracts(&self) -> &[Contract] {
        &self.contracts
    }

    pub fn contract(&self, id: ContractId) -> &Contract {
        &self.contracts[id.0]
    }

    pub fn pc_runs(&self) -> u32 {
        self.pc_runs
    }

    /// Per-module counters and wall-clock timings.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The invariant auditor, when auditing is enabled (always in
    /// debug/test builds, via [`PretiumConfig::audit`] in release).
    pub fn auditor(&self) -> Option<&Auditor> {
        self.audit.as_ref()
    }

    /// The degradation ledger: every guarantee waived under §4.4, with its
    /// booked penalty, in waiver order.
    pub fn ledger(&self) -> &ViolationLedger {
        &self.ledger
    }

    /// Cap (or uncap, with `None`) the simplex iterations of SAM's solves
    /// — the solver-pressure fault of §4.4. A capped solve that runs out
    /// keeps the previous feasible plan instead of failing the run.
    pub fn set_solver_pressure(&mut self, limit: Option<u64>) {
        self.solver_pressure = limit;
    }

    /// Whether billing window `w` was contaminated by a fault (the PC
    /// freezes prices rather than learn from such windows).
    pub fn window_contaminated(&self, w: usize) -> bool {
        self.fault_windows.contains(&w)
    }

    /// Solve options carrying the configured pricing strategy (PC and any
    /// other uncapped LP).
    fn pricing_opts(&self) -> SolveOptions {
        SolveOptions {
            simplex: Some(SimplexOptions {
                pricing: self.cfg.pricing,
                ..SimplexOptions::default()
            }),
            tuning: SolverTuning {
                max_etas: self.cfg.max_etas,
                pricing_jobs: self.cfg.pricing_jobs,
                ..SolverTuning::default()
            },
            ..SolveOptions::default()
        }
    }

    /// SAM's solve options: the pricing strategy plus, when the
    /// solver-pressure fault is injected, the iteration cap.
    fn sam_opts(&self) -> SolveOptions {
        let mut o = self.pricing_opts();
        if let Some(limit) = self.solver_pressure {
            o.simplex.as_mut().expect("pricing_opts sets simplex").max_iterations = limit;
        }
        o
    }

    /// Sweep every invariant now and record violations. Runs after each
    /// module checkpoint; also callable directly (e.g. right after
    /// [`Pretium::inject_capacity_loss`], before SAM has replanned).
    pub fn run_audit(&mut self, point: AuditPoint, now: Timestep) {
        let Some(aud) = self.audit.as_mut() else { return };
        let t0 = Instant::now();
        let cx = AuditContext {
            net: &self.net,
            state: &self.state,
            contracts: &self.contracts,
            contract_paths: &self.contract_paths,
            floors: &self.floors,
            pc_has_run: self.pc_runs > 0,
            ledger: Some(&self.ledger),
            now,
        };
        let new = aud.check(point, &cx);
        self.telemetry.audit_violations += new;
        self.telemetry.audit.record(t0.elapsed());
    }

    /// LP restart counters across everything this instance solved: all SAM
    /// sessions (live and retired) plus the PC's offline solves. The warm
    /// fraction is the headline number — it is the share of LP solves that
    /// reused a previous basis instead of starting cold.
    pub fn lp_stats(&self) -> SessionStats {
        let mut s = self.lp_stats;
        if let Some(carry) = &self.sam {
            s.merge(carry.sess.lp_stats());
        }
        s
    }

    /// RA, step 1 against *live* state: the [`Sequencer`]'s re-quote for
    /// tickets whose snapshot menu went stale mid-batch. Records timing
    /// and the empty count symmetrically on every path, plus the requote
    /// counter. External quoting goes through [`Pretium::snapshot`].
    pub(crate) fn requote(&mut self, params: &RequestParams) -> PriceMenu {
        let t0 = Instant::now();
        let paths = self.path_cache.paths(&self.net, params.src, params.dst);
        let menu = if paths.is_empty() {
            PriceMenu::default()
        } else {
            build_menu(&self.state, &paths, params.start, params.deadline.min(self.horizon - 1))
        };
        if menu.is_empty() {
            self.telemetry.quotes_empty += 1;
        }
        self.telemetry.quotes_requoted += 1;
        self.telemetry.quote.record(t0.elapsed());
        menu
    }

    /// RA, step 2: the customer accepts `units` off the quoted menu. The
    /// preliminary schedule (the menu's cheapest slots) is reserved, the
    /// payment `p(units)` is locked in, and the marginal price becomes the
    /// contract's value proxy `λ`.
    ///
    /// Returns `None` when `units` is zero/negative (customer walked
    /// away), no route exists, or the menu cannot back a single unit — an
    /// empty menu has no finite price for any quantity, so booking it
    /// would record `payment = λ = ∞` and poison every downstream sum.
    pub fn accept(
        &mut self,
        params: &RequestParams,
        menu: &PriceMenu,
        units: f64,
    ) -> Option<ContractId> {
        let t0 = Instant::now();
        if units <= 1e-9 || menu.capacity_bound() <= 1e-9 {
            self.telemetry.accepts_rejected += 1;
            self.telemetry.accept.record(t0.elapsed());
            return None;
        }
        let paths: Vec<Path> = (*self.path_cache.paths(&self.net, params.src, params.dst)).clone();
        if paths.is_empty() {
            self.telemetry.accepts_rejected += 1;
            self.telemetry.accept.record(t0.elapsed());
            return None;
        }
        let guaranteed = units.min(menu.capacity_bound());
        let allocs = menu.allocations_for(guaranteed);
        let mut plan = Vec::with_capacity(allocs.len());
        for a in &allocs {
            // The menu was built against this very state, so the
            // reservation fits up to float noise; clamp to what the path's
            // tightest link can still carry and plan exactly that amount —
            // planning the unclamped units would let `execute_step` bill
            // usage the links never set aside.
            let room = paths[a.path_idx]
                .edges()
                .iter()
                .map(|&e| self.state.available(e, a.t))
                .fold(f64::INFINITY, f64::min);
            let take = a.units.min(room);
            debug_assert!((take - a.units).abs() < 1e-6 * (1.0 + a.units));
            if take <= 1e-12 {
                continue;
            }
            for &e in paths[a.path_idx].edges() {
                self.state.reserve(e, a.t, take);
            }
            plan.push((a.path_idx, a.t, take));
        }
        let payment = menu.price(units);
        let lambda = menu.marginal((units - 1e-9).max(0.0));
        debug_assert!(payment.is_finite(), "non-empty menu priced {units} units at {payment}");
        debug_assert!(lambda.is_finite(), "non-empty menu has non-finite marginal {lambda}");
        let id = ContractId(self.contracts.len());
        self.contracts.push(Contract {
            params: params.clone(),
            purchased: units,
            guaranteed,
            payment,
            lambda,
            delivered: 0.0,
            waived: 0.0,
            plan,
        });
        self.contract_paths.push(paths);
        self.bump_epoch();
        self.telemetry.accepts_admitted += 1;
        self.telemetry.accept.record(t0.elapsed());
        self.run_audit(AuditPoint::Accept, params.arrival);
        Some(id)
    }

    /// SAM (§4.2): re-optimize the plans of all active contracts from
    /// timestep `now` onward, maximizing Σ λ·X − C(X) subject to the
    /// remaining guarantees. `realized` reports usage already carried in
    /// the current billing window (for the cost proxy).
    ///
    /// Within one billing window successive calls share a live
    /// [`ScheduleSession`]: the step's mutations (executed flows frozen,
    /// capacities refreshed, newly accepted contracts appended) are applied
    /// incrementally and the LP warm-starts from the previous optimal
    /// basis. The session is rebuilt at window boundaries — where realized
    /// usage rolls into the cost proxy's past constants — and whenever a
    /// new contract's deadline stretches past the carried horizon.
    pub fn run_sam(&mut self, now: Timestep, realized: &UsageTracker) -> Result<(), SolveError> {
        if !self.cfg.sam_enabled || now >= self.horizon {
            self.telemetry.sam_skipped += 1;
            return Ok(());
        }
        let active: Vec<usize> =
            (0..self.contracts.len()).filter(|&i| self.contracts[i].active_at(now)).collect();
        if active.is_empty() {
            self.telemetry.sam_skipped += 1;
            return Ok(());
        }
        let t0 = Instant::now();
        let window = self.grid.window_of(now);
        let faulted = self.state.faulted_at(now);
        if faulted {
            // A degraded SAM step: counted as recovery time, and the
            // window is contaminated for price learning (§4.4).
            self.telemetry.degraded_steps += 1;
            self.fault_windows.insert(window);
        }
        let reusable = self.sam.as_ref().is_some_and(|c| c.window == window);
        let mut carry = if reusable {
            self.sam.take().unwrap()
        } else {
            if let Some(old) = self.sam.take() {
                self.lp_stats.merge(old.sess.lp_stats());
            }
            let jobs: Vec<Job> = active.iter().map(|&i| self.job_for(i, now)).collect();
            let state = &self.state;
            let capacity = |e: EdgeId, t: Timestep| state.sellable_capacity(e, t);
            let realized_fn = |e: EdgeId, t: Timestep| realized.at(e, t);
            // The session horizon runs to the end of the simulation, not
            // just to the latest current deadline: per-job variables are
            // bounded by deadlines anyway, and the longer horizon means a
            // later-arriving contract never forces a rebuild.
            let problem = ScheduleProblem {
                net: &self.net,
                grid: &self.grid,
                from: now,
                to: self.horizon,
                jobs: &jobs,
                capacity: &capacity,
                realized: &realized_fn,
                topk: self.cfg.topk,
                cost_scale: self.cfg.cost_scale,
            };
            // SAM alone runs the restricted master when colgen is on; PC
            // and the offline baselines always solve fully materialized.
            SamCarry::new(
                ScheduleSession::with_colgen(&problem, self.cfg.colgen),
                active.clone(),
                window,
            )
        };
        // Freeze the steps executed since the last run, then append
        // contracts accepted in the meantime (with their remaining
        // amounts — anything they already moved under their preliminary
        // schedule is delivered, and its usage feeds the cost proxy).
        carry.sess.advance_to(now);
        for &i in &active {
            if !carry.has_contract(i) {
                let slot = carry.sess.add_job(self.job_for(i, now));
                let executed: Vec<(usize, Timestep, f64)> =
                    self.contracts[i].plan.iter().filter(|&&(_, t, _)| t < now).copied().collect();
                carry.sess.record_executed(slot, &executed);
                carry.push_contract(i);
            }
        }
        // Configured pricing strategy, plus the solver-pressure iteration
        // cap when that fault (§4.4) is injected.
        let opts = self.sam_opts();
        let lp_before = carry.sess.lp_stats();
        const SHORT_TOL: f64 = 1e-6;
        // Localized re-optimization (DESIGN.md §16): when the changes since
        // the last run are known to be a few accepts plus a reported
        // touched-edge set, freeze every untouched job block and re-solve
        // only the affected blocks — gated by the drift guard, which forces
        // a full re-solve every `sam_full_every` steps regardless.
        let use_localized = reusable
            && self.cfg.incremental_sam != IncrementalSam::Off
            && self.sam_touched.is_some()
            && (self.cfg.sam_full_every == 0 || self.sam_since_full < self.cfg.sam_full_every);
        // `local_path`: None = full solve, Some(false) = certified
        // localized, Some(true) = localized attempt that fell back to full.
        let (result, local_path) = {
            let state = &self.state;
            let capacity = |e: EdgeId, t: Timestep| state.sellable_capacity(e, t);
            let realized_fn = |e: EdgeId, t: Timestep| realized.at(e, t);
            if use_localized {
                let touched = self.sam_touched.as_ref().expect("gated on is_some");
                let tol = self.cfg.incremental_sam.tol();
                match carry.sess.solve_step_localized(
                    &self.net,
                    &capacity,
                    &realized_fn,
                    touched,
                    tol,
                    &opts,
                ) {
                    Ok(loc) if !loc.used_full && loc.solution.max_shortfall() <= SHORT_TOL => {
                        (Ok(loc.solution), Some(false))
                    }
                    Ok(loc) if loc.used_full => (Ok(loc.solution), Some(true)),
                    // A certified localized plan reporting a shortfall:
                    // re-solve the full LP for the authoritative optimum
                    // before any guarantee is waived (§4.4).
                    Ok(_) => (
                        carry.sess.solve_step_with(&self.net, &capacity, &realized_fn, &opts),
                        Some(true),
                    ),
                    Err(e) => (Err(e), None),
                }
            } else {
                (carry.sess.solve_step_with(&self.net, &capacity, &realized_fn, &opts), None)
            }
        };
        let mut sol = match result {
            Ok(sol) => sol,
            Err(err) => {
                // Retire the failed session (keeping its counters); the
                // next SAM run rebuilds from scratch.
                self.lp_stats.merge(carry.sess.lp_stats());
                self.sam_touched = None;
                if matches!(err, SolveError::IterationLimit { .. })
                    && self.solver_pressure.is_some()
                {
                    // Degraded compute, not a bug: keep the previous plans
                    // and reservations (stale but feasible) and move on.
                    self.telemetry.sam_degradations += 1;
                    self.telemetry.sam.record(t0.elapsed());
                    return Ok(());
                }
                return Err(err);
            }
        };
        match local_path {
            Some(false) => {
                self.telemetry.sam_localized += 1;
                self.sam_since_full += 1;
            }
            Some(true) => {
                self.telemetry.sam_localized_fallbacks += 1;
                self.sam_since_full = 0;
            }
            None => self.sam_since_full = 0,
        }
        if sol.max_shortfall() > SHORT_TOL {
            self.telemetry.sam_shortfalls += 1;
        }
        // Fallback chain (§4.4): the guarantee LP is uncoverable — even
        // with rerouting, the degraded capacities cannot serve every
        // admitted guarantee. Shed the lowest-λ short contract wholly
        // while several are short; when one remains, relax it by exactly
        // its shortfall. Every waiver books a λ·units penalty in the
        // ledger and lowers the LP's guarantee row, so the re-solve
        // (warm, RHS-only) redistributes capacity to the survivors.
        if sol.max_shortfall() > SHORT_TOL
            && self.cfg.degradation == DegradationPolicy::ShedThenRelax
        {
            self.telemetry.sam_degradations += 1;
            let mut handled: HashSet<usize> = HashSet::default();
            loop {
                let short: Vec<(usize, f64)> = sol
                    .shortfall
                    .iter()
                    .enumerate()
                    .filter(|&(j, &s)| s > SHORT_TOL && !handled.contains(&j))
                    .map(|(j, &s)| (j, s))
                    .collect();
                if short.is_empty() {
                    break;
                }
                let (j, units, kind) = if short.len() > 1 {
                    let &(j, _) = short
                        .iter()
                        .min_by(|a, b| {
                            let la = self.contracts[carry.contract_of_job[a.0]].lambda;
                            let lb = self.contracts[carry.contract_of_job[b.0]].lambda;
                            la.partial_cmp(&lb).unwrap().then(a.0.cmp(&b.0))
                        })
                        .unwrap();
                    let i = carry.contract_of_job[j];
                    (j, self.contracts[i].guarantee_remaining(), DegradationKind::Shed)
                } else {
                    let (j, s) = short[0];
                    let i = carry.contract_of_job[j];
                    (j, s.min(self.contracts[i].guarantee_remaining()), DegradationKind::Relaxed)
                };
                handled.insert(j);
                let waived = carry.sess.relax_guarantee(j, units);
                if waived <= 0.0 {
                    continue;
                }
                let i = carry.contract_of_job[j];
                self.contracts[i].waived += waived;
                let penalty = self.contracts[i].lambda * waived;
                self.ledger.record(ContractId(i), now, kind, waived, penalty);
                match kind {
                    DegradationKind::Shed => self.telemetry.guarantees_shed += 1,
                    DegradationKind::Relaxed => self.telemetry.guarantees_relaxed += 1,
                }
                let resolved = {
                    let state = &self.state;
                    let capacity = |e: EdgeId, t: Timestep| state.sellable_capacity(e, t);
                    let realized_fn = |e: EdgeId, t: Timestep| realized.at(e, t);
                    carry.sess.solve_step_with(&self.net, &capacity, &realized_fn, &opts)
                };
                sol = match resolved {
                    Ok(s) => s,
                    Err(err) => {
                        self.lp_stats.merge(carry.sess.lp_stats());
                        self.sam_touched = None;
                        if matches!(err, SolveError::IterationLimit { .. })
                            && self.solver_pressure.is_some()
                        {
                            self.telemetry.sam.record(t0.elapsed());
                            return Ok(());
                        }
                        return Err(err);
                    }
                };
            }
        }
        // Plan snapshot for the rerouted-units metric (§4.4): how much
        // previously planned volume had to move off its (path, step) slot.
        let old_plans: Vec<Vec<(usize, Timestep, f64)>> = if faulted {
            carry
                .contract_of_job
                .iter()
                .map(|&i| {
                    self.contracts[i].plan.iter().filter(|&&(_, t, _)| t >= now).copied().collect()
                })
                .collect()
        } else {
            Vec::new()
        };
        // Install the new plans. The extraction excludes frozen past
        // steps, so plans contain only future flows; session jobs beyond
        // the active set (contracts that completed mid-window) simply get
        // empty plans. The LP respects capacities up to its own tolerance,
        // so the clamp against the path's tightest remaining availability
        // only shaves float noise — but whatever is shaved must also be
        // shaved from the plan, or `execute_step` bills flow the links
        // never carried.
        self.bump_epoch();
        self.state.clear_reservations_from(now);
        for (j, &i) in carry.contract_of_job.iter().enumerate() {
            let mut plan = Vec::with_capacity(sol.flows[j].len());
            for &(pi, t, units) in &sol.flows[j] {
                let path = &self.contract_paths[i][pi];
                let room = path
                    .edges()
                    .iter()
                    .map(|&e| self.state.available(e, t))
                    .fold(f64::INFINITY, f64::min);
                let take = units.min(room);
                if take <= 1e-12 {
                    continue;
                }
                for &e in path.edges() {
                    self.state.reserve(e, t, take);
                }
                plan.push((pi, t, take));
            }
            self.contracts[i].plan = plan;
        }
        if faulted {
            let mut moved = 0.0;
            for (j, &i) in carry.contract_of_job.iter().enumerate() {
                let mut slots: HashMap<(usize, Timestep), f64> = HashMap::default();
                for &(pi, t, u) in &old_plans[j] {
                    *slots.entry((pi, t)).or_insert(0.0) += u;
                }
                for &(pi, t, u) in &self.contracts[i].plan {
                    if let Some(v) = slots.get_mut(&(pi, t)) {
                        *v -= u;
                    }
                }
                moved += slots.values().map(|v| v.max(0.0)).sum::<f64>();
            }
            self.telemetry.rerouted_units += moved;
        }
        let lp_after = carry.sess.lp_stats();
        self.telemetry.lp_iterations += lp_after.iterations - lp_before.iterations;
        self.telemetry.lp_pricing_scans += lp_after.pricing_scans - lp_before.pricing_scans;
        self.telemetry.lp_columns_generated +=
            lp_after.columns_generated - lp_before.columns_generated;
        self.telemetry.lp_colgen_rounds += lp_after.colgen_rounds - lp_before.colgen_rounds;
        self.telemetry.lp_refactors += lp_after.refactors - lp_before.refactors;
        self.telemetry.lp_ft_updates += lp_after.ft_updates - lp_before.ft_updates;
        self.telemetry.lp_pivot_rejections +=
            lp_after.pivot_rejections - lp_before.pivot_rejections;
        self.telemetry.lp_basis_nnz += lp_after.basis_nnz - lp_before.basis_nnz;
        self.telemetry.lp_factor_nnz += lp_after.factor_nnz - lp_before.factor_nnz;
        self.telemetry.lp_pricing_par_sections +=
            lp_after.pricing_par_sections - lp_before.pricing_par_sections;
        self.telemetry.lp_pricing_par_steals +=
            lp_after.pricing_par_steals - lp_before.pricing_par_steals;
        // The installed plans now reflect every capacity change reported so
        // far; start accumulating touched edges for the next step.
        self.sam_touched = Some(HashSet::default());
        self.sam = Some(carry);
        self.telemetry.sam.record(t0.elapsed());
        self.run_audit(AuditPoint::Sam, now);
        Ok(())
    }

    /// The SAM job of contract `i` as of timestep `now`: marginal accepted
    /// price as value proxy, remaining guarantee and demand as bounds.
    fn job_for(&self, i: usize, now: Timestep) -> Job {
        let c = &self.contracts[i];
        Job::new(
            i,
            self.contract_paths[i].clone(),
            c.params.start.max(now),
            c.params.deadline,
            c.lambda,
            c.guarantee_remaining(),
            c.demand_remaining(),
        )
    }

    /// Execute the planned flows of timestep `now`: usage is recorded and
    /// contract `delivered` counters advance. Returns the total units
    /// moved.
    pub fn execute_step(&mut self, now: Timestep, usage: &mut UsageTracker) -> f64 {
        let t0 = Instant::now();
        let mut total = 0.0;
        for (i, c) in self.contracts.iter_mut().enumerate() {
            for &(pi, t, units) in &c.plan {
                if t != now {
                    continue;
                }
                for &e in self.contract_paths[i][pi].edges() {
                    usage.record(e, now, units);
                }
                c.delivered += units;
                total += units;
            }
        }
        self.telemetry.units_executed += total;
        self.telemetry.execute.record(t0.elapsed());
        if self.state.faulted_at(now) {
            self.fault_windows.insert(self.grid.window_of(now));
        }
        self.run_audit(AuditPoint::Execute, now);
        total
    }

    /// PC (§4.3): at the start of a window, solve the offline welfare LP
    /// over the look-back period and set future prices from the capacity
    /// duals of the reference window, floored at per-edge marginal cost.
    pub fn run_pc(&mut self, now: Timestep) -> Result<(), SolveError> {
        debug_assert_eq!(self.grid.step_in_window(now), 0, "PC runs at window starts");
        let w_now = self.grid.window_of(now);
        if w_now == 0 {
            return Ok(());
        }
        let t0 = Instant::now();
        let lookback = self.cfg.lookback_windows.max(1).min(w_now);
        let back = match self.cfg.reference {
            ReferenceWindow::Previous => 1,
            ReferenceWindow::WindowsBack(n) => n.max(1),
        }
        .min(w_now);
        // §4.4 frozen prices: a window in which links were degraded
        // reflects the broken topology's scarcity, not demand — duals
        // learned from it would poison future quotes. Keep the previous
        // prices until an uncontaminated window is available.
        let contaminated = (w_now - lookback..w_now)
            .chain(std::iter::once(w_now - back))
            .any(|w| self.fault_windows.contains(&w));
        if contaminated {
            self.telemetry.pc_freezes += 1;
            return Ok(());
        }
        let lb_start = self.grid.window_start(w_now - lookback);
        // Jobs: every contract whose transfer window intersects the
        // look-back period, with the marginal accepted price as its value.
        // Crucially the job carries the request's *full* demand, not just
        // the purchased amount: units a customer declined at the margin are
        // worth ≈λ, and it is exactly this excess demand that makes
        // hindsight capacity rows bind and their duals (the new prices)
        // rise on congested links — the self-correcting loop of §4.3.
        let jobs: Vec<Job> = self
            .contracts
            .iter()
            .enumerate()
            .filter(|(_, c)| c.params.start < now && c.params.deadline >= lb_start)
            .map(|(i, c)| {
                Job::new(
                    i,
                    self.contract_paths[i].clone(),
                    c.params.start.max(lb_start),
                    c.params.deadline.min(now - 1),
                    c.lambda,
                    0.0,
                    c.params.demand.max(c.purchased),
                )
            })
            .collect();
        if jobs.is_empty() {
            return Ok(());
        }
        let state = &self.state;
        let capacity = |e: EdgeId, t: Timestep| state.sellable_capacity(e, t);
        let zero = |_: EdgeId, _: Timestep| 0.0;
        let problem = ScheduleProblem {
            net: &self.net,
            grid: &self.grid,
            from: lb_start,
            to: now,
            jobs: &jobs,
            capacity: &capacity,
            realized: &zero,
            topk: self.cfg.topk,
            cost_scale: self.cfg.cost_scale,
        };
        let sol = schedule::solve_with(&problem, &self.pricing_opts())?;
        self.lp_stats.merge(sol.lp_stats);
        self.telemetry.lp_iterations += sol.lp_stats.iterations;
        self.telemetry.lp_pricing_scans += sol.lp_stats.pricing_scans;
        self.telemetry.lp_refactors += sol.lp_stats.refactors;
        self.telemetry.lp_ft_updates += sol.lp_stats.ft_updates;
        self.telemetry.lp_pivot_rejections += sol.lp_stats.pivot_rejections;
        self.telemetry.lp_basis_nnz += sol.lp_stats.basis_nnz;
        self.telemetry.lp_factor_nnz += sol.lp_stats.factor_nnz;
        self.telemetry.lp_pricing_par_sections += sol.lp_stats.pricing_par_sections;
        self.telemetry.lp_pricing_par_steals += sol.lp_stats.pricing_par_steals;
        // Reference window: the pattern carried into the future.
        self.bump_epoch();
        let ref_start = self.grid.window_start(w_now - back);
        for e in self.net.edge_ids() {
            let floor = price_floor(&self.net, &self.grid, &self.cfg, e);
            for t in now..self.horizon {
                let t_ref = ref_start + self.grid.step_in_window(t);
                // Full dual price: congestion shadow price plus marginal
                // percentile cost (C_e/k on the window's top-k steps).
                let p = sol.price(e, t_ref).max(floor);
                self.state.set_price(e, t, p);
            }
        }
        self.pc_runs += 1;
        self.telemetry.pc.record(t0.elapsed());
        self.run_audit(AuditPoint::Pc, now);
        Ok(())
    }

    /// Inject a fault: remove `fraction` of an edge's capacity from the
    /// sellable pool over `[from, to)` (§4.4). A fraction of 1.0 models a
    /// full link failure. Losses compound with any existing degradation
    /// (the stricter health wins); the window containing `from` is marked
    /// fault-contaminated, and subsequent SAM/execute steps extend the
    /// marking while the fault persists.
    pub fn inject_capacity_loss(&mut self, e: EdgeId, from: Timestep, to: Timestep, fraction: f64) {
        assert!((0.0..=1.0).contains(&fraction));
        self.bump_epoch();
        if let Some(touched) = self.sam_touched.as_mut() {
            touched.insert(e);
        }
        let retained = 1.0 - fraction;
        for t in from..to.min(self.horizon) {
            let h = self.state.health(e, t).min(retained);
            self.state.set_health(e, t, h);
        }
        if from < self.horizon {
            self.fault_windows.insert(self.grid.window_of(from));
        }
    }

    /// Undo a capacity loss: restore full health on `(e, t)` for
    /// `t ∈ [from, to)` — fault recovery (§4.4). Windows already marked
    /// contaminated stay marked; the fault did happen in them.
    pub fn restore_capacity(&mut self, e: EdgeId, from: Timestep, to: Timestep) {
        self.bump_epoch();
        if let Some(touched) = self.sam_touched.as_mut() {
            touched.insert(e);
        }
        for t in from..to.min(self.horizon) {
            self.state.set_health(e, t, 1.0);
        }
    }

    /// Sum of all locked-in payments.
    pub fn total_payments(&self) -> f64 {
        self.contracts.iter().map(|c| c.payment).sum()
    }

    /// Override the internal price of `(e, t)`. Used by experiments that
    /// study externally chosen price patterns (e.g. the Figure 2 worked
    /// example) — normal operation lets the price computer manage prices.
    pub fn set_price(&mut self, e: EdgeId, t: Timestep, p: f64) {
        self.bump_epoch();
        self.state.set_price(e, t, p);
    }

    /// Seed every window's prices from a per-(edge, step-in-window)
    /// pattern, flooring at the per-edge price floor. Used to warm-start a
    /// run from a previous day's learned prices (the production system
    /// would have weeks of history; a fresh simulation has none).
    pub fn seed_prices(&mut self, pattern: impl Fn(EdgeId, usize) -> f64) {
        self.bump_epoch();
        for e in self.net.edge_ids() {
            let floor = price_floor(&self.net, &self.grid, &self.cfg, e);
            for t in 0..self.horizon {
                let p = pattern(e, self.grid.step_in_window(t)).max(floor);
                self.state.set_price(e, t, p);
            }
        }
    }
}

/// Per-edge price floor: the configured constant plus, for percentile
/// links, the *average-cost* share of a unit riding a flat usage profile
/// (`C_e / W`). The marginal cost of a unit below the current 95th
/// percentile is zero, but quoting below average cost would leave the
/// provider unable to recover its percentile bill — the floor keeps every
/// pct-crossing unit paying at least its flat share, while congestion and
/// peak-riding surcharges enter through the dual prices.
pub fn price_floor(net: &Network, grid: &TimeGrid, cfg: &PretiumConfig, e: EdgeId) -> f64 {
    let flat = net.edge(e).cost.unit_cost() * cfg.cost_scale / grid.steps_per_window as f64;
    cfg.price_floor + flat
}

/// Cold-start price of an edge (used before the first PC run): the floor,
/// optionally scaled.
pub fn initial_price(net: &Network, grid: &TimeGrid, cfg: &PretiumConfig, e: EdgeId) -> f64 {
    price_floor(net, grid, cfg, e) * cfg.initial_price_scale
}
