//! Lazy column generation for the SAM restricted master (DESIGN.md §17)
//! vs full materialization: replay a fault-perturbed window of a wide
//! evaluation scenario — wider than any recorded LP in this repo, so the
//! column universe is at least 4x the largest previously materialized
//! model — re-planning every step either with every (path, timestep)
//! variable materialized up front (`ColumnGen::Off`, the pre-redesign
//! behavior) or with the restricted master seeded on shortest paths and
//! grown by dual pricing (`ColumnGen::On`).
//!
//! The headline numbers are the materialized-column fraction (the
//! restricted master must touch at most 25% of the universe) and the
//! per-step median wall-clock of both paths; every replay asserts exact
//! objective agreement step by step, because a smaller LP that solves a
//! different problem measures nothing. Writes `BENCH_colgen.json` at the
//! workspace root.
//!
//! Set `COLGEN_SMOKE=1` for the CI smoke mode: one replay per path, the
//! universe/fraction/agreement floors asserted, and no JSON (a smoke run
//! never clobbers recorded numbers).

use std::time::{Duration, Instant};

use pretium_bench::black_box;
use pretium_core::schedule::{Job, ScheduleProblem, ScheduleSession};
use pretium_core::{ColumnGen, TopkEncoding};
use pretium_net::{k_shortest_paths, EdgeId, Network, TimeGrid, Timestep};
use pretium_sim::ScenarioConfig;

const STEPS: usize = 24;
/// Re-plan steps actually replayed (the LP always spans the full
/// `STEPS` horizon — that is the scale under test; the replay length
/// only bounds how many times the fully-materialized baseline, which
/// pays the whole universe on every warm re-solve, gets timed).
const REPLAY_STEPS: usize = 8;
const K_PATHS: usize = 8;
const HEADROOM: f64 = 1.8;
const COST_SCALE: f64 = 0.25;
const FAULT_FACTOR: f64 = 0.9;
/// Acceptance floor from the redesign: the restricted master must finish
/// with at most this fraction of the column universe materialized.
const MAX_MATERIALIZED_FRACTION: f64 = 0.25;
/// The universe must be at least 4x the largest fully-materialized LP this
/// repo had recorded before the redesign (~2,940 flow variables).
const MIN_UNIVERSE: usize = 11_760;
/// Timed replays per path in full mode (per-step samples pool across
/// replays before taking the median).
const REPLAYS: usize = 5;

struct Replay {
    objective: f64,
    step_times: Vec<Duration>,
    materialized: usize,
    universe: usize,
    columns_generated: u64,
    colgen_rounds: u64,
}

fn window_jobs(net: &Network, requests: &[pretium_workload::Request]) -> Vec<Job> {
    requests
        .iter()
        .filter(|r| r.start < STEPS)
        .enumerate()
        .map(|(i, r)| {
            let paths = k_shortest_paths(net, r.src, r.dst, K_PATHS, &|_| 1.0);
            Job::new(
                i,
                paths,
                r.start,
                r.deadline.min(STEPS - 1),
                r.value,
                r.demand * 0.5,
                r.demand,
            )
        })
        .collect()
}

fn no_realized(_: EdgeId, _: Timestep) -> f64 {
    0.0
}

fn median(samples: &mut [Duration]) -> Duration {
    samples.sort();
    samples[samples.len() / 2]
}

fn main() {
    let smoke = std::env::var_os("COLGEN_SMOKE").is_some();
    // The widest world in the bench suite: evaluation link capacities,
    // costs, and traffic over more regions, more active pairs, and more
    // paths per job than the incremental-SAM bench. Column generation is a
    // large-instance technique — the point is a universe too big to want
    // materialized — so the bench measures at the scale the technique is
    // for, and asserts that scale below.
    let mut cfg = ScenarioConfig::evaluation(rand::DEFAULT_SEED, 1.0);
    cfg.topology.nodes_per_region = vec![6, 5, 4, 3];
    cfg.traffic.pair_activity = 0.4;
    let scenario = cfg.build();
    let net = scenario.net.clone();
    let grid = TimeGrid::new(STEPS, 30);
    let jobs = window_jobs(&net, &scenario.requests);
    assert!(jobs.len() >= 8, "scenario produced too few jobs: {}", jobs.len());
    let base_cap = |e: EdgeId, _t: Timestep| net.edge(e).capacity * HEADROOM;

    let problem = ScheduleProblem {
        net: &net,
        grid: &grid,
        from: 0,
        to: STEPS,
        jobs: &jobs,
        capacity: &base_cap,
        realized: &no_realized,
        topk: TopkEncoding::CVar,
        cost_scale: COST_SCALE,
    };

    // `COLGEN_PROBE=1` prints the universe/seed shape of the current
    // constants without solving; `COLGEN_PROBE=solve` also times one cold
    // solve per mode. Both exist for retuning the scenario knobs above.
    if std::env::var_os("COLGEN_PROBE").is_some() {
        let probe = ScheduleSession::with_colgen(&problem, ColumnGen::on());
        println!(
            "probe: {} jobs, universe {} columns, seed {} columns",
            jobs.len(),
            probe.column_universe(),
            probe.num_flow_columns()
        );
        if std::env::var("COLGEN_PROBE").ok().as_deref() != Some("solve") {
            return;
        }
        let mut on = probe;
        let t0 = Instant::now();
        on.solve_step(&net, &base_cap, &no_realized).unwrap();
        println!(
            "probe: colgen t=0 solve {:?}, materialized {}",
            t0.elapsed(),
            on.num_flow_columns()
        );
        let mut off = ScheduleSession::with_colgen(&problem, ColumnGen::Off);
        let t0 = Instant::now();
        off.solve_step(&net, &base_cap, &no_realized).unwrap();
        println!("probe: full t=0 solve {:?}", t0.elapsed());
        return;
    }

    // Fault schedule as in the incremental bench: cycle over lightly-shared
    // edges that carry at least one job, so every step re-plans against
    // genuinely moved capacity and the pricing loop has real work.
    let mut crossing: Vec<(usize, EdgeId)> = net
        .edge_ids()
        .map(|e| (jobs.iter().filter(|j| j.paths.iter().any(|p| p.contains(e))).count(), e))
        .collect();
    crossing.sort_by_key(|&(c, e)| (c, e.0));
    let faulted: Vec<EdgeId> =
        crossing.iter().filter(|&&(c, _)| c > 0).take(4).map(|&(_, e)| e).collect();
    assert!(!faulted.is_empty(), "no edge carries any job");

    // Replay the fault-perturbed window end to end — including the initial
    // solve, which is where full materialization pays its bill — timing
    // each re-plan step.
    let run = |colgen: ColumnGen| -> Replay {
        let mut sess = ScheduleSession::with_colgen(&problem, colgen);
        let mut factors: Vec<f64> = vec![1.0; net.num_edges()];
        let mut replay = Replay {
            objective: 0.0,
            step_times: Vec::new(),
            materialized: 0,
            universe: 0,
            columns_generated: 0,
            colgen_rounds: 0,
        };
        for t in 0..REPLAY_STEPS {
            if t > 0 {
                sess.advance_to(t);
                let e = faulted[t % faulted.len()];
                factors[e.index()] = if factors[e.index()] < 1.0 { 1.0 } else { FAULT_FACTOR };
            }
            let cap =
                |e: EdgeId, _t: Timestep| net.edge(e).capacity * HEADROOM * factors[e.index()];
            let t0 = Instant::now();
            let sol = sess.solve_step(&net, &cap, &no_realized).unwrap();
            replay.step_times.push(t0.elapsed());
            replay.objective += black_box(sol.objective);
        }
        replay.materialized = sess.num_flow_columns();
        replay.universe = sess.column_universe();
        replay.columns_generated = sess.lp_stats().columns_generated;
        replay.colgen_rounds = sess.lp_stats().colgen_rounds;
        replay
    };

    // Sanity before timing: the restricted master must agree with full
    // materialization on every step's optimum.
    let full = run(ColumnGen::Off);
    let lazy = run(ColumnGen::on());
    assert!(
        (full.objective - lazy.objective).abs() <= 1e-6 * (1.0 + full.objective.abs()),
        "objective drift: full {} vs colgen {}",
        full.objective,
        lazy.objective
    );
    assert_eq!(full.universe, lazy.universe, "both modes count the same universe");
    let fraction = lazy.materialized as f64 / lazy.universe as f64;
    println!(
        "colgen replay: {} jobs, universe {} columns, materialized {} ({:.1}%), \
         {} columns priced in over {} restricted-master rounds",
        jobs.len(),
        lazy.universe,
        lazy.materialized,
        fraction * 100.0,
        lazy.columns_generated,
        lazy.colgen_rounds,
    );
    assert!(
        lazy.universe >= MIN_UNIVERSE,
        "universe {} below the {MIN_UNIVERSE}-column scale floor",
        lazy.universe
    );
    assert!(
        fraction <= MAX_MATERIALIZED_FRACTION,
        "restricted master materialized {:.1}% of the universe (floor {:.0}%)",
        fraction * 100.0,
        MAX_MATERIALIZED_FRACTION * 100.0
    );
    assert!(lazy.columns_generated > 0, "the replay never priced a column");
    assert_eq!(full.materialized, full.universe, "Off mode materializes everything");

    let replays = if smoke { 1 } else { REPLAYS };
    let mut full_steps = full.step_times.clone();
    let mut lazy_steps = lazy.step_times.clone();
    for _ in 0..replays.saturating_sub(1) {
        full_steps.extend(run(ColumnGen::Off).step_times);
        lazy_steps.extend(run(ColumnGen::on()).step_times);
    }
    let full_med = median(&mut full_steps);
    let lazy_med = median(&mut lazy_steps);
    let speedup = full_med.as_secs_f64() / lazy_med.as_secs_f64().max(1e-12);
    // The t=0 sample is the cold full-horizon solve — the step where full
    // materialization pays for the entire universe at once and the gap is
    // widest; the medians are the warm faulted re-plans.
    let full_cold = full.step_times[0];
    let lazy_cold = lazy.step_times[0];
    let cold_speedup = full_cold.as_secs_f64() / lazy_cold.as_secs_f64().max(1e-12);
    println!(
        "sam_step_full_materialization cold {full_cold:?}, median {full_med:?} over {} steps",
        full_steps.len()
    );
    println!(
        "sam_step_colgen               cold {lazy_cold:?}, median {lazy_med:?} over {} steps",
        lazy_steps.len()
    );
    println!("BENCH\tcolgen_universe_columns\t{}", lazy.universe);
    println!("BENCH\tcolgen_materialized_columns\t{}", lazy.materialized);
    println!("BENCH\tcolgen_materialized_fraction\t{fraction:.4}");
    println!("BENCH\tcolgen_rounds\t{}", lazy.colgen_rounds);
    println!("BENCH\tsam_step_full_median_us\t{:.1}", full_med.as_secs_f64() * 1e6);
    println!("BENCH\tsam_step_colgen_median_us\t{:.1}", lazy_med.as_secs_f64() * 1e6);
    println!("BENCH\tcolgen_step_speedup\t{speedup:.3}");
    println!("BENCH\tsam_cold_full_ms\t{:.1}", full_cold.as_secs_f64() * 1e3);
    println!("BENCH\tsam_cold_colgen_ms\t{:.1}", lazy_cold.as_secs_f64() * 1e3);
    println!("BENCH\tcolgen_cold_speedup\t{cold_speedup:.3}");

    if smoke {
        // The scale, fraction, and agreement floors above already ran; a
        // smoke pass is those floors on one replay, without touching the
        // recorded JSON. No wall-clock floor: the restricted master is a
        // memory/scale win first, and shared CI machines are noisy.
        println!("colgen smoke: universe, materialization, and agreement floors hold");
        return;
    }

    let json = format!(
        "{{\n  \"bench\": \"colgen\",\n  \"scenario\": \"evaluation-widest\",\n  \
         \"steps\": {STEPS},\n  \"jobs\": {},\n  \"replays\": {replays},\n  \
         \"universe_columns\": {},\n  \"materialized_columns\": {},\n  \
         \"materialized_fraction\": {fraction:.4},\n  \"columns_generated\": {},\n  \
         \"colgen_rounds\": {},\n  \"full_step_median_us\": {:.1},\n  \
         \"colgen_step_median_us\": {:.1},\n  \"step_speedup\": {speedup:.3},\n  \
         \"full_cold_solve_ms\": {:.1},\n  \"colgen_cold_solve_ms\": {:.1},\n  \
         \"cold_speedup\": {cold_speedup:.3}\n}}\n",
        jobs.len(),
        lazy.universe,
        lazy.materialized,
        lazy.columns_generated,
        lazy.colgen_rounds,
        full_med.as_secs_f64() * 1e6,
        lazy_med.as_secs_f64() * 1e6,
        full_cold.as_secs_f64() * 1e3,
        lazy_cold.as_secs_f64() * 1e3,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_colgen.json");
    std::fs::write(path, json).expect("write BENCH_colgen.json");
    println!("wrote {path}");
}
