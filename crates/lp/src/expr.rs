//! Linear expressions over model variables.
//!
//! A [`LinExpr`] is a sum of `coefficient * variable` terms plus a constant
//! offset. Expressions are built either through the fluent
//! [`LinExpr::term`] API or with the `+` / `*` operators:
//!
//! ```
//! use pretium_lp::{Model, Sense, LinExpr};
//! let mut m = Model::new(Sense::Maximize);
//! let x = m.add_var("x", 0.0, 10.0, 1.0);
//! let y = m.add_var("y", 0.0, 10.0, 1.0);
//! let e = 2.0 * x + 3.0 * y + 1.0;
//! assert_eq!(e.constant(), 1.0);
//! ```

use rand::{DetHashMap as HashMap, DetState};
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// Handle to a decision variable in a [`crate::Model`].
///
/// `Var`s are cheap copyable indices. They are only meaningful for the model
/// that created them; using a `Var` from one model in another is a logic
/// error that the model detects by bounds-checking the index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub(crate) u32);

impl Var {
    /// The dense index of this variable inside its model (0-based, in
    /// creation order).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct a variable handle from a raw index.
    ///
    /// Intended for tooling that serializes models; prefer keeping the
    /// handles returned by [`crate::Model::add_var`].
    #[inline]
    pub fn from_index(i: usize) -> Self {
        Var(i as u32)
    }
}

/// A single `coefficient * variable` term.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Term {
    pub coef: f64,
    pub var: Var,
}

/// A linear expression: `Σ coef_j · var_j + constant`.
///
/// Duplicate variables are allowed while building; they are merged by
/// [`LinExpr::compact`] (called automatically when a row is added to a
/// model).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinExpr {
    terms: Vec<Term>,
    constant: f64,
}

impl LinExpr {
    /// The empty expression (`0`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Expression holding a single constant.
    pub fn constant_expr(c: f64) -> Self {
        LinExpr { terms: Vec::new(), constant: c }
    }

    /// Build an expression from `(coefficient, variable)` pairs.
    pub fn from_terms<I: IntoIterator<Item = (f64, Var)>>(iter: I) -> Self {
        let mut e = LinExpr::new();
        for (c, v) in iter {
            e.add_term(c, v);
        }
        e
    }

    /// Append `coef * var`; returns `self` for chaining.
    pub fn term(mut self, coef: f64, var: Var) -> Self {
        self.add_term(coef, var);
        self
    }

    /// Append `coef * var` in place.
    pub fn add_term(&mut self, coef: f64, var: Var) {
        if coef != 0.0 {
            self.terms.push(Term { coef, var });
        }
    }

    /// Add a constant offset; returns `self` for chaining.
    pub fn plus(mut self, c: f64) -> Self {
        self.constant += c;
        self
    }

    /// The constant offset of the expression.
    #[inline]
    pub fn constant(&self) -> f64 {
        self.constant
    }

    /// Iterate over the (possibly non-compacted) terms.
    pub fn terms(&self) -> impl Iterator<Item = &Term> {
        self.terms.iter()
    }

    /// Number of stored terms (before merging duplicates).
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True if the expression has no variable terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Merge duplicate variables and drop zero coefficients. Term order is
    /// ascending by variable index afterwards.
    pub fn compact(&mut self) {
        if self.terms.len() <= 1 {
            return;
        }
        self.terms.sort_by_key(|t| t.var);
        let mut out: Vec<Term> = Vec::with_capacity(self.terms.len());
        for t in self.terms.drain(..) {
            match out.last_mut() {
                Some(last) if last.var == t.var => last.coef += t.coef,
                _ => out.push(t),
            }
        }
        out.retain(|t| t.coef != 0.0);
        self.terms = out;
    }

    /// Evaluate the expression given a dense assignment of variable values.
    ///
    /// # Panics
    /// Panics if a term references a variable index `>= values.len()`.
    pub fn eval(&self, values: &[f64]) -> f64 {
        self.constant + self.terms.iter().map(|t| t.coef * values[t.var.index()]).sum::<f64>()
    }

    /// The expression as a map `var -> merged coefficient`.
    pub fn coefficients(&self) -> HashMap<Var, f64> {
        let mut m = HashMap::with_capacity_and_hasher(self.terms.len(), DetState);
        for t in &self.terms {
            *m.entry(t.var).or_insert(0.0) += t.coef;
        }
        m.retain(|_, c| *c != 0.0);
        m
    }

    /// Multiply every coefficient (and the constant) by `s`.
    pub fn scale(&mut self, s: f64) {
        for t in &mut self.terms {
            t.coef *= s;
        }
        self.constant *= s;
    }
}

impl fmt::Display for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for t in &self.terms {
            if first {
                write!(f, "{}·x{}", t.coef, t.var.0)?;
                first = false;
            } else if t.coef < 0.0 {
                write!(f, " - {}·x{}", -t.coef, t.var.0)?;
            } else {
                write!(f, " + {}·x{}", t.coef, t.var.0)?;
            }
        }
        if self.constant != 0.0 || first {
            if first {
                write!(f, "{}", self.constant)?;
            } else if self.constant < 0.0 {
                write!(f, " - {}", -self.constant)?;
            } else {
                write!(f, " + {}", self.constant)?;
            }
        }
        Ok(())
    }
}

// --- operator sugar -------------------------------------------------------

impl From<Var> for LinExpr {
    fn from(v: Var) -> Self {
        LinExpr::new().term(1.0, v)
    }
}

impl Mul<Var> for f64 {
    type Output = LinExpr;
    fn mul(self, v: Var) -> LinExpr {
        LinExpr::new().term(self, v)
    }
}

impl Mul<f64> for Var {
    type Output = LinExpr;
    fn mul(self, c: f64) -> LinExpr {
        LinExpr::new().term(c, self)
    }
}

impl Add for LinExpr {
    type Output = LinExpr;
    fn add(mut self, rhs: LinExpr) -> LinExpr {
        self.terms.extend(rhs.terms);
        self.constant += rhs.constant;
        self
    }
}

impl Add<Var> for LinExpr {
    type Output = LinExpr;
    fn add(self, v: Var) -> LinExpr {
        self.term(1.0, v)
    }
}

impl Add<LinExpr> for Var {
    type Output = LinExpr;
    fn add(self, e: LinExpr) -> LinExpr {
        e.term(1.0, self)
    }
}

impl Add<Var> for Var {
    type Output = LinExpr;
    fn add(self, other: Var) -> LinExpr {
        LinExpr::new().term(1.0, self).term(1.0, other)
    }
}

impl Add<f64> for LinExpr {
    type Output = LinExpr;
    fn add(self, c: f64) -> LinExpr {
        self.plus(c)
    }
}

impl AddAssign for LinExpr {
    fn add_assign(&mut self, rhs: LinExpr) {
        self.terms.extend(rhs.terms);
        self.constant += rhs.constant;
    }
}

impl Sub for LinExpr {
    type Output = LinExpr;
    fn sub(mut self, rhs: LinExpr) -> LinExpr {
        for t in rhs.terms {
            self.terms.push(Term { coef: -t.coef, var: t.var });
        }
        self.constant -= rhs.constant;
        self
    }
}

impl Sub<Var> for LinExpr {
    type Output = LinExpr;
    fn sub(self, v: Var) -> LinExpr {
        self.term(-1.0, v)
    }
}

impl Neg for LinExpr {
    type Output = LinExpr;
    fn neg(mut self) -> LinExpr {
        self.scale(-1.0);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> Var {
        Var(i)
    }

    #[test]
    fn build_and_eval() {
        let e = 2.0 * v(0) + 3.0 * v(1) + 1.5;
        assert_eq!(e.eval(&[1.0, 2.0]), 2.0 + 6.0 + 1.5);
    }

    #[test]
    fn compact_merges_duplicates() {
        let mut e = LinExpr::from_terms([(1.0, v(1)), (2.0, v(0)), (3.0, v(1))]);
        e.compact();
        let coefs = e.coefficients();
        assert_eq!(coefs[&v(0)], 2.0);
        assert_eq!(coefs[&v(1)], 4.0);
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn compact_drops_cancelled_terms() {
        let mut e = LinExpr::from_terms([(1.0, v(0)), (-1.0, v(0))]);
        e.compact();
        assert!(e.is_empty());
    }

    #[test]
    fn zero_coefficient_ignored_on_add() {
        let e = LinExpr::new().term(0.0, v(0));
        assert!(e.is_empty());
    }

    #[test]
    fn sub_and_neg() {
        let a = 2.0 * v(0) + 1.0;
        let b = 1.0 * v(0) + 0.5;
        let d = a - b;
        assert_eq!(d.eval(&[3.0]), 2.0 * 3.0 + 1.0 - (3.0 + 0.5));
        let n = -(1.0 * v(0) + 2.0);
        assert_eq!(n.eval(&[4.0]), -6.0);
    }

    #[test]
    fn display_formats_signs() {
        let e = 1.0 * v(0) + (-2.0) * v(1) + (-0.5);
        let s = format!("{e}");
        assert!(s.contains("- 2·x1"), "{s}");
        assert!(s.contains("- 0.5"), "{s}");
    }

    #[test]
    fn scale_affects_constant() {
        let mut e = 2.0 * v(0) + 4.0;
        e.scale(0.5);
        assert_eq!(e.eval(&[1.0]), 1.0 + 2.0);
    }
}
