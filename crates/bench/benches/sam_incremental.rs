//! Incremental SAM re-optimization (DESIGN.md §16) vs the full warm
//! re-solve: replay a window of a wide evaluation scenario where each step
//! perturbs the capacity of one lightly-shared edge (a localized fault or
//! repair), and re-plan every step either with the full warm lazy loop
//! (`solve_step_with`, the PR-3 baseline this repo's 5.5x warm-vs-cold
//! number measures) or with the localized path (`solve_step_localized`:
//! untouched blocks and the cost layer of unaffected edges frozen, affected
//! blocks re-solved as a certified submodel).
//!
//! The headline `sam_incremental_speedup` is the ratio of *per-step
//! medians*: the localized path pays a cold submodel solve on the first
//! visit of each fault pattern and warm-starts every recurrence, so the
//! median step is the steady-state warm step the incremental redesign
//! targets (>= 3x there). Writes `BENCH_sam_incremental.json` at the
//! workspace root.
//!
//! Set `SAM_INCREMENTAL_SMOKE=1` for the CI smoke mode: one timed replay
//! per path, asserted speedup/certification floors, and no JSON (a smoke
//! run never clobbers recorded numbers).

use std::time::{Duration, Instant};

use pretium_bench::black_box;
use pretium_core::schedule::{Job, ScheduleProblem, ScheduleSession};
use pretium_core::TopkEncoding;
use pretium_lp::SolveOptions;
use pretium_net::{k_shortest_paths, EdgeId, Network, TimeGrid, Timestep};
use pretium_sim::ScenarioConfig;
use rand::DetHashSet;

const STEPS: usize = 16;
const K_PATHS: usize = 3;
/// Capacity multiplier over the generated topology: moderate utilization
/// (slack on shared links) is the regime where a localized fault stays
/// localized — at crush load every block couples through scarce shared
/// capacity and the certificate correctly keeps falling back.
const HEADROOM: f64 = 1.5;
const COST_SCALE: f64 = 0.25;
const FAULT_FACTOR: f64 = 0.95;
/// Certification tolerance (the `IncrementalSam::Certified` regime).
/// Degenerate top-k ties give the percentile-cost rows an interval of
/// equally-optimal duals; the submodel can land on a different vertex than
/// the one supporting the frozen flows, which shows up as a spurious
/// reduced-cost signal of up to about `unit_cost * COST_SCALE` with zero
/// objective impact. The tolerance sits above that wobble, and every
/// replay asserts exact objective agreement with the full solve at 1e-6.
const TOL: f64 = 1.0;
/// Timed replays per path in full mode (per-step samples pool across
/// replays before taking the median).
const REPLAYS: usize = 5;

struct Replay {
    objective: f64,
    certified: usize,
    fallbacks: usize,
    step_times: Vec<Duration>,
}

fn window_jobs(net: &Network, requests: &[pretium_workload::Request]) -> Vec<Job> {
    requests
        .iter()
        .filter(|r| r.start < STEPS)
        .enumerate()
        .map(|(i, r)| {
            let paths = k_shortest_paths(net, r.src, r.dst, K_PATHS, &|_| 1.0);
            Job::new(
                i,
                paths,
                r.start,
                r.deadline.min(STEPS - 1),
                r.value,
                r.demand * 0.5,
                r.demand,
            )
        })
        .collect()
}

fn no_realized(_: EdgeId, _: Timestep) -> f64 {
    0.0
}

fn median(samples: &mut [Duration]) -> Duration {
    samples.sort();
    samples[samples.len() / 2]
}

fn main() {
    let smoke = std::env::var_os("SAM_INCREMENTAL_SMOKE").is_some();
    // A wide evaluation world: same link capacities, costs, and traffic
    // model as `ScenarioConfig::evaluation`, over more regions and more
    // active pairs. Incremental re-optimization is a large-instance
    // technique — the full warm re-solve's cost grows with the whole LP
    // while the localized path grows with the affected blocks — so the
    // bench measures at the scale the technique is for.
    let mut cfg = ScenarioConfig::evaluation(rand::DEFAULT_SEED, 1.0);
    cfg.topology.nodes_per_region = vec![6, 5, 4, 3];
    cfg.traffic.pair_activity = 0.35;
    let scenario = cfg.build();
    let net = scenario.net.clone();
    let grid = TimeGrid::new(STEPS, 30);
    let jobs = window_jobs(&net, &scenario.requests);
    assert!(jobs.len() >= 4, "scenario produced too few jobs: {}", jobs.len());
    let base_cap = |e: EdgeId, _t: Timestep| net.edge(e).capacity * HEADROOM;
    let opts = SolveOptions::default();

    // The fault schedule cycles over the least-shared edges that still
    // carry at least one job — exactly the regime the localized solver is
    // built for: a touched set whose coupling rows reach few blocks.
    let mut crossing: Vec<(usize, EdgeId)> = net
        .edge_ids()
        .map(|e| (jobs.iter().filter(|j| j.paths.iter().any(|p| p.contains(e))).count(), e))
        .collect();
    crossing.sort_by_key(|&(c, e)| (c, e.0));
    let faulted: Vec<EdgeId> =
        crossing.iter().filter(|&&(c, _)| c > 0).take(4).map(|&(_, e)| e).collect();
    assert!(!faulted.is_empty(), "no edge carries any job");

    let problem = ScheduleProblem {
        net: &net,
        grid: &grid,
        from: 0,
        to: STEPS,
        jobs: &jobs,
        capacity: &base_cap,
        realized: &no_realized,
        topk: TopkEncoding::CVar,
        cost_scale: COST_SCALE,
    };
    // One warm session, fully solved: the state `Pretium::run_sam` carries
    // between steps. Each replay below clones it so both paths start from
    // the identical basis and plan.
    let mut prepped = ScheduleSession::new(&problem);
    prepped.solve_step(&net, &base_cap, &no_realized).unwrap();

    // Replay the fault-perturbed window, timing each re-plan step.
    let run = |localized: bool| -> Replay {
        let mut sess = prepped.clone();
        let mut factors: Vec<f64> = vec![1.0; net.num_edges()];
        let mut replay =
            Replay { objective: 0.0, certified: 0, fallbacks: 0, step_times: Vec::new() };
        for t in 1..STEPS {
            sess.advance_to(t);
            let e = faulted[t % faulted.len()];
            // Alternate degrade/repair so capacity keeps moving and every
            // step has a genuine touched set.
            factors[e.index()] = if factors[e.index()] < 1.0 { 1.0 } else { FAULT_FACTOR };
            let cap =
                |e: EdgeId, _t: Timestep| net.edge(e).capacity * HEADROOM * factors[e.index()];
            let t0 = Instant::now();
            if localized {
                let touched: DetHashSet<EdgeId> = [e].into_iter().collect();
                let out = sess
                    .solve_step_localized(&net, &cap, &no_realized, &touched, TOL, &opts)
                    .unwrap();
                replay.step_times.push(t0.elapsed());
                if out.certified && !out.used_full {
                    replay.certified += 1;
                } else {
                    replay.fallbacks += 1;
                }
                replay.objective += out.solution.objective;
            } else {
                let sol = sess.solve_step_with(&net, &cap, &no_realized, &opts).unwrap();
                replay.step_times.push(t0.elapsed());
                replay.objective += black_box(sol.objective);
            }
        }
        replay
    };

    // Sanity before timing: the two paths must agree on every step's
    // optimum — a speedup over a different answer measures nothing.
    let full = run(false);
    let inc = run(true);
    assert!(
        (full.objective - inc.objective).abs() <= 1e-6 * (1.0 + full.objective.abs()),
        "objective drift: full {} vs incremental {}",
        full.objective,
        inc.objective
    );
    println!(
        "sam_incremental replay: {} jobs, {} certified localized steps, {} fallbacks \
         over {} fault-perturbed steps",
        jobs.len(),
        inc.certified,
        inc.fallbacks,
        STEPS - 1
    );

    let replays = if smoke { 1 } else { REPLAYS };
    let mut full_steps = full.step_times.clone();
    let mut inc_steps = inc.step_times.clone();
    for _ in 0..replays.saturating_sub(1) {
        full_steps.extend(run(false).step_times);
        inc_steps.extend(run(true).step_times);
    }
    let full_med = median(&mut full_steps);
    let inc_med = median(&mut inc_steps);
    let speedup = full_med.as_secs_f64() / inc_med.as_secs_f64().max(1e-12);
    println!("sam_step_full      median {full_med:?} over {} steps", full_steps.len());
    println!("sam_step_localized median {inc_med:?} over {} steps", inc_steps.len());
    println!("sam_incremental speedup: {speedup:.2}x (median full step / median localized step)");
    println!("BENCH\tsam_step_full_median_us\t{:.1}", full_med.as_secs_f64() * 1e6);
    println!("BENCH\tsam_step_localized_median_us\t{:.1}", inc_med.as_secs_f64() * 1e6);
    println!("BENCH\tsam_incremental_speedup\t{speedup:.3}");

    if smoke {
        // CI regression floors: the localized path must actually certify
        // on most steps (the freeze/residual machinery working end to
        // end), and the warm median step must clearly beat the full
        // re-solve. The floor is conservative against the recorded
        // full-mode number — shared CI machines are noisy.
        assert!(
            inc.certified >= (STEPS - 1) * 2 / 3,
            "only {}/{} steps certified on the smoke replay",
            inc.certified,
            STEPS - 1
        );
        assert!(speedup >= 1.5, "smoke speedup {speedup:.2}x under the 1.5x floor");
        println!("sam_incremental smoke: certification and speedup floors hold");
        return;
    }

    let json = format!(
        "{{\n  \"bench\": \"sam_incremental\",\n  \"scenario\": \"evaluation-wide\",\n  \
         \"steps\": {},\n  \"jobs\": {},\n  \"replays\": {replays},\n  \
         \"certified_localized_steps\": {},\n  \"fallback_steps\": {},\n  \
         \"full_step_median_us\": {:.1},\n  \"localized_step_median_us\": {:.1},\n  \
         \"speedup\": {speedup:.3}\n}}\n",
        STEPS - 1,
        jobs.len(),
        inc.certified,
        inc.fallbacks,
        full_med.as_secs_f64() * 1e6,
        inc_med.as_secs_f64() * 1e6,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sam_incremental.json");
    std::fs::write(path, json).expect("write BENCH_sam_incremental.json");
    println!("wrote {path}");
}
