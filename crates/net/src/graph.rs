//! Directed WAN graph: datacenters (nodes) and links (edges) with
//! capacities and cost models.
//!
//! Edges are directed; bidirectional links are modeled as two edges. Each
//! edge carries a per-timestep capacity (the total volume it can move in
//! one scheduling timestep) and a [`LinkCost`] describing how the provider
//! is charged for it (§3.1 of the paper: ~15% of WAN edges are billed on
//! 95th-percentile usage, the rest have fixed installation costs).

use crate::cost::LinkCost;
use std::fmt;

/// Identifier of a datacenter / site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Identifier of a directed WAN link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub u32);

impl NodeId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Geographic region of a datacenter; used by the RegionOracle baseline and
/// by topology generators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    NorthAmerica,
    Europe,
    Asia,
    Oceania,
}

impl Region {
    /// All regions, in a fixed order.
    pub const ALL: [Region; 4] =
        [Region::NorthAmerica, Region::Europe, Region::Asia, Region::Oceania];
}

/// A datacenter or peering site.
#[derive(Debug, Clone)]
pub struct Node {
    pub name: String,
    pub region: Region,
}

/// A directed WAN link.
#[derive(Debug, Clone)]
pub struct Edge {
    pub from: NodeId,
    pub to: NodeId,
    /// Volume the link can carry per timestep (e.g. GB per 5-minute step).
    pub capacity: f64,
    pub cost: LinkCost,
}

/// The inter-datacenter WAN.
#[derive(Debug, Clone, Default)]
pub struct Network {
    nodes: Vec<Node>,
    edges: Vec<Edge>,
    /// Outgoing edges per node, rebuilt on mutation.
    out_adj: Vec<Vec<EdgeId>>,
}

impl Network {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a datacenter.
    pub fn add_node(&mut self, name: &str, region: Region) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node { name: name.to_string(), region });
        self.out_adj.push(Vec::new());
        id
    }

    /// Add a directed link.
    ///
    /// # Panics
    /// Panics if either endpoint is unknown, the endpoints coincide, or the
    /// capacity is not positive and finite.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, capacity: f64, cost: LinkCost) -> EdgeId {
        assert!(from.index() < self.nodes.len(), "unknown source node");
        assert!(to.index() < self.nodes.len(), "unknown target node");
        assert_ne!(from, to, "self-loop links are not allowed");
        assert!(capacity > 0.0 && capacity.is_finite(), "capacity must be positive and finite");
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(Edge { from, to, capacity, cost });
        self.out_adj[from.index()].push(id);
        id
    }

    /// Add a bidirectional link (two directed edges with identical
    /// parameters); returns `(forward, backward)`.
    pub fn add_duplex(
        &mut self,
        a: NodeId,
        b: NodeId,
        capacity: f64,
        cost: LinkCost,
    ) -> (EdgeId, EdgeId) {
        (self.add_edge(a, b, capacity, cost.clone()), self.add_edge(b, a, capacity, cost))
    }

    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.index()]
    }

    /// Mutable access to an edge (used by capacity-planning experiments).
    pub fn edge_mut(&mut self, id: EdgeId) -> &mut Edge {
        &mut self.edges[id.index()]
    }

    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes.iter().enumerate().map(|(i, n)| (NodeId(i as u32), n))
    }

    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, &Edge)> {
        self.edges.iter().enumerate().map(|(i, e)| (EdgeId(i as u32), e))
    }

    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> {
        (0..self.edges.len() as u32).map(EdgeId)
    }

    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Outgoing edges of a node.
    pub fn out_edges(&self, n: NodeId) -> &[EdgeId] {
        &self.out_adj[n.index()]
    }

    /// Rebuild adjacency (needed after deserialization).
    pub fn rebuild_adjacency(&mut self) {
        self.out_adj = vec![Vec::new(); self.nodes.len()];
        for (i, e) in self.edges.iter().enumerate() {
            self.out_adj[e.from.index()].push(EdgeId(i as u32));
        }
    }

    /// Find the edge from `a` to `b`, if any.
    pub fn find_edge(&self, a: NodeId, b: NodeId) -> Option<EdgeId> {
        self.out_adj[a.index()].iter().copied().find(|&e| self.edges[e.index()].to == b)
    }

    /// Edges billed on 95th-percentile usage.
    pub fn percentile_edges(&self) -> Vec<EdgeId> {
        self.edges()
            .filter(|(_, e)| matches!(e.cost, LinkCost::Percentile { .. }))
            .map(|(id, _)| id)
            .collect()
    }

    /// True if the regions of the two endpoints differ.
    pub fn crosses_region(&self, e: EdgeId) -> bool {
        let edge = self.edge(e);
        self.node(edge.from).region != self.node(edge.to).region
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_nodes() -> (Network, NodeId, NodeId) {
        let mut net = Network::new();
        let a = net.add_node("A", Region::NorthAmerica);
        let b = net.add_node("B", Region::Europe);
        (net, a, b)
    }

    #[test]
    fn add_nodes_and_edges() {
        let (mut net, a, b) = two_nodes();
        let e = net.add_edge(a, b, 10.0, LinkCost::owned());
        assert_eq!(net.num_nodes(), 2);
        assert_eq!(net.num_edges(), 1);
        assert_eq!(net.edge(e).from, a);
        assert_eq!(net.out_edges(a), &[e]);
        assert!(net.out_edges(b).is_empty());
    }

    #[test]
    fn duplex_adds_both_directions() {
        let (mut net, a, b) = two_nodes();
        let (f, r) = net.add_duplex(a, b, 5.0, LinkCost::owned());
        assert_eq!(net.edge(f).from, a);
        assert_eq!(net.edge(r).from, b);
        assert_eq!(net.find_edge(a, b), Some(f));
        assert_eq!(net.find_edge(b, a), Some(r));
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_rejected() {
        let (mut net, a, _) = two_nodes();
        net.add_edge(a, a, 1.0, LinkCost::owned());
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn nonpositive_capacity_rejected() {
        let (mut net, a, b) = two_nodes();
        net.add_edge(a, b, 0.0, LinkCost::owned());
    }

    #[test]
    fn crosses_region_detects_boundaries() {
        let (mut net, a, b) = two_nodes();
        let c = net.add_node("C", Region::NorthAmerica);
        let ab = net.add_edge(a, b, 1.0, LinkCost::owned());
        let ac = net.add_edge(a, c, 1.0, LinkCost::owned());
        assert!(net.crosses_region(ab));
        assert!(!net.crosses_region(ac));
    }

    #[test]
    fn percentile_edges_filtered() {
        let (mut net, a, b) = two_nodes();
        net.add_edge(a, b, 1.0, LinkCost::owned());
        let p = net.add_edge(b, a, 1.0, LinkCost::percentile(2.0));
        assert_eq!(net.percentile_edges(), vec![p]);
    }

    #[test]
    fn rebuild_adjacency_roundtrip() {
        // Simulates a deserialized network whose adjacency cache was not
        // persisted: clearing and rebuilding must restore it.
        let (mut net, a, b) = two_nodes();
        net.add_duplex(a, b, 5.0, LinkCost::owned());
        let mut back = net.clone();
        back.out_adj.clear();
        back.rebuild_adjacency();
        assert_eq!(back.out_edges(a).len(), 1);
        assert_eq!(back.out_edges(b).len(), 1);
    }
}
