//! The Pretium system façade: request admission, schedule adjustment, and
//! price computation wired around the shared [`NetworkState`] (Figure 3).
//!
//! Module timescales (§4): the RA answers *every request arrival* with a
//! menu built from current prices; SAM re-optimizes the full plan *every
//! timestep*; the PC recomputes prices *once per window* from the duals of
//! an offline solve over recent history.

use crate::config::{PretiumConfig, ReferenceWindow};
use crate::contract::{Contract, ContractId, RequestParams};
use crate::menu::{build_menu, PriceMenu};
use crate::schedule::{self, Job, ScheduleProblem};
use crate::state::NetworkState;
use pretium_lp::SolveError;
use pretium_net::{EdgeId, Network, Path, PathSet, TimeGrid, Timestep, UsageTracker};

/// A running Pretium instance.
pub struct Pretium {
    net: Network,
    grid: TimeGrid,
    horizon: usize,
    cfg: PretiumConfig,
    state: NetworkState,
    path_cache: PathSet,
    contracts: Vec<Contract>,
    /// Admissible route set per contract (parallel to `contracts`).
    contract_paths: Vec<Vec<Path>>,
    /// Number of completed price recomputations.
    pc_runs: u32,
}

impl Pretium {
    /// Create an instance over `net` for `horizon` timesteps. Initial
    /// prices are the per-edge floors scaled by
    /// `cfg.initial_price_scale` (cold start; see DESIGN.md §8).
    pub fn new(net: Network, grid: TimeGrid, horizon: usize, cfg: PretiumConfig) -> Self {
        assert!(horizon > 0);
        let floors: Vec<f64> = net
            .edge_ids()
            .map(|e| initial_price(&net, &grid, &cfg, e))
            .collect();
        let state = NetworkState::new(&net, grid, horizon, cfg.highpri_fraction, cfg.bump, |e| {
            floors[e.index()]
        });
        let path_cache = PathSet::new(cfg.k_paths);
        Pretium {
            net,
            grid,
            horizon,
            cfg,
            state,
            path_cache,
            contracts: Vec::new(),
            contract_paths: Vec::new(),
            pc_runs: 0,
        }
    }

    pub fn network(&self) -> &Network {
        &self.net
    }

    pub fn state(&self) -> &NetworkState {
        &self.state
    }

    pub fn config(&self) -> &PretiumConfig {
        &self.cfg
    }

    pub fn contracts(&self) -> &[Contract] {
        &self.contracts
    }

    pub fn contract(&self, id: ContractId) -> &Contract {
        &self.contracts[id.0]
    }

    pub fn pc_runs(&self) -> u32 {
        self.pc_runs
    }

    /// RA, step 1: generate the price menu for a request's parameters
    /// (§4.1). Pure read of the network state.
    pub fn quote(&mut self, params: &RequestParams) -> PriceMenu {
        let paths = self.path_cache.paths(&self.net, params.src, params.dst);
        if paths.is_empty() {
            return PriceMenu::default();
        }
        build_menu(&self.state, paths, params.start, params.deadline.min(self.horizon - 1))
    }

    /// RA, step 2: the customer accepts `units` off the quoted menu. The
    /// preliminary schedule (the menu's cheapest slots) is reserved, the
    /// payment `p(units)` is locked in, and the marginal price becomes the
    /// contract's value proxy `λ`.
    ///
    /// Returns `None` when `units` is zero/negative (customer walked away)
    /// or no route exists.
    pub fn accept(
        &mut self,
        params: &RequestParams,
        menu: &PriceMenu,
        units: f64,
    ) -> Option<ContractId> {
        if units <= 1e-9 {
            return None;
        }
        let paths = self.path_cache.paths(&self.net, params.src, params.dst).to_vec();
        if paths.is_empty() {
            return None;
        }
        let guaranteed = units.min(menu.capacity_bound());
        let allocs = menu.allocations_for(guaranteed);
        let mut plan = Vec::with_capacity(allocs.len());
        for a in &allocs {
            for &e in paths[a.path_idx].edges() {
                // The menu was built against this very state, so the
                // reservation must fit (clamped for float safety).
                let amount = a.units.min(self.state.available(e, a.t));
                debug_assert!((amount - a.units).abs() < 1e-6 * (1.0 + a.units));
                self.state.reserve(e, a.t, amount);
            }
            plan.push((a.path_idx, a.t, a.units));
        }
        let payment = menu.price(units);
        let lambda = menu.marginal((units - 1e-9).max(0.0));
        let id = ContractId(self.contracts.len());
        self.contracts.push(Contract {
            params: params.clone(),
            purchased: units,
            guaranteed,
            payment,
            lambda,
            delivered: 0.0,
            plan,
        });
        self.contract_paths.push(paths);
        Some(id)
    }

    /// SAM (§4.2): re-optimize the plans of all active contracts from
    /// timestep `now` onward, maximizing Σ λ·X − C(X) subject to the
    /// remaining guarantees. `realized` reports usage already carried in
    /// the current billing window (for the cost proxy).
    pub fn run_sam(&mut self, now: Timestep, realized: &UsageTracker) -> Result<(), SolveError> {
        if !self.cfg.sam_enabled || now >= self.horizon {
            return Ok(());
        }
        let active: Vec<usize> = (0..self.contracts.len())
            .filter(|&i| self.contracts[i].active_at(now))
            .collect();
        if active.is_empty() {
            return Ok(());
        }
        let to = active
            .iter()
            .map(|&i| self.contracts[i].params.deadline + 1)
            .max()
            .unwrap()
            .min(self.horizon);
        let jobs: Vec<Job> = active
            .iter()
            .map(|&i| {
                let c = &self.contracts[i];
                Job::new(i, self.contract_paths[i].clone(), c.params.start.max(now), c.params.deadline, c.lambda, c.guarantee_remaining(), c.demand_remaining())
            })
            .collect();
        let state = &self.state;
        let capacity = |e: EdgeId, t: Timestep| state.sellable_capacity(e, t);
        let realized_fn = |e: EdgeId, t: Timestep| realized.at(e, t);
        let problem = ScheduleProblem {
            net: &self.net,
            grid: &self.grid,
            from: now,
            to,
            jobs: &jobs,
            capacity: &capacity,
            realized: &realized_fn,
            topk: self.cfg.topk,
            cost_scale: self.cfg.cost_scale,
        };
        let sol = schedule::solve(&problem)?;
        // Install the new plans.
        self.state.clear_reservations_from(now);
        for (j, &i) in active.iter().enumerate() {
            self.contracts[i].plan = sol.flows[j].clone();
            for &(pi, t, units) in &sol.flows[j] {
                for &e in self.contract_paths[i][pi].edges() {
                    let amount = units.min(self.state.available(e, t));
                    self.state.reserve(e, t, amount);
                }
            }
        }
        Ok(())
    }

    /// Execute the planned flows of timestep `now`: usage is recorded and
    /// contract `delivered` counters advance. Returns the total units
    /// moved.
    pub fn execute_step(&mut self, now: Timestep, usage: &mut UsageTracker) -> f64 {
        let mut total = 0.0;
        for (i, c) in self.contracts.iter_mut().enumerate() {
            for &(pi, t, units) in &c.plan {
                if t != now {
                    continue;
                }
                for &e in self.contract_paths[i][pi].edges() {
                    usage.record(e, now, units);
                }
                c.delivered += units;
                total += units;
            }
        }
        total
    }

    /// PC (§4.3): at the start of a window, solve the offline welfare LP
    /// over the look-back period and set future prices from the capacity
    /// duals of the reference window, floored at per-edge marginal cost.
    pub fn run_pc(&mut self, now: Timestep) -> Result<(), SolveError> {
        debug_assert_eq!(self.grid.step_in_window(now), 0, "PC runs at window starts");
        let w_now = self.grid.window_of(now);
        if w_now == 0 {
            return Ok(());
        }
        let lookback = self.cfg.lookback_windows.max(1).min(w_now);
        let lb_start = self.grid.window_start(w_now - lookback);
        // Jobs: every contract whose transfer window intersects the
        // look-back period, with the marginal accepted price as its value.
        // Crucially the job carries the request's *full* demand, not just
        // the purchased amount: units a customer declined at the margin are
        // worth ≈λ, and it is exactly this excess demand that makes
        // hindsight capacity rows bind and their duals (the new prices)
        // rise on congested links — the self-correcting loop of §4.3.
        let jobs: Vec<Job> = self
            .contracts
            .iter()
            .enumerate()
            .filter(|(_, c)| c.params.start < now && c.params.deadline >= lb_start)
            .map(|(i, c)| Job::new(i, self.contract_paths[i].clone(), c.params.start.max(lb_start), c.params.deadline.min(now - 1), c.lambda, 0.0, c.params.demand.max(c.purchased)))
            .collect();
        if jobs.is_empty() {
            return Ok(());
        }
        let state = &self.state;
        let capacity = |e: EdgeId, t: Timestep| state.sellable_capacity(e, t);
        let zero = |_: EdgeId, _: Timestep| 0.0;
        let problem = ScheduleProblem {
            net: &self.net,
            grid: &self.grid,
            from: lb_start,
            to: now,
            jobs: &jobs,
            capacity: &capacity,
            realized: &zero,
            topk: self.cfg.topk,
            cost_scale: self.cfg.cost_scale,
        };
        let sol = schedule::solve(&problem)?;
        // Reference window: the pattern carried into the future.
        let back = match self.cfg.reference {
            ReferenceWindow::Previous => 1,
            ReferenceWindow::WindowsBack(n) => n.max(1),
        }
        .min(w_now);
        let ref_start = self.grid.window_start(w_now - back);
        for e in self.net.edge_ids() {
            let floor = price_floor(&self.net, &self.grid, &self.cfg, e);
            for t in now..self.horizon {
                let t_ref = ref_start + self.grid.step_in_window(t);
                // Full dual price: congestion shadow price plus marginal
                // percentile cost (C_e/k on the window's top-k steps).
                let p = sol.price(e, t_ref).max(floor);
                self.state.set_price(e, t, p);
            }
        }
        self.pc_runs += 1;
        Ok(())
    }

    /// Inject a high-pri surge / fault: remove `fraction` of an edge's
    /// capacity from the sellable pool over `[from, to)` (§4.4). A fraction
    /// of 1.0 models a full link failure.
    pub fn inject_capacity_loss(&mut self, e: EdgeId, from: Timestep, to: Timestep, fraction: f64) {
        assert!((0.0..=1.0).contains(&fraction));
        let cap = self.net.edge(e).capacity;
        for t in from..to.min(self.horizon) {
            self.state.set_highpri(e, t, cap * fraction);
        }
    }

    /// Sum of all locked-in payments.
    pub fn total_payments(&self) -> f64 {
        self.contracts.iter().map(|c| c.payment).sum()
    }

    /// Override the internal price of `(e, t)`. Used by experiments that
    /// study externally chosen price patterns (e.g. the Figure 2 worked
    /// example) — normal operation lets the price computer manage prices.
    pub fn set_price(&mut self, e: EdgeId, t: Timestep, p: f64) {
        self.state.set_price(e, t, p);
    }

    /// Seed every window's prices from a per-(edge, step-in-window)
    /// pattern, flooring at the per-edge price floor. Used to warm-start a
    /// run from a previous day's learned prices (the production system
    /// would have weeks of history; a fresh simulation has none).
    pub fn seed_prices(&mut self, pattern: impl Fn(EdgeId, usize) -> f64) {
        for e in self.net.edge_ids() {
            let floor = price_floor(&self.net, &self.grid, &self.cfg, e);
            for t in 0..self.horizon {
                let p = pattern(e, self.grid.step_in_window(t)).max(floor);
                self.state.set_price(e, t, p);
            }
        }
    }
}

/// Per-edge price floor: the configured constant plus, for percentile
/// links, the *average-cost* share of a unit riding a flat usage profile
/// (`C_e / W`). The marginal cost of a unit below the current 95th
/// percentile is zero, but quoting below average cost would leave the
/// provider unable to recover its percentile bill — the floor keeps every
/// pct-crossing unit paying at least its flat share, while congestion and
/// peak-riding surcharges enter through the dual prices.
pub fn price_floor(net: &Network, grid: &TimeGrid, cfg: &PretiumConfig, e: EdgeId) -> f64 {
    let flat = net.edge(e).cost.unit_cost() * cfg.cost_scale / grid.steps_per_window as f64;
    cfg.price_floor + flat
}

/// Cold-start price of an edge (used before the first PC run): the floor,
/// optionally scaled.
pub fn initial_price(net: &Network, grid: &TimeGrid, cfg: &PretiumConfig, e: EdgeId) -> f64 {
    price_floor(net, grid, cfg, e) * cfg.initial_price_scale
}
