//! Parallel evaluation engine: wall-clock for one registry sweep
//! (Figure 6, 24 cells at evaluation scale) with 1 worker vs a small
//! pool, through the exact path `reproduce --jobs N` takes.
//!
//! Prints the speedup and pool occupancy, asserts the two runs merge to
//! bit-identical results, and writes `BENCH_parallel_sweep.json` at the
//! workspace root. On a single-core host the pool only interleaves, so
//! the honest expectation there is ~1x; the >= 3x acceptance target
//! applies to multi-core runners.

use pretium_bench::{black_box, Harness};
use pretium_sim::registry::{registry_at, run_experiments, Scale};

const PARALLEL_JOBS: usize = 4;

fn main() {
    let mut h = Harness::new().sample_size(5);
    let fig6: Vec<_> =
        registry_at(Scale::Evaluation).into_iter().filter(|e| e.name() == "fig6").collect();
    assert_eq!(fig6.len(), 1, "fig6 missing from the registry");
    let seed = rand::DEFAULT_SEED;

    h.bench_function("sweep_fig6_jobs1", |b| {
        b.iter(|| black_box(run_experiments(&fig6, seed, 1).unwrap()));
    });
    h.bench_function("sweep_fig6_jobs4", |b| {
        b.iter(|| black_box(run_experiments(&fig6, seed, PARALLEL_JOBS).unwrap()));
    });

    // Determinism contract: the merged figure must not depend on the
    // worker count, only the telemetry may.
    let (serial, _) = run_experiments(&fig6, seed, 1).unwrap();
    let (parallel, pool) = run_experiments(&fig6, seed, PARALLEL_JOBS).unwrap();
    assert_eq!(serial, parallel, "jobs=1 and jobs={PARALLEL_JOBS} merged differently");

    let t1 = h.get("sweep_fig6_jobs1").unwrap().median();
    let tn = h.get("sweep_fig6_jobs4").unwrap().median();
    let speedup = t1.as_secs_f64() / tn.as_secs_f64();
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!(
        "parallel_sweep fig6: jobs=1 {t1:?}, jobs={PARALLEL_JOBS} {tn:?} -> {speedup:.2}x \
         (occupancy {:.1}%, {cores} core(s) available)",
        pool.occupancy() * 100.0
    );
    println!("BENCH\tparallel_sweep_speedup\t{speedup:.3}");
    println!("BENCH\tparallel_sweep_occupancy\t{:.3}", pool.occupancy());

    // Hand-formatted (the workspace builds offline, without serde).
    let json = format!(
        "{{\n  \"bench\": \"parallel_sweep\",\n  \"experiment\": \"fig6\",\n  \
         \"cells\": {cells},\n  \"jobs_serial\": 1,\n  \"jobs_parallel\": {PARALLEL_JOBS},\n  \
         \"serial_secs\": {s:.6},\n  \"parallel_secs\": {p:.6},\n  \
         \"speedup\": {speedup:.3},\n  \"occupancy\": {occ:.3},\n  \
         \"cores_available\": {cores}\n}}\n",
        cells = pool.cells.calls,
        s = t1.as_secs_f64(),
        p = tn.as_secs_f64(),
        occ = pool.occupancy(),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_parallel_sweep.json");
    std::fs::write(path, json).expect("write BENCH_parallel_sweep.json");
    println!("wrote {path}");
}
